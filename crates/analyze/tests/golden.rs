//! Golden tests for `smm-analyze`: the five bad-kernel fixtures and
//! the two bad-concurrency fixtures must each trip exactly the check
//! built for them, and the shipped tree — every registered kernel
//! stream and every workspace source file — must come back clean.
//! Together these pin the analyzer from both sides: a lost check
//! breaks a fixture test, a new defect in the tree breaks a clean
//! test.

use std::path::PathBuf;

use smm_analyze::fixtures::{
    concurrency_self_check, hazard_serialized_stream, out_of_bounds_stream, over_budget_descriptor,
    over_budget_wide_descriptor, self_check, seqlock_no_retry_fixture, uncovered_registry,
    unpaired_release_fixture, EXPECTED,
};
use smm_analyze::lint::{lint_source, lint_workspace};
use smm_analyze::{ordering, verify_all, Severity, VerifyConfig};
use smm_model::VectorIsa;

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root")
}

#[test]
fn fixture_over_budget_descriptor_is_flagged() {
    let r = over_budget_descriptor(&VerifyConfig::default());
    assert!(r.has_code("AN-E001"), "{r}");
    assert!(!r.passes(false));
}

#[test]
fn fixture_serialized_stream_is_flagged() {
    let r = hazard_serialized_stream(&VerifyConfig::default());
    assert!(r.has_code("AN-E003"), "{r}");
    assert!(!r.passes(false));
}

#[test]
fn fixture_out_of_bounds_stream_is_flagged() {
    let r = out_of_bounds_stream(&VerifyConfig::default());
    assert!(r.has_code("AN-E004"), "{r}");
    assert!(!r.passes(false));
}

#[test]
fn fixture_uncovered_registry_is_flagged() {
    let r = uncovered_registry();
    assert!(r.has_code("AN-E006"), "{r}");
    assert!(!r.passes(false));
}

#[test]
fn fixture_over_budget_wide_descriptor_is_flagged() {
    let r = over_budget_wide_descriptor();
    assert!(r.has_code("AN-E001"), "{r}");
    assert!(!r.passes(false));
}

#[test]
fn fixture_seqlock_no_retry_is_flagged() {
    let r = seqlock_no_retry_fixture();
    assert!(r.has_code("AN-C003"), "{r}");
    assert!(!r.passes(false));
}

#[test]
fn fixture_unpaired_release_is_flagged() {
    let r = unpaired_release_fixture();
    assert!(r.has_code("AN-C001"), "{r}");
    assert!(r.has_code("AN-C002"), "{r}");
    assert!(!r.passes(false));
}

#[test]
fn expected_table_matches_the_fixture_set() {
    assert_eq!(EXPECTED.len(), 7);
    let codes: Vec<&str> = EXPECTED.iter().map(|(_, c)| *c).collect();
    assert_eq!(
        codes,
        ["AN-E001", "AN-E001", "AN-E003", "AN-E004", "AN-E006", "AN-C003", "AN-C001"]
    );
}

#[test]
fn shipped_kernel_streams_verify_clean() {
    let r = verify_all(&VerifyConfig::default());
    assert!(
        r.passes(true),
        "shipped kernels must produce no errors or warnings:\n{r}"
    );
    assert!(
        r.kernels_checked >= 20,
        "expected the four library profiles to contribute at least 20 streams, got {}",
        r.kernels_checked
    );
}

#[test]
fn wide_isa_configs_verify_clean() {
    for isa in [VectorIsa::sve256(), VectorIsa::sve512()] {
        let r = verify_all(&VerifyConfig::for_isa(isa));
        assert!(
            r.passes(true),
            "{isa} reference kernels must verify clean:\n{r}"
        );
        assert!(r.kernels_checked >= 5, "{isa}: {}", r.kernels_checked);
    }
}

#[test]
fn shipped_sources_lint_clean() {
    let r = lint_workspace(&workspace_root());
    assert!(
        r.passes(true),
        "workspace sources must satisfy the invariant lints:\n{r}"
    );
    assert!(
        r.files_scanned > 50,
        "lint walked only {} files — wrong root?",
        r.files_scanned
    );
}

#[test]
fn new_clock_read_in_trace_rs_trips_the_fence_again() {
    let real = std::fs::read_to_string(workspace_root().join("crates/core/src/trace.rs"))
        .expect("read crates/core/src/trace.rs");
    // The shipped file is clean: its one `Instant::now` carries a
    // per-site audited waiver, not a file-wide exemption.
    let clean = lint_source("crates/core/src/trace.rs", &real);
    assert!(!clean.has_code("LINT-E104"), "{clean}");
    // So one more clock read anywhere else in the file (outside the
    // lint-exempt test tail) is flagged again.
    let cut = real.find("#[cfg(test)]").unwrap_or(real.len());
    let patched = format!(
        "{}\nfn sneak() -> std::time::Instant {{ Instant::now() }}\n{}",
        &real[..cut],
        &real[cut..]
    );
    let r = lint_source("crates/core/src/trace.rs", &patched);
    assert!(r.has_code("LINT-E104"), "{r}");
}

#[test]
fn shipped_sources_pass_the_ordering_pass() {
    let r = ordering::analyze_workspace(&workspace_root());
    assert!(
        r.passes(true),
        "workspace sources must satisfy the atomic-ordering contracts:\n{r}"
    );
    assert!(
        r.files_scanned > 50,
        "ordering pass walked only {} files — wrong root?",
        r.files_scanned
    );
}

#[test]
fn concurrency_self_check_is_green() {
    let r = concurrency_self_check();
    assert!(r.passes(true), "{r}");
    assert!(r.to_json().contains("\"AN-SELF\""));
}

#[test]
fn self_check_is_green_and_json_is_well_formed() {
    let r = self_check(&VerifyConfig::default());
    assert!(r.passes(true), "{r}");
    assert_eq!(r.count(Severity::Error), 0);
    let json = r.to_json();
    // Structural spot-checks (no JSON parser in a std-only workspace).
    assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
    assert!(json.contains("\"findings\""));
    assert!(json.contains("\"AN-SELF\""));
}
