//! Exhaustive-schedule model checking of the runtime's concurrency
//! protocols, plus the seeded-mutant regression net.
//!
//! Compiled (and meaningful) only under the instrumented facade:
//!
//! ```text
//! RUSTFLAGS='--cfg smm_model_check' cargo test -p smm-analyze --test model_check
//! ```
#![cfg(smm_model_check)]

use smm_analyze::mc::{mutants, protocols, run_all};
use smm_sync::mc::FailureKind;

/// The acceptance bound: every protocol must pass *exhaustively* with
/// at least this many preemptions available to the scheduler.
const BOUND: usize = 3;

#[test]
fn flight_seqlock_exhaustive_at_bound() {
    let out = protocols::flight_seqlock(BOUND);
    assert!(out.passed(), "{}", out.summary());
    assert!(out.complete, "exploration truncated: {}", out.summary());
}

#[test]
fn pool_scoped_drain_exhaustive_at_bound() {
    let out = protocols::pool_scoped_drain(BOUND);
    assert!(out.passed(), "{}", out.summary());
    assert!(out.complete, "exploration truncated: {}", out.summary());
}

#[test]
fn arena_checkout_reuse_exhaustive_at_bound() {
    let out = protocols::arena_checkout_reuse(BOUND);
    assert!(out.passed(), "{}", out.summary());
    assert!(out.complete, "exploration truncated: {}", out.summary());
}

#[test]
fn plan_cache_dcl_exhaustive_at_bound() {
    let out = protocols::plan_cache_dcl(BOUND);
    assert!(out.passed(), "{}", out.summary());
    assert!(out.complete, "exploration truncated: {}", out.summary());
}

#[test]
fn delta_buffer_exhaustive_at_bound() {
    let out = protocols::delta_buffer(BOUND);
    assert!(out.passed(), "{}", out.summary());
    assert!(out.complete, "exploration truncated: {}", out.summary());
}

#[test]
fn shard_steal_exhaustive_at_bound() {
    let out = protocols::shard_steal(BOUND);
    assert!(out.passed(), "{}", out.summary());
    assert!(out.complete, "exploration truncated: {}", out.summary());
}

#[test]
fn mutant_seqlock_relaxed_publish_is_caught() {
    let out = mutants::seqlock_relaxed_publish(BOUND);
    assert!(!out.passed(), "checker missed the relaxed publish");
}

#[test]
fn mutant_seqlock_no_revalidate_is_caught() {
    let out = mutants::seqlock_reader_no_revalidate(BOUND);
    assert!(!out.passed(), "checker missed the missing revalidation");
}

#[test]
fn mutant_pool_lost_wakeup_is_caught_as_deadlock() {
    let out = mutants::pool_shutdown_lost_wakeup(BOUND);
    let failure = out
        .failure
        .as_ref()
        .expect("checker missed the lost wakeup");
    assert!(
        matches!(failure.kind, FailureKind::Deadlock { .. }),
        "expected a deadlock, got: {}",
        out.summary()
    );
}

#[test]
fn mutant_arena_lost_update_is_caught() {
    let out = mutants::arena_counter_lost_update(BOUND);
    assert!(!out.passed(), "checker missed the lost update");
}

#[test]
fn mutant_dcl_missing_recheck_is_caught() {
    let out = mutants::plan_cache_no_double_check(BOUND);
    assert!(!out.passed(), "checker missed the missing double-check");
}

#[test]
fn mutant_shard_steal_double_execute_is_caught() {
    let out = mutants::shard_steal_double_execute(BOUND);
    assert!(!out.passed(), "checker missed the double execution");
}

#[test]
fn run_all_is_green_on_the_shipped_tree() {
    let report = run_all(BOUND);
    assert!(report.passes(true), "{}", report.to_json());
}
