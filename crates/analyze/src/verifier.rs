//! Kernel-contract verification: drives every check of the kernel
//! front over the registered library profiles.
//!
//! For each [`LibraryProfile`] the verifier checks the main kernel,
//! every alternate shape, and — for edge-kernel libraries — every
//! distinct edge tile the step lists can produce. Each case goes
//! through four gates:
//!
//! 1. **Eq. 4 budget** ([`smm_model::check_register_budget`], the same
//!    function descriptor construction uses) — code `AN-E001`;
//! 2. **live-range pressure** over the emitted stream (no spills,
//!    live-ins are exactly the accumulators) — `AN-E002` / `AN-W008`;
//! 3. **dependence chains** against the shape's own ceiling — an
//!    avoidable scheduling defect is `AN-E003`, an intrinsically
//!    latency-bound shape (the Fig. 7 trade-off) is note `AN-I001`;
//! 4. **bounds/aliasing** of every access against the declared operand
//!    extents — `AN-E004` (out of bounds), `AN-E005` (read-only store
//!    or operand overlap), `AN-E007` (misaligned vector access).
//!
//! Registries additionally get the residue-coverage check (`AN-E006`).

use smm_kernels::registry::{EdgeStrategy, LibraryProfile};
use smm_kernels::trace_gen::{kernel_trace, KernelTraceParams};
use smm_kernels::{BLoadStyle, MicroKernelDesc, SchedulePolicy};
use smm_model::{KernelShape, VectorIsa};
use smm_simarch::isa::Inst;
use smm_simarch::phase::Phase;

use crate::bounds::{check_stream, AccessViolation, MemRegion};
use crate::coverage::{check_coverage, CoverageIssue, EdgeRegistry};
use crate::hazard::{chain_analysis, HazardConfig};
use crate::liveness::register_pressure;
use crate::report::{Finding, Report};

/// Knobs of the kernel-front verification.
#[derive(Debug, Clone, Copy)]
pub struct VerifyConfig {
    /// k-loop depth of the canonical trace.
    pub kc: usize,
    /// Vector ISA the kernels are verified against: sets the lane
    /// count of the Eq. 4 budget, the architectural file size of the
    /// spill proof, and the access width of the bounds gate.
    pub isa: VectorIsa,
    /// A stream whose measured chain-bound ceiling falls below this
    /// fraction of its *shape's* intrinsic ceiling has an avoidable
    /// scheduling defect (Fig. 7) and is flagged `AN-E003`.
    pub min_chain_fraction: f64,
    /// A shape whose intrinsic ceiling is below this threshold gets an
    /// informational `AN-I001` note (the latency-bound edge-tile
    /// trade-off itself — not actionable, never fails).
    pub note_ceiling_below: f64,
    /// Latency model of the chain analysis.
    pub hazard: HazardConfig,
}

impl Default for VerifyConfig {
    fn default() -> Self {
        VerifyConfig {
            kc: 64,
            isa: VectorIsa::neon128(),
            min_chain_fraction: 0.85,
            note_ceiling_below: 0.5,
            hazard: HazardConfig::default(),
        }
    }
}

impl VerifyConfig {
    /// The default configuration retargeted at another vector ISA.
    pub fn for_isa(isa: VectorIsa) -> Self {
        VerifyConfig {
            isa,
            ..Default::default()
        }
    }
}

/// Canonical operand placement for verification traces: packed A at
/// `0x10_000`, packed B at `0x40_000`, the C tile at `0x80_000`.
/// All three are far enough apart that any overlap is a real finding.
pub fn canonical_params(desc: MicroKernelDesc, kc: usize) -> KernelTraceParams {
    let mr = desc.mr() as u64;
    let nr = desc.nr() as u64;
    KernelTraceParams {
        desc,
        kc,
        a_base: 0x10_000,
        a_kstep: mr * 4,
        b_base: 0x40_000,
        b_kstep: nr * 4,
        b_jstride: 4,
        c_base: 0x80_000,
        c_col_stride: mr * 4,
        elem: 4,
        phase: Phase::Kernel,
    }
}

/// The operand regions a canonical trace is allowed to touch, plus the
/// indices that must be pairwise disjoint. The staged-`alpha` slot is
/// declared but excluded from disjointness: its fixed staging address
/// may legitimately fall inside the C tile of large kernels.
pub fn canonical_regions(p: &KernelTraceParams) -> (Vec<MemRegion>, Vec<usize>) {
    let mr = p.desc.mr() as u64;
    let nr = p.desc.nr() as u64;
    let regions = vec![
        MemRegion {
            name: "A",
            base: p.a_base,
            len: p.kc as u64 * mr * p.elem,
            writable: false,
        },
        MemRegion {
            name: "B",
            base: p.b_base,
            len: p.kc as u64 * nr * p.elem,
            writable: false,
        },
        MemRegion {
            name: "C",
            base: p.c_base,
            len: mr * nr * p.elem,
            writable: true,
        },
        MemRegion {
            name: "alpha",
            base: p.c_base ^ 0x3F,
            len: p.elem,
            writable: false,
        },
    ];
    (regions, vec![0, 1, 2])
}

/// Gate 1: the shared Eq. 4 budget check. Returns whether the shape is
/// feasible (infeasible shapes cannot be traced).
pub fn verify_shape(
    subject: &str,
    mr: usize,
    nr: usize,
    cfg: &VerifyConfig,
    out: &mut Report,
) -> bool {
    match cfg.isa.check_register_budget(mr, nr, 4) {
        Ok(_) => true,
        Err(e) => {
            out.push(Finding::error(
                "AN-E001",
                subject,
                format!("{e} (isa {})", cfg.isa),
            ));
            false
        }
    }
}

/// Gates 2–4 over an already-emitted stream. Public so fixture streams
/// (hand-corrupted) go through exactly the shipped-kernel code path.
pub fn verify_stream(
    subject: &str,
    shape: KernelShape,
    insts: &[Inst],
    regions: &[MemRegion],
    disjoint: &[usize],
    cfg: &VerifyConfig,
    out: &mut Report,
) {
    out.kernels_checked += 1;

    // Gate 2: live-range pressure. The trace generator has no spill
    // instructions, so exceeding the architectural file means the
    // emitted kernel is simply wrong on hardware.
    let pressure = register_pressure(insts);
    let vfile = cfg.isa.num_vregs;
    if pressure.max_vector > vfile {
        out.push(Finding::error(
            "AN-E002",
            subject,
            format!(
                "live-range analysis proves a spill: {} vector values live at once, \
                 {} file holds {vfile}",
                pressure.max_vector, cfg.isa
            ),
        ));
    }
    if pressure.max_scalar > 32 {
        out.push(Finding::error(
            "AN-E002",
            subject,
            format!(
                "live-range analysis proves a spill: {} scalar values live at once, file holds 32",
                pressure.max_scalar
            ),
        ));
    }
    let acc = shape.accumulator_registers(cfg.isa.lanes_f32());
    if pressure.vector_live_in != acc {
        out.push(Finding::warning(
            "AN-W008",
            subject,
            format!(
                "{} vector registers read before any write; expected exactly the {} accumulators",
                pressure.vector_live_in, acc
            ),
        ));
    }

    // Gate 3: dependence chains vs the shape's own ceiling.
    let fma_latency = cfg.hazard.pipeline.fma_latency as usize;
    let ceiling = shape.chain_bound_efficiency(cfg.isa.lanes_f32(), fma_latency);
    let chains = chain_analysis(insts, &cfg.hazard);
    if chains.fma_count > 0 {
        if chains.chain_bound < cfg.min_chain_fraction * ceiling {
            out.push(Finding::error(
                "AN-E003",
                subject,
                format!(
                    "avoidable scheduling serialization: dependence chains cap throughput at \
                     {:.0}% but the {}x{} shape supports {:.0}% (critical path {} cycles \
                     for {} FMAs)",
                    100.0 * chains.chain_bound,
                    shape.mr,
                    shape.nr,
                    100.0 * ceiling,
                    chains.critical_path,
                    chains.fma_count
                ),
            ));
        } else if ceiling < cfg.note_ceiling_below {
            out.push(Finding::info(
                "AN-I001",
                subject,
                format!(
                    "shape is intrinsically latency-bound at {:.0}% of peak ({} accumulator \
                     chains vs {}-cycle FMA pipe) — the Fig. 7 edge-kernel trade-off",
                    100.0 * ceiling,
                    acc,
                    fma_latency
                ),
            ));
        }
    }

    // Gate 4: bounds, aliasing, alignment.
    for violation in check_stream(insts, regions, disjoint, 4, cfg.isa.vreg_bytes() as u64) {
        let (code, loc) = match &violation {
            AccessViolation::OutOfBounds { index, .. } => ("AN-E004", Some(*index)),
            AccessViolation::ReadOnlyStore { index, .. } => ("AN-E005", Some(*index)),
            AccessViolation::RegionOverlap { .. } => ("AN-E005", None),
            AccessViolation::Misaligned { index, .. } => ("AN-E007", Some(*index)),
        };
        let mut f = Finding::error(code, subject, violation.to_string());
        if let Some(i) = loc {
            f = f.at(format!("inst #{i}"));
        }
        out.push(f);
    }
}

/// All four gates for one descriptor: budget, then trace and verify.
pub fn verify_descriptor(
    subject: &str,
    desc: MicroKernelDesc,
    cfg: &VerifyConfig,
    out: &mut Report,
) {
    let (mr, nr) = (desc.mr(), desc.nr());
    if !verify_shape(subject, mr, nr, cfg, out) {
        return;
    }
    let params = canonical_params(desc, cfg.kc);
    let (regions, disjoint) = canonical_regions(&params);
    let (insts, _) = kernel_trace(&params);
    verify_stream(
        subject,
        KernelShape::new(mr, nr),
        &insts,
        &regions,
        &disjoint,
        cfg,
        out,
    );
}

/// The distinct edge tiles a registry's step lists can produce (every
/// M part against the full `nr` and every N part, and the full `mr`
/// against every N part), excluding the main tile itself.
fn edge_tiles(profile: &LibraryProfile) -> Vec<(usize, usize)> {
    let (mr, nr) = (profile.main.mr(), profile.main.nr());
    let mut tiles = Vec::new();
    for &m in &profile.m_steps {
        for &n in &profile.n_steps {
            if (m, n) != (mr, nr) && !tiles.contains(&(m, n)) {
                tiles.push((m, n));
            }
        }
    }
    tiles
}

/// Verify one library profile end to end.
pub fn verify_profile(profile: &LibraryProfile, cfg: &VerifyConfig) -> Report {
    let mut out = Report::new();

    verify_descriptor(
        &format!(
            "{}/main-{}x{}",
            profile.name,
            profile.main.mr(),
            profile.main.nr()
        ),
        profile.main,
        cfg,
        &mut out,
    );

    for shape in &profile.alternates {
        let subject = format!("{}/alt-{}x{}", profile.name, shape.mr, shape.nr);
        if verify_shape(&subject, shape.mr, shape.nr, cfg, &mut out) {
            let desc = MicroKernelDesc::new(
                shape.mr,
                shape.nr,
                profile.main.unroll,
                profile.main.policy,
                profile.main.b_load,
            );
            verify_descriptor(&subject, desc, cfg, &mut out);
        }
    }

    if profile.edge == EdgeStrategy::EdgeKernels {
        for (m, n) in edge_tiles(profile) {
            let subject = format!("{}/edge-{m}x{n}", profile.name);
            if verify_shape(&subject, m, n, cfg, &mut out) {
                verify_descriptor(&subject, profile.edge_desc(m, n), cfg, &mut out);
            }
        }
    }

    let registry = EdgeRegistry {
        name: profile.name,
        mr: profile.main.mr(),
        nr: profile.main.nr(),
        edge: profile.edge,
        m_steps: &profile.m_steps,
        n_steps: &profile.n_steps,
        isa: cfg.isa,
    };
    verify_registry(&registry, &mut out);
    out
}

/// Residue-coverage gate over one registry (`AN-E006`; infeasible edge
/// tile combinations route to the Eq. 4 code `AN-E001`).
pub fn verify_registry(registry: &EdgeRegistry<'_>, out: &mut Report) {
    let subject = format!("{}/registry", registry.name);
    for issue in check_coverage(registry) {
        let code = match issue {
            CoverageIssue::InfeasibleEdgeTile { .. } => "AN-E001",
            _ => "AN-E006",
        };
        out.push(Finding::error(code, &subject, issue.to_string()));
    }
}

/// Reference register tiles per ISA for the width-parametric pass:
/// the main tile each width would run, plus — on predicated ISAs —
/// residue shapes that exercise the masked-edge path (a row count that
/// is not a lane multiple).
pub fn reference_shapes(isa: &VectorIsa) -> &'static [(usize, usize)] {
    match isa.vlen_bits {
        128 => &[(16, 4), (12, 4), (8, 12), (8, 8)],
        256 => &[(16, 12), (16, 8), (8, 12), (11, 12), (13, 4)],
        _ => &[(32, 12), (32, 8), (16, 12), (23, 12), (9, 8)],
    }
}

/// Width-parametric verification: every reference tile of `cfg.isa`
/// through all four gates, with the trace emitted *for that ISA* (so
/// predicated edge streams are what gets proven on SVE-style widths).
pub fn verify_isa_references(cfg: &VerifyConfig, out: &mut Report) {
    for &(mr, nr) in reference_shapes(&cfg.isa) {
        let subject = format!("{}/ref-{mr}x{nr}", cfg.isa);
        if !verify_shape(&subject, mr, nr, cfg, out) {
            continue;
        }
        let desc = MicroKernelDesc::for_isa(
            cfg.isa,
            mr,
            nr,
            4,
            SchedulePolicy::Interleaved,
            BLoadStyle::ScalarPairs,
        );
        verify_descriptor(&subject, desc, cfg, out);
    }
}

/// Verify every registered library profile (on the 128-bit ISA they
/// model) plus the width-parametric reference tiles of `cfg.isa`.
pub fn verify_all(cfg: &VerifyConfig) -> Report {
    let mut out = Report::new();
    if cfg.isa == VectorIsa::neon128() {
        for profile in LibraryProfile::all() {
            out.merge(verify_profile(&profile, cfg));
        }
    }
    verify_isa_references(cfg, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::Severity;

    #[test]
    fn shipped_profiles_have_no_errors() {
        let report = verify_all(&VerifyConfig::default());
        let errors: Vec<_> = report
            .findings
            .iter()
            .filter(|f| f.severity >= Severity::Warning)
            .collect();
        assert!(errors.is_empty(), "unexpected findings: {errors:#?}");
        assert!(report.kernels_checked > 20);
    }

    #[test]
    fn latency_bound_edges_are_noted_not_flagged() {
        let report = verify_all(&VerifyConfig::default());
        // OpenBLAS/Eigen 1-chain edge tiles must surface as Fig. 7
        // notes (Info), never as scheduling errors.
        assert!(report.has_code("AN-I001"));
        assert!(!report.has_code("AN-E003"));
    }

    #[test]
    fn every_isa_config_verifies_clean() {
        // The acceptance bar of the width-agnostic redesign: the same
        // four gates pass width-parametrically on all three configs,
        // including the predicated edge streams of the SVE widths.
        for isa in VectorIsa::all() {
            let report = verify_all(&VerifyConfig::for_isa(isa));
            let noisy: Vec<_> = report
                .findings
                .iter()
                .filter(|f| f.severity >= Severity::Warning)
                .collect();
            assert!(noisy.is_empty(), "{isa}: {noisy:#?}");
            assert!(report.kernels_checked >= reference_shapes(&isa).len());
        }
    }

    #[test]
    fn wide_budget_admits_what_neon_rejects() {
        // 16x8 is AN-E001 at 128 bits but passes all four gates at 256.
        let mut out = Report::new();
        assert!(verify_shape(
            "t/16x8",
            16,
            8,
            &VerifyConfig::for_isa(VectorIsa::sve256()),
            &mut out
        ));
        assert!(out.findings.is_empty());
    }

    #[test]
    fn over_budget_shape_fails_gate_one() {
        let mut out = Report::new();
        assert!(!verify_shape(
            "t/16x8",
            16,
            8,
            &VerifyConfig::default(),
            &mut out
        ));
        assert!(out.has_code("AN-E001"));
    }

    #[test]
    fn uncovered_registry_is_flagged() {
        let mut out = Report::new();
        let reg = EdgeRegistry {
            name: "t",
            mr: 16,
            nr: 4,
            edge: EdgeStrategy::EdgeKernels,
            m_steps: &[16, 8],
            n_steps: &[4, 2, 1],
            isa: VectorIsa::neon128(),
        };
        verify_registry(&reg, &mut out);
        assert!(out.has_code("AN-E006"));
    }
}
