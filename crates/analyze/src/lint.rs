//! Source invariant linter (front 2): a hand-rolled scanner over the
//! workspace's `.rs` files enforcing the repository's concurrency and
//! timing conventions.
//!
//! Rules:
//!
//! * `LINT-E101` (`safety-comment`) — every `unsafe` token is preceded
//!   (same line, or the comment block just above, allowing two
//!   intervening statement lines) by a `// SAFETY:` comment.
//! * `LINT-E102` (`atomic-ordering`) — every atomic *declaration*
//!   (struct field, `static`, `let` with an explicit `Atomic*` type)
//!   carries a comment naming its memory-ordering discipline
//!   (`Relaxed`, `Acquire`, `Release`, `AcqRel`, `SeqCst`, or the word
//!   "ordering"). A comment above a run of atomic fields covers the
//!   whole run.
//! * `LINT-E103` (`thread-spawn`) — `thread::spawn` / `thread::Builder`
//!   only in the worker pool (`crates/gemm/src/pool.rs`) and the
//!   serving layer's long-lived service threads
//!   (`crates/serve/src/server.rs` dispatcher,
//!   `crates/serve/src/tcp.rs` acceptor + per-connection handlers);
//!   everything else must go through the pool so §III-D's
//!   spawn-per-call overhead cannot creep back. The serve entries are
//!   deliberate: those threads live for the server's lifetime (or a
//!   connection's), never per GEMM call.
//! * `LINT-E104` (`instant-now`) — `Instant::now` only in telemetry
//!   (`crates/core/src/telemetry.rs`), the serving layer's single
//!   clock shim (`crates/serve/src/clock.rs`, where wall time is
//!   request semantics: deadlines and the coalescing window), and
//!   bench/example code, so the untimed hot path provably never reads
//!   the clock.
//! * `LINT-W105` — a malformed or unused waiver.
//! * `LINT-E106` (`vector-width-literal`) — hardcoded vector-width
//!   assumptions: references to the retired NEON-128 constants
//!   (`F32_LANES`, `TOTAL_VREGS`, `SPARE_VREGS`), or a width-parametric
//!   model API (`chain_bound_efficiency`, `accumulator_registers`,
//!   `satisfies_register_constraint`) called with a bare lane-count
//!   literal. Lane counts must come from a [`smm_model::VectorIsa`];
//!   only the ISA definitions themselves (`crates/model/src/isa.rs`)
//!   may spell widths out.
//!
//! Test code is exempt: everything at or below a file's first
//! `#[cfg(test)]`, and files under a `tests/` directory.
//!
//! A rule can be waived at a specific site with
//! `// lint:allow(<rule-id>) -- <rationale>` on the same line or the
//! line above; the rationale is mandatory, and only plain `//`
//! comments count (a doc comment cannot waive anything).
//!
//! The scanner strips comments and string/char literals with a small
//! state machine (line comments, nested block comments, escapes, raw
//! strings, lifetime-vs-char disambiguation), so tokens inside strings
//! or docs never trigger rules — and comment text is kept per line for
//! the SAFETY/ordering checks.

use std::path::Path;

use crate::report::{Finding, Report};

/// One source line split into its code and comment parts.
#[derive(Debug, Clone, Default)]
pub struct LineView {
    /// The line with comments and literal contents removed.
    pub code: String,
    /// The concatenated comment text of the line.
    pub comment: String,
}

#[derive(Clone, Copy)]
enum ScanState {
    Normal,
    Block(u32),
    Str,
    RawStr(u32),
}

/// Split `source` into per-line code/comment views.
pub fn strip_source(source: &str) -> Vec<LineView> {
    let mut out = Vec::new();
    let mut state = ScanState::Normal;
    for line in source.lines() {
        let chars: Vec<char> = line.chars().collect();
        let mut view = LineView::default();
        let mut i = 0;
        while i < chars.len() {
            match state {
                ScanState::Normal => {
                    let c = chars[i];
                    if c == '/' && chars.get(i + 1) == Some(&'/') {
                        view.comment
                            .push_str(&chars[i + 2..].iter().collect::<String>());
                        i = chars.len();
                    } else if c == '/' && chars.get(i + 1) == Some(&'*') {
                        state = ScanState::Block(1);
                        i += 2;
                    } else if (c == 'r' || c == 'b')
                        && !prev_is_ident(&chars, i)
                        && raw_string_hashes(&chars, i).is_some()
                    {
                        let (hashes, skip) = raw_string_hashes(&chars, i).unwrap();
                        view.code.push('"');
                        state = ScanState::RawStr(hashes);
                        i += skip;
                    } else if c == '"' {
                        view.code.push('"');
                        state = ScanState::Str;
                        i += 1;
                    } else if c == '\'' {
                        // Char literal vs lifetime: 'x' / '\n' close
                        // within two chars; a lifetime never closes.
                        if chars.get(i + 1) == Some(&'\\') {
                            i += 2; // skip the escape lead-in
                            while i < chars.len() && chars[i] != '\'' {
                                i += 1;
                            }
                            i += 1;
                        } else if chars.get(i + 2) == Some(&'\'') {
                            i += 3;
                        } else {
                            view.code.push('\'');
                            i += 1;
                        }
                    } else {
                        view.code.push(c);
                        i += 1;
                    }
                }
                ScanState::Block(depth) => {
                    if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                        state = if depth == 1 {
                            ScanState::Normal
                        } else {
                            ScanState::Block(depth - 1)
                        };
                        i += 2;
                    } else if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                        state = ScanState::Block(depth + 1);
                        i += 2;
                    } else {
                        view.comment.push(chars[i]);
                        i += 1;
                    }
                }
                ScanState::Str => {
                    if chars[i] == '\\' {
                        i += 2;
                    } else if chars[i] == '"' {
                        view.code.push('"');
                        state = ScanState::Normal;
                        i += 1;
                    } else {
                        i += 1;
                    }
                }
                ScanState::RawStr(hashes) => {
                    if chars[i] == '"' && closes_raw(&chars, i, hashes) {
                        view.code.push('"');
                        state = ScanState::Normal;
                        i += 1 + hashes as usize;
                    } else {
                        i += 1;
                    }
                }
            }
        }
        out.push(view);
    }
    out
}

fn prev_is_ident(chars: &[char], i: usize) -> bool {
    i > 0 && (chars[i - 1].is_alphanumeric() || chars[i - 1] == '_')
}

/// If `chars[i..]` opens a raw string (`r"`, `r#"`, `br##"`, …),
/// return `(hash_count, chars_to_skip_through_the_quote)`.
fn raw_string_hashes(chars: &[char], i: usize) -> Option<(u32, usize)> {
    let mut j = i;
    if chars.get(j) == Some(&'b') {
        j += 1;
    }
    if chars.get(j) != Some(&'r') {
        return None;
    }
    j += 1;
    let mut hashes = 0u32;
    while chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    if chars.get(j) == Some(&'"') {
        Some((hashes, j + 1 - i))
    } else {
        None
    }
}

fn closes_raw(chars: &[char], i: usize, hashes: u32) -> bool {
    (1..=hashes as usize).all(|h| chars.get(i + h) == Some(&'#'))
}

/// `needle` as a whole word (non-identifier chars on both sides).
fn has_word(code: &str, needle: &str) -> bool {
    let bytes = code.as_bytes();
    let mut from = 0;
    while let Some(pos) = code[from..].find(needle) {
        let start = from + pos;
        let end = start + needle.len();
        let pre = start == 0 || !is_ident_byte(bytes[start - 1]);
        let post = end == bytes.len() || !is_ident_byte(bytes[end]);
        if pre && post {
            return true;
        }
        from = end;
    }
    false
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Does this line *declare* an atomic (field, `static`, typed `let`)?
/// Initializer expressions (`AtomicU64::new(..)`) and `use` imports do
/// not count; the rationale belongs where the atomic is declared.
pub fn is_atomic_decl(code: &str) -> bool {
    let trimmed = code.trim_start();
    if trimmed.starts_with("use ") || trimmed.starts_with("pub use ") {
        return false;
    }
    let chars: Vec<char> = code.chars().collect();
    let mut from = 0;
    let s: String = chars.iter().collect();
    while let Some(pos) = s[from..].find("Atomic") {
        let start = from + pos;
        // Walk left over whitespace and type-position sigils to find
        // the `:` of a declaration; `::Atomic` is a path, not a decl.
        let mut j = start;
        let mut colon = false;
        while j > 0 {
            j -= 1;
            let c = chars[j];
            if c.is_whitespace() || c == '[' || c == '&' || c == '<' || c == '(' {
                if colon {
                    break;
                }
                if c == '<' || c == '(' {
                    break; // generic/tuple position without a colon
                }
                continue;
            }
            if c == ':' && !colon {
                colon = true;
                continue;
            }
            break;
        }
        let path_sep = colon && j < chars.len() && chars[j] == ':';
        if colon && !path_sep {
            // Reject initializers: the type token is followed by `::`.
            let mut end = start;
            while end < chars.len() && (chars[end].is_alphanumeric() || chars[end] == '_') {
                end += 1;
            }
            if !(chars.get(end) == Some(&':') && chars.get(end + 1) == Some(&':')) {
                return true;
            }
        }
        from = start + "Atomic".len();
    }
    false
}

const ORDERING_KEYWORDS: [&str; 6] = [
    "relaxed", "acquire", "release", "acqrel", "seqcst", "ordering",
];

fn names_an_ordering(comment: &str) -> bool {
    let lower = comment.to_lowercase();
    ORDERING_KEYWORDS.iter().any(|k| lower.contains(k))
}

/// Is line `i`'s `unsafe` covered by a `SAFETY:` comment — same line,
/// or the comment block above with at most two statement lines between?
fn has_safety_comment(lines: &[LineView], i: usize) -> bool {
    preceded_by(lines, i, 2, |c| c.contains("SAFETY:"), |_| false)
}

/// Is line `i`'s atomic declaration covered by an ordering-rationale
/// comment? The walk up skips sibling atomic declarations, attributes,
/// and the struct header so one comment covers a run of fields.
fn has_ordering_comment(lines: &[LineView], i: usize) -> bool {
    preceded_by(lines, i, 0, names_an_ordering, |code| {
        let t = code.trim();
        is_atomic_decl(code)
            || t.starts_with("#[")
            || (t.ends_with('{')
                && (t.contains("struct ") || t.contains("enum ") || t.contains("union ")))
    })
}

/// Shared look-back: accept if `accept` matches the comment on line `i`
/// or any comment found walking upward, skipping blank lines, lines
/// matched by `skip_code`, and up to `budget` other statement lines.
fn preceded_by(
    lines: &[LineView],
    i: usize,
    mut budget: usize,
    accept: impl Fn(&str) -> bool,
    skip_code: impl Fn(&str) -> bool,
) -> bool {
    if accept(&lines[i].comment) {
        return true;
    }
    let mut j = i;
    while j > 0 {
        j -= 1;
        let line = &lines[j];
        if accept(&line.comment) {
            return true;
        }
        let code = line.code.trim();
        if !line.comment.trim().is_empty() && code.is_empty() {
            continue; // part of the comment block: keep reading upward
        }
        if code.is_empty() || skip_code(&line.code) {
            continue;
        }
        if budget == 0 {
            return false;
        }
        budget -= 1;
    }
    false
}

/// Width-parametric model APIs whose lane-count argument must come
/// from a `VectorIsa`, never a bare literal.
const WIDTH_PARAM_APIS: [&str; 3] = [
    "chain_bound_efficiency",
    "accumulator_registers",
    "satisfies_register_constraint",
];

/// Retired NEON-128 width constants; any surviving reference is a
/// hardcoded 128-bit assumption the width-agnostic API removed.
const RETIRED_WIDTH_CONSTS: [&str; 3] = ["F32_LANES", "TOTAL_VREGS", "SPARE_VREGS"];

/// Does this line call a width-parametric API with a bare integer as
/// its first argument (e.g. `shape.chain_bound_efficiency(4, lat)`)?
fn calls_width_api_with_literal(code: &str) -> bool {
    let bytes = code.as_bytes();
    for api in WIDTH_PARAM_APIS {
        let mut from = 0;
        while let Some(pos) = code[from..].find(api) {
            let start = from + pos;
            let end = start + api.len();
            from = end;
            if start > 0 && is_ident_byte(bytes[start - 1]) {
                continue; // part of a longer identifier
            }
            let Some(args) = code[end..].trim_start().strip_prefix('(') else {
                continue; // definition site or bare mention
            };
            let arg = args.trim_start();
            let digits = arg.chars().take_while(char::is_ascii_digit).count();
            if digits > 0 {
                let after = arg[digits..].trim_start();
                if after.starts_with(',') || after.starts_with(')') {
                    return true;
                }
            }
        }
    }
    false
}

fn path_allows_width_literals(rel: &str) -> bool {
    // The ISA descriptors are where vector widths are *defined*.
    rel.ends_with("crates/model/src/isa.rs")
}

/// A parsed `lint:allow` waiver.
struct Waiver {
    line: usize,
    rule: String,
    used: bool,
}

/// Extract waivers, flagging malformed ones (missing rationale).
/// Only plain `//` comments count: doc comments (`///`, `//!`) are
/// documentation *about* waivers, never waivers themselves.
fn collect_waivers(rel: &str, lines: &[LineView], report: &mut Report) -> Vec<Waiver> {
    let mut waivers = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        let comment = &line.comment;
        let lead = comment.trim_start();
        if lead.starts_with('/') || lead.starts_with('!') {
            continue; // doc comment: `///` or `//!`
        }
        let Some(pos) = comment.find("lint:allow(") else {
            continue;
        };
        let rest = &comment[pos + "lint:allow(".len()..];
        let Some(close) = rest.find(')') else {
            report.push(
                Finding::warning("LINT-W105", rel, "malformed waiver: missing `)`")
                    .at(format!("line {}", idx + 1)),
            );
            continue;
        };
        let rule = rest[..close].trim().to_string();
        let after = rest[close + 1..].trim_start();
        if !after.starts_with("--") || after.trim_start_matches('-').trim().is_empty() {
            report.push(
                Finding::warning(
                    "LINT-W105",
                    rel,
                    format!("waiver for `{rule}` lacks a `-- rationale`"),
                )
                .at(format!("line {}", idx + 1)),
            );
            continue;
        }
        waivers.push(Waiver {
            line: idx,
            rule,
            used: false,
        });
    }
    waivers
}

/// Is the finding for `rule` at line `i` waived (same line or above)?
fn waived(waivers: &mut [Waiver], rule: &str, i: usize) -> bool {
    for w in waivers.iter_mut() {
        if w.rule == rule && (w.line == i || w.line + 1 == i) {
            w.used = true;
            return true;
        }
    }
    false
}

fn path_allows_spawn(rel: &str) -> bool {
    // pool.rs: the workers themselves. serve/server.rs + serve/tcp.rs:
    // the serving layer's long-lived dispatcher / acceptor / connection
    // threads — one per server or connection, never one per GEMM.
    // sync/mc/shim.rs: the model checker's thread facade *is* the
    // spawn layer (it registers model threads with the controller).
    // analyze/mc.rs: the model-check drivers spawn *model* threads
    // through the facade — the checker schedules them, not the OS.
    rel.ends_with("crates/gemm/src/pool.rs")
        || rel.ends_with("crates/serve/src/server.rs")
        || rel.ends_with("crates/serve/src/tcp.rs")
        || rel.ends_with("crates/sync/src/mc/shim.rs")
        || rel.ends_with("crates/analyze/src/mc.rs")
}

fn path_allows_clock(rel: &str) -> bool {
    // serve/clock.rs is the serving layer's single clock access point:
    // deadlines and the coalescing window are functional wall-time
    // semantics, and funnelling them through one shim keeps the rest
    // of that crate under this rule.
    rel.ends_with("crates/core/src/telemetry.rs")
        || rel.ends_with("crates/serve/src/clock.rs")
        || rel.contains("crates/bench/")
        || rel.starts_with("examples/")
        || rel.contains("/examples/")
}

fn path_is_test(rel: &str) -> bool {
    rel.starts_with("tests/") || rel.contains("/tests/")
}

/// Lint one file's source. `rel` is the workspace-relative path with
/// `/` separators (used for the per-file allowlists).
pub fn lint_source(rel: &str, source: &str) -> Report {
    let mut report = Report::new();
    report.files_scanned = 1;
    if path_is_test(rel) {
        return report;
    }
    let lines = strip_source(source);
    let test_start = lines
        .iter()
        .position(|l| l.code.contains("#[cfg(test)]"))
        .unwrap_or(lines.len());
    let mut waivers = collect_waivers(rel, &lines[..test_start], &mut report);

    for (i, line) in lines[..test_start].iter().enumerate() {
        let code = &line.code;
        let loc = || format!("line {}", i + 1);

        if has_word(code, "unsafe")
            && !has_safety_comment(&lines, i)
            && !waived(&mut waivers, "safety-comment", i)
        {
            report.push(
                Finding::error(
                    "LINT-E101",
                    rel,
                    "`unsafe` without a `// SAFETY:` comment justifying it",
                )
                .at(loc()),
            );
        }

        if is_atomic_decl(code)
            && !has_ordering_comment(&lines, i)
            && !waived(&mut waivers, "atomic-ordering", i)
        {
            report.push(
                Finding::error(
                    "LINT-E102",
                    rel,
                    "atomic declared without a comment naming its memory-ordering discipline",
                )
                .at(loc()),
            );
        }

        if (code.contains("thread::spawn") || code.contains("thread::Builder"))
            && !path_allows_spawn(rel)
            && !waived(&mut waivers, "thread-spawn", i)
        {
            report.push(
                Finding::error(
                    "LINT-E103",
                    rel,
                    "thread creation (`thread::spawn`/`thread::Builder`) outside the worker \
                     pool and serving layer — route work through `TaskPool` (§III-D: \
                     spawn-per-call overhead)",
                )
                .at(loc()),
            );
        }

        if code.contains("Instant::now")
            && !path_allows_clock(rel)
            && !waived(&mut waivers, "instant-now", i)
        {
            report.push(
                Finding::error(
                    "LINT-E104",
                    rel,
                    "`Instant::now` outside telemetry/bench code — use \
                     `telemetry::now_if`/`Recorder::now` so untimed paths never read the clock",
                )
                .at(loc()),
            );
        }

        if !path_allows_width_literals(rel)
            && (RETIRED_WIDTH_CONSTS.iter().any(|c| has_word(code, c))
                || calls_width_api_with_literal(code))
            && !waived(&mut waivers, "vector-width-literal", i)
        {
            report.push(
                Finding::error(
                    "LINT-E106",
                    rel,
                    "hardcoded vector width — take the lane count from a `VectorIsa` \
                     descriptor instead of a bare literal or retired NEON-128 constant",
                )
                .at(loc()),
            );
        }
    }

    for w in &waivers {
        if w.used {
            report.waivers_used += 1;
        } else if crate::ordering::RULES.contains(&w.rule.as_str()) {
            // Concurrency-pass waivers are owned by `ordering`; this
            // front cannot see whether they matched a finding there.
        } else {
            report.push(
                Finding::warning(
                    "LINT-W105",
                    rel,
                    format!("waiver for `{}` matched no finding — remove it", w.rule),
                )
                .at(format!("line {}", w.line + 1)),
            );
        }
    }
    report
}

/// Recursively collect the workspace's `.rs` files (skipping build
/// output and VCS metadata), as `(relative_path, absolute_path)`.
pub fn workspace_rs_files(root: &Path) -> Vec<(String, std::path::PathBuf)> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&dir) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if name == "target" || name == ".git" || name == "results" {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                let rel = path
                    .strip_prefix(root)
                    .unwrap_or(&path)
                    .to_string_lossy()
                    .replace('\\', "/");
                files.push((rel, path));
            }
        }
    }
    files.sort();
    files
}

/// Lint every `.rs` file under `root`.
pub fn lint_workspace(root: &Path) -> Report {
    let mut report = Report::new();
    for (rel, path) in workspace_rs_files(root) {
        match std::fs::read_to_string(&path) {
            Ok(source) => report.merge(lint_source(&rel, &source)),
            Err(e) => report.push(Finding::warning(
                "LINT-W105",
                rel,
                format!("unreadable source file: {e}"),
            )),
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strips_comments_and_strings() {
        let lines = strip_source(
            "let x = \"unsafe // not code\"; // but unsafe here is comment\nunsafe { x }",
        );
        assert!(!has_word(&lines[0].code, "unsafe"));
        assert!(lines[0].comment.contains("unsafe here"));
        assert!(has_word(&lines[1].code, "unsafe"));
    }

    #[test]
    fn block_comments_nest_and_span_lines() {
        let lines = strip_source("/* outer /* inner */ still */ code()\n/* open\nunsafe\n*/ fin");
        assert!(lines[0].code.contains("code()"));
        assert!(!has_word(&lines[2].code, "unsafe"));
        assert!(lines[3].code.contains("fin"));
    }

    #[test]
    fn raw_strings_and_lifetimes_survive() {
        let lines = strip_source("let p = r#\"unsafe \" inside\"#; f::<'a>('x', '\\n')");
        assert!(!has_word(&lines[0].code, "unsafe"));
        assert!(lines[0].code.contains("f::<'a>"));
    }

    #[test]
    fn unsafe_requires_safety_comment() {
        let bad = lint_source("crates/x/src/a.rs", "fn f() {\n    unsafe { g() }\n}");
        assert!(bad.has_code("LINT-E101"));
        let good = lint_source(
            "crates/x/src/a.rs",
            "fn f() {\n    // SAFETY: g is fine here.\n    unsafe { g() }\n}",
        );
        assert!(!good.has_code("LINT-E101"), "{good}");
    }

    #[test]
    fn atomic_decl_requires_ordering_comment() {
        let bad = lint_source("crates/x/src/a.rs", "struct S {\n    hits: AtomicU64,\n}");
        assert!(bad.has_code("LINT-E102"));
        let good = lint_source(
            "crates/x/src/a.rs",
            "struct S {\n    /// Counters; relaxed, monotonic.\n    hits: AtomicU64,\n    misses: AtomicU64,\n}",
        );
        assert!(!good.has_code("LINT-E102"), "{good}");
        // Initializers and imports are not declarations.
        let init = lint_source(
            "crates/x/src/a.rs",
            "use std::sync::atomic::AtomicU64;\nfn f() { let s = S { hits: AtomicU64::new(0) }; }",
        );
        assert!(!init.has_code("LINT-E102"), "{init}");
    }

    #[test]
    fn spawn_and_clock_are_fenced_to_their_files() {
        let spawn = "fn f() { std::thread::spawn(|| ()); }";
        assert!(lint_source("crates/core/src/exec.rs", spawn).has_code("LINT-E103"));
        assert!(!lint_source("crates/gemm/src/pool.rs", spawn).has_code("LINT-E103"));
        // The serving layer's long-lived service threads are allowed...
        assert!(!lint_source("crates/serve/src/server.rs", spawn).has_code("LINT-E103"));
        assert!(!lint_source("crates/serve/src/tcp.rs", spawn).has_code("LINT-E103"));
        // ...but the rest of that crate is not.
        assert!(lint_source("crates/serve/src/wire.rs", spawn).has_code("LINT-E103"));
        // `thread::Builder` is thread creation too — the literal-spawn
        // loophole is closed.
        let builder = "fn f() { std::thread::Builder::new().spawn(|| ()).unwrap(); }";
        assert!(lint_source("crates/core/src/exec.rs", builder).has_code("LINT-E103"));
        assert!(!lint_source("crates/serve/src/server.rs", builder).has_code("LINT-E103"));
        let clock = "fn f() { let t = Instant::now(); }";
        assert!(lint_source("crates/core/src/exec.rs", clock).has_code("LINT-E104"));
        assert!(!lint_source("crates/core/src/telemetry.rs", clock).has_code("LINT-E104"));
        assert!(!lint_source("crates/bench/src/timing.rs", clock).has_code("LINT-E104"));
        assert!(!lint_source("examples/demo.rs", clock).has_code("LINT-E104"));
        // The serve crate's clock shim is the crate's only allowed
        // clock site; a stray read elsewhere in serve still fails.
        assert!(!lint_source("crates/serve/src/clock.rs", clock).has_code("LINT-E104"));
        assert!(lint_source("crates/serve/src/server.rs", clock).has_code("LINT-E104"));
        // The tracing module is deliberately *not* on the allowlist:
        // its one clock site carries an audited `lint:allow` waiver, so
        // a second unwaivered read there is still caught.
        assert!(lint_source("crates/core/src/trace.rs", clock).has_code("LINT-E104"));
        assert!(!lint_source(
            "crates/core/src/trace.rs",
            "// lint:allow(instant-now) -- tracing's audited clock site\n\
             fn f() { let t = Instant::now(); }",
        )
        .has_code("LINT-E104"));
    }

    #[test]
    fn width_literals_are_fenced_to_isa_definitions() {
        // A bare lane count fed to a width-parametric API is flagged...
        let bad = "let e = shape.chain_bound_efficiency(4, lat);";
        assert!(lint_source("crates/x/src/a.rs", bad).has_code("LINT-E106"));
        let bad2 = "if k.satisfies_register_constraint(4, 32, 2) {}";
        assert!(lint_source("crates/x/src/a.rs", bad2).has_code("LINT-E106"));
        // ...taking it from the ISA is not.
        let good = "let e = shape.chain_bound_efficiency(isa.lanes_f32(), lat);";
        assert!(!lint_source("crates/x/src/a.rs", good).has_code("LINT-E106"));
        // Definition sites do not trip the rule.
        let def = "pub fn chain_bound_efficiency(&self, lanes: usize) -> f64 {";
        assert!(!lint_source("crates/x/src/a.rs", def).has_code("LINT-E106"));
        // Retired constants are flagged everywhere but the ISA file.
        let retired = "let n = mr.div_ceil(F32_LANES);";
        assert!(lint_source("crates/x/src/a.rs", retired).has_code("LINT-E106"));
        assert!(!lint_source("crates/model/src/isa.rs", retired).has_code("LINT-E106"));
        // Waivable like every other rule.
        let waived = "// lint:allow(vector-width-literal) -- NEON-only fallback table\n\
                      let e = shape.chain_bound_efficiency(4, lat);";
        assert!(!lint_source("crates/x/src/a.rs", waived).has_code("LINT-E106"));
    }

    #[test]
    fn test_code_is_exempt() {
        let src = "fn f() {}\n#[cfg(test)]\nmod tests {\n    fn g() { unsafe { h() } }\n}";
        assert!(!lint_source("crates/x/src/a.rs", src).has_code("LINT-E101"));
        assert!(!lint_source("tests/integration.rs", "unsafe { h() }").has_code("LINT-E101"));
    }

    #[test]
    fn waivers_suppress_and_unused_waivers_warn() {
        let waived = lint_source(
            "crates/x/src/a.rs",
            "// lint:allow(instant-now) -- park-time accounting, not hot path\nlet t = Instant::now();",
        );
        assert!(!waived.has_code("LINT-E104"), "{waived}");
        assert_eq!(waived.waivers_used, 1);

        let unused = lint_source(
            "crates/x/src/a.rs",
            "// lint:allow(instant-now) -- nothing here\nlet t = 3;",
        );
        assert!(unused.has_code("LINT-W105"));

        let malformed = lint_source(
            "crates/x/src/a.rs",
            "// lint:allow(instant-now)\nlet t = Instant::now();",
        );
        assert!(malformed.has_code("LINT-W105"));
        assert!(malformed.has_code("LINT-E104"));
    }

    #[test]
    fn doc_comments_cannot_waive() {
        // A doc comment describing the waiver syntax is not a waiver
        // (and must not warn as an unused one).
        let r = lint_source(
            "crates/x/src/a.rs",
            "//! Waive with `// lint:allow(instant-now) -- why`.\nfn f() {}",
        );
        assert!(!r.has_code("LINT-W105"), "{r}");
        let doc = lint_source(
            "crates/x/src/a.rs",
            "/// lint:allow(instant-now) -- not a real waiver\nlet t = Instant::now();",
        );
        assert!(doc.has_code("LINT-E104"), "{doc}");
    }

    #[test]
    fn one_comment_covers_a_field_run() {
        let src = "#[repr(align(128))]\nstruct Shard {\n    /// Per-shard relaxed counters.\n    a: AtomicU64,\n    b: AtomicU64,\n    c: [AtomicU64; 4],\n}";
        let r = lint_source("crates/x/src/a.rs", src);
        assert!(!r.has_code("LINT-E102"), "{r}");
    }

    #[test]
    fn static_atomic_needs_its_own_comment() {
        let src = "fn f() {}\nstatic NEXT: AtomicUsize = AtomicUsize::new(0);";
        assert!(lint_source("crates/x/src/a.rs", src).has_code("LINT-E102"));
        let ok = "/// Slot allocator; relaxed monotonic counter.\nstatic NEXT: AtomicUsize = AtomicUsize::new(0);";
        assert!(!lint_source("crates/x/src/a.rs", ok).has_code("LINT-E102"));
    }
}
