//! `smm-analyze` — static kernel-contract verifier and repository
//! invariant linter.
//!
//! Two fronts, one report format, one exit code:
//!
//! * **Kernel front** ([`verifier`]) — proves, without running the
//!   simulator, that every registered kernel honors its paper-derived
//!   contract: the Eq. 4 register budget and a stream-level live-range
//!   proof that nothing spills ([`liveness`]); a RAW dependence-chain
//!   critical path that separates avoidable scheduling serialization
//!   (Fig. 7's pathology) from intrinsically latency-bound edge shapes
//!   ([`hazard`]); load/store bounds, alignment, and operand aliasing
//!   against the declared packing extents ([`bounds`]); and edge-tile
//!   residue coverage of each registry ([`coverage`]).
//! * **Lint front** ([`lint`]) — a hand-rolled scanner holding the
//!   workspace's concurrency/timing conventions: `SAFETY:` comments on
//!   `unsafe`, ordering rationales on atomics, `thread::spawn` fenced
//!   to the pool, `Instant::now` fenced to telemetry/bench code.
//!
//! * **Concurrency front** ([`ordering`], the `concurrency`
//!   subcommand) — a cross-file atomic-ordering dataflow pass over
//!   every `Ordering::*` literal: release stores must have an
//!   acquire-side observer somewhere (`AN-C001`), relaxed loads of
//!   release-published fields need an acquire fence (`AN-C002`),
//!   seqlock readers must revalidate (`AN-C003`), and held lock
//!   guards must nest in one global order (`AN-C004`). Its dynamic
//!   counterpart — exhaustive schedule exploration of the real
//!   protocols — lives in `smm_sync::mc` and runs via
//!   `concurrency --model-check` under `--cfg smm_model_check`.
//!
//! All fronts emit [`report::Finding`]s with stable codes (`AN-*`,
//! `LINT-*`) rendered as human text or JSON; the CLI (`smm-analyze`)
//! exits non-zero on errors (and on warnings under `--deny-warnings`).
//! [`fixtures`] holds golden bad inputs that must each trip their
//! check — the analyzer's own regression net.

#![deny(missing_docs)]

pub mod bounds;
pub mod coverage;
pub mod fixtures;
pub mod hazard;
pub mod lint;
pub mod liveness;
#[cfg(smm_model_check)]
pub mod mc;
pub mod ordering;
pub mod report;
pub mod verifier;

pub use report::{Finding, Report, Severity};
pub use verifier::{verify_all, VerifyConfig};
