//! Load/store bounds, alignment, and aliasing checks.
//!
//! Every memory access of a generated kernel stream must land inside
//! one of the operand regions the kernel's parameters declare (packed
//! `A` sliver, packed `B` sliver, the `C` tile, the staged `alpha`
//! scalar). Stores must additionally hit a writable region only —
//! a store into a packed operand would corrupt data shared with the
//! other micro-kernels of the same macro-tile. On the 128-bit ISA,
//! vector accesses must be 16-byte aligned, matching the `ldr q`/`str q`
//! forms the trace generator models (§III-B: unaligned slivers force
//! scalar loads); SVE-style ISAs require only element alignment, and
//! predicated accesses are bounds-checked at their first active element
//! (inactive lanes never fault).

use smm_simarch::isa::{Inst, Op};

/// One declared operand region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemRegion {
    /// Region name used in findings (`A`, `B`, `C`, `alpha`).
    pub name: &'static str,
    /// First byte.
    pub base: u64,
    /// Length in bytes.
    pub len: u64,
    /// Whether stores are allowed.
    pub writable: bool,
}

impl MemRegion {
    /// Whether `[addr, addr + size)` lies fully inside this region.
    pub fn contains(&self, addr: u64, size: u64) -> bool {
        addr >= self.base && addr.saturating_add(size) <= self.base + self.len
    }

    /// Whether two regions overlap.
    pub fn overlaps(&self, other: &MemRegion) -> bool {
        self.base < other.base + other.len && other.base < self.base + self.len
    }
}

/// A single memory-access violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AccessViolation {
    /// Access outside every declared region.
    OutOfBounds {
        /// Index of the offending instruction.
        index: usize,
        /// Its operation.
        op: Op,
        /// The accessed address.
        addr: u64,
        /// Access size in bytes.
        size: u64,
    },
    /// Store into a read-only region.
    ReadOnlyStore {
        /// Index of the offending instruction.
        index: usize,
        /// The accessed address.
        addr: u64,
        /// Name of the read-only region hit.
        region: &'static str,
    },
    /// Vector access below the ISA's required alignment.
    Misaligned {
        /// Index of the offending instruction.
        index: usize,
        /// The accessed address.
        addr: u64,
        /// The required alignment in bytes.
        align: u64,
    },
    /// Two declared regions overlap (operand aliasing).
    RegionOverlap {
        /// First region name.
        a: &'static str,
        /// Second region name.
        b: &'static str,
    },
}

impl std::fmt::Display for AccessViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AccessViolation::OutOfBounds {
                index,
                op,
                addr,
                size,
            } => write!(
                f,
                "inst #{index} {op:?} touches [{addr:#x}, {:#x}) outside every declared operand",
                addr + size
            ),
            AccessViolation::ReadOnlyStore {
                index,
                addr,
                region,
            } => write!(
                f,
                "inst #{index} stores to {addr:#x} inside read-only operand {region}"
            ),
            AccessViolation::Misaligned { index, addr, align } => {
                write!(
                    f,
                    "inst #{index} vector access at {addr:#x} is not {align}-byte aligned"
                )
            }
            AccessViolation::RegionOverlap { a, b } => {
                write!(f, "declared operand regions {a} and {b} overlap")
            }
        }
    }
}

/// Bytes touched by a memory op, or `None` for non-memory ops.
/// `vbytes` is the active ISA's vector register width. A predicated
/// access is checked at its first active element only: the governing
/// predicate clamps the tail, and inactive SVE lanes never fault.
fn access_size(op: Op, elem: u64, vbytes: u64) -> Option<u64> {
    match op {
        Op::LdVec | Op::StVec => Some(vbytes),
        Op::LdVecPred | Op::StVecPred => Some(elem),
        Op::LdScalar | Op::StScalar => Some(elem),
        Op::LdPair => Some(2 * elem),
        _ => None,
    }
}

/// Required alignment of a memory op, or `None` when unchecked. The
/// 128-bit ISA models `ldr q`/`str q` (16-byte); wider, SVE-style
/// vectors and all predicated forms require element alignment only.
fn required_alignment(op: Op, elem: u64, vbytes: u64) -> Option<u64> {
    match op {
        Op::LdVec | Op::StVec if vbytes == 16 => Some(16),
        Op::LdVec | Op::StVec | Op::LdVecPred | Op::StVecPred => Some(elem),
        _ => None,
    }
}

/// Check every access of `insts` against `regions`.
///
/// `disjoint` lists the region indices that must be pairwise
/// non-overlapping (operands that the kernel reads and writes
/// concurrently); auxiliary regions like the `alpha` staging slot may
/// legitimately sit inside `C` and are left out of that set.
pub fn check_stream(
    insts: &[Inst],
    regions: &[MemRegion],
    disjoint: &[usize],
    elem: u64,
    vbytes: u64,
) -> Vec<AccessViolation> {
    let mut out = Vec::new();
    for (ai, &i) in disjoint.iter().enumerate() {
        for &j in &disjoint[ai + 1..] {
            if regions[i].overlaps(&regions[j]) {
                out.push(AccessViolation::RegionOverlap {
                    a: regions[i].name,
                    b: regions[j].name,
                });
            }
        }
    }
    for (index, inst) in insts.iter().enumerate() {
        let Some(size) = access_size(inst.op, elem, vbytes) else {
            continue;
        };
        let addr = inst.addr;
        if let Some(align) = required_alignment(inst.op, elem, vbytes) {
            if addr % align != 0 {
                out.push(AccessViolation::Misaligned { index, addr, align });
            }
        }
        match regions.iter().find(|r| r.contains(addr, size)) {
            None => out.push(AccessViolation::OutOfBounds {
                index,
                op: inst.op,
                addr,
                size,
            }),
            Some(region) => {
                if inst.op.is_store() && !region.writable {
                    // A store that lands in a writable region too (the
                    // regions may nest) is fine; re-check against all.
                    if !regions.iter().any(|r| r.writable && r.contains(addr, size)) {
                        out.push(AccessViolation::ReadOnlyStore {
                            index,
                            addr,
                            region: region.name,
                        });
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use smm_simarch::isa::{s, v, Inst};
    use smm_simarch::phase::Phase;

    const P: Phase = Phase::Kernel;

    fn regions() -> Vec<MemRegion> {
        vec![
            MemRegion {
                name: "A",
                base: 0x1000,
                len: 0x100,
                writable: false,
            },
            MemRegion {
                name: "C",
                base: 0x8000,
                len: 0x100,
                writable: true,
            },
        ]
    }

    #[test]
    fn in_bounds_accesses_pass() {
        let insts = vec![
            Inst::ld_vec(v(0), 0x1000, P),
            Inst::ld_vec(v(1), 0x10f0, P), // last full vector of A
            Inst::st_vec(v(0), 0x8000, P),
            Inst::ld_scalar(s(0), 0x10fc, P),
        ];
        assert!(check_stream(&insts, &regions(), &[0, 1], 4, 16).is_empty());
    }

    #[test]
    fn out_of_bounds_flagged() {
        let insts = vec![Inst::ld_vec(v(0), 0x1100, P)]; // one past A
        let v = check_stream(&insts, &regions(), &[0, 1], 4, 16);
        assert!(matches!(
            v[0],
            AccessViolation::OutOfBounds { addr: 0x1100, .. }
        ));
    }

    #[test]
    fn store_into_read_only_operand_flagged() {
        let insts = vec![Inst::st_vec(v(0), 0x1000, P)];
        let v = check_stream(&insts, &regions(), &[0, 1], 4, 16);
        assert!(matches!(
            v[0],
            AccessViolation::ReadOnlyStore { region: "A", .. }
        ));
    }

    #[test]
    fn misalignment_flagged() {
        let insts = vec![Inst::ld_vec(v(0), 0x1004, P)];
        let v = check_stream(&insts, &regions(), &[0, 1], 4, 16);
        assert!(v
            .iter()
            .any(|x| matches!(x, AccessViolation::Misaligned { .. })));
    }

    #[test]
    fn wide_vectors_are_bounds_checked_at_full_width() {
        // A load at 0x10f0: the last 16 bytes of A. In bounds for a
        // 128-bit register, 16 bytes past the end for a 256-bit one.
        let insts = vec![Inst::ld_vec(v(0), 0x10f0, P)];
        assert!(check_stream(&insts, &regions(), &[0, 1], 4, 16).is_empty());
        let viol = check_stream(&insts, &regions(), &[0, 1], 4, 32);
        assert!(matches!(viol[0], AccessViolation::OutOfBounds { .. }));
    }

    #[test]
    fn predicated_accesses_are_element_aligned_and_tail_tolerant() {
        use smm_simarch::isa::pr;
        // First active element on the last word of A: the governing
        // predicate clamps the tail, so no out-of-bounds.
        let insts = vec![Inst::ld_vec_pred(v(0), pr(0), 0x10fc, P)];
        assert!(check_stream(&insts, &regions(), &[0, 1], 4, 32).is_empty());
        // Sub-element alignment is still a violation.
        let bad = vec![Inst::ld_vec_pred(v(0), pr(0), 0x1002, P)];
        let viol = check_stream(&bad, &regions(), &[0, 1], 4, 32);
        assert!(matches!(
            viol[0],
            AccessViolation::Misaligned { align: 4, .. }
        ));
    }

    #[test]
    fn overlapping_operands_flagged() {
        let mut r = regions();
        r[1].base = 0x1080; // C now aliases A
        let v = check_stream(&[], &r, &[0, 1], 4, 16);
        assert_eq!(v[0], AccessViolation::RegionOverlap { a: "A", b: "C" });
    }
}
