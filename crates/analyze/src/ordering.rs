//! Atomic-ordering dataflow pass (the `concurrency` subcommand's
//! static front): a cross-file analysis of every `Ordering::*` literal
//! use site in the workspace, checking that the release/acquire
//! pairing discipline the lock-free runtime depends on actually holds
//! in the source.
//!
//! The pass builds, per atomic *field name* (the last path segment of
//! the receiver — `slot.seq.load(..)` and `self.seq.store(..)` are the
//! same field `seq`), a pairing graph of release-side stores and
//! acquire-side loads across all files, plus per-function facts
//! (acquire fences, lock-guard acquisition order, seqlock shapes).
//!
//! Rules:
//!
//! * `AN-C001` (`release-pairing`) — a field is stored with `Release`
//!   (or a release-side RMW) somewhere, but **no** acquire-side load
//!   of that field exists anywhere in the workspace (and no relaxed
//!   load of it sits in a function with an acquire fence). The store
//!   publishes; nothing can ever synchronize with it.
//! * `AN-C002` (`relaxed-load`) — a plain `load(Relaxed)` of a field
//!   that *is* release-published elsewhere, in a function with no
//!   `fence(Acquire)` to upgrade it. The reader can see the flag
//!   without the payload.
//! * `AN-C003` (`seqlock-retry`) — a field written with the seqlock
//!   writer shape (a relaxed store and a release store to the same
//!   field in one function: odd = in progress, even = published) is
//!   read with `Acquire` in a function that lacks the reader's
//!   obligations: a revalidating second load of the field, an
//!   odd-sequence check (`& 1` / `% 2`), and a `!=` comparison.
//! * `AN-C004` (`lock-order`) — two lock guards are acquired in
//!   nested order `A` then `B` in one function and `B` then `A` in
//!   another (possibly another file): the classic deadlock cycle.
//!   Only *held* guards count (a `let`-bound `.lock()`/`.read()`/
//!   `.write()` with empty arguments); temporary guards dropped at
//!   the end of their statement cannot nest.
//!
//! Sites can be waived with the linter's
//! `// lint:allow(<rule>) -- rationale` syntax using the rule names
//! above. Limits, by design: fields pair by bare name (two unrelated
//! fields that share a name share a graph node); orderings passed as
//! variables (the model-checker shims) have no literal and are not
//! sites; guard lifetimes are approximated by function scope. The
//! dynamic half of the subcommand — `smm_sync::mc` schedule
//! exploration — covers what this textual dataflow cannot.

use std::collections::{HashMap, HashSet};
use std::path::Path;

use crate::lint::{strip_source, workspace_rs_files};
use crate::report::{Finding, Report};

/// Waivable rule names of this pass. `lint.rs` consults this list so
/// its unused-waiver warning does not fire on concurrency waivers it
/// cannot see the use of.
pub const RULES: [&str; 4] = [
    "release-pairing",
    "relaxed-load",
    "seqlock-retry",
    "lock-order",
];

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MemOrd {
    Relaxed,
    Acquire,
    Release,
    AcqRel,
    SeqCst,
}

impl MemOrd {
    fn parse(name: &str) -> Option<MemOrd> {
        Some(match name {
            "Relaxed" => MemOrd::Relaxed,
            "Acquire" => MemOrd::Acquire,
            "Release" => MemOrd::Release,
            "AcqRel" => MemOrd::AcqRel,
            "SeqCst" => MemOrd::SeqCst,
            _ => return None,
        })
    }

    fn acq(self) -> bool {
        matches!(self, MemOrd::Acquire | MemOrd::AcqRel | MemOrd::SeqCst)
    }

    fn rel(self) -> bool {
        matches!(self, MemOrd::Release | MemOrd::AcqRel | MemOrd::SeqCst)
    }
}

/// Whether an access is a plain load, a plain store, or an RMW
/// (which has both a load side and a store side).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AccessKind {
    Load,
    Store,
    Rmw,
}

#[derive(Debug, Clone)]
struct Access {
    field: String,
    kind: AccessKind,
    /// Ordering of the load side (None for plain stores).
    load_ord: Option<MemOrd>,
    /// Ordering of the store side (None for plain loads).
    store_ord: Option<MemOrd>,
    line: usize,
    func: usize,
}

#[derive(Debug, Clone)]
struct LockAcq {
    name: String,
    /// `let`-bound guard: held past its statement, can nest.
    held: bool,
    line: usize,
    func: usize,
}

#[derive(Debug, Clone)]
struct Func {
    name: String,
    /// Whether the function body contains an acquire-side fence.
    has_acquire_fence: bool,
    /// Whether the body contains an odd-sequence check (`& 1`, `% 2`).
    has_odd_check: bool,
    /// Whether the body contains a `!=` comparison.
    has_neq: bool,
}

struct Waiver {
    line: usize,
    rule: String,
}

/// Everything the pass extracted from one file.
struct FileFacts {
    rel: String,
    accesses: Vec<Access>,
    locks: Vec<LockAcq>,
    funcs: Vec<Func>,
    waivers: Vec<Waiver>,
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// `scan_functions` output: the function table (index 0 is file
/// scope), sorted `(offset, func_idx)` transitions, and each
/// function's `(start, end)` body span.
type FnScan = (Vec<Func>, Vec<(usize, usize)>, Vec<(usize, usize)>);

/// Scan brace structure to map every text offset to its innermost
/// `fn`. Returns the function table (index 0 is file scope) with
/// body-span flags filled, and sorted `(offset, func_idx)` transitions.
fn scan_functions(t: &str) -> FnScan {
    let bytes = t.as_bytes();
    let mut funcs = vec![Func {
        name: "<file>".to_string(),
        has_acquire_fence: false,
        has_odd_check: false,
        has_neq: false,
    }];
    let mut spans = vec![(0usize, t.len())];
    let mut transitions: Vec<(usize, usize)> = vec![(0, 0)];
    let mut stack: Vec<(usize, u32)> = Vec::new(); // (func idx, entry depth)
    let mut depth = 0u32;
    let mut pending: Option<String> = None;
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        if is_ident_byte(b) {
            let start = i;
            while i < bytes.len() && is_ident_byte(bytes[i]) {
                i += 1;
            }
            if &t[start..i] == "fn" && (start == 0 || !is_ident_byte(bytes[start - 1])) {
                let mut j = i;
                while j < bytes.len() && (bytes[j] as char).is_whitespace() {
                    j += 1;
                }
                let name_start = j;
                while j < bytes.len() && is_ident_byte(bytes[j]) {
                    j += 1;
                }
                if j > name_start {
                    pending = Some(t[name_start..j].to_string());
                }
                i = j;
            }
            continue;
        }
        match b {
            b'{' => {
                depth += 1;
                if let Some(name) = pending.take() {
                    let idx = funcs.len();
                    funcs.push(Func {
                        name,
                        has_acquire_fence: false,
                        has_odd_check: false,
                        has_neq: false,
                    });
                    spans.push((i, t.len()));
                    stack.push((idx, depth));
                    transitions.push((i, idx));
                }
            }
            b'}' => {
                if let Some(&(idx, entry)) = stack.last() {
                    if entry == depth {
                        spans[idx].1 = i;
                        stack.pop();
                        let parent = stack.last().map_or(0, |&(p, _)| p);
                        transitions.push((i, parent));
                    }
                }
                depth = depth.saturating_sub(1);
            }
            b';' => {
                // A trait/extern signature: `fn f(..);` never opens.
                pending = None;
            }
            _ => {}
        }
        i += 1;
    }
    for (idx, &(s, e)) in spans.iter().enumerate() {
        let body = &t[s..e];
        funcs[idx].has_odd_check = has_odd_check(body);
        funcs[idx].has_neq = body.contains("!=");
    }
    (funcs, transitions, spans)
}

/// `& 1` / `&1` (not `&&`) or `% 2`: the odd-sequence test.
fn has_odd_check(body: &str) -> bool {
    let bytes = body.as_bytes();
    let mut from = 0;
    while let Some(pos) = body[from..].find('&') {
        let i = from + pos;
        from = i + 1;
        if bytes.get(i + 1) == Some(&b'&') || (i > 0 && bytes[i - 1] == b'&') {
            continue;
        }
        let mut j = i + 1;
        while bytes.get(j) == Some(&b' ') {
            j += 1;
        }
        if bytes.get(j) == Some(&b'1') && bytes.get(j + 1).is_none_or(|b| !is_ident_byte(*b)) {
            return true;
        }
    }
    let mut from = 0;
    while let Some(pos) = body[from..].find('%') {
        let i = from + pos;
        from = i + 1;
        let mut j = i + 1;
        while bytes.get(j) == Some(&b' ') {
            j += 1;
        }
        if bytes.get(j) == Some(&b'2') && bytes.get(j + 1).is_none_or(|b| !is_ident_byte(*b)) {
            return true;
        }
    }
    false
}

/// The matching open delimiter for the close at `close_idx`, scanning
/// backwards.
fn matching_open(bytes: &[u8], close_idx: usize, open: u8, close: u8) -> Option<usize> {
    let mut depth = 0u32;
    let mut i = close_idx + 1;
    while i > 0 {
        i -= 1;
        if bytes[i] == close {
            depth += 1;
        } else if bytes[i] == open {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
    }
    None
}

/// The matching close paren for the open at `open_idx`, forwards.
fn matching_close(bytes: &[u8], open_idx: usize) -> Option<usize> {
    let mut depth = 0u32;
    for (off, &b) in bytes[open_idx..].iter().enumerate() {
        if b == b'(' {
            depth += 1;
        } else if b == b')' {
            depth -= 1;
            if depth == 0 {
                return Some(open_idx + off);
            }
        }
    }
    None
}

/// The field name of a method-call receiver: the last identifier
/// segment before the `.` at `dot`, skipping index/call suffixes
/// (`slot.hist[p].fetch_add` → `hist`, `self.ring(h).head.load` →
/// `head`).
fn receiver_field(t: &str, dot: usize) -> Option<String> {
    let bytes = t.as_bytes();
    let mut i = dot;
    loop {
        while i > 0 && (bytes[i - 1] as char).is_whitespace() {
            i -= 1;
        }
        if i == 0 {
            return None;
        }
        match bytes[i - 1] {
            b']' => i = matching_open(bytes, i - 1, b'[', b']')?,
            b')' => i = matching_open(bytes, i - 1, b'(', b')')?,
            _ => break,
        }
    }
    let end = i;
    while i > 0 && is_ident_byte(bytes[i - 1]) {
        i -= 1;
    }
    if i == end {
        return None;
    }
    Some(t[i..end].to_string())
}

/// All `Ordering::X` literals in `t[range]`, in textual order.
fn orderings_in(ord_sites: &[(usize, MemOrd)], lo: usize, hi: usize) -> Vec<MemOrd> {
    let start = ord_sites.partition_point(|&(o, _)| o < lo);
    ord_sites[start..]
        .iter()
        .take_while(|&&(o, _)| o < hi)
        .map(|&(_, m)| m)
        .collect()
}

/// Methods with a single combined ordering argument and both a load
/// and a store side.
const RMW_METHODS: [&str; 8] = [
    ".swap(",
    ".fetch_add(",
    ".fetch_sub(",
    ".fetch_and(",
    ".fetch_or(",
    ".fetch_xor(",
    ".fetch_max(",
    ".fetch_min(",
];

/// Parse one file into [`FileFacts`]. `rel` is workspace-relative.
fn parse_file(rel: &str, source: &str) -> FileFacts {
    let all_lines = strip_source(source);
    let test_start = all_lines
        .iter()
        .position(|l| l.code.contains("#[cfg(test)]"))
        .unwrap_or(all_lines.len());
    let lines = &all_lines[..test_start];

    let mut joined = String::new();
    let mut line_starts = Vec::with_capacity(lines.len());
    for line in lines {
        line_starts.push(joined.len());
        joined.push_str(&line.code);
        joined.push('\n');
    }
    let line_of = |offset: usize| line_starts.partition_point(|&s| s <= offset);

    let (mut funcs, transitions, _spans) = scan_functions(&joined);
    let func_of = |offset: usize| {
        let k = transitions.partition_point(|&(o, _)| o <= offset);
        transitions[k.saturating_sub(1)].1
    };

    let mut ord_sites: Vec<(usize, MemOrd)> = Vec::new();
    let mut from = 0;
    while let Some(pos) = joined[from..].find("Ordering::") {
        let start = from + pos + "Ordering::".len();
        let end = start
            + joined[start..]
                .bytes()
                .take_while(|&b| is_ident_byte(b))
                .count();
        if let Some(m) = MemOrd::parse(&joined[start..end]) {
            ord_sites.push((from + pos, m));
        }
        from = end;
    }

    let bytes = joined.as_bytes();
    let mut accesses = Vec::new();

    let mut collect = |pat: &str, kind: AccessKind| {
        let mut from = 0;
        while let Some(pos) = joined[from..].find(pat) {
            let dot = from + pos;
            from = dot + pat.len();
            let open = dot + pat.len() - 1;
            let Some(close) = matching_close(bytes, open) else {
                continue;
            };
            let ords = orderings_in(&ord_sites, open, close);
            if ords.is_empty() {
                continue; // variable ordering or not an atomic call
            }
            let Some(field) = receiver_field(&joined, dot) else {
                continue;
            };
            let (load_ord, store_ord) = match kind {
                AccessKind::Load => (Some(ords[0]), None),
                AccessKind::Store => (None, Some(*ords.last().unwrap())),
                AccessKind::Rmw => {
                    let m = *ords.last().unwrap();
                    (Some(m), Some(m))
                }
            };
            accesses.push(Access {
                field,
                kind,
                load_ord,
                store_ord,
                line: line_of(dot),
                func: func_of(dot),
            });
        }
    };
    collect(".load(", AccessKind::Load);
    collect(".store(", AccessKind::Store);
    for pat in RMW_METHODS {
        collect(pat, AccessKind::Rmw);
    }

    // compare_exchange[_weak]: the last two orderings are success and
    // failure; success covers both sides, failure the load side only.
    for pat in [".compare_exchange_weak(", ".compare_exchange("] {
        let mut from = 0;
        while let Some(pos) = joined[from..].find(pat) {
            let dot = from + pos;
            from = dot + pat.len();
            let open = dot + pat.len() - 1;
            let Some(close) = matching_close(bytes, open) else {
                continue;
            };
            let ords = orderings_in(&ord_sites, open, close);
            if ords.len() < 2 {
                continue;
            }
            let Some(field) = receiver_field(&joined, dot) else {
                continue;
            };
            let success = ords[ords.len() - 2];
            let fail = ords[ords.len() - 1];
            let strongest_load = if fail.acq() { fail } else { success };
            accesses.push(Access {
                field,
                kind: AccessKind::Rmw,
                load_ord: Some(strongest_load),
                store_ord: Some(success),
                line: line_of(dot),
                func: func_of(dot),
            });
        }
    }

    // Fences: mark their functions.
    let mut from = 0;
    while let Some(pos) = joined[from..].find("fence(") {
        let at = from + pos;
        from = at + "fence(".len();
        if at > 0 && (is_ident_byte(bytes[at - 1]) || bytes[at - 1] == b'.') {
            continue; // part of a longer identifier or a method call
        }
        let open = at + "fence(".len() - 1;
        let Some(close) = matching_close(bytes, open) else {
            continue;
        };
        if orderings_in(&ord_sites, open, close)
            .iter()
            .any(|m| m.acq())
        {
            funcs[func_of(at)].has_acquire_fence = true;
        }
    }

    // Lock acquisitions: empty-argument `.lock()` / `.read()` /
    // `.write()`. A guard is *held* when `let`-bound with nothing but
    // `.unwrap()` / `.expect(..)` between the call and the `;`.
    let mut locks = Vec::new();
    for pat in [".lock(", ".read(", ".write("] {
        let mut from = 0;
        while let Some(pos) = joined[from..].find(pat) {
            let dot = from + pos;
            from = dot + pat.len();
            let open = dot + pat.len() - 1;
            let mut j = open + 1;
            while bytes.get(j).is_some_and(|b| (*b as char).is_whitespace()) {
                j += 1;
            }
            if bytes.get(j) != Some(&b')') {
                continue; // has arguments: not a guard acquisition
            }
            let Some(name) = receiver_field(&joined, dot) else {
                continue;
            };
            let mut k = j + 1;
            loop {
                let rest = &joined[k..];
                let trimmed = rest.trim_start();
                let ws = rest.len() - trimmed.len();
                if trimmed.starts_with(".unwrap(") || trimmed.starts_with(".expect(") {
                    let o = k + ws + trimmed.find('(').unwrap();
                    match matching_close(bytes, o) {
                        Some(c) => k = c + 1,
                        None => break,
                    }
                } else {
                    k += ws;
                    break;
                }
            }
            let line = line_of(dot);
            let held = bytes.get(k) == Some(&b';')
                && lines
                    .get(line - 1)
                    .is_some_and(|l| l.code.trim_start().starts_with("let "));
            locks.push(LockAcq {
                name,
                held,
                line,
                func: func_of(dot),
            });
        }
    }

    // Waivers for this pass's rules (same syntax as the linter's).
    let mut waivers = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        let comment = &line.comment;
        let lead = comment.trim_start();
        if lead.starts_with('/') || lead.starts_with('!') {
            continue;
        }
        let Some(pos) = comment.find("lint:allow(") else {
            continue;
        };
        let rest = &comment[pos + "lint:allow(".len()..];
        let Some(close) = rest.find(')') else {
            continue;
        };
        let rule = rest[..close].trim().to_string();
        if RULES.contains(&rule.as_str()) {
            waivers.push(Waiver {
                line: idx + 1,
                rule,
            });
        }
    }

    FileFacts {
        rel: rel.to_string(),
        accesses,
        locks,
        funcs,
        waivers,
    }
}

fn waived(facts: &FileFacts, rule: &str, line: usize) -> bool {
    facts
        .waivers
        .iter()
        .any(|w| w.rule == rule && (w.line == line || w.line + 1 == line))
}

/// Run the pass over already-loaded sources (`(relative_path, text)`).
pub fn analyze_sources(files: &[(&str, &str)]) -> Report {
    let mut report = Report::new();
    let facts: Vec<FileFacts> = files
        .iter()
        .filter(|(rel, _)| !(rel.starts_with("tests/") || rel.contains("/tests/")))
        .map(|(rel, src)| parse_file(rel, src))
        .collect();
    report.files_scanned = facts.len();

    // ---- Global pairing graph -------------------------------------
    #[derive(Default)]
    struct FieldUse {
        rel_stores: Vec<(usize, usize)>, // (file idx, line)
        acq_loads: usize,
        fenced_relaxed_loads: usize,
        relaxed_loads: Vec<(usize, usize)>,
    }
    let mut fields: HashMap<&str, FieldUse> = HashMap::new();
    for (fi, f) in facts.iter().enumerate() {
        for a in &f.accesses {
            let entry = fields.entry(a.field.as_str()).or_default();
            if a.store_ord.is_some_and(MemOrd::rel) {
                entry.rel_stores.push((fi, a.line));
            }
            if let Some(lo) = a.load_ord {
                if lo.acq() {
                    entry.acq_loads += 1;
                } else if a.kind == AccessKind::Load {
                    if f.funcs[a.func].has_acquire_fence {
                        entry.fenced_relaxed_loads += 1;
                    } else {
                        entry.relaxed_loads.push((fi, a.line));
                    }
                }
            }
        }
    }

    // AN-C001: release stores nothing ever acquires.
    let mut sorted: Vec<_> = fields.iter().collect();
    sorted.sort_by_key(|(name, _)| *name);
    for (name, fu) in &sorted {
        if fu.rel_stores.is_empty() || fu.acq_loads > 0 || fu.fenced_relaxed_loads > 0 {
            continue;
        }
        for &(fi, line) in &fu.rel_stores {
            let f = &facts[fi];
            if waived(f, "release-pairing", line) {
                report.waivers_used += 1;
                continue;
            }
            report.push(
                Finding::error(
                    "AN-C001",
                    &f.rel,
                    format!(
                        "release store to `{name}` has no acquire-side observer anywhere \
                         in the workspace — nothing can synchronize with this publication \
                         (pair it with a `load(Acquire)`, an acquiring RMW, or an acquire \
                         fence after a relaxed load)"
                    ),
                )
                .at(format!("line {line}")),
            );
        }
    }

    // AN-C002: relaxed loads of release-published fields.
    for (name, fu) in &sorted {
        if fu.rel_stores.is_empty() {
            continue;
        }
        for &(fi, line) in &fu.relaxed_loads {
            let f = &facts[fi];
            if waived(f, "relaxed-load", line) {
                report.waivers_used += 1;
                continue;
            }
            report.push(
                Finding::error(
                    "AN-C002",
                    &f.rel,
                    format!(
                        "`{name}` is release-published elsewhere but loaded with Relaxed \
                         here, in a function with no acquire fence — the load can observe \
                         the flag without the payload it guards; use `Ordering::Acquire` \
                         or add `fence(Ordering::Acquire)`"
                    ),
                )
                .at(format!("line {line}")),
            );
        }
    }

    // AN-C003: seqlock fields (relaxed + release store in one
    // function) read with Acquire but without the reader obligations.
    let mut seqlock_fields: HashSet<&str> = HashSet::new();
    for f in &facts {
        let mut per_fn: HashMap<(usize, &str), (bool, bool)> = HashMap::new();
        for a in &f.accesses {
            if a.kind != AccessKind::Store {
                continue;
            }
            let slot = per_fn.entry((a.func, a.field.as_str())).or_default();
            match a.store_ord {
                Some(MemOrd::Relaxed) => slot.0 = true,
                Some(m) if m.rel() => slot.1 = true,
                _ => {}
            }
        }
        for ((_, field), (relaxed, release)) in per_fn {
            if relaxed && release {
                seqlock_fields.insert(field);
            }
        }
    }
    for f in &facts {
        for a in &f.accesses {
            let is_acq_read = a.kind == AccessKind::Load && a.load_ord.is_some_and(MemOrd::acq);
            if !is_acq_read || !seqlock_fields.contains(a.field.as_str()) {
                continue;
            }
            let func = &f.funcs[a.func];
            let reload = f.accesses.iter().any(|b| {
                b.func == a.func
                    && b.field == a.field
                    && b.kind == AccessKind::Load
                    && b.line > a.line
            });
            if reload && func.has_odd_check && func.has_neq {
                continue;
            }
            if waived(f, "seqlock-retry", a.line) {
                report.waivers_used += 1;
                continue;
            }
            let missing = if !reload {
                "a revalidating re-read of the sequence after copying the payload"
            } else if !func.has_odd_check {
                "an odd-sequence (`& 1`) write-in-progress check"
            } else {
                "a `!=` comparison rejecting torn snapshots"
            };
            report.push(
                Finding::error(
                    "AN-C003",
                    &f.rel,
                    format!(
                        "seqlock read of `{}` in `{}` is missing {missing} — a torn \
                         payload can be accepted",
                        a.field, func.name
                    ),
                )
                .at(format!("line {}", a.line)),
            );
        }
    }

    // AN-C004: lock-order inversion across held-guard acquisitions.
    struct Edge {
        file: usize,
        line: usize,
        func_name: String,
    }
    let mut edges: HashMap<(String, String), Edge> = HashMap::new();
    for (fi, f) in facts.iter().enumerate() {
        let mut per_fn: HashMap<usize, Vec<&LockAcq>> = HashMap::new();
        for l in &f.locks {
            per_fn.entry(l.func).or_default().push(l);
        }
        for (func, acqs) in per_fn {
            for (i, a) in acqs.iter().enumerate() {
                if !a.held {
                    continue;
                }
                for b in &acqs[i + 1..] {
                    if b.name == a.name {
                        continue;
                    }
                    edges
                        .entry((a.name.clone(), b.name.clone()))
                        .or_insert(Edge {
                            file: fi,
                            line: b.line,
                            func_name: f.funcs[func].name.clone(),
                        });
                }
            }
        }
    }
    let mut keys: Vec<_> = edges.keys().cloned().collect();
    keys.sort();
    let mut reported: HashSet<(String, String)> = HashSet::new();
    for key in keys {
        let (a, b) = key.clone();
        let rev = (b.clone(), a.clone());
        if !edges.contains_key(&rev) || reported.contains(&rev) {
            continue;
        }
        reported.insert(key.clone());
        let fwd = &edges[&key];
        let back = &edges[&rev];
        let f = &facts[fwd.file];
        if waived(f, "lock-order", fwd.line) {
            report.waivers_used += 1;
            continue;
        }
        report.push(
            Finding::error(
                "AN-C004",
                &f.rel,
                format!(
                    "lock order inversion: `{a}` is held while acquiring `{b}` in \
                     `{}`, but `{b}` is held while acquiring `{a}` in `{}` ({} line {}) \
                     — a deadlock cycle",
                    fwd.func_name, back.func_name, facts[back.file].rel, back.line
                ),
            )
            .at(format!("line {}", fwd.line)),
        );
    }

    report
}

/// Run the pass over every `.rs` file under `root`.
pub fn analyze_workspace(root: &Path) -> Report {
    let mut loaded = Vec::new();
    for (rel, path) in workspace_rs_files(root) {
        if let Ok(src) = std::fs::read_to_string(&path) {
            loaded.push((rel, src));
        }
    }
    let refs: Vec<(&str, &str)> = loaded
        .iter()
        .map(|(r, s)| (r.as_str(), s.as_str()))
        .collect();
    analyze_sources(&refs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(files: &[(&str, &str)]) -> Report {
        analyze_sources(files)
    }

    #[test]
    fn paired_release_acquire_is_clean() {
        let src = "
            fn publish(&self) {
                self.data.store(1, Ordering::Relaxed);
                self.ready.store(true, Ordering::Release);
            }
            fn consume(&self) -> u64 {
                if self.ready.load(Ordering::Acquire) {
                    return self.data.load(Ordering::Relaxed);
                }
                0
            }
        ";
        let r = run(&[("a.rs", src)]);
        assert!(r.findings.is_empty(), "{r}");
    }

    #[test]
    fn unpaired_release_store_flagged() {
        let src = "
            fn publish(&self) {
                self.flagx.store(true, Ordering::Release);
            }
            fn consume(&self) -> bool {
                self.flagx.load(Ordering::Relaxed)
            }
        ";
        let r = run(&[("a.rs", src)]);
        assert!(r.has_code("AN-C001"), "{r}");
        assert!(r.has_code("AN-C002"), "{r}");
    }

    #[test]
    fn pairing_graph_spans_files() {
        let writer = "fn w(&self) { self.ready.store(true, Ordering::Release); }";
        let reader = "fn r(&self) -> bool { self.ready.load(Ordering::Acquire) }";
        let r = run(&[("w.rs", writer), ("r.rs", reader)]);
        assert!(!r.has_code("AN-C001"), "{r}");
    }

    #[test]
    fn fence_justifies_relaxed_load() {
        let src = "
            fn publish(&self) { self.seqf.store(2, Ordering::Release); }
            fn observe(&self) -> u64 { self.seqf.load(Ordering::Acquire) }
            fn check(&self) -> u64 {
                fence(Ordering::Acquire);
                self.seqf.load(Ordering::Relaxed)
            }
        ";
        let r = run(&[("a.rs", src)]);
        assert!(!r.has_code("AN-C002"), "{r}");
    }

    #[test]
    fn rmw_counts_as_acquire_observer() {
        let src = "
            fn publish(&self) { self.st.store(1, Ordering::Release); }
            fn claim(&self) -> Result<u64, u64> {
                self.st.compare_exchange(0, 1, Ordering::AcqRel, Ordering::Acquire)
            }
        ";
        let r = run(&[("a.rs", src)]);
        assert!(!r.has_code("AN-C001"), "{r}");
    }

    #[test]
    fn seqlock_reader_without_retry_flagged() {
        let src = "
            fn write(&self, c: u64, v: u64) {
                self.sq.store(c * 2 + 1, Ordering::Relaxed);
                self.val.store(v, Ordering::Relaxed);
                self.sq.store(c * 2 + 2, Ordering::Release);
            }
            fn read(&self) -> u64 {
                let s1 = self.sq.load(Ordering::Acquire);
                self.val.load(Ordering::Relaxed)
            }
        ";
        let r = run(&[("a.rs", src)]);
        assert!(r.has_code("AN-C003"), "{r}");
    }

    #[test]
    fn seqlock_reader_with_full_protocol_clean() {
        let src = "
            fn write(&self, c: u64, v: u64) {
                self.sq.store(c * 2 + 1, Ordering::Relaxed);
                self.val.store(v, Ordering::Relaxed);
                self.sq.store(c * 2 + 2, Ordering::Release);
            }
            fn read(&self) -> Option<u64> {
                let s1 = self.sq.load(Ordering::Acquire);
                if s1 & 1 == 1 { return None; }
                let v = self.val.load(Ordering::Relaxed);
                fence(Ordering::Acquire);
                if self.sq.load(Ordering::Relaxed) != s1 { return None; }
                Some(v)
            }
        ";
        let r = run(&[("a.rs", src)]);
        assert!(!r.has_code("AN-C003"), "{r}");
        assert!(!r.has_code("AN-C002"), "{r}");
    }

    #[test]
    fn lock_order_inversion_flagged_across_files() {
        let f1 = "
            fn path_one(&self) {
                let a = self.alpha.lock().unwrap();
                let b = self.beta.lock().unwrap();
            }
        ";
        let f2 = "
            fn path_two(&self) {
                let b = self.beta.lock().unwrap();
                let a = self.alpha.lock().unwrap();
            }
        ";
        let r = run(&[("one.rs", f1), ("two.rs", f2)]);
        assert!(r.has_code("AN-C004"), "{r}");
    }

    #[test]
    fn temporary_guards_do_not_nest() {
        // Sequential statement-scoped guards (dropped at `;`) in
        // opposite textual orders are not an inversion.
        let src = "
            fn a(&self) {
                self.alpha.lock().unwrap().clear();
                self.beta.lock().unwrap().clear();
            }
            fn b(&self) {
                self.beta.lock().unwrap().clear();
                self.alpha.lock().unwrap().clear();
            }
        ";
        let r = run(&[("a.rs", src)]);
        assert!(!r.has_code("AN-C004"), "{r}");
    }

    #[test]
    fn waiver_suppresses_finding() {
        let src = "
            fn publish(&self) {
                // lint:allow(release-pairing) -- external consumer acquires
                self.solo.store(true, Ordering::Release);
            }
        ";
        let r = run(&[("a.rs", src)]);
        assert!(!r.has_code("AN-C001"), "{r}");
        assert_eq!(r.waivers_used, 1);
    }

    #[test]
    fn test_code_is_exempt() {
        let src = "
            fn real() {}
            #[cfg(test)]
            mod tests {
                fn t(&self) { self.orphan.store(1, Ordering::Release); }
            }
        ";
        let r = run(&[("a.rs", src)]);
        assert!(r.findings.is_empty(), "{r}");
    }

    #[test]
    fn shipped_tree_has_no_an_c_findings() {
        let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .unwrap()
            .parent()
            .unwrap()
            .to_path_buf();
        let r = analyze_workspace(&root);
        let c_findings: Vec<_> = r
            .findings
            .iter()
            .filter(|f| f.code.starts_with("AN-C"))
            .collect();
        assert!(c_findings.is_empty(), "{c_findings:?}");
    }
}
