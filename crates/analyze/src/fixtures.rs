//! Golden bad-kernel fixtures: five deliberately broken inputs, each
//! tripping exactly the check built to catch it. They double as the
//! analyzer's self-test (`smm-analyze --self-check` and the golden
//! integration tests): if a fixture stops being flagged, the verifier
//! has lost a check.

use smm_kernels::registry::EdgeStrategy;
use smm_kernels::trace_gen::kernel_trace;
use smm_kernels::{BLoadStyle, MicroKernelDesc, SchedulePolicy};
use smm_model::{KernelShape, VectorIsa};
use smm_simarch::isa::{v, Inst, Op};

use crate::coverage::EdgeRegistry;
use crate::report::{Finding, Report, Severity};
use crate::verifier::{
    canonical_params, canonical_regions, verify_all, verify_registry, verify_shape, verify_stream,
    VerifyConfig,
};

/// Fixture 1 — a 16×8 register tile: 32 accumulators against the
/// 30-register Eq. 4 budget *at 4 lanes*. The shape is genuinely
/// feasible at wider widths (2·8 = 16 ≤ 30 at SVE-256), so the fixture
/// pins NEON-128 regardless of the session's `--isa`; fixture 5 is its
/// wide-width counterpart. Must be flagged `AN-E001`.
pub fn over_budget_descriptor(cfg: &VerifyConfig) -> Report {
    let cfg = VerifyConfig {
        isa: VectorIsa::neon128(),
        ..*cfg
    };
    let mut report = Report::new();
    verify_shape("fixture/over-budget-16x8", 16, 8, &cfg, &mut report);
    report
}

/// Fixture 2 — a feasible 8×8 kernel whose FMAs have all been rewritten
/// onto a single accumulator register: one serial dependence chain
/// through the 5-cycle FMA pipe, the Fig. 7 pathology in its purest
/// form. Must be flagged `AN-E003`.
pub fn hazard_serialized_stream(cfg: &VerifyConfig) -> Report {
    let desc = MicroKernelDesc::new(8, 8, 1, SchedulePolicy::Naive, BLoadStyle::ScalarPairs);
    let params = canonical_params(desc, cfg.kc);
    let (regions, disjoint) = canonical_regions(&params);
    let (mut insts, _) = kernel_trace(&params);
    for inst in &mut insts {
        if inst.op == Op::Fma {
            inst.dst = v(31);
            inst.srcs[0] = v(31);
        }
    }
    let mut report = Report::new();
    verify_stream(
        "fixture/serialized-8x8",
        KernelShape::new(8, 8),
        &insts,
        &regions,
        &disjoint,
        cfg,
        &mut report,
    );
    report
}

/// Fixture 3 — a correct 16×4 stream with one extra vector load one
/// element past the packed-`B` extent (an off-by-one k-loop bound).
/// Must be flagged `AN-E004`.
pub fn out_of_bounds_stream(cfg: &VerifyConfig) -> Report {
    let desc = MicroKernelDesc::new(
        16,
        4,
        8,
        SchedulePolicy::Interleaved,
        BLoadStyle::ScalarPairs,
    );
    let params = canonical_params(desc, cfg.kc);
    let (regions, disjoint) = canonical_regions(&params);
    let (mut insts, _) = kernel_trace(&params);
    let b_len = cfg.kc as u64 * desc.nr() as u64 * params.elem;
    insts.push(Inst::ld_vec(v(0), params.b_base + b_len, params.phase));
    let mut report = Report::new();
    verify_stream(
        "fixture/oob-16x4",
        KernelShape::new(16, 4),
        &insts,
        &regions,
        &disjoint,
        cfg,
        &mut report,
    );
    report
}

/// Fixture 4 — an edge-kernel registry whose M step list stops at 8:
/// residues 1–7 (and 9–15) of the 16-row tile have no handler. Must be
/// flagged `AN-E006`.
pub fn uncovered_registry() -> Report {
    let registry = EdgeRegistry {
        name: "fixture/uncovered",
        mr: 16,
        nr: 4,
        edge: EdgeStrategy::EdgeKernels,
        m_steps: &[16, 8],
        n_steps: &[4, 2, 1],
        isa: VectorIsa::neon128(),
    };
    let mut report = Report::new();
    verify_registry(&registry, &mut report);
    report
}

/// Fixture 5 — a deliberately over-budget *wide-vector* tile: 32×16 at
/// 512 bits needs `ceil(32/16) * 16 = 32` accumulators against the
/// 30-register budget. Eq. 4 must hold at every width, not just 128
/// bits. Must be flagged `AN-E001`.
pub fn over_budget_wide_descriptor() -> Report {
    let mut report = Report::new();
    let cfg = VerifyConfig::for_isa(VectorIsa::sve512());
    verify_shape("fixture/over-budget-wide-32x16", 32, 16, &cfg, &mut report);
    report
}

/// The expected `(fixture, code)` pairs.
pub const EXPECTED: [(&str, &str); 5] = [
    ("over-budget descriptor", "AN-E001"),
    ("over-budget wide descriptor", "AN-E001"),
    ("hazard-serialized stream", "AN-E003"),
    ("out-of-bounds access", "AN-E004"),
    ("uncovered edge registry", "AN-E006"),
];

/// Run all five fixtures plus the shipped-tree pass and report any
/// deviation from the golden expectations as an `AN-SELF` error.
pub fn self_check(cfg: &VerifyConfig) -> Report {
    let mut out = Report::new();
    let runs: [(&str, &str, Report); 5] = [
        (
            "over-budget descriptor",
            "AN-E001",
            over_budget_descriptor(cfg),
        ),
        (
            "over-budget wide descriptor",
            "AN-E001",
            over_budget_wide_descriptor(),
        ),
        (
            "hazard-serialized stream",
            "AN-E003",
            hazard_serialized_stream(cfg),
        ),
        ("out-of-bounds access", "AN-E004", out_of_bounds_stream(cfg)),
        ("uncovered edge registry", "AN-E006", uncovered_registry()),
    ];
    for (name, code, report) in runs {
        if report.has_code(code) {
            out.push(Finding::info(
                "AN-SELF",
                format!("fixture/{name}"),
                format!("flagged as expected ({code})"),
            ));
        } else {
            out.push(Finding::error(
                "AN-SELF",
                format!("fixture/{name}"),
                format!("expected finding {code} was NOT produced — a check has regressed"),
            ));
        }
    }
    let shipped = verify_all(cfg);
    let noisy = shipped.count(Severity::Error) + shipped.count(Severity::Warning);
    if noisy == 0 {
        out.push(Finding::info(
            "AN-SELF",
            "shipped-profiles",
            format!(
                "all {} shipped kernel streams verify clean",
                shipped.kernels_checked
            ),
        ));
    } else {
        out.push(Finding::error(
            "AN-SELF",
            "shipped-profiles",
            format!("shipped kernels produced {noisy} error/warning findings"),
        ));
    }
    out.kernels_checked = shipped.kernels_checked;
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn each_fixture_trips_its_check() {
        let cfg = VerifyConfig::default();
        assert!(over_budget_descriptor(&cfg).has_code("AN-E001"));
        assert!(over_budget_wide_descriptor().has_code("AN-E001"));
        assert!(hazard_serialized_stream(&cfg).has_code("AN-E003"));
        assert!(out_of_bounds_stream(&cfg).has_code("AN-E004"));
        assert!(uncovered_registry().has_code("AN-E006"));
    }

    #[test]
    fn self_check_is_green_on_the_shipped_tree() {
        let r = self_check(&VerifyConfig::default());
        assert!(r.passes(true), "{r}");
    }
}
