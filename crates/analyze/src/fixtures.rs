//! Golden bad-input fixtures: five deliberately broken kernel inputs
//! plus two broken concurrency sources, each tripping exactly the
//! check built to catch it. They double as the analyzer's self-test
//! (`smm-analyze --self-check`, `smm-analyze concurrency
//! --self-check`, and the golden integration tests): if a fixture
//! stops being flagged, the analyzer has lost a check.

use smm_kernels::registry::EdgeStrategy;
use smm_kernels::trace_gen::kernel_trace;
use smm_kernels::{BLoadStyle, MicroKernelDesc, SchedulePolicy};
use smm_model::{KernelShape, VectorIsa};
use smm_simarch::isa::{v, Inst, Op};

use crate::coverage::EdgeRegistry;
use crate::report::{Finding, Report, Severity};
use crate::verifier::{
    canonical_params, canonical_regions, verify_all, verify_registry, verify_shape, verify_stream,
    VerifyConfig,
};

/// Fixture 1 — a 16×8 register tile: 32 accumulators against the
/// 30-register Eq. 4 budget *at 4 lanes*. The shape is genuinely
/// feasible at wider widths (2·8 = 16 ≤ 30 at SVE-256), so the fixture
/// pins NEON-128 regardless of the session's `--isa`; fixture 5 is its
/// wide-width counterpart. Must be flagged `AN-E001`.
pub fn over_budget_descriptor(cfg: &VerifyConfig) -> Report {
    let cfg = VerifyConfig {
        isa: VectorIsa::neon128(),
        ..*cfg
    };
    let mut report = Report::new();
    verify_shape("fixture/over-budget-16x8", 16, 8, &cfg, &mut report);
    report
}

/// Fixture 2 — a feasible 8×8 kernel whose FMAs have all been rewritten
/// onto a single accumulator register: one serial dependence chain
/// through the 5-cycle FMA pipe, the Fig. 7 pathology in its purest
/// form. Must be flagged `AN-E003`.
pub fn hazard_serialized_stream(cfg: &VerifyConfig) -> Report {
    let desc = MicroKernelDesc::new(8, 8, 1, SchedulePolicy::Naive, BLoadStyle::ScalarPairs);
    let params = canonical_params(desc, cfg.kc);
    let (regions, disjoint) = canonical_regions(&params);
    let (mut insts, _) = kernel_trace(&params);
    for inst in &mut insts {
        if inst.op == Op::Fma {
            inst.dst = v(31);
            inst.srcs[0] = v(31);
        }
    }
    let mut report = Report::new();
    verify_stream(
        "fixture/serialized-8x8",
        KernelShape::new(8, 8),
        &insts,
        &regions,
        &disjoint,
        cfg,
        &mut report,
    );
    report
}

/// Fixture 3 — a correct 16×4 stream with one extra vector load one
/// element past the packed-`B` extent (an off-by-one k-loop bound).
/// Must be flagged `AN-E004`.
pub fn out_of_bounds_stream(cfg: &VerifyConfig) -> Report {
    let desc = MicroKernelDesc::new(
        16,
        4,
        8,
        SchedulePolicy::Interleaved,
        BLoadStyle::ScalarPairs,
    );
    let params = canonical_params(desc, cfg.kc);
    let (regions, disjoint) = canonical_regions(&params);
    let (mut insts, _) = kernel_trace(&params);
    let b_len = cfg.kc as u64 * desc.nr() as u64 * params.elem;
    insts.push(Inst::ld_vec(v(0), params.b_base + b_len, params.phase));
    let mut report = Report::new();
    verify_stream(
        "fixture/oob-16x4",
        KernelShape::new(16, 4),
        &insts,
        &regions,
        &disjoint,
        cfg,
        &mut report,
    );
    report
}

/// Fixture 4 — an edge-kernel registry whose M step list stops at 8:
/// residues 1–7 (and 9–15) of the 16-row tile have no handler. Must be
/// flagged `AN-E006`.
pub fn uncovered_registry() -> Report {
    let registry = EdgeRegistry {
        name: "fixture/uncovered",
        mr: 16,
        nr: 4,
        edge: EdgeStrategy::EdgeKernels,
        m_steps: &[16, 8],
        n_steps: &[4, 2, 1],
        isa: VectorIsa::neon128(),
    };
    let mut report = Report::new();
    verify_registry(&registry, &mut report);
    report
}

/// Fixture 5 — a deliberately over-budget *wide-vector* tile: 32×16 at
/// 512 bits needs `ceil(32/16) * 16 = 32` accumulators against the
/// 30-register budget. Eq. 4 must hold at every width, not just 128
/// bits. Must be flagged `AN-E001`.
pub fn over_budget_wide_descriptor() -> Report {
    let mut report = Report::new();
    let cfg = VerifyConfig::for_isa(VectorIsa::sve512());
    verify_shape("fixture/over-budget-wide-32x16", 32, 16, &cfg, &mut report);
    report
}

/// Fixture 6 — a seqlock whose reader takes the `Acquire` sequence
/// load and the payload but never revalidates: no odd check, no second
/// read. A writer overlapping the read hands it a torn event and the
/// reader accepts it. Must be flagged `AN-C003` (and nothing else —
/// the writer side is shaped correctly).
pub const SEQLOCK_NO_RETRY_SRC: &str = "
    impl Cell {
        fn publish(&self, c: u64, a: u64, b: u64) {
            self.sq.store(c * 2 + 1, Ordering::Relaxed);
            self.lo.store(a, Ordering::Relaxed);
            self.hi.store(b, Ordering::Relaxed);
            self.sq.store(c * 2 + 2, Ordering::Release);
        }

        fn read(&self) -> (u64, u64) {
            let _s1 = self.sq.load(Ordering::Acquire);
            let a = self.lo.load(Ordering::Relaxed);
            let b = self.hi.load(Ordering::Relaxed);
            (a, b)
        }
    }
";

/// Fixture 7 — a flag published with `Release` that no reader ever
/// observes with `Acquire` (or a fenced relaxed load): the publish
/// synchronizes with nothing. Must be flagged `AN-C001` at the store
/// and `AN-C002` at the unfenced relaxed poll of the same field — the
/// one bug seen from both sides.
pub const UNPAIRED_RELEASE_SRC: &str = "
    impl Flag {
        fn publish(&self) {
            self.ready.store(true, Ordering::Release);
        }

        fn poll(&self) -> bool {
            self.spins.fetch_add(1, Ordering::Relaxed);
            self.ready.load(Ordering::Relaxed)
        }
    }
";

/// Run fixture 6 through the ordering pass.
pub fn seqlock_no_retry_fixture() -> Report {
    crate::ordering::analyze_sources(&[("fixture/seqlock_no_retry.rs", SEQLOCK_NO_RETRY_SRC)])
}

/// Run fixture 7 through the ordering pass.
pub fn unpaired_release_fixture() -> Report {
    crate::ordering::analyze_sources(&[("fixture/unpaired_release.rs", UNPAIRED_RELEASE_SRC)])
}

/// The expected `(fixture, code)` pairs.
pub const EXPECTED: [(&str, &str); 7] = [
    ("over-budget descriptor", "AN-E001"),
    ("over-budget wide descriptor", "AN-E001"),
    ("hazard-serialized stream", "AN-E003"),
    ("out-of-bounds access", "AN-E004"),
    ("uncovered edge registry", "AN-E006"),
    ("seqlock reader missing retry", "AN-C003"),
    ("unpaired release store", "AN-C001"),
];

/// Run all five fixtures plus the shipped-tree pass and report any
/// deviation from the golden expectations as an `AN-SELF` error.
pub fn self_check(cfg: &VerifyConfig) -> Report {
    let mut out = Report::new();
    let runs: [(&str, &str, Report); 7] = [
        (
            "over-budget descriptor",
            "AN-E001",
            over_budget_descriptor(cfg),
        ),
        (
            "over-budget wide descriptor",
            "AN-E001",
            over_budget_wide_descriptor(),
        ),
        (
            "hazard-serialized stream",
            "AN-E003",
            hazard_serialized_stream(cfg),
        ),
        ("out-of-bounds access", "AN-E004", out_of_bounds_stream(cfg)),
        ("uncovered edge registry", "AN-E006", uncovered_registry()),
        (
            "seqlock reader missing retry",
            "AN-C003",
            seqlock_no_retry_fixture(),
        ),
        (
            "unpaired release store",
            "AN-C001",
            unpaired_release_fixture(),
        ),
    ];
    for (name, code, report) in runs {
        if report.has_code(code) {
            out.push(Finding::info(
                "AN-SELF",
                format!("fixture/{name}"),
                format!("flagged as expected ({code})"),
            ));
        } else {
            out.push(Finding::error(
                "AN-SELF",
                format!("fixture/{name}"),
                format!("expected finding {code} was NOT produced — a check has regressed"),
            ));
        }
    }
    let shipped = verify_all(cfg);
    let noisy = shipped.count(Severity::Error) + shipped.count(Severity::Warning);
    if noisy == 0 {
        out.push(Finding::info(
            "AN-SELF",
            "shipped-profiles",
            format!(
                "all {} shipped kernel streams verify clean",
                shipped.kernels_checked
            ),
        ));
    } else {
        out.push(Finding::error(
            "AN-SELF",
            "shipped-profiles",
            format!("shipped kernels produced {noisy} error/warning findings"),
        ));
    }
    out.kernels_checked = shipped.kernels_checked;
    out
}

/// The concurrency front's own regression net (`smm-analyze
/// concurrency --self-check`): both bad-concurrency fixtures must trip
/// their `AN-C*` code, and the shipped tree's ordering pass must come
/// back clean.
pub fn concurrency_self_check() -> Report {
    let mut out = Report::new();
    let runs = [
        (
            "seqlock reader missing retry",
            "AN-C003",
            seqlock_no_retry_fixture(),
        ),
        (
            "unpaired release store",
            "AN-C001",
            unpaired_release_fixture(),
        ),
    ];
    for (name, code, report) in runs {
        if report.has_code(code) {
            out.push(Finding::info(
                "AN-SELF",
                format!("fixture/{name}"),
                format!("flagged as expected ({code})"),
            ));
        } else {
            out.push(Finding::error(
                "AN-SELF",
                format!("fixture/{name}"),
                format!("expected finding {code} was NOT produced — a check has regressed"),
            ));
        }
    }
    match workspace_root() {
        Some(root) => {
            let shipped = crate::ordering::analyze_workspace(&root);
            let noisy = shipped.count(Severity::Error) + shipped.count(Severity::Warning);
            if noisy == 0 {
                out.push(Finding::info(
                    "AN-SELF",
                    "shipped-ordering",
                    format!(
                        "shipped tree is AN-C clean ({} files scanned)",
                        shipped.files_scanned
                    ),
                ));
            } else {
                out.push(Finding::error(
                    "AN-SELF",
                    "shipped-ordering",
                    format!("shipped tree produced {noisy} AN-C error/warning findings"),
                ));
            }
        }
        None => out.push(Finding::error(
            "AN-SELF",
            "shipped-ordering",
            "no workspace root found above the current directory",
        )),
    }
    out
}

/// Walk up from the current directory to the first ancestor whose
/// `Cargo.toml` declares `[workspace]`.
fn workspace_root() -> Option<std::path::PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        if let Ok(text) = std::fs::read_to_string(dir.join("Cargo.toml")) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn each_fixture_trips_its_check() {
        let cfg = VerifyConfig::default();
        assert!(over_budget_descriptor(&cfg).has_code("AN-E001"));
        assert!(over_budget_wide_descriptor().has_code("AN-E001"));
        assert!(hazard_serialized_stream(&cfg).has_code("AN-E003"));
        assert!(out_of_bounds_stream(&cfg).has_code("AN-E004"));
        assert!(uncovered_registry().has_code("AN-E006"));
        assert!(seqlock_no_retry_fixture().has_code("AN-C003"));
        assert!(unpaired_release_fixture().has_code("AN-C001"));
    }

    #[test]
    fn seqlock_fixture_trips_only_the_retry_check() {
        let r = seqlock_no_retry_fixture();
        assert!(r.has_code("AN-C003"), "{r}");
        assert!(!r.has_code("AN-C001"), "{r}");
        assert!(!r.has_code("AN-C002"), "{r}");
        assert!(!r.has_code("AN-C004"), "{r}");
    }

    #[test]
    fn unpaired_release_fixture_is_seen_from_both_sides() {
        let r = unpaired_release_fixture();
        assert!(r.has_code("AN-C001"), "{r}");
        assert!(r.has_code("AN-C002"), "{r}");
        assert!(!r.has_code("AN-C003"), "{r}");
    }

    #[test]
    fn concurrency_self_check_is_green_on_the_shipped_tree() {
        let r = concurrency_self_check();
        assert!(r.passes(true), "{r}");
    }

    #[test]
    fn self_check_is_green_on_the_shipped_tree() {
        let r = self_check(&VerifyConfig::default());
        assert!(r.passes(true), "{r}");
    }
}
