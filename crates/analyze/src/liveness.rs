//! Live-range analysis over generated instruction streams.
//!
//! The Eq. 4 budget is a *shape-level* promise; this module checks the
//! *stream-level* reality: walking the emitted instructions, it
//! computes for every architectural register the intervals during
//! which it holds a live value, and from those the maximum number of
//! simultaneously live registers per register class. A vector-class
//! pressure above the architectural file size would force spills —
//! which the trace generator has no instructions for, so the emitted
//! kernel would simply be wrong on real hardware.
//!
//! Registers that are read before any write (the accumulators, which
//! Algorithm 1 zeroes outside the traced loop) are treated as live
//! from instruction 0; they are reported as `live_in` so the verifier
//! can sanity-check that only accumulator-class registers appear.

use smm_simarch::isa::{Inst, Reg, NUM_VREGS, P0, S0, X0, ZA0};

/// Architectural register classes of the simulated ISA.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegClass {
    /// Vector registers `V0..V31` (width set by the active ISA).
    Vector,
    /// Scalar FP views `S0..S31`.
    Scalar,
    /// General-purpose integer registers `X0..X31`.
    Int,
    /// Governing predicates `P0..P15` (SVE-style ISAs).
    Pred,
    /// Outer-product tile accumulators `ZA0..ZA7` (SME-style ISAs).
    Tile,
}

/// Class of an architectural register index.
pub fn class_of(reg: Reg) -> RegClass {
    if reg < NUM_VREGS {
        RegClass::Vector
    } else if reg < X0 {
        RegClass::Scalar
    } else if reg < P0 {
        RegClass::Int
    } else if reg < ZA0 {
        RegClass::Pred
    } else {
        RegClass::Tile
    }
}

/// Peak simultaneous liveness per register class, plus live-in info.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PressureReport {
    /// Maximum simultaneously live vector registers.
    pub max_vector: usize,
    /// Maximum simultaneously live scalar FP registers.
    pub max_scalar: usize,
    /// Maximum simultaneously live integer registers.
    pub max_int: usize,
    /// Maximum simultaneously live predicate registers.
    pub max_pred: usize,
    /// Maximum simultaneously live tile accumulators.
    pub max_tile: usize,
    /// Vector registers read before any write (expected: accumulators).
    pub vector_live_in: usize,
    /// Scalar registers read before any write.
    pub scalar_live_in: usize,
}

#[derive(Clone, Copy)]
struct Open {
    start: usize,
    last_use: usize,
}

/// Compute peak register pressure over `insts`.
///
/// An interval opens at a write (or at instruction 0 for a live-in
/// read) and closes at the last read before the next write; a register
/// rewritten in the same instruction that reads it (the FMA
/// accumulator pattern) keeps one continuous interval.
pub fn register_pressure(insts: &[Inst]) -> PressureReport {
    let n = insts.len();
    if n == 0 {
        return PressureReport::default();
    }
    const NREGS: usize = 128;
    let mut open: [Option<Open>; NREGS] = [None; NREGS];
    let mut ever_written = [false; NREGS];
    let mut live_in = [false; NREGS];
    // Interval deltas per class, indexed by instruction position.
    let mut delta: [Vec<i32>; 5] = std::array::from_fn(|_| vec![0i32; n + 1]);

    let class_idx = |r: Reg| match class_of(r) {
        RegClass::Vector => 0usize,
        RegClass::Scalar => 1,
        RegClass::Int => 2,
        RegClass::Pred => 3,
        RegClass::Tile => 4,
    };
    let close = |open: &mut [Option<Open>; NREGS], delta: &mut [Vec<i32>; 5], r: Reg| {
        if let Some(iv) = open[r as usize].take() {
            delta[class_idx(r)][iv.start] += 1;
            delta[class_idx(r)][iv.last_use + 1] -= 1;
        }
    };

    for (i, inst) in insts.iter().enumerate() {
        // Reads first: they extend (or start, for live-ins) intervals.
        for r in inst.sources() {
            let slot = &mut open[r as usize];
            match slot {
                Some(iv) => iv.last_use = i,
                None => {
                    *slot = Some(Open {
                        start: 0,
                        last_use: i,
                    });
                    if !ever_written[r as usize] {
                        live_in[r as usize] = true;
                    }
                }
            }
        }
        // Writes: close the previous value's interval unless this
        // instruction also read it (accumulator update — the register
        // stays continuously occupied).
        for dst in [inst.dst, inst.dst2] {
            if dst == smm_simarch::isa::NO_REG {
                continue;
            }
            ever_written[dst as usize] = true;
            match open[dst as usize] {
                Some(iv) if iv.last_use == i => {} // read+write same inst
                _ => {
                    close(&mut open, &mut delta, dst);
                    open[dst as usize] = Some(Open {
                        start: i,
                        last_use: i,
                    });
                }
            }
        }
    }
    for r in 0..NREGS as u8 {
        close(&mut open, &mut delta, r);
    }

    let peak = |d: &[i32]| {
        let mut cur = 0i32;
        let mut max = 0i32;
        for &x in d {
            cur += x;
            max = max.max(cur);
        }
        max as usize
    };
    let count_in = |lo: usize, hi: usize| (lo..hi).filter(|&r| live_in[r]).count();
    PressureReport {
        max_vector: peak(&delta[0]),
        max_scalar: peak(&delta[1]),
        max_int: peak(&delta[2]),
        max_pred: peak(&delta[3]),
        max_tile: peak(&delta[4]),
        vector_live_in: count_in(0, NUM_VREGS as usize),
        scalar_live_in: count_in(S0 as usize, X0 as usize),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smm_simarch::isa::{s, v, Inst};
    use smm_simarch::phase::Phase;

    const P: Phase = Phase::Kernel;

    #[test]
    fn classes_partition_the_register_file() {
        assert_eq!(class_of(v(0)), RegClass::Vector);
        assert_eq!(class_of(v(31)), RegClass::Vector);
        assert_eq!(class_of(s(0)), RegClass::Scalar);
        assert_eq!(class_of(smm_simarch::isa::x(5)), RegClass::Int);
    }

    #[test]
    fn disjoint_lifetimes_do_not_stack() {
        // v0 dies (last use) before v1 is written: peak pressure 1.
        let insts = vec![
            Inst::ld_vec(v(0), 0x0, P),
            Inst::st_vec(v(0), 0x100, P),
            Inst::ld_vec(v(1), 0x10, P),
            Inst::st_vec(v(1), 0x110, P),
        ];
        let p = register_pressure(&insts);
        assert_eq!(p.max_vector, 1);
        assert_eq!(p.vector_live_in, 0);
    }

    #[test]
    fn overlapping_lifetimes_stack() {
        let insts = vec![
            Inst::ld_vec(v(0), 0x0, P),
            Inst::ld_vec(v(1), 0x10, P),
            Inst::vadd(v(2), v(0), v(1), P),
            Inst::st_vec(v(2), 0x100, P),
        ];
        let p = register_pressure(&insts);
        assert_eq!(p.max_vector, 3);
    }

    #[test]
    fn accumulator_chain_is_one_continuous_interval() {
        // fma v5 += v0*v1 repeatedly: v5 counted once, live-in once.
        let mut insts = vec![Inst::ld_vec(v(0), 0x0, P), Inst::ld_vec(v(1), 0x10, P)];
        for _ in 0..8 {
            insts.push(Inst::fma(v(5), v(0), v(1), P));
        }
        let p = register_pressure(&insts);
        assert_eq!(p.max_vector, 3);
        assert_eq!(p.vector_live_in, 1); // the accumulator
    }

    #[test]
    fn rewrite_after_death_reuses_the_register() {
        // v0 written, used, then rewritten much later: the two values
        // are separate intervals and never overlap with themselves.
        let insts = vec![
            Inst::ld_vec(v(0), 0x0, P),
            Inst::st_vec(v(0), 0x100, P),
            Inst::ld_vec(v(0), 0x20, P),
            Inst::st_vec(v(0), 0x120, P),
        ];
        let p = register_pressure(&insts);
        assert_eq!(p.max_vector, 1);
    }

    #[test]
    fn predicates_and_tiles_have_their_own_classes() {
        use smm_simarch::isa::{pr, x, za};
        assert_eq!(class_of(pr(0)), RegClass::Pred);
        assert_eq!(class_of(pr(15)), RegClass::Pred);
        assert_eq!(class_of(za(0)), RegClass::Tile);
        let insts = vec![
            Inst::while_lt(pr(0), x(2), P),
            Inst::ld_vec_pred(v(0), pr(0), 0x0, P),
            Inst::fma_pred(v(1), v(0), s(0), pr(0), P),
            Inst::st_vec_pred(v(1), pr(0), 0x100, P),
        ];
        let p = register_pressure(&insts);
        assert_eq!(p.max_pred, 1, "one governing predicate live throughout");
        assert_eq!(p.max_vector, 2);
        assert_eq!(p.vector_live_in, 1); // the fma accumulator
    }

    #[test]
    fn scalar_and_vector_files_are_independent() {
        let insts = vec![
            Inst::ld_scalar(s(0), 0x0, P),
            Inst::ld_vec(v(0), 0x10, P),
            Inst::fma(v(1), v(0), s(0), P),
            Inst::st_vec(v(1), 0x100, P),
        ];
        let p = register_pressure(&insts);
        assert_eq!(p.max_scalar, 1);
        assert_eq!(p.max_vector, 2);
    }
}
