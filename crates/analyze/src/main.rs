//! The `smm-analyze` CLI: run the kernel-contract verifier and the
//! source invariant linter over the workspace and exit non-zero on
//! findings.
//!
//! ```text
//! smm-analyze [--json] [--deny-warnings] [--only kernels|lint]
//!             [--root PATH] [--kc N] [--min-chain-frac F]
//!             [--isa neon128|sve256|sve512] [--self-check]
//! smm-analyze concurrency [--json] [--deny-warnings] [--root PATH]
//!             [--model-check] [--bound N] [--self-check]
//! ```
//!
//! The `concurrency` subcommand runs the cross-file atomic-ordering
//! dataflow pass (`AN-C*`); `--model-check` additionally runs the
//! exhaustive-schedule explorer over the real runtime protocols when
//! the binary was built with `RUSTFLAGS='--cfg smm_model_check'`.
//!
//! Exit codes: `0` clean, `1` warnings under `--deny-warnings`,
//! `2` errors (or bad usage).

use std::path::PathBuf;
use std::process::ExitCode;

use smm_analyze::fixtures::{concurrency_self_check, self_check};
use smm_analyze::lint::lint_workspace;
use smm_analyze::report::Severity;
use smm_analyze::{ordering, verify_all, Report, VerifyConfig};

struct Options {
    concurrency: bool,
    json: bool,
    deny_warnings: bool,
    kernels: bool,
    lint: bool,
    self_check: bool,
    model_check: bool,
    bound: usize,
    root: Option<PathBuf>,
    cfg: VerifyConfig,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            concurrency: false,
            json: false,
            deny_warnings: false,
            kernels: true,
            lint: true,
            self_check: false,
            model_check: false,
            bound: 3,
            root: None,
            cfg: VerifyConfig::default(),
        }
    }
}

const USAGE: &str = "usage: smm-analyze [--json] [--deny-warnings] [--only kernels|lint] \
                     [--root PATH] [--kc N] [--min-chain-frac F] \
                     [--isa neon128|sve256|sve512] [--self-check]\n\
                     \x20      smm-analyze concurrency [--json] [--deny-warnings] [--root PATH] \
                     [--model-check] [--bound N] [--self-check]";

fn parse_args() -> Result<Options, String> {
    let mut opts = Options::default();
    let mut args = std::env::args().skip(1).peekable();
    if args.peek().map(String::as_str) == Some("concurrency") {
        opts.concurrency = true;
        args.next();
    }
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => opts.json = true,
            "--deny-warnings" => opts.deny_warnings = true,
            "--self-check" => opts.self_check = true,
            "--model-check" if opts.concurrency => opts.model_check = true,
            "--bound" if opts.concurrency => {
                let v = args.next().ok_or("--bound expects a number")?;
                opts.bound = v.parse().map_err(|e| format!("bad --bound {v:?}: {e}"))?;
            }
            "--only" => match args.next().as_deref() {
                Some("kernels") => opts.lint = false,
                Some("lint") => opts.kernels = false,
                other => return Err(format!("--only expects kernels|lint, got {other:?}")),
            },
            "--root" => {
                let p = args.next().ok_or("--root expects a path")?;
                opts.root = Some(PathBuf::from(p));
            }
            "--kc" => {
                let v = args.next().ok_or("--kc expects a number")?;
                opts.cfg.kc = v.parse().map_err(|e| format!("bad --kc {v:?}: {e}"))?;
            }
            "--min-chain-frac" => {
                let v = args.next().ok_or("--min-chain-frac expects a number")?;
                opts.cfg.min_chain_fraction = v
                    .parse()
                    .map_err(|e| format!("bad --min-chain-frac {v:?}: {e}"))?;
            }
            "--isa" => {
                let v = args.next().ok_or("--isa expects neon128|sve256|sve512")?;
                opts.cfg.isa = smm_model::VectorIsa::by_name(&v)
                    .ok_or_else(|| format!("unknown ISA {v:?} (neon128|sve256|sve512)"))?;
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?}\n{USAGE}")),
        }
    }
    Ok(opts)
}

/// Walk up from the current directory to the workspace root (the
/// first ancestor whose `Cargo.toml` declares `[workspace]`).
fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Run the exhaustive-schedule explorer, or explain how to get it.
#[cfg(smm_model_check)]
fn model_check(bound: usize) -> Report {
    smm_analyze::mc::run_all(bound)
}

/// In an uninstrumented binary the explorer has nothing to hook, so
/// `--model-check` reports how to build one instead of silently
/// skipping the dynamic half.
#[cfg(not(smm_model_check))]
fn model_check(_bound: usize) -> Report {
    let mut report = Report::new();
    report.push(smm_analyze::Finding::info(
        "AN-MC",
        "model-check",
        "this binary uses the real std facade; rebuild with \
         RUSTFLAGS='--cfg smm_model_check' to run the exhaustive-schedule explorer",
    ));
    report
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("smm-analyze: {e}");
            return ExitCode::from(2);
        }
    };

    let mut report = Report::new();
    if opts.concurrency {
        if opts.self_check {
            report.merge(concurrency_self_check());
        } else {
            let root = opts.root.clone().or_else(find_workspace_root);
            match root {
                Some(root) => report.merge(ordering::analyze_workspace(&root)),
                None => {
                    eprintln!("smm-analyze: no workspace root found (pass --root)");
                    return ExitCode::from(2);
                }
            }
            if opts.model_check {
                report.merge(model_check(opts.bound));
            }
        }
    } else if opts.self_check {
        report.merge(self_check(&opts.cfg));
    } else {
        if opts.kernels {
            report.merge(verify_all(&opts.cfg));
        }
        if opts.lint {
            let root = opts.root.clone().or_else(find_workspace_root);
            match root {
                Some(root) => report.merge(lint_workspace(&root)),
                None => {
                    eprintln!("smm-analyze: no workspace root found (pass --root)");
                    return ExitCode::from(2);
                }
            }
        }
    }

    if opts.json {
        print!("{}", report.to_json());
    } else {
        print!("{report}");
    }

    if report.count(Severity::Error) > 0 {
        ExitCode::from(2)
    } else if opts.deny_warnings && report.count(Severity::Warning) > 0 {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
