//! Findings and reports shared by both analysis fronts.
//!
//! Every check emits [`Finding`]s into a [`Report`]; the CLI decides
//! the exit code from the severity counts. Reports render as human
//! text ([`std::fmt::Display`]) and as machine-readable JSON
//! ([`Report::to_json`], hand-rolled — the workspace is std-only).

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Context worth surfacing but not actionable (e.g. a shape whose
    /// chain-bound ceiling is intrinsically low — the Fig. 7 trade-off
    /// itself, not a scheduling bug).
    Info,
    /// Suspicious but not a proven contract violation (e.g. a lint
    /// waiver that matched nothing).
    Warning,
    /// A proven contract violation. Always fails the CLI.
    Error,
}

impl Severity {
    /// Lower-case label used in text and JSON output.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// One analysis finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Stable machine-readable code (e.g. `AN-E003`).
    pub code: &'static str,
    /// Severity class.
    pub severity: Severity,
    /// What was analyzed: a kernel name or a source file path.
    pub subject: String,
    /// Optional position within the subject (`line 42`, `inst #17`).
    pub location: Option<String>,
    /// Human-readable description of the violation.
    pub message: String,
}

impl Finding {
    /// Build an error finding.
    pub fn error(
        code: &'static str,
        subject: impl Into<String>,
        message: impl Into<String>,
    ) -> Self {
        Finding {
            code,
            severity: Severity::Error,
            subject: subject.into(),
            location: None,
            message: message.into(),
        }
    }

    /// Build a warning finding.
    pub fn warning(
        code: &'static str,
        subject: impl Into<String>,
        message: impl Into<String>,
    ) -> Self {
        Finding {
            code,
            severity: Severity::Warning,
            subject: subject.into(),
            location: None,
            message: message.into(),
        }
    }

    /// Build an info finding.
    pub fn info(
        code: &'static str,
        subject: impl Into<String>,
        message: impl Into<String>,
    ) -> Self {
        Finding {
            code,
            severity: Severity::Info,
            subject: subject.into(),
            location: None,
            message: message.into(),
        }
    }

    /// Attach a location string.
    pub fn at(mut self, location: impl Into<String>) -> Self {
        self.location = Some(location.into());
        self
    }
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} [{}] {}",
            self.severity.label(),
            self.code,
            self.subject
        )?;
        if let Some(loc) = &self.location {
            write!(f, " ({loc})")?;
        }
        write!(f, ": {}", self.message)
    }
}

/// Aggregated result of one or both analysis fronts.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// All findings, in discovery order.
    pub findings: Vec<Finding>,
    /// Kernel instruction streams verified.
    pub kernels_checked: usize,
    /// Source files scanned by the linter.
    pub files_scanned: usize,
    /// Lint waivers honored.
    pub waivers_used: usize,
}

impl Report {
    /// An empty report.
    pub fn new() -> Self {
        Report::default()
    }

    /// Append another report's findings and tallies.
    pub fn merge(&mut self, other: Report) {
        self.findings.extend(other.findings);
        self.kernels_checked += other.kernels_checked;
        self.files_scanned += other.files_scanned;
        self.waivers_used += other.waivers_used;
    }

    /// Add a finding.
    pub fn push(&mut self, finding: Finding) {
        self.findings.push(finding);
    }

    /// Findings at exactly `severity`.
    pub fn count(&self, severity: Severity) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == severity)
            .count()
    }

    /// Whether any finding has `code`.
    pub fn has_code(&self, code: &str) -> bool {
        self.findings.iter().any(|f| f.code == code)
    }

    /// Whether the report passes: errors always fail; warnings fail
    /// only under `--deny-warnings`.
    pub fn passes(&self, deny_warnings: bool) -> bool {
        self.count(Severity::Error) == 0 && (!deny_warnings || self.count(Severity::Warning) == 0)
    }

    /// Render as a JSON object string.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!(
            "  \"kernels_checked\": {},\n  \"files_scanned\": {},\n  \"waivers_used\": {},\n",
            self.kernels_checked, self.files_scanned, self.waivers_used
        ));
        out.push_str(&format!(
            "  \"errors\": {},\n  \"warnings\": {},\n  \"infos\": {},\n",
            self.count(Severity::Error),
            self.count(Severity::Warning),
            self.count(Severity::Info)
        ));
        out.push_str("  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {");
            out.push_str(&format!(
                "\"code\": {}, \"severity\": {}, \"subject\": {}, ",
                json_str(f.code),
                json_str(f.severity.label()),
                json_str(&f.subject)
            ));
            match &f.location {
                Some(loc) => out.push_str(&format!("\"location\": {}, ", json_str(loc))),
                None => out.push_str("\"location\": null, "),
            }
            out.push_str(&format!("\"message\": {}}}", json_str(&f.message)));
        }
        if !self.findings.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }
}

impl std::fmt::Display for Report {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for finding in &self.findings {
            writeln!(f, "{finding}")?;
        }
        writeln!(
            f,
            "checked {} kernel streams, scanned {} source files \
             ({} waivers honored): {} errors, {} warnings, {} notes",
            self.kernels_checked,
            self.files_scanned,
            self.waivers_used,
            self.count(Severity::Error),
            self.count(Severity::Warning),
            self.count(Severity::Info)
        )
    }
}

/// Escape `s` as a JSON string literal (with quotes).
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_gating() {
        let mut r = Report::new();
        assert!(r.passes(true));
        r.push(Finding::warning("X-W1", "a", "w"));
        assert!(r.passes(false));
        assert!(!r.passes(true));
        r.push(Finding::error("X-E1", "a", "e"));
        assert!(!r.passes(false));
    }

    #[test]
    fn json_escapes_and_structure() {
        let mut r = Report::new();
        r.push(Finding::error("X-E1", "ker\"nel", "line\nbreak").at("inst #3"));
        let j = r.to_json();
        assert!(j.contains("\\\"nel"));
        assert!(j.contains("\\n"));
        assert!(j.contains("\"location\": \"inst #3\""));
        assert!(j.contains("\"errors\": 1"));
    }

    #[test]
    fn merge_accumulates() {
        let mut a = Report {
            kernels_checked: 2,
            ..Report::new()
        };
        let mut b = Report {
            files_scanned: 5,
            ..Report::new()
        };
        b.push(Finding::info("X-I1", "s", "m"));
        a.merge(b);
        assert_eq!(a.kernels_checked, 2);
        assert_eq!(a.files_scanned, 5);
        assert_eq!(a.findings.len(), 1);
    }
}
