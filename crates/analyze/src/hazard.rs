//! RAW-hazard / dependence-chain analysis (the Fig. 7 check).
//!
//! The paper's Fig. 7 shows OpenBLAS edge micro-kernels losing ~20
//! points of efficiency purely to instruction scheduling: long
//! dependence chains with no FMA overlap. That pathology is statically
//! detectable: build the read-after-write dependence graph of the
//! emitted stream (renaming is ideal on the modeled core, so RAW is
//! the only true dependence), charge each instruction its result
//! latency from the shared [`PipelineConfig::result_latency`] table,
//! and compute the critical path. The stream cannot retire FMAs faster
//! than `fma_count / critical_path` per cycle; with one FMA port the
//! issue-bound peak is 1/cycle, so that ratio *is* the kernel's
//! efficiency ceiling.
//!
//! The verifier compares this measured ceiling against the *shape's*
//! intrinsic chain bound (`KernelShape::chain_bound_efficiency`,
//! §III-C): a 4×1 edge tile is latency-bound at 20% no matter how it
//! is scheduled — that is the Fig. 7 trade-off, reported as a note —
//! while a stream that underruns its own shape's ceiling has an
//! *avoidable* scheduling defect and is flagged as an error.

use smm_simarch::cpu::PipelineConfig;
use smm_simarch::isa::{Inst, NO_REG};

/// Configuration of the chain analysis.
#[derive(Debug, Clone, Copy)]
pub struct HazardConfig {
    /// Pipeline latencies (shared with the cycle-level simulator).
    pub pipeline: PipelineConfig,
    /// Optimistic memory latency charged to loads/stores (L1 hit).
    /// Optimism is deliberate: it keeps the critical path a lower
    /// bound, so chain findings are never artifacts of cache modeling.
    pub load_latency: u64,
}

impl Default for HazardConfig {
    fn default() -> Self {
        HazardConfig {
            pipeline: PipelineConfig::phytium_core(),
            // L1 hit latency of the Phytium 2000+ memory model.
            load_latency: 3,
        }
    }
}

/// Result of the dependence-chain analysis of one stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChainReport {
    /// Length of the longest RAW dependence chain, in cycles.
    pub critical_path: u64,
    /// FMA instructions in the stream.
    pub fma_count: u64,
    /// Efficiency ceiling imposed by the chains:
    /// `min(1, issue_cycles / critical_path)` where `issue_cycles`
    /// is the FMA count divided by the FMA port count.
    pub chain_bound: f64,
}

/// Analyze the RAW dependence structure of `insts`.
pub fn chain_analysis(insts: &[Inst], cfg: &HazardConfig) -> ChainReport {
    // finish[r] = cycle at which the latest value of register r is
    // available. Registers never written are ready at cycle 0.
    let mut finish = [0u64; 256];
    let mut critical = 0u64;
    let mut fma_count = 0u64;
    for inst in insts {
        let ready = inst
            .sources()
            .map(|r| finish[r as usize])
            .max()
            .unwrap_or(0);
        let lat = cfg.pipeline.result_latency(inst.op, cfg.load_latency);
        let done = ready + lat;
        for dst in [inst.dst, inst.dst2] {
            if dst != NO_REG {
                finish[dst as usize] = done;
            }
        }
        critical = critical.max(done);
        if inst.op.is_fma() {
            fma_count += 1;
        }
    }
    let issue_cycles = fma_count as f64 / cfg.pipeline.fp_ports as f64;
    let chain_bound = if critical == 0 || fma_count == 0 {
        1.0
    } else {
        (issue_cycles / critical as f64).min(1.0)
    };
    ChainReport {
        critical_path: critical,
        fma_count,
        chain_bound,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smm_simarch::isa::{v, Inst};
    use smm_simarch::phase::Phase;

    const P: Phase = Phase::Kernel;

    fn cfg() -> HazardConfig {
        HazardConfig::default()
    }

    #[test]
    fn serial_fma_chain_is_latency_bound() {
        // 100 FMAs all through one accumulator: critical path 500,
        // issue bound 100 → ceiling 0.2 (one chain vs 5-cycle pipe).
        let insts: Vec<Inst> = (0..100).map(|_| Inst::fma(v(31), v(0), v(1), P)).collect();
        let r = chain_analysis(&insts, &cfg());
        assert_eq!(r.critical_path, 500);
        assert_eq!(r.fma_count, 100);
        assert!((r.chain_bound - 0.2).abs() < 1e-12);
    }

    #[test]
    fn independent_chains_hide_latency() {
        // 10 accumulators round-robin: chains of 10 FMAs each → path
        // 50, issue 100 → ceiling 1.0 (clamped from 2.0).
        let insts: Vec<Inst> = (0..100)
            .map(|i| Inst::fma(v(20 + (i % 10) as u8), v(0), v(1), P))
            .collect();
        let r = chain_analysis(&insts, &cfg());
        assert_eq!(r.critical_path, 50);
        assert!((r.chain_bound - 1.0).abs() < 1e-12);
    }

    #[test]
    fn loads_feed_into_chains() {
        // load (3 cycles) then a dependent FMA (5): path 8.
        let insts = vec![Inst::ld_vec(v(0), 0x0, P), Inst::fma(v(5), v(0), v(1), P)];
        let r = chain_analysis(&insts, &cfg());
        assert_eq!(r.critical_path, 8);
    }

    #[test]
    fn rewritten_registers_break_false_chains() {
        // Two independent (load → fma) pairs reusing v0: WAR/WAW must
        // not serialize them (ideal renaming): path stays 8, not 16.
        let insts = vec![
            Inst::ld_vec(v(0), 0x0, P),
            Inst::fma(v(5), v(0), v(1), P),
            Inst::ld_vec(v(0), 0x10, P),
            Inst::fma(v(6), v(0), v(1), P),
        ];
        let r = chain_analysis(&insts, &cfg());
        assert_eq!(r.critical_path, 8);
    }

    #[test]
    fn empty_or_fma_free_streams_are_unbounded() {
        assert_eq!(chain_analysis(&[], &cfg()).chain_bound, 1.0);
        let loads = vec![Inst::ld_vec(v(0), 0, P)];
        assert_eq!(chain_analysis(&loads, &cfg()).chain_bound, 1.0);
    }
}
