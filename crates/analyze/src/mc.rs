//! Dynamic concurrency drivers: exhaustive-schedule model checking of
//! the runtime's real lock-free protocols (the `concurrency
//! --model-check` front).
//!
//! Compiled only under `--cfg smm_model_check`, where the
//! `smm_sync::sync` facade resolves to the instrumented shims and
//! [`smm_sync::mc::Checker`] can drive real workspace code through
//! every thread interleaving within a preemption bound.
//!
//! Two kinds of drivers:
//!
//! * [`protocols`] — compile the *actual* sources (`gemm::flight`'s
//!   seqlock, `gemm::pool`'s park/shutdown drain, `gemm::arena`'s
//!   counters, `core::runtime`'s double-checked plan cache,
//!   `tune::delta`'s refinement-delta buffer, `serve::steal`'s
//!   sharded-queue work stealing) against the shims and assert their
//!   invariants across all schedules. These must pass exhaustively.
//! * [`mutants`] — seeded-bug replicas of each protocol (relaxed
//!   publish, missing revalidation, flag-outside-mutex, load+store
//!   counter, missing double-check, steal peek-then-re-lock). These
//!   must *fail*: they are the regression net proving the checker can
//!   still see each bug class.
//!
//! [`run_all`] packages both as `AN-MC` findings for the CLI.

use smm_sync::mc::{Checker, FailureKind, Outcome};

use crate::report::{Finding, Report};

fn checker(bound: usize) -> Checker {
    Checker {
        preemption_bound: bound,
        ..Checker::default()
    }
}

/// Exhaustive checks of the real runtime protocols.
pub mod protocols {
    use std::sync::Arc;

    use smm_core::runtime::ShardedPlanCache;
    use smm_core::PlanConfig;
    use smm_gemm::arena;
    use smm_gemm::flight::{set_thread_tid, EventKind, FlightRecorder, SpanEvent};
    use smm_gemm::pool::TaskPool;
    use smm_serve::steal::ShardQueues;
    use smm_sync::mc::Outcome;
    use smm_sync::sync::thread;
    use smm_tune::{DeltaBuffer, PlanEntry};

    use super::checker;

    /// An event whose every field carries the same pattern value, so a
    /// torn (mixed-write) read is detectable from the payload alone.
    fn patterned(x: u64) -> SpanEvent {
        SpanEvent {
            kind: EventKind::Begin,
            trace: x,
            span: x,
            parent: x,
            ts_ns: x,
            name: x as u8,
            tid: x as u32,
            arg: x,
        }
    }

    fn assert_consistent(e: &SpanEvent) {
        let x = e.trace;
        assert!(
            e.span == x
                && e.parent == x
                && e.ts_ns == x
                && e.arg == x
                && u64::from(e.name) == x
                && u64::from(e.tid) == x,
            "torn seqlock read: {e:?}"
        );
    }

    /// `gemm::flight` seqlock: a writer emits two patterned events
    /// while a reader snapshots concurrently. No snapshot may ever
    /// contain a torn event, and after joining both threads a drain
    /// must surface exactly the two published events intact.
    ///
    /// Uses the model-check ring geometry (`RINGS = 1`,
    /// `RING_SLOTS = 4`) so writer and reader contend on one ring.
    pub fn flight_seqlock(bound: usize) -> Outcome {
        checker(bound).explore("flight-seqlock", || {
            let rec = Arc::new(FlightRecorder::new());
            let (w, r) = (Arc::clone(&rec), Arc::clone(&rec));
            let writer = thread::spawn(move || {
                set_thread_tid(7);
                w.emit(&patterned(7));
                w.emit(&patterned(9));
            });
            let reader = thread::spawn(move || {
                for e in r.snapshot() {
                    assert_consistent(&e);
                }
            });
            writer.join().unwrap();
            reader.join().unwrap();
            let fin = rec.drain();
            assert_eq!(fin.len(), 2, "published events lost: {fin:?}");
            for e in &fin {
                assert_consistent(e);
            }
            assert!(fin.iter().any(|e| e.trace == 7) && fin.iter().any(|e| e.trace == 9));
        })
    }

    /// `gemm::pool` park/unpark and shutdown drain (the PR-4
    /// lost-wakeup class): a one-worker pool runs a two-task scope
    /// (queue path: inject, notify, inline-drain, latch wait), then
    /// drops — shutdown must wake and join the parked worker in every
    /// schedule. A lost wakeup or a shutdown-flag race is a deadlock
    /// here because the model condvar has no spurious wakeups.
    pub fn pool_scoped_drain(bound: usize) -> Outcome {
        checker(bound).explore("pool-scoped-drain", || {
            let pool = TaskPool::new(1);
            let tasks: Vec<_> = (0..2u32).map(|i| move || i + 1).collect();
            let results = pool.run_scoped(tasks);
            assert_eq!(results, vec![1, 2]);
            drop(pool);
        })
    }

    /// `gemm::arena` checkout/return: two threads each check out a
    /// buffer, return it, and check out again — the second checkout
    /// must hit the *thread-local* free list, and the global relaxed
    /// counters must account exactly 2 misses + 2 hits.
    pub fn arena_checkout_reuse(bound: usize) -> Outcome {
        checker(bound).explore("arena-reuse", || {
            arena::reset_stats();
            let body = || {
                let first = arena::checkout::<f64>(64);
                drop(first);
                let again = arena::checkout::<f64>(64);
                drop(again);
            };
            let h1 = thread::spawn(body);
            let h2 = thread::spawn(body);
            h1.join().unwrap();
            h2.join().unwrap();
            let s = arena::stats();
            assert_eq!(s.misses, 2, "each thread's first checkout allocates");
            assert_eq!(s.hits, 2, "each thread's second checkout reuses");
        })
    }

    /// `tune::delta` refinement-delta buffer: two tuning threads each
    /// record a delta while a flusher drains concurrently. In every
    /// schedule each delta must land in exactly one drain (no loss, no
    /// duplication), and the lifetime `recorded` counter must account
    /// for both — the invariant that makes the runtime's
    /// flush-on-shutdown persistence trustworthy.
    pub fn delta_buffer(bound: usize) -> Outcome {
        fn delta(m: u32) -> PlanEntry {
            PlanEntry {
                m,
                n: 4,
                k: 4,
                mr: 8,
                nr: 4,
                pack_a: false,
                pack_b: false,
                refined: true,
                elem_bytes: 4,
                cycles: 10,
                heuristic_cycles: 12,
                traffic: 0,
            }
        }
        checker(bound).explore("delta-buffer", || {
            let buf = Arc::new(DeltaBuffer::new());
            let (b1, b2, bf) = (Arc::clone(&buf), Arc::clone(&buf), Arc::clone(&buf));
            let r1 = thread::spawn(move || b1.record(delta(1)));
            let r2 = thread::spawn(move || b2.record(delta(2)));
            let flusher = thread::spawn(move || bf.drain());
            r1.join().unwrap();
            r2.join().unwrap();
            let mut all = flusher.join().unwrap();
            all.extend(buf.drain());
            let mut ms: Vec<u32> = all.iter().map(|e| e.m).collect();
            ms.sort_unstable();
            assert_eq!(ms, vec![1, 2], "delta lost or duplicated");
            assert_eq!(buf.recorded(), 2, "lifetime counter disagrees");
            assert!(buf.is_empty());
        })
    }

    /// `core::runtime` double-checked plan cache: two threads race
    /// `get_or_build` on the same shape. The read-miss / build-outside
    /// -lock / write-recheck protocol must converge both threads onto
    /// one `Arc` with exactly one resident plan.
    pub fn plan_cache_dcl(bound: usize) -> Outcome {
        checker(bound).explore("plan-cache-dcl", || {
            let cache = Arc::new(ShardedPlanCache::new(0));
            let (c1, c2) = (Arc::clone(&cache), Arc::clone(&cache));
            let h1 = thread::spawn(move || c1.get_or_build(4, 4, 4, &PlanConfig::default()));
            let h2 = thread::spawn(move || c2.get_or_build(4, 4, 4, &PlanConfig::default()));
            let p1 = h1.join().unwrap();
            let p2 = h2.join().unwrap();
            assert!(
                Arc::ptr_eq(&p1, &p2),
                "concurrent misses did not converge on one plan"
            );
            assert_eq!(cache.len(), 1);
            let st = cache.stats(0);
            assert_eq!(st.plan_hits + st.plan_misses, 2);
        })
    }

    /// `serve::steal` sharded-queue work stealing: a producer pushes
    /// two items onto shard 0 while the shard-1 "dispatcher" steals
    /// and the shard-0 owner pops — the PR-10 stealing protocol. In
    /// every schedule each admitted item must surface exactly once
    /// across owner pop, thief steal, and the final drain (no lost
    /// steal, no double execution), and the depth hints must read
    /// zero once the queues are drained.
    pub fn shard_steal(bound: usize) -> Outcome {
        checker(bound).explore("shard-steal", || {
            let q = Arc::new(ShardQueues::<u32>::new(2, 4));
            let (qp, qt, qo) = (Arc::clone(&q), Arc::clone(&q), Arc::clone(&q));
            let producer = thread::spawn(move || {
                qp.push(0, 11).unwrap();
                qp.push(0, 22).unwrap();
            });
            let thief = thread::spawn(move || qt.steal_group(1, 2, |_, _| true));
            let owner = thread::spawn(move || qo.try_pop(0));
            producer.join().unwrap();
            let mut seen = thief.join().unwrap();
            seen.extend(owner.join().unwrap());
            for shard in 0..2 {
                while let Some(v) = q.try_pop(shard) {
                    seen.push(v);
                }
            }
            seen.sort_unstable();
            assert_eq!(seen, vec![11, 22], "item lost or executed twice");
            assert_eq!(q.depth(0) + q.depth(1), 0, "stale depth hint");
            assert_eq!(q.total_len(), 0);
        })
    }
}

/// Seeded-bug replicas: each must be *caught* by the checker.
pub mod mutants {
    use std::collections::VecDeque;
    use std::sync::Arc;

    use smm_sync::mc::Outcome;
    use smm_sync::sync::atomic::{fence, AtomicBool, AtomicU64, Ordering};
    use smm_sync::sync::thread;
    use smm_sync::sync::{Condvar, Mutex, RwLock};

    use super::checker;

    /// Seqlock writer that publishes the even sequence with `Relaxed`
    /// instead of `Release`: a reader can accept the sequence without
    /// the payload it guards.
    pub fn seqlock_relaxed_publish(bound: usize) -> Outcome {
        checker(bound).explore("mutant-seqlock-relaxed-publish", || {
            let seq = Arc::new(AtomicU64::new(0));
            let lo = Arc::new(AtomicU64::new(0));
            let hi = Arc::new(AtomicU64::new(0));
            let (ws, wl, wh) = (Arc::clone(&seq), Arc::clone(&lo), Arc::clone(&hi));
            let w = thread::spawn(move || {
                ws.store(1, Ordering::Relaxed);
                wl.store(7, Ordering::Relaxed);
                wh.store(7, Ordering::Relaxed);
                ws.store(2, Ordering::Relaxed); // BUG: must be Release
            });
            // lint:allow(seqlock-retry) -- seeded mutant; the explorer must catch it
            let s1 = seq.load(Ordering::Acquire);
            if s1 == 2 {
                let a = lo.load(Ordering::Relaxed);
                let b = hi.load(Ordering::Relaxed);
                fence(Ordering::Acquire);
                if seq.load(Ordering::Relaxed) == s1 {
                    assert!(a == 7 && b == 7, "accepted a torn/stale payload");
                }
            }
            w.join().unwrap();
        })
    }

    /// Seqlock reader that skips the odd check and the revalidating
    /// re-read: it can observe a half-written payload.
    pub fn seqlock_reader_no_revalidate(bound: usize) -> Outcome {
        checker(bound).explore("mutant-seqlock-no-revalidate", || {
            let seq = Arc::new(AtomicU64::new(0));
            let lo = Arc::new(AtomicU64::new(0));
            let hi = Arc::new(AtomicU64::new(0));
            let (ws, wl, wh) = (Arc::clone(&seq), Arc::clone(&lo), Arc::clone(&hi));
            let w = thread::spawn(move || {
                ws.store(1, Ordering::Relaxed);
                wl.store(7, Ordering::Relaxed);
                wh.store(7, Ordering::Relaxed);
                // lint:allow(release-pairing) -- seeded mutant; its reader never acquires
                ws.store(2, Ordering::Release);
            });
            // BUG: no `& 1` check, no second read of `seq`.
            // lint:allow(seqlock-retry) -- seeded mutant; the explorer must catch it
            if seq.load(Ordering::Acquire) != 0 {
                let a = lo.load(Ordering::Relaxed);
                let b = hi.load(Ordering::Relaxed);
                assert_eq!(a, b, "torn read accepted without revalidation");
            }
            w.join().unwrap();
        })
    }

    /// Pool shutdown with the flag checked *outside* the mutex: the
    /// set+notify can slot between the worker's check and its wait —
    /// a lost wakeup, which exact condvar semantics turn into a
    /// deadlock the checker reports.
    pub fn pool_shutdown_lost_wakeup(bound: usize) -> Outcome {
        checker(bound).explore("mutant-pool-lost-wakeup", || {
            let m = Arc::new(Mutex::new(()));
            let cv = Arc::new(Condvar::new());
            let stop = Arc::new(AtomicBool::new(false));
            let (m2, cv2, stop2) = (Arc::clone(&m), Arc::clone(&cv), Arc::clone(&stop));
            let worker = thread::spawn(move || {
                let mut g = m2.lock().unwrap();
                while !stop2.load(Ordering::Relaxed) {
                    // BUG: flag is not under the mutex
                    g = cv2.wait(g).unwrap();
                }
            });
            stop.store(true, Ordering::Relaxed);
            cv.notify_all();
            worker.join().unwrap();
        })
    }

    /// Arena-style statistics counter bumped with a load+store pair
    /// instead of `fetch_add`: a lost update under contention.
    pub fn arena_counter_lost_update(bound: usize) -> Outcome {
        checker(bound).explore("mutant-arena-lost-update", || {
            let hits = Arc::new(AtomicU64::new(0));
            let h2 = Arc::clone(&hits);
            let t = thread::spawn(move || {
                let v = h2.load(Ordering::Relaxed);
                h2.store(v + 1, Ordering::Relaxed); // BUG: not fetch_add
            });
            let v = hits.load(Ordering::Relaxed);
            hits.store(v + 1, Ordering::Relaxed);
            t.join().unwrap();
            assert_eq!(hits.load(Ordering::Relaxed), 2, "lost counter update");
        })
    }

    /// Plan-cache insert without the double-check under the write
    /// lock: concurrent misses each insert their own value and the
    /// callers diverge.
    pub fn plan_cache_no_double_check(bound: usize) -> Outcome {
        checker(bound).explore("mutant-dcl-missing-recheck", || {
            let slot: Arc<RwLock<Option<Arc<u64>>>> = Arc::new(RwLock::new(None));
            let get = |s: Arc<RwLock<Option<Arc<u64>>>>| {
                move || {
                    if let Some(p) = s.read().unwrap().as_ref() {
                        return Arc::clone(p);
                    }
                    let built = Arc::new(1u64);
                    let mut w = s.write().unwrap();
                    // BUG: no re-check of `w` before overwriting
                    *w = Some(Arc::clone(&built));
                    built
                }
            };
            let h1 = thread::spawn(get(Arc::clone(&slot)));
            let h2 = thread::spawn(get(Arc::clone(&slot)));
            let p1 = h1.join().unwrap();
            let p2 = h2.join().unwrap();
            assert!(Arc::ptr_eq(&p1, &p2), "concurrent misses diverged");
        })
    }

    /// Work stealing with a peek-then-re-lock window: the thief reads
    /// the victim's head under one lock, releases, then re-locks to
    /// take it — but "executes" what it peeked regardless of what the
    /// second lock finds. The owner can pop the same item inside the
    /// window, and the item runs twice.
    pub fn shard_steal_double_execute(bound: usize) -> Outcome {
        checker(bound).explore("mutant-steal-double-execute", || {
            let q = Arc::new(Mutex::new(VecDeque::from([7u32])));
            let executed = Arc::new(AtomicU64::new(0));
            let (tq, te) = (Arc::clone(&q), Arc::clone(&executed));
            let thief = thread::spawn(move || {
                let peeked = tq.lock().unwrap().front().copied();
                if peeked.is_some() {
                    // BUG: the steal must pop and execute under one
                    // critical section; this re-lock discards what the
                    // second look actually found.
                    let _ = tq.lock().unwrap().pop_front();
                    te.fetch_add(1, Ordering::Relaxed);
                }
            });
            if q.lock().unwrap().pop_front().is_some() {
                executed.fetch_add(1, Ordering::Relaxed);
            }
            thief.join().unwrap();
            assert_eq!(
                executed.load(Ordering::Relaxed),
                1,
                "item executed twice (or lost)"
            );
        })
    }
}

fn protocol_finding(out: &Outcome) -> Finding {
    if out.passed() {
        if out.complete {
            Finding::info(
                "AN-MC",
                out.name.clone(),
                format!("verified: {}", out.summary()),
            )
        } else {
            Finding::warning(
                "AN-MC",
                out.name.clone(),
                format!("passed but exploration truncated: {}", out.summary()),
            )
        }
    } else {
        let mut msg = format!("FAILED: {}", out.summary());
        if let Some(f) = &out.failure {
            for line in f.trace.iter().rev().take(12).rev() {
                msg.push_str("\n    ");
                msg.push_str(line);
            }
        }
        Finding::error("AN-MC", out.name.clone(), msg)
    }
}

fn mutant_finding(out: &Outcome, expect_deadlock: bool) -> Finding {
    if out.passed() {
        Finding::error(
            "AN-MC",
            out.name.clone(),
            format!(
                "seeded mutant was NOT caught — the checker has gone blind to this \
                 bug class ({})",
                out.summary()
            ),
        )
    } else if expect_deadlock
        && !matches!(
            out.failure.as_ref().map(|f| &f.kind),
            Some(FailureKind::Deadlock { .. })
        )
    {
        Finding::warning(
            "AN-MC",
            out.name.clone(),
            format!(
                "caught, but not as the expected deadlock: {}",
                out.summary()
            ),
        )
    } else {
        Finding::info(
            "AN-MC",
            out.name.clone(),
            format!("mutant caught as expected ({})", out.summary()),
        )
    }
}

/// Run all protocol checks and all mutants at `bound` preemptions and
/// fold the outcomes into one report: a protocol failure or an
/// uncaught mutant is an error.
pub fn run_all(bound: usize) -> Report {
    let mut report = Report::new();
    for out in [
        protocols::flight_seqlock(bound),
        protocols::pool_scoped_drain(bound),
        protocols::arena_checkout_reuse(bound),
        protocols::plan_cache_dcl(bound),
        protocols::delta_buffer(bound),
        protocols::shard_steal(bound),
    ] {
        report.push(protocol_finding(&out));
    }
    for (out, expect_deadlock) in [
        (mutants::seqlock_relaxed_publish(bound), false),
        (mutants::seqlock_reader_no_revalidate(bound), false),
        (mutants::pool_shutdown_lost_wakeup(bound), true),
        (mutants::arena_counter_lost_update(bound), false),
        (mutants::plan_cache_no_double_check(bound), false),
        (mutants::shard_steal_double_execute(bound), false),
    ] {
        report.push(mutant_finding(&out, expect_deadlock));
    }
    report
}
