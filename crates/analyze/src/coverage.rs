//! Edge-tile residue coverage (§III-B).
//!
//! A library that handles M/N remainders with dedicated edge kernels
//! must be able to decompose *every* residue class `(M mod mr,
//! N mod nr)` into its available step sizes — and unambiguously, so a
//! given residue is handled by exactly one decomposition. OpenBLAS's
//! §III-B example: an M remainder of 11 against `mr = 16` becomes
//! `8 + 2 + 1`, each part a real edge micro-kernel. A registry whose
//! steps cannot reach some residue would fall off the end of its
//! kernel dispatch table at run time; one with duplicated or unsorted
//! steps would make the greedy decomposition ambiguous.
//!
//! Padding libraries (BLIS, BLASFEO) cover every residue with the
//! zero-padded main tile by construction; only the Eq. 4 feasibility
//! of the main tile matters there and is checked elsewhere.

use smm_kernels::registry::EdgeStrategy;
use smm_model::VectorIsa;

/// A registry's edge-handling contract, decoupled from
/// [`smm_kernels::LibraryProfile`] so deliberately broken registries
/// can be expressed in fixtures without constructing (panicking)
/// descriptors.
#[derive(Debug, Clone)]
pub struct EdgeRegistry<'a> {
    /// Registry (library) name for findings.
    pub name: &'a str,
    /// Main register-tile rows.
    pub mr: usize,
    /// Main register-tile columns.
    pub nr: usize,
    /// Remainder strategy.
    pub edge: EdgeStrategy,
    /// Available M decomposition steps (descending).
    pub m_steps: &'a [usize],
    /// Available N decomposition steps (descending).
    pub n_steps: &'a [usize],
    /// Vector ISA whose Eq. 4 budget edge tiles are checked against.
    pub isa: VectorIsa,
}

/// One coverage defect.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoverageIssue {
    /// A residue no step combination reaches.
    Uncovered {
        /// `"M"` or `"N"`.
        dim: &'static str,
        /// The unreachable residue.
        residue: usize,
        /// What the greedy decomposition left over.
        leftover: usize,
    },
    /// Steps unsorted or duplicated: the greedy decomposition is not
    /// a function of the residue, so a residue maps to more than one
    /// handler.
    AmbiguousSteps {
        /// `"M"` or `"N"`.
        dim: &'static str,
    },
    /// A step exceeds its tile dimension and can never fire.
    DeadStep {
        /// `"M"` or `"N"`.
        dim: &'static str,
        /// The oversized step.
        step: usize,
    },
    /// An edge tile `(m_step, n_step)` that violates Eq. 4.
    InfeasibleEdgeTile {
        /// Edge tile rows.
        mr_e: usize,
        /// Edge tile columns.
        nr_e: usize,
    },
}

impl std::fmt::Display for CoverageIssue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoverageIssue::Uncovered {
                dim,
                residue,
                leftover,
            } => write!(
                f,
                "{dim} residue {residue} is unreachable: greedy decomposition leaves {leftover}"
            ),
            CoverageIssue::AmbiguousSteps { dim } => write!(
                f,
                "{dim} steps are not strictly descending: residue handling is ambiguous"
            ),
            CoverageIssue::DeadStep { dim, step } => {
                write!(
                    f,
                    "{dim} step {step} exceeds the register tile and can never fire"
                )
            }
            CoverageIssue::InfeasibleEdgeTile { mr_e, nr_e } => {
                write!(
                    f,
                    "edge tile {mr_e}x{nr_e} violates the Eq. 4 register budget"
                )
            }
        }
    }
}

/// Greedy decomposition without the panicking preconditions of
/// [`smm_kernels::registry::decompose_greedy`]: returns the parts and
/// whatever length the steps could not express.
fn decompose(len: usize, steps: &[usize]) -> (Vec<usize>, usize) {
    let mut out = Vec::new();
    let mut rest = len;
    for &s in steps {
        if s == 0 {
            continue;
        }
        while rest >= s {
            out.push(s);
            rest -= s;
        }
    }
    (out, rest)
}

fn check_dim(
    dim: &'static str,
    tile: usize,
    steps: &[usize],
    issues: &mut Vec<CoverageIssue>,
) -> Vec<usize> {
    if !steps.windows(2).all(|w| w[0] > w[1]) {
        issues.push(CoverageIssue::AmbiguousSteps { dim });
    }
    for &s in steps {
        if s > tile {
            issues.push(CoverageIssue::DeadStep { dim, step: s });
        }
    }
    // Every residue class 1..tile-1 must decompose exactly; collect
    // the distinct parts actually used for the pairwise Eq. 4 check.
    let mut used: Vec<usize> = Vec::new();
    for residue in 1..tile {
        let (parts, leftover) = decompose(residue, steps);
        if leftover != 0 {
            issues.push(CoverageIssue::Uncovered {
                dim,
                residue,
                leftover,
            });
            continue;
        }
        for p in parts {
            if !used.contains(&p) {
                used.push(p);
            }
        }
    }
    used
}

/// Verify residue coverage of one registry.
pub fn check_coverage(reg: &EdgeRegistry<'_>) -> Vec<CoverageIssue> {
    let mut issues = Vec::new();
    if reg.edge == EdgeStrategy::Padding {
        // Zero padding routes every residue through the main tile.
        return issues;
    }
    let m_used = check_dim("M", reg.mr, reg.m_steps, &mut issues);
    let n_used = check_dim("N", reg.nr, reg.n_steps, &mut issues);
    // Every edge tile the decompositions can combine into must itself
    // respect Eq. 4 (an M part pairs with the full nr and with every N
    // part, and vice versa).
    let mut seen = Vec::new();
    let mut check_tile = |mr_e: usize, nr_e: usize, issues: &mut Vec<CoverageIssue>| {
        if seen.contains(&(mr_e, nr_e)) {
            return;
        }
        seen.push((mr_e, nr_e));
        if reg.isa.check_register_budget(mr_e, nr_e, 4).is_err() {
            issues.push(CoverageIssue::InfeasibleEdgeTile { mr_e, nr_e });
        }
    };
    for &mr_e in &m_used {
        check_tile(mr_e, reg.nr, &mut issues);
        for &nr_e in &n_used {
            check_tile(mr_e, nr_e, &mut issues);
        }
    }
    for &nr_e in &n_used {
        check_tile(reg.mr, nr_e, &mut issues);
    }
    issues
}

#[cfg(test)]
mod tests {
    use super::*;

    fn openblas_like() -> EdgeRegistry<'static> {
        EdgeRegistry {
            name: "OpenBLAS",
            mr: 16,
            nr: 4,
            edge: EdgeStrategy::EdgeKernels,
            m_steps: &[16, 8, 4, 2, 1],
            n_steps: &[4, 2, 1],
            isa: VectorIsa::neon128(),
        }
    }

    #[test]
    fn full_step_ladder_covers_everything() {
        assert!(check_coverage(&openblas_like()).is_empty());
    }

    #[test]
    fn missing_small_steps_leave_residues_uncovered() {
        let mut r = openblas_like();
        r.m_steps = &[16, 8];
        let issues = check_coverage(&r);
        // Residues 1..8 minus multiples of 8: 1..7 and 9..15 \ {8}.
        assert!(issues.iter().any(|i| matches!(
            i,
            CoverageIssue::Uncovered {
                dim: "M",
                residue: 3,
                ..
            }
        )));
        assert!(!issues
            .iter()
            .any(|i| matches!(i, CoverageIssue::Uncovered { residue: 8, .. })));
    }

    #[test]
    fn unsorted_steps_are_ambiguous() {
        let mut r = openblas_like();
        r.m_steps = &[8, 16, 4, 2, 1];
        assert!(check_coverage(&r)
            .iter()
            .any(|i| matches!(i, CoverageIssue::AmbiguousSteps { dim: "M" })));
    }

    #[test]
    fn oversized_step_is_dead() {
        let mut r = openblas_like();
        r.n_steps = &[8, 4, 2, 1];
        assert!(check_coverage(&r)
            .iter()
            .any(|i| matches!(i, CoverageIssue::DeadStep { dim: "N", step: 8 })));
    }

    #[test]
    fn padding_registries_are_trivially_covered() {
        let mut r = openblas_like();
        r.edge = EdgeStrategy::Padding;
        r.m_steps = &[16]; // would be fatal with edge kernels
        assert!(check_coverage(&r).is_empty());
    }

    #[test]
    fn infeasible_edge_combination_flagged() {
        // An N residue of 8 pairs the full 16-row tile with an 8-wide
        // edge: 16x8 needs 32 registers, over the 30-register budget.
        // (The main tile itself is the descriptor check's job.)
        let r = EdgeRegistry {
            name: "bad",
            mr: 16,
            nr: 12,
            edge: EdgeStrategy::EdgeKernels,
            m_steps: &[16, 8, 4, 2, 1],
            n_steps: &[12, 8, 4, 2, 1],
            isa: VectorIsa::neon128(),
        };
        assert!(check_coverage(&r)
            .iter()
            .any(|i| matches!(i, CoverageIssue::InfeasibleEdgeTile { .. })));
        // The same registry is fully feasible at 256 bits: 16x12 is
        // ceil(16/8)*12 = 24 accumulators, within budget.
        let wide = EdgeRegistry {
            isa: VectorIsa::sve256(),
            ..r
        };
        assert!(check_coverage(&wide).is_empty());
    }
}
