//! Set-associative cache model.
//!
//! Phytium 2000+ has a private 32 KB L1D per core and a 2 MB L2 shared
//! by the four cores of a half-panel. The paper (§III-D, citing Su et
//! al.) attributes part of the multi-threaded kernel-efficiency loss to
//! the L2 being *non-LRU*; we model that with a pseudo-random
//! replacement policy alongside plain LRU.

/// Replacement policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Replacement {
    /// Least-recently-used (tracked with access stamps).
    Lru,
    /// Pseudo-random victim way (deterministic xorshift), modelling the
    /// non-LRU L2 of Phytium 2000+.
    Random,
}

/// Geometry and policy of one cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size: usize,
    /// Line size in bytes.
    pub line: usize,
    /// Associativity.
    pub ways: usize,
    /// Replacement policy.
    pub replacement: Replacement,
}

impl CacheConfig {
    /// Phytium 2000+ L1D: 32 KB, 64 B lines, 4-way, LRU.
    pub fn phytium_l1d() -> Self {
        CacheConfig {
            size: 32 * 1024,
            line: 64,
            ways: 4,
            replacement: Replacement::Lru,
        }
    }

    /// Phytium 2000+ L2: 2 MB, 64 B lines, 16-way, non-LRU.
    pub fn phytium_l2() -> Self {
        CacheConfig {
            size: 2 * 1024 * 1024,
            line: 64,
            ways: 16,
            replacement: Replacement::Random,
        }
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.size / (self.line * self.ways)
    }
}

/// Hit/miss counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed.
    pub misses: u64,
}

impl CacheStats {
    /// Miss ratio in `[0, 1]` (0 when there were no accesses).
    pub fn miss_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }
}

/// One set-associative cache.
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    sets: usize,
    line_shift: u32,
    /// `tags[set * ways + way]`; `u64::MAX` = invalid.
    tags: Vec<u64>,
    /// LRU stamps, same layout.
    stamps: Vec<u64>,
    clock: u64,
    rng: u64,
    /// Access statistics.
    pub stats: CacheStats,
}

impl Cache {
    /// Build an empty cache.
    pub fn new(cfg: CacheConfig) -> Self {
        assert!(
            cfg.line.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(cfg.ways >= 1);
        let sets = cfg.sets();
        assert!(sets >= 1, "config yields zero sets");
        Cache {
            cfg,
            sets,
            line_shift: cfg.line.trailing_zeros(),
            tags: vec![u64::MAX; sets * cfg.ways],
            stamps: vec![0; sets * cfg.ways],
            clock: 0,
            rng: 0x9E37_79B9_7F4A_7C15,
            stats: CacheStats::default(),
        }
    }

    /// The cache's configuration.
    pub fn config(&self) -> CacheConfig {
        self.cfg
    }

    fn next_rand(&mut self) -> u64 {
        // xorshift64*: deterministic, cheap, good enough for victim picks.
        let mut x = self.rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Access the line containing `addr`; returns `true` on hit. On a
    /// miss the line is installed (allocate-on-miss for both loads and
    /// stores).
    pub fn access(&mut self, addr: u64) -> bool {
        self.clock += 1;
        let line = addr >> self.line_shift;
        let set = (line as usize) % self.sets;
        let tag = line / self.sets as u64;
        let base = set * self.cfg.ways;
        // Hit path.
        for way in 0..self.cfg.ways {
            if self.tags[base + way] == tag {
                self.stamps[base + way] = self.clock;
                self.stats.hits += 1;
                return true;
            }
        }
        self.stats.misses += 1;
        // Prefer an invalid way.
        let victim = if let Some(w) = (0..self.cfg.ways).find(|&w| self.tags[base + w] == u64::MAX)
        {
            w
        } else {
            match self.cfg.replacement {
                Replacement::Lru => (0..self.cfg.ways)
                    .min_by_key(|&w| self.stamps[base + w])
                    .expect("ways >= 1"),
                Replacement::Random => (self.next_rand() as usize) % self.cfg.ways,
            }
        };
        self.tags[base + victim] = tag;
        self.stamps[base + victim] = self.clock;
        false
    }

    /// Install the line containing `addr` without touching statistics
    /// (hardware prefetch fills). No-op if already resident.
    pub fn install(&mut self, addr: u64) {
        self.clock += 1;
        let line = addr >> self.line_shift;
        let set = (line as usize) % self.sets;
        let tag = line / self.sets as u64;
        let base = set * self.cfg.ways;
        for way in 0..self.cfg.ways {
            if self.tags[base + way] == tag {
                self.stamps[base + way] = self.clock;
                return;
            }
        }
        let victim = if let Some(w) = (0..self.cfg.ways).find(|&w| self.tags[base + w] == u64::MAX)
        {
            w
        } else {
            match self.cfg.replacement {
                Replacement::Lru => (0..self.cfg.ways)
                    .min_by_key(|&w| self.stamps[base + w])
                    .expect("ways >= 1"),
                Replacement::Random => (self.next_rand() as usize) % self.cfg.ways,
            }
        };
        self.tags[base + victim] = tag;
        self.stamps[base + victim] = self.clock;
    }

    /// Probe without modifying state; `true` if the line is resident.
    pub fn probe(&self, addr: u64) -> bool {
        let line = addr >> self.line_shift;
        let set = (line as usize) % self.sets;
        let tag = line / self.sets as u64;
        let base = set * self.cfg.ways;
        (0..self.cfg.ways).any(|w| self.tags[base + w] == tag)
    }

    /// Drop all lines and statistics.
    pub fn reset(&mut self) {
        self.tags.fill(u64::MAX);
        self.stamps.fill(0);
        self.clock = 0;
        self.stats = CacheStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(ways: usize, replacement: Replacement) -> Cache {
        // 4 sets x `ways` ways x 64B lines.
        Cache::new(CacheConfig {
            size: 4 * ways * 64,
            line: 64,
            ways,
            replacement,
        })
    }

    #[test]
    fn phytium_geometries() {
        assert_eq!(CacheConfig::phytium_l1d().sets(), 128);
        assert_eq!(CacheConfig::phytium_l2().sets(), 2048);
    }

    #[test]
    fn first_access_misses_then_hits() {
        let mut c = tiny(2, Replacement::Lru);
        assert!(!c.access(0x40));
        assert!(c.access(0x40));
        assert!(c.access(0x44), "same line, different offset");
        assert_eq!(c.stats.hits, 2);
        assert_eq!(c.stats.misses, 1);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny(2, Replacement::Lru);
        // Three distinct lines mapping to set 0 (4 sets, line 64 => set
        // stride 256 bytes).
        let a = 0u64;
        let b = 1024;
        let d = 2048;
        c.access(a);
        c.access(b);
        c.access(a); // a is now most recent
        c.access(d); // evicts b
        assert!(c.probe(a));
        assert!(!c.probe(b));
        assert!(c.probe(d));
    }

    #[test]
    fn random_replacement_is_deterministic() {
        let run = || {
            let mut c = tiny(4, Replacement::Random);
            let mut hits = 0;
            for i in 0..10_000u64 {
                if c.access((i % 37) * 256) {
                    hits += 1;
                }
            }
            hits
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn random_replacement_misses_more_than_lru_under_reuse() {
        // A working set slightly larger than one set thrashes pessimally
        // under random replacement when the access pattern is cyclic;
        // LRU also thrashes cyclically. Use a mixed pattern with reuse.
        let work = |mut c: Cache| {
            for round in 0..200u64 {
                // Hot lines reused every round.
                for hot in 0..3u64 {
                    c.access(hot * 1024);
                }
                // One streaming line per round in the same set.
                c.access((4 + round) * 1024);
            }
            c.stats
        };
        let lru = work(tiny(4, Replacement::Lru));
        let rnd = work(tiny(4, Replacement::Random));
        assert!(
            rnd.miss_ratio() > lru.miss_ratio(),
            "random {:?} vs lru {:?}",
            rnd,
            lru
        );
    }

    #[test]
    fn working_set_within_capacity_has_no_capacity_misses() {
        let mut c = Cache::new(CacheConfig::phytium_l1d());
        // 16 KB working set, sequential.
        for round in 0..4 {
            for addr in (0..16 * 1024).step_by(64) {
                c.access(addr as u64);
            }
            if round == 0 {
                assert_eq!(c.stats.misses, 256);
            }
        }
        // Only cold misses.
        assert_eq!(c.stats.misses, 256);
    }

    #[test]
    fn reset_clears_contents() {
        let mut c = tiny(2, Replacement::Lru);
        c.access(0);
        c.reset();
        assert!(!c.probe(0));
        assert_eq!(c.stats, CacheStats::default());
    }

    #[test]
    fn miss_ratio_handles_empty() {
        assert_eq!(CacheStats::default().miss_ratio(), 0.0);
    }
}
