//! The simulated instruction set.
//!
//! A deliberately small ARMv8-flavoured ISA: exactly the instructions
//! that Goto-style GEMM kernels and packing loops are written with
//! (`ldr q`, `ldp s`, `fmla v.4s`, `str q`, address arithmetic, loop
//! branches), plus a `Barrier` pseudo-instruction for thread
//! synchronization.
//!
//! Registers are flat indices: `0..32` are the 128-bit vector registers
//! `V0..V31`, `32..64` model scalar FP views (`S`/`D` registers), and
//! `64..96` are general-purpose integer registers. The simulator renames
//! ideally, so only read-after-write dependencies matter; architectural
//! register pressure is the *emitter's* responsibility (checked against
//! Eq. 4 of the paper in `smm-kernels`).

use crate::phase::Phase;

/// Architectural register index.
pub type Reg = u8;

/// Sentinel for "no register".
pub const NO_REG: Reg = u8::MAX;

/// First vector register.
pub const V0: Reg = 0;
/// Number of vector registers.
pub const NUM_VREGS: Reg = 32;
/// First scalar FP register.
pub const S0: Reg = 32;
/// First general-purpose integer register.
pub const X0: Reg = 64;

/// Vector register `Vn`.
pub fn v(n: u8) -> Reg {
    assert!(n < NUM_VREGS, "vector register V{n} out of range");
    V0 + n
}

/// Scalar FP register `Sn`.
pub fn s(n: u8) -> Reg {
    assert!(n < 32, "scalar register S{n} out of range");
    S0 + n
}

/// Integer register `Xn`.
pub fn x(n: u8) -> Reg {
    assert!(n < 32, "integer register X{n} out of range");
    X0 + n
}

/// Scheduling queue an instruction dispatches into (§II-A: 2× Int/SIMD,
/// 1× FP/SIMD, 1× Load/Store).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueueKind {
    /// The FP/SIMD queue (vector arithmetic).
    Fp,
    /// The load/store queue.
    Ls,
    /// The integer/SIMD queues (address arithmetic, branches).
    Int,
}

/// Operations of the simulated ISA.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// 128-bit vector load (`ldr q`): fills one vector register.
    LdVec,
    /// Scalar FP load (`ldr s`): fills one scalar register.
    LdScalar,
    /// Scalar FP pair load (`ldp s, s`): one access, two registers.
    LdPair,
    /// 128-bit vector store (`str q`).
    StVec,
    /// Scalar FP store (`str s`).
    StScalar,
    /// Vector fused multiply-add (`fmla v.4s, v.4s, v.s[lane]`):
    /// `dst += src1 * src2`.
    Fma,
    /// Vector multiply (`fmul`), e.g. the `alpha` scaling of `C`.
    VMul,
    /// Vector add (`fadd`).
    VAdd,
    /// Broadcast a scalar across lanes (`dup v.4s, s`). Compiler-
    /// generated kernels (Eigen) stage `B` this way, spending FP-pipe
    /// slots that hand-written lane-indexed `fmla` avoids.
    VDup,
    /// Integer ALU operation (address increments, loop counters).
    IOp,
    /// Conditional loop branch (assumed perfectly predicted).
    Branch,
    /// Synchronization barrier pseudo-instruction. The payload is a
    /// machine-unique barrier id; the number of participating cores is
    /// carried in the instruction's `addr` field.
    Barrier(u32),
}

impl Op {
    /// Which scheduling queue the op occupies.
    pub fn queue(self) -> QueueKind {
        match self {
            Op::LdVec | Op::LdScalar | Op::LdPair | Op::StVec | Op::StScalar => QueueKind::Ls,
            Op::Fma | Op::VMul | Op::VAdd | Op::VDup => QueueKind::Fp,
            Op::IOp | Op::Branch | Op::Barrier(_) => QueueKind::Int,
        }
    }

    /// Is this a memory load?
    pub fn is_load(self) -> bool {
        matches!(self, Op::LdVec | Op::LdScalar | Op::LdPair)
    }

    /// Is this a memory store?
    pub fn is_store(self) -> bool {
        matches!(self, Op::StVec | Op::StScalar)
    }
}

/// One instruction in a simulated stream.
#[derive(Debug, Clone, Copy)]
pub struct Inst {
    /// Operation.
    pub op: Op,
    /// Destination register (or [`NO_REG`]).
    pub dst: Reg,
    /// Second destination (only `LdPair`).
    pub dst2: Reg,
    /// Source registers ([`NO_REG`] slots unused). For `Fma` the first
    /// source is the accumulator itself.
    pub srcs: [Reg; 3],
    /// Byte address for memory ops; participant count for `Barrier`.
    pub addr: u64,
    /// Execution phase this instruction is accounted to.
    pub phase: Phase,
}

impl Inst {
    fn new(op: Op, phase: Phase) -> Self {
        Inst {
            op,
            dst: NO_REG,
            dst2: NO_REG,
            srcs: [NO_REG; 3],
            addr: 0,
            phase,
        }
    }

    /// `ldr q<dst>, [addr]`
    pub fn ld_vec(dst: Reg, addr: u64, phase: Phase) -> Self {
        let mut i = Inst::new(Op::LdVec, phase);
        i.dst = dst;
        i.addr = addr;
        i
    }

    /// `ldr s<dst>, [addr]`
    pub fn ld_scalar(dst: Reg, addr: u64, phase: Phase) -> Self {
        let mut i = Inst::new(Op::LdScalar, phase);
        i.dst = dst;
        i.addr = addr;
        i
    }

    /// `ldp s<dst>, s<dst2>, [addr]`
    pub fn ld_pair(dst: Reg, dst2: Reg, addr: u64, phase: Phase) -> Self {
        let mut i = Inst::new(Op::LdPair, phase);
        i.dst = dst;
        i.dst2 = dst2;
        i.addr = addr;
        i
    }

    /// `str q<src>, [addr]`
    pub fn st_vec(src: Reg, addr: u64, phase: Phase) -> Self {
        let mut i = Inst::new(Op::StVec, phase);
        i.srcs[0] = src;
        i.addr = addr;
        i
    }

    /// `str s<src>, [addr]`
    pub fn st_scalar(src: Reg, addr: u64, phase: Phase) -> Self {
        let mut i = Inst::new(Op::StScalar, phase);
        i.srcs[0] = src;
        i.addr = addr;
        i
    }

    /// `fmla v<acc>, v<a>, v<b>[lane]` — `acc += a * b`.
    pub fn fma(acc: Reg, a: Reg, b: Reg, phase: Phase) -> Self {
        let mut i = Inst::new(Op::Fma, phase);
        i.dst = acc;
        i.srcs = [acc, a, b];
        i
    }

    /// `fmul v<dst>, v<a>, v<b>`
    pub fn vmul(dst: Reg, a: Reg, b: Reg, phase: Phase) -> Self {
        let mut i = Inst::new(Op::VMul, phase);
        i.dst = dst;
        i.srcs = [a, b, NO_REG];
        i
    }

    /// `fadd v<dst>, v<a>, v<b>`
    pub fn vadd(dst: Reg, a: Reg, b: Reg, phase: Phase) -> Self {
        let mut i = Inst::new(Op::VAdd, phase);
        i.dst = dst;
        i.srcs = [a, b, NO_REG];
        i
    }

    /// `dup v<dst>.4s, s<src>` — broadcast a scalar across lanes.
    pub fn vdup(dst: Reg, src: Reg, phase: Phase) -> Self {
        let mut i = Inst::new(Op::VDup, phase);
        i.dst = dst;
        i.srcs = [src, NO_REG, NO_REG];
        i
    }

    /// Integer ALU op writing `dst` (pass [`NO_REG`] for pure overhead).
    pub fn iop(dst: Reg, phase: Phase) -> Self {
        let mut i = Inst::new(Op::IOp, phase);
        i.dst = dst;
        i
    }

    /// Loop branch.
    pub fn branch(phase: Phase) -> Self {
        Inst::new(Op::Branch, phase)
    }

    /// Barrier with a unique `id` across `participants` cores.
    pub fn barrier(id: u32, participants: usize) -> Self {
        let mut i = Inst::new(Op::Barrier(id), Phase::Sync);
        i.addr = participants as u64;
        i
    }

    /// Iterator over the valid source registers.
    pub fn sources(&self) -> impl Iterator<Item = Reg> + '_ {
        self.srcs.iter().copied().filter(|&r| r != NO_REG)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queues_match_microarchitecture() {
        assert_eq!(Op::LdVec.queue(), QueueKind::Ls);
        assert_eq!(Op::StVec.queue(), QueueKind::Ls);
        assert_eq!(Op::Fma.queue(), QueueKind::Fp);
        assert_eq!(Op::IOp.queue(), QueueKind::Int);
        assert_eq!(Op::Branch.queue(), QueueKind::Int);
    }

    #[test]
    fn load_store_classification() {
        assert!(Op::LdPair.is_load());
        assert!(!Op::LdPair.is_store());
        assert!(Op::StScalar.is_store());
        assert!(!Op::Fma.is_load());
    }

    #[test]
    fn fma_reads_its_accumulator() {
        let i = Inst::fma(v(16), v(0), s(0), Phase::Kernel);
        let srcs: Vec<_> = i.sources().collect();
        assert_eq!(srcs, vec![v(16), v(0), s(0)]);
        assert_eq!(i.dst, v(16));
    }

    #[test]
    fn ldp_fills_two_registers() {
        let i = Inst::ld_pair(s(12), s(13), 0x1000, Phase::Kernel);
        assert_eq!(i.dst, s(12));
        assert_eq!(i.dst2, s(13));
        assert_eq!(i.sources().count(), 0);
    }

    #[test]
    fn register_namespaces_do_not_collide() {
        assert_ne!(v(0), s(0));
        assert_ne!(s(0), x(0));
        assert!(x(31) < NO_REG);
    }

    #[test]
    fn barrier_carries_participants() {
        let b = Inst::barrier(7, 64);
        assert_eq!(b.addr, 64);
        assert!(matches!(b.op, Op::Barrier(7)));
        assert_eq!(b.phase, Phase::Sync);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn vector_register_bounds_checked() {
        v(32);
    }
}
