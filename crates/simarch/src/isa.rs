//! The simulated instruction set.
//!
//! A deliberately small ARMv8-flavoured ISA: exactly the instructions
//! that Goto-style GEMM kernels and packing loops are written with
//! (`ldr q`, `ldp s`, `fmla v.4s`, `str q`, address arithmetic, loop
//! branches), plus a `Barrier` pseudo-instruction for thread
//! synchronization.
//!
//! The base ISA is NEON-flavoured; for SVE-style targets it gains
//! predicated vector ops (`ld1w`/`st1w`/`fmla` under a governing
//! predicate plus the `whilelt` predicate generator) and an SME-style
//! outer-product tile accumulate (`fmopa`). The *byte width* of a vector
//! register is not encoded here — it is a property of the active
//! `VectorIsa` configuration (`smm_model::VectorIsa`); emitters choose
//! addresses and access sizes accordingly.
//!
//! Registers are flat indices: `0..32` are the full-width vector
//! registers `V0..V31` (`Z0..Z31` on SVE targets), `32..64` model scalar
//! FP views (`S`/`D` registers), `64..96` are general-purpose integer
//! registers, `96..112` are SVE governing predicates `P0..P15`, and
//! `112..120` are SME-style accumulator tiles `ZA0..ZA7`. The simulator
//! renames ideally, so only read-after-write dependencies matter;
//! architectural register pressure is the *emitter's* responsibility
//! (checked against Eq. 4 of the paper in `smm-kernels`).

use crate::phase::Phase;

/// Architectural register index.
pub type Reg = u8;

/// Sentinel for "no register".
pub const NO_REG: Reg = u8::MAX;

/// First vector register.
pub const V0: Reg = 0;
/// Number of vector registers.
pub const NUM_VREGS: Reg = 32;
/// First scalar FP register.
pub const S0: Reg = 32;
/// First general-purpose integer register.
pub const X0: Reg = 64;
/// First governing predicate register (SVE-style targets).
pub const P0: Reg = 96;
/// Number of predicate registers.
pub const NUM_PREGS: Reg = 16;
/// First outer-product accumulator tile (SME-style targets).
pub const ZA0: Reg = 112;
/// Number of accumulator tiles.
pub const NUM_TREGS: Reg = 8;

/// Vector register `Vn`.
pub fn v(n: u8) -> Reg {
    assert!(n < NUM_VREGS, "vector register V{n} out of range");
    V0 + n
}

/// Scalar FP register `Sn`.
pub fn s(n: u8) -> Reg {
    assert!(n < 32, "scalar register S{n} out of range");
    S0 + n
}

/// Integer register `Xn`.
pub fn x(n: u8) -> Reg {
    assert!(n < 32, "integer register X{n} out of range");
    X0 + n
}

/// Predicate register `Pn`.
pub fn pr(n: u8) -> Reg {
    assert!(n < NUM_PREGS, "predicate register P{n} out of range");
    P0 + n
}

/// Outer-product accumulator tile `ZAn`.
pub fn za(n: u8) -> Reg {
    assert!(n < NUM_TREGS, "accumulator tile ZA{n} out of range");
    ZA0 + n
}

/// Scheduling queue an instruction dispatches into (§II-A: 2× Int/SIMD,
/// 1× FP/SIMD, 1× Load/Store).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueueKind {
    /// The FP/SIMD queue (vector arithmetic).
    Fp,
    /// The load/store queue.
    Ls,
    /// The integer/SIMD queues (address arithmetic, branches).
    Int,
}

/// Operations of the simulated ISA.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Full-width vector load (`ldr q` / SVE `ldr z`): fills one vector
    /// register. The byte width is the active `VectorIsa`'s.
    LdVec,
    /// Predicated vector load (SVE `ld1w { z.s }, p/z, [addr]`): fills
    /// the active lanes of a vector register under a governing
    /// predicate. One load-port access like `LdVec`.
    LdVecPred,
    /// Scalar FP load (`ldr s`): fills one scalar register.
    LdScalar,
    /// Scalar FP pair load (`ldp s, s`): one access, two registers.
    LdPair,
    /// Full-width vector store (`str q` / SVE `str z`).
    StVec,
    /// Predicated vector store (SVE `st1w { z.s }, p, [addr]`): writes
    /// only the active lanes.
    StVecPred,
    /// Scalar FP store (`str s`).
    StScalar,
    /// Vector fused multiply-add (`fmla v.4s, v.4s, v.s[lane]`):
    /// `dst += src1 * src2`.
    Fma,
    /// Predicated vector FMA (SVE `fmla z, p/m, z, z`): active lanes
    /// accumulate, inactive lanes pass through. Same pipe and latency
    /// as `Fma`; the predicate is a true data dependency.
    FmaPred,
    /// Outer-product accumulate onto a tile (SME `fmopa za, p/m, z, z`):
    /// `tile[i][j] += a[i] * b[j]` for all active lane pairs. One FMA
    /// pipe slot per instruction in this model.
    FmaTile,
    /// Vector multiply (`fmul`), e.g. the `alpha` scaling of `C`.
    VMul,
    /// Vector add (`fadd`).
    VAdd,
    /// Broadcast a scalar across lanes (`dup v.4s, s`). Compiler-
    /// generated kernels (Eigen) stage `B` this way, spending FP-pipe
    /// slots that hand-written lane-indexed `fmla` avoids.
    VDup,
    /// Integer ALU operation (address increments, loop counters).
    IOp,
    /// Predicate generator (SVE `whilelt p, x, x`): sets a governing
    /// predicate from a loop bound. Integer pipe, single cycle.
    WhileLt,
    /// Conditional loop branch (assumed perfectly predicted).
    Branch,
    /// Synchronization barrier pseudo-instruction. The payload is a
    /// machine-unique barrier id; the number of participating cores is
    /// carried in the instruction's `addr` field.
    Barrier(u32),
}

impl Op {
    /// Which scheduling queue the op occupies.
    pub fn queue(self) -> QueueKind {
        match self {
            Op::LdVec
            | Op::LdVecPred
            | Op::LdScalar
            | Op::LdPair
            | Op::StVec
            | Op::StVecPred
            | Op::StScalar => QueueKind::Ls,
            Op::Fma | Op::FmaPred | Op::FmaTile | Op::VMul | Op::VAdd | Op::VDup => QueueKind::Fp,
            Op::IOp | Op::WhileLt | Op::Branch | Op::Barrier(_) => QueueKind::Int,
        }
    }

    /// Is this a memory load?
    pub fn is_load(self) -> bool {
        matches!(self, Op::LdVec | Op::LdVecPred | Op::LdScalar | Op::LdPair)
    }

    /// Is this a memory store?
    pub fn is_store(self) -> bool {
        matches!(self, Op::StVec | Op::StVecPred | Op::StScalar)
    }

    /// Is this a (possibly predicated or tiled) fused multiply-add?
    pub fn is_fma(self) -> bool {
        matches!(self, Op::Fma | Op::FmaPred | Op::FmaTile)
    }
}

/// One instruction in a simulated stream.
#[derive(Debug, Clone, Copy)]
pub struct Inst {
    /// Operation.
    pub op: Op,
    /// Destination register (or [`NO_REG`]).
    pub dst: Reg,
    /// Second destination (only `LdPair`).
    pub dst2: Reg,
    /// Source registers ([`NO_REG`] slots unused). For `Fma` the first
    /// source is the accumulator itself; predicated ops carry their
    /// governing predicate in the last slot.
    pub srcs: [Reg; 4],
    /// Byte address for memory ops; participant count for `Barrier`.
    pub addr: u64,
    /// Execution phase this instruction is accounted to.
    pub phase: Phase,
}

impl Inst {
    fn new(op: Op, phase: Phase) -> Self {
        Inst {
            op,
            dst: NO_REG,
            dst2: NO_REG,
            srcs: [NO_REG; 4],
            addr: 0,
            phase,
        }
    }

    /// `ldr q<dst>, [addr]`
    pub fn ld_vec(dst: Reg, addr: u64, phase: Phase) -> Self {
        let mut i = Inst::new(Op::LdVec, phase);
        i.dst = dst;
        i.addr = addr;
        i
    }

    /// `ldr s<dst>, [addr]`
    pub fn ld_scalar(dst: Reg, addr: u64, phase: Phase) -> Self {
        let mut i = Inst::new(Op::LdScalar, phase);
        i.dst = dst;
        i.addr = addr;
        i
    }

    /// `ldp s<dst>, s<dst2>, [addr]`
    pub fn ld_pair(dst: Reg, dst2: Reg, addr: u64, phase: Phase) -> Self {
        let mut i = Inst::new(Op::LdPair, phase);
        i.dst = dst;
        i.dst2 = dst2;
        i.addr = addr;
        i
    }

    /// `str q<src>, [addr]`
    pub fn st_vec(src: Reg, addr: u64, phase: Phase) -> Self {
        let mut i = Inst::new(Op::StVec, phase);
        i.srcs[0] = src;
        i.addr = addr;
        i
    }

    /// `str s<src>, [addr]`
    pub fn st_scalar(src: Reg, addr: u64, phase: Phase) -> Self {
        let mut i = Inst::new(Op::StScalar, phase);
        i.srcs[0] = src;
        i.addr = addr;
        i
    }

    /// `fmla v<acc>, v<a>, v<b>[lane]` — `acc += a * b`.
    pub fn fma(acc: Reg, a: Reg, b: Reg, phase: Phase) -> Self {
        let mut i = Inst::new(Op::Fma, phase);
        i.dst = acc;
        i.srcs = [acc, a, b, NO_REG];
        i
    }

    /// `ld1w { z<dst> }, p<pred>/z, [addr]` — predicated vector load.
    pub fn ld_vec_pred(dst: Reg, pred: Reg, addr: u64, phase: Phase) -> Self {
        let mut i = Inst::new(Op::LdVecPred, phase);
        i.dst = dst;
        i.srcs[3] = pred;
        i.addr = addr;
        i
    }

    /// `st1w { z<src> }, p<pred>, [addr]` — predicated vector store.
    pub fn st_vec_pred(src: Reg, pred: Reg, addr: u64, phase: Phase) -> Self {
        let mut i = Inst::new(Op::StVecPred, phase);
        i.srcs[0] = src;
        i.srcs[3] = pred;
        i.addr = addr;
        i
    }

    /// `fmla z<acc>, p<pred>/m, z<a>, z<b>` — predicated vector FMA.
    pub fn fma_pred(acc: Reg, a: Reg, b: Reg, pred: Reg, phase: Phase) -> Self {
        let mut i = Inst::new(Op::FmaPred, phase);
        i.dst = acc;
        i.srcs = [acc, a, b, pred];
        i
    }

    /// `fmopa za<tile>, p<pred>/m, z<a>, z<b>` — outer-product tile
    /// accumulate (pass [`NO_REG`] for an all-true predicate).
    pub fn fma_tile(tile: Reg, a: Reg, b: Reg, pred: Reg, phase: Phase) -> Self {
        let mut i = Inst::new(Op::FmaTile, phase);
        i.dst = tile;
        i.srcs = [tile, a, b, pred];
        i
    }

    /// `whilelt p<dst>, x<counter>, x<bound>` — generate a governing
    /// predicate from a loop bound.
    pub fn while_lt(dst: Reg, counter: Reg, phase: Phase) -> Self {
        let mut i = Inst::new(Op::WhileLt, phase);
        i.dst = dst;
        i.srcs[0] = counter;
        i
    }

    /// `fmul v<dst>, v<a>, v<b>`
    pub fn vmul(dst: Reg, a: Reg, b: Reg, phase: Phase) -> Self {
        let mut i = Inst::new(Op::VMul, phase);
        i.dst = dst;
        i.srcs = [a, b, NO_REG, NO_REG];
        i
    }

    /// `fadd v<dst>, v<a>, v<b>`
    pub fn vadd(dst: Reg, a: Reg, b: Reg, phase: Phase) -> Self {
        let mut i = Inst::new(Op::VAdd, phase);
        i.dst = dst;
        i.srcs = [a, b, NO_REG, NO_REG];
        i
    }

    /// `dup v<dst>.4s, s<src>` — broadcast a scalar across lanes.
    pub fn vdup(dst: Reg, src: Reg, phase: Phase) -> Self {
        let mut i = Inst::new(Op::VDup, phase);
        i.dst = dst;
        i.srcs = [src, NO_REG, NO_REG, NO_REG];
        i
    }

    /// Integer ALU op writing `dst` (pass [`NO_REG`] for pure overhead).
    pub fn iop(dst: Reg, phase: Phase) -> Self {
        let mut i = Inst::new(Op::IOp, phase);
        i.dst = dst;
        i
    }

    /// Loop branch.
    pub fn branch(phase: Phase) -> Self {
        Inst::new(Op::Branch, phase)
    }

    /// Barrier with a unique `id` across `participants` cores.
    pub fn barrier(id: u32, participants: usize) -> Self {
        let mut i = Inst::new(Op::Barrier(id), Phase::Sync);
        i.addr = participants as u64;
        i
    }

    /// Iterator over the valid source registers.
    pub fn sources(&self) -> impl Iterator<Item = Reg> + '_ {
        self.srcs.iter().copied().filter(|&r| r != NO_REG)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queues_match_microarchitecture() {
        assert_eq!(Op::LdVec.queue(), QueueKind::Ls);
        assert_eq!(Op::StVec.queue(), QueueKind::Ls);
        assert_eq!(Op::Fma.queue(), QueueKind::Fp);
        assert_eq!(Op::IOp.queue(), QueueKind::Int);
        assert_eq!(Op::Branch.queue(), QueueKind::Int);
    }

    #[test]
    fn load_store_classification() {
        assert!(Op::LdPair.is_load());
        assert!(!Op::LdPair.is_store());
        assert!(Op::StScalar.is_store());
        assert!(!Op::Fma.is_load());
    }

    #[test]
    fn fma_reads_its_accumulator() {
        let i = Inst::fma(v(16), v(0), s(0), Phase::Kernel);
        let srcs: Vec<_> = i.sources().collect();
        assert_eq!(srcs, vec![v(16), v(0), s(0)]);
        assert_eq!(i.dst, v(16));
    }

    #[test]
    fn ldp_fills_two_registers() {
        let i = Inst::ld_pair(s(12), s(13), 0x1000, Phase::Kernel);
        assert_eq!(i.dst, s(12));
        assert_eq!(i.dst2, s(13));
        assert_eq!(i.sources().count(), 0);
    }

    #[test]
    fn register_namespaces_do_not_collide() {
        assert_ne!(v(0), s(0));
        assert_ne!(s(0), x(0));
        assert_ne!(x(31), pr(0));
        assert_ne!(pr(15), za(0));
        assert!(x(31) < NO_REG);
        assert!(za(7) < NO_REG);
    }

    #[test]
    fn predicated_ops_queue_like_their_plain_forms() {
        assert_eq!(Op::LdVecPred.queue(), QueueKind::Ls);
        assert_eq!(Op::StVecPred.queue(), QueueKind::Ls);
        assert_eq!(Op::FmaPred.queue(), QueueKind::Fp);
        assert_eq!(Op::FmaTile.queue(), QueueKind::Fp);
        assert_eq!(Op::WhileLt.queue(), QueueKind::Int);
        assert!(Op::LdVecPred.is_load());
        assert!(Op::StVecPred.is_store());
        assert!(!Op::FmaPred.is_load());
        assert!(Op::Fma.is_fma() && Op::FmaPred.is_fma() && Op::FmaTile.is_fma());
        assert!(!Op::VMul.is_fma());
    }

    #[test]
    fn predicated_fma_depends_on_its_predicate() {
        let i = Inst::fma_pred(v(16), v(0), v(1), pr(0), Phase::Edge);
        let srcs: Vec<_> = i.sources().collect();
        assert_eq!(srcs, vec![v(16), v(0), v(1), pr(0)]);
        assert_eq!(i.dst, v(16));
    }

    #[test]
    fn while_lt_writes_its_predicate() {
        let i = Inst::while_lt(pr(1), x(3), Phase::Edge);
        assert_eq!(i.dst, pr(1));
        assert_eq!(i.sources().collect::<Vec<_>>(), vec![x(3)]);
    }

    #[test]
    fn tile_accumulate_reads_tile_and_operands() {
        let i = Inst::fma_tile(za(0), v(0), v(1), pr(0), Phase::Kernel);
        assert_eq!(i.dst, za(0));
        let srcs: Vec<_> = i.sources().collect();
        assert_eq!(srcs, vec![za(0), v(0), v(1), pr(0)]);
        // All-true predicate drops the dependency.
        let j = Inst::fma_tile(za(1), v(0), v(1), NO_REG, Phase::Kernel);
        assert_eq!(j.sources().count(), 3);
    }

    #[test]
    fn predicated_load_carries_predicate_dependency() {
        let i = Inst::ld_vec_pred(v(2), pr(0), 0x40, Phase::Edge);
        assert_eq!(i.dst, v(2));
        assert_eq!(i.sources().collect::<Vec<_>>(), vec![pr(0)]);
        let s = Inst::st_vec_pred(v(2), pr(0), 0x80, Phase::Edge);
        assert_eq!(s.sources().collect::<Vec<_>>(), vec![v(2), pr(0)]);
    }

    #[test]
    fn barrier_carries_participants() {
        let b = Inst::barrier(7, 64);
        assert_eq!(b.addr, 64);
        assert!(matches!(b.op, Op::Barrier(7)));
        assert_eq!(b.phase, Phase::Sync);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn vector_register_bounds_checked() {
        v(32);
    }
}
