//! A cycle-approximate simulator of the Phytium 2000+ many-core
//! ARMv8 processor.
//!
//! The paper this repository reproduces characterizes small-scale GEMM
//! on real Phytium 2000+ silicon. This crate substitutes for that
//! hardware (see DESIGN.md §2): it models the documented
//! microarchitecture — per-core out-of-order pipelines ([`cpu`]), the
//! cache hierarchy with a non-LRU shared L2 ([`cache`]), NUMA panels
//! ([`memory`]) and multi-core execution with barriers ([`machine`]) —
//! and executes ARMv8-flavoured instruction streams ([`isa`], [`trace`])
//! with per-phase cycle accounting ([`phase`]).
//!
//! # Example
//!
//! ```
//! use smm_simarch::prelude::*;
//!
//! // 64 independent FMAs on 8 accumulators: near-peak throughput.
//! let insts: Vec<Inst> = (0..64)
//!     .map(|i| Inst::fma(v(16 + (i % 8) as u8), v(0), s(0), Phase::Kernel))
//!     .collect();
//! let report = simulate_single(Box::new(VecSource::new(insts)));
//! assert_eq!(report.total_fmas(), 64);
//! ```

#![deny(missing_docs)]

pub mod cache;
pub mod cpu;
pub mod isa;
pub mod machine;
pub mod memory;
pub mod phase;
pub mod trace;

/// Common imports for building and running simulations.
pub mod prelude {
    pub use crate::cache::{CacheConfig, Replacement};
    pub use crate::cpu::{CoreReport, CoreStatus, PipelineConfig};
    pub use crate::isa::{s, v, x, Inst, Op, Reg, NO_REG};
    pub use crate::machine::{simulate_single, Machine, SimReport};
    pub use crate::memory::{MemConfig, MemSystem, SimAlloc};
    pub use crate::phase::{Phase, PhaseBreakdown};
    pub use crate::trace::{ChainSource, FnSource, InstSource, VecSource};
}
