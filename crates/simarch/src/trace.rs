//! Streaming instruction sources.
//!
//! Full GEMM traces can run to hundreds of millions of instructions, so
//! they are never materialized: a core pulls chunks from an
//! [`InstSource`] on demand. Sources compose sequentially with
//! [`ChainSource`], and ad-hoc generators are built from closures with
//! [`FnSource`].

use crate::isa::Inst;

/// A stream of instructions delivered in chunks.
pub trait InstSource {
    /// Append the next chunk to `out`. Returns `false` — with nothing
    /// appended — once the stream is exhausted. A `true` return with an
    /// empty append is not allowed.
    fn next_chunk(&mut self, out: &mut Vec<Inst>) -> bool;
}

/// A source over a pre-built instruction vector (small traces, tests).
pub struct VecSource {
    insts: std::vec::IntoIter<Inst>,
}

impl VecSource {
    /// Wrap a vector.
    pub fn new(insts: Vec<Inst>) -> Self {
        VecSource {
            insts: insts.into_iter(),
        }
    }
}

impl InstSource for VecSource {
    fn next_chunk(&mut self, out: &mut Vec<Inst>) -> bool {
        // Deliver in bounded chunks to exercise the streaming path.
        let mut n = 0;
        for inst in self.insts.by_ref() {
            out.push(inst);
            n += 1;
            if n == 4096 {
                break;
            }
        }
        n > 0
    }
}

/// A source built from a closure; the closure appends a chunk and
/// returns `false` when exhausted.
pub struct FnSource<F: FnMut(&mut Vec<Inst>) -> bool> {
    f: F,
}

impl<F: FnMut(&mut Vec<Inst>) -> bool> FnSource<F> {
    /// Wrap a generator closure.
    pub fn new(f: F) -> Self {
        FnSource { f }
    }
}

impl<F: FnMut(&mut Vec<Inst>) -> bool> InstSource for FnSource<F> {
    fn next_chunk(&mut self, out: &mut Vec<Inst>) -> bool {
        (self.f)(out)
    }
}

/// Sequential composition of sources.
pub struct ChainSource {
    parts: Vec<Box<dyn InstSource>>,
    idx: usize,
}

impl ChainSource {
    /// Chain `parts` in order.
    pub fn new(parts: Vec<Box<dyn InstSource>>) -> Self {
        ChainSource { parts, idx: 0 }
    }
}

impl InstSource for ChainSource {
    fn next_chunk(&mut self, out: &mut Vec<Inst>) -> bool {
        while self.idx < self.parts.len() {
            if self.parts[self.idx].next_chunk(out) {
                return true;
            }
            self.idx += 1;
        }
        false
    }
}

/// Drain a source into a vector (tests and trace dumps only).
pub fn collect_source(mut src: impl InstSource) -> Vec<Inst> {
    let mut out = Vec::new();
    while src.next_chunk(&mut out) {}
    out
}

/// An empty source.
pub struct EmptySource;

impl InstSource for EmptySource {
    fn next_chunk(&mut self, _out: &mut Vec<Inst>) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{v, Inst};
    use crate::phase::Phase;

    fn nops(n: usize) -> Vec<Inst> {
        (0..n)
            .map(|i| Inst::ld_vec(v((i % 4) as u8), i as u64 * 16, Phase::Kernel))
            .collect()
    }

    #[test]
    fn vec_source_round_trips() {
        let insts = nops(10_000);
        let got = collect_source(VecSource::new(insts.clone()));
        assert_eq!(got.len(), insts.len());
        assert_eq!(got[777].addr, insts[777].addr);
    }

    #[test]
    fn vec_source_chunks_are_bounded() {
        let mut src = VecSource::new(nops(10_000));
        let mut out = Vec::new();
        assert!(src.next_chunk(&mut out));
        assert_eq!(out.len(), 4096);
    }

    #[test]
    fn fn_source_terminates() {
        let mut remaining = 3;
        let src = FnSource::new(move |out| {
            if remaining == 0 {
                return false;
            }
            remaining -= 1;
            out.extend(nops(2));
            true
        });
        assert_eq!(collect_source(src).len(), 6);
    }

    #[test]
    fn chain_source_preserves_order() {
        let a = VecSource::new(vec![Inst::ld_vec(v(0), 111, Phase::PackA)]);
        let b = VecSource::new(vec![Inst::ld_vec(v(1), 222, Phase::PackB)]);
        let got = collect_source(ChainSource::new(vec![Box::new(a), Box::new(b)]));
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].addr, 111);
        assert_eq!(got[1].addr, 222);
    }

    #[test]
    fn chain_skips_empty_parts() {
        let chain = ChainSource::new(vec![
            Box::new(EmptySource),
            Box::new(VecSource::new(nops(1))),
            Box::new(EmptySource),
        ]);
        assert_eq!(collect_source(chain).len(), 1);
    }

    #[test]
    fn empty_source_is_empty() {
        assert!(collect_source(EmptySource).is_empty());
    }
}
