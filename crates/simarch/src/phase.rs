//! Execution-phase accounting.
//!
//! The paper's Table II breaks multi-threaded SMM time into Kernel,
//! PackA, PackB and Sync. Every simulated instruction is tagged with a
//! [`Phase`]; the core attributes each cycle to the phase of the oldest
//! in-flight instruction, which yields the same style of breakdown.

/// The phase a simulated instruction belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Packing the `A` operand into `Ã`.
    PackA,
    /// Packing the `B` operand into `B̃`.
    PackB,
    /// Main micro-kernel execution.
    Kernel,
    /// Edge-case micro-kernel execution (reported merged into Kernel in
    /// Table II style output, but tracked separately for Fig. 9).
    Edge,
    /// Barrier wait time.
    Sync,
    /// Bookkeeping outside the above (loop setup, plan dispatch).
    Overhead,
}

/// All phases, in display order.
pub const ALL_PHASES: [Phase; 6] = [
    Phase::PackA,
    Phase::PackB,
    Phase::Kernel,
    Phase::Edge,
    Phase::Sync,
    Phase::Overhead,
];

impl Phase {
    fn index(self) -> usize {
        match self {
            Phase::PackA => 0,
            Phase::PackB => 1,
            Phase::Kernel => 2,
            Phase::Edge => 3,
            Phase::Sync => 4,
            Phase::Overhead => 5,
        }
    }

    /// Short column label.
    pub fn label(self) -> &'static str {
        match self {
            Phase::PackA => "PackA",
            Phase::PackB => "PackB",
            Phase::Kernel => "Kernel",
            Phase::Edge => "Edge",
            Phase::Sync => "Sync",
            Phase::Overhead => "Overhead",
        }
    }
}

/// Cycle (or count) totals per phase.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseBreakdown {
    counts: [u64; 6],
}

impl PhaseBreakdown {
    /// Empty breakdown.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `n` to a phase.
    pub fn add(&mut self, phase: Phase, n: u64) {
        self.counts[phase.index()] += n;
    }

    /// Value for a phase.
    pub fn get(&self, phase: Phase) -> u64 {
        self.counts[phase.index()]
    }

    /// Sum over all phases.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Fraction of the total in a phase (0 if the total is 0).
    pub fn fraction(&self, phase: Phase) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            self.get(phase) as f64 / t as f64
        }
    }

    /// Kernel + Edge combined, as Table II reports "Kernel".
    pub fn kernel_combined(&self) -> u64 {
        self.get(Phase::Kernel) + self.get(Phase::Edge)
    }

    /// Element-wise sum.
    pub fn merge(&self, other: &PhaseBreakdown) -> PhaseBreakdown {
        let mut out = *self;
        for (a, b) in out.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_get_total() {
        let mut b = PhaseBreakdown::new();
        b.add(Phase::Kernel, 70);
        b.add(Phase::PackB, 25);
        b.add(Phase::Sync, 5);
        assert_eq!(b.get(Phase::Kernel), 70);
        assert_eq!(b.total(), 100);
        assert!((b.fraction(Phase::PackB) - 0.25).abs() < 1e-12);
        assert_eq!(b.fraction(Phase::PackA), 0.0);
    }

    #[test]
    fn empty_breakdown_has_zero_fractions() {
        let b = PhaseBreakdown::new();
        assert_eq!(b.total(), 0);
        assert_eq!(b.fraction(Phase::Kernel), 0.0);
    }

    #[test]
    fn kernel_combined_merges_edge() {
        let mut b = PhaseBreakdown::new();
        b.add(Phase::Kernel, 60);
        b.add(Phase::Edge, 15);
        assert_eq!(b.kernel_combined(), 75);
    }

    #[test]
    fn merge_is_elementwise() {
        let mut a = PhaseBreakdown::new();
        a.add(Phase::PackA, 1);
        let mut b = PhaseBreakdown::new();
        b.add(Phase::PackA, 2);
        b.add(Phase::Sync, 3);
        let m = a.merge(&b);
        assert_eq!(m.get(Phase::PackA), 3);
        assert_eq!(m.get(Phase::Sync), 3);
        assert_eq!(m.total(), 6);
    }

    #[test]
    fn all_phases_have_distinct_indices_and_labels() {
        let mut seen = std::collections::HashSet::new();
        for p in ALL_PHASES {
            assert!(seen.insert(p.index()));
            assert!(!p.label().is_empty());
        }
    }
}
