//! Multi-core machine: cores, shared memory system, barriers.
//!
//! Cores are stepped in lockstep (round-robin within a global cycle),
//! so shared-L2 interleaving and barrier waits are deterministic.

use std::collections::HashMap;

use crate::cpu::{CoreReport, CoreSim, CoreStatus, PipelineConfig};
use crate::memory::{MemConfig, MemSystem};
use crate::phase::{Phase, PhaseBreakdown};
use crate::trace::InstSource;

#[derive(Debug, Default)]
struct BarrierState {
    arrived: usize,
    participants: usize,
    released: bool,
}

/// Tracks barrier arrivals across cores.
#[derive(Debug, Default)]
pub struct BarrierHub {
    states: HashMap<u32, BarrierState>,
}

impl BarrierHub {
    /// Record an arrival; releases the barrier when full.
    pub fn arrive(&mut self, id: u32, participants: usize) {
        let st = self.states.entry(id).or_default();
        if st.participants == 0 {
            st.participants = participants;
        }
        assert_eq!(
            st.participants, participants,
            "barrier {id} used with inconsistent participant counts"
        );
        st.arrived += 1;
        assert!(
            st.arrived <= st.participants,
            "barrier {id} over-subscribed ({} > {})",
            st.arrived,
            st.participants
        );
        if st.arrived == st.participants {
            st.released = true;
        }
    }

    /// Has the barrier been released?
    pub fn released(&self, id: u32) -> bool {
        self.states.get(&id).is_some_and(|s| s.released)
    }
}

/// Results of a whole-machine simulation.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Makespan in cycles (cycle at which the last core drained).
    pub cycles: u64,
    /// Per-core reports.
    pub cores: Vec<CoreReport>,
}

impl SimReport {
    /// Phase cycles summed over all cores.
    pub fn total_breakdown(&self) -> PhaseBreakdown {
        self.cores
            .iter()
            .fold(PhaseBreakdown::new(), |acc, c| acc.merge(&c.phase_cycles))
    }

    /// Retired FMA instructions over all cores and phases.
    pub fn total_fmas(&self) -> u64 {
        self.cores.iter().map(|c| c.fma_by_phase.total()).sum()
    }

    /// FMA-issue occupancy during kernel phases (Kernel + Edge): the
    /// "kernel efficiency" column of Table II. With one FMA per cycle at
    /// peak, this is `kernel FMAs / kernel cycles`.
    pub fn kernel_fma_utilization(&self) -> f64 {
        let fmas: u64 = self
            .cores
            .iter()
            .map(|c| c.fma_by_phase.get(Phase::Kernel) + c.fma_by_phase.get(Phase::Edge))
            .sum();
        let cycles: u64 = self
            .cores
            .iter()
            .map(|c| c.phase_cycles.kernel_combined())
            .sum();
        if cycles == 0 {
            0.0
        } else {
            fmas as f64 / cycles as f64
        }
    }

    /// Achieved Gflops/s given the useful flop count and core frequency.
    pub fn gflops(&self, useful_flops: f64, freq_hz: f64) -> f64 {
        assert!(self.cycles > 0, "empty simulation");
        useful_flops / (self.cycles as f64 / freq_hz) / 1e9
    }
}

/// A configured multi-core machine ready to run one program per core.
pub struct Machine {
    mem: MemSystem,
    cores: Vec<CoreSim>,
    max_cycles: u64,
}

impl Machine {
    /// Build a machine with one instruction source per core.
    pub fn new(
        pipeline: PipelineConfig,
        mem_cfg: MemConfig,
        sources: Vec<Box<dyn InstSource>>,
    ) -> Self {
        assert!(!sources.is_empty(), "need at least one core");
        let mem = MemSystem::new(mem_cfg, sources.len());
        let cores = sources
            .into_iter()
            .enumerate()
            .map(|(id, src)| CoreSim::new(id, pipeline, src))
            .collect();
        Machine {
            mem,
            cores,
            max_cycles: 20_000_000_000,
        }
    }

    /// Override the runaway-guard cycle limit.
    pub fn with_max_cycles(mut self, max: u64) -> Self {
        self.max_cycles = max;
        self
    }

    /// Access to the memory system (e.g. for cache statistics after a run).
    pub fn mem(&self) -> &MemSystem {
        &self.mem
    }

    /// Run all cores to completion.
    pub fn run(&mut self) -> SimReport {
        let mut hub = BarrierHub::default();
        let mut now: u64 = 0;
        loop {
            let mut all_done = true;
            let mut any_progress = false;
            for core in &mut self.cores {
                match core.status() {
                    CoreStatus::Done => {}
                    CoreStatus::Running => {
                        all_done = false;
                        any_progress = true;
                        if let Some(id) = core.step(now, &mut self.mem) {
                            hub.arrive(id, core.barrier_participants());
                        }
                    }
                    CoreStatus::AtBarrier(id) => {
                        all_done = false;
                        if hub.released(id) {
                            core.release_barrier();
                            any_progress = true;
                        } else {
                            core.wait_cycle();
                        }
                    }
                }
            }
            if all_done {
                break;
            }
            assert!(
                any_progress,
                "barrier deadlock at cycle {now}: all live cores waiting on unreleased barriers"
            );
            now += 1;
            assert!(
                now < self.max_cycles,
                "simulation exceeded {} cycles",
                self.max_cycles
            );
        }
        SimReport {
            cycles: self
                .cores
                .iter()
                .map(|c| c.report().cycles)
                .max()
                .unwrap_or(0),
            cores: self.cores.iter().map(|c| c.report().clone()).collect(),
        }
    }
}

/// Convenience: run a single-core program on the Phytium model.
pub fn simulate_single(source: Box<dyn InstSource>) -> SimReport {
    let mut m = Machine::new(
        PipelineConfig::phytium_core(),
        MemConfig::phytium_2000_plus(),
        vec![source],
    );
    m.run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{s, v, Inst};
    use crate::phase::Phase;
    use crate::trace::VecSource;

    fn fma_block(n: usize, phase: Phase) -> Vec<Inst> {
        (0..n)
            .map(|i| Inst::fma(v(16 + (i % 8) as u8), v(0), s(0), phase))
            .collect()
    }

    #[test]
    fn single_core_runs_to_completion() {
        let r = simulate_single(Box::new(VecSource::new(fma_block(1000, Phase::Kernel))));
        assert_eq!(r.total_fmas(), 1000);
        assert!(r.cycles >= 1000);
        assert!(r.kernel_fma_utilization() > 0.8);
    }

    #[test]
    fn two_cores_run_concurrently() {
        let srcs: Vec<Box<dyn crate::trace::InstSource>> = vec![
            Box::new(VecSource::new(fma_block(5000, Phase::Kernel))),
            Box::new(VecSource::new(fma_block(5000, Phase::Kernel))),
        ];
        let mut m = Machine::new(
            PipelineConfig::phytium_core(),
            MemConfig::phytium_2000_plus(),
            srcs,
        );
        let r = m.run();
        // Concurrent: makespan close to a single core's time, not 2x.
        assert!(r.cycles < 8000, "makespan {}", r.cycles);
        assert_eq!(r.total_fmas(), 10_000);
    }

    #[test]
    fn barrier_synchronizes_unequal_work() {
        // Core 0 does 10k FMAs then barriers; core 1 barriers at once.
        let mut a = fma_block(10_000, Phase::Kernel);
        a.push(Inst::barrier(1, 2));
        let mut b = vec![Inst::barrier(1, 2)];
        b.extend(fma_block(10, Phase::Kernel));
        let mut m = Machine::new(
            PipelineConfig::phytium_core(),
            MemConfig::phytium_2000_plus(),
            vec![
                Box::new(VecSource::new(a)) as Box<dyn crate::trace::InstSource>,
                Box::new(VecSource::new(b)),
            ],
        );
        let r = m.run();
        // Core 1 waited roughly core 0's whole kernel time.
        let sync1 = r.cores[1].phase_cycles.get(Phase::Sync);
        assert!(sync1 > 8_000, "core 1 sync cycles {sync1}");
        let sync0 = r.cores[0].phase_cycles.get(Phase::Sync);
        assert!(sync0 < 100, "core 0 sync cycles {sync0}");
    }

    #[test]
    fn chained_barriers_release_in_order() {
        let prog = |n_work: usize| {
            let mut p = fma_block(n_work, Phase::Kernel);
            p.push(Inst::barrier(10, 2));
            p.extend(fma_block(n_work, Phase::Kernel));
            p.push(Inst::barrier(11, 2));
            p
        };
        let mut m = Machine::new(
            PipelineConfig::phytium_core(),
            MemConfig::phytium_2000_plus(),
            vec![
                Box::new(VecSource::new(prog(100))) as Box<dyn crate::trace::InstSource>,
                Box::new(VecSource::new(prog(200))),
            ],
        );
        let r = m.run();
        assert_eq!(r.total_fmas(), 600);
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn unmatched_barrier_deadlocks_loudly() {
        let mut m = Machine::new(
            PipelineConfig::phytium_core(),
            MemConfig::phytium_2000_plus(),
            vec![Box::new(VecSource::new(vec![Inst::barrier(5, 2)]))
                as Box<dyn crate::trace::InstSource>],
        );
        m.run();
    }

    #[test]
    #[should_panic(expected = "exceeded")]
    fn max_cycles_guard_fires() {
        let src = VecSource::new(fma_block(100_000, Phase::Kernel));
        let mut m = Machine::new(
            PipelineConfig::phytium_core(),
            MemConfig::phytium_2000_plus(),
            vec![Box::new(src) as Box<dyn crate::trace::InstSource>],
        )
        .with_max_cycles(10);
        m.run();
    }

    #[test]
    fn gflops_math() {
        let r = simulate_single(Box::new(VecSource::new(fma_block(2200, Phase::Kernel))));
        // ~2200 cycles at 2.2 GHz executing 8 flops per FMA.
        let g = r.gflops(2200.0 * 8.0, 2.2e9);
        assert!(g > 10.0 && g <= 17.7, "gflops {g}");
    }

    #[test]
    fn report_merges_phases_across_cores() {
        let srcs: Vec<Box<dyn crate::trace::InstSource>> = vec![
            Box::new(VecSource::new(fma_block(100, Phase::Kernel))),
            Box::new(VecSource::new(fma_block(100, Phase::Edge))),
        ];
        let mut m = Machine::new(
            PipelineConfig::phytium_core(),
            MemConfig::phytium_2000_plus(),
            srcs,
        );
        let r = m.run();
        let b = r.total_breakdown();
        assert!(b.get(Phase::Kernel) > 0);
        assert!(b.get(Phase::Edge) > 0);
        assert_eq!(
            b.kernel_combined(),
            b.get(Phase::Kernel) + b.get(Phase::Edge)
        );
    }
}
