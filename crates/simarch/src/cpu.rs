//! The out-of-order core model.
//!
//! Models the Phytium 2000+ "Xiaomi" core of §II-A: a superscalar,
//! out-of-order, 4-decode/4-dispatch pipeline with a 160-entry reorder
//! buffer and four 16-entry scheduling queues (2× Int/SIMD, 1× FP/SIMD,
//! 1× Load/Store with two load units). Renaming is ideal, so only true
//! (read-after-write) dependencies stall; each cycle the core retires
//! up to 4 completed instructions in order, issues ready instructions
//! oldest-first within each queue subject to port limits, and
//! dispatches up to 4 new instructions.
//!
//! The model deliberately captures the effects the paper analyzes:
//!
//! * FMA throughput is 1/cycle, so kernel efficiency equals FMA-issue
//!   occupancy during kernel phases;
//! * accumulator dependency chains shorter than the FMA latency bubble
//!   the pipe (why tiny edge kernels are slow, §III-B/C);
//! * only two load units, so load-dense packing loops and edge kernels
//!   with clustered `ldr`s (Fig. 7) serialize;
//! * load latency comes from the cache/NUMA model, so packing strides
//!   and shared-L2 misses surface as stalls.

use std::collections::VecDeque;

use crate::isa::{Inst, Op, QueueKind};
use crate::memory::MemSystem;
use crate::phase::{Phase, PhaseBreakdown};
use crate::trace::InstSource;

const NO_DEP: u64 = u64::MAX;

/// Pipeline parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineConfig {
    /// Instructions dispatched (renamed) per cycle.
    pub dispatch_width: usize,
    /// Reorder-buffer entries.
    pub rob_size: usize,
    /// Entries per scheduling queue.
    pub iq_size: usize,
    /// FMA/vector ops issued per cycle.
    pub fp_ports: usize,
    /// Load units.
    pub load_ports: usize,
    /// Store units.
    pub store_ports: usize,
    /// Integer ops issued per cycle (the two Int/SIMD queues combined).
    pub int_ports: usize,
    /// FMA result latency in cycles.
    pub fma_latency: u64,
    /// Other vector-arithmetic latency.
    pub valu_latency: u64,
    /// Integer ALU latency.
    pub int_latency: u64,
    /// In-order retire width.
    pub retire_width: usize,
}

impl PipelineConfig {
    /// Result latency of a non-memory `op`, or `mem_latency` for loads
    /// and stores (the cycle count the memory system would charge).
    ///
    /// This is the single latency table for both the cycle-level
    /// simulator and the static dependence-chain analysis in
    /// `smm-analyze`, so the two can never disagree about how long an
    /// FMA chain is.
    pub fn result_latency(&self, op: Op, mem_latency: u64) -> u64 {
        match op {
            op if op.is_load() || op.is_store() => mem_latency,
            // Predicated and tiled FMAs share the plain FMA pipe.
            Op::Fma | Op::FmaPred | Op::FmaTile => self.fma_latency,
            Op::VMul | Op::VAdd | Op::VDup => self.valu_latency,
            Op::IOp | Op::WhileLt | Op::Branch => self.int_latency,
            // Barriers are synchronization pseudo-instructions with no
            // result; charge a single cycle for chain purposes.
            Op::Barrier(_) => 1,
            op => unreachable!("unclassified op {op:?}"),
        }
    }

    /// The Xiaomi core of Phytium 2000+ (§II-A).
    pub fn phytium_core() -> Self {
        PipelineConfig {
            dispatch_width: 4,
            rob_size: 160,
            iq_size: 16,
            fp_ports: 1,
            load_ports: 2,
            store_ports: 1,
            int_ports: 2,
            fma_latency: 5,
            valu_latency: 4,
            int_latency: 1,
            retire_width: 4,
        }
    }
}

/// Execution status of a core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoreStatus {
    /// Executing instructions.
    Running,
    /// Stalled at a barrier (id).
    AtBarrier(u32),
    /// Stream exhausted and pipeline drained.
    Done,
}

struct RobEntry {
    op: Op,
    phase: Phase,
    addr: u64,
    deps: [u64; 4],
    issued: bool,
    done_at: u64,
}

/// Per-core simulation results.
#[derive(Debug, Clone, Default)]
pub struct CoreReport {
    /// Cycle at which the core drained.
    pub cycles: u64,
    /// Cycles attributed to each phase.
    pub phase_cycles: PhaseBreakdown,
    /// Retired instructions.
    pub retired: u64,
    /// Retired FMA instructions per phase.
    pub fma_by_phase: PhaseBreakdown,
    /// Retired loads per phase.
    pub loads_by_phase: PhaseBreakdown,
    /// Retired stores per phase.
    pub stores_by_phase: PhaseBreakdown,
}

/// One simulated core bound to an instruction source.
pub struct CoreSim {
    id: usize,
    cfg: PipelineConfig,
    source: Box<dyn InstSource>,
    source_done: bool,
    fetch: VecDeque<Inst>,
    rob: VecDeque<RobEntry>,
    base_seq: u64,
    rename: Vec<u64>,
    iq_fp: Vec<u64>,
    iq_ls: Vec<u64>,
    iq_int: Vec<u64>,
    status: CoreStatus,
    /// Participant count of the barrier being waited on.
    pending_barrier_participants: usize,
    report: CoreReport,
}

impl CoreSim {
    /// Create a core with the given id, pipeline and instruction source.
    pub fn new(id: usize, cfg: PipelineConfig, source: Box<dyn InstSource>) -> Self {
        CoreSim {
            id,
            cfg,
            source,
            source_done: false,
            fetch: VecDeque::new(),
            rob: VecDeque::new(),
            base_seq: 0,
            rename: vec![NO_DEP; 256],
            iq_fp: Vec::with_capacity(cfg.iq_size),
            iq_ls: Vec::with_capacity(cfg.iq_size),
            iq_int: Vec::with_capacity(cfg.iq_size),
            status: CoreStatus::Running,
            pending_barrier_participants: 0,
            report: CoreReport::default(),
        }
    }

    /// The core id (used for cache routing and NUMA locality).
    pub fn id(&self) -> usize {
        self.id
    }

    /// Current status.
    pub fn status(&self) -> CoreStatus {
        self.status
    }

    /// Barrier participant count captured when the core arrived.
    pub fn barrier_participants(&self) -> usize {
        self.pending_barrier_participants
    }

    /// Resume from a released barrier.
    pub fn release_barrier(&mut self) {
        debug_assert!(matches!(self.status, CoreStatus::AtBarrier(_)));
        self.status = CoreStatus::Running;
        self.pending_barrier_participants = 0;
    }

    /// Accumulated results (valid any time; final once `Done`).
    pub fn report(&self) -> &CoreReport {
        &self.report
    }

    fn refill_fetch(&mut self) {
        if self.fetch.is_empty() && !self.source_done {
            let mut buf = Vec::new();
            if self.source.next_chunk(&mut buf) {
                debug_assert!(!buf.is_empty(), "source returned true with no insts");
                self.fetch.extend(buf);
            } else {
                self.source_done = true;
            }
        }
    }

    fn dep_ready(&self, dep: u64, now: u64) -> bool {
        if dep == NO_DEP || dep < self.base_seq {
            return true;
        }
        let e = &self.rob[(dep - self.base_seq) as usize];
        e.issued && e.done_at <= now
    }

    fn latency(&self, op: Op, addr: u64, mem: &mut MemSystem, now: u64) -> u64 {
        match op {
            op if op.is_load() => mem.load(self.id, addr, now),
            op if op.is_store() => mem.store(self.id, addr, now),
            Op::Barrier(_) => unreachable!("barriers never enter the ROB"),
            // Memory latency is irrelevant below: the memory ops are
            // handled above with the cache model's dynamic answer.
            op => self.cfg.result_latency(op, 0),
        }
    }

    fn retire(&mut self, now: u64) {
        let mut n = 0;
        while n < self.cfg.retire_width {
            match self.rob.front() {
                Some(e) if e.issued && e.done_at <= now => {
                    let e = self.rob.pop_front().expect("front exists");
                    self.base_seq += 1;
                    self.report.retired += 1;
                    match e.op {
                        op if op.is_fma() => self.report.fma_by_phase.add(e.phase, 1),
                        op if op.is_load() => self.report.loads_by_phase.add(e.phase, 1),
                        op if op.is_store() => self.report.stores_by_phase.add(e.phase, 1),
                        _ => {}
                    }
                    n += 1;
                }
                _ => break,
            }
        }
    }

    fn issue_queue(&mut self, kind: QueueKind, now: u64, mem: &mut MemSystem) {
        // Port budgets for this cycle.
        let (mut budget_a, mut budget_b) = match kind {
            QueueKind::Fp => (self.cfg.fp_ports, 0),
            QueueKind::Ls => (self.cfg.load_ports, self.cfg.store_ports),
            QueueKind::Int => (self.cfg.int_ports, 0),
        };
        let queue = match kind {
            QueueKind::Fp => std::mem::take(&mut self.iq_fp),
            QueueKind::Ls => std::mem::take(&mut self.iq_ls),
            QueueKind::Int => std::mem::take(&mut self.iq_int),
        };
        let mut remaining = Vec::with_capacity(queue.len());
        for seq in queue {
            let idx = (seq - self.base_seq) as usize;
            let ready = {
                let e = &self.rob[idx];
                let budget_ok = if e.op.is_store() {
                    budget_b > 0
                } else {
                    budget_a > 0
                };
                budget_ok && e.deps.iter().all(|&d| self.dep_ready(d, now))
            };
            if ready {
                let (op, addr) = {
                    let e = &self.rob[idx];
                    (e.op, e.addr)
                };
                let lat = self.latency(op, addr, mem, now);
                let e = &mut self.rob[idx];
                e.issued = true;
                e.done_at = now + lat;
                if op.is_store() {
                    budget_b -= 1;
                } else {
                    budget_a -= 1;
                }
            } else {
                remaining.push(seq);
            }
        }
        match kind {
            QueueKind::Fp => self.iq_fp = remaining,
            QueueKind::Ls => self.iq_ls = remaining,
            QueueKind::Int => self.iq_int = remaining,
        }
    }

    /// Returns the barrier id if the core arrived at a barrier this cycle.
    fn dispatch(&mut self, _now: u64) -> Option<u32> {
        let mut n = 0;
        while n < self.cfg.dispatch_width {
            self.refill_fetch();
            let Some(&inst) = self.fetch.front() else {
                break;
            };
            if let Op::Barrier(id) = inst.op {
                // Drain before synchronizing, then notify the machine.
                if !self.rob.is_empty() {
                    break;
                }
                self.fetch.pop_front();
                self.status = CoreStatus::AtBarrier(id);
                self.pending_barrier_participants = inst.addr as usize;
                return Some(id);
            }
            if self.rob.len() >= self.cfg.rob_size {
                break;
            }
            let queue = match inst.op.queue() {
                QueueKind::Fp => &mut self.iq_fp,
                QueueKind::Ls => &mut self.iq_ls,
                QueueKind::Int => &mut self.iq_int,
            };
            let capacity = if inst.op.queue() == QueueKind::Int {
                // Two physical Int/SIMD queues.
                self.cfg.iq_size * 2
            } else {
                self.cfg.iq_size
            };
            if queue.len() >= capacity {
                break;
            }
            self.fetch.pop_front();
            let seq = self.base_seq + self.rob.len() as u64;
            let mut deps = [NO_DEP; 4];
            for (slot, src) in inst.sources().enumerate() {
                deps[slot] = self.rename[src as usize];
            }
            if inst.dst != crate::isa::NO_REG {
                self.rename[inst.dst as usize] = seq;
            }
            if inst.dst2 != crate::isa::NO_REG {
                self.rename[inst.dst2 as usize] = seq;
            }
            self.rob.push_back(RobEntry {
                op: inst.op,
                phase: inst.phase,
                addr: inst.addr,
                deps,
                issued: false,
                done_at: 0,
            });
            queue.push(seq);
            n += 1;
        }
        None
    }

    fn account_cycle(&mut self) {
        let phase = if matches!(self.status, CoreStatus::AtBarrier(_)) {
            Some(Phase::Sync)
        } else if let Some(front) = self.rob.front() {
            Some(front.phase)
        } else {
            self.fetch.front().map(|i| i.phase)
        };
        if let Some(p) = phase {
            self.report.phase_cycles.add(p, 1);
        }
    }

    /// Advance one cycle. Returns a barrier id when the core just
    /// arrived at that barrier.
    pub fn step(&mut self, now: u64, mem: &mut MemSystem) -> Option<u32> {
        debug_assert!(
            self.status == CoreStatus::Running,
            "step() on a non-running core"
        );
        self.retire(now);
        self.issue_queue(QueueKind::Fp, now, mem);
        self.issue_queue(QueueKind::Ls, now, mem);
        self.issue_queue(QueueKind::Int, now, mem);
        let arrived = self.dispatch(now);
        self.account_cycle();
        if arrived.is_none() && self.source_done && self.fetch.is_empty() && self.rob.is_empty() {
            self.status = CoreStatus::Done;
            self.report.cycles = now + 1;
        }
        arrived
    }

    /// Record a cycle spent waiting at a barrier.
    pub fn wait_cycle(&mut self) {
        debug_assert!(matches!(self.status, CoreStatus::AtBarrier(_)));
        self.report.phase_cycles.add(Phase::Sync, 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{s, v, Inst};
    use crate::memory::MemConfig;
    use crate::trace::VecSource;

    fn run_insts(insts: Vec<Inst>) -> (CoreReport, MemSystem) {
        let mut mem = MemSystem::new(MemConfig::phytium_2000_plus(), 1);
        let mut core = CoreSim::new(
            0,
            PipelineConfig::phytium_core(),
            Box::new(VecSource::new(insts)),
        );
        let mut now = 0;
        while core.status() != CoreStatus::Done {
            assert!(now < 10_000_000, "runaway test simulation");
            let arrived = core.step(now, &mut mem);
            assert!(arrived.is_none(), "no barriers in this test");
            now += 1;
        }
        (core.report().clone(), mem)
    }

    /// Independent FMA chains at the FMA latency count issue 1/cycle.
    #[test]
    fn independent_fmas_reach_full_throughput() {
        let lat = PipelineConfig::phytium_core().fma_latency as usize;
        let n = 10_000;
        let insts: Vec<Inst> = (0..n)
            .map(|i| Inst::fma(v((16 + (i % (2 * lat))) as u8), v(0), s(0), Phase::Kernel))
            .collect();
        let (r, _) = run_insts(insts);
        let cycles = r.cycles;
        let eff = n as f64 / cycles as f64;
        assert!(eff > 0.95, "efficiency {eff} (cycles {cycles})");
    }

    /// A single dependency chain is bounded by the FMA latency.
    #[test]
    fn serial_fma_chain_is_latency_bound() {
        let n = 2_000u64;
        let insts: Vec<Inst> = (0..n)
            .map(|_| Inst::fma(v(16), v(0), s(0), Phase::Kernel))
            .collect();
        let (r, _) = run_insts(insts);
        let lat = PipelineConfig::phytium_core().fma_latency;
        assert!(
            r.cycles >= n * lat,
            "chain of {n} FMAs must take >= {} cycles, took {}",
            n * lat,
            r.cycles
        );
    }

    /// Four accumulator chains on a 5-cycle pipe cap at 4/5 utilization.
    #[test]
    fn four_chains_cap_at_eighty_percent() {
        let n = 10_000;
        let insts: Vec<Inst> = (0..n)
            .map(|i| Inst::fma(v(16 + (i % 4) as u8), v(0), s(0), Phase::Kernel))
            .collect();
        let (r, _) = run_insts(insts);
        let eff = n as f64 / r.cycles as f64;
        assert!((0.72..=0.82).contains(&eff), "efficiency {eff}");
    }

    /// Two load ports: more than 2 independent loads per cycle queue up.
    #[test]
    fn load_ports_limit_throughput() {
        let n = 8_000;
        // All L1-resident after warmup (same 4 lines).
        let insts: Vec<Inst> = (0..n)
            .map(|i: u64| Inst::ld_vec(v((i % 8) as u8), (i % 16) * 16, Phase::PackA))
            .collect();
        let (r, _) = run_insts(insts);
        // 2 loads/cycle max => >= n/2 cycles.
        assert!(r.cycles >= n / 2, "cycles {} for {n} loads", r.cycles);
        assert!(
            r.cycles < n,
            "OOO should sustain ~2/cycle, got {}",
            r.cycles
        );
    }

    /// Load-to-use latency stalls a dependent FMA chain.
    #[test]
    fn load_use_dependency_stalls() {
        // alternate: load into v0, fma consuming v0 -> serial 3+5 per pair.
        let pairs = 1_000u64;
        let mut insts = Vec::new();
        for _ in 0..pairs {
            insts.push(Inst::ld_vec(v(0), 0x100, Phase::Kernel));
            insts.push(Inst::fma(v(16), v(0), s(0), Phase::Kernel));
        }
        let (r, _) = run_insts(insts);
        // Each FMA waits on its load (3cy hit) but chains also serialize
        // on v16 (5cy); the longer chain dominates: >= 5 * pairs.
        assert!(r.cycles >= 5 * pairs, "cycles {}", r.cycles);
    }

    /// Retired counts and phase attribution are recorded.
    #[test]
    fn accounting_tracks_phases_and_classes() {
        let mut insts = vec![
            Inst::ld_vec(v(0), 0x40, Phase::PackA),
            Inst::st_vec(v(0), 0x1040, Phase::PackA),
        ];
        for i in 0..100 {
            insts.push(Inst::fma(v(16 + (i % 8) as u8), v(0), s(0), Phase::Kernel));
        }
        let (r, _) = run_insts(insts);
        assert_eq!(r.retired, 102);
        assert_eq!(r.loads_by_phase.get(Phase::PackA), 1);
        assert_eq!(r.stores_by_phase.get(Phase::PackA), 1);
        assert_eq!(r.fma_by_phase.get(Phase::Kernel), 100);
        assert!(r.phase_cycles.get(Phase::Kernel) > 0);
        assert!(r.phase_cycles.get(Phase::PackA) > 0);
    }

    /// DRAM-latency loads overlap (memory-level parallelism).
    #[test]
    fn independent_misses_overlap() {
        // 64 loads to distinct lines, no dependencies.
        let insts: Vec<Inst> = (0..64)
            .map(|i| Inst::ld_vec(v((i % 16) as u8), i as u64 * 4096, Phase::Kernel))
            .collect();
        let (r, _) = run_insts(insts);
        // Serial would be 64*150 = 9600 cycles; with 8 MSHRs the 64
        // misses overlap in waves of 8.
        assert!(r.cycles < 5_000, "cycles {}", r.cycles);
        // But MLP is bounded: at least 64/8 waves of a full miss each.
        assert!(r.cycles > 8 * 150);
    }

    /// An empty source terminates immediately.
    #[test]
    fn empty_program_finishes() {
        let (r, _) = run_insts(vec![]);
        assert_eq!(r.retired, 0);
        assert!(r.cycles <= 1);
    }

    /// A whilelt → predicated load → predicated FMA → predicated store
    /// stream (the SVE edge path) runs to completion with the predicate
    /// tracked as a true dependency.
    #[test]
    fn predicated_edge_stream_executes() {
        use crate::isa::{pr, x};
        let mut insts = vec![Inst::while_lt(pr(0), x(0), Phase::Edge)];
        for i in 0..100u64 {
            insts.push(Inst::ld_vec_pred(v(0), pr(0), i * 64, Phase::Edge));
            insts.push(Inst::fma_pred(
                v(16 + (i % 8) as u8),
                v(0),
                v(1),
                pr(0),
                Phase::Edge,
            ));
        }
        insts.push(Inst::st_vec_pred(v(16), pr(0), 0x8000, Phase::Edge));
        let (r, _) = run_insts(insts);
        assert_eq!(r.retired, 202);
        assert_eq!(r.fma_by_phase.get(Phase::Edge), 100);
        assert_eq!(r.loads_by_phase.get(Phase::Edge), 100);
        assert_eq!(r.stores_by_phase.get(Phase::Edge), 1);
    }

    /// Independent tile accumulates sustain the FMA pipe; a single tile
    /// chain is latency-bound like a plain FMA chain.
    #[test]
    fn tile_accumulate_obeys_fma_latency() {
        use crate::isa::{za, NO_REG};
        let n = 2_000u64;
        let serial: Vec<Inst> = (0..n)
            .map(|_| Inst::fma_tile(za(0), v(0), v(1), NO_REG, Phase::Kernel))
            .collect();
        let (r, _) = run_insts(serial);
        let lat = PipelineConfig::phytium_core().fma_latency;
        assert!(r.cycles >= n * lat, "serial tile chain {} cycles", r.cycles);
        let parallel: Vec<Inst> = (0..n)
            .map(|i| Inst::fma_tile(za((i % 8) as u8), v(0), v(1), NO_REG, Phase::Kernel))
            .collect();
        let (r, _) = run_insts(parallel);
        assert!(
            (n as f64 / r.cycles as f64) > 0.9,
            "8 tiles should hide the pipe: {} cycles",
            r.cycles
        );
        assert_eq!(r.fma_by_phase.get(Phase::Kernel), n);
    }

    /// Branches and integer ops go through the Int queues without
    /// blocking FP issue.
    #[test]
    fn int_overhead_overlaps_with_fma() {
        let n = 4000;
        let mut insts = Vec::new();
        for i in 0..n {
            insts.push(Inst::fma(v(16 + (i % 8) as u8), v(0), s(0), Phase::Kernel));
            insts.push(Inst::iop(crate::isa::x(0), Phase::Kernel));
        }
        let (r, _) = run_insts(insts);
        // 2n instructions but FMA pipe is the bottleneck: ~n cycles.
        let eff = n as f64 / r.cycles as f64;
        assert!(eff > 0.9, "efficiency {eff}");
    }
}
