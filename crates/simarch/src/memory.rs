//! Memory hierarchy and NUMA model.
//!
//! Phytium 2000+ groups its 64 cores into 8 panels; each panel owns a
//! DDR4 channel behind its memory controller, so a core's DRAM latency
//! depends on whether the target page is homed on its own panel. Four
//! cores share each 2 MB L2.
//!
//! Simulated addresses are *virtual*: a bump allocator ([`SimAlloc`])
//! hands out non-overlapping regions and encodes the home panel in the
//! address itself — bits `[40, 43)` hold the panel for panel-local
//! allocations, while bit 47 marks page-interleaved regions whose home
//! panel rotates every 4 KB page.

use crate::cache::{Cache, CacheConfig};

const PANEL_SHIFT: u32 = 40;
const INTERLEAVE_BIT: u64 = 1 << 47;
const PAGE_SHIFT: u32 = 12;

/// Latency and topology parameters of the memory system.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemConfig {
    /// L1 data cache geometry (private per core).
    pub l1: CacheConfig,
    /// L2 geometry (shared by `cores_per_l2` cores).
    pub l2: CacheConfig,
    /// Cores sharing one L2 (4 on Phytium 2000+).
    pub cores_per_l2: usize,
    /// Cores per NUMA panel (8 on Phytium 2000+).
    pub cores_per_panel: usize,
    /// Number of panels (8).
    pub panels: usize,
    /// L1 hit latency in cycles (3 per the paper, citing Gao et al.).
    pub l1_hit: u64,
    /// L2 hit latency in cycles.
    pub l2_hit: u64,
    /// Local-panel DRAM latency in cycles.
    pub dram_local: u64,
    /// Remote-panel DRAM latency in cycles.
    pub dram_remote: u64,
    /// Store completion latency (write buffers absorb stores).
    pub store_latency: u64,
    /// Cycles one DRAM channel is occupied per 64 B line transferred
    /// (8 ≈ DDR4-2400's ~18 GB/s at 2.2 GHz). Concurrent misses to the
    /// same panel queue behind each other; this is what makes 64 cores
    /// hammering one memory controller a bottleneck.
    pub dram_service: u64,
    /// Enable the per-core sequential stream prefetcher. Disabling it
    /// makes every streaming load pay full miss latency (architecture
    /// ablations only — real Phytium 2000+ prefetches).
    pub prefetch: bool,
    /// Miss-status-holding registers per core: the maximum number of
    /// outstanding L1 misses. A miss issued while all MSHRs are busy
    /// waits for the earliest one to free, bounding memory-level
    /// parallelism.
    pub mshrs: usize,
}

impl MemConfig {
    /// Phytium 2000+ memory system as modelled in DESIGN.md.
    pub fn phytium_2000_plus() -> Self {
        MemConfig {
            l1: CacheConfig::phytium_l1d(),
            l2: CacheConfig::phytium_l2(),
            cores_per_l2: 4,
            cores_per_panel: 8,
            panels: 8,
            l1_hit: 3,
            l2_hit: 24,
            dram_local: 150,
            dram_remote: 240,
            store_latency: 1,
            dram_service: 8,
            prefetch: true,
            mshrs: 8,
        }
    }
}

/// Home panel of a simulated address.
pub fn home_panel(addr: u64, panels: usize) -> usize {
    if addr & INTERLEAVE_BIT != 0 {
        ((addr >> PAGE_SHIFT) as usize) % panels
    } else {
        ((addr >> PANEL_SHIFT) as usize) & 0x7
    }
}

/// Bump allocator for the simulated address space.
///
/// Regions never overlap; each panel's arena starts at
/// `panel << PANEL_SHIFT` and the interleaved arena at bit 47.
#[derive(Debug, Clone)]
pub struct SimAlloc {
    panel_offsets: Vec<u64>,
    interleaved_offset: u64,
}

impl SimAlloc {
    /// Fresh allocator for `panels` panels.
    pub fn new(panels: usize) -> Self {
        assert!((1..=8).contains(&panels), "1..=8 panels supported");
        SimAlloc {
            panel_offsets: vec![64; panels], // keep address 0 unused
            interleaved_offset: 64,
        }
    }

    /// Allocate `bytes` homed on `panel`, 64-byte aligned.
    pub fn alloc_on(&mut self, bytes: u64, panel: usize) -> u64 {
        let off = &mut self.panel_offsets[panel];
        let addr = ((panel as u64) << PANEL_SHIFT) + *off;
        *off += round_up(bytes, 64);
        assert!(*off < 1 << PANEL_SHIFT, "panel arena exhausted");
        addr
    }

    /// Allocate `bytes` in the page-interleaved arena.
    pub fn alloc_interleaved(&mut self, bytes: u64) -> u64 {
        let addr = INTERLEAVE_BIT + self.interleaved_offset;
        self.interleaved_offset += round_up(bytes, 64);
        addr
    }
}

fn round_up(x: u64, to: u64) -> u64 {
    x.div_ceil(to) * to
}

/// Per-core hardware stream prefetcher state: the next expected line of
/// each tracked stream.
#[derive(Debug, Clone)]
struct StreamTable {
    next_lines: [u64; 8],
    rr: usize,
}

impl StreamTable {
    fn new() -> Self {
        StreamTable {
            next_lines: [u64::MAX; 8],
            rr: 0,
        }
    }
}

/// The full simulated memory system: per-core L1s, shared L2s, NUMA DRAM.
///
/// Each core has an 8-entry sequential stream prefetcher: accesses that
/// continue a detected ascending line stream install the following
/// lines into the core's L1 and its shared L2 at no latency charge, so
/// well-behaved streaming (packed operands, contiguous packing stores)
/// runs at cache speed after the first line — as on real hardware.
/// Strided accesses that skip lines defeat the prefetcher and pay full
/// miss latency, which is exactly the §III-A packing asymmetry.
pub struct MemSystem {
    cfg: MemConfig,
    l1s: Vec<Cache>,
    l2s: Vec<Cache>,
    streams: Vec<StreamTable>,
    /// Cycle at which each panel's DRAM channel next becomes free.
    chan_free: Vec<u64>,
    /// Per-core MSHR completion times (`cores × mshrs`).
    mshr_free: Vec<Vec<u64>>,
}

impl MemSystem {
    /// Build for `cores` cores.
    pub fn new(cfg: MemConfig, cores: usize) -> Self {
        assert!(cores >= 1);
        let n_l2 = cores.div_ceil(cfg.cores_per_l2);
        MemSystem {
            cfg,
            l1s: (0..cores).map(|_| Cache::new(cfg.l1)).collect(),
            l2s: (0..n_l2).map(|_| Cache::new(cfg.l2)).collect(),
            streams: (0..cores).map(|_| StreamTable::new()).collect(),
            chan_free: vec![0; cfg.panels],
            mshr_free: (0..cores).map(|_| vec![0; cfg.mshrs.max(1)]).collect(),
        }
    }

    /// Claim an MSHR for a miss by `core` completing `total_latency`
    /// cycles after issue; returns the extra wait if all MSHRs are busy.
    fn book_mshr(&mut self, core: usize, now: u64, total_latency: u64) -> u64 {
        let slots = &mut self.mshr_free[core];
        let (idx, &earliest) = slots
            .iter()
            .enumerate()
            .min_by_key(|&(_, &t)| t)
            .expect("at least one MSHR");
        let wait = earliest.saturating_sub(now);
        slots[idx] = now + wait + total_latency;
        wait
    }

    /// Occupy the panel's DRAM channel for one line transfer starting
    /// no earlier than `now`; returns the queueing delay incurred.
    fn book_channel(&mut self, panel: usize, now: u64) -> u64 {
        let start = self.chan_free[panel].max(now);
        self.chan_free[panel] = start + self.cfg.dram_service;
        start - now
    }

    /// Run the stream prefetcher for an access by `core` to `addr`.
    /// Prefetch fills that come from DRAM still occupy the channel.
    fn prefetch(&mut self, core: usize, addr: u64, was_l1_miss: bool, now: u64) {
        if !self.cfg.prefetch {
            return;
        }
        let line = addr >> 6;
        let l2 = core / self.cfg.cores_per_l2;
        let table = &mut self.streams[core];
        let depth = if let Some(slot) = table.next_lines.iter().position(|&n| n == line) {
            // Stream continues: stay two lines ahead.
            table.next_lines[slot] = line + 1;
            2
        } else if was_l1_miss {
            // New stream candidate.
            let slot = table.rr;
            table.rr = (table.rr + 1) % table.next_lines.len();
            table.next_lines[slot] = line + 1;
            1
        } else {
            0
        };
        for d in 1..=depth {
            let target = (line + d) << 6;
            if !self.l2s[l2].probe(target) {
                let panel = home_panel(target, self.cfg.panels);
                // Hardware prefetchers throttle when the memory channel
                // is saturated; without this, prefetched streams would
                // bypass the bandwidth model entirely.
                if self.chan_free[panel] > now + 4 * self.cfg.dram_service {
                    continue;
                }
                self.book_channel(panel, now);
                self.l2s[l2].install(target);
            }
            self.l1s[core].install(target);
        }
    }

    /// The configuration.
    pub fn config(&self) -> MemConfig {
        self.cfg
    }

    /// Number of cores served.
    pub fn cores(&self) -> usize {
        self.l1s.len()
    }

    fn l2_index(&self, core: usize) -> usize {
        core / self.cfg.cores_per_l2
    }

    fn panel_of_core(&self, core: usize) -> usize {
        (core / self.cfg.cores_per_panel) % self.cfg.panels
    }

    /// Load latency for `core` touching `addr` at cycle `now`.
    pub fn load(&mut self, core: usize, addr: u64, now: u64) -> u64 {
        let l1_hit = self.l1s[core].access(addr);
        if l1_hit {
            self.prefetch(core, addr, false, now);
            return self.cfg.l1_hit;
        }
        let l2 = self.l2_index(core);
        let l2_hit = self.l2s[l2].access(addr);
        if l2_hit {
            self.prefetch(core, addr, true, now);
            let wait = self.book_mshr(core, now, self.cfg.l2_hit);
            return self.cfg.l2_hit + wait;
        }
        let panel = home_panel(addr, self.cfg.panels);
        let queue = self.book_channel(panel, now);
        self.prefetch(core, addr, true, now);
        let base = if panel == self.panel_of_core(core) {
            self.cfg.dram_local
        } else {
            self.cfg.dram_remote
        };
        let wait = self.book_mshr(core, now, base + queue);
        base + queue + wait
    }

    /// Store latency for `core` touching `addr` (write-allocate: the
    /// line is installed so subsequent loads hit, but the store itself
    /// completes at write-buffer speed; the allocate fill still books
    /// the DRAM channel).
    pub fn store(&mut self, core: usize, addr: u64, now: u64) -> u64 {
        let l1_hit = self.l1s[core].access(addr);
        if !l1_hit {
            let l2 = self.l2_index(core);
            if !self.l2s[l2].access(addr) {
                let panel = home_panel(addr, self.cfg.panels);
                self.book_channel(panel, now);
            }
        }
        self.prefetch(core, addr, !l1_hit, now);
        self.cfg.store_latency
    }

    /// L1 statistics for a core.
    pub fn l1_stats(&self, core: usize) -> crate::cache::CacheStats {
        self.l1s[core].stats
    }

    /// L2 statistics for the cluster serving `core`.
    pub fn l2_stats(&self, core: usize) -> crate::cache::CacheStats {
        self.l2s[self.l2_index(core)].stats
    }

    /// Reset all cache contents and statistics.
    pub fn reset(&mut self) {
        for c in &mut self.l1s {
            c.reset();
        }
        for c in &mut self.l2s {
            c.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys(cores: usize) -> MemSystem {
        MemSystem::new(MemConfig::phytium_2000_plus(), cores)
    }

    #[test]
    fn allocator_separates_panels() {
        let mut a = SimAlloc::new(8);
        let p0 = a.alloc_on(4096, 0);
        let p3 = a.alloc_on(4096, 3);
        assert_eq!(home_panel(p0, 8), 0);
        assert_eq!(home_panel(p3, 8), 3);
        assert_ne!(p0, p3);
    }

    #[test]
    fn allocations_do_not_overlap_and_are_aligned() {
        let mut a = SimAlloc::new(8);
        let x = a.alloc_on(100, 1);
        let y = a.alloc_on(100, 1);
        assert!(y >= x + 128, "64B-aligned bump");
        assert_eq!(x % 64, 0);
        assert_eq!(y % 64, 0);
    }

    #[test]
    fn interleaved_pages_rotate_panels() {
        let mut a = SimAlloc::new(8);
        let base = a.alloc_interleaved(64 * 1024);
        let mut seen = std::collections::HashSet::new();
        for page in 0..16u64 {
            seen.insert(home_panel(base + page * 4096, 8));
        }
        assert_eq!(seen.len(), 8, "16 consecutive pages cover all panels");
    }

    #[test]
    fn l1_hit_latency() {
        let mut m = sys(1);
        let cold = m.load(0, 0x100, 0);
        let warm = m.load(0, 0x100, 0);
        assert!(cold > warm);
        assert_eq!(warm, 3);
    }

    #[test]
    fn l2_hit_after_l1_eviction_scale() {
        let mut m = sys(1);
        // Touch 64 KB (2x L1) then return to the start: L1 evicted the
        // early lines but L2 (2 MB) still holds them. Advance the clock
        // between accesses so MSHRs/channels drain as they would in a
        // real execution.
        let mut clk = 0u64;
        for addr in (0..64 * 1024u64).step_by(64) {
            clk += 300;
            m.load(0, addr, clk);
        }
        let lat = m.load(0, 0x0, clk + 10_000);
        assert_eq!(lat, m.config().l2_hit);
    }

    #[test]
    fn numa_local_vs_remote() {
        let mut m = sys(64);
        let mut a = SimAlloc::new(8);
        let on_p0 = a.alloc_on(64, 0);
        // Core 0 lives on panel 0: local.
        assert_eq!(m.load(0, on_p0, 0), m.config().dram_local);
        // Core 63 lives on panel 7: remote for a fresh line (accessed
        // later, so the panel-0 channel is idle again and the line is
        // far from any prefetched stream).
        let on_p0b = a.alloc_on(4096, 0) + 2048;
        assert_eq!(m.load(63, on_p0b, 10_000), m.config().dram_remote);
    }

    #[test]
    fn four_cores_share_an_l2() {
        let mut m = sys(8);
        let addr = 0x4000u64;
        m.load(0, addr, 0); // miss to DRAM, installs in L2 #0 and L1 #0
                            // Core 3 shares L2 #0: gets an L2 hit.
        assert_eq!(m.load(3, addr, 0), m.config().l2_hit);
        // Core 4 uses L2 #1: full miss.
        assert!(m.load(4, addr, 0) >= m.config().dram_local);
    }

    #[test]
    fn stores_install_lines_for_later_loads() {
        let mut m = sys(1);
        assert_eq!(m.store(0, 0x8000, 0), m.config().store_latency);
        assert_eq!(m.load(0, 0x8000, 0), m.config().l1_hit);
    }

    #[test]
    fn shared_l2_contention_raises_misses() {
        // Four cores each reusing a 1 MB working set overflow the shared
        // 2 MB L2; a single core reusing 1 MB does not. Pseudo-random
        // line order defeats the stream prefetcher so the L2 contents
        // are what matters.
        let lines: Vec<u64> = {
            let mut state = 0x1234_5678_9ABC_DEF0u64;
            (0..4096u64)
                .map(|_| {
                    state ^= state >> 12;
                    state ^= state << 25;
                    state ^= state >> 27;
                    (state % 16384) * 64 // within 1 MB
                })
                .collect()
        };
        let mut solo = sys(1);
        let mut clk = 0u64;
        for round in 0..3 {
            for &a in &lines {
                solo.load(0, a, clk);
                clk += 200;
            }
            let _ = round;
        }
        let solo_l2_miss = solo.l2_stats(0).miss_ratio();

        let mut shared = sys(4);
        let mut clk = 0u64;
        for round in 0..3 {
            for &a in &lines {
                for core in 0..4u64 {
                    shared.load(core as usize, ((core + 1) << 24) | a, clk);
                    clk += 200;
                }
            }
            let _ = round;
        }
        let shared_l2_miss = shared.l2_stats(0).miss_ratio();
        assert!(
            shared_l2_miss > solo_l2_miss,
            "shared {shared_l2_miss} vs solo {solo_l2_miss}"
        );
    }

    #[test]
    fn reset_restores_cold_state() {
        let mut m = sys(1);
        m.load(0, 0x40, 0);
        m.reset();
        let lat = m.load(0, 0x40, 0);
        assert!(lat >= m.config().dram_local);
    }
}
