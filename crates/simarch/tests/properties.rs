//! Property-style tests for the machine model, driven by a
//! deterministic xorshift sweep: conservation laws the simulator must
//! satisfy for *any* program.

use smm_simarch::prelude::*;

struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
    }

    fn next(&mut self) -> u64 {
        self.0 ^= self.0 >> 12;
        self.0 ^= self.0 << 25;
        self.0 ^= self.0 >> 27;
        self.0.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next() % (hi - lo)
    }
}

/// Generate an arbitrary short program of data-flow-valid instructions.
fn arb_program(rng: &mut Rng) -> Vec<Inst> {
    let len = rng.range(0, 400) as usize;
    (0..len)
        .map(|_| {
            let kind = rng.range(0, 6) as u8;
            let r1 = rng.range(0, 16) as u8;
            let r2 = rng.range(0, 16) as u8;
            let addr = rng.range(0, 4096);
            let phase = Phase::Kernel;
            match kind {
                0 => Inst::ld_vec(v(r1 % 8), addr * 16, phase),
                1 => Inst::ld_scalar(s(r1), addr * 4, phase),
                2 => Inst::st_vec(v(r1 % 8), addr * 16, phase),
                3 => Inst::fma(v(16 + r1 % 8), v(r2 % 8), s(r2), phase),
                4 => Inst::iop(x(r1 % 4), phase),
                _ => Inst::branch(phase),
            }
        })
        .collect()
}

/// Every instruction retires exactly once, no matter the mix.
#[test]
fn all_instructions_retire() {
    let mut rng = Rng::new(21);
    for _ in 0..64 {
        let prog = arb_program(&mut rng);
        let n = prog.len() as u64;
        let report = simulate_single(Box::new(VecSource::new(prog)));
        assert_eq!(report.cores[0].retired, n);
    }
}

/// Cycles are bounded below by the dispatch width and by the FP port
/// throughput, and above by a generous serial bound.
#[test]
fn cycle_bounds_hold() {
    let mut rng = Rng::new(22);
    for _ in 0..64 {
        let prog = arb_program(&mut rng);
        let n = prog.len() as u64;
        let fmas = prog.iter().filter(|i| matches!(i.op, Op::Fma)).count() as u64;
        let report = simulate_single(Box::new(VecSource::new(prog)));
        let cycles = report.cores[0].cycles;
        // 4-wide dispatch lower bound.
        assert!(cycles + 1 >= n / 4, "cycles {cycles} for {n} insts");
        // One FMA per cycle upper throughput.
        assert!(cycles >= fmas, "cycles {cycles} for {fmas} FMAs");
        // Serial worst case: every instruction fully serialized at max
        // latency (DRAM remote + queue slack).
        assert!(cycles <= 16 + n * 400, "cycles {cycles} for {n} insts");
    }
}

/// Phase cycle accounting only covers phases that appear in the
/// program, and FMA counters match the program.
#[test]
fn accounting_is_consistent() {
    let mut rng = Rng::new(23);
    for _ in 0..64 {
        let prog = arb_program(&mut rng);
        let fmas = prog.iter().filter(|i| matches!(i.op, Op::Fma)).count() as u64;
        let loads = prog.iter().filter(|i| i.op.is_load()).count() as u64;
        let stores = prog.iter().filter(|i| i.op.is_store()).count() as u64;
        let report = simulate_single(Box::new(VecSource::new(prog)));
        let core = &report.cores[0];
        assert_eq!(core.fma_by_phase.total(), fmas);
        assert_eq!(core.loads_by_phase.total(), loads);
        assert_eq!(core.stores_by_phase.total(), stores);
        assert_eq!(core.phase_cycles.get(Phase::Sync), 0);
    }
}

/// Simulation is deterministic: identical programs produce identical
/// cycle counts.
#[test]
fn simulation_is_deterministic() {
    let mut rng = Rng::new(24);
    for _ in 0..64 {
        let prog = arb_program(&mut rng);
        let a = simulate_single(Box::new(VecSource::new(prog.clone()))).cycles;
        let b = simulate_single(Box::new(VecSource::new(prog))).cycles;
        assert_eq!(a, b);
    }
}

/// Cache accesses never lose lines spuriously: after an access, an
/// immediate repeat is a hit.
#[test]
fn repeat_access_hits() {
    let mut rng = Rng::new(25);
    for _ in 0..64 {
        let mut cache = smm_simarch::cache::Cache::new(CacheConfig::phytium_l1d());
        let count = rng.range(1, 200);
        for _ in 0..count {
            let a = rng.range(0, 100_000);
            cache.access(a);
            assert!(cache.probe(a), "line {a:#x} evicted immediately");
        }
    }
}

/// The memory system's latency is always one of the modelled tiers
/// (plus bounded queueing).
#[test]
fn load_latency_is_tiered() {
    let mut rng = Rng::new(26);
    for _ in 0..64 {
        let cfg = MemConfig::phytium_2000_plus();
        let mut mem = MemSystem::new(cfg, 1);
        let mut clk = 0u64;
        let count = rng.range(1, 100);
        for _ in 0..count {
            let a = rng.range(0, 1_000_000);
            let lat = mem.load(0, a, clk);
            assert!(
                lat == cfg.l1_hit
                    || lat == cfg.l2_hit
                    || (lat >= cfg.dram_local && lat <= cfg.dram_remote + 64 * cfg.dram_service),
                "unexpected latency {lat}"
            );
            clk += lat;
        }
    }
}

/// Two cores running identical independent programs finish within one
/// cycle of each other (fairness of the round-robin stepping).
#[test]
fn lockstep_fairness() {
    let prog: Vec<Inst> = (0..2000)
        .map(|i| Inst::fma(v(16 + (i % 8) as u8), v(0), s(0), Phase::Kernel))
        .collect();
    let mut m = Machine::new(
        PipelineConfig::phytium_core(),
        MemConfig::phytium_2000_plus(),
        vec![
            Box::new(VecSource::new(prog.clone())) as Box<dyn InstSource>,
            Box::new(VecSource::new(prog)),
        ],
    );
    let r = m.run();
    let d = r.cores[0].cycles.abs_diff(r.cores[1].cycles);
    assert!(d <= 1, "cores diverged by {d} cycles");
}
