//! Property tests for the machine model: conservation laws the
//! simulator must satisfy for *any* program.

use proptest::prelude::*;
use smm_simarch::prelude::*;

/// Generate an arbitrary short program of data-flow-valid instructions.
fn arb_program() -> impl Strategy<Value = Vec<Inst>> {
    let inst = (0u8..6, 0u8..16, 0u8..16, 0u64..4096u64).prop_map(|(kind, r1, r2, addr)| {
        let phase = Phase::Kernel;
        match kind {
            0 => Inst::ld_vec(v(r1 % 8), addr * 16, phase),
            1 => Inst::ld_scalar(s(r1), addr * 4, phase),
            2 => Inst::st_vec(v(r1 % 8), addr * 16, phase),
            3 => Inst::fma(v(16 + r1 % 8), v(r2 % 8), s(r2), phase),
            4 => Inst::iop(x(r1 % 4), phase),
            _ => Inst::branch(phase),
        }
    });
    proptest::collection::vec(inst, 0..400)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every instruction retires exactly once, no matter the mix.
    #[test]
    fn all_instructions_retire(prog in arb_program()) {
        let n = prog.len() as u64;
        let report = simulate_single(Box::new(VecSource::new(prog)));
        prop_assert_eq!(report.cores[0].retired, n);
    }

    /// Cycles are bounded below by the dispatch width and by the FP
    /// port throughput, and above by a generous serial bound.
    #[test]
    fn cycle_bounds_hold(prog in arb_program()) {
        let n = prog.len() as u64;
        let fmas = prog.iter().filter(|i| matches!(i.op, Op::Fma)).count() as u64;
        let report = simulate_single(Box::new(VecSource::new(prog)));
        let cycles = report.cores[0].cycles;
        // 4-wide dispatch lower bound.
        prop_assert!(cycles + 1 >= n / 4, "cycles {cycles} for {n} insts");
        // One FMA per cycle upper throughput.
        prop_assert!(cycles >= fmas, "cycles {cycles} for {fmas} FMAs");
        // Serial worst case: every instruction fully serialized at
        // max latency (DRAM remote + queue slack).
        prop_assert!(cycles <= 16 + n * 400, "cycles {cycles} for {n} insts");
    }

    /// Phase cycle accounting only covers phases that appear in the
    /// program, and FMA counters match the program.
    #[test]
    fn accounting_is_consistent(prog in arb_program()) {
        let fmas = prog.iter().filter(|i| matches!(i.op, Op::Fma)).count() as u64;
        let loads = prog.iter().filter(|i| i.op.is_load()).count() as u64;
        let stores = prog.iter().filter(|i| i.op.is_store()).count() as u64;
        let report = simulate_single(Box::new(VecSource::new(prog)));
        let core = &report.cores[0];
        prop_assert_eq!(core.fma_by_phase.total(), fmas);
        prop_assert_eq!(core.loads_by_phase.total(), loads);
        prop_assert_eq!(core.stores_by_phase.total(), stores);
        prop_assert_eq!(core.phase_cycles.get(Phase::Sync), 0);
    }

    /// Simulation is deterministic: identical programs produce
    /// identical cycle counts.
    #[test]
    fn simulation_is_deterministic(prog in arb_program()) {
        let a = simulate_single(Box::new(VecSource::new(prog.clone()))).cycles;
        let b = simulate_single(Box::new(VecSource::new(prog))).cycles;
        prop_assert_eq!(a, b);
    }

    /// Cache accesses never lose lines spuriously: after an access,
    /// an immediate repeat is a hit.
    #[test]
    fn repeat_access_hits(addrs in proptest::collection::vec(0u64..100_000, 1..200)) {
        let mut cache = smm_simarch::cache::Cache::new(CacheConfig::phytium_l1d());
        for a in addrs {
            cache.access(a);
            assert!(cache.probe(a), "line {a:#x} evicted immediately");
        }
    }

    /// The memory system's latency is always one of the modelled tiers
    /// (plus bounded queueing).
    #[test]
    fn load_latency_is_tiered(
        addrs in proptest::collection::vec(0u64..1_000_000, 1..100),
    ) {
        let cfg = MemConfig::phytium_2000_plus();
        let mut mem = MemSystem::new(cfg, 1);
        let mut clk = 0u64;
        for a in addrs {
            let lat = mem.load(0, a, clk);
            prop_assert!(
                lat == cfg.l1_hit
                    || lat == cfg.l2_hit
                    || (lat >= cfg.dram_local && lat <= cfg.dram_remote + 64 * cfg.dram_service),
                "unexpected latency {lat}"
            );
            clk += lat;
        }
    }
}

/// Two cores running identical independent programs finish within one
/// cycle of each other (fairness of the round-robin stepping).
#[test]
fn lockstep_fairness() {
    let prog: Vec<Inst> = (0..2000)
        .map(|i| Inst::fma(v(16 + (i % 8) as u8), v(0), s(0), Phase::Kernel))
        .collect();
    let mut m = Machine::new(
        PipelineConfig::phytium_core(),
        MemConfig::phytium_2000_plus(),
        vec![
            Box::new(VecSource::new(prog.clone())) as Box<dyn InstSource>,
            Box::new(VecSource::new(prog)),
        ],
    );
    let r = m.run();
    let d = r.cores[0].cycles.abs_diff(r.cores[1].cycles);
    assert!(d <= 1, "cores diverged by {d} cycles");
}
