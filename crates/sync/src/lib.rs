//! `smm-sync` — the workspace synchronization facade plus an
//! exhaustive-schedule concurrency model checker.
//!
//! Every lock-free protocol in the runtime (the `gemm::flight` seqlock
//! recorder, the `TaskPool` park/shutdown drain, the arena counters, the
//! sharded double-checked plan caches) imports its primitives from
//! [`sync`] instead of `std::sync`. In a normal build the facade is a
//! zero-cost re-export of the `std` types, so adopting modules compile to
//! identical machine code. When the workspace is built with
//! `RUSTFLAGS='--cfg smm_model_check'` the facade switches to the
//! instrumented shims in [`mc::shim`], and any code that runs inside
//! [`mc::Checker::explore`] is driven through a CHESS-style
//! bounded-preemption DFS over thread interleavings with a C11-style
//! release/acquire store-buffer memory model (see [`mc`] for the model
//! and its documented limits).
//!
//! Outside an active exploration the shims fall back to plain `std`
//! semantics, so a `--cfg smm_model_check` build still runs ordinary
//! code (tests, binaries) correctly — only closures handed to the
//! checker are scheduled by the controller.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod mc;

/// The synchronization facade adopted by the runtime crates.
///
/// Mirrors the subset of `std::sync` / `std::thread` the workspace
/// actually uses: `Atomic{Bool,U32,U64,Usize}` + [`atomic::fence`] +
/// [`atomic::Ordering`], `Mutex`/`Condvar`/`RwLock`, and
/// `thread::{spawn, Builder, JoinHandle}`. `Arc`, `OnceLock`, and
/// `mpsc` stay on `std` everywhere: they carry no protocol logic the
/// model checker needs to schedule.
pub mod sync {
    #[cfg(not(smm_model_check))]
    pub use std::sync::{
        Condvar, LockResult, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard,
    };

    #[cfg(smm_model_check)]
    pub use crate::mc::shim::{
        Condvar, LockResult, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard,
    };

    /// Atomic types and memory-ordering fences (std or shim).
    pub mod atomic {
        #[cfg(not(smm_model_check))]
        pub use std::sync::atomic::{
            fence, AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering,
        };

        #[cfg(smm_model_check)]
        pub use crate::mc::shim::{fence, AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
    }

    /// Thread spawning (std or shim). Threads spawned through this
    /// module while a model exploration is active become model threads
    /// scheduled by the controller.
    pub mod thread {
        #[cfg(not(smm_model_check))]
        pub use std::thread::{spawn, Builder, JoinHandle};

        #[cfg(smm_model_check)]
        pub use crate::mc::shim::{spawn, Builder, JoinHandle};
    }
}
