//! Instrumented drop-in replacements for the `std::sync` subset the
//! workspace uses. Inside an active [`super::Checker::explore`]
//! execution every operation is a controller-scheduled model op;
//! outside one, every type falls back to plain `std` semantics (the
//! shims wrap the real `std` primitives, so a `--cfg smm_model_check`
//! build still runs ordinary code correctly).

use std::cell::RefCell;
use std::io;
use std::marker::PhantomData;
use std::ops::{Deref, DerefMut};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Arc, PoisonError};
use std::time::Duration;

use super::exec::{MemOrd, Msg, Op, Resp, Rmw};

pub use std::sync::atomic::Ordering;
pub use std::sync::LockResult;

// ---------------------------------------------------------------------------
// Client context: how a model thread talks to its controller.
// ---------------------------------------------------------------------------

pub(crate) struct ClientCtx {
    pub(crate) tid: usize,
    pub(crate) req_tx: Sender<Msg>,
    pub(crate) resp_rx: Receiver<Resp>,
}

thread_local! {
    static CTX: RefCell<Option<ClientCtx>> = const { RefCell::new(None) };
}

/// Panic payload used to unwind model threads when the controller
/// tears an execution down; never reported as a failure.
pub(crate) struct AbortUnwind;

/// True when the current thread is a registered model thread (used by
/// the panic-hook filter to silence expected exploration panics).
pub(crate) fn in_model_thread() -> bool {
    CTX.try_with(|c| c.try_borrow().map(|b| b.is_some()).unwrap_or(true))
        .unwrap_or(false)
}

enum Sent {
    NotModel,
    Abort,
    Resp(Resp),
}

fn send_op(op: Op) -> Sent {
    CTX.with(|c| {
        let b = c.borrow();
        match b.as_ref() {
            None => Sent::NotModel,
            Some(ctx) => {
                if ctx.req_tx.send(Msg::Req { tid: ctx.tid, op }).is_err() {
                    return Sent::Abort;
                }
                match ctx.resp_rx.recv() {
                    Ok(Resp::Abort) | Err(_) => Sent::Abort,
                    Ok(r) => Sent::Resp(r),
                }
            }
        }
    })
}

/// Perform a model op; `None` when no execution is active. Unwinds on
/// controller abort — never call from a `Drop` impl (use
/// [`op_quiet`]).
pub(crate) fn op(o: Op) -> Option<Resp> {
    match send_op(o) {
        Sent::NotModel => None,
        Sent::Abort => std::panic::panic_any(AbortUnwind),
        Sent::Resp(r) => Some(r),
    }
}

/// Like [`op`], but maps a controller abort to a plain response so it
/// is safe to call while unwinding (guard `Drop` impls).
pub(crate) fn op_quiet(o: Op) -> Option<Resp> {
    match send_op(o) {
        Sent::NotModel => None,
        Sent::Abort => Some(Resp::Abort),
        Sent::Resp(r) => Some(r),
    }
}

fn req_tx_clone() -> Option<Sender<Msg>> {
    CTX.with(|c| c.borrow().as_ref().map(|ctx| ctx.req_tx.clone()))
}

fn panic_message(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Entry point for every model thread (thread 0 and facade-spawned
/// children): registers the client context, runs the body under
/// `catch_unwind`, hands the result to `sink` (a `JoinHandle` slot),
/// and always reports `Done` to the controller.
pub(crate) fn run_model_thread<R>(
    ctx: ClientCtx,
    f: impl FnOnce() -> R,
    sink: impl FnOnce(std::thread::Result<R>),
) {
    let tid = ctx.tid;
    let tx = ctx.req_tx.clone();
    CTX.with(|c| *c.borrow_mut() = Some(ctx));
    let res = catch_unwind(AssertUnwindSafe(f));
    CTX.with(|c| *c.borrow_mut() = None);
    let panic = match &res {
        Ok(_) => None,
        Err(p) if p.is::<AbortUnwind>() => None,
        Err(p) => Some(panic_message(p.as_ref())),
    };
    // Store the result before Done so a granted Join always finds it.
    sink(res);
    let _ = tx.send(Msg::Done { tid, panic });
}

// ---------------------------------------------------------------------------
// Atomics
// ---------------------------------------------------------------------------

macro_rules! model_atomic_uint {
    ($(#[$meta:meta])* $name:ident, $prim:ty) => {
        $(#[$meta])*
        ///
        /// Inside a model execution the fallback (`std`) value is used
        /// only as the location's initial value; model writes never
        /// touch it, so every explored execution starts from identical
        /// state.
        pub struct $name {
            raw: std::sync::atomic::$name,
        }

        impl $name {
            /// Creates a new atomic with `v` as its initial value.
            pub const fn new(v: $prim) -> Self {
                Self { raw: std::sync::atomic::$name::new(v) }
            }

            fn key(&self) -> usize {
                self as *const _ as usize
            }

            fn init(&self) -> u64 {
                self.raw.load(Ordering::Relaxed) as u64
            }

            fn do_rmw(&self, rmw: Rmw, ord: Ordering) -> Option<(u64, bool)> {
                match op(Op::Rmw {
                    loc: self.key(),
                    init: self.init(),
                    ord: MemOrd::from_std(ord),
                    rmw,
                })? {
                    Resp::RmwDone { old, ok } => Some((old, ok)),
                    _ => unreachable!("rmw response"),
                }
            }

            /// Atomic load.
            pub fn load(&self, ord: Ordering) -> $prim {
                match op(Op::Load {
                    loc: self.key(),
                    init: self.init(),
                    ord: MemOrd::from_std(ord),
                }) {
                    Some(Resp::Val(v)) => v as $prim,
                    Some(_) => unreachable!("load response"),
                    None => self.raw.load(ord),
                }
            }

            /// Atomic store.
            pub fn store(&self, val: $prim, ord: Ordering) {
                match op(Op::Store {
                    loc: self.key(),
                    init: self.init(),
                    ord: MemOrd::from_std(ord),
                    val: val as u64,
                }) {
                    Some(_) => {}
                    None => self.raw.store(val, ord),
                }
            }

            /// Atomic wrapping add; returns the previous value.
            pub fn fetch_add(&self, val: $prim, ord: Ordering) -> $prim {
                match self.do_rmw(Rmw::Add(val as u64), ord) {
                    Some((old, _)) => old as $prim,
                    None => self.raw.fetch_add(val, ord),
                }
            }

            /// Atomic wrapping subtract; returns the previous value.
            pub fn fetch_sub(&self, val: $prim, ord: Ordering) -> $prim {
                match self.do_rmw(Rmw::Sub(val as u64), ord) {
                    Some((old, _)) => old as $prim,
                    None => self.raw.fetch_sub(val, ord),
                }
            }

            /// Atomic maximum; returns the previous value.
            pub fn fetch_max(&self, val: $prim, ord: Ordering) -> $prim {
                match self.do_rmw(Rmw::Max(val as u64), ord) {
                    Some((old, _)) => old as $prim,
                    None => self.raw.fetch_max(val, ord),
                }
            }

            /// Atomic minimum; returns the previous value.
            pub fn fetch_min(&self, val: $prim, ord: Ordering) -> $prim {
                match self.do_rmw(Rmw::Min(val as u64), ord) {
                    Some((old, _)) => old as $prim,
                    None => self.raw.fetch_min(val, ord),
                }
            }

            /// Atomic bitwise OR; returns the previous value.
            pub fn fetch_or(&self, val: $prim, ord: Ordering) -> $prim {
                match self.do_rmw(Rmw::Or(val as u64), ord) {
                    Some((old, _)) => old as $prim,
                    None => self.raw.fetch_or(val, ord),
                }
            }

            /// Atomic bitwise AND; returns the previous value.
            pub fn fetch_and(&self, val: $prim, ord: Ordering) -> $prim {
                match self.do_rmw(Rmw::And(val as u64), ord) {
                    Some((old, _)) => old as $prim,
                    None => self.raw.fetch_and(val, ord),
                }
            }

            /// Atomic swap; returns the previous value.
            pub fn swap(&self, val: $prim, ord: Ordering) -> $prim {
                match self.do_rmw(Rmw::Swap(val as u64), ord) {
                    Some((old, _)) => old as $prim,
                    None => self.raw.swap(val, ord),
                }
            }

            /// Strong compare-exchange (spurious failure is not
            /// modeled).
            pub fn compare_exchange(
                &self,
                current: $prim,
                new: $prim,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$prim, $prim> {
                let rmw = Rmw::Cas {
                    expect: current as u64,
                    new: new as u64,
                    fail: MemOrd::from_std(failure),
                };
                match self.do_rmw(rmw, success) {
                    Some((old, true)) => Ok(old as $prim),
                    Some((old, false)) => Err(old as $prim),
                    None => self.raw.compare_exchange(current, new, success, failure),
                }
            }

            /// Weak compare-exchange; modeled identically to the
            /// strong variant.
            pub fn compare_exchange_weak(
                &self,
                current: $prim,
                new: $prim,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$prim, $prim> {
                self.compare_exchange(current, new, success, failure)
            }
        }

        impl std::fmt::Debug for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                // Debug reads the fallback value only (no model op).
                f.debug_tuple(stringify!($name)).field(&self.raw.load(Ordering::Relaxed)).finish()
            }
        }

        impl Default for $name {
            fn default() -> Self {
                Self::new(0)
            }
        }
    };
}

model_atomic_uint!(
    /// Model-checked drop-in for `std::sync::atomic::AtomicU64`.
    AtomicU64,
    u64
);
model_atomic_uint!(
    /// Model-checked drop-in for `std::sync::atomic::AtomicU32`.
    AtomicU32,
    u32
);
model_atomic_uint!(
    /// Model-checked drop-in for `std::sync::atomic::AtomicUsize`.
    AtomicUsize,
    usize
);

/// Model-checked drop-in for `std::sync::atomic::AtomicBool`
/// (modeled as a 0/1-valued location).
pub struct AtomicBool {
    raw: std::sync::atomic::AtomicBool,
}

impl AtomicBool {
    /// Creates a new atomic with `v` as its initial value.
    pub const fn new(v: bool) -> Self {
        Self {
            raw: std::sync::atomic::AtomicBool::new(v),
        }
    }

    fn key(&self) -> usize {
        self as *const _ as usize
    }

    fn init(&self) -> u64 {
        self.raw.load(Ordering::Relaxed) as u64
    }

    /// Atomic load.
    pub fn load(&self, ord: Ordering) -> bool {
        match op(Op::Load {
            loc: self.key(),
            init: self.init(),
            ord: MemOrd::from_std(ord),
        }) {
            Some(Resp::Val(v)) => v != 0,
            Some(_) => unreachable!("load response"),
            None => self.raw.load(ord),
        }
    }

    /// Atomic store.
    pub fn store(&self, val: bool, ord: Ordering) {
        match op(Op::Store {
            loc: self.key(),
            init: self.init(),
            ord: MemOrd::from_std(ord),
            val: val as u64,
        }) {
            Some(_) => {}
            None => self.raw.store(val, ord),
        }
    }

    /// Atomic swap; returns the previous value.
    pub fn swap(&self, val: bool, ord: Ordering) -> bool {
        match op(Op::Rmw {
            loc: self.key(),
            init: self.init(),
            ord: MemOrd::from_std(ord),
            rmw: Rmw::Swap(val as u64),
        }) {
            Some(Resp::RmwDone { old, .. }) => old != 0,
            Some(_) => unreachable!("rmw response"),
            None => self.raw.swap(val, ord),
        }
    }

    /// Strong compare-exchange.
    pub fn compare_exchange(
        &self,
        current: bool,
        new: bool,
        success: Ordering,
        failure: Ordering,
    ) -> Result<bool, bool> {
        let rmw = Rmw::Cas {
            expect: current as u64,
            new: new as u64,
            fail: MemOrd::from_std(failure),
        };
        match op(Op::Rmw {
            loc: self.key(),
            init: self.init(),
            ord: MemOrd::from_std(success),
            rmw,
        }) {
            Some(Resp::RmwDone { old, ok }) => {
                if ok {
                    Ok(old != 0)
                } else {
                    Err(old != 0)
                }
            }
            Some(_) => unreachable!("rmw response"),
            None => self.raw.compare_exchange(current, new, success, failure),
        }
    }
}

impl std::fmt::Debug for AtomicBool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("AtomicBool")
            .field(&self.raw.load(Ordering::Relaxed))
            .finish()
    }
}

impl Default for AtomicBool {
    fn default() -> Self {
        Self::new(false)
    }
}

/// Model-checked drop-in for `std::sync::atomic::fence`.
pub fn fence(ord: Ordering) {
    if op(Op::Fence {
        ord: MemOrd::from_std(ord),
    })
    .is_none()
    {
        std::sync::atomic::fence(ord);
    }
}

// ---------------------------------------------------------------------------
// Mutex / Condvar / RwLock
// ---------------------------------------------------------------------------

/// Model-checked drop-in for `std::sync::Mutex`. Ownership is decided
/// by the controller; the wrapped `std` mutex is still really locked
/// (uncontended, since the model serializes grants) so the data access
/// itself stays sound even outside executions.
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(t: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(t),
        }
    }

    fn key(&self) -> usize {
        self as *const _ as usize
    }

    /// Acquire the mutex (a blocking model op inside an execution).
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        let model = op(Op::Lock { lock: self.key() }).is_some();
        match self.inner.lock() {
            Ok(g) => Ok(MutexGuard {
                lock: self,
                inner: Some(g),
                model,
            }),
            Err(p) => Err(PoisonError::new(MutexGuard {
                lock: self,
                inner: Some(p.into_inner()),
                model,
            })),
        }
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

/// Guard for [`Mutex`]; releases model ownership on drop.
pub struct MutexGuard<'a, T> {
    lock: &'a Mutex<T>,
    inner: Option<std::sync::MutexGuard<'a, T>>,
    model: bool,
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard accessed after release")
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard accessed after release")
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Release the real lock before the model release so a thread
        // the controller grants next never blocks on the OS mutex.
        if let Some(g) = self.inner.take() {
            drop(g);
        }
        if self.model {
            let _ = op_quiet(Op::Unlock {
                lock: self.lock.key(),
            });
        }
    }
}

/// Model-checked drop-in for `std::sync::Condvar` with exact waiter
/// semantics: no spurious wakeups, so a lost wakeup surfaces as a
/// model deadlock instead of being masked by a retry loop.
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Self {
            inner: std::sync::Condvar::new(),
        }
    }

    fn key(&self) -> usize {
        self as *const _ as usize
    }

    /// Release the guard's mutex, park until notified, re-acquire.
    pub fn wait<'a, T>(&self, mut guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        let lock = guard.lock;
        if guard.model {
            guard.model = false; // defuse: CvWait covers the release
            drop(guard.inner.take());
            drop(guard);
            let _ = op(Op::CvWait {
                cv: self.key(),
                lock: lock.key(),
            });
            // The controller has granted us the mutex again.
            match lock.inner.lock() {
                Ok(g) => Ok(MutexGuard {
                    lock,
                    inner: Some(g),
                    model: true,
                }),
                Err(p) => Err(PoisonError::new(MutexGuard {
                    lock,
                    inner: Some(p.into_inner()),
                    model: true,
                })),
            }
        } else {
            let inner = guard.inner.take().expect("guard accessed after release");
            drop(guard);
            match self.inner.wait(inner) {
                Ok(g) => Ok(MutexGuard {
                    lock,
                    inner: Some(g),
                    model: false,
                }),
                Err(p) => Err(PoisonError::new(MutexGuard {
                    lock,
                    inner: Some(p.into_inner()),
                    model: false,
                })),
            }
        }
    }

    /// Timed wait. Not supported inside model executions (timeouts
    /// would make schedules timing-dependent); panics there. None of
    /// the model-checked protocols uses it.
    pub fn wait_timeout<'a, T>(
        &self,
        mut guard: MutexGuard<'a, T>,
        dur: Duration,
    ) -> LockResult<(MutexGuard<'a, T>, std::sync::WaitTimeoutResult)> {
        assert!(
            !guard.model,
            "Condvar::wait_timeout is not supported inside a model-checked execution"
        );
        let lock = guard.lock;
        let inner = guard.inner.take().expect("guard accessed after release");
        drop(guard);
        match self.inner.wait_timeout(inner, dur) {
            Ok((g, to)) => Ok((
                MutexGuard {
                    lock,
                    inner: Some(g),
                    model: false,
                },
                to,
            )),
            Err(p) => {
                let (g, to) = p.into_inner();
                Err(PoisonError::new((
                    MutexGuard {
                        lock,
                        inner: Some(g),
                        model: false,
                    },
                    to,
                )))
            }
        }
    }

    /// Wake one waiter (a model value-decision picks which).
    pub fn notify_one(&self) {
        if op(Op::CvNotify {
            cv: self.key(),
            all: false,
        })
        .is_none()
        {
            self.inner.notify_one();
        }
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        if op(Op::CvNotify {
            cv: self.key(),
            all: true,
        })
        .is_none()
        {
            self.inner.notify_all();
        }
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Self::new()
    }
}

/// Model-checked drop-in for `std::sync::RwLock`.
pub struct RwLock<T> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(t: T) -> Self {
        Self {
            inner: std::sync::RwLock::new(t),
        }
    }

    fn key(&self) -> usize {
        self as *const _ as usize
    }

    /// Acquire shared access.
    pub fn read(&self) -> LockResult<RwLockReadGuard<'_, T>> {
        let model = op(Op::RwRead { lock: self.key() }).is_some();
        match self.inner.read() {
            Ok(g) => Ok(RwLockReadGuard {
                lock: self,
                inner: Some(g),
                model,
            }),
            Err(p) => Err(PoisonError::new(RwLockReadGuard {
                lock: self,
                inner: Some(p.into_inner()),
                model,
            })),
        }
    }

    /// Acquire exclusive access.
    pub fn write(&self) -> LockResult<RwLockWriteGuard<'_, T>> {
        let model = op(Op::RwWrite { lock: self.key() }).is_some();
        match self.inner.write() {
            Ok(g) => Ok(RwLockWriteGuard {
                lock: self,
                inner: Some(g),
                model,
            }),
            Err(p) => Err(PoisonError::new(RwLockWriteGuard {
                lock: self,
                inner: Some(p.into_inner()),
                model,
            })),
        }
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

/// Shared guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T> {
    lock: &'a RwLock<T>,
    inner: Option<std::sync::RwLockReadGuard<'a, T>>,
    model: bool,
}

impl<T> Deref for RwLockReadGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard accessed after release")
    }
}

impl<T> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        if let Some(g) = self.inner.take() {
            drop(g);
        }
        if self.model {
            let _ = op_quiet(Op::RwUnlockRead {
                lock: self.lock.key(),
            });
        }
    }
}

/// Exclusive guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T> {
    lock: &'a RwLock<T>,
    inner: Option<std::sync::RwLockWriteGuard<'a, T>>,
    model: bool,
}

impl<T> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard accessed after release")
    }
}

impl<T> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard accessed after release")
    }
}

impl<T> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        if let Some(g) = self.inner.take() {
            drop(g);
        }
        if self.model {
            let _ = op_quiet(Op::RwUnlockWrite {
                lock: self.lock.key(),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// Threads
// ---------------------------------------------------------------------------

type ResultSlot<T> = Arc<std::sync::Mutex<Option<std::thread::Result<T>>>>;

enum HandleInner<T> {
    Std(std::thread::JoinHandle<T>),
    Model {
        tid: usize,
        real: std::thread::JoinHandle<()>,
        slot: ResultSlot<T>,
    },
}

/// Model-checked drop-in for `std::thread::JoinHandle`.
pub struct JoinHandle<T> {
    inner: HandleInner<T>,
    _marker: PhantomData<T>,
}

impl<T> JoinHandle<T> {
    /// Wait for the thread to finish (a blocking model op inside an
    /// execution; joining establishes happens-before as with `std`).
    pub fn join(self) -> std::thread::Result<T> {
        match self.inner {
            HandleInner::Std(h) => h.join(),
            HandleInner::Model { tid, real, slot } => {
                let _ = op(Op::Join { target: tid });
                let _ = real.join();
                slot.lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .take()
                    .unwrap_or_else(|| Err(Box::new("model thread produced no result")))
            }
        }
    }
}

/// Model-checked drop-in for `std::thread::Builder` (name-only; stack
/// size is not part of any checked protocol).
#[derive(Default)]
pub struct Builder {
    name: Option<String>,
}

impl Builder {
    /// Creates a new builder.
    pub fn new() -> Self {
        Builder { name: None }
    }

    /// Names the thread (shows up in model failure traces).
    pub fn name(mut self, name: String) -> Self {
        self.name = Some(name);
        self
    }

    /// Spawn the thread. Inside a model execution the child becomes a
    /// model thread scheduled by the controller.
    pub fn spawn<F, T>(self, f: F) -> io::Result<JoinHandle<T>>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        let Some(req_tx) = req_tx_clone() else {
            let mut b = std::thread::Builder::new();
            if let Some(n) = &self.name {
                b = b.name(n.clone());
            }
            let h = b.spawn(f)?;
            return Ok(JoinHandle {
                inner: HandleInner::Std(h),
                _marker: PhantomData,
            });
        };
        let (resp_tx, resp_rx) = std::sync::mpsc::channel::<Resp>();
        let tid = match op(Op::Spawn {
            name: self.name.clone(),
            resp_tx,
        }) {
            Some(Resp::Val(v)) => v as usize,
            Some(_) => unreachable!("spawn response"),
            // Raced with execution teardown between the ctx lookup and
            // the op; fall back to a plain thread.
            None => {
                let h = std::thread::Builder::new().spawn(f)?;
                return Ok(JoinHandle {
                    inner: HandleInner::Std(h),
                    _marker: PhantomData,
                });
            }
        };
        let slot: ResultSlot<T> = Arc::new(std::sync::Mutex::new(None));
        let slot2 = slot.clone();
        let ctx = ClientCtx {
            tid,
            req_tx: req_tx.clone(),
            resp_rx,
        };
        let mut b = std::thread::Builder::new();
        if let Some(n) = &self.name {
            b = b.name(n.clone());
        }
        match b.spawn(move || {
            run_model_thread(ctx, f, move |r| {
                *slot2.lock().unwrap_or_else(PoisonError::into_inner) = Some(r);
            })
        }) {
            Ok(real) => Ok(JoinHandle {
                inner: HandleInner::Model { tid, real, slot },
                _marker: PhantomData,
            }),
            Err(e) => {
                // The controller already registered the child; report
                // it dead so the execution can fail cleanly.
                let _ = req_tx.send(Msg::Done {
                    tid,
                    panic: Some(format!("os thread spawn failed: {e}")),
                });
                Err(e)
            }
        }
    }
}

/// Model-checked drop-in for `std::thread::spawn`.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    Builder::new().spawn(f).expect("failed to spawn thread")
}
