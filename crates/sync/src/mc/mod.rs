//! Exhaustive-schedule concurrency model checker (loom-style, std-only).
//!
//! [`Checker::explore`] runs a closure under every thread interleaving
//! reachable within a preemption bound, with a C11-style
//! release/acquire store-buffer memory model: relaxed loads may return
//! any coherence-allowed (stale) store, acquire loads synchronize with
//! release stores, acquire fences upgrade prior relaxed loads, release
//! fences tag subsequent relaxed stores, and RMWs continue release
//! sequences. Condition variables have *exact* waiter semantics (no
//! spurious wakeups), so lost-wakeup bugs surface as model deadlocks.
//!
//! # Documented limits
//!
//! - **SeqCst is modeled as AcqRel.** There is no single total order
//!   over SeqCst accesses beyond per-location coherence, so algorithms
//!   that need it (Dekker, store-buffering) cannot be proven here —
//!   the litmus tests demonstrate the weak outcome is explored.
//! - **Modification order = append order** of the explored schedule.
//! - **Strong CAS only**: spurious `compare_exchange_weak` failures
//!   are not explored.
//! - **Non-atomic data races are out of scope** (Miri covers UB); the
//!   model schedules facade operations only.
//! - **State hashing** can prune a distinct state on a 64-bit hash
//!   collision; mutant fixtures in CI gate against the checker itself
//!   going blind.
//!
//! Exploration is process-global-exclusive: a static lock serializes
//! concurrent `explore` calls (model state for shared statics would
//! otherwise interleave between controllers).

mod clock;
mod exec;
pub mod shim;

pub use exec::{Checker, Failure, FailureKind, Outcome};

use std::sync::{Mutex, Once, PoisonError};

static EXPLORE_LOCK: Mutex<()> = Mutex::new(());
static PANIC_FILTER: Once = Once::new();

/// Install (once, process-wide) a panic-hook filter that silences the
/// expected panics of model threads during exploration; all other
/// threads keep the previous hook's behavior.
fn install_panic_filter() {
    PANIC_FILTER.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !shim::in_model_thread() {
                prev(info);
            }
        }));
    });
}

impl Checker {
    /// Explore every schedule of `f` within the configured bounds.
    ///
    /// `f` runs once per execution as model thread 0; facade
    /// primitives used inside (including by real protocol code it
    /// calls) become controller-scheduled ops. All state asserted on
    /// must be constructed inside the closure or reachable from shim
    /// statics (whose fallback values double as the per-execution
    /// initial state).
    pub fn explore<F>(&self, name: &str, f: F) -> Outcome
    where
        F: Fn() + Sync,
    {
        let _guard = EXPLORE_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        install_panic_filter();
        exec::explore_impl(self, name, &f)
    }
}

#[cfg(test)]
mod tests {
    use super::shim::{fence, spawn, AtomicBool, AtomicU64, Condvar, Mutex, Ordering};
    use super::Checker;
    use std::sync::Arc;

    fn small() -> Checker {
        Checker {
            preemption_bound: 3,
            ..Checker::default()
        }
    }

    /// Message passing with release/acquire must never observe stale
    /// data; the checker proves it across every schedule.
    #[test]
    fn message_passing_release_acquire_passes() {
        let out = small().explore("mp-rel-acq", || {
            let data = Arc::new(AtomicU64::new(0));
            let flag = Arc::new(AtomicBool::new(false));
            let (d2, f2) = (data.clone(), flag.clone());
            let w = spawn(move || {
                d2.store(42, Ordering::Relaxed);
                f2.store(true, Ordering::Release);
            });
            if flag.load(Ordering::Acquire) {
                assert_eq!(data.load(Ordering::Relaxed), 42, "stale data past acquire");
            }
            w.join().unwrap();
        });
        assert!(out.passed(), "{}", out.summary());
        assert!(
            out.complete,
            "exploration should exhaust: {}",
            out.summary()
        );
    }

    /// Same protocol with a relaxed flag: the store buffer must exhibit
    /// the stale read, i.e. the checker catches the missing release.
    #[test]
    fn message_passing_relaxed_flag_caught() {
        let out = small().explore("mp-relaxed", || {
            let data = Arc::new(AtomicU64::new(0));
            let flag = Arc::new(AtomicBool::new(false));
            let (d2, f2) = (data.clone(), flag.clone());
            let w = spawn(move || {
                d2.store(42, Ordering::Relaxed);
                f2.store(true, Ordering::Relaxed); // BUG: no release
            });
            if flag.load(Ordering::Relaxed) {
                assert_eq!(data.load(Ordering::Relaxed), 42, "stale data read");
            }
            w.join().unwrap();
        });
        assert!(!out.passed(), "relaxed message passing must be caught");
    }

    /// An acquire *fence* after a relaxed load upgrades it — the
    /// seqlock reader's revalidation pattern.
    #[test]
    fn acquire_fence_upgrades_relaxed_load() {
        let out = small().explore("acq-fence", || {
            let data = Arc::new(AtomicU64::new(0));
            let flag = Arc::new(AtomicBool::new(false));
            let (d2, f2) = (data.clone(), flag.clone());
            let w = spawn(move || {
                d2.store(7, Ordering::Relaxed);
                f2.store(true, Ordering::Release);
            });
            if flag.load(Ordering::Relaxed) {
                fence(Ordering::Acquire);
                assert_eq!(data.load(Ordering::Relaxed), 7, "fence failed to upgrade");
            }
            w.join().unwrap();
        });
        assert!(out.passed(), "{}", out.summary());
    }

    /// Store buffering: with SeqCst modeled as AcqRel the weak outcome
    /// (both threads read 0) must be *reachable* — this documents the
    /// model's SeqCst limitation.
    #[test]
    fn store_buffering_weak_outcome_is_explored() {
        let out = small().explore("sb-weak", || {
            let x = Arc::new(AtomicU64::new(0));
            let y = Arc::new(AtomicU64::new(0));
            let (x2, y2) = (x.clone(), y.clone());
            let t = spawn(move || {
                x2.store(1, Ordering::SeqCst);
                y2.load(Ordering::SeqCst)
            });
            x.load(Ordering::SeqCst); // keep op counts symmetric
            y.store(1, Ordering::SeqCst);
            let r_main = x.load(Ordering::SeqCst);
            let r_child = t.join().unwrap();
            // Under real SeqCst r_main == 0 && r_child == 0 is
            // impossible; our model reaches it, so this assert fails.
            assert!(r_main == 1 || r_child == 1, "both zero");
        });
        assert!(
            !out.passed(),
            "store-buffering weak outcome should be reachable (SeqCst≈AcqRel)"
        );
    }

    /// Mutual exclusion: counter increments under a mutex never lose
    /// updates, across all schedules.
    #[test]
    fn mutex_counter_passes() {
        let out = small().explore("mutex-counter", || {
            let n = Arc::new(Mutex::new(0u64));
            let n2 = n.clone();
            let t = spawn(move || {
                for _ in 0..2 {
                    *n2.lock().unwrap() += 1;
                }
            });
            for _ in 0..2 {
                *n.lock().unwrap() += 1;
            }
            t.join().unwrap();
            assert_eq!(*n.lock().unwrap(), 4);
        });
        assert!(out.passed(), "{}", out.summary());
        assert!(out.complete, "{}", out.summary());
    }

    /// Unsynchronized load-then-store increments race: the lost update
    /// must be found (needs one preemption).
    #[test]
    fn lost_update_caught() {
        let out = small().explore("lost-update", || {
            let n = Arc::new(AtomicU64::new(0));
            let n2 = n.clone();
            let t = spawn(move || {
                let v = n2.load(Ordering::Relaxed);
                n2.store(v + 1, Ordering::Relaxed);
            });
            let v = n.load(Ordering::Relaxed);
            n.store(v + 1, Ordering::Relaxed);
            t.join().unwrap();
            assert_eq!(n.load(Ordering::Relaxed), 2, "lost update");
        });
        assert!(!out.passed(), "lost update must be caught");
    }

    /// Correct condvar handshake: flag set + notify under the mutex.
    /// Passes exhaustively (no lost wakeup possible).
    #[test]
    fn condvar_handshake_passes() {
        let out = small().explore("cv-handshake", || {
            let m = Arc::new(Mutex::new(false));
            let cv = Arc::new(Condvar::new());
            let (m2, cv2) = (m.clone(), cv.clone());
            let t = spawn(move || {
                let mut done = m2.lock().unwrap();
                while !*done {
                    done = cv2.wait(done).unwrap();
                }
            });
            {
                let mut done = m.lock().unwrap();
                *done = true;
                cv.notify_all();
            }
            t.join().unwrap();
        });
        assert!(out.passed(), "{}", out.summary());
        assert!(out.complete, "{}", out.summary());
    }

    /// The PR-4 lost-wakeup class: the waiter checks a flag that is
    /// set *outside* the mutex, so set+notify can slot between its
    /// check and its wait. With exact condvar semantics this is a
    /// deadlock the checker must find.
    #[test]
    fn condvar_lost_wakeup_caught() {
        let out = small().explore("cv-lost-wakeup", || {
            let m = Arc::new(Mutex::new(()));
            let cv = Arc::new(Condvar::new());
            let stop = Arc::new(AtomicBool::new(false));
            let (m2, cv2, stop2) = (m.clone(), cv.clone(), stop.clone());
            let t = spawn(move || {
                let mut g = m2.lock().unwrap();
                while !stop2.load(Ordering::Relaxed) {
                    g = cv2.wait(g).unwrap(); // BUG: flag not under mutex
                }
            });
            stop.store(true, Ordering::Relaxed);
            cv.notify_all();
            t.join().unwrap();
        });
        assert!(!out.passed(), "lost wakeup must be caught");
        assert!(
            matches!(
                out.failure.as_ref().map(|f| &f.kind),
                Some(super::FailureKind::Deadlock { .. })
            ),
            "expected deadlock, got: {}",
            out.summary()
        );
    }

    /// Join establishes happens-before: after join, even relaxed loads
    /// see the child's writes.
    #[test]
    fn join_happens_before_passes() {
        let out = small().explore("join-hb", || {
            let d = Arc::new(AtomicU64::new(0));
            let d2 = d.clone();
            let t = spawn(move || d2.store(9, Ordering::Relaxed));
            t.join().unwrap();
            assert_eq!(d.load(Ordering::Relaxed), 9, "join lost the write");
        });
        assert!(out.passed(), "{}", out.summary());
        assert!(out.complete, "{}", out.summary());
    }

    /// Shims outside an exploration behave exactly like std.
    #[test]
    fn fallback_outside_exploration() {
        let a = AtomicU64::new(5);
        assert_eq!(a.fetch_add(2, Ordering::Relaxed), 5);
        assert_eq!(a.load(Ordering::Acquire), 7);
        assert_eq!(
            a.compare_exchange(7, 1, Ordering::AcqRel, Ordering::Relaxed),
            Ok(7)
        );
        let m = Mutex::new(3);
        *m.lock().unwrap() += 1;
        assert_eq!(*m.lock().unwrap(), 4);
        let h = spawn(|| 11u32);
        assert_eq!(h.join().unwrap(), 11);
        fence(Ordering::SeqCst);
    }
}
