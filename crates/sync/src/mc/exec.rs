//! Controller side of the model checker: per-execution state, the
//! C11-style release/acquire store-buffer memory model, and the
//! bounded-preemption DFS over thread schedules.
//!
//! # Memory model
//!
//! Each atomic location keeps its full modification history as a vector
//! of [`StoreRec`]s. A store carries two vector clocks: `event` (the
//! writer's clock at the store — used for coherence/visibility) and
//! `sync` (the release clock an acquire load joins — empty for relaxed
//! stores unless a release fence or an RMW release-sequence carries one
//! forward). A load may read any store that is not superseded: store
//! `j` supersedes store `i < j` for reader `T` when `j.event ≤
//! T.clock` (the reader already knows a newer write happened-before
//! its current state). A per-thread *floor* index per location
//! enforces per-location coherence (a thread never re-reads an older
//! store than one it has already observed). RMWs read the latest store
//! in modification order and append immediately after it.
//!
//! Modification order is identified with execution (append) order, and
//! `SeqCst` is modeled as `AcqRel`: there is **no** single total order
//! over SeqCst operations beyond per-location coherence. The model is
//! therefore sound for release/acquire reasoning but cannot prove
//! SeqCst-dependent algorithms (e.g. Dekker/store-buffering) correct —
//! see the litmus tests, which demonstrate the weak behavior is
//! explored.
//!
//! # Scheduling
//!
//! The controller serializes model threads: exactly one thread runs
//! real code at a time (plus just-spawned threads racing to their
//! first shim operation). At each step every live thread is either
//! waiting for a grant, blocked, or finished; the controller picks the
//! next thread to step with a DFS decision. Context switches away from
//! a still-enabled thread are *preemptions* and bounded by
//! [`Checker::preemption_bound`] (CHESS-style iterative context
//! bounding); switches away from a blocked/finished thread are free.
//! Load-value choices and `notify_one` victim choices are additional
//! decision points, always fully enumerated. Fully-explored scheduling
//! states are memoized by hash so structurally identical states
//! reached along different prefixes are pruned.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::mpsc::{Receiver, Sender};
use std::time::Duration;

use super::clock::VClock;
use super::shim;

/// Memory orderings as seen by the model (mapped from `std`'s enum).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub(crate) enum MemOrd {
    /// `Ordering::Relaxed`
    Relaxed,
    /// `Ordering::Acquire`
    Acquire,
    /// `Ordering::Release`
    Release,
    /// `Ordering::AcqRel`
    AcqRel,
    /// `Ordering::SeqCst` — modeled as `AcqRel` (documented limitation).
    SeqCst,
}

impl MemOrd {
    pub(crate) fn from_std(o: std::sync::atomic::Ordering) -> Self {
        use std::sync::atomic::Ordering as O;
        match o {
            O::Relaxed => MemOrd::Relaxed,
            O::Acquire => MemOrd::Acquire,
            O::Release => MemOrd::Release,
            O::AcqRel => MemOrd::AcqRel,
            O::SeqCst => MemOrd::SeqCst,
            _ => MemOrd::SeqCst,
        }
    }

    fn acq(self) -> bool {
        matches!(self, MemOrd::Acquire | MemOrd::AcqRel | MemOrd::SeqCst)
    }

    fn rel(self) -> bool {
        matches!(self, MemOrd::Release | MemOrd::AcqRel | MemOrd::SeqCst)
    }
}

/// Read-modify-write flavors. Arithmetic is carried out in the `u64`
/// domain; narrower atomics truncate on the way out (shim-side), which
/// is exact for every protocol in this workspace (no narrow-width
/// wraparound is relied upon).
#[derive(Clone, Copy, Debug)]
pub(crate) enum Rmw {
    Add(u64),
    Sub(u64),
    And(u64),
    Or(u64),
    Max(u64),
    Min(u64),
    Swap(u64),
    Cas { expect: u64, new: u64, fail: MemOrd },
}

/// One shim operation, as requested by a model thread. `loc`/`lock`/
/// `cv` keys are the shim object's address; the controller interns
/// them into stable ids at execution time (never at receipt time, so
/// interning order stays deterministic under replay).
pub(crate) enum Op {
    Load {
        loc: usize,
        init: u64,
        ord: MemOrd,
    },
    Store {
        loc: usize,
        init: u64,
        ord: MemOrd,
        val: u64,
    },
    Rmw {
        loc: usize,
        init: u64,
        ord: MemOrd,
        rmw: Rmw,
    },
    Fence {
        ord: MemOrd,
    },
    Lock {
        lock: usize,
    },
    Unlock {
        lock: usize,
    },
    CvWait {
        cv: usize,
        lock: usize,
    },
    CvNotify {
        cv: usize,
        all: bool,
    },
    RwRead {
        lock: usize,
    },
    RwWrite {
        lock: usize,
    },
    RwUnlockRead {
        lock: usize,
    },
    RwUnlockWrite {
        lock: usize,
    },
    Spawn {
        name: Option<String>,
        resp_tx: Sender<Resp>,
    },
    Join {
        target: usize,
    },
    /// Controller-internal: a woken condvar waiter re-acquiring its
    /// mutex. `lock` is a *stable id*, not an address.
    Reacquire {
        lock: usize,
    },
}

impl Op {
    fn kind_code(&self) -> u8 {
        match self {
            Op::Load { .. } => 1,
            Op::Store { .. } => 2,
            Op::Rmw { .. } => 3,
            Op::Fence { .. } => 4,
            Op::Lock { .. } => 5,
            Op::Unlock { .. } => 6,
            Op::CvWait { .. } => 7,
            Op::CvNotify { .. } => 8,
            Op::RwRead { .. } => 9,
            Op::RwWrite { .. } => 10,
            Op::RwUnlockRead { .. } => 11,
            Op::RwUnlockWrite { .. } => 12,
            Op::Spawn { .. } => 13,
            Op::Join { .. } => 14,
            Op::Reacquire { .. } => 15,
        }
    }
}

/// Client → controller messages.
pub(crate) enum Msg {
    Req { tid: usize, op: Op },
    Done { tid: usize, panic: Option<String> },
}

/// Controller → client responses.
pub(crate) enum Resp {
    /// Proceed (stores, fences, lock ops, joins, notifies).
    Go,
    /// A loaded value, or a spawned child's tid.
    Val(u64),
    /// RMW result: previous value and (for CAS) success.
    RmwDone { old: u64, ok: bool },
    /// The execution is being torn down; unwind via `AbortUnwind`.
    Abort,
}

/// Exhaustive-schedule explorer with CHESS-style bounded preemption.
#[derive(Clone, Debug)]
pub struct Checker {
    /// Maximum number of preemptive context switches per execution
    /// (switches away from a blocked thread are free).
    pub preemption_bound: usize,
    /// Hard cap on explored executions; exceeding it yields
    /// `complete: false` without a failure.
    pub max_executions: u64,
    /// Per-execution operation cap; exceeding it is reported as
    /// [`FailureKind::OpLimit`] (usually a livelock/spin loop).
    pub max_ops_per_exec: usize,
    /// Maximum live model threads per execution.
    pub max_threads: usize,
}

impl Default for Checker {
    fn default() -> Self {
        Checker {
            preemption_bound: 3,
            max_executions: 500_000,
            max_ops_per_exec: 20_000,
            max_threads: 8,
        }
    }
}

/// What the explorer found.
#[derive(Debug)]
pub struct Outcome {
    /// Scenario name, as passed to `explore`.
    pub name: String,
    /// Number of complete executions run.
    pub executions: u64,
    /// Scheduling subtrees cut by the seen-state memo.
    pub pruned: u64,
    /// True if the DFS exhausted every schedule within the bounds.
    pub complete: bool,
    /// The first failing execution, if any.
    pub failure: Option<Failure>,
}

impl Outcome {
    /// True when exploration finished with no failing execution.
    pub fn passed(&self) -> bool {
        self.failure.is_none()
    }

    /// One-paragraph human summary (used by drivers and CI output).
    pub fn summary(&self) -> String {
        match &self.failure {
            None => format!(
                "{}: PASS — {} executions explored ({} pruned, {})",
                self.name,
                self.executions,
                self.pruned,
                if self.complete {
                    "exhaustive"
                } else {
                    "bounded by execution cap"
                },
            ),
            Some(f) => {
                let mut s = format!(
                    "{}: FAIL after {} executions — {}\n  last {} ops of failing schedule:\n",
                    self.name,
                    self.executions,
                    f.describe(),
                    f.trace.len().min(40),
                );
                let skip = f.trace.len().saturating_sub(40);
                for line in f.trace.iter().skip(skip) {
                    s.push_str("    ");
                    s.push_str(line);
                    s.push('\n');
                }
                s
            }
        }
    }
}

/// A failing execution: the failure class plus the trailing op log of
/// the schedule that produced it.
#[derive(Debug)]
pub struct Failure {
    /// Failure class.
    pub kind: FailureKind,
    /// Op-by-op log of the failing schedule (bounded length).
    pub trace: Vec<String>,
}

impl Failure {
    fn describe(&self) -> String {
        match &self.kind {
            FailureKind::Panic { thread, message } => {
                format!("thread '{thread}' panicked: {message}")
            }
            FailureKind::Deadlock { blocked } => {
                format!("deadlock; blocked threads: [{}]", blocked.join(", "))
            }
            FailureKind::OpLimit => "per-execution op limit exceeded (livelock?)".into(),
            FailureKind::ThreadLimit => "model thread limit exceeded".into(),
            FailureKind::Stalled => "a model thread stopped responding (internal error)".into(),
        }
    }
}

/// Failure classes the explorer can report.
#[derive(Debug)]
pub enum FailureKind {
    /// A model thread panicked (assertion failure in the driver or in
    /// the checked protocol itself).
    Panic {
        /// Name of the panicking thread.
        thread: String,
        /// Panic payload, if it was a string.
        message: String,
    },
    /// Every live thread is blocked and nothing can make progress —
    /// this is how lost wakeups surface.
    Deadlock {
        /// Human description of each blocked thread.
        blocked: Vec<String>,
    },
    /// The execution exceeded `max_ops_per_exec`.
    OpLimit,
    /// The execution exceeded `max_threads`.
    ThreadLimit,
    /// A model thread neither requested an op nor finished (bug in the
    /// checker or a thread blocked outside the facade).
    Stalled,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum NodeKind {
    Sched,
    Value,
    /// A scheduling point whose state was already fully explored with
    /// at least the current preemption budget; recorded in the path so
    /// replays stay aligned without re-consulting the (growing) memo.
    Pruned,
}

struct Node {
    kind: NodeKind,
    taken: usize,
    options: usize,
    state_hash: u64,
    budget_left: usize,
}

/// DFS-by-replay bookkeeping shared across the executions of one
/// exploration.
struct Dfs {
    path: Vec<Node>,
    cursor: usize,
    /// state hash → largest preemption budget whose subtree from that
    /// state has been fully explored.
    closed: HashMap<u64, usize>,
    pruned: u64,
}

impl Dfs {
    fn new() -> Self {
        Dfs {
            path: Vec::new(),
            cursor: 0,
            closed: HashMap::new(),
            pruned: 0,
        }
    }

    fn replaying(&self) -> bool {
        self.cursor < self.path.len()
    }

    /// A value decision (load candidate, notify victim): always fully
    /// enumerated, never pruned.
    fn next_value(&mut self, options: usize) -> usize {
        if self.replaying() {
            let n = &self.path[self.cursor];
            assert!(
                n.kind == NodeKind::Value && n.options == options,
                "nondeterministic replay at value decision {} ({:?}/{} vs Value/{})",
                self.cursor,
                n.kind,
                n.options,
                options
            );
            self.cursor += 1;
            n.taken
        } else {
            self.path.push(Node {
                kind: NodeKind::Value,
                taken: 0,
                options,
                state_hash: 0,
                budget_left: 0,
            });
            self.cursor += 1;
            0
        }
    }

    /// A scheduling decision among `options` enabled threads.
    /// `state_hash` is computed lazily (only when extending fresh).
    fn next_sched(
        &mut self,
        options: usize,
        budget_left: usize,
        state_hash: impl FnOnce() -> u64,
    ) -> usize {
        if self.replaying() {
            let n = &self.path[self.cursor];
            assert!(
                matches!(n.kind, NodeKind::Sched | NodeKind::Pruned)
                    && (n.kind == NodeKind::Pruned || n.options == options),
                "nondeterministic replay at sched decision {} ({:?}/{} vs Sched/{})",
                self.cursor,
                n.kind,
                n.options,
                options
            );
            self.cursor += 1;
            n.taken
        } else {
            let h = state_hash();
            let kind = if self.closed.get(&h).is_some_and(|b| *b >= budget_left) {
                self.pruned += 1;
                NodeKind::Pruned
            } else {
                NodeKind::Sched
            };
            let options = if kind == NodeKind::Pruned { 1 } else { options };
            self.path.push(Node {
                kind,
                taken: 0,
                options,
                state_hash: h,
                budget_left,
            });
            self.cursor += 1;
            0
        }
    }

    /// Backtrack to the deepest decision with an untaken alternative.
    /// Returns false when the whole tree is exhausted. Fully-explored
    /// `Sched` nodes close their state hash in the memo on the way out.
    fn advance(&mut self) -> bool {
        while let Some(last) = self.path.last_mut() {
            if last.taken + 1 < last.options {
                last.taken += 1;
                self.cursor = 0;
                return true;
            }
            if last.kind == NodeKind::Sched {
                let e = self.closed.entry(last.state_hash).or_insert(0);
                if last.budget_left > *e {
                    *e = last.budget_left;
                }
            }
            self.path.pop();
        }
        false
    }
}

#[derive(Debug)]
enum Status {
    /// Executing real code; the controller is waiting for its next
    /// message.
    Running,
    /// Has requested an op and is parked awaiting the grant.
    Pending(OpSlot),
    /// Parked in a condvar wait (released its mutex, no response sent
    /// yet). `lock` is the stable id to re-acquire on wakeup.
    InCvWait {
        cv: usize,
        lock: usize,
    },
    Done,
}

/// Newtype so `Status` can derive Debug without `Op: Debug` (Op holds
/// a channel sender).
struct OpSlot(Op);

impl std::fmt::Debug for OpSlot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "op#{}", self.0.kind_code())
    }
}

struct Thr {
    name: String,
    clock: VClock,
    /// Union of the sync clocks of every store this thread has read —
    /// an acquire *fence* retroactively upgrades prior relaxed loads
    /// by joining this.
    racq: VClock,
    /// Clock at the last release fence, if any: subsequent relaxed
    /// stores carry it as their sync clock.
    rel_fence: Option<VClock>,
    status: Status,
    /// Rolling hash of observed load values (distinguishes states
    /// whose divergence lives in thread-local control flow).
    obs: u64,
    final_clock: VClock,
    panic: Option<String>,
    resp_tx: Sender<Resp>,
}

struct StoreRec {
    val: u64,
    event: VClock,
    sync: VClock,
}

struct Loc {
    stores: Vec<StoreRec>,
    /// Per-thread coherence floor: index of the newest store each
    /// thread has observed (it may never read older).
    floor: Vec<usize>,
}

struct LockSt {
    owner: Option<usize>,
    clock: VClock,
}

struct CvSt {
    waiters: Vec<usize>,
}

struct RwSt {
    readers: Vec<usize>,
    writer: Option<usize>,
    rclock: VClock,
    wclock: VClock,
}

fn mix(h: u64, a: u64, b: u64) -> u64 {
    let mut x = h ^ a.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ b.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 30;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

const LOG_CAP: usize = 600;
const RECV_TIMEOUT: Duration = Duration::from_secs(60);

struct Exec<'c> {
    cfg: &'c Checker,
    threads: Vec<Thr>,
    req_rx: Receiver<Msg>,
    locs: Vec<Loc>,
    loc_ids: HashMap<usize, usize>,
    locks: Vec<LockSt>,
    lock_ids: HashMap<usize, usize>,
    cvs: Vec<CvSt>,
    cv_ids: HashMap<usize, usize>,
    rws: Vec<RwSt>,
    rw_ids: HashMap<usize, usize>,
    ops: usize,
    preemptions: usize,
    last_run: usize,
    log: Vec<String>,
}

impl<'c> Exec<'c> {
    fn new(cfg: &'c Checker, req_rx: Receiver<Msg>, t0_resp: Sender<Resp>) -> Self {
        Exec {
            cfg,
            threads: vec![Thr {
                name: "main".into(),
                clock: VClock::new(),
                racq: VClock::new(),
                rel_fence: None,
                status: Status::Running,
                obs: 0,
                final_clock: VClock::new(),
                panic: None,
                resp_tx: t0_resp,
            }],
            req_rx,
            locs: Vec::new(),
            loc_ids: HashMap::new(),
            locks: Vec::new(),
            lock_ids: HashMap::new(),
            cvs: Vec::new(),
            cv_ids: HashMap::new(),
            rws: Vec::new(),
            rw_ids: HashMap::new(),
            ops: 0,
            preemptions: 0,
            last_run: 0,
            log: Vec::new(),
        }
    }

    fn log_op(&mut self, t: usize, desc: String) {
        if self.log.len() >= LOG_CAP {
            self.log.drain(..LOG_CAP / 4);
        }
        self.log.push(format!("{}: {desc}", self.threads[t].name));
    }

    fn fail(&mut self, kind: FailureKind) -> Failure {
        Failure {
            kind,
            trace: std::mem::take(&mut self.log),
        }
    }

    fn respond(&self, t: usize, r: Resp) {
        let _ = self.threads[t].resp_tx.send(r);
    }

    fn finish_thread(&mut self, tid: usize, panic: Option<String>) {
        let thr = &mut self.threads[tid];
        thr.final_clock = thr.clock.clone();
        thr.panic = panic;
        thr.status = Status::Done;
    }

    fn loc_id(&mut self, addr: usize, init: u64) -> usize {
        if let Some(&id) = self.loc_ids.get(&addr) {
            return id;
        }
        let id = self.locs.len();
        self.loc_ids.insert(addr, id);
        self.locs.push(Loc {
            stores: vec![StoreRec {
                val: init,
                event: VClock::new(),
                sync: VClock::new(),
            }],
            floor: Vec::new(),
        });
        id
    }

    fn lock_id(&mut self, addr: usize) -> usize {
        if let Some(&id) = self.lock_ids.get(&addr) {
            return id;
        }
        let id = self.locks.len();
        self.lock_ids.insert(addr, id);
        self.locks.push(LockSt {
            owner: None,
            clock: VClock::new(),
        });
        id
    }

    fn cv_id(&mut self, addr: usize) -> usize {
        if let Some(&id) = self.cv_ids.get(&addr) {
            return id;
        }
        let id = self.cvs.len();
        self.cv_ids.insert(addr, id);
        self.cvs.push(CvSt {
            waiters: Vec::new(),
        });
        id
    }

    fn rw_id(&mut self, addr: usize) -> usize {
        if let Some(&id) = self.rw_ids.get(&addr) {
            return id;
        }
        let id = self.rws.len();
        self.rw_ids.insert(addr, id);
        self.rws.push(RwSt {
            readers: Vec::new(),
            writer: None,
            rclock: VClock::new(),
            wclock: VClock::new(),
        });
        id
    }

    /// Enabledness of a pending op given current model state. Ops on
    /// never-interned locks are trivially enabled (the lock is free).
    fn op_enabled(&self, op: &Op) -> bool {
        match op {
            Op::Lock { lock } => self
                .lock_ids
                .get(lock)
                .is_none_or(|&l| self.locks[l].owner.is_none()),
            Op::Reacquire { lock } => self.locks[*lock].owner.is_none(),
            Op::Join { target } => matches!(self.threads[*target].status, Status::Done),
            Op::RwRead { lock } => self
                .rw_ids
                .get(lock)
                .is_none_or(|&l| self.rws[l].writer.is_none()),
            Op::RwWrite { lock } => self
                .rw_ids
                .get(lock)
                .is_none_or(|&l| self.rws[l].writer.is_none() && self.rws[l].readers.is_empty()),
            _ => true,
        }
    }

    fn enabled_threads(&self) -> Vec<usize> {
        self.threads
            .iter()
            .enumerate()
            .filter(|(_, thr)| match &thr.status {
                Status::Pending(op) => self.op_enabled(&op.0),
                _ => false,
            })
            .map(|(t, _)| t)
            .collect()
    }

    fn hash_op(&self, op: &Op, h: &mut DefaultHasher) {
        op.kind_code().hash(h);
        let map_loc = |ids: &HashMap<usize, usize>, a: &usize| -> u64 {
            ids.get(a).map(|&i| i as u64).unwrap_or(u64::MAX)
        };
        match op {
            Op::Load { loc, ord, .. } => {
                map_loc(&self.loc_ids, loc).hash(h);
                ord.hash(h);
            }
            Op::Store { loc, ord, val, .. } => {
                map_loc(&self.loc_ids, loc).hash(h);
                ord.hash(h);
                val.hash(h);
            }
            Op::Rmw { loc, ord, rmw, .. } => {
                map_loc(&self.loc_ids, loc).hash(h);
                ord.hash(h);
                // Discriminant + operand is enough to distinguish RMWs.
                std::mem::discriminant(rmw).hash(h);
                match *rmw {
                    Rmw::Add(v)
                    | Rmw::Sub(v)
                    | Rmw::And(v)
                    | Rmw::Or(v)
                    | Rmw::Max(v)
                    | Rmw::Min(v)
                    | Rmw::Swap(v) => v.hash(h),
                    Rmw::Cas { expect, new, fail } => {
                        expect.hash(h);
                        new.hash(h);
                        fail.hash(h);
                    }
                }
            }
            Op::Fence { ord } => ord.hash(h),
            Op::Lock { lock } | Op::Unlock { lock } => map_loc(&self.lock_ids, lock).hash(h),
            Op::Reacquire { lock } => (*lock as u64).hash(h),
            Op::CvWait { cv, lock } => {
                map_loc(&self.cv_ids, cv).hash(h);
                map_loc(&self.lock_ids, lock).hash(h);
            }
            Op::CvNotify { cv, all } => {
                map_loc(&self.cv_ids, cv).hash(h);
                all.hash(h);
            }
            Op::RwRead { lock }
            | Op::RwWrite { lock }
            | Op::RwUnlockRead { lock }
            | Op::RwUnlockWrite { lock } => map_loc(&self.rw_ids, lock).hash(h),
            Op::Spawn { name, .. } => name.hash(h),
            Op::Join { target } => target.hash(h),
        }
    }

    /// Hash of the full scheduling-relevant model state. Used only for
    /// memoized pruning; a collision can (unsoundly) prune a distinct
    /// state, which is the standard state-hashing trade-off and is why
    /// mutant fixtures gate the checker itself in CI.
    fn state_hash(&self) -> u64 {
        let mut h = DefaultHasher::new();
        self.last_run.hash(&mut h);
        for thr in &self.threads {
            match &thr.status {
                Status::Running => 0u8.hash(&mut h),
                Status::Pending(op) => {
                    1u8.hash(&mut h);
                    self.hash_op(&op.0, &mut h);
                }
                Status::InCvWait { cv, lock } => {
                    2u8.hash(&mut h);
                    cv.hash(&mut h);
                    lock.hash(&mut h);
                }
                Status::Done => 3u8.hash(&mut h),
            }
            thr.clock.hash(&mut h);
            thr.racq.hash(&mut h);
            thr.rel_fence.hash(&mut h);
            thr.obs.hash(&mut h);
        }
        for loc in &self.locs {
            loc.stores.len().hash(&mut h);
            for s in &loc.stores {
                s.val.hash(&mut h);
                s.event.hash(&mut h);
                s.sync.hash(&mut h);
            }
            loc.floor.hash(&mut h);
        }
        for l in &self.locks {
            l.owner.hash(&mut h);
            l.clock.hash(&mut h);
        }
        for cv in &self.cvs {
            cv.waiters.hash(&mut h);
        }
        for rw in &self.rws {
            rw.readers.hash(&mut h);
            rw.writer.hash(&mut h);
            rw.rclock.hash(&mut h);
            rw.wclock.hash(&mut h);
        }
        h.finish()
    }

    /// Read one store of location `lid` for thread `t`, branching the
    /// DFS over every coherence-allowed candidate.
    fn read(&mut self, t: usize, lid: usize, ord: MemOrd, dfs: &mut Dfs) -> u64 {
        let thr_clock = self.threads[t].clock.clone();
        let loc = &mut self.locs[lid];
        if loc.floor.len() <= t {
            loc.floor.resize(t + 1, 0);
        }
        let start = loc.floor[t];
        let mut lo = start;
        for j in start..loc.stores.len() {
            if loc.stores[j].event.leq(&thr_clock) {
                lo = j;
            }
        }
        let n = loc.stores.len() - lo;
        let pick = if n == 1 { 0 } else { dfs.next_value(n) };
        let idx = lo + pick;
        loc.floor[t] = idx;
        let val = loc.stores[idx].val;
        let sync = loc.stores[idx].sync.clone();
        let thr = &mut self.threads[t];
        thr.racq.join(&sync);
        if ord.acq() {
            thr.clock.join(&sync);
        }
        thr.obs = mix(thr.obs, lid as u64, val);
        val
    }

    /// Append a store to `lid`'s modification order. `carry_sync`
    /// continues a release sequence through RMWs.
    fn write(&mut self, t: usize, lid: usize, ord: MemOrd, val: u64, carry_sync: Option<&VClock>) {
        let thr = &mut self.threads[t];
        thr.clock.tick(t);
        let mut sync = if ord.rel() {
            thr.clock.clone()
        } else if let Some(fc) = &thr.rel_fence {
            fc.clone()
        } else {
            VClock::new()
        };
        if let Some(cs) = carry_sync {
            sync.join(cs);
        }
        let event = thr.clock.clone();
        let loc = &mut self.locs[lid];
        loc.stores.push(StoreRec { val, event, sync });
        if loc.floor.len() <= t {
            loc.floor.resize(t + 1, 0);
        }
        loc.floor[t] = loc.stores.len() - 1;
    }

    /// RMW: reads the latest store in modification order, appends the
    /// new value right after it (atomicity), and continues the release
    /// sequence of the store it read.
    fn rmw(&mut self, t: usize, lid: usize, ord: MemOrd, rmw: Rmw) -> (u64, bool) {
        let idx = self.locs[lid].stores.len() - 1;
        let old = self.locs[lid].stores[idx].val;
        let read_sync = self.locs[lid].stores[idx].sync.clone();
        let (newv, writes, acq_ord) = match rmw {
            Rmw::Add(v) => (old.wrapping_add(v), true, ord),
            Rmw::Sub(v) => (old.wrapping_sub(v), true, ord),
            Rmw::And(v) => (old & v, true, ord),
            Rmw::Or(v) => (old | v, true, ord),
            Rmw::Max(v) => (old.max(v), true, ord),
            Rmw::Min(v) => (old.min(v), true, ord),
            Rmw::Swap(v) => (v, true, ord),
            Rmw::Cas { expect, new, fail } => {
                if old == expect {
                    (new, true, ord)
                } else {
                    (old, false, fail)
                }
            }
        };
        {
            let loc = &mut self.locs[lid];
            if loc.floor.len() <= t {
                loc.floor.resize(t + 1, 0);
            }
            loc.floor[t] = idx;
            let thr = &mut self.threads[t];
            thr.racq.join(&read_sync);
            if acq_ord.acq() {
                thr.clock.join(&read_sync);
            }
            thr.obs = mix(thr.obs, lid as u64, old);
        }
        if writes {
            self.write(t, lid, ord, newv, Some(&read_sync));
        }
        (old, writes || !matches!(rmw, Rmw::Cas { .. }))
    }

    /// Pick the thread to step next (the scheduling decision).
    fn pick_thread(&mut self, enabled: &[usize], dfs: &mut Dfs) -> usize {
        let budget_left = self.cfg.preemption_bound.saturating_sub(self.preemptions);
        let last_enabled = enabled.contains(&self.last_run);
        let opts: Vec<usize> = if last_enabled {
            if budget_left == 0 {
                vec![self.last_run]
            } else {
                std::iter::once(self.last_run)
                    .chain(enabled.iter().copied().filter(|&t| t != self.last_run))
                    .collect()
            }
        } else {
            enabled.to_vec()
        };
        let idx = if opts.len() == 1 {
            0
        } else {
            dfs.next_sched(opts.len(), budget_left, || self.state_hash())
        };
        let t = opts[idx];
        if last_enabled && t != self.last_run {
            self.preemptions += 1;
        }
        self.last_run = t;
        t
    }

    /// Execute thread `t`'s pending op, respond, and update its status.
    fn exec_op(&mut self, t: usize, dfs: &mut Dfs) -> Result<(), Failure> {
        self.ops += 1;
        let op = match std::mem::replace(&mut self.threads[t].status, Status::Running) {
            Status::Pending(OpSlot(op)) => op,
            other => unreachable!("exec_op on non-pending thread ({other:?})"),
        };
        match op {
            Op::Load { loc, init, ord } => {
                let lid = self.loc_id(loc, init);
                let val = self.read(t, lid, ord, dfs);
                self.log_op(t, format!("load a{lid} ({ord:?}) -> {val}"));
                self.respond(t, Resp::Val(val));
            }
            Op::Store {
                loc,
                init,
                ord,
                val,
            } => {
                let lid = self.loc_id(loc, init);
                self.write(t, lid, ord, val, None);
                self.log_op(t, format!("store a{lid} = {val} ({ord:?})"));
                self.respond(t, Resp::Go);
            }
            Op::Rmw {
                loc,
                init,
                ord,
                rmw,
            } => {
                let lid = self.loc_id(loc, init);
                let (old, ok) = self.rmw(t, lid, ord, rmw);
                self.log_op(
                    t,
                    format!("rmw a{lid} ({ord:?}) {rmw:?} -> old {old} ok {ok}"),
                );
                self.respond(t, Resp::RmwDone { old, ok });
            }
            Op::Fence { ord } => {
                let thr = &mut self.threads[t];
                thr.clock.tick(t);
                if ord.acq() {
                    let r = thr.racq.clone();
                    thr.clock.join(&r);
                }
                if ord.rel() {
                    thr.rel_fence = Some(thr.clock.clone());
                }
                self.log_op(t, format!("fence ({ord:?})"));
                self.respond(t, Resp::Go);
            }
            Op::Lock { lock } => {
                let lid = self.lock_id(lock);
                debug_assert!(self.locks[lid].owner.is_none());
                let thr = &mut self.threads[t];
                thr.clock.tick(t);
                thr.clock.join(&self.locks[lid].clock);
                self.locks[lid].owner = Some(t);
                self.log_op(t, format!("lock m{lid}"));
                self.respond(t, Resp::Go);
            }
            Op::Unlock { lock } => {
                let lid = self.lock_id(lock);
                let thr = &mut self.threads[t];
                thr.clock.tick(t);
                self.locks[lid].clock = thr.clock.clone();
                self.locks[lid].owner = None;
                self.log_op(t, format!("unlock m{lid}"));
                self.respond(t, Resp::Go);
            }
            Op::CvWait { cv, lock } => {
                let cvid = self.cv_id(cv);
                let lid = self.lock_id(lock);
                let thr = &mut self.threads[t];
                thr.clock.tick(t);
                self.locks[lid].clock = thr.clock.clone();
                self.locks[lid].owner = None;
                self.cvs[cvid].waiters.push(t);
                self.threads[t].status = Status::InCvWait {
                    cv: cvid,
                    lock: lid,
                };
                self.log_op(t, format!("cv-wait c{cvid} (released m{lid})"));
                // No response: the thread stays parked until notified
                // and re-granted the mutex.
            }
            Op::CvNotify { cv, all } => {
                let cvid = self.cv_id(cv);
                let nwait = self.cvs[cvid].waiters.len();
                let woken: Vec<usize> = if nwait == 0 {
                    Vec::new()
                } else if all {
                    std::mem::take(&mut self.cvs[cvid].waiters)
                } else {
                    let pick = if nwait == 1 { 0 } else { dfs.next_value(nwait) };
                    vec![self.cvs[cvid].waiters.remove(pick)]
                };
                for w in &woken {
                    let lid = match self.threads[*w].status {
                        Status::InCvWait { lock, .. } => lock,
                        ref other => unreachable!("woken thread not in cv-wait ({other:?})"),
                    };
                    self.threads[*w].status = Status::Pending(OpSlot(Op::Reacquire { lock: lid }));
                }
                self.threads[t].clock.tick(t);
                self.log_op(
                    t,
                    format!(
                        "cv-notify{} c{cvid} (woke {:?})",
                        if all { "-all" } else { "-one" },
                        woken
                    ),
                );
                self.respond(t, Resp::Go);
            }
            Op::Reacquire { lock: lid } => {
                debug_assert!(self.locks[lid].owner.is_none());
                let thr = &mut self.threads[t];
                thr.clock.tick(t);
                thr.clock.join(&self.locks[lid].clock);
                self.locks[lid].owner = Some(t);
                self.log_op(t, format!("cv-wake reacquire m{lid}"));
                self.respond(t, Resp::Go);
            }
            Op::RwRead { lock } => {
                let rid = self.rw_id(lock);
                let thr = &mut self.threads[t];
                thr.clock.tick(t);
                thr.clock.join(&self.rws[rid].wclock);
                self.rws[rid].readers.push(t);
                self.log_op(t, format!("rw-read r{rid}"));
                self.respond(t, Resp::Go);
            }
            Op::RwUnlockRead { lock } => {
                let rid = self.rw_id(lock);
                let thr = &mut self.threads[t];
                thr.clock.tick(t);
                let c = thr.clock.clone();
                self.rws[rid].rclock.join(&c);
                self.rws[rid].readers.retain(|&r| r != t);
                self.log_op(t, format!("rw-unread r{rid}"));
                self.respond(t, Resp::Go);
            }
            Op::RwWrite { lock } => {
                let rid = self.rw_id(lock);
                let thr = &mut self.threads[t];
                thr.clock.tick(t);
                thr.clock.join(&self.rws[rid].wclock);
                thr.clock.join(&self.rws[rid].rclock);
                self.rws[rid].writer = Some(t);
                self.log_op(t, format!("rw-write r{rid}"));
                self.respond(t, Resp::Go);
            }
            Op::RwUnlockWrite { lock } => {
                let rid = self.rw_id(lock);
                let thr = &mut self.threads[t];
                thr.clock.tick(t);
                self.rws[rid].wclock = thr.clock.clone();
                self.rws[rid].writer = None;
                self.log_op(t, format!("rw-unwrite r{rid}"));
                self.respond(t, Resp::Go);
            }
            Op::Spawn { name, resp_tx } => {
                if self.threads.len() >= self.cfg.max_threads {
                    self.abort_all();
                    return Err(self.fail(FailureKind::ThreadLimit));
                }
                let child = self.threads.len();
                let cname = name.unwrap_or_else(|| format!("t{child}"));
                let thr = &mut self.threads[t];
                thr.clock.tick(t);
                let cclock = thr.clock.clone();
                self.threads.push(Thr {
                    name: cname.clone(),
                    clock: cclock,
                    racq: VClock::new(),
                    rel_fence: None,
                    status: Status::Running,
                    obs: 0,
                    final_clock: VClock::new(),
                    panic: None,
                    resp_tx,
                });
                self.log_op(t, format!("spawn t{child} '{cname}'"));
                self.respond(t, Resp::Val(child as u64));
            }
            Op::Join { target } => {
                debug_assert!(matches!(self.threads[target].status, Status::Done));
                let fc = self.threads[target].final_clock.clone();
                let thr = &mut self.threads[t];
                thr.clock.tick(t);
                thr.clock.join(&fc);
                self.log_op(t, format!("join t{target}"));
                self.respond(t, Resp::Go);
            }
        }
        Ok(())
    }

    /// Tear the execution down: unwind every live model thread and
    /// drain messages until all are done (so OS threads exit before
    /// the next execution starts).
    fn abort_all(&mut self) {
        for t in 0..self.threads.len() {
            match self.threads[t].status {
                Status::Pending(_) | Status::InCvWait { .. } => self.respond(t, Resp::Abort),
                Status::Running | Status::Done => {}
            }
        }
        while self
            .threads
            .iter()
            .any(|t| !matches!(t.status, Status::Done))
        {
            match self.req_rx.recv_timeout(RECV_TIMEOUT) {
                Ok(Msg::Req { tid, .. }) => self.respond(tid, Resp::Abort),
                Ok(Msg::Done { tid, .. }) => {
                    let thr = &mut self.threads[tid];
                    thr.status = Status::Done;
                }
                // A thread stopped responding during teardown; give up
                // rather than hang (its scope join may still block).
                Err(_) => break,
            }
        }
    }

    fn control(&mut self, dfs: &mut Dfs) -> Result<(), Failure> {
        loop {
            // Quiescence: wait until no thread is executing real code,
            // so the enabled set is complete and deterministic.
            while self
                .threads
                .iter()
                .any(|t| matches!(t.status, Status::Running))
            {
                match self.req_rx.recv_timeout(RECV_TIMEOUT) {
                    Ok(Msg::Req { tid, op }) => {
                        self.threads[tid].status = Status::Pending(OpSlot(op));
                    }
                    Ok(Msg::Done { tid, panic }) => self.finish_thread(tid, panic),
                    Err(_) => {
                        self.abort_all();
                        return Err(self.fail(FailureKind::Stalled));
                    }
                }
            }
            if let Some((tid, msg)) = self
                .threads
                .iter()
                .enumerate()
                .find_map(|(i, t)| t.panic.clone().map(|m| (i, m)))
            {
                let thread = self.threads[tid].name.clone();
                self.abort_all();
                return Err(self.fail(FailureKind::Panic {
                    thread,
                    message: msg,
                }));
            }
            if self
                .threads
                .iter()
                .all(|t| matches!(t.status, Status::Done))
            {
                return Ok(());
            }
            let enabled = self.enabled_threads();
            if enabled.is_empty() {
                let blocked: Vec<String> = self
                    .threads
                    .iter()
                    .filter(|t| !matches!(t.status, Status::Done))
                    .map(|t| format!("{} ({:?})", t.name, t.status))
                    .collect();
                self.abort_all();
                return Err(self.fail(FailureKind::Deadlock { blocked }));
            }
            if self.ops >= self.cfg.max_ops_per_exec {
                self.abort_all();
                return Err(self.fail(FailureKind::OpLimit));
            }
            let t = self.pick_thread(&enabled, dfs);
            self.exec_op(t, dfs)?;
        }
    }
}

fn run_one(cfg: &Checker, dfs: &mut Dfs, f: &(dyn Fn() + Sync)) -> Result<(), Failure> {
    let (req_tx, req_rx) = std::sync::mpsc::channel::<Msg>();
    let (t0_tx, t0_rx) = std::sync::mpsc::channel::<Resp>();
    let mut ex = Exec::new(cfg, req_rx, t0_tx);
    std::thread::scope(|s| {
        let ctx = shim::ClientCtx {
            tid: 0,
            req_tx,
            resp_rx: t0_rx,
        };
        s.spawn(move || shim::run_model_thread(ctx, f, |_| {}));
        ex.control(dfs)
    })
}

/// Run the bounded-preemption DFS over `f`'s interleavings.
///
/// `f` is re-executed once per explored schedule and must therefore
/// construct all protocol state it asserts on *inside* the closure
/// (shim statics are fine: model writes never leak into the fallback
/// value, so each execution sees the same initial state). Every thread
/// `f` spawns through the facade must terminate before `f`'s threads
/// are all done, or the execution reports a deadlock.
pub(crate) fn explore_impl(cfg: &Checker, name: &str, f: &(dyn Fn() + Sync)) -> Outcome {
    let mut dfs = Dfs::new();
    let mut executions = 0u64;
    loop {
        executions += 1;
        dfs.cursor = 0;
        if let Err(failure) = run_one(cfg, &mut dfs, f) {
            return Outcome {
                name: name.to_string(),
                executions,
                pruned: dfs.pruned,
                complete: false,
                failure: Some(failure),
            };
        }
        if !dfs.advance() {
            return Outcome {
                name: name.to_string(),
                executions,
                pruned: dfs.pruned,
                complete: true,
                failure: None,
            };
        }
        if executions >= cfg.max_executions {
            return Outcome {
                name: name.to_string(),
                executions,
                pruned: dfs.pruned,
                complete: false,
                failure: None,
            };
        }
    }
}
