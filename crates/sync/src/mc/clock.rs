//! Vector clocks — the happens-before component of the memory model.

use std::fmt;
use std::hash::{Hash, Hasher};

/// A vector clock over model-thread ids. Component `t` counts the
/// events thread `t` has performed; `a ≤ b` (pointwise) means every
/// event summarized by `a` happens-before (or is) every event `b` knows
/// about.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct VClock(Vec<u32>);

impl VClock {
    /// The empty clock (happens-before everything).
    pub fn new() -> Self {
        VClock(Vec::new())
    }

    /// Component for thread `t` (0 if never ticked).
    pub fn get(&self, t: usize) -> u32 {
        self.0.get(t).copied().unwrap_or(0)
    }

    /// Advance thread `t`'s own component by one event.
    pub fn tick(&mut self, t: usize) {
        if self.0.len() <= t {
            self.0.resize(t + 1, 0);
        }
        self.0[t] += 1;
    }

    /// Pointwise maximum: absorb everything `other` has observed.
    pub fn join(&mut self, other: &VClock) {
        if self.0.len() < other.0.len() {
            self.0.resize(other.0.len(), 0);
        }
        for (i, v) in other.0.iter().enumerate() {
            if *v > self.0[i] {
                self.0[i] = *v;
            }
        }
    }

    /// `self ≤ other` pointwise: the event this clock stamps
    /// happens-before (or equals) the observation `other` summarizes.
    pub fn leq(&self, other: &VClock) -> bool {
        self.0.iter().enumerate().all(|(i, v)| *v <= other.get(i))
    }
}

impl Hash for VClock {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Trailing zero components are semantically absent; strip them so
        // equal clocks hash equally regardless of resize history.
        let trimmed = self.0.iter().rposition(|v| *v != 0).map_or(0, |i| i + 1);
        self.0[..trimmed].hash(state);
    }
}

impl fmt::Debug for VClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "⟩")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tick_join_leq() {
        let mut a = VClock::new();
        a.tick(0);
        a.tick(0);
        let mut b = VClock::new();
        b.tick(1);
        assert!(!a.leq(&b));
        assert!(!b.leq(&a));
        let mut j = a.clone();
        j.join(&b);
        assert!(a.leq(&j));
        assert!(b.leq(&j));
        assert_eq!(j.get(0), 2);
        assert_eq!(j.get(1), 1);
        assert!(VClock::new().leq(&a));
    }

    #[test]
    fn hash_ignores_trailing_zeros() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let mut a = VClock(vec![1, 2]);
        let b = VClock(vec![1, 2, 0, 0]);
        let mut ha = DefaultHasher::new();
        let mut hb = DefaultHasher::new();
        a.hash(&mut ha);
        b.hash(&mut hb);
        assert_eq!(ha.finish(), hb.finish());
        a.join(&b); // no-op semantically
        assert_eq!(a, VClock(vec![1, 2, 0, 0]));
    }
}
