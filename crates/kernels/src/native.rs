//! Native (host-executed) micro-kernels.
//!
//! These perform the real arithmetic. Each kernel consumes packed
//! operand slivers in the GotoBLAS format of Fig. 2:
//!
//! * `a` — `mr × kc`, stored k-major: `a[p*mr + i] = Ã(i, p)`;
//! * `b` — `kc × nr`, stored k-major: `b[p*nr + j] = B̃(p, j)`;
//!
//! and update a column-major `mr × nr` block of `C` with leading
//! dimension `ldc`, computing `C += alpha · Ã · B̃` exactly as
//! Algorithm 1 (GEBP) of the paper: accumulate into a register tile,
//! then merge into `C`.
//!
//! The const-generic form lets the compiler fully unroll and vectorize
//! the register tile; [`Kernel::run`] falls back to a dynamic tile for
//! shapes outside the instantiated registry.

use crate::scalar::Scalar;

/// Function type of an instantiated micro-kernel.
pub type KernelFn<S> = fn(kc: usize, alpha: S, a: &[S], b: &[S], c: &mut [S], ldc: usize);

/// Raw-`C` variant of [`KernelFn`]: `c` points at element `(0, 0)` of
/// the output tile. The caller must guarantee exclusive access to the
/// `(NR-1)*ldc + MR` elements of the column-major tile footprint —
/// this is what lets disjoint split tiles of one `C` be updated in
/// place from several threads without overlapping `&mut` slices.
// SAFETY: an `unsafe fn` pointer type — each call site must prove the
// tile-footprint contract documented above.
pub type KernelPtrFn<S> = unsafe fn(kc: usize, alpha: S, a: &[S], b: &[S], c: *mut S, ldc: usize);

/// Raw core of [`microkernel`]; monomorphized per `(MR, NR)`.
///
/// # Safety
/// `c` must be valid for exclusive reads and writes of the elements
/// `c + j*ldc + i` for `i < MR`, `j < NR`.
// SAFETY: an `unsafe fn` declaration — callers discharge the tile-
// footprint contract in `# Safety` above; the body re-asserts operand
// lengths before any raw write.
#[allow(clippy::too_many_arguments)]
pub unsafe fn microkernel_ptr<S: Scalar, const MR: usize, const NR: usize>(
    kc: usize,
    alpha: S,
    a: &[S],
    b: &[S],
    c: *mut S,
    ldc: usize,
) {
    assert!(a.len() >= kc * MR, "packed A sliver too short");
    assert!(b.len() >= kc * NR, "packed B sliver too short");
    assert!(ldc >= MR, "ldc must cover the tile rows");
    let mut acc = [[S::ZERO; NR]; MR];
    for p in 0..kc {
        let av = &a[p * MR..(p + 1) * MR];
        let bv = &b[p * NR..(p + 1) * NR];
        for i in 0..MR {
            let ai = av[i];
            for j in 0..NR {
                acc[i][j] = acc[i][j].madd(ai, bv[j]);
            }
        }
    }
    #[allow(clippy::needless_range_loop)]
    for j in 0..NR {
        for i in 0..MR {
            // SAFETY: (i, j) stays inside the MR x NR tile footprint
            // the caller contractually owns through `c`.
            unsafe {
                let p = c.add(j * ldc + i);
                *p = (*p).madd(alpha, acc[i][j]);
            }
        }
    }
}

/// Generic register-tile micro-kernel; monomorphized per `(MR, NR)`.
#[allow(clippy::too_many_arguments)]
pub fn microkernel<S: Scalar, const MR: usize, const NR: usize>(
    kc: usize,
    alpha: S,
    a: &[S],
    b: &[S],
    c: &mut [S],
    ldc: usize,
) {
    assert!(ldc >= MR, "ldc must cover the tile rows");
    assert!(c.len() >= (NR - 1) * ldc + MR, "C block out of bounds");
    // SAFETY: the asserts above prove the slice covers the full
    // column-major tile footprint, and `&mut` makes it exclusive.
    unsafe { microkernel_ptr::<S, MR, NR>(kc, alpha, a, b, c.as_mut_ptr(), ldc) }
}

const DYN_MAX: usize = 16;

/// Raw core of [`microkernel_dyn`].
///
/// # Safety
/// `c` must be valid for exclusive reads and writes of the elements
/// `c + j*ldc + i` for `i < mr`, `j < nr`.
// SAFETY: an `unsafe fn` declaration — callers discharge the tile-
// footprint contract in `# Safety` above; the body re-asserts operand
// lengths before any raw write.
#[allow(clippy::too_many_arguments)]
pub unsafe fn microkernel_dyn_ptr<S: Scalar>(
    mr: usize,
    nr: usize,
    kc: usize,
    alpha: S,
    a: &[S],
    b: &[S],
    c: *mut S,
    ldc: usize,
) {
    assert!(
        (1..=DYN_MAX).contains(&mr) && (1..=DYN_MAX).contains(&nr),
        "dynamic tile {mr}x{nr} out of range"
    );
    assert!(a.len() >= kc * mr, "packed A sliver too short");
    assert!(b.len() >= kc * nr, "packed B sliver too short");
    assert!(ldc >= mr, "ldc must cover the tile rows");
    let mut acc = [[S::ZERO; DYN_MAX]; DYN_MAX];
    for p in 0..kc {
        let av = &a[p * mr..(p + 1) * mr];
        let bv = &b[p * nr..(p + 1) * nr];
        for i in 0..mr {
            let ai = av[i];
            for j in 0..nr {
                acc[i][j] = acc[i][j].madd(ai, bv[j]);
            }
        }
    }
    #[allow(clippy::needless_range_loop)]
    for j in 0..nr {
        for i in 0..mr {
            // SAFETY: (i, j) stays inside the mr x nr tile footprint
            // the caller contractually owns through `c`.
            unsafe {
                let p = c.add(j * ldc + i);
                *p = (*p).madd(alpha, acc[i][j]);
            }
        }
    }
}

/// Dynamic-shape fallback for arbitrary `mr × nr` up to 16×16.
#[allow(clippy::too_many_arguments)]
pub fn microkernel_dyn<S: Scalar>(
    mr: usize,
    nr: usize,
    kc: usize,
    alpha: S,
    a: &[S],
    b: &[S],
    c: &mut [S],
    ldc: usize,
) {
    assert!(
        ldc >= mr && nr >= 1 && c.len() >= (nr - 1) * ldc + mr,
        "C block out of bounds"
    );
    // SAFETY: the assert above proves the slice covers the full
    // column-major tile footprint, and `&mut` makes it exclusive.
    unsafe { microkernel_dyn_ptr(mr, nr, kc, alpha, a, b, c.as_mut_ptr(), ldc) }
}

/// A runnable kernel: a statically instantiated function when the shape
/// is in the registry, otherwise the dynamic fallback.
#[derive(Clone, Copy)]
pub struct Kernel<S: Scalar> {
    mr: usize,
    nr: usize,
    f: Option<KernelFn<S>>,
    fp: Option<KernelPtrFn<S>>,
}

impl<S: Scalar> std::fmt::Debug for Kernel<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Kernel({}x{}, {})",
            self.mr,
            self.nr,
            if self.f.is_some() {
                "static"
            } else {
                "dynamic"
            }
        )
    }
}

impl<S: Scalar> Kernel<S> {
    /// Kernel for a shape; uses the static registry when possible.
    pub fn for_shape(mr: usize, nr: usize) -> Self {
        Kernel {
            mr,
            nr,
            f: lookup_static::<S>(mr, nr),
            fp: lookup_static_ptr::<S>(mr, nr),
        }
    }

    /// Tile rows.
    pub fn mr(&self) -> usize {
        self.mr
    }

    /// Tile columns.
    pub fn nr(&self) -> usize {
        self.nr
    }

    /// Is this a statically instantiated (compiler-unrolled) kernel?
    pub fn is_static(&self) -> bool {
        self.f.is_some()
    }

    /// Run the kernel.
    #[inline]
    pub fn run(&self, kc: usize, alpha: S, a: &[S], b: &[S], c: &mut [S], ldc: usize) {
        match self.f {
            Some(f) => f(kc, alpha, a, b, c, ldc),
            None => microkernel_dyn(self.mr, self.nr, kc, alpha, a, b, c, ldc),
        }
    }

    /// Run the kernel against a raw `C` tile pointer (the in-place
    /// split-tile path, where a covering `&mut [S]` cannot exist).
    ///
    /// # Safety
    /// `c` must be valid for exclusive reads and writes of the elements
    /// `c + j*ldc + i` for `i < self.mr()`, `j < self.nr()`.
    // SAFETY: an `unsafe fn` declaration — callers discharge the
    // tile-footprint contract in `# Safety` above.
    #[inline]
    pub unsafe fn run_ptr(&self, kc: usize, alpha: S, a: &[S], b: &[S], c: *mut S, ldc: usize) {
        // SAFETY: forwarding the caller's tile-footprint contract.
        unsafe {
            match self.fp {
                Some(f) => f(kc, alpha, a, b, c, ldc),
                None => microkernel_dyn_ptr(self.mr, self.nr, kc, alpha, a, b, c, ldc),
            }
        }
    }
}

macro_rules! kernel_registry {
    ($( ($mr:literal, $nr:literal) ),+ $(,)?) => {
        /// Look up a statically instantiated kernel function.
        pub fn lookup_static<S: Scalar>(mr: usize, nr: usize) -> Option<KernelFn<S>> {
            match (mr, nr) {
                $( ($mr, $nr) => Some(microkernel::<S, $mr, $nr> as KernelFn<S>), )+
                _ => None,
            }
        }

        /// Look up the raw-`C` form of a statically instantiated kernel.
        pub fn lookup_static_ptr<S: Scalar>(mr: usize, nr: usize) -> Option<KernelPtrFn<S>> {
            match (mr, nr) {
                $( ($mr, $nr) => Some(microkernel_ptr::<S, $mr, $nr> as KernelPtrFn<S>), )+
                _ => None,
            }
        }

        /// Shapes with static instantiations.
        pub const STATIC_SHAPES: &[(usize, usize)] = &[ $( ($mr, $nr) ),+ ];
    };
}

// Main kernels of Table I plus the edge shapes OpenBLAS-style
// decomposition needs (powers of two in each dimension).
kernel_registry![
    (16, 4),
    (8, 8),
    (4, 4),
    (8, 12),
    (12, 4),
    (16, 2),
    (16, 1),
    (8, 4),
    (8, 2),
    (8, 1),
    (4, 8),
    (4, 12),
    (4, 2),
    (4, 1),
    (2, 4),
    (2, 8),
    (2, 12),
    (2, 2),
    (2, 1),
    (1, 4),
    (1, 8),
    (1, 12),
    (1, 2),
    (1, 1),
    (12, 2),
    (12, 1),
    (6, 4),
];

/// A typed registry handle: one `KernelRef` per `(shape, isa)` lookup.
///
/// Replaces the bare `(mr, nr)` tuple keys callers used to pass around
/// alongside a loose `Option<fn>`: a `KernelRef` can only be obtained
/// through [`KernelRegistry::lookup`], which has already proven the
/// shape against the registry ISA's Eq. 4 budget.
#[derive(Clone, Copy)]
pub struct KernelRef<S: Scalar> {
    shape: smm_model::KernelShape,
    isa: smm_model::VectorIsa,
    kernel: Kernel<S>,
}

impl<S: Scalar> std::fmt::Debug for KernelRef<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "KernelRef({}x{} @ {}, {})",
            self.shape.mr,
            self.shape.nr,
            self.isa,
            if self.kernel.is_static() {
                "static"
            } else {
                "dynamic"
            }
        )
    }
}

impl<S: Scalar> KernelRef<S> {
    /// The validated register-tile shape.
    pub fn shape(&self) -> smm_model::KernelShape {
        self.shape
    }

    /// The ISA the shape was validated against.
    pub fn isa(&self) -> smm_model::VectorIsa {
        self.isa
    }

    /// The runnable kernel.
    pub fn kernel(&self) -> Kernel<S> {
        self.kernel
    }

    /// Is the underlying kernel statically instantiated?
    pub fn is_static(&self) -> bool {
        self.kernel.is_static()
    }

    /// Run the kernel (see [`Kernel::run`]).
    #[inline]
    pub fn run(&self, kc: usize, alpha: S, a: &[S], b: &[S], c: &mut [S], ldc: usize) {
        self.kernel.run(kc, alpha, a, b, c, ldc)
    }
}

/// Kernel lookups keyed by `(shape, isa)`.
///
/// The native kernels compute with host scalar arithmetic, so the ISA
/// does not change *what* a kernel computes — it changes which shapes
/// are legal (Eq. 4 counts accumulators in vector registers of the
/// ISA's width) and how the shape is characterized by the model layer.
#[derive(Debug, Clone, Copy, Default)]
pub struct KernelRegistry {
    isa: smm_model::VectorIsa,
}

impl KernelRegistry {
    /// Registry for the default NEON-128 configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registry validating shapes against an explicit ISA.
    pub fn for_isa(isa: smm_model::VectorIsa) -> Self {
        KernelRegistry { isa }
    }

    /// The ISA lookups are validated against.
    pub fn isa(&self) -> smm_model::VectorIsa {
        self.isa
    }

    /// Look up a kernel for `mr × nr`, proving it against this
    /// registry's Eq. 4 budget first.
    pub fn lookup<S: Scalar>(
        &self,
        mr: usize,
        nr: usize,
    ) -> Result<KernelRef<S>, smm_model::RegisterBudgetError> {
        self.isa
            .check_register_budget(mr, nr, std::mem::size_of::<S>())?;
        Ok(KernelRef {
            shape: smm_model::KernelShape::new(mr, nr),
            isa: self.isa,
            kernel: Kernel::for_shape(mr, nr),
        })
    }

    /// Statically instantiated shapes that satisfy this ISA's budget.
    pub fn feasible_static_shapes(&self) -> Vec<(usize, usize)> {
        STATIC_SHAPES
            .iter()
            .copied()
            .filter(|&(mr, nr)| self.isa.check_register_budget(mr, nr, 4).is_ok())
            .collect()
    }
}

/// Reference implementation of the same contract, used to validate the
/// unrolled kernels: plain triple loop over the packed slivers.
#[allow(clippy::too_many_arguments)]
pub fn microkernel_reference<S: Scalar>(
    mr: usize,
    nr: usize,
    kc: usize,
    alpha: S,
    a: &[S],
    b: &[S],
    c: &mut [S],
    ldc: usize,
) {
    for j in 0..nr {
        for i in 0..mr {
            let mut acc = S::ZERO;
            for p in 0..kc {
                acc = acc.madd(a[p * mr + i], b[p * nr + j]);
            }
            c[j * ldc + i] = c[j * ldc + i].madd(alpha, acc);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fill(n: usize, seed: u64) -> Vec<f32> {
        // Small deterministic pseudo-random values, exactly representable
        // comparisons avoided by tolerance checks.
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        (0..n)
            .map(|_| {
                state ^= state >> 12;
                state ^= state << 25;
                state ^= state >> 27;
                ((state >> 33) as i32 % 17 - 8) as f32 * 0.25
            })
            .collect()
    }

    fn check_shape(mr: usize, nr: usize, kc: usize, alpha: f32) {
        let a = fill(mr * kc, 1);
        let b = fill(nr * kc, 2);
        let ldc = mr + 3;
        let mut c = fill(ldc * nr, 3);
        let mut c_ref = c.clone();
        Kernel::<f32>::for_shape(mr, nr).run(kc, alpha, &a, &b, &mut c, ldc);
        microkernel_reference(mr, nr, kc, alpha, &a, &b, &mut c_ref, ldc);
        for (i, (&x, &y)) in c.iter().zip(c_ref.iter()).enumerate() {
            assert!(
                (x - y).abs() <= 1e-4 * y.abs().max(1.0),
                "{mr}x{nr} kc={kc}: c[{i}] = {x} vs {y}"
            );
        }
    }

    #[test]
    fn all_static_shapes_match_reference() {
        for &(mr, nr) in STATIC_SHAPES {
            check_shape(mr, nr, 37, 1.0);
        }
    }

    #[test]
    fn alpha_scaling_applies() {
        check_shape(8, 8, 16, -2.5);
        check_shape(16, 4, 5, 0.5);
    }

    #[test]
    fn kc_zero_leaves_c_untouched_modulo_alpha_times_zero() {
        let mut c = vec![7.0f32; 16];
        Kernel::<f32>::for_shape(4, 4).run(0, 3.0, &[], &[], &mut c, 4);
        assert!(c.iter().all(|&x| x == 7.0));
    }

    #[test]
    fn dynamic_fallback_engages_for_odd_shapes() {
        let k = Kernel::<f32>::for_shape(7, 5);
        assert!(!k.is_static());
        check_shape(7, 5, 11, 1.5);
        check_shape(3, 3, 8, 1.0);
        check_shape(11, 4, 9, 1.0);
    }

    #[test]
    fn static_lookup_covers_table_i_kernels() {
        for &(mr, nr) in &[(16, 4), (8, 8), (4, 4), (8, 12), (12, 4)] {
            assert!(Kernel::<f32>::for_shape(mr, nr).is_static(), "{mr}x{nr}");
        }
    }

    #[test]
    fn f64_kernels_work() {
        let a: Vec<f64> = (0..8 * 4).map(|i| i as f64 * 0.5).collect();
        let b: Vec<f64> = (0..8 * 4).map(|i| (i % 7) as f64).collect();
        let mut c = vec![0.0f64; 4 * 4];
        let mut c_ref = c.clone();
        Kernel::<f64>::for_shape(4, 4).run(8, 1.0, &a, &b, &mut c, 4);
        microkernel_reference(4, 4, 8, 1.0, &a, &b, &mut c_ref, 4);
        assert_eq!(c, c_ref);
    }

    #[test]
    fn accumulation_adds_to_existing_c() {
        let a = vec![1.0f32; 4]; // 4x1 of ones, kc=1
        let b = vec![2.0f32; 1];
        let mut c = vec![10.0f32; 4];
        Kernel::<f32>::for_shape(4, 1).run(1, 1.0, &a, &b, &mut c, 4);
        assert_eq!(c, vec![12.0; 4]);
    }

    #[test]
    #[should_panic(expected = "too short")]
    fn short_operands_panic() {
        let mut c = vec![0.0f32; 16];
        microkernel::<f32, 4, 4>(10, 1.0, &[0.0; 8], &[0.0; 64], &mut c, 4);
    }

    #[test]
    fn registry_lookup_returns_typed_refs() {
        let reg = KernelRegistry::new();
        let k = reg.lookup::<f32>(8, 8).expect("8x8 fits NEON");
        assert_eq!(k.shape().mr, 8);
        assert_eq!(k.isa().name, "neon128");
        assert!(k.is_static());
        // Running through the ref matches the reference kernel.
        let a = fill(8 * 4, 1);
        let b = fill(8 * 4, 2);
        let mut c = fill(8 * 8, 3);
        let mut c_ref = c.clone();
        k.run(4, 1.0, &a, &b, &mut c, 8);
        microkernel_reference(8, 8, 4, 1.0, &a, &b, &mut c_ref, 8);
        assert_eq!(c, c_ref);
    }

    #[test]
    fn registry_enforces_its_isas_budget() {
        // 16x8 is over budget at 128-bit but legal at 256-bit.
        assert!(KernelRegistry::new().lookup::<f32>(16, 8).is_err());
        let wide = KernelRegistry::for_isa(smm_model::VectorIsa::sve256());
        assert!(wide.lookup::<f32>(16, 8).is_ok());
        // f64 halves the lanes: 16x8 needs 2x registers at 256-bit too.
        assert!(wide.lookup::<f64>(16, 8).is_err());
    }

    #[test]
    fn feasible_static_shapes_grow_with_width() {
        let narrow = KernelRegistry::new().feasible_static_shapes();
        let wide = KernelRegistry::for_isa(smm_model::VectorIsa::sve512()).feasible_static_shapes();
        assert!(narrow.len() == STATIC_SHAPES.len());
        assert!(wide.len() >= narrow.len());
    }
}
