//! The element-type abstraction.
//!
//! Everything numeric in this repository is generic over [`Scalar`],
//! instantiated for `f32` (the paper's primary precision — its formulas
//! use `sizeof(float)`) and `f64`.

use std::fmt::{Debug, Display};
use std::ops::{Add, Div, Mul, Neg, Sub};

/// A floating-point element type usable in GEMM kernels.
pub trait Scalar:
    Copy
    + Send
    + Sync
    + PartialEq
    + PartialOrd
    + Debug
    + Display
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + 'static
{
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;
    /// Element size in bytes.
    const BYTES: usize;

    /// `self + a * b` (the kernel's multiply-accumulate; not required
    /// to be fused).
    #[inline(always)]
    fn madd(self, a: Self, b: Self) -> Self {
        self + a * b
    }

    /// Convert from `f64` (for test data and tolerances).
    fn from_f64(v: f64) -> Self;
    /// Convert to `f64`.
    fn to_f64(self) -> f64;
    /// Absolute value.
    fn abs(self) -> Self;

    /// SIMD lanes in a 128-bit vector register.
    fn lanes() -> usize {
        16 / Self::BYTES
    }
}

impl Scalar for f32 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    const BYTES: usize = 4;

    fn from_f64(v: f64) -> Self {
        v as f32
    }

    fn to_f64(self) -> f64 {
        self as f64
    }

    fn abs(self) -> Self {
        f32::abs(self)
    }
}

impl Scalar for f64 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    const BYTES: usize = 8;

    fn from_f64(v: f64) -> Self {
        v
    }

    fn to_f64(self) -> f64 {
        self
    }

    fn abs(self) -> Self {
        f64::abs(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lanes_per_register() {
        assert_eq!(<f32 as Scalar>::lanes(), 4);
        assert_eq!(<f64 as Scalar>::lanes(), 2);
    }

    #[test]
    fn madd_matches_mul_add() {
        let acc: f32 = 1.5;
        assert_eq!(acc.madd(2.0, 3.0), 7.5);
        let acc64: f64 = -1.0;
        assert_eq!(acc64.madd(0.5, 4.0), 1.0);
    }

    #[test]
    fn conversions_round_trip() {
        assert_eq!(f32::from_f64(2.5).to_f64(), 2.5);
        assert_eq!(f64::from_f64(-3.25), -3.25);
    }
}
