//! Per-library kernel profiles (Table I of the paper) and edge-case
//! decomposition.
//!
//! | | OpenBLAS | BLIS | BLASFEO | Eigen |
//! |---|---|---|---|---|
//! | assembly layers | 4–7 | 6–7 | 6–7 | none |
//! | unroll | 8 | 4 | 4 | 1 |
//! | `mr × nr` | 16×4, 8×8, 4×4 | 8×12 | 16×4, 8×8 | 12×4 |
//!
//! Edge handling differs (§III-B): OpenBLAS composes smaller *edge
//! micro-kernels* (with the naive scheduling of Fig. 7); BLIS and
//! BLASFEO zero-pad the packed operands up to the register tile.

use smm_model::KernelShape;

use crate::descriptor::{BLoadStyle, MicroKernelDesc, SchedulePolicy};

/// How a library processes M/N remainders that don't fill the tile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeStrategy {
    /// Dedicated smaller micro-kernels over the exact remainder.
    EdgeKernels,
    /// Zero-pad the packed buffer up to the full tile and waste the
    /// extra flops.
    Padding,
}

/// A library's kernel configuration.
#[derive(Debug, Clone)]
pub struct LibraryProfile {
    /// Library name.
    pub name: &'static str,
    /// The preferred main micro-kernel.
    pub main: MicroKernelDesc,
    /// Alternative main-kernel shapes the library ships.
    pub alternates: Vec<KernelShape>,
    /// Edge handling strategy.
    pub edge: EdgeStrategy,
    /// Scheduling of edge kernels (OpenBLAS edge kernels are *not*
    /// carefully scheduled — Fig. 7).
    pub edge_policy: SchedulePolicy,
    /// Steps available for decomposing an M remainder.
    pub m_steps: Vec<usize>,
    /// Steps available for decomposing an N remainder.
    pub n_steps: Vec<usize>,
}

impl LibraryProfile {
    /// OpenBLAS on ARMv8: 16×4 assembly kernel, unroll 8, edge kernels.
    pub fn openblas() -> Self {
        LibraryProfile {
            name: "OpenBLAS",
            main: MicroKernelDesc::new(
                16,
                4,
                8,
                SchedulePolicy::Interleaved,
                BLoadStyle::ScalarPairs,
            ),
            alternates: vec![KernelShape::new(8, 8), KernelShape::new(4, 4)],
            edge: EdgeStrategy::EdgeKernels,
            edge_policy: SchedulePolicy::Naive,
            m_steps: vec![16, 8, 4, 2, 1],
            n_steps: vec![4, 2, 1],
        }
    }

    /// BLIS on ARMv8: 8×12 kernel, unroll 4, zero padding.
    pub fn blis() -> Self {
        LibraryProfile {
            name: "BLIS",
            main: MicroKernelDesc::new(
                8,
                12,
                4,
                SchedulePolicy::Interleaved,
                BLoadStyle::ScalarPairs,
            ),
            alternates: vec![],
            edge: EdgeStrategy::Padding,
            edge_policy: SchedulePolicy::Interleaved,
            m_steps: vec![8],
            n_steps: vec![12],
        }
    }

    /// BLASFEO: panel-major operands, 16×4/8×8 kernels with vector `B`
    /// loads, unroll 4, padding to the panel size `ps = 4`.
    pub fn blasfeo() -> Self {
        LibraryProfile {
            name: "BLASFEO",
            main: MicroKernelDesc::new(16, 4, 4, SchedulePolicy::Interleaved, BLoadStyle::Vector),
            alternates: vec![KernelShape::new(8, 8)],
            edge: EdgeStrategy::Padding,
            edge_policy: SchedulePolicy::Interleaved,
            m_steps: vec![16, 8],
            n_steps: vec![4],
        }
    }

    /// Eigen: compiler-generated 12×4 tile, unroll 1, scalar edges.
    pub fn eigen() -> Self {
        LibraryProfile {
            name: "Eigen",
            main: MicroKernelDesc::new(12, 4, 1, SchedulePolicy::Compiler, BLoadStyle::Scalars),
            alternates: vec![],
            edge: EdgeStrategy::EdgeKernels,
            edge_policy: SchedulePolicy::Compiler,
            m_steps: vec![12, 8, 4, 2, 1],
            n_steps: vec![4, 2, 1],
        }
    }

    /// All four profiles, in the paper's order.
    pub fn all() -> Vec<LibraryProfile> {
        vec![
            Self::openblas(),
            Self::blis(),
            Self::blasfeo(),
            Self::eigen(),
        ]
    }

    /// The descriptor for an edge tile of `mr_e × nr_e`.
    pub fn edge_desc(&self, mr_e: usize, nr_e: usize) -> MicroKernelDesc {
        MicroKernelDesc::new(
            mr_e,
            nr_e,
            // Edge kernels are typically not unrolled.
            if self.edge_policy == SchedulePolicy::Interleaved {
                self.main.unroll
            } else {
                1
            },
            self.edge_policy,
            self.main.b_load,
        )
    }
}

/// Greedily decompose `len` into the available `steps` (descending).
/// The final entries may repeat the smallest step.
pub fn decompose_greedy(len: usize, steps: &[usize]) -> Vec<usize> {
    assert!(!steps.is_empty(), "need at least one step size");
    assert!(
        steps.windows(2).all(|w| w[0] > w[1]),
        "steps must be strictly descending"
    );
    assert_eq!(
        *steps.last().unwrap(),
        1,
        "steps must end with 1 to cover any length"
    );
    let mut out = Vec::new();
    let mut rest = len;
    for &s in steps {
        while rest >= s {
            out.push(s);
            rest -= s;
        }
    }
    out
}

/// One tile along a dimension: `(offset, logical_size, kernel_size)`.
/// With padding, `kernel_size` may exceed `logical_size`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TileSpan {
    /// Start index in the dimension.
    pub offset: usize,
    /// Rows/columns of real data.
    pub logical: usize,
    /// Rows/columns the kernel actually computes.
    pub kernel: usize,
}

/// Tile a dimension of `len` with primary step `step`, handling the
/// remainder per the edge strategy.
pub fn tile_dimension(
    len: usize,
    step: usize,
    edge: EdgeStrategy,
    steps: &[usize],
) -> Vec<TileSpan> {
    let mut tiles = Vec::new();
    tile_dimension_into(len, step, edge, steps, &mut tiles);
    tiles
}

/// [`tile_dimension`] into a caller-provided buffer (cleared first), so
/// hot paths can reuse one allocation across blocks.
pub fn tile_dimension_into(
    len: usize,
    step: usize,
    edge: EdgeStrategy,
    steps: &[usize],
    tiles: &mut Vec<TileSpan>,
) {
    assert!(len > 0 && step > 0);
    tiles.clear();
    let full = len / step;
    for t in 0..full {
        tiles.push(TileSpan {
            offset: t * step,
            logical: step,
            kernel: step,
        });
    }
    let rem = len - full * step;
    if rem > 0 {
        match edge {
            EdgeStrategy::Padding => tiles.push(TileSpan {
                offset: full * step,
                logical: rem,
                kernel: step,
            }),
            EdgeStrategy::EdgeKernels => {
                let mut off = full * step;
                for part in decompose_greedy(rem, steps) {
                    tiles.push(TileSpan {
                        offset: off,
                        logical: part,
                        kernel: part,
                    });
                    off += part;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_i_configurations() {
        let ob = LibraryProfile::openblas();
        assert_eq!((ob.main.mr(), ob.main.nr(), ob.main.unroll), (16, 4, 8));
        let blis = LibraryProfile::blis();
        assert_eq!(
            (blis.main.mr(), blis.main.nr(), blis.main.unroll),
            (8, 12, 4)
        );
        let feo = LibraryProfile::blasfeo();
        assert_eq!((feo.main.mr(), feo.main.nr(), feo.main.unroll), (16, 4, 4));
        assert_eq!(feo.main.b_load, BLoadStyle::Vector);
        let eig = LibraryProfile::eigen();
        assert_eq!((eig.main.mr(), eig.main.nr(), eig.main.unroll), (12, 4, 1));
        assert_eq!(eig.main.policy, SchedulePolicy::Compiler);
    }

    #[test]
    fn paper_example_edge_decomposition() {
        // §III-B: M remainder 11 with nr=4 uses 8x4 + 2x4 + 1x4.
        assert_eq!(decompose_greedy(11, &[16, 8, 4, 2, 1]), vec![8, 2, 1]);
    }

    #[test]
    fn decomposition_sums_to_length() {
        for len in 1..100 {
            let parts = decompose_greedy(len, &[16, 8, 4, 2, 1]);
            assert_eq!(parts.iter().sum::<usize>(), len);
        }
    }

    #[test]
    fn tiling_with_edge_kernels_is_exact() {
        let tiles = tile_dimension(75, 16, EdgeStrategy::EdgeKernels, &[16, 8, 4, 2, 1]);
        let covered: usize = tiles.iter().map(|t| t.logical).sum();
        assert_eq!(covered, 75);
        assert!(tiles.iter().all(|t| t.logical == t.kernel));
        // 4 full tiles of 16, then 8 + 2 + 1.
        assert_eq!(tiles.len(), 7);
    }

    #[test]
    fn tiling_with_padding_rounds_up() {
        let tiles = tile_dimension(75, 8, EdgeStrategy::Padding, &[8]);
        assert_eq!(tiles.len(), 10);
        let last = tiles.last().unwrap();
        assert_eq!(last.logical, 3);
        assert_eq!(last.kernel, 8);
        // Wasted rows: 8 - 3 = 5.
        let computed: usize = tiles.iter().map(|t| t.kernel).sum();
        assert_eq!(computed, 80);
    }

    #[test]
    fn exact_multiples_have_no_edge_tiles() {
        let tiles = tile_dimension(80, 16, EdgeStrategy::EdgeKernels, &[16, 8, 4, 2, 1]);
        assert_eq!(tiles.len(), 5);
        assert!(tiles.iter().all(|t| t.kernel == 16));
    }

    #[test]
    fn offsets_are_contiguous() {
        for strategy in [EdgeStrategy::EdgeKernels, EdgeStrategy::Padding] {
            let tiles = tile_dimension(93, 16, strategy, &[16, 8, 4, 2, 1]);
            let mut expect = 0;
            for t in &tiles {
                assert_eq!(t.offset, expect);
                expect += t.logical;
            }
            assert_eq!(expect, 93);
        }
    }

    #[test]
    fn edge_descriptors_use_library_policy() {
        let ob = LibraryProfile::openblas();
        let e = ob.edge_desc(2, 4);
        assert_eq!(e.policy, SchedulePolicy::Naive);
        assert_eq!(e.unroll, 1);
        let blis = LibraryProfile::blis();
        let b = blis.edge_desc(8, 12);
        assert_eq!(b.policy, SchedulePolicy::Interleaved);
    }

    #[test]
    #[should_panic(expected = "descending")]
    fn unsorted_steps_rejected() {
        decompose_greedy(5, &[4, 8, 1]);
    }
}
