//! Micro-kernel framework for small-scale GEMM.
//!
//! Three views of the same micro-kernel concept:
//!
//! * [`native`] — host-executed const-generic register-tile kernels
//!   (real arithmetic, validated against a reference triple loop);
//! * [`trace_gen`] — ARMv8-like instruction streams for the
//!   `smm-simarch` Phytium 2000+ model, parameterized by the scheduling
//!   policies the paper contrasts (Fig. 7);
//! * [`registry`] — the per-library kernel configurations of Table I
//!   and the edge-case decomposition machinery of §III-B.
//!
//! The element type abstraction lives in [`scalar`]; kernel shape
//! metadata in [`descriptor`].

#![deny(missing_docs)]

pub mod descriptor;
pub mod native;
pub mod registry;
pub mod scalar;
pub mod trace_gen;

pub use descriptor::{BLoadStyle, MicroKernelDesc, SchedulePolicy};
pub use native::{Kernel, KernelFn, KernelRef, KernelRegistry};
pub use registry::{EdgeStrategy, LibraryProfile, TileSpan};
pub use scalar::Scalar;
pub use smm_model::VectorIsa;
pub use trace_gen::{emit_kernel, kernel_trace, KernelTraceParams};
