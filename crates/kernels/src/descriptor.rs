//! Micro-kernel descriptors: shape + code-generation style.
//!
//! A [`MicroKernelDesc`] captures everything Table I of the paper lists
//! per library: the register-tile shape `mr × nr`, the loop unrolling
//! factor, the instruction-scheduling style of the (hand-written or
//! compiler-generated) inner loop, and how the `B` operand is staged.

use smm_model::{check_register_budget, KernelShape};

/// SIMD lanes per vector register for single precision (128-bit NEON).
pub const F32_LANES: usize = 4;
/// Architectural vector registers on ARMv8.
pub const TOTAL_VREGS: usize = 32;
/// Registers Eq. 4 reserves for operand staging.
pub const SPARE_VREGS: usize = 2;

/// How the inner-loop instructions are laid out.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchedulePolicy {
    /// Software-pipelined, double-buffered operand staging: loads for
    /// iteration `k+1` are interleaved between the FMAs of iteration
    /// `k` (OpenBLAS/BLIS/BLASFEO main kernels).
    Interleaved,
    /// Straight-line: all operand loads clustered immediately before
    /// the FMAs that consume them, single-buffered (the inefficient
    /// OpenBLAS *edge* kernels of Fig. 7).
    Naive,
    /// Compiler-generated (Eigen): like `Naive` but with scalar `B`
    /// loads (no `ldp` pairing) and extra address arithmetic.
    Compiler,
}

/// How the `B` sliver is brought into registers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BLoadStyle {
    /// `ldp s, s` pairs — packed-`B̃` layouts in OpenBLAS/BLIS.
    ScalarPairs,
    /// Full 128-bit vector loads with lane-indexed FMAs — BLASFEO's
    /// panel-major layout.
    Vector,
    /// Individual scalar loads — Eigen's compiler-generated code.
    Scalars,
}

/// A complete micro-kernel description.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MicroKernelDesc {
    /// Register-tile shape.
    pub shape: KernelShape,
    /// Inner-loop unrolling factor (Table I: 8 for OpenBLAS, 4 for
    /// BLIS/BLASFEO, 1 for Eigen).
    pub unroll: usize,
    /// Instruction scheduling style.
    pub policy: SchedulePolicy,
    /// `B` staging style.
    pub b_load: BLoadStyle,
}

impl MicroKernelDesc {
    /// Construct, validating against the Eq. 4 register constraint for
    /// single precision (4 lanes, 32 registers, 2 spare).
    pub fn new(
        mr: usize,
        nr: usize,
        unroll: usize,
        policy: SchedulePolicy,
        b_load: BLoadStyle,
    ) -> Self {
        let shape = KernelShape::new(mr, nr);
        assert!(unroll >= 1, "unroll factor must be at least 1");
        // The same Eq. 4 check the static verifier runs (`smm-analyze`);
        // a descriptor this constructor accepts can never be flagged.
        if let Err(e) = check_register_budget(mr, nr, F32_LANES, TOTAL_VREGS, SPARE_VREGS) {
            panic!("{e}");
        }
        MicroKernelDesc {
            shape,
            unroll,
            policy,
            b_load,
        }
    }

    /// Rows of the register tile.
    pub fn mr(&self) -> usize {
        self.shape.mr
    }

    /// Columns of the register tile.
    pub fn nr(&self) -> usize {
        self.shape.nr
    }

    /// MACs performed per k-iteration.
    pub fn macs_per_k(&self) -> usize {
        self.mr() * self.nr()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates_eq4() {
        let d = MicroKernelDesc::new(
            8,
            12,
            4,
            SchedulePolicy::Interleaved,
            BLoadStyle::ScalarPairs,
        );
        assert_eq!(d.mr(), 8);
        assert_eq!(d.nr(), 12);
        assert_eq!(d.macs_per_k(), 96);
    }

    #[test]
    #[should_panic(expected = "Eq. 4")]
    fn oversized_tile_rejected() {
        MicroKernelDesc::new(16, 8, 4, SchedulePolicy::Naive, BLoadStyle::ScalarPairs);
    }

    #[test]
    #[should_panic(expected = "unroll")]
    fn zero_unroll_rejected() {
        MicroKernelDesc::new(8, 8, 0, SchedulePolicy::Naive, BLoadStyle::ScalarPairs);
    }
}
