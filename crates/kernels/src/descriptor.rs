//! Micro-kernel descriptors: shape + code-generation style + target ISA.
//!
//! A [`MicroKernelDesc`] captures everything Table I of the paper lists
//! per library: the register-tile shape `mr × nr`, the loop unrolling
//! factor, the instruction-scheduling style of the (hand-written or
//! compiler-generated) inner loop, and how the `B` operand is staged —
//! plus, since the width-agnostic redesign, the [`VectorIsa`] the kernel
//! targets. The ISA decides how many lanes a register holds and hence
//! how many registers the accumulator tile occupies (Eq. 4); the same
//! `mr × nr` shape may be legal at 256-bit and illegal at 128-bit.

use smm_model::VectorIsa;

/// How the inner-loop instructions are laid out.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchedulePolicy {
    /// Software-pipelined, double-buffered operand staging: loads for
    /// iteration `k+1` are interleaved between the FMAs of iteration
    /// `k` (OpenBLAS/BLIS/BLASFEO main kernels).
    Interleaved,
    /// Straight-line: all operand loads clustered immediately before
    /// the FMAs that consume them, single-buffered (the inefficient
    /// OpenBLAS *edge* kernels of Fig. 7).
    Naive,
    /// Compiler-generated (Eigen): like `Naive` but with scalar `B`
    /// loads (no `ldp` pairing) and extra address arithmetic.
    Compiler,
}

/// How the `B` sliver is brought into registers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BLoadStyle {
    /// `ldp s, s` pairs — packed-`B̃` layouts in OpenBLAS/BLIS.
    ScalarPairs,
    /// Full-width vector loads with lane-indexed FMAs — BLASFEO's
    /// panel-major layout.
    Vector,
    /// Individual scalar loads — Eigen's compiler-generated code.
    Scalars,
}

/// A complete micro-kernel description.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MicroKernelDesc {
    /// Register-tile shape.
    pub shape: smm_model::KernelShape,
    /// Inner-loop unrolling factor (Table I: 8 for OpenBLAS, 4 for
    /// BLIS/BLASFEO, 1 for Eigen).
    pub unroll: usize,
    /// Instruction scheduling style.
    pub policy: SchedulePolicy,
    /// `B` staging style.
    pub b_load: BLoadStyle,
    /// Target vector ISA (register width, count, predication).
    pub isa: VectorIsa,
}

impl MicroKernelDesc {
    /// Construct a NEON-128 descriptor, validating against the Eq. 4
    /// register constraint for single precision. This is the paper's
    /// configuration and the compatibility constructor; use
    /// [`MicroKernelDesc::for_isa`] to target another width.
    pub fn new(
        mr: usize,
        nr: usize,
        unroll: usize,
        policy: SchedulePolicy,
        b_load: BLoadStyle,
    ) -> Self {
        Self::for_isa(VectorIsa::neon128(), mr, nr, unroll, policy, b_load)
    }

    /// Construct for an explicit [`VectorIsa`], validating the shape
    /// against *that ISA's* Eq. 4 budget at single precision.
    pub fn for_isa(
        isa: VectorIsa,
        mr: usize,
        nr: usize,
        unroll: usize,
        policy: SchedulePolicy,
        b_load: BLoadStyle,
    ) -> Self {
        let shape = smm_model::KernelShape::new(mr, nr);
        assert!(unroll >= 1, "unroll factor must be at least 1");
        // The same Eq. 4 check the static verifier runs (`smm-analyze`);
        // a descriptor this constructor accepts can never be flagged.
        if let Err(e) = isa.check_register_budget(mr, nr, 4) {
            panic!("{e} (isa {isa})");
        }
        MicroKernelDesc {
            shape,
            unroll,
            policy,
            b_load,
            isa,
        }
    }

    /// Rows of the register tile.
    pub fn mr(&self) -> usize {
        self.shape.mr
    }

    /// Columns of the register tile.
    pub fn nr(&self) -> usize {
        self.shape.nr
    }

    /// MACs performed per k-iteration.
    pub fn macs_per_k(&self) -> usize {
        self.mr() * self.nr()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates_eq4() {
        let d = MicroKernelDesc::new(
            8,
            12,
            4,
            SchedulePolicy::Interleaved,
            BLoadStyle::ScalarPairs,
        );
        assert_eq!(d.mr(), 8);
        assert_eq!(d.nr(), 12);
        assert_eq!(d.macs_per_k(), 96);
        assert_eq!(d.isa, VectorIsa::neon128());
    }

    #[test]
    #[should_panic(expected = "Eq. 4")]
    fn oversized_tile_rejected() {
        MicroKernelDesc::new(16, 8, 4, SchedulePolicy::Naive, BLoadStyle::ScalarPairs);
    }

    #[test]
    #[should_panic(expected = "unroll")]
    fn zero_unroll_rejected() {
        MicroKernelDesc::new(8, 8, 0, SchedulePolicy::Naive, BLoadStyle::ScalarPairs);
    }

    #[test]
    fn eq4_is_checked_against_the_descriptors_own_isa() {
        // 16x8 violates Eq. 4 at 128-bit (see `oversized_tile_rejected`)
        // but is comfortably legal at 256-bit: 16 accumulators.
        let d = MicroKernelDesc::for_isa(
            VectorIsa::sve256(),
            16,
            8,
            4,
            SchedulePolicy::Interleaved,
            BLoadStyle::ScalarPairs,
        );
        assert_eq!(d.isa.lanes_f32(), 8);
    }

    #[test]
    #[should_panic(expected = "Eq. 4")]
    fn wide_isa_still_enforces_its_own_budget() {
        // 32 rows x 16 cols at 512-bit: 2*16 = 32 accumulators > 30.
        MicroKernelDesc::for_isa(
            VectorIsa::sve512(),
            32,
            16,
            4,
            SchedulePolicy::Interleaved,
            BLoadStyle::ScalarPairs,
        );
    }
}
