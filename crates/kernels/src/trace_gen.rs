//! ARMv8-like instruction-trace generation for micro-kernels.
//!
//! Given a [`MicroKernelDesc`] and concrete operand addresses, emits
//! the instruction stream a hand-written (or compiler-generated) kernel
//! would execute on Phytium 2000+, in the style of the paper's Fig. 7:
//! `ldr q` / `ldp s` operand staging, `fmla` rank-1 updates, the
//! `C`-block load/merge/store epilogue of Algorithm 1, and loop
//! overhead every `unroll` iterations.
//!
//! The three [`SchedulePolicy`] variants reproduce the paper's
//! observations: `Interleaved` double-buffers operands and spreads
//! loads between FMAs; `Naive` clusters loads immediately before their
//! consumers with single-buffered registers (the inefficient OpenBLAS
//! edge kernels); `Compiler` additionally pays per-load address
//! arithmetic and unpaired scalar `B` loads (Eigen).
//!
//! Emission is width-parametric: every lane count, register-byte
//! stride and budget assertion comes from the descriptor's
//! [`smm_model::VectorIsa`]. On a predicated ISA (SVE-style), residual
//! rows that do not fill a vector register are handled with one
//! `whilelt` predicate and predicated vector loads/FMAs/stores instead
//! of the NEON path's per-row scalar loads — the dedicated edge-kernel
//! pathology of Fig. 7 disappears into the main kernel body.

use smm_simarch::isa::{pr, s, v, x, Inst, Reg};
use smm_simarch::phase::Phase;

use crate::descriptor::{BLoadStyle, MicroKernelDesc, SchedulePolicy};

/// Addresses and strides for one micro-kernel invocation.
#[derive(Debug, Clone, Copy)]
pub struct KernelTraceParams {
    /// Kernel description.
    pub desc: MicroKernelDesc,
    /// Depth of the k-loop.
    pub kc: usize,
    /// Base address of the packed `A` sliver.
    pub a_base: u64,
    /// Bytes between consecutive k-iterations of the `A` sliver
    /// (`mr * elem` when packed contiguously).
    pub a_kstep: u64,
    /// Base address of the packed `B` sliver.
    pub b_base: u64,
    /// Bytes between consecutive k-iterations of the `B` sliver.
    pub b_kstep: u64,
    /// Bytes between the `nr` B elements *within* one k-iteration.
    /// Equal to `elem` for packed/panel-major B (enables `ldp`/vector
    /// loads); set to `ldb` for the packing-optional direct-B path,
    /// which forces per-element scalar gathers (§IV trade-off).
    pub b_jstride: u64,
    /// Address of `C(0,0)` for this tile.
    pub c_base: u64,
    /// Bytes between consecutive columns of `C`.
    pub c_col_stride: u64,
    /// Element size in bytes (4 for f32).
    pub elem: u64,
    /// Phase tag for every emitted instruction.
    pub phase: Phase,
}

struct RegPlan {
    lanes: usize,
    vb: u64,       // bytes per vector register (from the ISA)
    mra: usize,    // vector registers per A buffer (ceil(mr/lanes))
    nrv: usize,    // vector registers per B buffer when vector-loaded
    acc: Vec<Reg>, // mra * nr accumulators
    a_buf: [u8; 2],
    b_buf: [u8; 2],
    alpha: Reg,
    // Governing predicate for the residual row group on a predicated
    // ISA; `None` selects the NEON scalar-remainder path.
    pred: Option<Reg>,
}

fn plan_registers(p: &KernelTraceParams) -> RegPlan {
    let isa = p.desc.isa;
    let lanes = isa.lanes(p.elem as usize);
    let vb = isa.vreg_bytes() as u64;
    let mr = p.desc.mr();
    let nr = p.desc.nr();
    let mra = mr.div_ceil(lanes);
    let nrv = nr.div_ceil(lanes);
    let n_acc = mra * nr;
    let acc_limit = isa.accumulator_budget();
    assert!(
        n_acc <= acc_limit,
        "accumulator tile {mr}x{nr} needs {n_acc} > {acc_limit} registers on {isa}"
    );
    let top = (isa.num_vregs - 1) as u8;
    let acc: Vec<Reg> = (0..n_acc).map(|i| v(top - i as u8)).collect();
    // A buffers occupy v0..; vector-B buffers follow them.
    let a_buf = [0u8, mra as u8];
    let b_buf = match p.desc.b_load {
        BLoadStyle::Vector => [(2 * mra) as u8, (2 * mra + nrv) as u8],
        // Compiler-generated code broadcasts each B scalar into its own
        // vector register.
        BLoadStyle::Scalars => [(2 * mra) as u8, (2 * mra + nr) as u8],
        BLoadStyle::ScalarPairs => [0u8, nr as u8], // scalar register file
    };
    let budget = 2 * mra
        + match p.desc.b_load {
            BLoadStyle::Vector => 2 * nrv,
            BLoadStyle::Scalars => 2 * nr,
            BLoadStyle::ScalarPairs => 0,
        };
    assert!(
        n_acc + budget <= isa.num_vregs,
        "register plan for {mr}x{nr} overflows the vector file of {isa}"
    );
    let pred = if isa.predication && !mr.is_multiple_of(lanes) {
        Some(pr(0))
    } else {
        None
    };
    RegPlan {
        lanes,
        vb,
        mra,
        nrv,
        acc,
        a_buf,
        b_buf,
        alpha: s(31),
        pred,
    }
}

impl RegPlan {
    fn acc_reg(&self, i: usize, j: usize) -> Reg {
        self.acc[j * self.mra + i]
    }

    fn a_reg(&self, buf: usize, i: usize) -> Reg {
        v(self.a_buf[buf] + i as u8)
    }

    fn b_reg(&self, style: BLoadStyle, buf: usize, j: usize) -> Reg {
        match style {
            BLoadStyle::Vector => v(self.b_buf[buf] + (j / self.lanes) as u8),
            BLoadStyle::Scalars => v(self.b_buf[buf] + j as u8),
            BLoadStyle::ScalarPairs => s(self.b_buf[buf] + j as u8),
        }
    }
}

fn emit_a_loads(out: &mut Vec<Inst>, p: &KernelTraceParams, rp: &RegPlan, k: usize, buf: usize) {
    let mr = p.desc.mr();
    let base = p.a_base + k as u64 * p.a_kstep;
    let full = mr / rp.lanes;
    for i in 0..full {
        out.push(Inst::ld_vec(
            rp.a_reg(buf, i),
            base + i as u64 * rp.vb,
            p.phase,
        ));
    }
    if let Some(pg) = rp.pred {
        // Predicated ISA: one masked vector load covers every residual
        // row — no scalar-load cascade, no dedicated edge kernel.
        out.push(Inst::ld_vec_pred(
            rp.a_reg(buf, full),
            pg,
            base + full as u64 * rp.vb,
            p.phase,
        ));
        return;
    }
    // Remainder rows of an edge sliver: scalar loads (cannot use an
    // aligned vector load without padding -- §III-B, Fig. 8).
    let rem = mr % rp.lanes;
    for r in 0..rem {
        out.push(Inst::ld_scalar(
            s(16 + r as u8),
            base + full as u64 * rp.vb + r as u64 * p.elem,
            p.phase,
        ));
    }
}

fn emit_b_loads(out: &mut Vec<Inst>, p: &KernelTraceParams, rp: &RegPlan, k: usize, buf: usize) {
    let nr = p.desc.nr();
    let base = p.b_base + k as u64 * p.b_kstep;
    if p.b_jstride != p.elem {
        // Strided B (unpacked column-major operand): one scalar gather
        // per element, no pairing possible.
        debug_assert!(
            p.desc.b_load != BLoadStyle::Vector,
            "vector B staging requires a packed/panel-major layout"
        );
        for j in 0..nr {
            out.push(Inst::ld_scalar(
                rp.b_reg(p.desc.b_load, buf, j),
                base + j as u64 * p.b_jstride,
                p.phase,
            ));
        }
        return;
    }
    match p.desc.b_load {
        BLoadStyle::ScalarPairs => {
            let mut j = 0;
            while j + 1 < nr {
                out.push(Inst::ld_pair(
                    rp.b_reg(BLoadStyle::ScalarPairs, buf, j),
                    rp.b_reg(BLoadStyle::ScalarPairs, buf, j + 1),
                    base + j as u64 * p.elem,
                    p.phase,
                ));
                j += 2;
            }
            if j < nr {
                out.push(Inst::ld_scalar(
                    rp.b_reg(BLoadStyle::ScalarPairs, buf, j),
                    base + j as u64 * p.elem,
                    p.phase,
                ));
            }
        }
        BLoadStyle::Vector => {
            for jv in 0..rp.nrv {
                out.push(Inst::ld_vec(
                    v(rp.b_buf[buf] + jv as u8),
                    base + jv as u64 * rp.vb,
                    p.phase,
                ));
            }
        }
        BLoadStyle::Scalars => {
            for j in 0..nr {
                // Compiler-generated: address arithmetic per element,
                // scalar load, then a lane broadcast that burns an
                // FP-pipe slot (hand-written kernels use lane-indexed
                // fmla instead).
                out.push(Inst::iop(smm_simarch::isa::x(4), p.phase));
                out.push(Inst::ld_scalar(
                    s(j as u8),
                    base + j as u64 * p.elem,
                    p.phase,
                ));
                out.push(Inst::vdup(
                    rp.b_reg(BLoadStyle::Scalars, buf, j),
                    s(j as u8),
                    p.phase,
                ));
            }
        }
    }
}

fn emit_fmas(out: &mut Vec<Inst>, p: &KernelTraceParams, rp: &RegPlan, buf: usize) {
    let mr = p.desc.mr();
    let nr = p.desc.nr();
    let full = mr / rp.lanes;
    let rows = mr.div_ceil(rp.lanes);
    for j in 0..nr {
        let b = rp.b_reg(p.desc.b_load, buf, j);
        for i in 0..rows {
            if i < full {
                out.push(Inst::fma(rp.acc_reg(i, j), rp.a_reg(buf, i), b, p.phase));
            } else if let Some(pg) = rp.pred {
                out.push(Inst::fma_pred(
                    rp.acc_reg(i, j),
                    rp.a_reg(buf, full),
                    b,
                    pg,
                    p.phase,
                ));
            } else {
                out.push(Inst::fma(rp.acc_reg(i, j), s(16), b, p.phase));
            }
        }
    }
}

fn interleave(fmas: Vec<Inst>, loads: Vec<Inst>, out: &mut Vec<Inst>) {
    // Spread the next iteration's loads between this iteration's FMAs,
    // one load after every two FMAs.
    let mut loads = loads.into_iter();
    for (n, f) in fmas.into_iter().enumerate() {
        out.push(f);
        if n % 2 == 1 {
            if let Some(l) = loads.next() {
                out.push(l);
            }
        }
    }
    out.extend(loads);
}

fn emit_loop_overhead(out: &mut Vec<Inst>, phase: Phase) {
    out.push(Inst::iop(smm_simarch::isa::x(0), phase));
    out.push(Inst::iop(smm_simarch::isa::x(1), phase));
    out.push(Inst::branch(phase));
}

fn emit_c_update(out: &mut Vec<Inst>, p: &KernelTraceParams, rp: &RegPlan) {
    let mr = p.desc.mr();
    let nr = p.desc.nr();
    let full = mr / rp.lanes;
    let rem = mr % rp.lanes;
    for j in 0..nr {
        let col = p.c_base + j as u64 * p.c_col_stride;
        // Load the C column into the A-staging registers.
        for i in 0..full {
            out.push(Inst::ld_vec(
                rp.a_reg(0, i),
                col + i as u64 * rp.vb,
                p.phase,
            ));
        }
        if let Some(pg) = rp.pred {
            out.push(Inst::ld_vec_pred(
                rp.a_reg(0, full),
                pg,
                col + full as u64 * rp.vb,
                p.phase,
            ));
        } else {
            for r in 0..rem {
                out.push(Inst::ld_scalar(
                    s(16 + r as u8),
                    col + full as u64 * rp.vb + r as u64 * p.elem,
                    p.phase,
                ));
            }
        }
        // C += alpha * acc  (Algorithm 1 lines 11-12).
        let rows = mr.div_ceil(rp.lanes);
        for i in 0..rows {
            if i < full {
                out.push(Inst::fma(
                    rp.a_reg(0, i),
                    rp.acc_reg(i, j),
                    rp.alpha,
                    p.phase,
                ));
            } else if let Some(pg) = rp.pred {
                out.push(Inst::fma_pred(
                    rp.a_reg(0, full),
                    rp.acc_reg(i, j),
                    rp.alpha,
                    pg,
                    p.phase,
                ));
            } else {
                out.push(Inst::fma(s(16), rp.acc_reg(i, j), rp.alpha, p.phase));
            }
        }
        for i in 0..full {
            out.push(Inst::st_vec(
                rp.a_reg(0, i),
                col + i as u64 * rp.vb,
                p.phase,
            ));
        }
        if let Some(pg) = rp.pred {
            out.push(Inst::st_vec_pred(
                rp.a_reg(0, full),
                pg,
                col + full as u64 * rp.vb,
                p.phase,
            ));
        } else {
            for r in 0..rem {
                out.push(Inst::st_scalar(
                    s(16 + r as u8),
                    col + full as u64 * rp.vb + r as u64 * p.elem,
                    p.phase,
                ));
            }
        }
    }
}

/// Emit the full instruction stream of one micro-kernel invocation.
pub fn emit_kernel(out: &mut Vec<Inst>, p: &KernelTraceParams) {
    let rp = plan_registers(p);
    // Stage alpha once.
    out.push(Inst::ld_scalar(rp.alpha, p.c_base ^ 0x3F, p.phase));
    // One whilelt sets the residual-row predicate for the whole kernel.
    if let Some(pg) = rp.pred {
        out.push(Inst::while_lt(pg, x(2), p.phase));
    }
    if p.kc == 0 {
        emit_c_update(out, p, &rp);
        return;
    }
    match p.desc.policy {
        SchedulePolicy::Naive | SchedulePolicy::Compiler => {
            for k in 0..p.kc {
                emit_a_loads(out, p, &rp, k, 0);
                emit_b_loads(out, p, &rp, k, 0);
                emit_fmas(out, p, &rp, 0);
                if (k + 1) % p.desc.unroll == 0 || k + 1 == p.kc {
                    emit_loop_overhead(out, p.phase);
                }
            }
        }
        SchedulePolicy::Interleaved => {
            // Software-pipelined with double buffering.
            emit_a_loads(out, p, &rp, 0, 0);
            emit_b_loads(out, p, &rp, 0, 0);
            for k in 0..p.kc {
                let buf = k % 2;
                let mut fmas = Vec::new();
                emit_fmas(&mut fmas, p, &rp, buf);
                let mut loads = Vec::new();
                if k + 1 < p.kc {
                    emit_a_loads(&mut loads, p, &rp, k + 1, 1 - buf);
                    emit_b_loads(&mut loads, p, &rp, k + 1, 1 - buf);
                }
                interleave(fmas, loads, out);
                if (k + 1) % p.desc.unroll == 0 || k + 1 == p.kc {
                    emit_loop_overhead(out, p.phase);
                }
            }
        }
    }
    emit_c_update(out, p, &rp);
}

/// Count the instructions [`emit_kernel`] will produce, by class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelTraceStats {
    /// FMA instructions in the k-loop (excludes the C-merge FMAs).
    pub loop_fmas: u64,
    /// Total emitted instructions.
    pub total: u64,
}

/// Emit into a fresh vector and report stats (tests, Fig. 7 dumps).
pub fn kernel_trace(p: &KernelTraceParams) -> (Vec<Inst>, KernelTraceStats) {
    let mut out = Vec::new();
    emit_kernel(&mut out, p);
    let rows = p.desc.mr().div_ceil(p.desc.isa.lanes(p.elem as usize));
    let stats = KernelTraceStats {
        loop_fmas: (rows * p.desc.nr() * p.kc) as u64,
        total: out.len() as u64,
    };
    (out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use smm_simarch::isa::Op;
    use smm_simarch::machine::simulate_single;
    use smm_simarch::trace::VecSource;

    fn params(
        mr: usize,
        nr: usize,
        kc: usize,
        policy: SchedulePolicy,
        b_load: BLoadStyle,
        unroll: usize,
    ) -> KernelTraceParams {
        KernelTraceParams {
            desc: MicroKernelDesc::new(mr, nr, unroll, policy, b_load),
            kc,
            a_base: 0x10_000,
            a_kstep: (mr * 4) as u64,
            b_base: 0x40_000,
            b_kstep: (nr * 4) as u64,
            b_jstride: 4,
            c_base: 0x80_000,
            c_col_stride: (mr * 4) as u64,
            elem: 4,
            phase: Phase::Kernel,
        }
    }

    fn count(insts: &[Inst], pred: impl Fn(Op) -> bool) -> usize {
        insts.iter().filter(|i| pred(i.op)).count()
    }

    #[test]
    fn fma_count_matches_tile_math() {
        let p = params(
            8,
            8,
            32,
            SchedulePolicy::Interleaved,
            BLoadStyle::ScalarPairs,
            4,
        );
        let (insts, stats) = kernel_trace(&p);
        // k-loop FMAs: (8/4)*8*32 = 512; C-merge adds 2*8 = 16.
        let fmas = count(&insts, |o| o == Op::Fma);
        assert_eq!(fmas as u64, stats.loop_fmas + 16);
        assert_eq!(stats.loop_fmas, 512);
    }

    #[test]
    fn ldp_pairs_b_operand() {
        let p = params(16, 4, 8, SchedulePolicy::Naive, BLoadStyle::ScalarPairs, 8);
        let (insts, _) = kernel_trace(&p);
        // Per k: 2 ldp for nr=4.
        assert_eq!(count(&insts, |o| o == Op::LdPair), 16);
    }

    #[test]
    fn vector_b_loads_for_blasfeo_style() {
        let p = params(8, 8, 4, SchedulePolicy::Interleaved, BLoadStyle::Vector, 4);
        let (insts, _) = kernel_trace(&p);
        assert_eq!(count(&insts, |o| o == Op::LdPair), 0);
        // Per k: A 2 LdVec + B 2 LdVec = 16 total, plus C loads 2/col * 8.
        assert_eq!(count(&insts, |o| o == Op::LdVec), 16 + 16);
    }

    #[test]
    fn compiler_policy_pays_address_arithmetic() {
        let naive = kernel_trace(&params(
            12,
            4,
            8,
            SchedulePolicy::Naive,
            BLoadStyle::ScalarPairs,
            1,
        ))
        .0;
        let eigen = kernel_trace(&params(
            12,
            4,
            8,
            SchedulePolicy::Compiler,
            BLoadStyle::Scalars,
            1,
        ))
        .0;
        assert!(eigen.len() > naive.len());
        assert!(count(&eigen, |o| o == Op::IOp) > count(&naive, |o| o == Op::IOp));
    }

    #[test]
    fn unroll_reduces_loop_overhead() {
        let u1 = kernel_trace(&params(
            8,
            8,
            64,
            SchedulePolicy::Naive,
            BLoadStyle::ScalarPairs,
            1,
        ))
        .0;
        let u8 = kernel_trace(&params(
            8,
            8,
            64,
            SchedulePolicy::Naive,
            BLoadStyle::ScalarPairs,
            8,
        ))
        .0;
        let branches = |v: &[Inst]| count(v, |o| o == Op::Branch);
        assert_eq!(branches(&u1), 64);
        assert_eq!(branches(&u8), 8);
    }

    #[test]
    fn edge_rows_use_scalar_loads() {
        let p = params(2, 4, 8, SchedulePolicy::Naive, BLoadStyle::ScalarPairs, 1);
        let (insts, _) = kernel_trace(&p);
        // A loads are scalar: 2 per k.
        assert!(count(&insts, |o| o == Op::LdScalar) >= 16);
    }

    #[test]
    fn interleaved_is_at_least_as_good_as_naive() {
        // With ideal renaming and a 160-entry window, the OOO core hides
        // most static scheduling for full-size tiles; the policies must
        // still rank correctly and the main kernel must be efficient.
        let sim = |policy, unroll| {
            let p = params(8, 8, 256, policy, BLoadStyle::ScalarPairs, unroll);
            let (insts, stats) = kernel_trace(&p);
            let r = simulate_single(Box::new(VecSource::new(insts)));
            stats.loop_fmas as f64 / r.cycles as f64
        };
        let inter = sim(SchedulePolicy::Interleaved, 4);
        let naive = sim(SchedulePolicy::Naive, 1);
        assert!(inter >= naive, "interleaved {inter} vs naive {naive}");
        assert!(inter > 0.85, "8x8 interleaved should be efficient: {inter}");
    }

    #[test]
    fn compiler_policy_is_measurably_slower() {
        // Eigen-style codegen burns FP slots on lane broadcasts: the
        // kernel efficiency ceiling drops to mr·nr/4 / (mr·nr/4 + nr).
        let sim = |policy, b_load| {
            let p = params(12, 4, 256, policy, b_load, 1);
            let (insts, stats) = kernel_trace(&p);
            let r = simulate_single(Box::new(VecSource::new(insts)));
            stats.loop_fmas as f64 / r.cycles as f64
        };
        let eigen = sim(SchedulePolicy::Compiler, BLoadStyle::Scalars);
        let hand = sim(SchedulePolicy::Interleaved, BLoadStyle::ScalarPairs);
        assert!(
            eigen < 0.85,
            "compiler-generated 12x4 should be capped: {eigen}"
        );
        assert!(hand - eigen > 0.1, "hand {hand} vs compiler {eigen}");
    }

    #[test]
    fn tiny_edge_kernel_is_slow_on_the_simulator() {
        // 4x1: single accumulator chain -> latency bound (§III-B).
        let p = params(4, 1, 256, SchedulePolicy::Naive, BLoadStyle::ScalarPairs, 1);
        let (insts, stats) = kernel_trace(&p);
        let r = simulate_single(Box::new(VecSource::new(insts)));
        let eff = stats.loop_fmas as f64 / r.cycles as f64;
        assert!(eff < 0.35, "4x1 kernel should be latency bound, got {eff}");
    }

    #[test]
    fn c_update_loads_merges_stores() {
        let p = params(8, 8, 1, SchedulePolicy::Naive, BLoadStyle::ScalarPairs, 1);
        let (insts, _) = kernel_trace(&p);
        assert_eq!(count(&insts, |o| o == Op::StVec), 16); // 2 per column
    }

    #[test]
    fn kc_zero_still_merges_c() {
        let p = params(4, 4, 0, SchedulePolicy::Naive, BLoadStyle::ScalarPairs, 1);
        let (insts, _) = kernel_trace(&p);
        assert!(count(&insts, |o| o == Op::StVec) > 0);
        assert_eq!(count(&insts, |o| o == Op::Fma), 4); // C-merge only
    }

    fn params_isa(
        isa: smm_model::VectorIsa,
        mr: usize,
        nr: usize,
        kc: usize,
        policy: SchedulePolicy,
        b_load: BLoadStyle,
        unroll: usize,
    ) -> KernelTraceParams {
        KernelTraceParams {
            desc: MicroKernelDesc::for_isa(isa, mr, nr, unroll, policy, b_load),
            kc,
            a_base: 0x10_000,
            a_kstep: (mr * 4) as u64,
            b_base: 0x40_000,
            b_kstep: (nr * 4) as u64,
            b_jstride: 4,
            c_base: 0x80_000,
            c_col_stride: (mr.next_multiple_of(isa.lanes_f32()) * 4) as u64,
            elem: 4,
            phase: Phase::Kernel,
        }
    }

    #[test]
    fn wide_isa_scales_down_vector_count() {
        // 16x4 at 128-bit stages A in 4 vector loads per k; at 512-bit
        // one load carries all 16 rows.
        let neon = params(16, 4, 8, SchedulePolicy::Naive, BLoadStyle::ScalarPairs, 8);
        let sve = params_isa(
            smm_model::VectorIsa::sve512(),
            16,
            4,
            8,
            SchedulePolicy::Naive,
            BLoadStyle::ScalarPairs,
            8,
        );
        let (ni, _) = kernel_trace(&neon);
        let (si, _) = kernel_trace(&sve);
        assert_eq!(count(&ni, |o| o == Op::LdVec), 8 * 4 + 4 * 4);
        assert_eq!(count(&si, |o| o == Op::LdVec), 8 + 4);
        // Accumulators shrink 4x: fewer FMAs per k-iteration.
        assert!(si.len() < ni.len());
    }

    #[test]
    fn predicated_isa_replaces_scalar_remainder() {
        // mr=12 at sve256 (8 lanes): one full vector row + 4 residual
        // rows. NEON would emit 4 scalar loads per k; SVE emits one
        // whilelt up front and a single predicated load per k.
        let p = params_isa(
            smm_model::VectorIsa::sve256(),
            12,
            4,
            8,
            SchedulePolicy::Naive,
            BLoadStyle::ScalarPairs,
            8,
        );
        let (insts, _) = kernel_trace(&p);
        assert_eq!(count(&insts, |o| o == Op::WhileLt), 1);
        // 8 k-iterations + 4 C-column loads.
        assert_eq!(count(&insts, |o| o == Op::LdVecPred), 8 + 4);
        assert_eq!(count(&insts, |o| o == Op::StVecPred), 4);
        assert_eq!(count(&insts, |o| o == Op::FmaPred), 8 * 4 + 4);
        // The only scalar loads left are alpha staging and ldp-fed B.
        let a_scalars = insts
            .iter()
            .filter(|i| i.op == Op::LdScalar && (0x10_000..0x40_000).contains(&i.addr))
            .count();
        assert_eq!(a_scalars, 0, "no scalar A loads on a predicated ISA");
    }

    #[test]
    fn aligned_shapes_need_no_predicate() {
        let p = params_isa(
            smm_model::VectorIsa::sve256(),
            16,
            4,
            8,
            SchedulePolicy::Interleaved,
            BLoadStyle::ScalarPairs,
            4,
        );
        let (insts, _) = kernel_trace(&p);
        assert_eq!(count(&insts, |o| o == Op::WhileLt), 0);
        assert_eq!(count(&insts, |o| o == Op::LdVecPred), 0);
        assert_eq!(count(&insts, |o| o == Op::FmaPred), 0);
    }

    #[test]
    fn predicated_stream_simulates_end_to_end() {
        // The acceptance path: an SVE-256 kernel with a residual row
        // group runs on the cycle simulator and retires its FMAs.
        let p = params_isa(
            smm_model::VectorIsa::sve256(),
            12,
            8,
            64,
            SchedulePolicy::Interleaved,
            BLoadStyle::ScalarPairs,
            4,
        );
        let (insts, stats) = kernel_trace(&p);
        let r = simulate_single(Box::new(VecSource::new(insts)));
        // rows = ceil(12/8) = 2 -> 2*8*64 = 1024 loop FMAs (+ merge).
        assert_eq!(stats.loop_fmas, 1024);
        assert!(r.total_fmas() >= stats.loop_fmas);
        let eff = stats.loop_fmas as f64 / r.cycles as f64;
        assert!(eff > 0.7, "predicated 12x8 should stay efficient: {eff}");
        // And decisively above the NEON scalar-remainder chain bound
        // that made dedicated edge kernels slow (Fig. 7: ~0.2-0.35).
        assert!(eff > 0.5);
    }

    #[test]
    fn same_shape_three_widths_one_codebase() {
        // The tentpole deliverable in miniature: characterize one shape
        // at all three widths from the same emitter.
        for isa in smm_model::VectorIsa::all() {
            let p = params_isa(
                isa,
                8,
                4,
                32,
                SchedulePolicy::Interleaved,
                BLoadStyle::ScalarPairs,
                4,
            );
            let (insts, stats) = kernel_trace(&p);
            let rows = 8usize.div_ceil(isa.lanes_f32());
            assert_eq!(stats.loop_fmas, (rows * 4 * 32) as u64);
            let r = simulate_single(Box::new(VecSource::new(insts)));
            assert!(r.cycles > 0);
        }
    }

    #[test]
    fn all_addresses_fall_in_operand_ranges() {
        let p = params(
            16,
            4,
            16,
            SchedulePolicy::Interleaved,
            BLoadStyle::ScalarPairs,
            8,
        );
        let (insts, _) = kernel_trace(&p);
        for i in &insts {
            if i.op.is_load() || i.op.is_store() {
                let a = i.addr;
                let in_a = (0x10_000..0x10_000 + 16 * 64 * 4).contains(&a);
                let in_b = (0x40_000..0x40_000 + 16 * 16 * 4).contains(&a);
                let in_c = (0x80_000..0x80_000 + 4 * 16 * 4 + 64).contains(&a);
                let is_alpha = a == p.c_base ^ 0x3F;
                assert!(in_a || in_b || in_c || is_alpha, "stray address {a:#x}");
            }
        }
    }
}
