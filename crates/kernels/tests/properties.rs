//! Property-style tests for the kernel layer, driven by a deterministic
//! xorshift sweep: native kernels against the reference for arbitrary
//! shapes, and structural invariants of the generated traces.

use smm_kernels::descriptor::{BLoadStyle, MicroKernelDesc, SchedulePolicy};
use smm_kernels::native::{microkernel_reference, Kernel};
use smm_kernels::registry::{decompose_greedy, tile_dimension, EdgeStrategy};
use smm_kernels::trace_gen::{kernel_trace, KernelTraceParams};
use smm_simarch::isa::Op;
use smm_simarch::phase::Phase;

struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
    }

    fn next(&mut self) -> u64 {
        self.0 ^= self.0 >> 12;
        self.0 ^= self.0 << 25;
        self.0 ^= self.0 >> 27;
        self.0.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn range(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next() % (hi - lo) as u64) as usize
    }
}

fn data(n: usize, seed: u64) -> Vec<f32> {
    let mut state = seed | 1;
    (0..n)
        .map(|_| {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            ((state >> 33) as i64 % 9 - 4) as f32 * 0.5
        })
        .collect()
}

/// Any kernel shape (static or dynamic dispatch) matches the reference
/// triple loop.
#[test]
fn kernels_match_reference() {
    let mut rng = Rng::new(11);
    for _ in 0..96 {
        let mr = rng.range(1, 17);
        let nr = rng.range(1, 17);
        let kc = rng.range(0, 40);
        let alpha = (rng.range(0, 9) as f32 - 4.0) * 0.5;
        let seed = rng.range(1, 500) as u64;
        let a = data(mr * kc, seed);
        let b = data(nr * kc, seed + 1);
        let ldc = mr + (seed % 3) as usize;
        let mut c = data(ldc * nr.max(1), seed + 2);
        let mut c_ref = c.clone();
        Kernel::<f32>::for_shape(mr, nr).run(kc, alpha, &a, &b, &mut c, ldc);
        microkernel_reference(mr, nr, kc, alpha, &a, &b, &mut c_ref, ldc);
        for i in 0..c.len() {
            assert!(
                (c[i] - c_ref[i]).abs() < 1e-3 * (kc as f32 + 1.0),
                "{mr}x{nr} kc={kc}"
            );
        }
    }
}

/// Greedy decomposition always covers the length with valid steps.
#[test]
fn decomposition_covers() {
    for len in 1usize..500 {
        let steps = [16usize, 8, 4, 2, 1];
        let parts = decompose_greedy(len, &steps);
        assert_eq!(parts.iter().sum::<usize>(), len);
        assert!(parts.iter().all(|p| steps.contains(p)));
        // Non-increasing sizes (greedy).
        assert!(parts.windows(2).all(|w| w[0] >= w[1]));
    }
}

/// Tiling covers a dimension exactly for both edge strategies.
#[test]
fn tiling_covers() {
    let mut rng = Rng::new(12);
    for _ in 0..96 {
        let len = rng.range(1, 400);
        let step = [16usize, 8, 12][rng.range(0, 3)];
        let steps = [step, 8, 4, 2, 1];
        let steps: Vec<usize> = {
            let mut s: Vec<usize> = steps.to_vec();
            s.dedup();
            s.sort_unstable_by(|a, b| b.cmp(a));
            s.dedup();
            s
        };
        for strategy in [EdgeStrategy::EdgeKernels, EdgeStrategy::Padding] {
            let tiles = tile_dimension(len, step, strategy, &steps);
            assert_eq!(tiles.iter().map(|t| t.logical).sum::<usize>(), len);
            assert!(tiles.iter().all(|t| t.kernel >= t.logical));
            if strategy == EdgeStrategy::EdgeKernels {
                assert!(tiles.iter().all(|t| t.kernel == t.logical));
            }
        }
    }
}

/// Trace generation: the k-loop FMA count always equals
/// `ceil(mr/4) * nr * kc`, and loads never exceed 2 per FMA.
#[test]
fn trace_fma_counts() {
    let mut rng = Rng::new(13);
    let mut cases = 0;
    while cases < 96 {
        let mr = rng.range(1, 17);
        let nr = rng.range(1, 8);
        let kc = rng.range(1, 32);
        let policy_idx = rng.range(0, 3);
        if mr.div_ceil(4) * nr > 30 {
            continue;
        }
        let policy = [
            SchedulePolicy::Interleaved,
            SchedulePolicy::Naive,
            SchedulePolicy::Compiler,
        ][policy_idx];
        let b_load = if policy == SchedulePolicy::Compiler {
            BLoadStyle::Scalars
        } else {
            BLoadStyle::ScalarPairs
        };
        // Vector/Scalars staging needs extra registers.
        let mra = mr.div_ceil(4);
        let extra = if b_load == BLoadStyle::Scalars {
            2 * nr
        } else {
            0
        };
        if mra * nr + 2 * mra + extra > 32 {
            continue;
        }
        cases += 1;
        let p = KernelTraceParams {
            desc: MicroKernelDesc::new(mr, nr, 4, policy, b_load),
            kc,
            a_base: 0x1000,
            a_kstep: (mr * 4) as u64,
            b_base: 0x8000,
            b_kstep: (nr * 4) as u64,
            b_jstride: 4,
            c_base: 0x20000,
            c_col_stride: (mr * 4) as u64,
            elem: 4,
            phase: Phase::Kernel,
        };
        let (insts, stats) = kernel_trace(&p);
        let fmas = insts.iter().filter(|i| i.op == Op::Fma).count();
        let c_merge = mr.div_ceil(4) * nr;
        assert_eq!(fmas, stats.loop_fmas as usize + c_merge);
        assert_eq!(stats.loop_fmas as usize, mr.div_ceil(4) * nr * kc);
        let loads = insts.iter().filter(|i| i.op.is_load()).count();
        // Structural bound: at most mr + nr operand loads per k-step
        // (scalar worst case, double-buffered prologue adds one step),
        // plus the C loads of the merge and the alpha load.
        assert!(loads <= (mr + nr) * (kc + 1) + 2 * c_merge + 1);
    }
}

/// Static dispatch and dynamic fallback agree on every registered shape.
#[test]
fn static_and_dynamic_agree_everywhere() {
    for &(mr, nr) in smm_kernels::native::STATIC_SHAPES {
        let kc = 9;
        let a = data(mr * kc, 3);
        let b = data(nr * kc, 4);
        let mut c1 = vec![0.5f32; mr * nr];
        let mut c2 = c1.clone();
        Kernel::<f32>::for_shape(mr, nr).run(kc, 1.0, &a, &b, &mut c1, mr);
        smm_kernels::native::microkernel_dyn(mr, nr, kc, 1.0, &a, &b, &mut c2, mr);
        assert_eq!(c1, c2, "{mr}x{nr}");
    }
}
