//! Property tests for the kernel layer: native kernels against the
//! reference for arbitrary shapes, and structural invariants of the
//! generated instruction traces.

use proptest::prelude::*;
use smm_kernels::descriptor::{BLoadStyle, MicroKernelDesc, SchedulePolicy};
use smm_kernels::native::{microkernel_reference, Kernel};
use smm_kernels::registry::{decompose_greedy, tile_dimension, EdgeStrategy};
use smm_kernels::trace_gen::{kernel_trace, KernelTraceParams};
use smm_simarch::isa::Op;
use smm_simarch::phase::Phase;

fn data(n: usize, seed: u64) -> Vec<f32> {
    let mut state = seed | 1;
    (0..n)
        .map(|_| {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            ((state >> 33) as i64 % 9 - 4) as f32 * 0.5
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Any kernel shape (static or dynamic dispatch) matches the
    /// reference triple loop.
    #[test]
    fn kernels_match_reference(
        mr in 1usize..=16,
        nr in 1usize..=16,
        kc in 0usize..40,
        alpha in -2.0f32..2.0,
        seed in 1u64..500,
    ) {
        let a = data(mr * kc, seed);
        let b = data(nr * kc, seed + 1);
        let ldc = mr + (seed % 3) as usize;
        let mut c = data(ldc * nr.max(1), seed + 2);
        let mut c_ref = c.clone();
        Kernel::<f32>::for_shape(mr, nr).run(kc, alpha, &a, &b, &mut c, ldc);
        microkernel_reference(mr, nr, kc, alpha, &a, &b, &mut c_ref, ldc);
        for i in 0..c.len() {
            prop_assert!((c[i] - c_ref[i]).abs() < 1e-3 * (kc as f32 + 1.0));
        }
    }

    /// Greedy decomposition always covers the length with valid steps.
    #[test]
    fn decomposition_covers(len in 1usize..500) {
        let steps = [16usize, 8, 4, 2, 1];
        let parts = decompose_greedy(len, &steps);
        prop_assert_eq!(parts.iter().sum::<usize>(), len);
        prop_assert!(parts.iter().all(|p| steps.contains(p)));
        // Non-increasing sizes (greedy).
        prop_assert!(parts.windows(2).all(|w| w[0] >= w[1]));
    }

    /// Tiling covers a dimension exactly for both edge strategies.
    #[test]
    fn tiling_covers(len in 1usize..400, step_idx in 0usize..3) {
        let step = [16usize, 8, 12][step_idx];
        let steps = [step, 8, 4, 2, 1];
        let steps: Vec<usize> = {
            let mut s: Vec<usize> = steps.to_vec();
            s.dedup();
            s.sort_unstable_by(|a, b| b.cmp(a));
            s.dedup();
            s
        };
        for strategy in [EdgeStrategy::EdgeKernels, EdgeStrategy::Padding] {
            let tiles = tile_dimension(len, step, strategy, &steps);
            prop_assert_eq!(tiles.iter().map(|t| t.logical).sum::<usize>(), len);
            prop_assert!(tiles.iter().all(|t| t.kernel >= t.logical));
            if strategy == EdgeStrategy::EdgeKernels {
                prop_assert!(tiles.iter().all(|t| t.kernel == t.logical));
            }
        }
    }

    /// Trace generation: the k-loop FMA count always equals
    /// `ceil(mr/4) * nr * kc`, and loads never exceed 2 per FMA.
    #[test]
    fn trace_fma_counts(
        mr in 1usize..=16,
        nr in 1usize..=7,
        kc in 1usize..32,
        policy_idx in 0usize..3,
    ) {
        prop_assume!(mr.div_ceil(4) * nr <= 30);
        let policy = [SchedulePolicy::Interleaved, SchedulePolicy::Naive, SchedulePolicy::Compiler][policy_idx];
        let b_load = if policy == SchedulePolicy::Compiler { BLoadStyle::Scalars } else { BLoadStyle::ScalarPairs };
        // Vector/Scalars staging needs extra registers.
        let mra = mr.div_ceil(4);
        let extra = if b_load == BLoadStyle::Scalars { 2 * nr } else { 0 };
        prop_assume!(mra * nr + 2 * mra + extra <= 32);
        let p = KernelTraceParams {
            desc: MicroKernelDesc::new(mr, nr, 4, policy, b_load),
            kc,
            a_base: 0x1000,
            a_kstep: (mr * 4) as u64,
            b_base: 0x8000,
            b_kstep: (nr * 4) as u64,
            b_jstride: 4,
            c_base: 0x20000,
            c_col_stride: (mr * 4) as u64,
            elem: 4,
            phase: Phase::Kernel,
        };
        let (insts, stats) = kernel_trace(&p);
        let fmas = insts.iter().filter(|i| i.op == Op::Fma).count();
        let c_merge = mr.div_ceil(4) * nr;
        prop_assert_eq!(fmas, stats.loop_fmas as usize + c_merge);
        prop_assert_eq!(stats.loop_fmas as usize, mr.div_ceil(4) * nr * kc);
        let loads = insts.iter().filter(|i| i.op.is_load()).count();
        // Structural bound: at most mr + nr operand loads per k-step
        // (scalar worst case, double-buffered prologue adds one step),
        // plus the C loads of the merge and the alpha load.
        prop_assert!(loads <= (mr + nr) * (kc + 1) + 2 * c_merge + 1);
    }
}

/// Static dispatch and dynamic fallback agree on every registered shape.
#[test]
fn static_and_dynamic_agree_everywhere() {
    for &(mr, nr) in smm_kernels::native::STATIC_SHAPES {
        let kc = 9;
        let a = data(mr * kc, 3);
        let b = data(nr * kc, 4);
        let mut c1 = vec![0.5f32; mr * nr];
        let mut c2 = c1.clone();
        Kernel::<f32>::for_shape(mr, nr).run(kc, 1.0, &a, &b, &mut c1, mr);
        smm_kernels::native::microkernel_dyn(mr, nr, kc, 1.0, &a, &b, &mut c2, mr);
        assert_eq!(c1, c2, "{mr}x{nr}");
    }
}
