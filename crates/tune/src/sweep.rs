//! Offline sweep grids over the rectangular (m, n, k) shape space.
//!
//! Deshmukh et al.'s batched-GEMM cache modeling (PAPERS.md) shows
//! square-only sweeps misrepresent real workloads — tall-skinny and
//! short-wide shapes block differently — so the grid is the full cross
//! product of a per-axis geometric ladder: every combination of axis
//! points, not just the diagonal. Geometric spacing makes the grid
//! uniform under the matcher's log-space metric, which is what lets
//! [`SweepGrid::max_log_radius`] state a coverage guarantee that pairs
//! with [`crate::matcher::DEFAULT_NN_THRESHOLD`].

/// A geometric per-axis ladder swept as a full (m, n, k) cross product.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepGrid {
    min: usize,
    max: usize,
    points: usize,
}

impl SweepGrid {
    /// A grid of `points` geometrically spaced sizes from `min` to
    /// `max` inclusive, per axis. Degenerate inputs are normalized:
    /// `min` is clamped to ≥ 1, `max` to ≥ `min`, `points` to ≥ 1.
    pub fn geometric(min: usize, max: usize, points: usize) -> Self {
        let min = min.max(1);
        SweepGrid {
            min,
            max: max.max(min),
            points: points.max(1),
        }
    }

    /// The per-axis sizes: geometric ladder from `min` to `max`,
    /// rounded to integers and deduplicated (so small ranges may yield
    /// fewer than `points` sizes).
    pub fn axis(&self) -> Vec<usize> {
        if self.points == 1 || self.min == self.max {
            return vec![self.min];
        }
        let (lo, hi) = ((self.min as f64).ln(), (self.max as f64).ln());
        let mut out = Vec::with_capacity(self.points);
        for i in 0..self.points {
            let t = i as f64 / (self.points - 1) as f64;
            let v = (lo + t * (hi - lo)).exp().round() as usize;
            let v = v.clamp(self.min, self.max);
            if out.last() != Some(&v) {
                out.push(v);
            }
        }
        out
    }

    /// Every (m, n, k) in the cross product of [`Self::axis`] — the
    /// rectangular coverage, `axis³` shapes.
    pub fn shapes(&self) -> Vec<(usize, usize, usize)> {
        let axis = self.axis();
        let mut out = Vec::with_capacity(axis.len().pow(3));
        for &m in &axis {
            for &n in &axis {
                for &k in &axis {
                    out.push((m, n, k));
                }
            }
        }
        out
    }

    /// Worst-case log-space distance from any in-range shape (each
    /// dimension within `min..=max`) to its nearest grid shape:
    /// `√3 · max gap / 2`, where the gap is the largest log step
    /// between adjacent axis points. A query inside the swept envelope
    /// is guaranteed a nearest neighbor within this radius, so a
    /// matcher threshold at or above it accepts every in-range query.
    pub fn max_log_radius(&self) -> f64 {
        let axis = self.axis();
        let max_gap = axis
            .windows(2)
            .map(|w| (w[1] as f64).ln() - (w[0] as f64).ln())
            .fold(0.0_f64, f64::max);
        (3.0_f64).sqrt() * max_gap / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matcher::{log_distance, DEFAULT_NN_THRESHOLD};

    #[test]
    fn axis_spans_range_geometrically() {
        let axis = SweepGrid::geometric(4, 64, 6).axis();
        assert_eq!(axis.first(), Some(&4));
        assert_eq!(axis.last(), Some(&64));
        assert_eq!(axis.len(), 6);
        for w in axis.windows(2) {
            assert!(w[1] > w[0], "strictly increasing: {axis:?}");
        }
    }

    #[test]
    fn shapes_are_full_cross_product() {
        let grid = SweepGrid::geometric(4, 16, 3);
        let axis = grid.axis();
        let shapes = grid.shapes();
        assert_eq!(shapes.len(), axis.len().pow(3));
        // Rectangular coverage: non-square shapes are present.
        assert!(shapes.contains(&(axis[0], axis[2], axis[1])));
    }

    #[test]
    fn degenerate_inputs_normalize() {
        assert_eq!(SweepGrid::geometric(0, 0, 0).axis(), vec![1]);
        assert_eq!(SweepGrid::geometric(8, 4, 5).axis(), vec![8]);
        assert_eq!(SweepGrid::geometric(4, 4, 9).shapes().len(), 1);
    }

    #[test]
    fn default_sweep_radius_under_default_threshold() {
        // The documented pairing: the default sweep's coverage radius
        // sits under the default matcher threshold, so every in-range
        // query nearest-neighbor-matches.
        let grid = SweepGrid::geometric(4, 64, 6);
        assert!(
            grid.max_log_radius() < DEFAULT_NN_THRESHOLD,
            "radius {} vs threshold {}",
            grid.max_log_radius(),
            DEFAULT_NN_THRESHOLD
        );
    }

    #[test]
    fn worst_case_corner_within_radius() {
        let grid = SweepGrid::geometric(4, 64, 6);
        let radius = grid.max_log_radius();
        let shapes = grid.shapes();
        // Probe a lattice of in-range shapes; every one must have a
        // grid neighbor within the stated radius (small slack for the
        // integer rounding of axis points).
        for &m in &[4usize, 5, 9, 15, 27, 50, 64] {
            for &n in &[4usize, 11, 33, 64] {
                for &k in &[6usize, 20, 60] {
                    let best = shapes
                        .iter()
                        .map(|&s| log_distance((m, n, k), s))
                        .fold(f64::INFINITY, f64::min);
                    assert!(
                        best <= radius + 0.08,
                        "({m},{n},{k}) nearest {best} > radius {radius}"
                    );
                }
            }
        }
    }
}
