//! The on-disk shape→plan database: a versioned, checksummed, ISA-tagged
//! file whose decoder is *total*.
//!
//! Format (all integers little-endian):
//!
//! ```text
//! offset  size  field
//!      0     8  magic  b"SMMPLNDB"
//!      8     4  format version (currently 1)
//!     12     4  VectorIsa tag (smm_model::VectorIsa::tag)
//!     16     4  entry count (capped at MAX_DB_ENTRIES)
//!     20     8  FNV-1a checksum over version ∥ isa ∥ count ∥ payload
//!     28   44·n  entries, strictly sorted by (m, n, k) ascending
//! ```
//!
//! Decoding follows the wire-protocol discipline: every length is
//! checked before it is read, every cap is enforced before anything is
//! allocated, and every failure is a typed [`PlanDbError`] — a corrupt
//! or hostile file can be *rejected* but can never panic the loader or
//! silently produce garbage plans. The strict sort requirement makes
//! the encoding canonical, so a database round-trips bit-identically
//! (decode ∘ encode = id), which the example and fuzz tests assert.

use std::path::Path;

use smm_model::VectorIsa;

/// File magic, first 8 bytes of every database.
pub const MAGIC: [u8; 8] = *b"SMMPLNDB";

/// Current (and only) format version.
pub const FORMAT_VERSION: u32 = 1;

/// Cap on stored entries — far above any real sweep (a dense 100-point
/// grid per dimension is 10^6) but small enough that a hostile count
/// cannot drive a huge allocation before the length check.
pub const MAX_DB_ENTRIES: u32 = 1 << 20;

/// Cap on any stored matrix dimension; the paper's regime is *small*
/// matrices, and rejecting absurd dimensions keeps downstream plan
/// construction safe from overflow games.
pub const MAX_DIM: u32 = 1 << 16;

/// Cap on a stored register-tile edge (`mr`/`nr`).
const MAX_TILE: u16 = 256;

const HEADER_BYTES: usize = 28;
const ENTRY_BYTES: usize = 44;

/// Bit flags of an entry (any other bit set is a decode error).
const FLAG_PACK_A: u16 = 1 << 0;
const FLAG_PACK_B: u16 = 1 << 1;
const FLAG_REFINED: u16 = 1 << 2;
const FLAG_MASK: u16 = FLAG_PACK_A | FLAG_PACK_B | FLAG_REFINED;

/// One tuned shape: the winning plan knobs plus the evidence
/// (simulated cycles, tuning gain baseline, observed traffic).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanEntry {
    /// Rows of `A`/`C`.
    pub m: u32,
    /// Columns of `B`/`C`.
    pub n: u32,
    /// Inner dimension.
    pub k: u32,
    /// Winning register-tile rows.
    pub mr: u16,
    /// Winning register-tile columns.
    pub nr: u16,
    /// Winning `A`-packing decision.
    pub pack_a: bool,
    /// Winning `B`-packing decision.
    pub pack_b: bool,
    /// True when this entry came from an online refinement delta
    /// rather than the offline sweep.
    pub refined: bool,
    /// Element size the entry was tuned for (4 = f32, 8 = f64).
    pub elem_bytes: u16,
    /// Simulated cycles of the winning plan.
    pub cycles: u64,
    /// Simulated cycles of the heuristic plan (the tuning baseline).
    pub heuristic_cycles: u64,
    /// Cumulative observed calls for this shape (serving popularity;
    /// drives pre-warming).
    pub traffic: u64,
}

impl PlanEntry {
    /// The sort/lookup key.
    pub fn key(&self) -> (u32, u32, u32) {
        (self.m, self.n, self.k)
    }

    /// Tuning gain over the heuristic baseline (1.0 = no gain).
    pub fn gain(&self) -> f64 {
        if self.cycles == 0 {
            1.0
        } else {
            self.heuristic_cycles as f64 / self.cycles as f64
        }
    }

    fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.m.to_le_bytes());
        out.extend_from_slice(&self.n.to_le_bytes());
        out.extend_from_slice(&self.k.to_le_bytes());
        out.extend_from_slice(&self.mr.to_le_bytes());
        out.extend_from_slice(&self.nr.to_le_bytes());
        let mut flags = 0u16;
        if self.pack_a {
            flags |= FLAG_PACK_A;
        }
        if self.pack_b {
            flags |= FLAG_PACK_B;
        }
        if self.refined {
            flags |= FLAG_REFINED;
        }
        out.extend_from_slice(&flags.to_le_bytes());
        out.extend_from_slice(&self.elem_bytes.to_le_bytes());
        out.extend_from_slice(&self.cycles.to_le_bytes());
        out.extend_from_slice(&self.heuristic_cycles.to_le_bytes());
        out.extend_from_slice(&self.traffic.to_le_bytes());
    }

    fn decode(bytes: &[u8], index: usize) -> Result<PlanEntry, PlanDbError> {
        debug_assert_eq!(bytes.len(), ENTRY_BYTES);
        let u32_at = |o: usize| u32::from_le_bytes(bytes[o..o + 4].try_into().expect("sized"));
        let u16_at = |o: usize| u16::from_le_bytes(bytes[o..o + 2].try_into().expect("sized"));
        let u64_at = |o: usize| u64::from_le_bytes(bytes[o..o + 8].try_into().expect("sized"));
        let bad = |reason: &'static str| PlanDbError::BadEntry { index, reason };
        let (m, n, k) = (u32_at(0), u32_at(4), u32_at(8));
        if m == 0 || n == 0 || k == 0 {
            return Err(bad("zero dimension"));
        }
        if m > MAX_DIM || n > MAX_DIM || k > MAX_DIM {
            return Err(bad("dimension above cap"));
        }
        let (mr, nr) = (u16_at(12), u16_at(14));
        if mr == 0 || nr == 0 || mr > MAX_TILE || nr > MAX_TILE {
            return Err(bad("register tile out of range"));
        }
        let flags = u16_at(16);
        if flags & !FLAG_MASK != 0 {
            return Err(bad("unknown flag bits"));
        }
        let elem_bytes = u16_at(18);
        if elem_bytes != 4 && elem_bytes != 8 {
            return Err(bad("unsupported element size"));
        }
        Ok(PlanEntry {
            m,
            n,
            k,
            mr,
            nr,
            pack_a: flags & FLAG_PACK_A != 0,
            pack_b: flags & FLAG_PACK_B != 0,
            refined: flags & FLAG_REFINED != 0,
            elem_bytes,
            cycles: u64_at(20),
            heuristic_cycles: u64_at(28),
            traffic: u64_at(36),
        })
    }
}

/// Everything that can be wrong with a database file — the decoder's
/// entire failure surface, typed. No variant panics; `Io` carries the
/// rendered OS error so the type stays comparable in tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanDbError {
    /// Reading or writing the file failed at the OS level.
    Io(String),
    /// Shorter than the fixed header.
    TooShort {
        /// Bytes actually present.
        len: usize,
    },
    /// First 8 bytes are not the database magic.
    BadMagic,
    /// Version field names a format this build cannot read.
    UnsupportedVersion {
        /// Version found in the file.
        found: u32,
    },
    /// The ISA tag does not name any shipped [`VectorIsa`].
    UnknownIsaTag {
        /// The unrecognized tag value.
        tag: u32,
    },
    /// The database was built for a different vector ISA than the one
    /// the runtime is configured for.
    IsaMismatch {
        /// ISA the database was swept under.
        db: &'static str,
        /// ISA the loading runtime targets.
        active: &'static str,
    },
    /// Entry count exceeds [`MAX_DB_ENTRIES`].
    TooManyEntries {
        /// Count found in the header.
        count: u32,
    },
    /// File length disagrees with the header's entry count (truncated
    /// or trailing bytes).
    LengthMismatch {
        /// Bytes the header promises.
        expected: usize,
        /// Bytes actually present.
        found: usize,
    },
    /// Stored checksum does not match the payload.
    ChecksumMismatch {
        /// Checksum recorded in the header.
        stored: u64,
        /// Checksum computed over the payload.
        computed: u64,
    },
    /// An entry failed validation (zero/oversized dimension, bad tile,
    /// unknown flags, unsorted or duplicate key, …).
    BadEntry {
        /// Index of the offending entry.
        index: usize,
        /// What was wrong with it.
        reason: &'static str,
    },
}

impl std::fmt::Display for PlanDbError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanDbError::Io(e) => write!(f, "plan database I/O error: {e}"),
            PlanDbError::TooShort { len } => {
                write!(
                    f,
                    "plan database too short: {len} bytes < {HEADER_BYTES}-byte header"
                )
            }
            PlanDbError::BadMagic => write!(f, "not a plan database (bad magic)"),
            PlanDbError::UnsupportedVersion { found } => {
                write!(
                    f,
                    "unsupported plan database version {found} (supported: {FORMAT_VERSION})"
                )
            }
            PlanDbError::UnknownIsaTag { tag } => {
                write!(f, "plan database carries unknown vector-ISA tag {tag}")
            }
            PlanDbError::IsaMismatch { db, active } => write!(
                f,
                "plan database was built for ISA {db} but the runtime targets {active}"
            ),
            PlanDbError::TooManyEntries { count } => {
                write!(
                    f,
                    "plan database claims {count} entries (cap {MAX_DB_ENTRIES})"
                )
            }
            PlanDbError::LengthMismatch { expected, found } => write!(
                f,
                "plan database length mismatch: header promises {expected} bytes, file has {found}"
            ),
            PlanDbError::ChecksumMismatch { stored, computed } => write!(
                f,
                "plan database checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
            ),
            PlanDbError::BadEntry { index, reason } => {
                write!(f, "plan database entry {index} invalid: {reason}")
            }
        }
    }
}

impl std::error::Error for PlanDbError {}

/// FNV-1a over the header's mutable fields and the payload — cheap,
/// dependency-free, and plenty to catch truncation/bit-rot (integrity,
/// not authentication).
fn fnv1a(chunks: &[&[u8]]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for chunk in chunks {
        for &b in *chunk {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// An in-memory shape→plan database: entries sorted by `(m, n, k)` for
/// binary-search exact lookup, linear-scanned for nearest-neighbor
/// matching (sweeps are a few hundred to a few thousand entries).
#[derive(Debug, Clone)]
pub struct PlanDb {
    isa: VectorIsa,
    entries: Vec<PlanEntry>,
    /// Per-entry [`log_key`](crate::matcher::log_key) cache, parallel
    /// to `entries`. The nearest-neighbor scan runs on every runtime
    /// plan-cache miss; without the cache, three logarithms per entry
    /// per lookup dominate the cold-start plan path.
    log_keys: Vec<[f64; 3]>,
}

/// Equality ignores the derived `log_keys` cache (a pure function of
/// the entries), which also keeps `Eq` sound despite the `f64`s.
impl PartialEq for PlanDb {
    fn eq(&self, other: &Self) -> bool {
        self.isa == other.isa && self.entries == other.entries
    }
}

impl Eq for PlanDb {}

fn entry_log_key(e: &PlanEntry) -> [f64; 3] {
    crate::matcher::log_key((e.m as usize, e.n as usize, e.k as usize))
}

impl PlanDb {
    /// An empty database for `isa`.
    pub fn new(isa: VectorIsa) -> Self {
        PlanDb {
            isa,
            entries: Vec::new(),
            log_keys: Vec::new(),
        }
    }

    /// Build from unsorted entries; sorts by key and rejects duplicate
    /// keys or over-cap counts with the same typed errors the decoder
    /// uses.
    pub fn from_entries(isa: VectorIsa, mut entries: Vec<PlanEntry>) -> Result<Self, PlanDbError> {
        if entries.len() > MAX_DB_ENTRIES as usize {
            return Err(PlanDbError::TooManyEntries {
                count: entries.len() as u32,
            });
        }
        entries.sort_by_key(PlanEntry::key);
        for i in 1..entries.len() {
            if entries[i - 1].key() == entries[i].key() {
                return Err(PlanDbError::BadEntry {
                    index: i,
                    reason: "duplicate shape key",
                });
            }
        }
        let log_keys = entries.iter().map(entry_log_key).collect();
        Ok(PlanDb {
            isa,
            entries,
            log_keys,
        })
    }

    /// The ISA this database was swept under.
    pub fn isa(&self) -> VectorIsa {
        self.isa
    }

    /// All entries, sorted by `(m, n, k)`.
    pub fn entries(&self) -> &[PlanEntry] {
        &self.entries
    }

    /// Number of stored shapes.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the database holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Exact lookup by shape.
    pub fn get(&self, m: usize, n: usize, k: usize) -> Option<&PlanEntry> {
        let key = (
            u32::try_from(m).ok()?,
            u32::try_from(n).ok()?,
            u32::try_from(k).ok()?,
        );
        self.entries
            .binary_search_by_key(&key, PlanEntry::key)
            .ok()
            .map(|i| &self.entries[i])
    }

    /// The stored entry nearest to `(m, n, k)` in log-space shape
    /// distance ([`log_distance`](crate::log_distance)), with that
    /// distance. `None` on an empty database. Scans the cached
    /// per-entry log keys, so the query pays for exactly three
    /// logarithms regardless of database size.
    pub fn nearest(&self, m: usize, n: usize, k: usize) -> Option<(&PlanEntry, f64)> {
        let q = crate::matcher::log_key((m, n, k));
        self.entries
            .iter()
            .zip(&self.log_keys)
            .map(|(e, l)| {
                let (dm, dn, dk) = (q[0] - l[0], q[1] - l[1], q[2] - l[2]);
                // Squared distance inside the scan; the square root is
                // monotonic, so one sqrt on the winner suffices.
                (e, dm * dm + dn * dn + dk * dk)
            })
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .map(|(e, d2)| (e, d2.sqrt()))
    }

    /// Insert or replace the entry for its shape key, keeping the sort
    /// invariant. Replacing preserves accumulated traffic.
    pub fn upsert(&mut self, entry: PlanEntry) {
        match self
            .entries
            .binary_search_by_key(&entry.key(), PlanEntry::key)
        {
            Ok(i) => {
                let traffic = self.entries[i].traffic;
                self.entries[i] = entry;
                self.entries[i].traffic = self.entries[i].traffic.max(traffic);
            }
            Err(i) => {
                self.log_keys.insert(i, entry_log_key(&entry));
                self.entries.insert(i, entry);
            }
        }
    }

    /// Add observed calls to a shape's traffic count. Returns whether
    /// the shape was present.
    pub fn add_traffic(&mut self, m: usize, n: usize, k: usize, calls: u64) -> bool {
        let Ok(key) = u32::try_from(m).and_then(|m| Ok((m, u32::try_from(n)?, u32::try_from(k)?)))
        else {
            return false;
        };
        match self.entries.binary_search_by_key(&key, PlanEntry::key) {
            Ok(i) => {
                let e = &mut self.entries[i];
                e.traffic = e.traffic.saturating_add(calls);
                true
            }
            Err(_) => false,
        }
    }

    /// The `limit` hottest shapes by recorded traffic (ties broken by
    /// key order), hottest first. Shapes with zero traffic are skipped.
    pub fn top_by_traffic(&self, limit: usize) -> Vec<(usize, usize, usize)> {
        let mut hot: Vec<&PlanEntry> = self.entries.iter().filter(|e| e.traffic > 0).collect();
        hot.sort_by(|a, b| b.traffic.cmp(&a.traffic).then(a.key().cmp(&b.key())));
        hot.into_iter()
            .take(limit)
            .map(|e| (e.m as usize, e.n as usize, e.k as usize))
            .collect()
    }

    /// Serialize to the canonical byte form (sorted entries, so equal
    /// databases encode to equal bytes).
    pub fn encode(&self) -> Vec<u8> {
        let mut payload = Vec::with_capacity(self.entries.len() * ENTRY_BYTES);
        for e in &self.entries {
            e.encode_into(&mut payload);
        }
        let version = FORMAT_VERSION.to_le_bytes();
        let isa = self.isa.tag().to_le_bytes();
        let count = (self.entries.len() as u32).to_le_bytes();
        let checksum = fnv1a(&[&version, &isa, &count, &payload]);
        let mut out = Vec::with_capacity(HEADER_BYTES + payload.len());
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&version);
        out.extend_from_slice(&isa);
        out.extend_from_slice(&count);
        out.extend_from_slice(&checksum.to_le_bytes());
        out.extend_from_slice(&payload);
        out
    }

    /// Total decoder: every failure is a typed [`PlanDbError`], and no
    /// input can panic or over-allocate.
    pub fn decode(bytes: &[u8]) -> Result<PlanDb, PlanDbError> {
        if bytes.len() < HEADER_BYTES {
            return Err(PlanDbError::TooShort { len: bytes.len() });
        }
        if bytes[0..8] != MAGIC {
            return Err(PlanDbError::BadMagic);
        }
        let u32_at = |o: usize| u32::from_le_bytes(bytes[o..o + 4].try_into().expect("sized"));
        let version = u32_at(8);
        if version != FORMAT_VERSION {
            return Err(PlanDbError::UnsupportedVersion { found: version });
        }
        let tag = u32_at(12);
        let isa = VectorIsa::from_tag(tag).ok_or(PlanDbError::UnknownIsaTag { tag })?;
        let count = u32_at(16);
        if count > MAX_DB_ENTRIES {
            return Err(PlanDbError::TooManyEntries { count });
        }
        let stored = u64::from_le_bytes(bytes[20..28].try_into().expect("sized"));
        let expected = HEADER_BYTES + count as usize * ENTRY_BYTES;
        if bytes.len() != expected {
            return Err(PlanDbError::LengthMismatch {
                expected,
                found: bytes.len(),
            });
        }
        let payload = &bytes[HEADER_BYTES..];
        let computed = fnv1a(&[&bytes[8..12], &bytes[12..16], &bytes[16..20], payload]);
        if stored != computed {
            return Err(PlanDbError::ChecksumMismatch { stored, computed });
        }
        let mut entries = Vec::with_capacity(count as usize);
        for i in 0..count as usize {
            let e = PlanEntry::decode(&payload[i * ENTRY_BYTES..(i + 1) * ENTRY_BYTES], i)?;
            if let Some(prev) = entries.last() {
                let prev: &PlanEntry = prev;
                if prev.key() >= e.key() {
                    return Err(PlanDbError::BadEntry {
                        index: i,
                        reason: "entries not strictly sorted by shape key",
                    });
                }
            }
            entries.push(e);
        }
        let log_keys = entries.iter().map(entry_log_key).collect();
        Ok(PlanDb {
            isa,
            entries,
            log_keys,
        })
    }

    /// Load a database file (no ISA expectation).
    pub fn load(path: &Path) -> Result<PlanDb, PlanDbError> {
        let bytes = std::fs::read(path).map_err(|e| PlanDbError::Io(e.to_string()))?;
        Self::decode(&bytes)
    }

    /// Load a database file and require it to target `active`; a
    /// foreign-ISA database is rejected with
    /// [`PlanDbError::IsaMismatch`] — tuned kernel choices do not
    /// transfer across vector widths.
    pub fn load_for(path: &Path, active: VectorIsa) -> Result<PlanDb, PlanDbError> {
        let db = Self::load(path)?;
        if db.isa != active {
            return Err(PlanDbError::IsaMismatch {
                db: db.isa.name,
                active: active.name,
            });
        }
        Ok(db)
    }

    /// Write the canonical encoding to `path`.
    pub fn save(&self, path: &Path) -> Result<(), PlanDbError> {
        std::fs::write(path, self.encode()).map_err(|e| PlanDbError::Io(e.to_string()))
    }

    /// Reconcile several databases (e.g. one persisted delta file per
    /// serving shard) into one.
    ///
    /// Every input must target the same ISA — tuned kernel choices do
    /// not transfer across vector widths, so a foreign-ISA input is a
    /// typed [`PlanDbError::IsaMismatch`], exactly like
    /// [`PlanDb::load_for`]. For a shape present in several inputs the
    /// plan knobs of the **most-trafficked** entry win (the shard that
    /// actually served the shape knows best); its traffic field
    /// becomes the saturating **sum** across all inputs, since each
    /// shard counted disjoint calls. Ties are broken deterministically
    /// — fewer simulated cycles, then `refined` over unrefined, then
    /// earliest input — so merging the same files always produces
    /// bit-identical output (the canonical sorted encoding does the
    /// rest).
    pub fn merge(inputs: &[PlanDb]) -> Result<PlanDb, PlanDbError> {
        let Some(first) = inputs.first() else {
            return Err(PlanDbError::Io("nothing to merge: no inputs".into()));
        };
        for db in inputs {
            if db.isa != first.isa {
                return Err(PlanDbError::IsaMismatch {
                    db: db.isa.name,
                    active: first.isa.name,
                });
            }
        }
        // (winning entry, summed traffic) per shape key; BTreeMap keeps
        // the output order canonical independent of input order.
        let mut merged: std::collections::BTreeMap<(u32, u32, u32), (PlanEntry, u64)> =
            std::collections::BTreeMap::new();
        for db in inputs {
            for e in &db.entries {
                match merged.entry(e.key()) {
                    std::collections::btree_map::Entry::Vacant(v) => {
                        v.insert((e.clone(), e.traffic));
                    }
                    std::collections::btree_map::Entry::Occupied(mut o) => {
                        let (winner, total) = o.get_mut();
                        *total = total.saturating_add(e.traffic);
                        let challenger_wins = e.traffic > winner.traffic
                            || (e.traffic == winner.traffic
                                && (e.cycles < winner.cycles
                                    || (e.cycles == winner.cycles
                                        && e.refined
                                        && !winner.refined)));
                        if challenger_wins {
                            *winner = e.clone();
                        }
                    }
                }
            }
        }
        if merged.len() > MAX_DB_ENTRIES as usize {
            return Err(PlanDbError::TooManyEntries {
                count: merged.len() as u32,
            });
        }
        let entries: Vec<PlanEntry> = merged
            .into_values()
            .map(|(mut winner, total)| {
                winner.traffic = total;
                winner
            })
            .collect();
        // Keys came from a BTreeMap, so they are strictly sorted and
        // unique; from_entries re-checks and rebuilds the log-key cache.
        PlanDb::from_entries(first.isa, entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(m: u32, n: u32, k: u32) -> PlanEntry {
        PlanEntry {
            m,
            n,
            k,
            mr: 8,
            nr: 4,
            pack_a: false,
            pack_b: true,
            refined: false,
            elem_bytes: 4,
            cycles: 100 + u64::from(m),
            heuristic_cycles: 150 + u64::from(m),
            traffic: 0,
        }
    }

    fn sample_db() -> PlanDb {
        PlanDb::from_entries(
            VectorIsa::neon128(),
            vec![entry(8, 8, 8), entry(4, 4, 4), entry(16, 8, 32)],
        )
        .unwrap()
    }

    #[test]
    fn round_trip_is_bit_identical() {
        let db = sample_db();
        let bytes = db.encode();
        let decoded = PlanDb::decode(&bytes).unwrap();
        assert_eq!(decoded.entries(), db.entries());
        assert_eq!(decoded.isa(), db.isa());
        assert_eq!(decoded.encode(), bytes, "canonical encoding");
    }

    #[test]
    fn exact_lookup_and_nearest() {
        let db = sample_db();
        assert_eq!(db.get(8, 8, 8).unwrap().key(), (8, 8, 8));
        assert!(db.get(9, 8, 8).is_none());
        let (e, d) = db.nearest(9, 8, 8).unwrap();
        assert_eq!(e.key(), (8, 8, 8));
        assert!(d > 0.0 && d < 0.2, "{d}");
        let (e, d) = db.nearest(4, 4, 4).unwrap();
        assert_eq!(e.key(), (4, 4, 4));
        assert_eq!(d, 0.0);
    }

    #[test]
    fn nearest_matches_log_distance_after_upserts() {
        // The scan runs on cached log keys; the cache must stay in
        // sync through upserts and report exactly `log_distance`.
        let mut db = sample_db();
        db.upsert(entry(32, 4, 8));
        db.upsert(entry(8, 8, 8));
        for query in [(5, 9, 30), (8, 8, 8), (64, 64, 64)] {
            let (e, d) = db.nearest(query.0, query.1, query.2).unwrap();
            let direct =
                crate::matcher::log_distance(query, (e.m as usize, e.n as usize, e.k as usize));
            assert_eq!(d, direct, "query {query:?}");
            let best = db
                .entries()
                .iter()
                .map(|o| {
                    crate::matcher::log_distance(query, (o.m as usize, o.n as usize, o.k as usize))
                })
                .fold(f64::INFINITY, f64::min);
            assert_eq!(d, best, "query {query:?}");
        }
    }

    #[test]
    fn upsert_replaces_and_keeps_sort_and_traffic() {
        let mut db = sample_db();
        db.add_traffic(8, 8, 8, 41);
        let mut e = entry(8, 8, 8);
        e.mr = 16;
        e.refined = true;
        db.upsert(e);
        let got = db.get(8, 8, 8).unwrap();
        assert_eq!(got.mr, 16);
        assert!(got.refined);
        assert_eq!(got.traffic, 41, "traffic survives refinement");
        db.upsert(entry(5, 5, 5));
        assert_eq!(db.len(), 4);
        let keys: Vec<_> = db.entries().iter().map(PlanEntry::key).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
    }

    #[test]
    fn traffic_ranks_hot_shapes() {
        let mut db = sample_db();
        assert!(db.top_by_traffic(8).is_empty(), "no traffic yet");
        assert!(db.add_traffic(8, 8, 8, 10));
        assert!(db.add_traffic(4, 4, 4, 99));
        assert!(!db.add_traffic(7, 7, 7, 5), "absent shape");
        assert_eq!(db.top_by_traffic(8), vec![(4, 4, 4), (8, 8, 8)]);
        assert_eq!(db.top_by_traffic(1), vec![(4, 4, 4)]);
    }

    #[test]
    fn duplicate_keys_are_rejected() {
        let err = PlanDb::from_entries(VectorIsa::neon128(), vec![entry(4, 4, 4), entry(4, 4, 4)])
            .unwrap_err();
        assert!(matches!(err, PlanDbError::BadEntry { .. }), "{err}");
    }

    #[test]
    fn header_corruptions_are_typed() {
        let bytes = sample_db().encode();
        assert_eq!(
            PlanDb::decode(&bytes[..10]),
            Err(PlanDbError::TooShort { len: 10 })
        );
        let mut b = bytes.clone();
        b[0] ^= 0xFF;
        assert_eq!(PlanDb::decode(&b), Err(PlanDbError::BadMagic));
        let mut b = bytes.clone();
        b[8] = 9;
        assert!(matches!(
            PlanDb::decode(&b),
            Err(PlanDbError::UnsupportedVersion { found: 9 })
        ));
        let mut b = bytes.clone();
        b[12] = 0xAA;
        assert!(matches!(
            PlanDb::decode(&b),
            Err(PlanDbError::UnknownIsaTag { .. })
        ));
        let mut b = bytes.clone();
        b[16..20].copy_from_slice(&(MAX_DB_ENTRIES + 1).to_le_bytes());
        assert!(matches!(
            PlanDb::decode(&b),
            Err(PlanDbError::TooManyEntries { .. })
        ));
        let mut b = bytes.clone();
        b.truncate(bytes.len() - 1);
        assert!(matches!(
            PlanDb::decode(&b),
            Err(PlanDbError::LengthMismatch { .. })
        ));
        let mut b = bytes.clone();
        let last = b.len() - 1;
        b[last] ^= 0x01;
        assert!(matches!(
            PlanDb::decode(&b),
            Err(PlanDbError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn load_for_rejects_foreign_isa() {
        let dir = std::env::temp_dir().join(format!("smm-tune-db-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("neon.smmdb");
        sample_db().save(&path).unwrap();
        let ok = PlanDb::load_for(&path, VectorIsa::neon128()).unwrap();
        assert_eq!(ok.len(), 3);
        let err = PlanDb::load_for(&path, VectorIsa::sve256()).unwrap_err();
        assert_eq!(
            err,
            PlanDbError::IsaMismatch {
                db: "neon128",
                active: "sve256"
            }
        );
        let missing = PlanDb::load(&dir.join("absent.smmdb")).unwrap_err();
        assert!(matches!(missing, PlanDbError::Io(_)));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn merge_reconciles_by_traffic_and_sums_it() {
        let mut a = entry(4, 4, 4);
        a.mr = 8;
        a.traffic = 10;
        let mut b = entry(4, 4, 4);
        b.mr = 16;
        b.traffic = 90;
        let only_a = entry(8, 8, 8);
        let only_b = entry(16, 8, 32);
        let db_a = PlanDb::from_entries(VectorIsa::neon128(), vec![a, only_a.clone()]).unwrap();
        let db_b = PlanDb::from_entries(VectorIsa::neon128(), vec![b, only_b.clone()]).unwrap();
        let merged = PlanDb::merge(&[db_a.clone(), db_b.clone()]).unwrap();
        assert_eq!(merged.len(), 3);
        let hot = merged.get(4, 4, 4).unwrap();
        assert_eq!(hot.mr, 16, "most-traffic entry's knobs win");
        assert_eq!(hot.traffic, 100, "traffic sums across inputs");
        assert_eq!(merged.get(8, 8, 8).unwrap(), &only_a);
        assert_eq!(merged.get(16, 8, 32).unwrap(), &only_b);
        // Deterministic: input order changes neither knobs nor bytes.
        let flipped = PlanDb::merge(&[db_b, db_a]).unwrap();
        assert_eq!(flipped.encode(), merged.encode());
    }

    #[test]
    fn merge_ties_break_on_cycles_then_refined() {
        let mut slow = entry(4, 4, 4);
        slow.traffic = 5;
        slow.cycles = 200;
        let mut fast = entry(4, 4, 4);
        fast.traffic = 5;
        fast.cycles = 90;
        fast.nr = 8;
        let a = PlanDb::from_entries(VectorIsa::neon128(), vec![slow]).unwrap();
        let b = PlanDb::from_entries(VectorIsa::neon128(), vec![fast]).unwrap();
        let merged = PlanDb::merge(&[a, b]).unwrap();
        let got = merged.get(4, 4, 4).unwrap();
        assert_eq!(got.cycles, 90, "equal traffic: fewer cycles wins");
        assert_eq!(got.nr, 8);
        assert_eq!(got.traffic, 10);
    }

    #[test]
    fn merge_rejects_foreign_isa_and_empty_input() {
        let neon = sample_db();
        let sve = PlanDb::new(VectorIsa::sve256());
        assert_eq!(
            PlanDb::merge(&[neon.clone(), sve]).unwrap_err(),
            PlanDbError::IsaMismatch {
                db: "sve256",
                active: "neon128"
            }
        );
        assert!(matches!(
            PlanDb::merge(&[]).unwrap_err(),
            PlanDbError::Io(_)
        ));
        let solo = PlanDb::merge(std::slice::from_ref(&neon)).unwrap();
        assert_eq!(solo, neon, "merging one database is the identity");
    }

    #[test]
    fn empty_db_round_trips() {
        let db = PlanDb::new(VectorIsa::sve512());
        let decoded = PlanDb::decode(&db.encode()).unwrap();
        assert!(decoded.is_empty());
        assert_eq!(decoded.isa(), VectorIsa::sve512());
        assert!(decoded.nearest(4, 4, 4).is_none());
    }
}
