//! `smm-tune` — the persistent half of the two-stage autotuning scheme.
//!
//! The paper's premise is that small-GEMM performance hinges on picking
//! the right blocking and kernel per shape, and IAAT (Yao et al.)
//! shows how to stop re-deriving that choice on every process start:
//! an **offline** install-time sweep measures the candidate space once
//! and writes a persistent shape→plan database; the **runtime** stage
//! then answers plan lookups from that database, nearest-neighbor
//! matching unseen shapes in log space before paying for full online
//! tuning, and records its online refinements as deltas to persist.
//!
//! This crate owns the pieces that must be shared between the sweep
//! binary, the `smm-core` runtime and the tooling, without depending
//! on any of them:
//!
//! * [`db`] — the versioned, checksummed on-disk format
//!   ([`PlanDb`]/[`PlanEntry`]) with a *total* decoder: corrupt,
//!   truncated, foreign-ISA or over-cap files load as typed
//!   [`PlanDbError`]s, never panics (the same discipline as the serve
//!   wire protocol).
//! * [`matcher`] — the log-space shape distance used for
//!   nearest-neighbor matching, and the acceptance threshold.
//! * [`sweep`] — geometric sweep grids covering the *rectangular*
//!   (m, n, k) space (per Deshmukh et al., squares alone are not
//!   representative), with an explicit coverage-radius guarantee that
//!   pairs with the matcher threshold.
//! * [`delta`] — the runtime's buffer of online-refinement deltas,
//!   synchronized through the `smm_sync::sync` facade so it is
//!   model-checkable like every other concurrent structure in the
//!   workspace.

#![deny(missing_docs)]

pub mod db;
pub mod delta;
pub mod matcher;
pub mod sweep;

pub use db::{PlanDb, PlanDbError, PlanEntry, FORMAT_VERSION, MAX_DB_ENTRIES, MAX_DIM};
pub use delta::DeltaBuffer;
pub use matcher::{log_distance, log_key, DEFAULT_NN_THRESHOLD};
pub use sweep::SweepGrid;
