//! The runtime's buffer of online-refinement deltas awaiting
//! persistence.
//!
//! When the input-aware stage falls through to full online tuning, the
//! winning plan is worth keeping: it is recorded here as a refined
//! [`PlanEntry`] delta, and a flush drains the buffer into the plan
//! database and rewrites the file. The buffer is shared between every
//! thread that can trigger tuning and the (single) flusher, so it goes
//! through the `smm_sync::sync` facade and carries a model-check
//! protocol (`delta_buffer` in `smm-analyze`'s exhaustive explorer)
//! proving no recorded delta is ever lost: at every quiescent point,
//! `recorded == drained + pending`.

use smm_sync::sync::atomic::{AtomicU64, Ordering};
use smm_sync::sync::Mutex;

use crate::db::PlanEntry;

/// A mutex-guarded vector of pending deltas plus a monotonic count of
/// everything ever recorded (survives drains, so stats can report
/// lifetime refinement activity).
#[derive(Debug)]
pub struct DeltaBuffer {
    deltas: Mutex<Vec<PlanEntry>>,
    // relaxed — monotonic counter, read only for reporting.
    recorded: AtomicU64,
}

// Manual because the model-check facade's `Mutex` shim does not
// implement `Default`.
impl Default for DeltaBuffer {
    fn default() -> Self {
        Self::new()
    }
}

impl DeltaBuffer {
    /// An empty buffer.
    pub fn new() -> Self {
        DeltaBuffer {
            deltas: Mutex::new(Vec::new()),
            recorded: AtomicU64::new(0),
        }
    }

    /// Record one refinement delta for a later flush.
    pub fn record(&self, entry: PlanEntry) {
        self.deltas.lock().unwrap().push(entry);
        // relaxed — monotonic counter, read only for reporting.
        self.recorded.fetch_add(1, Ordering::Relaxed);
    }

    /// Take every pending delta, leaving the buffer empty. The mutex
    /// makes record/drain atomic with respect to each other: a delta
    /// is either in exactly one drain's result or still pending, never
    /// both or neither.
    pub fn drain(&self) -> Vec<PlanEntry> {
        std::mem::take(&mut *self.deltas.lock().unwrap())
    }

    /// Number of deltas currently awaiting a flush.
    pub fn len(&self) -> usize {
        self.deltas.lock().unwrap().len()
    }

    /// Whether no deltas are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lifetime count of recorded deltas (monotonic, not reset by
    /// drains).
    pub fn recorded(&self) -> u64 {
        // relaxed — monotonic counter, read only for reporting.
        self.recorded.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(m: u32) -> PlanEntry {
        PlanEntry {
            m,
            n: 4,
            k: 4,
            mr: 8,
            nr: 4,
            pack_a: false,
            pack_b: false,
            refined: true,
            elem_bytes: 4,
            cycles: 10,
            heuristic_cycles: 12,
            traffic: 0,
        }
    }

    #[test]
    fn record_drain_accounting() {
        let buf = DeltaBuffer::new();
        assert!(buf.is_empty());
        buf.record(entry(4));
        buf.record(entry(8));
        assert_eq!(buf.len(), 2);
        assert_eq!(buf.recorded(), 2);
        let drained = buf.drain();
        assert_eq!(drained.len(), 2);
        assert!(buf.is_empty());
        assert_eq!(buf.recorded(), 2, "lifetime count survives drain");
        buf.record(entry(16));
        assert_eq!(buf.recorded(), 3);
        assert_eq!(buf.drain().len(), 1);
    }

    #[test]
    fn concurrent_recorders_lose_nothing() {
        let buf = DeltaBuffer::new();
        let drained = std::sync::Mutex::new(Vec::new());
        std::thread::scope(|s| {
            for t in 0..4 {
                let buf = &buf;
                s.spawn(move || {
                    for i in 0..50 {
                        buf.record(entry(t * 100 + i));
                    }
                });
            }
            let buf = &buf;
            let drained = &drained;
            s.spawn(move || {
                for _ in 0..20 {
                    drained.lock().unwrap().extend(buf.drain());
                    std::thread::yield_now();
                }
            });
        });
        let mut all = drained.into_inner().unwrap();
        all.extend(buf.drain());
        assert_eq!(all.len(), 200);
        assert_eq!(buf.recorded(), 200);
    }
}
