//! Log-space shape distance for input-aware nearest-neighbor matching.
//!
//! IAAT's runtime stage matches an unseen shape against the swept grid
//! before paying for online tuning. The metric must treat relative —
//! not absolute — size differences as what matters: (4,4,4)→(8,8,8)
//! doubles every dimension and usually changes the best plan, while
//! (500,500,500)→(504,504,504) is a rounding error even though its
//! absolute delta is the same. Euclidean distance between
//! log-dimensions captures exactly that, and makes the geometric sweep
//! grid ([`crate::sweep::SweepGrid`]) uniformly spaced under the
//! metric.

/// Euclidean distance between two shapes in log space:
/// `sqrt(Σᵢ (ln aᵢ − ln bᵢ)²)` over (m, n, k).
///
/// Zero iff the shapes are equal; a distance of `ln 2 ≈ 0.69` on one
/// axis means that dimension differs by 2×. Zero-valued dimensions are
/// clamped to 1 so the metric stays total (shape validation elsewhere
/// rejects them anyway).
pub fn log_distance(a: (usize, usize, usize), b: (usize, usize, usize)) -> f64 {
    let d = |x: usize, y: usize| (x.max(1) as f64).ln() - (y.max(1) as f64).ln();
    let (dm, dn, dk) = (d(a.0, b.0), d(a.1, b.1), d(a.2, b.2));
    (dm * dm + dn * dn + dk * dk).sqrt()
}

/// The log-space embedding of a shape: `[ln m, ln n, ln k]`, zero
/// dimensions clamped to 1 exactly as in [`log_distance`], so the
/// Euclidean distance between two embeddings equals
/// `log_distance(a, b)`. [`crate::PlanDb`] caches this per entry:
/// the nearest-neighbor scan runs on every runtime plan-cache miss,
/// and recomputing three logarithms per entry per lookup dominated
/// the cold-start plan path.
pub fn log_key(shape: (usize, usize, usize)) -> [f64; 3] {
    let l = |x: usize| (x.max(1) as f64).ln();
    [l(shape.0), l(shape.1), l(shape.2)]
}

/// Default acceptance threshold for a nearest-neighbor match.
///
/// A swept geometric grid with ratio `r` between adjacent axis points
/// leaves a worst-case corner at distance `√3·ln(r)/2` from its
/// nearest grid shape. The default sweep (6 points over 4..64,
/// `r ≈ 1.74`) gives ≈ 0.48, so 0.6 accepts every in-range query while
/// still rejecting shapes more than ~2× outside the swept envelope,
/// which fall through to online tuning instead of borrowing a poorly
/// matched plan.
pub const DEFAULT_NN_THRESHOLD: f64 = 0.6;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_and_symmetry() {
        assert_eq!(log_distance((8, 8, 8), (8, 8, 8)), 0.0);
        let d1 = log_distance((4, 8, 16), (16, 8, 4));
        let d2 = log_distance((16, 8, 4), (4, 8, 16));
        assert!((d1 - d2).abs() < 1e-12);
    }

    #[test]
    fn relative_not_absolute() {
        // +4 on a small shape is a big move; +4 on a large one is not.
        let small = log_distance((4, 4, 4), (8, 8, 8));
        let large = log_distance((500, 500, 500), (504, 504, 504));
        assert!(small > 1.0, "{small}");
        assert!(large < 0.05, "{large}");
    }

    #[test]
    fn doubling_one_axis_is_ln2() {
        let d = log_distance((8, 8, 8), (16, 8, 8));
        assert!((d - std::f64::consts::LN_2).abs() < 1e-12, "{d}");
    }

    #[test]
    fn zero_dims_do_not_panic() {
        assert!(log_distance((0, 4, 4), (1, 4, 4)).is_finite());
    }
}
