//! Fuzz the plan-database decoder with the same xorshift
//! truncation/mutation harness the serve wire protocol uses: random
//! payloads, mutated valid databases, and header-targeted corruption
//! must all come back as typed [`PlanDbError`]s — never a panic, and
//! never a silent acceptance of a modified file.

use smm_model::VectorIsa;
use smm_tune::{PlanDb, PlanDbError, PlanEntry};

/// xorshift64* — deterministic, dependency-free.
struct XorShift(u64);

impl XorShift {
    fn new(seed: u64) -> Self {
        XorShift(seed.max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound.max(1)
    }

    fn bytes(&mut self, len: usize) -> Vec<u8> {
        (0..len).map(|_| self.next() as u8).collect()
    }
}

fn sample_db(rng: &mut XorShift, entries: usize) -> PlanDb {
    let mut db = PlanDb::new(VectorIsa::neon128());
    for _ in 0..entries {
        db.upsert(PlanEntry {
            m: 1 + rng.below(64) as u32,
            n: 1 + rng.below(64) as u32,
            k: 1 + rng.below(64) as u32,
            mr: 1 + rng.below(32) as u16,
            nr: 1 + rng.below(16) as u16,
            pack_a: rng.below(2) == 0,
            pack_b: rng.below(2) == 0,
            refined: rng.below(2) == 0,
            elem_bytes: if rng.below(2) == 0 { 4 } else { 8 },
            cycles: rng.below(1 << 20),
            heuristic_cycles: rng.below(1 << 20),
            traffic: rng.below(1 << 10),
        });
    }
    db
}

#[test]
fn random_payloads_never_panic() {
    let mut rng = XorShift::new(0x5EED_DB01);
    for round in 0..2000 {
        let len = rng.below(512) as usize;
        let payload = rng.bytes(len);
        // Decoding must be total: any result is fine, panicking is not.
        let _ = PlanDb::decode(&payload);
        // Bias some rounds toward a valid prefix so decoding gets past
        // the magic check and exercises the header/entry validation.
        if round % 3 == 0 {
            let mut biased = b"SMMPLNDB".to_vec();
            biased.extend_from_slice(&payload);
            let _ = PlanDb::decode(&biased);
        }
    }
}

#[test]
fn truncations_of_valid_db_are_typed_errors() {
    let mut rng = XorShift::new(0x5EED_DB02);
    let bytes = sample_db(&mut rng, 20).encode();
    assert!(PlanDb::decode(&bytes).is_ok());
    for len in 0..bytes.len() {
        let err = PlanDb::decode(&bytes[..len]).expect_err("truncation must not decode");
        assert!(
            matches!(
                err,
                PlanDbError::TooShort { .. } | PlanDbError::LengthMismatch { .. }
            ),
            "truncated to {len}: unexpected {err:?}"
        );
    }
}

#[test]
fn mutations_of_valid_db_never_silently_accept() {
    let mut rng = XorShift::new(0x5EED_DB03);
    let db = sample_db(&mut rng, 12);
    let bytes = db.encode();
    for _ in 0..2000 {
        let mut mutated = bytes.clone();
        match rng.below(3) {
            // Flip a random bit.
            0 => {
                let i = rng.below(mutated.len() as u64) as usize;
                mutated[i] ^= 1 << rng.below(8);
            }
            // Truncate to a random prefix.
            1 => {
                let keep = rng.below(mutated.len() as u64) as usize;
                mutated.truncate(keep);
            }
            // Append random trailing bytes.
            _ => {
                let extra = 1 + rng.below(64) as usize;
                mutated.extend(rng.bytes(extra));
            }
        }
        if mutated == bytes {
            continue;
        }
        match PlanDb::decode(&mutated) {
            // The checksum covers everything after the magic, so any
            // accepted mutation can only have flipped magic-adjacent
            // bits that left the content identical — which the equality
            // check above already excluded. Accepting is a bug.
            Ok(_) => panic!("mutated database decoded successfully"),
            Err(e) => {
                // Errors must render; exercising Display is part of the
                // typed-error contract.
                let _ = e.to_string();
            }
        }
    }
}

#[test]
fn header_field_sweeps_are_typed() {
    let mut rng = XorShift::new(0x5EED_DB04);
    let bytes = sample_db(&mut rng, 5).encode();
    // Sweep each header field through random values; every outcome must
    // be a typed error (the checksum seals the header fields).
    for field in [8usize, 12, 16, 20] {
        for _ in 0..200 {
            let mut b = bytes.clone();
            let val = rng.next();
            let width = if field == 20 { 8 } else { 4 };
            b[field..field + width].copy_from_slice(&val.to_le_bytes()[..width]);
            if b == bytes {
                continue;
            }
            assert!(
                PlanDb::decode(&b).is_err(),
                "header field at {field} mutated yet decoded"
            );
        }
    }
}

#[test]
fn fuzzed_round_trips_stay_bit_identical() {
    let mut rng = XorShift::new(0x5EED_DB05);
    for entries in [0usize, 1, 7, 50, 300] {
        let db = sample_db(&mut rng, entries);
        let bytes = db.encode();
        let decoded = PlanDb::decode(&bytes).unwrap();
        assert_eq!(decoded.encode(), bytes, "{entries} entries");
        assert_eq!(decoded.entries(), db.entries());
    }
}
