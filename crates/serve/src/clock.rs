//! The serving layer's single clock access point.
//!
//! `smm-analyze` fences `Instant::now` so the untimed GEMM hot path
//! provably never reads the clock. The serving layer is different in
//! kind: wall time is part of its *semantics* — request deadlines and
//! the coalescing window are functional behaviour, not instrumentation.
//! Routing every read through this module keeps the analyzer's fence
//! narrow (this file is the crate's only allow-listed clock site) and
//! keeps the rest of the crate auditable: a clock read elsewhere in
//! `smm-serve` is a lint error.

use std::time::Instant;

/// Read the wall clock.
pub(crate) fn now() -> Instant {
    Instant::now()
}
