//! The length-prefixed binary wire protocol of the TCP front end.
//!
//! Every message is one *frame*: a little-endian `u32` payload length
//! followed by that many payload bytes. The payload starts with a
//! one-byte opcode:
//!
//! ```text
//! OP_REQUEST (1), client -> server:
//!   u8 opcode | u32 m | u32 n | u32 k | f32 alpha | f32 beta
//!   | u64 deadline_us (0 = none)
//!   | f32 a[m*k] | f32 b[k*n] | f32 c[m*n]          (little-endian)
//!
//! OP_REPLY_OK (2), server -> client:
//!   u8 opcode | u32 m | u32 n | f32 c[m*n]
//!
//! OP_REPLY_ERR (3), server -> client:
//!   u8 opcode | u8 code | u32 detail | u32 msg_len | utf8 msg
//!
//! OP_STATS (4), client -> server:
//!   u8 opcode | u8 format          (0 = text, 1 = JSON, 2 = Prometheus)
//!
//! OP_STATS_REPLY (5), server -> client:
//!   u8 opcode | u8 format | u32 body_len | utf8 body
//! ```
//!
//! The decoder is **total**: any byte sequence — truncated, oversized,
//! garbage opcode, inconsistent lengths — maps to a typed error, never
//! a panic. Dimensions are capped at [`MAX_DIM`] and payloads at
//! [`MAX_PAYLOAD`] so a hostile length prefix cannot force a huge
//! allocation. The wire format is `f32`-only; the in-process API stays
//! generic over [`Scalar`](smm_kernels::Scalar).

use std::io::{Read, Write};

use crate::request::{GemmRequest, Rejected};

/// Hard cap on one frame's payload length (16 MiB).
pub const MAX_PAYLOAD: usize = 1 << 24;
/// Hard cap on each of `m`, `n`, `k`.
pub const MAX_DIM: u32 = 4096;

/// Opcode of a client request frame.
pub const OP_REQUEST: u8 = 1;
/// Opcode of a successful reply frame.
pub const OP_REPLY_OK: u8 = 2;
/// Opcode of an error reply frame.
pub const OP_REPLY_ERR: u8 = 3;
/// Opcode of a telemetry scrape request.
pub const OP_STATS: u8 = 4;
/// Opcode of a telemetry scrape reply.
pub const OP_STATS_REPLY: u8 = 5;

/// [`OP_STATS`] format byte: human-readable text report.
pub const STATS_TEXT: u8 = 0;
/// [`OP_STATS`] format byte: JSON report.
pub const STATS_JSON: u8 = 1;
/// [`OP_STATS`] format byte: Prometheus exposition format.
pub const STATS_PROMETHEUS: u8 = 2;

/// Error code: admission queue full ([`Rejected::QueueFull`]); the
/// `detail` field carries the queue capacity.
pub const ERR_QUEUE_FULL: u8 = 1;
/// Error code: deadline passed before dispatch.
pub const ERR_DEADLINE: u8 = 2;
/// Error code: server shutting down.
pub const ERR_SHUTDOWN: u8 = 3;
/// Error code: request failed validation.
pub const ERR_INVALID: u8 = 4;
/// Error code: malformed or oversized frame.
pub const ERR_PROTOCOL: u8 = 5;
/// Error code: the server's concurrent connection limit was reached
/// ([`Rejected::Busy`]); the `detail` field carries the limit.
pub const ERR_BUSY: u8 = 6;

/// A decoded payload.
#[derive(Debug, Clone, PartialEq)]
pub enum WireMsg {
    /// A client GEMM request.
    Request(GemmRequest<f32>),
    /// A successful reply carrying the `m × n` result.
    ReplyOk {
        /// Rows of the result.
        m: u32,
        /// Columns of the result.
        n: u32,
        /// Column-major result values (`m * n` of them).
        c: Vec<f32>,
    },
    /// An error reply.
    ReplyErr {
        /// One of the `ERR_*` codes.
        code: u8,
        /// Code-specific detail (queue capacity for
        /// [`ERR_QUEUE_FULL`], zero otherwise).
        detail: u32,
        /// Human-readable description.
        msg: String,
    },
    /// A telemetry scrape request.
    Stats {
        /// One of [`STATS_TEXT`], [`STATS_JSON`], [`STATS_PROMETHEUS`].
        format: u8,
    },
    /// A telemetry scrape reply.
    StatsReply {
        /// Echo of the requested format byte.
        format: u8,
        /// The rendered report.
        body: String,
    },
}

/// A little-endian cursor over a payload; every read is checked.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn take(&mut self, len: usize) -> Result<&'a [u8], String> {
        let end = self
            .pos
            .checked_add(len)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| {
                format!(
                    "payload truncated: need {} more bytes at offset {}, have {}",
                    len,
                    self.pos,
                    self.buf.len() - self.pos
                )
            })?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f32(&mut self) -> Result<f32, String> {
        Ok(f32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn f32s(&mut self, count: usize) -> Result<Vec<f32>, String> {
        let bytes = self.take(
            count
                .checked_mul(4)
                .ok_or_else(|| "element count overflow".to_string())?,
        )?;
        Ok(bytes
            .chunks_exact(4)
            .map(|ch| f32::from_le_bytes(ch.try_into().unwrap()))
            .collect())
    }

    fn finish(&self) -> Result<(), String> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(format!(
                "{} trailing bytes after message",
                self.buf.len() - self.pos
            ))
        }
    }
}

/// Decode one frame payload. Total: every input maps to `Ok` or a
/// descriptive `Err`, never a panic or an unbounded allocation.
pub fn decode_payload(payload: &[u8]) -> Result<WireMsg, String> {
    if payload.len() > MAX_PAYLOAD {
        return Err(format!(
            "payload of {} bytes exceeds cap of {}",
            payload.len(),
            MAX_PAYLOAD
        ));
    }
    let mut cur = Cursor::new(payload);
    match cur.u8()? {
        OP_REQUEST => {
            let m = cur.u32()?;
            let n = cur.u32()?;
            let k = cur.u32()?;
            for (name, v) in [("m", m), ("n", n), ("k", k)] {
                if v > MAX_DIM {
                    return Err(format!("dimension {name}={v} exceeds cap of {MAX_DIM}"));
                }
            }
            let alpha = cur.f32()?;
            let beta = cur.f32()?;
            let deadline_us = cur.u64()?;
            let (m, n, k) = (m as usize, n as usize, k as usize);
            let a = cur.f32s(m * k)?;
            let b = cur.f32s(k * n)?;
            let c = cur.f32s(m * n)?;
            cur.finish()?;
            let mut req = GemmRequest {
                m,
                n,
                k,
                alpha,
                beta,
                a,
                b,
                c,
                deadline: None,
            };
            if deadline_us > 0 {
                req.deadline = Some(std::time::Duration::from_micros(deadline_us));
            }
            Ok(WireMsg::Request(req))
        }
        OP_REPLY_OK => {
            let m = cur.u32()?;
            let n = cur.u32()?;
            if m > MAX_DIM || n > MAX_DIM {
                return Err(format!("reply dims {m}x{n} exceed cap of {MAX_DIM}"));
            }
            let c = cur.f32s(m as usize * n as usize)?;
            cur.finish()?;
            Ok(WireMsg::ReplyOk { m, n, c })
        }
        OP_REPLY_ERR => {
            let code = cur.u8()?;
            let detail = cur.u32()?;
            let msg_len = cur.u32()? as usize;
            if msg_len > MAX_PAYLOAD {
                return Err(format!(
                    "error message length {msg_len} exceeds payload cap"
                ));
            }
            let msg = String::from_utf8_lossy(cur.take(msg_len)?).into_owned();
            cur.finish()?;
            Ok(WireMsg::ReplyErr { code, detail, msg })
        }
        OP_STATS => {
            let format = cur.u8()?;
            if format > STATS_PROMETHEUS {
                return Err(format!("unknown stats format {format}"));
            }
            cur.finish()?;
            Ok(WireMsg::Stats { format })
        }
        OP_STATS_REPLY => {
            let format = cur.u8()?;
            let body_len = cur.u32()? as usize;
            if body_len > MAX_PAYLOAD {
                return Err(format!("stats body length {body_len} exceeds payload cap"));
            }
            let body = String::from_utf8_lossy(cur.take(body_len)?).into_owned();
            cur.finish()?;
            Ok(WireMsg::StatsReply { format, body })
        }
        op => Err(format!("unknown opcode {op}")),
    }
}

/// Encode a request payload (no length prefix).
pub fn encode_request(req: &GemmRequest<f32>) -> Vec<u8> {
    let mut out = Vec::with_capacity(29 + 4 * (req.a.len() + req.b.len() + req.c.len()));
    out.push(OP_REQUEST);
    out.extend_from_slice(&(req.m as u32).to_le_bytes());
    out.extend_from_slice(&(req.n as u32).to_le_bytes());
    out.extend_from_slice(&(req.k as u32).to_le_bytes());
    out.extend_from_slice(&req.alpha.to_le_bytes());
    out.extend_from_slice(&req.beta.to_le_bytes());
    let deadline_us = req.deadline.map_or(0u64, |d| (d.as_micros() as u64).max(1));
    out.extend_from_slice(&deadline_us.to_le_bytes());
    for (buf, len) in [
        (&req.a, req.m * req.k),
        (&req.b, req.k * req.n),
        (&req.c, req.m * req.n),
    ] {
        for v in &buf[..len] {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }
    out
}

/// Encode a successful reply payload.
pub fn encode_reply_ok(m: usize, n: usize, c: &[f32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(9 + 4 * m * n);
    out.push(OP_REPLY_OK);
    out.extend_from_slice(&(m as u32).to_le_bytes());
    out.extend_from_slice(&(n as u32).to_le_bytes());
    for v in &c[..m * n] {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Encode an error reply payload.
pub fn encode_reply_err(code: u8, detail: u32, msg: &str) -> Vec<u8> {
    let msg = msg.as_bytes();
    let mut out = Vec::with_capacity(10 + msg.len());
    out.push(OP_REPLY_ERR);
    out.push(code);
    out.extend_from_slice(&detail.to_le_bytes());
    out.extend_from_slice(&(msg.len() as u32).to_le_bytes());
    out.extend_from_slice(msg);
    out
}

/// Encode a telemetry scrape request payload.
pub fn encode_stats(format: u8) -> Vec<u8> {
    vec![OP_STATS, format]
}

/// Encode a telemetry scrape reply payload.
pub fn encode_stats_reply(format: u8, body: &str) -> Vec<u8> {
    let body = body.as_bytes();
    let mut out = Vec::with_capacity(6 + body.len());
    out.push(OP_STATS_REPLY);
    out.push(format);
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    out.extend_from_slice(body);
    out
}

/// Map a [`Rejected`] to its wire `(code, detail)` pair.
pub fn rejection_code(r: &Rejected) -> (u8, u32) {
    match r {
        Rejected::QueueFull { capacity } => (ERR_QUEUE_FULL, *capacity as u32),
        Rejected::DeadlineExceeded => (ERR_DEADLINE, 0),
        Rejected::ShuttingDown => (ERR_SHUTDOWN, 0),
        Rejected::Busy { max_connections } => (ERR_BUSY, *max_connections as u32),
        Rejected::Invalid(_) => (ERR_INVALID, 0),
        Rejected::Protocol(_) => (ERR_PROTOCOL, 0),
    }
}

/// Reconstruct a [`Rejected`] from a wire error reply.
///
/// Backpressure, deadline, shutdown, and connection-limit rejections
/// round-trip to their original variants. [`Rejected::Invalid`] cannot:
/// its structured [`SmmError`](smm_core::SmmError) does not cross the
/// wire, so [`ERR_INVALID`] comes back as [`Rejected::Protocol`]
/// carrying the server's `invalid request: ...` message.
pub fn rejection_from_wire(code: u8, detail: u32, msg: &str) -> Rejected {
    match code {
        ERR_QUEUE_FULL => Rejected::QueueFull {
            capacity: detail as usize,
        },
        ERR_DEADLINE => Rejected::DeadlineExceeded,
        ERR_SHUTDOWN => Rejected::ShuttingDown,
        ERR_BUSY => Rejected::Busy {
            max_connections: detail as usize,
        },
        ERR_INVALID => Rejected::Protocol(if msg.is_empty() {
            "invalid request".to_string()
        } else {
            msg.to_string()
        }),
        _ => Rejected::Protocol(msg.to_string()),
    }
}

/// Outcome of reading one frame from a stream.
#[derive(Debug)]
pub enum FrameRead {
    /// A complete frame payload.
    Frame(Vec<u8>),
    /// Clean end of stream before a length prefix.
    Eof,
    /// The advertised length exceeded [`MAX_PAYLOAD`]; nothing was
    /// allocated and the stream is no longer in sync.
    TooLarge(u32),
}

/// Read one length-prefixed frame. A clean disconnect before the
/// length prefix is [`FrameRead::Eof`]; a mid-frame disconnect is an
/// `Err`; an oversized advertised length is [`FrameRead::TooLarge`]
/// *without* allocating the advertised amount.
pub fn read_frame(stream: &mut impl Read) -> std::io::Result<FrameRead> {
    let mut len_buf = [0u8; 4];
    let mut got = 0;
    while got < 4 {
        match stream.read(&mut len_buf[got..])? {
            0 if got == 0 => return Ok(FrameRead::Eof),
            0 => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "stream closed mid length prefix",
                ))
            }
            r => got += r,
        }
    }
    let len = u32::from_le_bytes(len_buf);
    if len as usize > MAX_PAYLOAD {
        return Ok(FrameRead::TooLarge(len));
    }
    let mut payload = vec![0u8; len as usize];
    stream.read_exact(&mut payload)?;
    Ok(FrameRead::Frame(payload))
}

/// Write one length-prefixed frame. Prefix and payload go out in a
/// single `write_all` so a frame never straddles two small TCP
/// segments (two writes + Nagle + delayed ACK can stall a
/// request/reply exchange by tens of milliseconds).
pub fn write_frame(stream: &mut impl Write, payload: &[u8]) -> std::io::Result<()> {
    debug_assert!(payload.len() <= MAX_PAYLOAD);
    let mut frame = Vec::with_capacity(4 + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(payload);
    stream.write_all(&frame)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip() {
        let mut req = GemmRequest::new(2, 3, 4, vec![1.5; 8], vec![-2.0; 12]);
        req.alpha = 0.5;
        req.beta = 2.0;
        req.c = vec![9.0; 6];
        req.deadline = Some(std::time::Duration::from_micros(750));
        let payload = encode_request(&req);
        match decode_payload(&payload).unwrap() {
            WireMsg::Request(got) => {
                assert_eq!((got.m, got.n, got.k), (2, 3, 4));
                assert_eq!(got.alpha, 0.5);
                assert_eq!(got.beta, 2.0);
                assert_eq!(got.a, req.a);
                assert_eq!(got.b, req.b);
                assert_eq!(got.c, req.c);
                assert_eq!(got.deadline, req.deadline);
            }
            other => panic!("decoded wrong variant: {other:?}"),
        }
    }

    #[test]
    fn reply_roundtrips() {
        let ok = encode_reply_ok(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(
            decode_payload(&ok).unwrap(),
            WireMsg::ReplyOk {
                m: 2,
                n: 2,
                c: vec![1.0, 2.0, 3.0, 4.0]
            }
        );
        let err = encode_reply_err(ERR_QUEUE_FULL, 256, "admission queue full (capacity 256)");
        match decode_payload(&err).unwrap() {
            WireMsg::ReplyErr { code, detail, msg } => {
                assert_eq!(code, ERR_QUEUE_FULL);
                assert_eq!(detail, 256);
                assert_eq!(
                    rejection_from_wire(code, detail, &msg),
                    Rejected::QueueFull { capacity: 256 }
                );
            }
            other => panic!("decoded wrong variant: {other:?}"),
        }
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let req = GemmRequest::new(3, 3, 3, vec![0.0; 9], vec![0.0; 9]);
        let payload = encode_request(&req);
        for cut in 0..payload.len() {
            assert!(
                decode_payload(&payload[..cut]).is_err(),
                "truncated at {cut} should fail"
            );
        }
    }

    #[test]
    fn hostile_lengths_are_rejected_without_allocation() {
        // Dimension above the cap.
        let mut p = vec![OP_REQUEST];
        p.extend_from_slice(&(MAX_DIM + 1).to_le_bytes());
        p.extend_from_slice(&1u32.to_le_bytes());
        p.extend_from_slice(&1u32.to_le_bytes());
        assert!(decode_payload(&p).unwrap_err().contains("exceeds cap"));
        // Error-message length far past the buffer.
        let mut p = vec![OP_REPLY_ERR, ERR_PROTOCOL];
        p.extend_from_slice(&0u32.to_le_bytes());
        p.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(decode_payload(&p).is_err());
        // Unknown opcode and empty payload.
        assert!(decode_payload(&[99]).unwrap_err().contains("opcode"));
        assert!(decode_payload(&[]).is_err());
    }

    #[test]
    fn invalid_and_busy_codes_map_back_explicitly() {
        // ERR_INVALID deliberately degrades to Protocol (the SmmError
        // does not cross the wire) but must keep the server's message.
        let r = rejection_from_wire(ERR_INVALID, 0, "invalid request: buffer too short");
        assert!(
            matches!(&r, Rejected::Protocol(m) if m.contains("invalid request")),
            "got {r:?}"
        );
        let r = rejection_from_wire(ERR_INVALID, 0, "");
        assert!(matches!(&r, Rejected::Protocol(m) if m.contains("invalid request")));
        // ERR_BUSY round-trips with its limit in the detail field.
        let busy = Rejected::Busy {
            max_connections: 64,
        };
        assert_eq!(rejection_code(&busy), (ERR_BUSY, 64));
        assert_eq!(
            rejection_from_wire(ERR_BUSY, 64, "connection limit reached (max 64)"),
            busy
        );
    }

    #[test]
    fn stats_roundtrips_and_rejects_unknown_formats() {
        for format in [STATS_TEXT, STATS_JSON, STATS_PROMETHEUS] {
            assert_eq!(
                decode_payload(&encode_stats(format)).unwrap(),
                WireMsg::Stats { format }
            );
        }
        assert!(decode_payload(&encode_stats(3))
            .unwrap_err()
            .contains("stats format"));
        let reply = encode_stats_reply(STATS_JSON, "{\"calls\": 3}");
        assert_eq!(
            decode_payload(&reply).unwrap(),
            WireMsg::StatsReply {
                format: STATS_JSON,
                body: "{\"calls\": 3}".to_string()
            }
        );
        // Truncation of the reply body is a typed error at every cut.
        for cut in 0..reply.len() {
            assert!(decode_payload(&reply[..cut]).is_err(), "cut at {cut}");
        }
        // Hostile body length does not allocate.
        let mut p = vec![OP_STATS_REPLY, STATS_TEXT];
        p.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(decode_payload(&p).is_err());
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut ok = encode_reply_ok(1, 1, &[7.0]);
        ok.push(0);
        assert!(decode_payload(&ok).unwrap_err().contains("trailing"));
    }

    #[test]
    fn frame_reader_handles_eof_and_oversize() {
        let mut empty: &[u8] = &[];
        assert!(matches!(read_frame(&mut empty).unwrap(), FrameRead::Eof));
        let huge = ((MAX_PAYLOAD + 1) as u32).to_le_bytes();
        let mut s: &[u8] = &huge;
        assert!(matches!(
            read_frame(&mut s).unwrap(),
            FrameRead::TooLarge(_)
        ));
        let mut partial: &[u8] = &[1, 2];
        assert!(read_frame(&mut partial).is_err());
        let mut framed = Vec::new();
        write_frame(&mut framed, &[5, 6, 7]).unwrap();
        let mut s: &[u8] = &framed;
        match read_frame(&mut s).unwrap() {
            FrameRead::Frame(p) => assert_eq!(p, vec![5, 6, 7]),
            other => panic!("expected frame, got {other:?}"),
        }
    }
}
