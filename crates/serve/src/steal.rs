//! Sharded admission queues with a model-checkable work-stealing
//! protocol.
//!
//! [`ShardQueues`] is the synchronization core of the sharded server:
//! one bounded FIFO per runtime shard, each guarded by its own mutex +
//! condvar, plus a lock-free *depth hint* per shard that the router
//! and the stealers read without touching any lock. The paper's §III-D
//! finding — synchronization dominates small-shape cost — dictates the
//! shape of this type: a dispatcher in steady state only ever touches
//! **its own** shard's lock, and a steal touches exactly **one** other
//! lock (the victim's), so no operation ever holds two locks and the
//! protocol is trivially deadlock-free by lock ordering.
//!
//! Invariants (exhaustively model-checked by `smm-analyze concurrency
//! --model-check`, protocol `shard-steal`):
//!
//! * **Exactly-once ownership** — an item pushed into any shard is
//!   popped by exactly one consumer: its own dispatcher
//!   ([`ShardQueues::try_pop`] / [`ShardQueues::drive`]) or a thief
//!   ([`ShardQueues::steal_group`]). Transfer happens entirely under
//!   the victim's mutex; there is no peek-then-re-lock window.
//! * **Bounded admission** — [`ShardQueues::push`] checks capacity and
//!   the shutdown latch under the shard's mutex and refuses with the
//!   item handed back, so callers can answer typed backpressure.
//! * **No lost shutdown wakeup** — [`ShardQueues::shutdown`] stores
//!   the latch and notifies *while holding each shard's mutex*, which
//!   serializes it against every dispatcher's check-then-wait.
//!
//! Everything here imports its primitives from the `smm_sync::sync`
//! facade, so the same source is driven through the CHESS-style
//! bounded-preemption checker under `--cfg smm_model_check`.

use std::collections::VecDeque;
use std::time::Duration;

use smm_sync::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use smm_sync::sync::{Condvar, Mutex};

/// Why a [`ShardQueues::push`] was refused; carries the item back so
/// the caller can answer the submitter without cloning.
#[derive(Debug)]
pub enum Refused<T> {
    /// The shard's queue was at capacity.
    Full(T),
    /// The shutdown latch was raised.
    ShutDown(T),
}

/// One step decision from a [`ShardQueues::drive`] closure.
#[derive(Debug)]
pub enum Step<R> {
    /// Stop driving and return this value.
    Done(R),
    /// Block on the shard's condvar until notified, then re-run the
    /// closure.
    Wait,
    /// Block for at most this long, then re-run the closure (whether
    /// notified or timed out).
    WaitTimeout(Duration),
}

/// One shard's queue: mutex-guarded FIFO, a condvar for its
/// dispatcher, and the lock-free depth hint.
struct Slot<T> {
    queue: Mutex<VecDeque<T>>,
    cv: Condvar,
    /// Relaxed load-balancing hint, refreshed under the mutex after
    /// every queue mutation; readers (router, victim selection) use it
    /// for *heuristics* only — every correctness decision re-reads the
    /// queue under its lock, so staleness costs placement quality,
    /// never an invariant.
    depth: AtomicUsize,
}

/// `N` bounded FIFOs with per-shard blocking pops and cross-shard
/// stealing. See the module docs for the protocol and its invariants.
pub struct ShardQueues<T> {
    slots: Vec<Slot<T>>,
    capacity: usize,
    /// Shutdown latch; relaxed — every decision that must be race-free
    /// (admit vs. drain-and-exit) reads it under a shard mutex, and
    /// [`ShardQueues::shutdown`] stores + notifies under each shard's
    /// mutex in turn, so the mutexes provide the ordering and any
    /// lock-free read is only a fast-path hint.
    shutdown: AtomicBool,
}

impl<T> std::fmt::Debug for ShardQueues<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardQueues")
            .field("shards", &self.slots.len())
            .field("capacity", &self.capacity)
            .finish_non_exhaustive()
    }
}

impl<T> ShardQueues<T> {
    /// `shards` independent FIFOs (at least 1), each bounded to
    /// `capacity` items (at least 1).
    pub fn new(shards: usize, capacity: usize) -> Self {
        ShardQueues {
            slots: (0..shards.max(1))
                .map(|_| Slot {
                    queue: Mutex::new(VecDeque::new()),
                    cv: Condvar::new(),
                    // Relaxed hint; see the field docs.
                    depth: AtomicUsize::new(0),
                })
                .collect(),
            capacity: capacity.max(1),
            // Relaxed latch; see the field docs.
            shutdown: AtomicBool::new(false),
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.slots.len()
    }

    /// Per-shard queue capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The lock-free depth hint of one shard — routing/victim
    /// heuristics only, may be stale by the time it is used.
    pub fn depth(&self, shard: usize) -> usize {
        self.slots[shard].depth.load(Ordering::Relaxed)
    }

    /// Whether the shutdown latch has been raised (lock-free hint; the
    /// authoritative read happens under a shard mutex in [`push`]
    /// (ShardQueues::push) and [`drive`](ShardQueues::drive)).
    pub fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::Relaxed)
    }

    /// Sum of all queue lengths, read under each shard's lock.
    pub fn total_len(&self) -> usize {
        self.slots
            .iter()
            .map(|s| s.queue.lock().unwrap().len())
            .sum()
    }

    /// Enqueue `item` on `shard` and wake its dispatcher. Refuses —
    /// handing the item back — when the shard is at capacity or the
    /// shutdown latch is up; both checks happen under the shard mutex,
    /// so a successful push is guaranteed to be observed by the
    /// draining dispatcher.
    pub fn push(&self, shard: usize, item: T) -> Result<(), Refused<T>> {
        let slot = &self.slots[shard];
        let mut q = slot.queue.lock().unwrap();
        // Authoritative re-check under the lock: once a dispatcher has
        // observed shutdown with an empty queue and exited, nothing
        // may enqueue.
        if self.shutdown.load(Ordering::Relaxed) {
            return Err(Refused::ShutDown(item));
        }
        if q.len() >= self.capacity {
            return Err(Refused::Full(item));
        }
        q.push_back(item);
        slot.depth.store(q.len(), Ordering::Relaxed);
        drop(q);
        slot.cv.notify_one();
        Ok(())
    }

    /// Pop the head of `shard` without blocking.
    pub fn try_pop(&self, shard: usize) -> Option<T> {
        let slot = &self.slots[shard];
        let mut q = slot.queue.lock().unwrap();
        let item = q.pop_front();
        slot.depth.store(q.len(), Ordering::Relaxed);
        item
    }

    /// Run `step` over `shard`'s queue under its mutex, blocking on the
    /// shard condvar between runs as the closure directs. The closure
    /// receives the queue and the shutdown latch as read under the
    /// lock; the depth hint is refreshed after every run. This is the
    /// dispatcher's only entry point — pop, expire, and coalesce
    /// decisions all happen inside one closure so they are atomic with
    /// respect to admission and stealing.
    pub fn drive<R>(
        &self,
        shard: usize,
        mut step: impl FnMut(&mut VecDeque<T>, bool) -> Step<R>,
    ) -> R {
        let slot = &self.slots[shard];
        let mut q = slot.queue.lock().unwrap();
        loop {
            let down = self.shutdown.load(Ordering::Relaxed);
            let decision = step(&mut q, down);
            slot.depth.store(q.len(), Ordering::Relaxed);
            match decision {
                Step::Done(r) => return r,
                Step::Wait => q = slot.cv.wait(q).unwrap(),
                Step::WaitTimeout(d) => q = slot.cv.wait_timeout(q, d).unwrap().0,
            }
        }
    }

    /// Steal a group of up to `max` items from the deepest *other*
    /// shard: the victim's head item plus every queued item `same`
    /// groups with it. Locks only the victim's mutex — transfer is
    /// atomic under that single lock, so an item is owned by exactly
    /// one side in every interleaving (no peek-then-re-lock window).
    /// Returns an empty vec when every other shard looks empty.
    pub fn steal_group(&self, thief: usize, max: usize, same: impl Fn(&T, &T) -> bool) -> Vec<T> {
        // Victim selection off the lock-free hints: deepest other
        // shard, ties to the lowest index. A stale hint only means a
        // wasted lock or a missed steal — never a correctness issue.
        let mut victim = None;
        let mut best = 0usize;
        for (i, slot) in self.slots.iter().enumerate() {
            if i == thief {
                continue;
            }
            let d = slot.depth.load(Ordering::Relaxed);
            if d > best {
                best = d;
                victim = Some(i);
            }
        }
        let Some(v) = victim else { return Vec::new() };
        let slot = &self.slots[v];
        let mut q = slot.queue.lock().unwrap();
        let mut group = Vec::new();
        if let Some(head) = q.pop_front() {
            group.push(head);
            let mut i = 0;
            while i < q.len() && group.len() < max.max(1) {
                if same(&group[0], &q[i]) {
                    // `remove` preserves FIFO order of the rest.
                    group.push(q.remove(i).expect("index checked"));
                } else {
                    i += 1;
                }
            }
        }
        slot.depth.store(q.len(), Ordering::Relaxed);
        group
    }

    /// Raise the shutdown latch and wake every dispatcher. The store
    /// and notify happen under each shard's mutex in turn, so they
    /// serialize with every dispatcher's check-then-wait — lock-free,
    /// they could land between a dispatcher's shutdown check and its
    /// `wait`, losing the wakeup forever.
    pub fn shutdown(&self) {
        for slot in &self.slots {
            let _q = slot.queue.lock().unwrap();
            self.shutdown.store(true, Ordering::Relaxed);
            slot.cv.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_pop_and_depth_hints() {
        let q = ShardQueues::new(2, 4);
        assert_eq!(q.shards(), 2);
        q.push(0, 1u32).unwrap();
        q.push(0, 2).unwrap();
        q.push(1, 3).unwrap();
        assert_eq!(q.depth(0), 2);
        assert_eq!(q.depth(1), 1);
        assert_eq!(q.total_len(), 3);
        assert_eq!(q.try_pop(0), Some(1));
        assert_eq!(q.depth(0), 1);
        assert_eq!(q.try_pop(1), Some(3));
        assert_eq!(q.try_pop(1), None);
    }

    #[test]
    fn capacity_and_shutdown_refuse_with_the_item() {
        let q = ShardQueues::new(1, 1);
        q.push(0, 10u32).unwrap();
        match q.push(0, 11) {
            Err(Refused::Full(v)) => assert_eq!(v, 11),
            other => panic!("expected Full, got {other:?}"),
        }
        q.shutdown();
        match q.push(0, 12) {
            Err(Refused::ShutDown(v)) => assert_eq!(v, 12),
            other => panic!("expected ShutDown, got {other:?}"),
        }
        assert!(q.is_shutdown());
    }

    #[test]
    fn steal_takes_head_group_from_deepest_victim() {
        let q = ShardQueues::new(3, 8);
        for v in [5u32, 5, 7, 5] {
            q.push(2, v).unwrap();
        }
        q.push(1, 9).unwrap();
        // Shard 2 is deepest; steal groups the 5s around its head and
        // leaves the 7 (and shard 1's 9) alone.
        let got = q.steal_group(0, 8, |a, b| a == b);
        assert_eq!(got, vec![5, 5, 5]);
        assert_eq!(q.depth(2), 1);
        assert_eq!(q.try_pop(2), Some(7));
        // Group-size bound is honored.
        for v in [4u32, 4, 4] {
            q.push(2, v).unwrap();
        }
        assert_eq!(q.steal_group(0, 2, |a, b| a == b).len(), 2);
    }

    #[test]
    fn steal_with_no_victims_is_empty() {
        let q = ShardQueues::<u32>::new(1, 4);
        assert!(q.steal_group(0, 4, |_, _| true).is_empty());
        let q = ShardQueues::<u32>::new(2, 4);
        assert!(q.steal_group(0, 4, |_, _| true).is_empty());
    }

    #[test]
    fn drive_sees_shutdown_and_pops() {
        let q = ShardQueues::new(1, 4);
        q.push(0, 42u32).unwrap();
        let got = q.drive(0, |queue, down| {
            assert!(!down);
            Step::Done(queue.pop_front())
        });
        assert_eq!(got, Some(42));
        assert_eq!(q.depth(0), 0);
        q.shutdown();
        let down = q.drive(0, |_, down| Step::Done(down));
        assert!(down);
    }

    #[test]
    fn drive_timeout_reruns_the_closure() {
        let q = ShardQueues::<u32>::new(1, 4);
        let mut runs = 0;
        q.drive(0, |_, _| {
            runs += 1;
            if runs < 3 {
                Step::WaitTimeout(Duration::from_micros(50))
            } else {
                Step::Done(())
            }
        });
        assert_eq!(runs, 3);
    }
}
