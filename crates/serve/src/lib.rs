//! `smm-serve` — a bounded, deadline-aware GEMM serving layer with
//! shape-coalescing batching.
//!
//! The paper's characterization stops at a single-process library, but
//! its central small-shape finding points straight at the service
//! boundary: for tiny GEMMs, parallelism must go *across* calls, not
//! inside them (§III-D), and the batched entry point
//! [`smm_core::Smm::gemm_batch`] already exploits that — provided
//! somebody assembles the batches. This crate is that somebody: a
//! request-level serving subsystem in front of the persistent
//! [`Smm`](smm_core::Smm) runtime.
//!
//! * [`server`] — the in-process core: a **bounded admission queue**
//!   with explicit backpressure ([`Rejected::QueueFull`]), per-request
//!   **deadlines** expired before dispatch, a dispatcher thread that
//!   **coalesces same-shape requests** arriving within a configurable
//!   window into one `gemm_batch` call (one cached plan, cross-request
//!   parallelism on the existing `TaskPool`), and **graceful shutdown**
//!   that drains in-flight work and answers every outstanding request.
//! * [`wire`] — a small length-prefixed binary protocol (`f32` only)
//!   whose decoder is total: truncated, oversized, or garbage frames
//!   produce typed protocol errors, never panics.
//! * [`shard`] + [`steal`] — the scale-out layer: N runtime shards
//!   (each its own [`Smm`](smm_core::Smm) with private plan cache,
//!   arenas, and worker pool — a panel, in the paper's topology),
//!   shape-affine FNV routing with load-based spill, and a
//!   model-checked work-stealing protocol between shard queues; the
//!   per-shard telemetry aggregates into one [`FleetReport`] behind
//!   the existing `STATS` opcode.
//! * [`tcp`] — a `std::net` front end: an acceptor thread plus a
//!   fixed pool of reader threads multiplexing nonblocking
//!   connections, so idle connections cost buffers, not threads.
//! * telemetry: the dispatcher records serve-side phase spans —
//!   enqueue-wait, coalesce-window, dispatch, reply — into the owning
//!   `Smm`'s histogram shards under
//!   [`CallSite::Serve`](smm_core::CallSite), so
//!   [`stats_report`](smm_core::Smm::stats_report) extends the paper's
//!   Table-II-style overhead decomposition to the service boundary.
//!
//! # Example
//!
//! ```
//! use smm_serve::{GemmRequest, Server};
//!
//! let server = Server::<f32>::builder().threads(2).build();
//! let client = server.client();
//! let (m, n, k) = (4, 4, 4);
//! let req = GemmRequest::new(m, n, k, vec![1.0; m * k], vec![1.0; k * n]);
//! let ticket = client.submit(req).unwrap();
//! let c = ticket.wait().unwrap();
//! assert_eq!(c[0], k as f32);
//! server.shutdown();
//! ```

#![deny(missing_docs)]

mod clock;
pub mod request;
pub mod server;
pub mod shard;
pub mod steal;
pub mod tcp;
pub mod wire;

pub use request::{GemmRequest, Rejected, Ticket};
pub use server::{Client, ServeConfig, ServeStats, Server, ServerBuilder};
pub use shard::{gather_fleet, route_shape, shard_panel, FleetReport, ShardSection, PAPER_PANELS};
pub use steal::{Refused, ShardQueues, Step};
pub use tcp::{TcpClient, TcpServer, DEFAULT_MAX_CONNECTIONS};
