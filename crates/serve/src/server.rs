//! The in-process serving core: N runtime shards, each with a bounded
//! admission queue and a shape-coalescing dispatcher, behind one
//! shape-affine router with load-based spill and cross-shard work
//! stealing.
//!
//! # One shard (the default)
//!
//! One dispatcher thread owns the batching decision. It pops the oldest
//! queued request, pulls every already-queued request with the same
//! *(shape, alpha, beta)* key, and then holds the group open for a
//! configurable coalescing window, absorbing same-key arrivals until
//! the window closes or [`ServeConfig::max_batch`] is reached. The
//! group executes as **one** [`Smm::gemm_batch`] call — one cached
//! plan, cross-request parallelism on the runtime's persistent
//! `TaskPool` — which is exactly the across-GEMM parallelism the
//! paper's §III-D prescribes for tiny shapes. A group of one skips the
//! flat-buffer copies and calls [`Smm::gemm`] directly.
//!
//! # N shards ([`ServerBuilder::shards`])
//!
//! Each shard owns its **own** [`Smm`] runtime — plan cache, packing
//! arenas, worker pool, telemetry — mirroring the paper's Phytium
//! 2000+ panel topology, where a core's cost model depends on which
//! 8-core panel its data lives in (§II, Table I). Requests route to
//! shards by shape hash ([`crate::shard::route_shape`]), so one
//! shape's plan and arenas stay hot in one shard instead of being
//! sprayed across all of them; a shard whose queue is deep spills new
//! arrivals to the shallowest shard, and an idle shard *steals* the
//! head group of the deepest victim through
//! [`ShardQueues::steal_group`](crate::steal::ShardQueues) — a
//! single-victim-lock protocol that is exhaustively model-checked
//! (`smm-analyze concurrency --model-check`, protocol `shard-steal`).
//!
//! Robustness invariants (all shard counts):
//!
//! * **Bounded admission** — [`Client::submit`] never blocks and never
//!   queues beyond [`ServeConfig::queue_capacity`] per shard; overflow
//!   is the typed backpressure signal [`Rejected::QueueFull`].
//! * **Deadlines expire before dispatch** — queued requests whose
//!   deadline has passed are answered [`Rejected::DeadlineExceeded`]
//!   and never reach the GEMM; expired work is shed, not computed.
//! * **Exactly-once replies** — every admitted request's ticket is
//!   fulfilled exactly once: by execution (on its own shard or a
//!   thief's), by expiry, or by the drain.
//! * **Graceful shutdown** — [`Server::shutdown`] stops admission,
//!   wakes every dispatcher, and joins them only after every queue has
//!   been drained and every outstanding ticket answered.

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::{Duration, Instant};

use smm_sync::sync::atomic::{AtomicU64, Ordering};
use smm_sync::sync::thread::JoinHandle;

use smm_core::{
    shape_arg, CallSite, OpenSpan, Phase, Smm, SpanName, StridedBatch, TraceCtx, Tracer,
};
use smm_gemm::arena;
use smm_gemm::matrix::{MatMut, MatRef};
use smm_kernels::Scalar;

use crate::clock;
use crate::request::{reply_pair, GemmRequest, Rejected, ReplySlot, Ticket};
use crate::shard::route_shape;
use crate::steal::{Refused, ShardQueues, Step};

/// Tuning knobs of one [`Server`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bound on queued (admitted, not yet dispatched) requests *per
    /// shard*; submissions beyond it are rejected with
    /// [`Rejected::QueueFull`].
    pub queue_capacity: usize,
    /// How long the dispatcher holds a group open for more same-shape
    /// arrivals. Zero disables coalescing-by-waiting (already-queued
    /// same-shape requests are still grouped).
    pub coalesce_window: Duration,
    /// Maximum requests coalesced into one `gemm_batch` call.
    pub max_batch: usize,
    /// How many of the plan database's hottest shapes (by persisted
    /// traffic) each dispatcher pre-warms at startup — plans built and
    /// gather arenas touched before the first request. Zero disables;
    /// a no-op when the runtime has no plan database or no traffic.
    pub prewarm: usize,
    /// Runtime shards: independent `Smm` runtimes, each with its own
    /// admission queue and dispatcher. 1 (the default) is the classic
    /// single-runtime server.
    pub shards: usize,
    /// Queue depth at which the router spills a new arrival away from
    /// its home shard to the shallowest one (shape affinity traded for
    /// load balance; only meaningful with more than one shard).
    pub spill_depth: usize,
    /// How long an idle dispatcher waits before re-polling its
    /// siblings' queues for stealable work (multi-shard only; a
    /// single-shard dispatcher blocks untimed on its own condvar).
    pub steal_poll: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            queue_capacity: 256,
            coalesce_window: Duration::from_micros(100),
            max_batch: 64,
            prewarm: 64,
            shards: 1,
            spill_depth: 64,
            steal_poll: Duration::from_micros(200),
        }
    }
}

/// Cumulative serving counters, snapshotted by [`Server::stats`] /
/// [`Client::stats`] (fleet-wide sums) and [`Client::shard_stats`]
/// (one shard).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServeStats {
    /// Requests admitted into the queue.
    pub submitted: u64,
    /// Requests answered with a computed result.
    pub completed: u64,
    /// Submissions rejected because the queue was full.
    pub rejected_queue_full: u64,
    /// Submissions rejected because the server was shutting down.
    pub rejected_shutdown: u64,
    /// Admitted requests answered `DeadlineExceeded` before dispatch.
    pub expired: u64,
    /// Dispatched groups (each is one `gemm` or `gemm_batch` call).
    pub batches: u64,
    /// Largest group dispatched so far.
    pub coalesced_max: u64,
    /// Requests queued right now.
    pub queue_depth: usize,
    /// Hot shapes the dispatcher pre-warmed at startup (plans built
    /// and arenas touched before the first request).
    pub prewarmed: u64,
    /// Requests an idle shard stole from an overloaded sibling's queue
    /// (counted on the thief).
    pub stolen: u64,
    /// Requests the router redirected away from their home shard to a
    /// shallower one (counted on the shard that absorbed them).
    pub spilled: u64,
}

impl ServeStats {
    /// Mean requests per dispatched group — the coalescing factor the
    /// batcher achieved (1.0 means no cross-request aggregation).
    pub fn coalescing_factor(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.completed as f64 / self.batches as f64
        }
    }

    /// Field-wise sum with another snapshot (`queue_depth` adds,
    /// `coalesced_max` takes the max) — how per-shard snapshots fold
    /// into the fleet view.
    pub fn absorb(&mut self, other: &ServeStats) {
        self.submitted += other.submitted;
        self.completed += other.completed;
        self.rejected_queue_full += other.rejected_queue_full;
        self.rejected_shutdown += other.rejected_shutdown;
        self.expired += other.expired;
        self.batches += other.batches;
        self.coalesced_max = self.coalesced_max.max(other.coalesced_max);
        self.queue_depth += other.queue_depth;
        self.prewarmed += other.prewarmed;
        self.stolen += other.stolen;
        self.spilled += other.spilled;
    }
}

impl std::fmt::Display for ServeStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "serve: {} submitted, {} completed in {} batches (coalescing x{:.2}, max {})",
            self.submitted,
            self.completed,
            self.batches,
            self.coalescing_factor(),
            self.coalesced_max
        )?;
        write!(
            f,
            "       {} expired, {} queue-full, {} shutdown-rejected, {} queued now, {} prewarmed, {} stolen, {} spilled",
            self.expired,
            self.rejected_queue_full,
            self.rejected_shutdown,
            self.queue_depth,
            self.prewarmed,
            self.stolen,
            self.spilled
        )
    }
}

/// One admitted, not-yet-answered request.
struct Pending<S: Scalar> {
    req: GemmRequest<S>,
    /// Absolute deadline, resolved at submission.
    deadline: Option<Instant>,
    /// Submission time, for the enqueue-wait span.
    enqueued: Instant,
    /// The request's trace span, begun at submission and ended when
    /// the reply is fulfilled (all-zero when tracing is off).
    span: OpenSpan,
    /// The shard whose tracer minted `span` and whose counters this
    /// request's lifecycle (submitted/completed/expired) bills to.
    /// Stays fixed even when the request is spilled to another queue
    /// or stolen by another dispatcher.
    origin: usize,
    slot: Arc<ReplySlot<S>>,
}

impl<S: Scalar> Pending<S> {
    fn same_group(&self, other: &Pending<S>) -> bool {
        self.req.m == other.req.m
            && self.req.n == other.req.n
            && self.req.k == other.req.k
            && self.req.alpha == other.req.alpha
            && self.req.beta == other.req.beta
    }

    fn expired(&self, now: Instant) -> bool {
        self.deadline.is_some_and(|d| d <= now)
    }
}

/// Per-shard counters and the shard runtime's tracer; relaxed
/// monotonic adds/maxes, read only by snapshotting reporters — never
/// used for synchronization.
struct ShardState {
    /// The shard runtime's request tracer (the disabled no-op unless
    /// its `Smm` was built with tracing). Request spans begin at
    /// submission, so submitters need it without going through `Smm`.
    tracer: Tracer,
    // All counters relaxed; see the struct docs.
    submitted: AtomicU64,
    completed: AtomicU64,
    rejected_queue_full: AtomicU64,
    rejected_shutdown: AtomicU64,
    expired: AtomicU64,
    batches: AtomicU64,
    coalesced_max: AtomicU64,
    prewarmed: AtomicU64,
    stolen: AtomicU64,
    spilled: AtomicU64,
}

impl ShardState {
    fn new(tracer: Tracer) -> Self {
        ShardState {
            tracer,
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            rejected_queue_full: AtomicU64::new(0),
            rejected_shutdown: AtomicU64::new(0),
            expired: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            coalesced_max: AtomicU64::new(0),
            prewarmed: AtomicU64::new(0),
            stolen: AtomicU64::new(0),
            spilled: AtomicU64::new(0),
        }
    }

    fn stats(&self, queue_depth: usize) -> ServeStats {
        ServeStats {
            submitted: self.submitted.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            rejected_queue_full: self.rejected_queue_full.load(Ordering::Relaxed),
            rejected_shutdown: self.rejected_shutdown.load(Ordering::Relaxed),
            expired: self.expired.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            coalesced_max: self.coalesced_max.load(Ordering::Relaxed),
            queue_depth,
            prewarmed: self.prewarmed.load(Ordering::Relaxed),
            stolen: self.stolen.load(Ordering::Relaxed),
            spilled: self.spilled.load(Ordering::Relaxed),
        }
    }
}

/// State shared between [`Client`] handles and the dispatchers.
struct ServeShared<S: Scalar> {
    /// Per-shard bounded queues + the model-checked stealing protocol.
    /// The shutdown latch lives inside (`ShardQueues::shutdown`), so
    /// admit-vs-drain decisions serialize under the queue mutexes.
    queues: ShardQueues<Pending<S>>,
    cfg: ServeConfig,
    shards: Vec<ShardState>,
}

impl<S: Scalar> ServeShared<S> {
    fn shard_stats(&self, shard: usize) -> ServeStats {
        self.shards[shard].stats(self.queues.depth(shard))
    }

    fn stats(&self) -> ServeStats {
        let mut total = ServeStats::default();
        for i in 0..self.shards.len() {
            total.absorb(&self.shard_stats(i));
        }
        total
    }
}

/// A cloneable submission handle into a [`Server`].
pub struct Client<S: Scalar> {
    shared: Arc<ServeShared<S>>,
}

impl<S: Scalar> Clone for Client<S> {
    fn clone(&self) -> Self {
        Client {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<S: Scalar> std::fmt::Debug for Client<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Client").finish_non_exhaustive()
    }
}

impl<S: Scalar> Client<S> {
    /// Submit one request. Never blocks: the result is a [`Ticket`] to
    /// wait on, or an immediate typed rejection (validation failure,
    /// full queue, or a shutting-down server).
    ///
    /// Routing (multi-shard): the request's shape hashes to its *home*
    /// shard so one shape's plan and arenas stay hot in one runtime;
    /// when the home queue is at least [`ServeConfig::spill_depth`]
    /// deep — or turns out to be full — the request spills to the
    /// shallowest shard instead.
    pub fn submit(&self, req: GemmRequest<S>) -> Result<Ticket<S>, Rejected> {
        req.validate().map_err(Rejected::Invalid)?;
        let shared = &self.shared;
        let nshards = shared.shards.len();
        // Fast-path hint only; the authoritative check is under the
        // queue lock inside `push`.
        let mut target = route_shape(req.m, req.n, req.k, nshards);
        if shared.queues.is_shutdown() {
            shared.shards[target]
                .rejected_shutdown
                .fetch_add(1, Ordering::Relaxed);
            return Err(Rejected::ShuttingDown);
        }
        let mut spilled = false;
        if nshards > 1 && shared.queues.depth(target) >= shared.cfg.spill_depth {
            if let Some(alt) = self.shallowest_other(target) {
                target = alt;
                spilled = true;
            }
        }
        let state = &shared.shards[target];
        let now = clock::now();
        // Admission: mint the request's trace (span ends at reply) and
        // time the validate-and-enqueue window under it. No-ops with
        // the disabled tracer. The span lives on the home shard's
        // tracer for the request's whole life, even if stolen.
        let span = state.tracer.begin_span(
            TraceCtx::none(),
            SpanName::Request,
            shape_arg(req.m, req.n, req.k),
        );
        let adm = state.tracer.begin_span(
            TraceCtx {
                trace: span.trace,
                parent: span.span,
            },
            SpanName::Admission,
            0,
        );
        let reject = |err: Rejected| {
            state.tracer.end_span(adm);
            state.tracer.end_span(span);
            Err(err)
        };
        let (slot, ticket) = reply_pair();
        let mut pending = Pending {
            deadline: req.deadline.map(|d| now + d),
            enqueued: now,
            req,
            span,
            origin: target,
            slot,
        };
        match shared.queues.push(target, pending) {
            Ok(()) => {}
            Err(Refused::ShutDown(_)) => {
                state.rejected_shutdown.fetch_add(1, Ordering::Relaxed);
                return reject(Rejected::ShuttingDown);
            }
            Err(Refused::Full(p)) => {
                pending = p;
                // Home shard full: one spill attempt to the shallowest
                // sibling before giving up with typed backpressure.
                let alt = if nshards > 1 {
                    self.shallowest_other(target)
                } else {
                    None
                };
                let mut placed = false;
                if let Some(alt) = alt {
                    match shared.queues.push(alt, pending) {
                        Ok(()) => {
                            placed = true;
                            shared.shards[alt].spilled.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(Refused::ShutDown(_)) => {
                            state.rejected_shutdown.fetch_add(1, Ordering::Relaxed);
                            return reject(Rejected::ShuttingDown);
                        }
                        Err(Refused::Full(_)) => {}
                    }
                }
                if !placed {
                    state.rejected_queue_full.fetch_add(1, Ordering::Relaxed);
                    return reject(Rejected::QueueFull {
                        capacity: shared.cfg.queue_capacity,
                    });
                }
                state.tracer.end_span(adm);
                state.submitted.fetch_add(1, Ordering::Relaxed);
                return Ok(ticket);
            }
        }
        if spilled {
            state.spilled.fetch_add(1, Ordering::Relaxed);
        }
        state.tracer.end_span(adm);
        state.submitted.fetch_add(1, Ordering::Relaxed);
        Ok(ticket)
    }

    /// The shard with the shallowest queue hint, excluding `not` —
    /// `None` when no other shard is shallower than `not`'s queue.
    fn shallowest_other(&self, not: usize) -> Option<usize> {
        let q = &self.shared.queues;
        let mut best: Option<(usize, usize)> = None;
        for i in 0..q.shards() {
            if i == not {
                continue;
            }
            let d = q.depth(i);
            if best.is_none_or(|(_, bd)| d < bd) {
                best = Some((i, d));
            }
        }
        best.filter(|&(_, d)| d < q.depth(not)).map(|(i, _)| i)
    }

    /// Fleet-wide snapshot of the serving counters (all shards
    /// summed).
    pub fn stats(&self) -> ServeStats {
        self.shared.stats()
    }

    /// Snapshot of one shard's serving counters.
    pub fn shard_stats(&self, shard: usize) -> ServeStats {
        self.shared.shard_stats(shard)
    }

    /// Number of runtime shards behind this client.
    pub fn shards(&self) -> usize {
        self.shared.shards.len()
    }
}

/// Builder for [`Server`] — mirrors the [`Smm::builder`] idiom.
pub struct ServerBuilder<S: Scalar> {
    cfg: ServeConfig,
    smms: Vec<Arc<Smm<S>>>,
    threads: Option<usize>,
}

impl<S: Scalar> Default for ServerBuilder<S> {
    fn default() -> Self {
        ServerBuilder {
            cfg: ServeConfig::default(),
            smms: Vec::new(),
            threads: None,
        }
    }
}

impl<S: Scalar> ServerBuilder<S> {
    /// Bound on queued requests per shard (clamped to at least 1).
    pub fn queue_capacity(mut self, capacity: usize) -> Self {
        self.cfg.queue_capacity = capacity.max(1);
        self
    }

    /// The shape-coalescing window.
    pub fn coalesce_window(mut self, window: Duration) -> Self {
        self.cfg.coalesce_window = window;
        self
    }

    /// Maximum requests per dispatched group (clamped to at least 1).
    pub fn max_batch(mut self, max: usize) -> Self {
        self.cfg.max_batch = max.max(1);
        self
    }

    /// How many hot shapes each dispatcher pre-warms at startup (0
    /// disables; default 64). Only effective when the runtime carries
    /// a plan database with recorded traffic.
    pub fn prewarm(mut self, shapes: usize) -> Self {
        self.cfg.prewarm = shapes;
        self
    }

    /// Number of runtime shards (clamped to at least 1; default 1).
    /// Each shard is an independent `Smm` runtime with its own plan
    /// cache, arenas, worker pool, queue, and dispatcher.
    pub fn shards(mut self, shards: usize) -> Self {
        self.cfg.shards = shards.max(1);
        self
    }

    /// Queue depth at which the router spills arrivals away from
    /// their home shard (clamped to at least 1).
    pub fn spill_depth(mut self, depth: usize) -> Self {
        self.cfg.spill_depth = depth.max(1);
        self
    }

    /// Idle-dispatcher steal polling period (multi-shard only).
    pub fn steal_poll(mut self, period: Duration) -> Self {
        self.cfg.steal_poll = period;
        self
    }

    /// Serve shard 0 on this existing runtime instead of building one
    /// (remaining shards, if any, are built internally).
    pub fn smm(mut self, smm: Arc<Smm<S>>) -> Self {
        if self.smms.is_empty() {
            self.smms.push(smm);
        } else {
            self.smms[0] = smm;
        }
        self
    }

    /// Serve on exactly these runtimes, one per shard (also sets the
    /// shard count).
    pub fn smms(mut self, smms: Vec<Arc<Smm<S>>>) -> Self {
        self.cfg.shards = smms.len().max(1);
        self.smms = smms;
        self
    }

    /// Worker threads for each internally built runtime (ignored for
    /// shards whose runtime was supplied). Defaults to the machine's
    /// available parallelism.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Build the server and start one dispatcher thread per shard.
    pub fn build(self) -> Server<S> {
        let threads = self
            .threads
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(4, |p| p.get()));
        let mut smms = self.smms;
        while smms.len() < self.cfg.shards {
            smms.push(Arc::new(Smm::builder().threads(threads).build()));
        }
        smms.truncate(self.cfg.shards);
        let shared = Arc::new(ServeShared {
            queues: ShardQueues::new(self.cfg.shards, self.cfg.queue_capacity),
            shards: smms
                .iter()
                .map(|smm| ShardState::new(smm.tracer().clone()))
                .collect(),
            cfg: self.cfg,
        });
        let dispatchers = smms
            .iter()
            .enumerate()
            .map(|(i, smm)| {
                let smm = Arc::clone(smm);
                let shared = Arc::clone(&shared);
                smm_sync::sync::thread::Builder::new()
                    .name(format!("smm-serve-dispatch-{i}"))
                    .spawn(move || dispatcher_loop(&smm, &shared, i))
                    .expect("failed to spawn serve dispatcher")
            })
            .collect();
        Server {
            shared,
            smms,
            dispatchers,
        }
    }
}

/// An in-process GEMM server: one bounded queue + coalescing
/// dispatcher per [`Smm`] runtime shard, behind a shape-affine router
/// with work stealing. Construct via [`Server::builder`]; submit
/// through [`Server::client`] handles; stop with [`Server::shutdown`]
/// (also run on drop), which drains every queue and answers every
/// outstanding request before returning.
pub struct Server<S: Scalar> {
    shared: Arc<ServeShared<S>>,
    smms: Vec<Arc<Smm<S>>>,
    dispatchers: Vec<JoinHandle<()>>,
}

impl<S: Scalar> std::fmt::Debug for Server<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("config", &self.shared.cfg)
            .finish_non_exhaustive()
    }
}

impl<S: Scalar> Server<S> {
    /// Start building a server.
    pub fn builder() -> ServerBuilder<S> {
        ServerBuilder::default()
    }

    /// A new submission handle.
    pub fn client(&self) -> Client<S> {
        Client {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Shard 0's runtime (the only one on a single-shard server; its
    /// [`stats_report`](Smm::stats_report) carries the serve-side
    /// phase spans under the `serve` call site).
    pub fn smm(&self) -> &Arc<Smm<S>> {
        &self.smms[0]
    }

    /// All shard runtimes, indexed by shard.
    pub fn smms(&self) -> &[Arc<Smm<S>>] {
        &self.smms
    }

    /// Number of runtime shards.
    pub fn shards(&self) -> usize {
        self.smms.len()
    }

    /// The active configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.shared.cfg
    }

    /// Fleet-wide snapshot of the serving counters (all shards
    /// summed).
    pub fn stats(&self) -> ServeStats {
        self.shared.stats()
    }

    /// Snapshot of one shard's serving counters.
    pub fn shard_stats(&self, shard: usize) -> ServeStats {
        self.shared.shard_stats(shard)
    }

    /// Graceful shutdown: stop admitting, drain every queue (every
    /// outstanding request is executed and answered), join the
    /// dispatchers, and return the final fleet counters.
    pub fn shutdown(mut self) -> ServeStats {
        self.shutdown_inner();
        self.shared.stats()
    }

    fn shutdown_inner(&mut self) {
        // `ShardQueues::shutdown` stores the latch + notifies under
        // each shard's mutex, serializing with every dispatcher's
        // check-then-wait so no wakeup is ever lost.
        self.shared.queues.shutdown();
        for handle in self.dispatchers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl<S: Scalar> Drop for Server<S> {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// Move every queue entry matching `head`'s group key into `group`
/// (up to `max_batch` total), recording each mover's enqueue-wait.
fn extract_matching<S: Scalar>(
    q: &mut VecDeque<Pending<S>>,
    group: &mut Vec<Pending<S>>,
    max_batch: usize,
) {
    let mut i = 0;
    while i < q.len() && group.len() < max_batch {
        if group[0].same_group(&q[i]) {
            // `remove` preserves FIFO order of the rest of the queue.
            group.push(q.remove(i).expect("index checked"));
        } else {
            i += 1;
        }
    }
}

/// Answer every queued request whose deadline already passed.
fn expire_queued<S: Scalar>(q: &mut VecDeque<Pending<S>>, shared: &ServeShared<S>, now: Instant) {
    let mut i = 0;
    while i < q.len() {
        if q[i].expired(now) {
            let p = q.remove(i).expect("index checked");
            p.slot.fulfill(Err(Rejected::DeadlineExceeded));
            shared.shards[p.origin].tracer.end_span(p.span);
            shared.shards[p.origin]
                .expired
                .fetch_add(1, Ordering::Relaxed);
        } else {
            i += 1;
        }
    }
}

/// Pre-warm one dispatcher for its plan database's hottest shapes:
/// build (and cache) their plans, and cycle the dispatcher-thread
/// gather arena through the buffer sizes `execute_group` will request,
/// so the first real request of a hot shape pays neither plan
/// construction nor arena growth. Runs on the dispatcher thread —
/// the arena is thread-local, so warming it anywhere else is useless.
fn prewarm_hot_shapes<S: Scalar>(smm: &Smm<S>, cfg: &ServeConfig) -> u64 {
    let mut warmed = 0u64;
    // Gather buffers scale with group size; warm for a modest expected
    // coalescing factor rather than the full max_batch, which would
    // reserve far more than steady state touches.
    let per = cfg.max_batch.clamp(1, 8);
    for (m, n, k) in smm.hot_shapes(cfg.prewarm) {
        smm.plan(m, n, k);
        let (ea, eb, ec) = (m * k, k * n, m * n);
        let a = arena::checkout::<S>(per * ea);
        let b = arena::checkout::<S>(per * eb);
        let c = arena::checkout::<S>(per * ec);
        drop((a, b, c));
        warmed += 1;
    }
    warmed
}

/// What one scheduling round of a dispatcher produced.
enum Round<S: Scalar> {
    /// A head request popped from the own queue (coalesce next).
    Head(Box<Pending<S>>),
    /// A ready-made group stolen from a sibling (dispatch directly).
    Stolen(Vec<Pending<S>>),
    /// Nothing anywhere and not shutting down: the round already
    /// blocked once on the condvar; go around again.
    Idle,
    /// Shutdown with an empty own queue: exit. (Siblings drain their
    /// own queues; stealing during drain only speeds it up.)
    Exit,
}

fn dispatcher_loop<S: Scalar>(smm: &Smm<S>, shared: &ServeShared<S>, shard: usize) {
    let cfg = shared.cfg.clone();
    if cfg.prewarm > 0 {
        let warmed = prewarm_hot_shapes(smm, &cfg);
        // relaxed — monotonic stat, read only by snapshotting reporters.
        shared.shards[shard]
            .prewarmed
            .store(warmed, Ordering::Relaxed);
    }
    let multi = shared.shards.len() > 1;
    loop {
        // Phase 1: find work — own queue first, then steal, then wait.
        // The own-queue check and the blocking wait are *one* drive
        // call each, so the shutdown check and the wait serialize
        // under the queue mutex (no lost wakeup).
        let mut waited = false;
        let round = shared.queues.drive(shard, |q, down| {
            if q.iter().any(|p| p.deadline.is_some()) {
                expire_queued(q, shared, clock::now());
            }
            if let Some(p) = q.pop_front() {
                return Step::Done(Round::Head(Box::new(p)));
            }
            if down {
                return Step::Done(Round::Exit);
            }
            if multi {
                // Release the lock between steal polls: the steal
                // itself must not run while holding the own-shard
                // lock (single-lock protocol), so go idle after at
                // most one bounded wait.
                if waited {
                    return Step::Done(Round::Idle);
                }
                waited = true;
                Step::WaitTimeout(cfg.steal_poll)
            } else {
                // Single shard: nobody to steal from — block untimed
                // until a push or shutdown notifies.
                Step::Wait
            }
        });
        let round = match round {
            Round::Idle => {
                let stolen =
                    shared
                        .queues
                        .steal_group(shard, cfg.max_batch, |a: &Pending<S>, b| a.same_group(b));
                if stolen.is_empty() {
                    continue;
                }
                Round::Stolen(stolen)
            }
            other => other,
        };
        match round {
            Round::Exit => return,
            Round::Idle => unreachable!("idle rounds are resolved above"),
            Round::Stolen(group) => {
                // Stolen groups dispatch immediately — the victim
                // already aged them; holding a second window would
                // only add latency to work that is late by definition.
                let popped_at = clock::now();
                shared.shards[shard]
                    .stolen
                    .fetch_add(group.len() as u64, Ordering::Relaxed);
                process_group(smm, shared, shard, group, popped_at);
            }
            Round::Head(head) => {
                // Phase 2: coalesce. Grab everything already queued
                // with the same key, then hold the group open for the
                // window.
                let popped_at = clock::now();
                let mut group = vec![*head];
                let window_ends = popped_at + cfg.coalesce_window;
                shared.queues.drive(shard, |q, down| {
                    extract_matching(q, &mut group, cfg.max_batch);
                    // Drain fast once shutdown is requested — the
                    // window only trades latency for batching, and at
                    // drain time latency is all that is left to
                    // optimize.
                    if down || group.len() >= cfg.max_batch || cfg.coalesce_window.is_zero() {
                        return Step::Done(());
                    }
                    let now = clock::now();
                    if now >= window_ends {
                        return Step::Done(());
                    }
                    Step::WaitTimeout(window_ends - now)
                });
                // Phase 3: expire-before-dispatch, execute, reply.
                process_group(smm, shared, shard, group, popped_at);
            }
        }
    }
}

/// Execute one coalesced group on `exec`'s runtime and answer every
/// member. Lifecycle counters (completed/expired) bill to each
/// request's origin shard; execution counters (batches/coalesced_max)
/// bill to the executing shard.
fn process_group<S: Scalar>(
    smm: &Smm<S>,
    shared: &ServeShared<S>,
    exec: usize,
    group: Vec<Pending<S>>,
    popped_at: Instant,
) {
    let rec = smm.telemetry().recorder(CallSite::Serve);
    let tracer = smm.tracer();
    let dispatch_start = clock::now();

    let mut live: Vec<Pending<S>> = Vec::with_capacity(group.len());
    for p in group {
        if p.expired(dispatch_start) {
            p.slot.fulfill(Err(Rejected::DeadlineExceeded));
            shared.shards[p.origin].tracer.end_span(p.span);
            shared.shards[p.origin]
                .expired
                .fetch_add(1, Ordering::Relaxed);
        } else {
            live.push(p);
        }
    }
    if live.is_empty() {
        return;
    }
    // The dispatch gets its own trace on the *executing* shard; the
    // member spans below keep their request trace ids but parent under
    // this batch span, so an exported trace links each coalesced
    // request to the one dispatch that served it (for stolen requests
    // the batch lives on the thief's tracer while the request span
    // stays on the origin's — the trace id still ties them together).
    // The guard also makes this span the dispatcher thread's current
    // one, nesting the `gemm`/`gemm_batch` trace of `execute_group`
    // under it.
    let batch_span = tracer.root(SpanName::CoalescedBatch, live.len() as u64);
    let members: Vec<OpenSpan> = live
        .iter()
        .enumerate()
        .map(|(i, p)| {
            tracer.begin_span(
                TraceCtx {
                    trace: p.span.trace,
                    parent: batch_span.span(),
                },
                SpanName::Member,
                i as u64,
            )
        })
        .collect();
    if rec.active() {
        for p in &live {
            let waited = dispatch_start.saturating_duration_since(p.enqueued);
            rec.span_ns(Phase::EnqueueWait, waited.as_nanos() as u64);
        }
        let held = dispatch_start.saturating_duration_since(popped_at);
        rec.span_ns(Phase::Coalesce, held.as_nanos() as u64);
    }

    let (m, n, k) = (live[0].req.m, live[0].req.n, live[0].req.k);
    let (alpha, beta) = (live[0].req.alpha, live[0].req.beta);
    let outcome = execute_group(smm, &mut live, m, n, k, alpha, beta);
    let replied_at = if rec.active() {
        let done = clock::now();
        rec.span_ns(
            Phase::Dispatch,
            done.saturating_duration_since(dispatch_start).as_nanos() as u64,
        );
        Some(done)
    } else {
        None
    };

    shared.shards[exec].batches.fetch_add(1, Ordering::Relaxed);
    shared.shards[exec]
        .coalesced_max
        .fetch_max(live.len() as u64, Ordering::Relaxed);
    let count = live.len() as u64;
    // One label for the whole group, built only when it can be used.
    let slow_label = if tracer.enabled() {
        format!("serve {m}x{n}x{k}")
    } else {
        String::new()
    };
    let reply_span = tracer.span(SpanName::Reply, count);
    for (i, mut p) in live.into_iter().enumerate() {
        let c = std::mem::take(&mut p.req.c);
        match &outcome {
            Ok(()) => {
                p.slot.fulfill(Ok(c));
                shared.shards[p.origin]
                    .completed
                    .fetch_add(1, Ordering::Relaxed);
            }
            Err(e) => p.slot.fulfill(Err(e.clone())),
        }
        tracer.end_span(members[i]);
        let origin_tracer = &shared.shards[p.origin].tracer;
        origin_tracer.end_span(p.span);
        if origin_tracer.enabled() {
            // End-to-end latency (submission → reply fulfilled); a
            // breach pins this request's full span tree. The spans
            // were ended above, so the snapshot sees the whole tree.
            let total_ns = clock::now()
                .saturating_duration_since(p.enqueued)
                .as_nanos() as u64;
            origin_tracer.note_request_done(p.span.trace, total_ns, &slow_label);
        }
    }
    drop(reply_span);
    drop(batch_span);
    if let Some(replied_at) = replied_at {
        let end = clock::now();
        rec.span_ns(
            Phase::Reply,
            end.saturating_duration_since(replied_at).as_nanos() as u64,
        );
        if outcome.is_ok() {
            // Per-shape accounting: dispatch start → replies done, i.e.
            // the service-side cost excluding the deliberate window.
            smm.telemetry().record_call(
                CallSite::Serve,
                m,
                n,
                k,
                S::BYTES,
                count,
                end.saturating_duration_since(dispatch_start).as_nanos() as u64,
            );
        }
    }
}

/// Run the group's GEMMs: directly for a group of one, as one strided
/// batch otherwise. Results land in each member's `req.c`.
fn execute_group<S: Scalar>(
    smm: &Smm<S>,
    live: &mut [Pending<S>],
    m: usize,
    n: usize,
    k: usize,
    alpha: S,
    beta: S,
) -> Result<(), Rejected> {
    if live.len() == 1 {
        let p = &mut live[0];
        if m == 0 || n == 0 {
            return Ok(());
        }
        if k == 0 {
            MatMut::from_slice(&mut p.req.c, m, n, m).scale(beta);
            return Ok(());
        }
        let a = MatRef::from_slice(&p.req.a, m, k, m);
        let b = MatRef::from_slice(&p.req.b, k, n, k);
        let c = MatMut::from_slice(&mut p.req.c, m, n, m);
        smm.gemm(alpha, a, b, beta, c);
        return Ok(());
    }
    // Coalesced path: gather the dense prefixes into flat strided
    // buffers so the whole group is one plan + one pool dispatch. The
    // gather buffers come from the dispatcher thread's packing arena —
    // a steady stream of same-shape groups reuses the same storage
    // instead of allocating three fresh vectors per group.
    let desc = StridedBatch::dense(m, n, k, live.len());
    let (ea, eb, ec) = (m * k, k * n, m * n);
    let mut fa = arena::checkout::<S>(live.len() * ea);
    let mut fb = arena::checkout::<S>(live.len() * eb);
    let mut fc = arena::checkout::<S>(live.len() * ec);
    for p in live.iter() {
        fa.extend_from_slice(&p.req.a[..ea]);
        fb.extend_from_slice(&p.req.b[..eb]);
        fc.extend_from_slice(&p.req.c[..ec]);
    }
    smm.gemm_batch(&desc, alpha, &fa, &fb, beta, &mut fc)
        .map_err(Rejected::Invalid)?;
    for (i, p) in live.iter_mut().enumerate() {
        p.req.c[..ec].copy_from_slice(&fc[i * desc.stride_c..][..ec]);
    }
    Ok(())
}
