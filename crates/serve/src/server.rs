//! The in-process serving core: bounded admission, the shape-coalescing
//! dispatcher, deadlines, and graceful drain.
//!
//! One dispatcher thread owns the batching decision. It pops the oldest
//! queued request, pulls every already-queued request with the same
//! *(shape, alpha, beta)* key, and then holds the group open for a
//! configurable coalescing window, absorbing same-key arrivals until
//! the window closes or [`ServeConfig::max_batch`] is reached. The
//! group executes as **one** [`Smm::gemm_batch`] call — one cached
//! plan, cross-request parallelism on the runtime's persistent
//! `TaskPool` — which is exactly the across-GEMM parallelism the
//! paper's §III-D prescribes for tiny shapes. A group of one skips the
//! flat-buffer copies and calls [`Smm::gemm`] directly.
//!
//! Robustness invariants:
//!
//! * **Bounded admission** — [`Client::submit`] never blocks and never
//!   queues beyond [`ServeConfig::queue_capacity`]; overflow is the
//!   typed backpressure signal [`Rejected::QueueFull`].
//! * **Deadlines expire before dispatch** — queued requests whose
//!   deadline has passed are answered [`Rejected::DeadlineExceeded`]
//!   and never reach the GEMM; expired work is shed, not computed.
//! * **Exactly-once replies** — every admitted request's ticket is
//!   fulfilled exactly once: by execution, by expiry, or by the drain.
//! * **Graceful shutdown** — [`Server::shutdown`] stops admission,
//!   wakes the dispatcher, and joins it only after the queue has been
//!   drained and every outstanding ticket answered.

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::{Duration, Instant};

use smm_sync::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use smm_sync::sync::thread::JoinHandle;
use smm_sync::sync::{Condvar, Mutex};

use smm_core::{
    shape_arg, CallSite, OpenSpan, Phase, Smm, SpanName, StridedBatch, TraceCtx, Tracer,
};
use smm_gemm::arena;
use smm_gemm::matrix::{MatMut, MatRef};
use smm_kernels::Scalar;

use crate::clock;
use crate::request::{reply_pair, GemmRequest, Rejected, ReplySlot, Ticket};

/// Tuning knobs of one [`Server`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bound on queued (admitted, not yet dispatched) requests;
    /// submissions beyond it are rejected with [`Rejected::QueueFull`].
    pub queue_capacity: usize,
    /// How long the dispatcher holds a group open for more same-shape
    /// arrivals. Zero disables coalescing-by-waiting (already-queued
    /// same-shape requests are still grouped).
    pub coalesce_window: Duration,
    /// Maximum requests coalesced into one `gemm_batch` call.
    pub max_batch: usize,
    /// How many of the plan database's hottest shapes (by persisted
    /// traffic) the dispatcher pre-warms at startup — plans built and
    /// gather arenas touched before the first request. Zero disables;
    /// a no-op when the runtime has no plan database or no traffic.
    pub prewarm: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            queue_capacity: 256,
            coalesce_window: Duration::from_micros(100),
            max_batch: 64,
            prewarm: 64,
        }
    }
}

/// Cumulative serving counters, snapshotted by [`Server::stats`] /
/// [`Client::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServeStats {
    /// Requests admitted into the queue.
    pub submitted: u64,
    /// Requests answered with a computed result.
    pub completed: u64,
    /// Submissions rejected because the queue was full.
    pub rejected_queue_full: u64,
    /// Submissions rejected because the server was shutting down.
    pub rejected_shutdown: u64,
    /// Admitted requests answered `DeadlineExceeded` before dispatch.
    pub expired: u64,
    /// Dispatched groups (each is one `gemm` or `gemm_batch` call).
    pub batches: u64,
    /// Largest group dispatched so far.
    pub coalesced_max: u64,
    /// Requests queued right now.
    pub queue_depth: usize,
    /// Hot shapes the dispatcher pre-warmed at startup (plans built
    /// and arenas touched before the first request).
    pub prewarmed: u64,
}

impl ServeStats {
    /// Mean requests per dispatched group — the coalescing factor the
    /// batcher achieved (1.0 means no cross-request aggregation).
    pub fn coalescing_factor(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.completed as f64 / self.batches as f64
        }
    }
}

impl std::fmt::Display for ServeStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "serve: {} submitted, {} completed in {} batches (coalescing x{:.2}, max {})",
            self.submitted,
            self.completed,
            self.batches,
            self.coalescing_factor(),
            self.coalesced_max
        )?;
        write!(
            f,
            "       {} expired, {} queue-full, {} shutdown-rejected, {} queued now, {} prewarmed",
            self.expired,
            self.rejected_queue_full,
            self.rejected_shutdown,
            self.queue_depth,
            self.prewarmed
        )
    }
}

/// One admitted, not-yet-answered request.
struct Pending<S: Scalar> {
    req: GemmRequest<S>,
    /// Absolute deadline, resolved at submission.
    deadline: Option<Instant>,
    /// Submission time, for the enqueue-wait span.
    enqueued: Instant,
    /// The request's trace span, begun at submission and ended when
    /// the reply is fulfilled (all-zero when tracing is off).
    span: OpenSpan,
    slot: Arc<ReplySlot<S>>,
}

impl<S: Scalar> Pending<S> {
    fn same_group(&self, other: &Pending<S>) -> bool {
        self.req.m == other.req.m
            && self.req.n == other.req.n
            && self.req.k == other.req.k
            && self.req.alpha == other.req.alpha
            && self.req.beta == other.req.beta
    }

    fn expired(&self, now: Instant) -> bool {
        self.deadline.is_some_and(|d| d <= now)
    }
}

/// State shared between [`Client`] handles and the dispatcher.
struct ServeShared<S: Scalar> {
    queue: Mutex<VecDeque<Pending<S>>>,
    work_cv: Condvar,
    /// Shutdown latch; relaxed — every decision that must be
    /// race-free (admit vs. drain-and-exit) re-checks it under the
    /// `queue` mutex, and the raising side stores + notifies while
    /// holding that same mutex (`shutdown_inner`), so the mutex
    /// provides the ordering and the lock-free read is only a
    /// fast-path hint.
    shutdown: AtomicBool,
    cfg: ServeConfig,
    /// The runtime's request tracer (the disabled no-op unless the
    /// `Smm` was built with tracing). Request spans begin at
    /// submission, so submitters need it without going through `Smm`.
    tracer: Tracer,
    /// Serving counters; relaxed monotonic adds/maxes, read only by
    /// snapshotting reporters — never used for synchronization.
    submitted: AtomicU64,
    completed: AtomicU64,
    rejected_queue_full: AtomicU64,
    rejected_shutdown: AtomicU64,
    expired: AtomicU64,
    batches: AtomicU64,
    coalesced_max: AtomicU64,
    prewarmed: AtomicU64,
}

impl<S: Scalar> ServeShared<S> {
    fn stats(&self) -> ServeStats {
        ServeStats {
            submitted: self.submitted.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            rejected_queue_full: self.rejected_queue_full.load(Ordering::Relaxed),
            rejected_shutdown: self.rejected_shutdown.load(Ordering::Relaxed),
            expired: self.expired.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            coalesced_max: self.coalesced_max.load(Ordering::Relaxed),
            queue_depth: self.queue.lock().unwrap().len(),
            prewarmed: self.prewarmed.load(Ordering::Relaxed),
        }
    }
}

/// A cloneable submission handle into a [`Server`].
pub struct Client<S: Scalar> {
    shared: Arc<ServeShared<S>>,
}

impl<S: Scalar> Clone for Client<S> {
    fn clone(&self) -> Self {
        Client {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<S: Scalar> std::fmt::Debug for Client<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Client").finish_non_exhaustive()
    }
}

impl<S: Scalar> Client<S> {
    /// Submit one request. Never blocks: the result is a [`Ticket`] to
    /// wait on, or an immediate typed rejection (validation failure,
    /// full queue, or a shutting-down server).
    pub fn submit(&self, req: GemmRequest<S>) -> Result<Ticket<S>, Rejected> {
        req.validate().map_err(Rejected::Invalid)?;
        let shared = &self.shared;
        // Fast-path hint only; the authoritative check is under the
        // queue lock below.
        if shared.shutdown.load(Ordering::Relaxed) {
            shared.rejected_shutdown.fetch_add(1, Ordering::Relaxed);
            return Err(Rejected::ShuttingDown);
        }
        let now = clock::now();
        // Admission: mint the request's trace (span ends at reply) and
        // time the validate-and-enqueue window under it. No-ops with
        // the disabled tracer.
        let span = shared.tracer.begin_span(
            TraceCtx::none(),
            SpanName::Request,
            shape_arg(req.m, req.n, req.k),
        );
        let adm = shared.tracer.begin_span(
            TraceCtx {
                trace: span.trace,
                parent: span.span,
            },
            SpanName::Admission,
            0,
        );
        let reject = |err: Rejected| {
            shared.tracer.end_span(adm);
            shared.tracer.end_span(span);
            Err(err)
        };
        let pending = {
            let (slot, ticket) = reply_pair();
            (
                Pending {
                    deadline: req.deadline.map(|d| now + d),
                    enqueued: now,
                    req,
                    span,
                    slot,
                },
                ticket,
            )
        };
        let mut q = shared.queue.lock().unwrap();
        // Re-check under the lock: once the dispatcher has observed
        // shutdown with an empty queue and exited, nothing may enqueue.
        if shared.shutdown.load(Ordering::Relaxed) {
            drop(q);
            shared.rejected_shutdown.fetch_add(1, Ordering::Relaxed);
            return reject(Rejected::ShuttingDown);
        }
        if q.len() >= shared.cfg.queue_capacity {
            drop(q);
            shared.rejected_queue_full.fetch_add(1, Ordering::Relaxed);
            return reject(Rejected::QueueFull {
                capacity: shared.cfg.queue_capacity,
            });
        }
        q.push_back(pending.0);
        drop(q);
        shared.tracer.end_span(adm);
        shared.submitted.fetch_add(1, Ordering::Relaxed);
        shared.work_cv.notify_one();
        Ok(pending.1)
    }

    /// Snapshot of the serving counters.
    pub fn stats(&self) -> ServeStats {
        self.shared.stats()
    }
}

/// Builder for [`Server`] — mirrors the [`Smm::builder`] idiom.
pub struct ServerBuilder<S: Scalar> {
    cfg: ServeConfig,
    smm: Option<Arc<Smm<S>>>,
    threads: Option<usize>,
}

impl<S: Scalar> Default for ServerBuilder<S> {
    fn default() -> Self {
        ServerBuilder {
            cfg: ServeConfig::default(),
            smm: None,
            threads: None,
        }
    }
}

impl<S: Scalar> ServerBuilder<S> {
    /// Bound on queued requests (clamped to at least 1).
    pub fn queue_capacity(mut self, capacity: usize) -> Self {
        self.cfg.queue_capacity = capacity.max(1);
        self
    }

    /// The shape-coalescing window.
    pub fn coalesce_window(mut self, window: Duration) -> Self {
        self.cfg.coalesce_window = window;
        self
    }

    /// Maximum requests per dispatched group (clamped to at least 1).
    pub fn max_batch(mut self, max: usize) -> Self {
        self.cfg.max_batch = max.max(1);
        self
    }

    /// How many hot shapes to pre-warm at startup (0 disables; default
    /// 64). Only effective when the runtime carries a plan database
    /// with recorded traffic.
    pub fn prewarm(mut self, shapes: usize) -> Self {
        self.cfg.prewarm = shapes;
        self
    }

    /// Serve on this existing runtime instead of building one.
    pub fn smm(mut self, smm: Arc<Smm<S>>) -> Self {
        self.smm = Some(smm);
        self
    }

    /// Worker threads for the internally built runtime (ignored when
    /// [`ServerBuilder::smm`] is supplied). Defaults to the machine's
    /// available parallelism.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Build the server and start its dispatcher thread.
    pub fn build(self) -> Server<S> {
        let smm = self.smm.unwrap_or_else(|| {
            let threads = self
                .threads
                .unwrap_or_else(|| std::thread::available_parallelism().map_or(4, |p| p.get()));
            Arc::new(Smm::builder().threads(threads).build())
        });
        let shared = Arc::new(ServeShared {
            queue: Mutex::new(VecDeque::new()),
            work_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            cfg: self.cfg,
            tracer: smm.tracer().clone(),
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            rejected_queue_full: AtomicU64::new(0),
            rejected_shutdown: AtomicU64::new(0),
            expired: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            coalesced_max: AtomicU64::new(0),
            prewarmed: AtomicU64::new(0),
        });
        let dispatcher = {
            let smm = Arc::clone(&smm);
            let shared = Arc::clone(&shared);
            smm_sync::sync::thread::Builder::new()
                .name("smm-serve-dispatch".into())
                .spawn(move || dispatcher_loop(&smm, &shared))
                .expect("failed to spawn serve dispatcher")
        };
        Server {
            shared,
            smm,
            dispatcher: Some(dispatcher),
        }
    }
}

/// An in-process GEMM server: bounded queue + coalescing dispatcher in
/// front of one [`Smm`] runtime. Construct via [`Server::builder`];
/// submit through [`Server::client`] handles; stop with
/// [`Server::shutdown`] (also run on drop), which drains the queue and
/// answers every outstanding request before returning.
pub struct Server<S: Scalar> {
    shared: Arc<ServeShared<S>>,
    smm: Arc<Smm<S>>,
    dispatcher: Option<JoinHandle<()>>,
}

impl<S: Scalar> std::fmt::Debug for Server<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("config", &self.shared.cfg)
            .finish_non_exhaustive()
    }
}

impl<S: Scalar> Server<S> {
    /// Start building a server.
    pub fn builder() -> ServerBuilder<S> {
        ServerBuilder::default()
    }

    /// A new submission handle.
    pub fn client(&self) -> Client<S> {
        Client {
            shared: Arc::clone(&self.shared),
        }
    }

    /// The runtime this server executes on (its
    /// [`stats_report`](Smm::stats_report) carries the serve-side phase
    /// spans under the `serve` call site).
    pub fn smm(&self) -> &Arc<Smm<S>> {
        &self.smm
    }

    /// The active configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.shared.cfg
    }

    /// Snapshot of the serving counters.
    pub fn stats(&self) -> ServeStats {
        self.shared.stats()
    }

    /// Graceful shutdown: stop admitting, drain the queue (every
    /// outstanding request is executed and answered), join the
    /// dispatcher, and return the final counters.
    pub fn shutdown(mut self) -> ServeStats {
        self.shutdown_inner();
        self.shared.stats()
    }

    fn shutdown_inner(&mut self) {
        {
            // Store + notify under the queue mutex so they serialize
            // with the dispatcher's check-then-wait: lock-free, they
            // could land between its shutdown check and `wait`, losing
            // the wakeup — the untimed wait would then block forever
            // and the join below would hang.
            let _q = self.shared.queue.lock().unwrap();
            self.shared.shutdown.store(true, Ordering::Relaxed);
            self.shared.work_cv.notify_all();
        }
        if let Some(handle) = self.dispatcher.take() {
            let _ = handle.join();
        }
    }
}

impl<S: Scalar> Drop for Server<S> {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// Move every queue entry matching `head`'s group key into `group`
/// (up to `max_batch` total), recording each mover's enqueue-wait.
fn extract_matching<S: Scalar>(
    q: &mut VecDeque<Pending<S>>,
    group: &mut Vec<Pending<S>>,
    max_batch: usize,
) {
    let mut i = 0;
    while i < q.len() && group.len() < max_batch {
        if group[0].same_group(&q[i]) {
            // `remove` preserves FIFO order of the rest of the queue.
            group.push(q.remove(i).expect("index checked"));
        } else {
            i += 1;
        }
    }
}

/// Answer every queued request whose deadline already passed.
fn expire_queued<S: Scalar>(q: &mut VecDeque<Pending<S>>, shared: &ServeShared<S>, now: Instant) {
    let mut i = 0;
    while i < q.len() {
        if q[i].expired(now) {
            let p = q.remove(i).expect("index checked");
            p.slot.fulfill(Err(Rejected::DeadlineExceeded));
            shared.tracer.end_span(p.span);
            shared.expired.fetch_add(1, Ordering::Relaxed);
        } else {
            i += 1;
        }
    }
}

/// Pre-warm the dispatcher for the plan database's hottest shapes:
/// build (and cache) their plans, and cycle the dispatcher-thread
/// gather arena through the buffer sizes `execute_group` will request,
/// so the first real request of a hot shape pays neither plan
/// construction nor arena growth. Runs on the dispatcher thread —
/// the arena is thread-local, so warming it anywhere else is useless.
fn prewarm_hot_shapes<S: Scalar>(smm: &Smm<S>, cfg: &ServeConfig) -> u64 {
    let mut warmed = 0u64;
    // Gather buffers scale with group size; warm for a modest expected
    // coalescing factor rather than the full max_batch, which would
    // reserve far more than steady state touches.
    let per = cfg.max_batch.clamp(1, 8);
    for (m, n, k) in smm.hot_shapes(cfg.prewarm) {
        smm.plan(m, n, k);
        let (ea, eb, ec) = (m * k, k * n, m * n);
        let a = arena::checkout::<S>(per * ea);
        let b = arena::checkout::<S>(per * eb);
        let c = arena::checkout::<S>(per * ec);
        drop((a, b, c));
        warmed += 1;
    }
    warmed
}

fn dispatcher_loop<S: Scalar>(smm: &Smm<S>, shared: &ServeShared<S>) {
    let cfg = shared.cfg.clone();
    if cfg.prewarm > 0 {
        let warmed = prewarm_hot_shapes(smm, &cfg);
        // relaxed — monotonic stat, read only by snapshotting reporters.
        shared.prewarmed.store(warmed, Ordering::Relaxed);
    }
    loop {
        // Phase 1: wait for a head request (or drain-and-exit).
        let mut q = shared.queue.lock().unwrap();
        let head = loop {
            let any_deadline = q.iter().any(|p| p.deadline.is_some());
            if any_deadline {
                expire_queued(&mut q, shared, clock::now());
            }
            if let Some(p) = q.pop_front() {
                break p;
            }
            if shared.shutdown.load(Ordering::Relaxed) {
                return;
            }
            q = shared.work_cv.wait(q).unwrap();
        };

        // Phase 2: coalesce. Grab everything already queued with the
        // same key, then hold the group open for the window.
        let popped_at = clock::now();
        let mut group = vec![head];
        extract_matching(&mut q, &mut group, cfg.max_batch);
        if group.len() < cfg.max_batch && !cfg.coalesce_window.is_zero() {
            let window_ends = popped_at + cfg.coalesce_window;
            loop {
                // Drain fast once shutdown is requested — the window
                // only trades latency for batching, and at drain time
                // latency is all that is left to optimize.
                if shared.shutdown.load(Ordering::Relaxed) {
                    break;
                }
                let now = clock::now();
                if now >= window_ends || group.len() >= cfg.max_batch {
                    break;
                }
                let (guard, _timeout) = shared.work_cv.wait_timeout(q, window_ends - now).unwrap();
                q = guard;
                extract_matching(&mut q, &mut group, cfg.max_batch);
            }
        }
        drop(q);

        // Phase 3: expire-before-dispatch, then execute and reply.
        process_group(smm, shared, group, popped_at);
    }
}

/// Execute one coalesced group and answer every member.
fn process_group<S: Scalar>(
    smm: &Smm<S>,
    shared: &ServeShared<S>,
    group: Vec<Pending<S>>,
    popped_at: Instant,
) {
    let rec = smm.telemetry().recorder(CallSite::Serve);
    let tracer = smm.tracer();
    let dispatch_start = clock::now();

    let mut live: Vec<Pending<S>> = Vec::with_capacity(group.len());
    for p in group {
        if p.expired(dispatch_start) {
            p.slot.fulfill(Err(Rejected::DeadlineExceeded));
            tracer.end_span(p.span);
            shared.expired.fetch_add(1, Ordering::Relaxed);
        } else {
            live.push(p);
        }
    }
    if live.is_empty() {
        return;
    }
    // The dispatch gets its own trace; the member spans below keep
    // their request trace ids but parent under this batch span, so an
    // exported trace links each coalesced request to the one dispatch
    // that served it. The guard also makes this span the dispatcher
    // thread's current one, nesting the `gemm`/`gemm_batch` trace of
    // `execute_group` under it.
    let batch_span = tracer.root(SpanName::CoalescedBatch, live.len() as u64);
    let members: Vec<OpenSpan> = live
        .iter()
        .enumerate()
        .map(|(i, p)| {
            tracer.begin_span(
                TraceCtx {
                    trace: p.span.trace,
                    parent: batch_span.span(),
                },
                SpanName::Member,
                i as u64,
            )
        })
        .collect();
    if rec.active() {
        for p in &live {
            let waited = dispatch_start.saturating_duration_since(p.enqueued);
            rec.span_ns(Phase::EnqueueWait, waited.as_nanos() as u64);
        }
        let held = dispatch_start.saturating_duration_since(popped_at);
        rec.span_ns(Phase::Coalesce, held.as_nanos() as u64);
    }

    let (m, n, k) = (live[0].req.m, live[0].req.n, live[0].req.k);
    let (alpha, beta) = (live[0].req.alpha, live[0].req.beta);
    let outcome = execute_group(smm, &mut live, m, n, k, alpha, beta);
    let replied_at = if rec.active() {
        let done = clock::now();
        rec.span_ns(
            Phase::Dispatch,
            done.saturating_duration_since(dispatch_start).as_nanos() as u64,
        );
        Some(done)
    } else {
        None
    };

    shared.batches.fetch_add(1, Ordering::Relaxed);
    shared
        .coalesced_max
        .fetch_max(live.len() as u64, Ordering::Relaxed);
    let count = live.len() as u64;
    // One label for the whole group, built only when it can be used.
    let slow_label = if tracer.enabled() {
        format!("serve {m}x{n}x{k}")
    } else {
        String::new()
    };
    let reply_span = tracer.span(SpanName::Reply, count);
    for (i, mut p) in live.into_iter().enumerate() {
        let c = std::mem::take(&mut p.req.c);
        match &outcome {
            Ok(()) => {
                p.slot.fulfill(Ok(c));
                shared.completed.fetch_add(1, Ordering::Relaxed);
            }
            Err(e) => p.slot.fulfill(Err(e.clone())),
        }
        tracer.end_span(members[i]);
        tracer.end_span(p.span);
        if tracer.enabled() {
            // End-to-end latency (submission → reply fulfilled); a
            // breach pins this request's full span tree. The spans
            // were ended above, so the snapshot sees the whole tree.
            let total_ns = clock::now()
                .saturating_duration_since(p.enqueued)
                .as_nanos() as u64;
            tracer.note_request_done(p.span.trace, total_ns, &slow_label);
        }
    }
    drop(reply_span);
    drop(batch_span);
    if let Some(replied_at) = replied_at {
        let end = clock::now();
        rec.span_ns(
            Phase::Reply,
            end.saturating_duration_since(replied_at).as_nanos() as u64,
        );
        if outcome.is_ok() {
            // Per-shape accounting: dispatch start → replies done, i.e.
            // the service-side cost excluding the deliberate window.
            smm.telemetry().record_call(
                CallSite::Serve,
                m,
                n,
                k,
                S::BYTES,
                count,
                end.saturating_duration_since(dispatch_start).as_nanos() as u64,
            );
        }
    }
}

/// Run the group's GEMMs: directly for a group of one, as one strided
/// batch otherwise. Results land in each member's `req.c`.
fn execute_group<S: Scalar>(
    smm: &Smm<S>,
    live: &mut [Pending<S>],
    m: usize,
    n: usize,
    k: usize,
    alpha: S,
    beta: S,
) -> Result<(), Rejected> {
    if live.len() == 1 {
        let p = &mut live[0];
        if m == 0 || n == 0 {
            return Ok(());
        }
        if k == 0 {
            MatMut::from_slice(&mut p.req.c, m, n, m).scale(beta);
            return Ok(());
        }
        let a = MatRef::from_slice(&p.req.a, m, k, m);
        let b = MatRef::from_slice(&p.req.b, k, n, k);
        let c = MatMut::from_slice(&mut p.req.c, m, n, m);
        smm.gemm(alpha, a, b, beta, c);
        return Ok(());
    }
    // Coalesced path: gather the dense prefixes into flat strided
    // buffers so the whole group is one plan + one pool dispatch. The
    // gather buffers come from the dispatcher thread's packing arena —
    // a steady stream of same-shape groups reuses the same storage
    // instead of allocating three fresh vectors per group.
    let desc = StridedBatch::dense(m, n, k, live.len());
    let (ea, eb, ec) = (m * k, k * n, m * n);
    let mut fa = arena::checkout::<S>(live.len() * ea);
    let mut fb = arena::checkout::<S>(live.len() * eb);
    let mut fc = arena::checkout::<S>(live.len() * ec);
    for p in live.iter() {
        fa.extend_from_slice(&p.req.a[..ea]);
        fb.extend_from_slice(&p.req.b[..eb]);
        fc.extend_from_slice(&p.req.c[..ec]);
    }
    smm.gemm_batch(&desc, alpha, &fa, &fb, beta, &mut fc)
        .map_err(Rejected::Invalid)?;
    for (i, p) in live.iter_mut().enumerate() {
        p.req.c[..ec].copy_from_slice(&fc[i * desc.stride_c..][..ec]);
    }
    Ok(())
}
