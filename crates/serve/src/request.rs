//! Request, rejection, and reply types of the serving layer.

use std::fmt;
use std::sync::Arc;
use std::time::Duration;

use smm_sync::sync::{Condvar, Mutex};

use smm_core::{Operand, SmmError};
use smm_kernels::Scalar;

/// One GEMM to serve: `C = alpha·A·B + beta·C` over owned column-major
/// buffers (`A` is `m × k` with leading dimension `m`, `B` is `k × n`
/// with leading dimension `k`, `C` is `m × n` with leading dimension
/// `m`). Buffers longer than the dense extent are accepted; only the
/// dense prefix is read and written.
#[derive(Debug, Clone, PartialEq)]
pub struct GemmRequest<S: Scalar> {
    /// Rows of `A`/`C`.
    pub m: usize,
    /// Columns of `B`/`C`.
    pub n: usize,
    /// Inner dimension.
    pub k: usize,
    /// Scale on `A·B`.
    pub alpha: S,
    /// Scale on the incoming `C`.
    pub beta: S,
    /// Column-major `A` (at least `m·k` elements).
    pub a: Vec<S>,
    /// Column-major `B` (at least `k·n` elements).
    pub b: Vec<S>,
    /// Column-major `C` (at least `m·n` elements); read when
    /// `beta != 0`, returned with the result.
    pub c: Vec<S>,
    /// Optional deadline, relative to submission. A request whose
    /// deadline passes while it waits in the queue (or in the
    /// coalescing window) is answered [`Rejected::DeadlineExceeded`]
    /// *before* dispatch — expired work is never computed.
    pub deadline: Option<Duration>,
}

impl<S: Scalar> GemmRequest<S> {
    /// A request with `alpha = 1`, `beta = 0`, a zeroed `C`, and no
    /// deadline.
    pub fn new(m: usize, n: usize, k: usize, a: Vec<S>, b: Vec<S>) -> Self {
        GemmRequest {
            m,
            n,
            k,
            alpha: S::ONE,
            beta: S::ZERO,
            a,
            b,
            c: vec![S::ZERO; m.saturating_mul(n)],
            deadline: None,
        }
    }

    /// Attach a deadline (relative to submission).
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Validate buffer extents against the dense column-major layout.
    pub(crate) fn validate(&self) -> Result<(), SmmError> {
        let need = |rows: usize, cols: usize| rows.saturating_mul(cols);
        let checks = [
            (Operand::A, self.a.len(), need(self.m, self.k)),
            (Operand::B, self.b.len(), need(self.k, self.n)),
            (Operand::C, self.c.len(), need(self.m, self.n)),
        ];
        for (operand, len, need) in checks {
            if len < need {
                return Err(SmmError::BufferTooShort { operand, len, need });
            }
        }
        Ok(())
    }
}

/// Why the serving layer did not (or will not) answer a request with a
/// result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Rejected {
    /// The bounded admission queue was full at submission — explicit
    /// backpressure; the caller should retry later or shed load.
    QueueFull {
        /// The queue capacity that was exhausted.
        capacity: usize,
    },
    /// The request's deadline passed before dispatch; no work was done.
    DeadlineExceeded,
    /// The server is shutting down and no longer admits requests
    /// (everything admitted before shutdown is still drained and
    /// answered).
    ShuttingDown,
    /// The TCP front end refused the connection because its concurrent
    /// connection limit was reached — per-connection backpressure;
    /// retry on a fresh connection once existing ones close.
    Busy {
        /// The connection limit that was exhausted.
        max_connections: usize,
    },
    /// The request failed validation.
    Invalid(SmmError),
    /// A wire/transport-level failure (malformed frame, oversized
    /// frame, unexpected opcode, or a broken connection).
    Protocol(String),
}

impl fmt::Display for Rejected {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Rejected::QueueFull { capacity } => {
                write!(f, "admission queue full (capacity {capacity})")
            }
            Rejected::DeadlineExceeded => write!(f, "deadline exceeded before dispatch"),
            Rejected::ShuttingDown => write!(f, "server is shutting down"),
            Rejected::Busy { max_connections } => {
                write!(f, "connection limit reached (max {max_connections})")
            }
            Rejected::Invalid(e) => write!(f, "invalid request: {e}"),
            Rejected::Protocol(msg) => write!(f, "protocol error: {msg}"),
        }
    }
}

impl std::error::Error for Rejected {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Rejected::Invalid(e) => Some(e),
            _ => None,
        }
    }
}

/// One-shot reply slot shared between a [`Ticket`] and the dispatcher.
/// Fulfilled exactly once: the first write wins, later writes are
/// impossible by construction (every dispatcher path consumes the
/// pending request when it answers).
pub(crate) struct ReplySlot<S: Scalar> {
    state: Mutex<Option<Result<Vec<S>, Rejected>>>,
    cv: Condvar,
}

impl<S: Scalar> ReplySlot<S> {
    pub(crate) fn fulfill(&self, result: Result<Vec<S>, Rejected>) {
        let mut st = self.state.lock().unwrap();
        debug_assert!(st.is_none(), "reply slot fulfilled twice");
        *st = Some(result);
        self.cv.notify_all();
    }
}

/// A handle to one submitted request's eventual answer.
///
/// Every admitted request is answered exactly once — with its result,
/// or with a typed [`Rejected`] — including during graceful shutdown,
/// so [`Ticket::wait`] never blocks forever against a live server.
pub struct Ticket<S: Scalar> {
    slot: Arc<ReplySlot<S>>,
}

impl<S: Scalar> Ticket<S> {
    /// Block until the request is answered and take the result (the
    /// returned `Vec` is the request's `C` buffer, updated).
    pub fn wait(self) -> Result<Vec<S>, Rejected> {
        let mut st = self.slot.state.lock().unwrap();
        loop {
            if let Some(result) = st.take() {
                return result;
            }
            st = self.slot.cv.wait(st).unwrap();
        }
    }

    /// Non-blocking poll: the answer if it is already in.
    pub fn try_take(&self) -> Option<Result<Vec<S>, Rejected>> {
        self.slot.state.lock().unwrap().take()
    }
}

impl<S: Scalar> fmt::Debug for Ticket<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Ticket").finish_non_exhaustive()
    }
}

/// A connected (slot, ticket) pair for one request.
pub(crate) fn reply_pair<S: Scalar>() -> (Arc<ReplySlot<S>>, Ticket<S>) {
    let slot = Arc::new(ReplySlot {
        state: Mutex::new(None),
        cv: Condvar::new(),
    });
    (slot.clone(), Ticket { slot })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validate_checks_dense_extents() {
        let ok = GemmRequest::<f32>::new(3, 4, 5, vec![0.0; 15], vec![0.0; 20]);
        assert!(ok.validate().is_ok());
        let mut short_a = ok.clone();
        short_a.a.truncate(14);
        assert_eq!(
            short_a.validate().unwrap_err(),
            SmmError::BufferTooShort {
                operand: Operand::A,
                len: 14,
                need: 15
            }
        );
        let mut short_c = ok.clone();
        short_c.c.truncate(2);
        assert_eq!(
            short_c.validate().unwrap_err(),
            SmmError::BufferTooShort {
                operand: Operand::C,
                len: 2,
                need: 12
            }
        );
    }

    #[test]
    fn ticket_roundtrip_and_single_fulfillment() {
        let (slot, ticket) = reply_pair::<f32>();
        assert!(ticket.try_take().is_none());
        slot.fulfill(Ok(vec![1.0, 2.0]));
        assert_eq!(ticket.wait().unwrap(), vec![1.0, 2.0]);
    }

    #[test]
    fn rejected_displays_are_descriptive() {
        assert!(Rejected::QueueFull { capacity: 8 }
            .to_string()
            .contains("8"));
        assert!(Rejected::DeadlineExceeded.to_string().contains("deadline"));
        assert!(Rejected::ShuttingDown.to_string().contains("shutting down"));
        assert!(Rejected::Protocol("bad frame".into())
            .to_string()
            .contains("bad frame"));
    }
}
