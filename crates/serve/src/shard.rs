//! Shard topology: the shape-affine router and the fleet report.
//!
//! # Shards as panels
//!
//! The paper characterizes the Phytium 2000+ as 8 panels of 8 cores,
//! where a core's memory cost depends on whether its operands live in
//! panel-local or remote DRAM (§II, Table I) — the same topology
//! `smm-simarch` models with `cores_per_panel = 8`, `panels = 8`, and
//! a panel-aware allocator. The sharded server maps that topology onto
//! serving: each shard is one `Smm` runtime whose plan cache, packing
//! arenas, and worker pool are private — in simarch terms, pinned to
//! the panel [`shard_panel`] assigns — so a request routed to its home
//! shard touches only panel-local state, and the cross-shard
//! synchronization the paper's Table II warns about is confined to the
//! explicitly model-checked stealing protocol.
//!
//! # Routing
//!
//! [`route_shape`] is FNV-1a over `(m, n, k)`: the same shape always
//! lands on the same shard (IAAT-style input-aware locality — plans
//! and arenas for a shape stay hot in exactly one runtime), while
//! distinct shapes spread uniformly. Load imbalance is handled by the
//! two escape hatches — router *spill* (admission side) and dispatcher
//! *stealing* (consumption side) — both of which keep the request's
//! telemetry origin on its home shard.
//!
//! # The fleet report
//!
//! [`FleetReport`] aggregates N per-shard [`TelemetryReport`]s plus
//! per-shard [`ServeStats`] into one document behind the existing
//! `STATS` opcode: JSON nests per-shard sections under a merged fleet
//! view; the Prometheus rendering emits the merged fleet families
//! unlabeled plus per-shard serving/runtime series carrying a
//! `shard="i"` label.

use std::sync::Arc;

use smm_core::{Smm, TelemetryReport};
use smm_kernels::Scalar;

use crate::server::{ServeStats, Server};

/// The paper's Phytium 2000+ panel count (8 panels × 8 cores); shards
/// map onto panels round-robin via [`shard_panel`].
pub const PAPER_PANELS: usize = 8;

/// The simarch panel a shard is (notionally) pinned to.
pub fn shard_panel(shard: usize) -> usize {
    shard % PAPER_PANELS
}

/// FNV-1a over the shape triple plus a 64-bit avalanche finalizer,
/// reduced to a shard index. Stable across runs (no randomized
/// hasher): the same shape always routes to the same home shard,
/// which is what keeps per-shard plan caches and arenas shape-hot.
/// The finalizer matters: the paper's shapes are tiny, so the FNV
/// state is dominated by runs of zero bytes whose low bits barely
/// vary, and reducing it directly mod a small shard count piles every
/// small shape onto one shard.
pub fn route_shape(m: usize, n: usize, k: usize, shards: usize) -> usize {
    if shards <= 1 {
        return 0;
    }
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for dim in [m as u64, n as u64, k as u64] {
        for byte in dim.to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^= h >> 33;
    h = h.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    h ^= h >> 33;
    (h % shards as u64) as usize
}

/// One shard's slice of the fleet report.
#[derive(Debug, Clone)]
pub struct ShardSection {
    /// Shard index.
    pub shard: usize,
    /// The simarch panel this shard maps to ([`shard_panel`]).
    pub panel: usize,
    /// The shard's serving counters.
    pub serve: ServeStats,
    /// The shard runtime's full telemetry report.
    pub telemetry: TelemetryReport,
}

/// The aggregated view of a sharded server: per-shard sections plus
/// the fleet-wide merge ([`TelemetryReport::absorb`] over every shard,
/// [`ServeStats::absorb`] over every shard's counters).
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// Per-shard sections, indexed by shard.
    pub shards: Vec<ShardSection>,
    /// Fleet-wide serving counters (sums/maxes of the per-shard ones).
    pub serve: ServeStats,
    /// Fleet-wide telemetry (per-shard reports absorbed into one).
    pub telemetry: TelemetryReport,
}

/// Build a [`FleetReport`] from each shard's runtime and a per-shard
/// serving-counter source. (The serving layer calls this both from
/// [`Server::fleet_report`] and from the TCP front end's `STATS`
/// path, which holds runtime handles but not the `Server` itself.)
pub fn gather_fleet<S: Scalar>(
    smms: &[Arc<Smm<S>>],
    serve_stats: impl Fn(usize) -> ServeStats,
) -> FleetReport {
    let shards: Vec<ShardSection> = smms
        .iter()
        .enumerate()
        .map(|(i, smm)| ShardSection {
            shard: i,
            panel: shard_panel(i),
            serve: serve_stats(i),
            telemetry: smm.stats_report(),
        })
        .collect();
    let mut serve = ServeStats::default();
    for s in &shards {
        serve.absorb(&s.serve);
    }
    let mut telemetry = shards[0].telemetry.clone();
    for s in &shards[1..] {
        telemetry.absorb(&s.telemetry);
    }
    FleetReport {
        shards,
        serve,
        telemetry,
    }
}

impl<S: Scalar> Server<S> {
    /// The aggregated fleet report: per-shard telemetry + serving
    /// counters, merged. On a single-shard server the fleet telemetry
    /// is exactly [`Server::smm`]'s own `stats_report`.
    pub fn fleet_report(&self) -> FleetReport {
        gather_fleet(self.smms(), |i| self.shard_stats(i))
    }
}

fn serve_stats_json(s: &ServeStats) -> String {
    format!(
        "{{\"submitted\": {}, \"completed\": {}, \"rejected_queue_full\": {}, \"rejected_shutdown\": {}, \"expired\": {}, \"batches\": {}, \"coalesced_max\": {}, \"queue_depth\": {}, \"prewarmed\": {}, \"stolen\": {}, \"spilled\": {}, \"coalescing_factor\": {:.6}}}",
        s.submitted,
        s.completed,
        s.rejected_queue_full,
        s.rejected_shutdown,
        s.expired,
        s.batches,
        s.coalesced_max,
        s.queue_depth,
        s.prewarmed,
        s.stolen,
        s.spilled,
        s.coalescing_factor()
    )
}

impl FleetReport {
    /// Number of shards in the report.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Serialize to a self-contained JSON document: a `shards` array
    /// of per-shard sections (serving counters + full telemetry), the
    /// fleet-wide `serve` sums, and the merged fleet `telemetry`.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(8192);
        s.push_str("{\n");
        s.push_str(&format!("  \"shard_count\": {},\n", self.shards.len()));
        s.push_str("  \"shards\": [\n");
        for (i, sh) in self.shards.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"shard\": {}, \"panel\": {}, \"serve\": {}, \"telemetry\": {}}}{}\n",
                sh.shard,
                sh.panel,
                serve_stats_json(&sh.serve),
                sh.telemetry.to_json().trim_end(),
                if i + 1 < self.shards.len() { "," } else { "" }
            ));
        }
        s.push_str("  ],\n");
        s.push_str(&format!(
            "  \"serve\": {},\n",
            serve_stats_json(&self.serve)
        ));
        s.push_str(&format!(
            "  \"telemetry\": {}\n",
            self.telemetry.to_json().trim_end()
        ));
        s.push_str("}\n");
        s
    }

    /// Serialize to a Prometheus text exposition: the merged fleet
    /// telemetry (unlabeled, exactly [`TelemetryReport::to_prometheus`]
    /// of the merge) followed by the serving-counter families, each
    /// emitted as one contiguous block carrying the fleet value bare
    /// plus one `shard="i"`-labeled series per shard.
    pub fn to_prometheus(&self) -> String {
        let mut s = self.telemetry.to_prometheus();
        // One family block per counter: `# TYPE` line, fleet value
        // bare, then the per-shard labeled series — contiguous, so the
        // exposition stays well-formed for strict scrapers.
        let counter = |s: &mut String, name: &str, fleet: u64, per: &dyn Fn(&ServeStats) -> u64| {
            s.push_str(&format!("# TYPE {name} counter\n{name} {fleet}\n"));
            for sh in &self.shards {
                s.push_str(&format!(
                    "{name}{{shard=\"{}\"}} {}\n",
                    sh.shard,
                    per(&sh.serve)
                ));
            }
        };
        let gauge = |s: &mut String, name: &str, fleet: u64, per: &dyn Fn(&ServeStats) -> u64| {
            s.push_str(&format!("# TYPE {name} gauge\n{name} {fleet}\n"));
            for sh in &self.shards {
                s.push_str(&format!(
                    "{name}{{shard=\"{}\"}} {}\n",
                    sh.shard,
                    per(&sh.serve)
                ));
            }
        };
        let f = &self.serve;
        counter(&mut s, "smm_serve_submitted_total", f.submitted, &|s| {
            s.submitted
        });
        counter(&mut s, "smm_serve_completed_total", f.completed, &|s| {
            s.completed
        });
        counter(
            &mut s,
            "smm_serve_rejected_queue_full_total",
            f.rejected_queue_full,
            &|s| s.rejected_queue_full,
        );
        counter(
            &mut s,
            "smm_serve_rejected_shutdown_total",
            f.rejected_shutdown,
            &|s| s.rejected_shutdown,
        );
        counter(&mut s, "smm_serve_expired_total", f.expired, &|s| s.expired);
        counter(&mut s, "smm_serve_batches_total", f.batches, &|s| s.batches);
        counter(&mut s, "smm_serve_prewarmed_total", f.prewarmed, &|s| {
            s.prewarmed
        });
        counter(&mut s, "smm_serve_stolen_total", f.stolen, &|s| s.stolen);
        counter(&mut s, "smm_serve_spilled_total", f.spilled, &|s| s.spilled);
        gauge(
            &mut s,
            "smm_serve_queue_depth",
            f.queue_depth as u64,
            &|s| s.queue_depth as u64,
        );
        gauge(&mut s, "smm_serve_coalesced_max", f.coalesced_max, &|s| {
            s.coalesced_max
        });
        // Per-shard runtime series: enough to see skew (panel
        // placement, useful work, plan locality) without duplicating
        // the whole telemetry exposition per shard.
        s.push_str("# TYPE smm_shard_panel gauge\n");
        for sh in &self.shards {
            s.push_str(&format!(
                "smm_shard_panel{{shard=\"{}\"}} {}\n",
                sh.shard, sh.panel
            ));
        }
        s.push_str("# TYPE smm_shard_flops_total counter\n");
        for sh in &self.shards {
            s.push_str(&format!(
                "smm_shard_flops_total{{shard=\"{}\"}} {}\n",
                sh.shard, sh.telemetry.flops
            ));
        }
        s.push_str("# TYPE smm_shard_plan_cache_hits_total counter\n");
        for sh in &self.shards {
            s.push_str(&format!(
                "smm_shard_plan_cache_hits_total{{shard=\"{}\"}} {}\n",
                sh.shard, sh.telemetry.runtime.plan_hits
            ));
        }
        s.push_str("# TYPE smm_shard_tuner_db_hits_total counter\n");
        for sh in &self.shards {
            s.push_str(&format!(
                "smm_shard_tuner_db_hits_total{{shard=\"{}\"}} {}\n",
                sh.shard, sh.telemetry.tuner.db_hits
            ));
        }
        s
    }
}

impl std::fmt::Display for FleetReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "fleet report ({} shards)", self.shards.len())?;
        writeln!(f, "{}", self.serve)?;
        for sh in &self.shards {
            writeln!(
                f,
                "  shard {} (panel {}): {} submitted, {} completed, {} batches, {} stolen, {} spilled, {} queued",
                sh.shard,
                sh.panel,
                sh.serve.submitted,
                sh.serve.completed,
                sh.serve.batches,
                sh.serve.stolen,
                sh.serve.spilled,
                sh.serve.queue_depth
            )?;
        }
        write!(f, "{}", self.telemetry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_is_deterministic_and_in_range() {
        for shards in 1..=8 {
            for (m, n, k) in [(4, 4, 4), (8, 8, 8), (16, 4, 64), (1, 1, 1)] {
                let a = route_shape(m, n, k, shards);
                let b = route_shape(m, n, k, shards);
                assert_eq!(a, b);
                assert!(a < shards);
            }
        }
        assert_eq!(route_shape(64, 64, 64, 1), 0);
    }

    #[test]
    fn routing_spreads_distinct_shapes() {
        let shards = 4;
        let mut hit = vec![false; shards];
        for m in 1..=16 {
            for n in 1..=4 {
                hit[route_shape(m, n, 8, shards)] = true;
            }
        }
        assert!(hit.iter().all(|&h| h), "some shard never selected: {hit:?}");
    }

    #[test]
    fn panels_follow_the_paper_topology() {
        assert_eq!(PAPER_PANELS, 8);
        assert_eq!(shard_panel(0), 0);
        assert_eq!(shard_panel(7), 7);
        assert_eq!(shard_panel(8), 0);
        assert_eq!(shard_panel(11), 3);
    }
}
