//! `std::net` TCP front end over the in-process [`Server`]: a fixed
//! pool of reader threads multiplexing nonblocking connections.
//!
//! The thread-per-connection acceptor this replaces spent one OS
//! thread (stack, scheduler slot, park/unpark churn) per connection —
//! exactly the per-unit overhead the paper's small-shape analysis
//! warns against, applied to connections instead of GEMM tiles. Here
//! one acceptor thread admits connections up to a configurable cap
//! ([`DEFAULT_MAX_CONNECTIONS`] unless overridden via
//! [`TcpServer::bind_with_max_conns`]), refusing over-cap connects
//! with a typed [`ERR_BUSY`](crate::wire::ERR_BUSY) reply, and hands
//! each admitted stream round-robin to one of [`READER_THREADS`]
//! reader threads. Each reader sweeps its connections: flush buffered
//! reply bytes, resolve finished [`Ticket`](crate::Ticket)s in FIFO
//! order per connection, read whatever bytes are available without
//! blocking, and re-frame them incrementally — a frame split across
//! any number of reads is reassembled byte-for-byte. Requests are
//! submitted through the shared [`Client`] and **never awaited on the
//! reader thread**: the reader parks the ticket next to the
//! connection and polls it with [`Ticket::try_take`] on later sweeps,
//! so thousands of idle or slow connections cost buffers, not
//! threads, and one stalled request never blocks the other
//! connections on its reader.
//!
//! Fairness and backpressure are explicit: at most
//! [`FRAMES_PER_SWEEP`] frames are decoded per connection per sweep
//! (the slow-reader starvation bound — one firehose connection cannot
//! monopolize its reader), and a connection whose reply buffer or
//! pending-reply queue is over the high-water mark stops being read
//! until it drains. Malformed payloads get a typed protocol-error
//! reply and the connection stays up; an oversized length prefix
//! desynchronizes the stream, so the reader queues one error reply
//! and closes after flushing it.
//!
//! `STATS` frames are answered from the same process state a local
//! report would see: a single-shard server renders
//! `Smm::stats_report` byte-identically to the in-process path, and a
//! sharded server renders the aggregated [`FleetReport`]
//! (per-shard sections plus the merged fleet view).
//!
//! Shutdown never relies on read timeouts: readers poll the stop flag
//! every sweep and never block on a socket, so [`TcpServer::shutdown`]
//! just raises the flag, wakes the acceptor with a self-connection,
//! and joins everything before draining the inner [`Server`].

use std::collections::VecDeque;
use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use smm_core::Smm;

use crate::request::{GemmRequest, Rejected, Ticket};
use crate::server::{Client, ServeStats, Server};
use crate::shard::gather_fleet;
use crate::wire::{self, FrameRead, WireMsg, ERR_PROTOCOL};

/// Default cap on concurrent TCP connections — see
/// [`TcpServer::bind_with_max_conns`] to tune it. The multiplexed
/// front end holds an idle connection for the cost of its buffers, so
/// the default is 16× the old thread-per-connection cap of 256.
pub const DEFAULT_MAX_CONNECTIONS: usize = 4096;

/// Number of reader threads multiplexing the admitted connections.
/// Two is enough to overlap frame parsing with reply flushing on the
/// small hosts this targets; connections are assigned round-robin at
/// accept and never migrate.
pub const READER_THREADS: usize = 2;

/// Per-connection fairness bound: at most this many frames are
/// decoded from one connection in one reader sweep. A connection
/// blasting pipelined requests yields to its reader-mates after this
/// many, so sweep latency for every other connection on the same
/// reader is bounded.
pub const FRAMES_PER_SWEEP: usize = 32;

/// Stop reading from a connection whose un-flushed reply bytes exceed
/// this; reading resumes once the peer drains below it.
const WBUF_HIGH: usize = 1 << 20;

/// Stop reading from a connection with this many unanswered requests
/// in flight; resumes as replies complete.
const PENDING_HIGH: usize = 256;

/// Reader park time when a sweep made no progress on any connection.
const IDLE_SLEEP: Duration = Duration::from_micros(200);

/// Sweeps without progress before a connection is parked: parked
/// connections are probed only every [`PARKED_PERIOD`]-th sweep, so a
/// flood of idle connections costs a fraction of a read syscall per
/// sweep each instead of one. A connection with replies in flight is
/// never parked, and any progress instantly un-parks.
const PARK_AFTER: u32 = 16;

/// Probe period (in sweeps) for parked connections, staggered per
/// connection so the probes spread across sweeps instead of bunching.
const PARKED_PERIOD: u64 = 32;

struct TcpShared {
    /// Stop flag for the acceptor and readers; relaxed — it is only a
    /// one-way latch polled once per sweep, and the joins in
    /// `shutdown` provide the final synchronization.
    stop: AtomicBool,
    client: Client<f32>,
    /// Handles to every shard runtime, so a `STATS` frame can be
    /// answered with the same per-shard `TelemetryReport`s that
    /// `Smm::stats_report` yields in-process (and, for one shard,
    /// byte-identically to it).
    smms: Vec<Arc<Smm<f32>>>,
    /// Live-connection count the `max_connections` cap is enforced
    /// against. Relaxed — only the acceptor increments (so admission
    /// never races itself) and only readers decrement; transient
    /// staleness can refuse a connect a moment late or early, which
    /// the typed busy reply already tells callers to expect.
    conn_count: AtomicUsize,
    /// Concurrent-connection cap; accepts beyond it are answered with
    /// a typed busy reply and closed.
    max_connections: usize,
}

/// One reply owed to a connection, in request order.
enum PendingReply {
    /// Already-encoded payload waiting to be framed out.
    Ready(Vec<u8>),
    /// A submitted request whose ticket the reader polls.
    Waiting {
        ticket: Ticket<f32>,
        m: usize,
        n: usize,
    },
}

/// Per-connection multiplexing state owned by one reader thread.
struct Conn {
    stream: TcpStream,
    /// Bytes read but not yet consumed by the framer.
    rbuf: Vec<u8>,
    /// Encoded reply frames not yet written; `wpos` is the flush
    /// cursor (partial nonblocking writes resume from it).
    wbuf: Vec<u8>,
    wpos: usize,
    /// Replies owed, FIFO in request order — wire clients expect
    /// replies in submission order on one connection.
    pending: VecDeque<PendingReply>,
    /// Reading stopped (peer EOF or stream desync); the connection is
    /// dropped once every owed reply is flushed.
    closing: bool,
    /// Consecutive sweeps without progress; at [`PARK_AFTER`] the
    /// connection is parked (probed every [`PARKED_PERIOD`] sweeps).
    idle_streak: u32,
    /// Stagger offset so parked probes spread across sweeps.
    phase: u64,
}

impl Conn {
    fn new(stream: TcpStream, phase: u64) -> Conn {
        Conn {
            stream,
            rbuf: Vec::new(),
            wbuf: Vec::new(),
            wpos: 0,
            pending: VecDeque::new(),
            closing: false,
            idle_streak: 0,
            phase,
        }
    }

    fn queue_frame(&mut self, payload: &[u8]) {
        self.wbuf
            .extend_from_slice(&(payload.len() as u32).to_le_bytes());
        self.wbuf.extend_from_slice(payload);
    }
}

/// A TCP server speaking the [`wire`](crate::wire) protocol in front
/// of an in-process [`Server<f32>`] (single-shard or sharded). Stop
/// with [`TcpServer::shutdown`] (also run on drop), which joins the
/// acceptor and reader threads and gracefully drains the inner
/// server.
pub struct TcpServer {
    shared: Arc<TcpShared>,
    server: Option<Server<f32>>,
    addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
    readers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for TcpServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpServer")
            .field("addr", &self.addr)
            .field("shards", &self.shared.smms.len())
            .finish_non_exhaustive()
    }
}

impl TcpServer {
    /// Bind `addr` (use port 0 for an ephemeral port — see
    /// [`TcpServer::local_addr`]) and start serving `server` over it,
    /// with the [`DEFAULT_MAX_CONNECTIONS`] concurrent-connection cap.
    pub fn bind(server: Server<f32>, addr: impl ToSocketAddrs) -> std::io::Result<TcpServer> {
        TcpServer::bind_with_max_conns(server, addr, DEFAULT_MAX_CONNECTIONS)
    }

    /// [`TcpServer::bind`] with an explicit concurrent-connection cap
    /// (clamped to at least 1). Connections accepted while the cap is
    /// reached get one [`ERR_BUSY`](crate::wire::ERR_BUSY) reply frame
    /// — carrying the cap in its detail field — and are closed, so a
    /// flood of connections cannot grow memory without bound (threads
    /// are fixed regardless: one acceptor plus [`READER_THREADS`]
    /// readers).
    pub fn bind_with_max_conns(
        server: Server<f32>,
        addr: impl ToSocketAddrs,
        max_connections: usize,
    ) -> std::io::Result<TcpServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(TcpShared {
            stop: AtomicBool::new(false),
            client: server.client(),
            smms: server.smms().to_vec(),
            conn_count: AtomicUsize::new(0),
            max_connections: max_connections.max(1),
        });
        let inboxes: Vec<Arc<Mutex<Vec<TcpStream>>>> = (0..READER_THREADS)
            .map(|_| Arc::new(Mutex::new(Vec::new())))
            .collect();
        let mut readers = Vec::with_capacity(READER_THREADS);
        for (i, inbox) in inboxes.iter().enumerate() {
            let shared = Arc::clone(&shared);
            let inbox = Arc::clone(inbox);
            readers.push(
                std::thread::Builder::new()
                    .name(format!("smm-serve-reader-{i}"))
                    .spawn(move || reader_loop(&shared, &inbox))
                    .expect("failed to spawn serve reader"),
            );
        }
        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("smm-serve-accept".into())
                .spawn(move || accept_loop(&listener, &shared, &inboxes))
                .expect("failed to spawn serve acceptor")
        };
        Ok(TcpServer {
            shared,
            server: Some(server),
            addr,
            acceptor: Some(acceptor),
            readers,
        })
    }

    /// The bound address (resolves port 0 to the actual port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Number of runtime shards behind this front end.
    pub fn shards(&self) -> usize {
        self.shared.smms.len()
    }

    /// Serving counters of the inner server (fleet-wide sums on a
    /// sharded server).
    pub fn stats(&self) -> ServeStats {
        self.shared.client.stats()
    }

    /// Stop accepting, close live connections, join every reader, and
    /// gracefully drain the inner server. Returns the final counters.
    pub fn shutdown(mut self) -> ServeStats {
        self.shutdown_inner();
        let server = self.server.take().expect("shutdown runs once");
        server.shutdown()
    }

    fn shutdown_inner(&mut self) {
        self.shared.stop.store(true, Ordering::Relaxed);
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        // Readers never block on sockets — they observe `stop` within
        // one sweep, drop their connections (closing the streams), and
        // exit.
        for reader in self.readers.drain(..) {
            let _ = reader.join();
        }
    }
}

impl Drop for TcpServer {
    fn drop(&mut self) {
        self.shutdown_inner();
        // The inner Server's own Drop performs the graceful drain if
        // `shutdown` was not called explicitly.
    }
}

fn accept_loop(
    listener: &TcpListener,
    shared: &Arc<TcpShared>,
    inboxes: &[Arc<Mutex<Vec<TcpStream>>>],
) {
    let mut next = 0usize;
    for stream in listener.incoming() {
        if shared.stop.load(Ordering::Relaxed) {
            return;
        }
        let Ok(mut stream) = stream else { continue };
        // Request/reply with small frames: Nagle only adds latency.
        let _ = stream.set_nodelay(true);
        if shared.conn_count.load(Ordering::Relaxed) >= shared.max_connections {
            let busy = wire::encode_reply_err(
                wire::ERR_BUSY,
                shared.max_connections as u32,
                &format!("connection limit reached (max {})", shared.max_connections),
            );
            let _ = wire::write_frame(&mut stream, &busy);
            let _ = stream.flush();
            continue;
        }
        // The readers only ever sweep nonblocking streams; refuse a
        // stream we cannot switch rather than risk a blocking read on
        // a reader thread.
        if stream.set_nonblocking(true).is_err() {
            continue;
        }
        shared.conn_count.fetch_add(1, Ordering::Relaxed);
        inboxes[next].lock().unwrap().push(stream);
        next = (next + 1) % inboxes.len();
    }
}

/// One reader thread: sweep owned connections until stop.
fn reader_loop(shared: &Arc<TcpShared>, inbox: &Mutex<Vec<TcpStream>>) {
    let mut conns: Vec<Conn> = Vec::new();
    let mut tick: u64 = 0;
    let mut next_phase: u64 = 0;
    loop {
        if shared.stop.load(Ordering::Relaxed) {
            // Dropping the streams closes them, unblocking any peer
            // mid-read; in-flight tickets are answered (or rejected)
            // by the inner server's own drain.
            shared.conn_count.fetch_sub(conns.len(), Ordering::Relaxed);
            return;
        }
        tick = tick.wrapping_add(1);
        let mut progress = false;
        {
            let mut inbox = inbox.lock().unwrap();
            if !inbox.is_empty() {
                progress = true;
                conns.extend(inbox.drain(..).map(|stream| {
                    next_phase = next_phase.wrapping_add(1);
                    Conn::new(stream, next_phase)
                }));
            }
        }
        let mut i = 0;
        while i < conns.len() {
            let conn = &mut conns[i];
            // Parked connections (long idle, nothing owed) are probed
            // every PARKED_PERIOD-th sweep; everything else every
            // sweep. This keeps the per-sweep cost of thousands of
            // idle connections at a fraction of a syscall each while
            // active connections stay on the fast path.
            let parked = conn.idle_streak >= PARK_AFTER && conn.pending.is_empty() && !conn.closing;
            if parked && !tick.wrapping_add(conn.phase).is_multiple_of(PARKED_PERIOD) {
                i += 1;
                continue;
            }
            let (moved, drop_conn) = sweep_conn(conn, shared);
            if moved {
                conn.idle_streak = 0;
            } else {
                conn.idle_streak = conn.idle_streak.saturating_add(1);
            }
            progress |= moved;
            if drop_conn {
                conns.swap_remove(i);
                shared.conn_count.fetch_sub(1, Ordering::Relaxed);
            } else {
                i += 1;
            }
        }
        if !progress {
            std::thread::sleep(IDLE_SLEEP);
        }
    }
}

/// One multiplexing pass over one connection: flush, resolve finished
/// tickets, read available bytes, decode up to [`FRAMES_PER_SWEEP`]
/// frames. Returns `(made_progress, drop_connection)`.
fn sweep_conn(conn: &mut Conn, shared: &TcpShared) -> (bool, bool) {
    let mut progress = false;

    // 1. Flush buffered reply bytes (partial writes resume at wpos).
    while conn.wpos < conn.wbuf.len() {
        match conn.stream.write(&conn.wbuf[conn.wpos..]) {
            Ok(0) => return (true, true),
            Ok(n) => {
                conn.wpos += n;
                progress = true;
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return (true, true),
        }
    }
    if conn.wpos == conn.wbuf.len() && !conn.wbuf.is_empty() {
        conn.wbuf.clear();
        conn.wpos = 0;
    }

    // 2. Resolve owed replies in FIFO order; a still-pending ticket at
    //    the front blocks later (possibly finished) ones, preserving
    //    the per-connection reply order wire clients rely on.
    while let Some(front) = conn.pending.front_mut() {
        let payload = match front {
            PendingReply::Ready(_) => {
                let Some(PendingReply::Ready(p)) = conn.pending.pop_front() else {
                    unreachable!("front was Ready");
                };
                p
            }
            PendingReply::Waiting { ticket, m, n } => match ticket.try_take() {
                None => break,
                Some(Ok(c)) => {
                    let p = wire::encode_reply_ok(*m, *n, &c);
                    conn.pending.pop_front();
                    p
                }
                Some(Err(rej)) => {
                    let (code, detail) = wire::rejection_code(&rej);
                    let p = wire::encode_reply_err(code, detail, &rej.to_string());
                    conn.pending.pop_front();
                    p
                }
            },
        };
        conn.queue_frame(&payload);
        progress = true;
    }

    // 3. Intake: read and decode only while the connection is within
    //    its backpressure bounds — a slow reader (growing wbuf) or a
    //    deep pipeline (growing pending) stops being read until it
    //    drains.
    let may_intake = !conn.closing
        && conn.wbuf.len() - conn.wpos < WBUF_HIGH
        && conn.pending.len() < PENDING_HIGH;
    if may_intake {
        let mut chunk = [0u8; 16 * 1024];
        // Bounded reads per sweep: one connection's firehose cannot
        // starve its reader-mates of sweeps.
        for _ in 0..4 {
            match conn.stream.read(&mut chunk) {
                Ok(0) => {
                    conn.closing = true;
                    progress = true;
                    break;
                }
                Ok(n) => {
                    conn.rbuf.extend_from_slice(&chunk[..n]);
                    progress = true;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return (true, true),
            }
        }
        for _ in 0..FRAMES_PER_SWEEP {
            if conn.closing || conn.pending.len() >= PENDING_HIGH {
                break;
            }
            if conn.rbuf.len() < 4 {
                break;
            }
            let len = u32::from_le_bytes([conn.rbuf[0], conn.rbuf[1], conn.rbuf[2], conn.rbuf[3]])
                as usize;
            if len > wire::MAX_PAYLOAD {
                // The stream is out of sync; answer once, flush, close.
                let err = wire::encode_reply_err(
                    ERR_PROTOCOL,
                    0,
                    &format!("frame of {len} bytes exceeds cap of {}", wire::MAX_PAYLOAD),
                );
                conn.pending.push_back(PendingReply::Ready(err));
                conn.closing = true;
                progress = true;
                break;
            }
            if conn.rbuf.len() < 4 + len {
                break;
            }
            let frame: Vec<u8> = conn.rbuf[4..4 + len].to_vec();
            conn.rbuf.drain(..4 + len);
            handle_frame(conn, shared, &frame);
            progress = true;
        }
    }

    // 4. A closing connection is dropped once every owed reply has
    //    been encoded and flushed.
    let drained = conn.closing && conn.pending.is_empty() && conn.wpos == conn.wbuf.len();
    (progress, drained)
}

/// Decode one frame and queue its (eventual) reply on the connection.
fn handle_frame(conn: &mut Conn, shared: &TcpShared, frame: &[u8]) {
    match wire::decode_payload(frame) {
        Ok(WireMsg::Request(req)) => {
            let (m, n) = (req.m, req.n);
            match shared.client.submit(req) {
                Ok(ticket) => conn
                    .pending
                    .push_back(PendingReply::Waiting { ticket, m, n }),
                Err(rej) => {
                    let (code, detail) = wire::rejection_code(&rej);
                    conn.pending
                        .push_back(PendingReply::Ready(wire::encode_reply_err(
                            code,
                            detail,
                            &rej.to_string(),
                        )));
                }
            }
        }
        Ok(WireMsg::Stats { format }) => conn
            .pending
            .push_back(PendingReply::Ready(answer_stats(shared, format))),
        Ok(_) => conn
            .pending
            .push_back(PendingReply::Ready(wire::encode_reply_err(
                ERR_PROTOCOL,
                0,
                "reply opcode sent to server",
            ))),
        // Framing is intact (length prefix was honoured), so a garbage
        // payload only poisons this one message.
        Err(msg) => conn
            .pending
            .push_back(PendingReply::Ready(wire::encode_reply_err(
                ERR_PROTOCOL,
                0,
                &msg,
            ))),
    }
}

/// Render the live telemetry in the requested wire format. One shard:
/// exactly what the in-process `Smm::stats_report` would show — same
/// shards, same rate window, same slow-request exemplars — so a
/// remote scrape and a local report never disagree. Sharded: the
/// aggregated [`FleetReport`](crate::FleetReport) with per-shard
/// sections and the merged fleet view.
fn answer_stats(shared: &TcpShared, format: u8) -> Vec<u8> {
    let body = if shared.smms.len() <= 1 {
        let report = shared.smms[0].stats_report();
        match format {
            wire::STATS_JSON => report.to_json(),
            wire::STATS_PROMETHEUS => report.to_prometheus(),
            _ => report.to_string(),
        }
    } else {
        let fleet = gather_fleet(&shared.smms, |i| shared.client.shard_stats(i));
        match format {
            wire::STATS_JSON => fleet.to_json(),
            wire::STATS_PROMETHEUS => fleet.to_prometheus(),
            _ => fleet.to_string(),
        }
    };
    wire::encode_stats_reply(format, &body)
}

/// A blocking single-connection client for the wire protocol.
#[derive(Debug)]
pub struct TcpClient {
    stream: TcpStream,
}

impl TcpClient {
    /// Connect to a [`TcpServer`].
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<TcpClient> {
        let stream = TcpStream::connect(addr)?;
        // Request/reply with small frames: Nagle only adds latency.
        stream.set_nodelay(true)?;
        Ok(TcpClient { stream })
    }

    /// Wrap an already-connected stream.
    pub fn from_stream(stream: TcpStream) -> TcpClient {
        TcpClient { stream }
    }

    /// Submit one request and block for its reply. Transport and
    /// framing failures map to [`Rejected::Protocol`]; server-side
    /// backpressure, deadline, shutdown, and connection-limit
    /// rejections come back as their original [`Rejected`] variants.
    /// A server-side validation failure ([`Rejected::Invalid`]) cannot
    /// carry its structured [`SmmError`](smm_core::SmmError) across
    /// the wire and arrives as [`Rejected::Protocol`] with the
    /// server's `invalid request: ...` message.
    pub fn call(&mut self, req: &GemmRequest<f32>) -> Result<Vec<f32>, Rejected> {
        let io_err = |e: std::io::Error| Rejected::Protocol(format!("transport: {e}"));
        wire::write_frame(&mut self.stream, &wire::encode_request(req)).map_err(io_err)?;
        let payload = match wire::read_frame(&mut self.stream).map_err(io_err)? {
            FrameRead::Frame(p) => p,
            FrameRead::Eof => {
                return Err(Rejected::Protocol("connection closed before reply".into()))
            }
            FrameRead::TooLarge(len) => {
                return Err(Rejected::Protocol(format!("oversized reply frame ({len})")))
            }
        };
        match wire::decode_payload(&payload).map_err(Rejected::Protocol)? {
            WireMsg::ReplyOk { c, .. } => Ok(c),
            WireMsg::ReplyErr { code, detail, msg } => {
                Err(wire::rejection_from_wire(code, detail, &msg))
            }
            WireMsg::Request(_) => Err(Rejected::Protocol("request opcode in reply".into())),
            other => Err(Rejected::Protocol(format!(
                "unexpected reply to request: {other:?}"
            ))),
        }
    }

    /// Scrape the server's live telemetry report. `format` is one of
    /// [`wire::STATS_TEXT`], [`wire::STATS_JSON`],
    /// [`wire::STATS_PROMETHEUS`]; the returned string is the rendered
    /// report body — on a single-shard server byte-identical to what
    /// the server's own `Smm::stats_report` would produce in that
    /// format at scrape time, on a sharded server the fleet report.
    pub fn stats(&mut self, format: u8) -> Result<String, Rejected> {
        let io_err = |e: std::io::Error| Rejected::Protocol(format!("transport: {e}"));
        wire::write_frame(&mut self.stream, &wire::encode_stats(format)).map_err(io_err)?;
        let payload = match wire::read_frame(&mut self.stream).map_err(io_err)? {
            FrameRead::Frame(p) => p,
            FrameRead::Eof => {
                return Err(Rejected::Protocol("connection closed before reply".into()))
            }
            FrameRead::TooLarge(len) => {
                return Err(Rejected::Protocol(format!("oversized reply frame ({len})")))
            }
        };
        match wire::decode_payload(&payload).map_err(Rejected::Protocol)? {
            WireMsg::StatsReply { body, .. } => Ok(body),
            WireMsg::ReplyErr { code, detail, msg } => {
                Err(wire::rejection_from_wire(code, detail, &msg))
            }
            other => Err(Rejected::Protocol(format!(
                "unexpected reply to stats: {other:?}"
            ))),
        }
    }
}
