//! `std::net` TCP front end over the in-process [`Server`].
//!
//! One acceptor thread hands each connection to its own handler
//! thread, up to a configurable concurrent-connection cap
//! ([`DEFAULT_MAX_CONNECTIONS`] unless overridden via
//! [`TcpServer::bind_with_max_conns`]); over-cap connections are
//! refused with a typed [`ERR_BUSY`](crate::wire::ERR_BUSY) reply
//! frame rather than queued, and finished handler threads are reaped
//! on every accept, so neither threads nor join handles accumulate
//! with connection churn. Handlers speak the [`wire`](crate::wire)
//! protocol: decode a frame, submit through the shared [`Client`],
//! block on the ticket, write the reply. Malformed frames get a typed
//! protocol-error reply and the connection stays up; an oversized
//! length prefix or a mid-frame truncation desynchronizes the stream,
//! so the handler replies once and closes.
//!
//! Shutdown never relies on read timeouts: [`TcpServer::shutdown`]
//! raises the stop flag, wakes the acceptor with a self-connection,
//! and calls [`TcpStream::shutdown`] on every live connection's kept
//! clone to unblock handler reads, then joins everything before
//! draining the inner [`Server`].

use std::io::Write as _;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use smm_core::Smm;

use crate::request::{GemmRequest, Rejected};
use crate::server::{Client, ServeStats, Server};
use crate::wire::{self, FrameRead, WireMsg, ERR_PROTOCOL};

/// Default cap on concurrent TCP connections — see
/// [`TcpServer::bind_with_max_conns`] to tune it.
pub const DEFAULT_MAX_CONNECTIONS: usize = 256;

struct TcpShared {
    /// Stop flag for the acceptor and handlers; relaxed — it is only a
    /// one-way latch polled between blocking operations, and the join
    /// in `shutdown` provides the final synchronization.
    stop: AtomicBool,
    client: Client<f32>,
    /// Handle to the runtime backing the inner server, so a `STATS`
    /// frame can be answered with the same [`TelemetryReport`]
    /// (smm_core::TelemetryReport) that `Smm::stats_report` yields
    /// in-process.
    smm: Arc<Smm<f32>>,
    /// Kept clones of live connection streams so shutdown can unblock
    /// handler reads; handlers remove their own entry on exit. One
    /// entry per live handler — the acceptor refuses connections it
    /// cannot register here — so its length is the live-connection
    /// count the `max_connections` cap is enforced against.
    conns: Mutex<Vec<(u64, TcpStream)>>,
    /// Concurrent-connection cap; accepts beyond it are answered with
    /// a typed busy reply and closed.
    max_connections: usize,
}

/// A TCP server speaking the [`wire`](crate::wire) protocol in front of
/// an in-process [`Server<f32>`]. Stop with [`TcpServer::shutdown`]
/// (also run on drop), which closes connections, joins handler
/// threads, and gracefully drains the inner server.
pub struct TcpServer {
    shared: Arc<TcpShared>,
    server: Option<Server<f32>>,
    addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
    handlers: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl std::fmt::Debug for TcpServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpServer")
            .field("addr", &self.addr)
            .finish_non_exhaustive()
    }
}

impl TcpServer {
    /// Bind `addr` (use port 0 for an ephemeral port — see
    /// [`TcpServer::local_addr`]) and start serving `server` over it,
    /// with the [`DEFAULT_MAX_CONNECTIONS`] concurrent-connection cap.
    pub fn bind(server: Server<f32>, addr: impl ToSocketAddrs) -> std::io::Result<TcpServer> {
        TcpServer::bind_with_max_conns(server, addr, DEFAULT_MAX_CONNECTIONS)
    }

    /// [`TcpServer::bind`] with an explicit concurrent-connection cap
    /// (clamped to at least 1). Connections accepted while the cap is
    /// reached get one [`ERR_BUSY`](crate::wire::ERR_BUSY) reply frame
    /// — carrying the cap in its detail field — and are closed, so a
    /// flood of connections cannot grow threads or memory without
    /// bound.
    pub fn bind_with_max_conns(
        server: Server<f32>,
        addr: impl ToSocketAddrs,
        max_connections: usize,
    ) -> std::io::Result<TcpServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(TcpShared {
            stop: AtomicBool::new(false),
            client: server.client(),
            smm: Arc::clone(server.smm()),
            conns: Mutex::new(Vec::new()),
            max_connections: max_connections.max(1),
        });
        let handlers = Arc::new(Mutex::new(Vec::new()));
        let acceptor = {
            let shared = Arc::clone(&shared);
            let handlers = Arc::clone(&handlers);
            std::thread::Builder::new()
                .name("smm-serve-accept".into())
                .spawn(move || accept_loop(&listener, &shared, &handlers))
                .expect("failed to spawn serve acceptor")
        };
        Ok(TcpServer {
            shared,
            server: Some(server),
            addr,
            acceptor: Some(acceptor),
            handlers,
        })
    }

    /// The bound address (resolves port 0 to the actual port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Serving counters of the inner server.
    pub fn stats(&self) -> ServeStats {
        self.shared.client.stats()
    }

    /// Stop accepting, close live connections, join every handler, and
    /// gracefully drain the inner server. Returns the final counters.
    pub fn shutdown(mut self) -> ServeStats {
        self.shutdown_inner();
        let server = self.server.take().expect("shutdown runs once");
        server.shutdown()
    }

    fn shutdown_inner(&mut self) {
        self.shared.stop.store(true, Ordering::Relaxed);
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        // Unblock handler reads; handlers then observe `stop` and exit.
        for (_, stream) in self.shared.conns.lock().unwrap().iter() {
            let _ = stream.shutdown(Shutdown::Both);
        }
        let handlers = std::mem::take(&mut *self.handlers.lock().unwrap());
        for h in handlers {
            let _ = h.join();
        }
    }
}

impl Drop for TcpServer {
    fn drop(&mut self) {
        self.shutdown_inner();
        // The inner Server's own Drop performs the graceful drain if
        // `shutdown` was not called explicitly.
    }
}

fn accept_loop(
    listener: &TcpListener,
    shared: &Arc<TcpShared>,
    handlers: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    let mut next_id = 0u64;
    for stream in listener.incoming() {
        if shared.stop.load(Ordering::Relaxed) {
            return;
        }
        let Ok(mut stream) = stream else { continue };
        // Request/reply with small frames: Nagle only adds latency.
        let _ = stream.set_nodelay(true);
        // Reap exited handlers so the vec tracks live connections, not
        // the server's whole accept history.
        handlers.lock().unwrap().retain(|h| !h.is_finished());
        if shared.conns.lock().unwrap().len() >= shared.max_connections {
            let busy = wire::encode_reply_err(
                wire::ERR_BUSY,
                shared.max_connections as u32,
                &format!("connection limit reached (max {})", shared.max_connections),
            );
            let _ = wire::write_frame(&mut stream, &busy);
            let _ = stream.flush();
            continue;
        }
        // Without a registered clone, shutdown could not unblock this
        // handler's blocking read — refuse the connection rather than
        // spawn a handler that might never join.
        let Ok(clone) = stream.try_clone() else {
            continue;
        };
        let id = next_id;
        next_id += 1;
        shared.conns.lock().unwrap().push((id, clone));
        let shared_conn = Arc::clone(shared);
        let spawned = std::thread::Builder::new()
            .name(format!("smm-serve-conn-{id}"))
            .spawn(move || {
                handle_connection(stream, &shared_conn);
                shared_conn.conns.lock().unwrap().retain(|(i, _)| *i != id);
            });
        match spawned {
            Ok(handle) => handlers.lock().unwrap().push(handle),
            // Spawn failed after registering: deregister so `conns`
            // keeps counting exactly the live handlers.
            Err(_) => shared.conns.lock().unwrap().retain(|(i, _)| *i != id),
        }
    }
}

/// Serve one connection until EOF, a desynchronizing frame, or stop.
fn handle_connection(mut stream: TcpStream, shared: &TcpShared) {
    loop {
        if shared.stop.load(Ordering::Relaxed) {
            return;
        }
        let frame = match wire::read_frame(&mut stream) {
            Ok(FrameRead::Frame(payload)) => payload,
            Ok(FrameRead::Eof) | Err(_) => return,
            Ok(FrameRead::TooLarge(len)) => {
                // The stream is out of sync; answer once and close.
                let err = wire::encode_reply_err(
                    ERR_PROTOCOL,
                    0,
                    &format!("frame of {len} bytes exceeds cap of {}", wire::MAX_PAYLOAD),
                );
                let _ = wire::write_frame(&mut stream, &err);
                let _ = stream.flush();
                return;
            }
        };
        let reply = match wire::decode_payload(&frame) {
            Ok(WireMsg::Request(req)) => answer_request(shared, req),
            Ok(WireMsg::Stats { format }) => answer_stats(shared, format),
            Ok(_) => wire::encode_reply_err(ERR_PROTOCOL, 0, "reply opcode sent to server"),
            // Framing is intact (length prefix was honoured), so a
            // garbage payload only poisons this one message.
            Err(msg) => wire::encode_reply_err(ERR_PROTOCOL, 0, &msg),
        };
        if wire::write_frame(&mut stream, &reply).is_err() {
            return;
        }
    }
}

fn answer_request(shared: &TcpShared, req: GemmRequest<f32>) -> Vec<u8> {
    let (m, n) = (req.m, req.n);
    match shared.client.submit(req).and_then(|t| t.wait()) {
        Ok(c) => wire::encode_reply_ok(m, n, &c),
        Err(rej) => {
            let (code, detail) = wire::rejection_code(&rej);
            wire::encode_reply_err(code, detail, &rej.to_string())
        }
    }
}

/// Render the live telemetry report in the requested wire format.
/// The body is exactly what the in-process `Smm::stats_report` would
/// show — same shards, same rate window, same slow-request exemplars —
/// so a remote scrape and a local report never disagree.
fn answer_stats(shared: &TcpShared, format: u8) -> Vec<u8> {
    let report = shared.smm.stats_report();
    let body = match format {
        wire::STATS_JSON => report.to_json(),
        wire::STATS_PROMETHEUS => report.to_prometheus(),
        _ => report.to_string(),
    };
    wire::encode_stats_reply(format, &body)
}

/// A blocking single-connection client for the wire protocol.
#[derive(Debug)]
pub struct TcpClient {
    stream: TcpStream,
}

impl TcpClient {
    /// Connect to a [`TcpServer`].
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<TcpClient> {
        let stream = TcpStream::connect(addr)?;
        // Request/reply with small frames: Nagle only adds latency.
        stream.set_nodelay(true)?;
        Ok(TcpClient { stream })
    }

    /// Wrap an already-connected stream.
    pub fn from_stream(stream: TcpStream) -> TcpClient {
        TcpClient { stream }
    }

    /// Submit one request and block for its reply. Transport and
    /// framing failures map to [`Rejected::Protocol`]; server-side
    /// backpressure, deadline, shutdown, and connection-limit
    /// rejections come back as their original [`Rejected`] variants.
    /// A server-side validation failure ([`Rejected::Invalid`]) cannot
    /// carry its structured [`SmmError`](smm_core::SmmError) across
    /// the wire and arrives as [`Rejected::Protocol`] with the
    /// server's `invalid request: ...` message.
    pub fn call(&mut self, req: &GemmRequest<f32>) -> Result<Vec<f32>, Rejected> {
        let io_err = |e: std::io::Error| Rejected::Protocol(format!("transport: {e}"));
        wire::write_frame(&mut self.stream, &wire::encode_request(req)).map_err(io_err)?;
        let payload = match wire::read_frame(&mut self.stream).map_err(io_err)? {
            FrameRead::Frame(p) => p,
            FrameRead::Eof => {
                return Err(Rejected::Protocol("connection closed before reply".into()))
            }
            FrameRead::TooLarge(len) => {
                return Err(Rejected::Protocol(format!("oversized reply frame ({len})")))
            }
        };
        match wire::decode_payload(&payload).map_err(Rejected::Protocol)? {
            WireMsg::ReplyOk { c, .. } => Ok(c),
            WireMsg::ReplyErr { code, detail, msg } => {
                Err(wire::rejection_from_wire(code, detail, &msg))
            }
            WireMsg::Request(_) => Err(Rejected::Protocol("request opcode in reply".into())),
            other => Err(Rejected::Protocol(format!(
                "unexpected reply to request: {other:?}"
            ))),
        }
    }

    /// Scrape the server's live telemetry report. `format` is one of
    /// [`wire::STATS_TEXT`], [`wire::STATS_JSON`],
    /// [`wire::STATS_PROMETHEUS`]; the returned string is the rendered
    /// report body, byte-identical to what the server's own
    /// `Smm::stats_report` would produce in that format at scrape time.
    pub fn stats(&mut self, format: u8) -> Result<String, Rejected> {
        let io_err = |e: std::io::Error| Rejected::Protocol(format!("transport: {e}"));
        wire::write_frame(&mut self.stream, &wire::encode_stats(format)).map_err(io_err)?;
        let payload = match wire::read_frame(&mut self.stream).map_err(io_err)? {
            FrameRead::Frame(p) => p,
            FrameRead::Eof => {
                return Err(Rejected::Protocol("connection closed before reply".into()))
            }
            FrameRead::TooLarge(len) => {
                return Err(Rejected::Protocol(format!("oversized reply frame ({len})")))
            }
        };
        match wire::decode_payload(&payload).map_err(Rejected::Protocol)? {
            WireMsg::StatsReply { body, .. } => Ok(body),
            WireMsg::ReplyErr { code, detail, msg } => {
                Err(wire::rejection_from_wire(code, detail, &msg))
            }
            other => Err(Rejected::Protocol(format!(
                "unexpected reply to stats: {other:?}"
            ))),
        }
    }
}
