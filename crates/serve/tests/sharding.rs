//! End-to-end tests of the sharded serving layer: fleet STATS
//! aggregation across all three formats, bit-for-bit parity between
//! sharded and single-runtime serving, and wire-protocol regressions
//! for the multiplexed TCP front end (partial frames, interleaved
//! connections, starvation bounds).

use std::io::{Read as _, Write as _};
use std::sync::Arc;
use std::time::Duration;

use smm_core::Smm;
use smm_gemm::gemm_naive;
use smm_gemm::matrix::{Mat, MatMut, MatRef};
use smm_serve::wire::{
    decode_payload, encode_request, read_frame, FrameRead, WireMsg, STATS_JSON, STATS_PROMETHEUS,
    STATS_TEXT,
};
use smm_serve::{route_shape, GemmRequest, Server, TcpClient, TcpServer};

/// Shapes chosen so the shape-hash router touches every one of four
/// shards (same set the loadgen scaling gate uses).
const SPREAD_SHAPES: [(usize, usize, usize); 8] = [
    (8, 8, 8),
    (16, 16, 16),
    (20, 20, 20),
    (32, 32, 4),
    (4, 32, 8),
    (16, 8, 4),
    (6, 6, 6),
    (12, 12, 12),
];

fn random_request(m: usize, n: usize, k: usize, seed: u64) -> GemmRequest<f32> {
    let a = Mat::<f32>::random(m, k, seed);
    let b = Mat::<f32>::random(k, n, seed.wrapping_add(1));
    let c = Mat::<f32>::random(m, n, seed.wrapping_add(2));
    let mut req = GemmRequest::new(m, n, k, a.data().to_vec(), b.data().to_vec());
    req.alpha = 1.25;
    req.beta = -0.5;
    req.c = c.data().to_vec();
    req
}

fn oracle(req: &GemmRequest<f32>) -> Vec<f32> {
    let (m, n, k) = (req.m, req.n, req.k);
    let mut c = req.c.clone();
    gemm_naive(
        req.alpha,
        MatRef::from_slice(&req.a, m, k, m),
        MatRef::from_slice(&req.b, k, n, k),
        req.beta,
        MatMut::from_slice(&mut c, m, n, m),
    );
    c
}

fn sharded_server(shards: usize) -> Server<f32> {
    let smms = (0..shards)
        .map(|_| Arc::new(Smm::<f32>::builder().threads(1).telemetry(true).build()))
        .collect();
    Server::<f32>::builder()
        .smms(smms)
        .coalesce_window(Duration::ZERO)
        .build()
}

#[test]
fn spread_shapes_cover_all_four_shards() {
    // The aggregation tests below rely on every shard carrying
    // traffic; pin that property of the workload itself.
    let mut hit = [false; 4];
    for &(m, n, k) in &SPREAD_SHAPES {
        hit[route_shape(m, n, k, 4)] = true;
    }
    assert_eq!(hit, [true; 4], "workload leaves a shard idle");
}

#[test]
fn fleet_report_sums_per_shard_counters() {
    let server = sharded_server(4);
    let client = server.client();
    for (i, &(m, n, k)) in SPREAD_SHAPES.iter().enumerate() {
        let req = random_request(m, n, k, 9000 + i as u64);
        let want = oracle(&req);
        let got = client.submit(req).unwrap().wait().unwrap();
        assert_eq!(got.len(), want.len());
    }
    let fleet = server.fleet_report();
    assert_eq!(fleet.shard_count(), 4);

    // Sequential submission with a zero window: each request lands on
    // the shard its shape hashes to, so every shard saw some of the
    // eight shapes and the fleet totals are exact sums.
    let mut submitted = 0;
    let mut completed = 0;
    for (i, section) in fleet.shards.iter().enumerate() {
        assert_eq!(section.shard, i);
        assert!(
            section.serve.submitted > 0,
            "shard {i} saw no traffic: {:?}",
            section.serve
        );
        submitted += section.serve.submitted;
        completed += section.serve.completed;
    }
    assert_eq!(submitted, SPREAD_SHAPES.len() as u64);
    assert_eq!(fleet.serve.submitted, submitted, "fleet total != shard sum");
    assert_eq!(fleet.serve.completed, completed);

    // Merged telemetry: each runtime builds plans only for its own
    // shapes, the fleet report absorbs all of them.
    let misses: u64 = fleet
        .shards
        .iter()
        .map(|s| s.telemetry.runtime.plan_misses)
        .sum();
    assert!(misses > 0, "no plans built anywhere");
    assert_eq!(fleet.telemetry.runtime.plan_misses, misses);
    server.shutdown();
}

#[test]
fn fleet_report_renders_in_all_three_formats() {
    let server = sharded_server(4);
    let client = server.client();
    for (i, &(m, n, k)) in SPREAD_SHAPES.iter().enumerate() {
        let req = random_request(m, n, k, 9100 + i as u64);
        client.submit(req).unwrap().wait().unwrap();
    }
    let fleet = server.fleet_report();

    // Text: per-shard sections plus the fleet rollup.
    let text = fleet.to_string();
    assert!(text.contains("shard 0"), "text misses shard 0:\n{text}");
    assert!(text.contains("shard 3"), "text misses shard 3:\n{text}");
    assert!(text.contains("fleet"), "text misses fleet rollup:\n{text}");

    // JSON: shard array with per-shard serve counters and telemetry.
    let json = fleet.to_json();
    assert!(json.contains("\"shard_count\": 4"), "{json}");
    assert!(json.contains("\"shards\": ["), "{json}");
    assert!(json.contains("\"panel\":"), "{json}");
    for i in 0..4 {
        assert!(json.contains(&format!("\"shard\": {i}")), "{json}");
    }

    // Prometheus: every serve counter family has one bare fleet series
    // and four `shard`-labelled series that sum to it.
    let prom = fleet.to_prometheus();
    for family in ["smm_serve_submitted_total", "smm_serve_completed_total"] {
        let mut fleet_val = None;
        let mut labelled = 0u64;
        let mut label_count = 0;
        for line in prom.lines() {
            let Some(rest) = line.strip_prefix(family) else {
                continue;
            };
            if let Some(rest) = rest.strip_prefix("{shard=\"") {
                let (_, val) = rest.split_once("\"} ").expect("labelled sample");
                labelled += val.parse::<u64>().expect("integer sample");
                label_count += 1;
            } else if let Some(val) = rest.strip_prefix(' ') {
                fleet_val = Some(val.parse::<u64>().expect("integer sample"));
            }
        }
        assert_eq!(label_count, 4, "{family} labelled series:\n{prom}");
        assert_eq!(
            fleet_val.expect("bare fleet series"),
            labelled,
            "{family}: fleet series != sum of shard series\n{prom}"
        );
    }
    assert!(prom.contains("smm_shard_panel{shard=\"0\"}"), "{prom}");
    server.shutdown();
}

#[test]
fn stats_opcode_serves_the_fleet_report_over_tcp() {
    let server = sharded_server(4);
    let tcp = TcpServer::bind(server, ("127.0.0.1", 0)).unwrap();
    let mut client = TcpClient::connect(tcp.local_addr()).unwrap();
    for (i, &(m, n, k)) in SPREAD_SHAPES.iter().enumerate() {
        let req = random_request(m, n, k, 9200 + i as u64);
        let want = oracle(&req);
        let got = client.call(&req).unwrap();
        assert_eq!(got.len(), want.len());
    }

    let json = client.stats(STATS_JSON).unwrap();
    assert!(json.contains("\"shard_count\": 4"), "{json}");
    assert!(json.contains("\"shards\": ["), "{json}");

    let text = client.stats(STATS_TEXT).unwrap();
    assert!(text.contains("shard 0"), "{text}");
    assert!(text.contains("fleet"), "{text}");

    let prom = client.stats(STATS_PROMETHEUS).unwrap();
    assert!(
        prom.contains("smm_serve_submitted_total{shard=\"0\"}"),
        "{prom}"
    );
    assert!(
        prom.contains("smm_phase_latency_ns_bucket"),
        "merged telemetry missing from scrape: {prom}"
    );
    tcp.shutdown();
}

#[test]
fn sharded_serving_is_bit_for_bit_identical_to_single_runtime() {
    // Requests are submitted one at a time (reply awaited before the
    // next submit), so every dispatch group is a singleton and the only
    // variable is *which* runtime executes — which must not change a
    // single bit of the result.
    let run = |shards: usize| -> Vec<Vec<u32>> {
        let server = sharded_server(shards);
        let client = server.client();
        let mut results = Vec::new();
        for round in 0..3u64 {
            for (i, &(m, n, k)) in SPREAD_SHAPES.iter().enumerate() {
                let req = random_request(m, n, k, round * 100 + i as u64);
                let got = client.submit(req).unwrap().wait().unwrap();
                results.push(got.into_iter().map(f32::to_bits).collect());
            }
        }
        server.shutdown();
        results
    };
    assert_eq!(
        run(1),
        run(4),
        "sharded serving changed GEMM results bit-for-bit"
    );
}

/// Write `bytes` one byte at a time with a short pause every few bytes,
/// forcing the reader to observe partial frames mid-sweep.
fn dribble(stream: &mut std::net::TcpStream, bytes: &[u8]) {
    for (i, b) in bytes.iter().enumerate() {
        stream.write_all(std::slice::from_ref(b)).unwrap();
        if i % 5 == 0 {
            stream.flush().unwrap();
            std::thread::sleep(Duration::from_micros(300));
        }
    }
    stream.flush().unwrap();
}

fn read_ok_reply(stream: &mut std::net::TcpStream) -> Vec<f32> {
    match read_frame(stream).unwrap() {
        FrameRead::Frame(p) => match decode_payload(&p).unwrap() {
            WireMsg::ReplyOk { c, .. } => c,
            other => panic!("expected ok reply, got {other:?}"),
        },
        other => panic!("expected frame, got {other:?}"),
    }
}

#[test]
fn mux_reassembles_frames_split_across_reads() {
    let server = sharded_server(2);
    let tcp = TcpServer::bind(server, ("127.0.0.1", 0)).unwrap();
    let mut raw = std::net::TcpStream::connect(tcp.local_addr()).unwrap();
    raw.set_nodelay(true).unwrap();

    let req = random_request(5, 7, 3, 42);
    let want = oracle(&req);
    let mut frame = Vec::new();
    let payload = encode_request(&req);
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&payload);

    // Byte-dribbled request: the reader sees the length prefix and the
    // body arrive over many sweeps and must buffer until complete.
    dribble(&mut raw, &frame);
    let got = read_ok_reply(&mut raw);
    assert_eq!(got.len(), want.len());
    for (g, w) in got.iter().zip(&want) {
        assert!((g - w).abs() <= 1e-3 * w.abs().max(1.0), "{g} vs {w}");
    }

    // The same connection still works for a second, whole frame.
    raw.write_all(&frame).unwrap();
    let again = read_ok_reply(&mut raw);
    assert_eq!(again.len(), want.len());
    tcp.shutdown();
}

#[test]
fn mux_keeps_interleaved_connections_isolated() {
    // Many connections multiplexed onto two reader threads, each
    // holding a *different* half-written frame at the same time: the
    // per-connection buffers must never mix, and each reply must match
    // its own connection's request.
    let server = sharded_server(2);
    let tcp = TcpServer::bind(server, ("127.0.0.1", 0)).unwrap();
    let addr = tcp.local_addr();

    const CONNS: usize = 12;
    let mut conns = Vec::new();
    for id in 0..CONNS {
        let (m, n, k) = SPREAD_SHAPES[id % SPREAD_SHAPES.len()];
        let req = random_request(m, n, k, 7000 + id as u64);
        let want = oracle(&req);
        let payload = encode_request(&req);
        let mut frame = Vec::new();
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&payload);
        let mut stream = std::net::TcpStream::connect(addr).unwrap();
        stream.set_nodelay(true).unwrap();
        // First half now; every connection is left dangling mid-frame.
        let split = 4 + id % (frame.len() - 4);
        stream.write_all(&frame[..split]).unwrap();
        stream.flush().unwrap();
        conns.push((stream, frame, split, want));
    }
    // Give the readers time to sweep every half-frame into its buffer.
    std::thread::sleep(Duration::from_millis(20));
    // Complete the frames in reverse order.
    for (stream, frame, split, _) in conns.iter_mut().rev() {
        stream.write_all(&frame[*split..]).unwrap();
        stream.flush().unwrap();
    }
    for (i, (stream, _, _, want)) in conns.iter_mut().enumerate() {
        let got = read_ok_reply(stream);
        assert_eq!(got.len(), want.len(), "conn {i} got the wrong reply");
        for (g, w) in got.iter().zip(want.iter()) {
            assert!(
                (g - w).abs() <= 1e-3 * w.abs().max(1.0),
                "conn {i}: crossed reply ({g} vs {w})"
            );
        }
    }
    let stats = tcp.shutdown();
    assert_eq!(stats.completed, CONNS as u64);
}

#[test]
fn mux_bounds_intake_so_a_flooding_connection_cannot_starve_others() {
    use smm_serve::tcp::FRAMES_PER_SWEEP;

    let server = sharded_server(2);
    let tcp = TcpServer::bind(server, ("127.0.0.1", 0)).unwrap();
    let addr = tcp.local_addr();

    // One connection pipelines several sweeps' worth of requests in a
    // single burst...
    let flood_n = 3 * FRAMES_PER_SWEEP;
    let req = random_request(4, 4, 4, 555);
    let payload = encode_request(&req);
    let mut burst = Vec::new();
    for _ in 0..flood_n {
        burst.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        burst.extend_from_slice(&payload);
    }
    let mut flood = std::net::TcpStream::connect(addr).unwrap();
    flood.write_all(&burst).unwrap();
    flood.flush().unwrap();

    // ...while a second connection sends one request. The per-sweep
    // intake bound means the floods's backlog cannot monopolise the
    // reader: the small request is answered while the flood drains.
    let mut small = TcpClient::connect(addr).unwrap();
    let t0 = std::time::Instant::now();
    let small_req = random_request(6, 6, 6, 556);
    let want = oracle(&small_req);
    let got = small.call(&small_req).unwrap();
    let small_latency = t0.elapsed();
    assert_eq!(got.len(), want.len());
    assert!(
        small_latency < Duration::from_secs(5),
        "small request starved behind the flood: {small_latency:?}"
    );

    // The flood's replies all arrive, in order, uncorrupted.
    let want_flood = oracle(&req);
    for i in 0..flood_n {
        let got = read_ok_reply(&mut flood);
        assert_eq!(got.len(), want_flood.len(), "flood reply {i}");
    }
    // Nothing further: the stream yields no stray bytes before close.
    flood
        .set_read_timeout(Some(Duration::from_millis(100)))
        .unwrap();
    let mut probe = [0u8; 1];
    match flood.read(&mut probe) {
        Ok(0) => {}
        Ok(_) => panic!("stray bytes after the last reply"),
        Err(e) => assert!(
            matches!(
                e.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            ),
            "unexpected read error: {e}"
        ),
    }
    let stats = tcp.shutdown();
    assert_eq!(stats.completed, flood_n as u64 + 1);
}
