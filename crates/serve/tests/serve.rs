//! End-to-end tests of the serving layer: correctness under concurrent
//! mixed-shape load, exactly-once replies, backpressure, deadlines,
//! graceful drain, coalescing, and the TCP front end.

use std::sync::Arc;
use std::time::Duration;

use smm_core::Smm;
use smm_gemm::gemm_naive;
use smm_gemm::matrix::{Mat, MatMut, MatRef};
use smm_serve::{GemmRequest, Rejected, Server, TcpClient, TcpServer};

/// The expected result of `req` per the naive oracle.
fn oracle(req: &GemmRequest<f32>) -> Vec<f32> {
    let (m, n, k) = (req.m, req.n, req.k);
    let mut c = req.c.clone();
    if m == 0 || n == 0 {
        return c;
    }
    gemm_naive(
        req.alpha,
        MatRef::from_slice(&req.a, m, k, m.max(1)),
        MatRef::from_slice(&req.b, k, n, k.max(1)),
        req.beta,
        MatMut::from_slice(&mut c, m, n, m),
    );
    c
}

fn random_request(m: usize, n: usize, k: usize, seed: u64) -> GemmRequest<f32> {
    let a = Mat::<f32>::random(m, k, seed);
    let b = Mat::<f32>::random(k, n, seed.wrapping_add(1));
    let c = Mat::<f32>::random(m, n, seed.wrapping_add(2));
    let mut req = GemmRequest::new(m, n, k, a.data().to_vec(), b.data().to_vec());
    req.alpha = 1.25;
    req.beta = -0.5;
    req.c = c.data().to_vec();
    req
}

fn assert_close(got: &[f32], want: &[f32], what: &str) {
    assert_eq!(got.len(), want.len(), "{what}: length mismatch");
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert!(
            (g - w).abs() <= 1e-3 * w.abs().max(1.0),
            "{what}: C[{i}] = {g}, oracle says {w}"
        );
    }
}

#[test]
fn concurrent_mixed_shapes_match_naive_exactly_once() {
    let server = Server::<f32>::builder()
        .threads(2)
        .coalesce_window(Duration::from_micros(200))
        .build();
    let client = server.client();
    let shapes = [(4, 4, 4), (8, 8, 8), (3, 17, 5), (16, 2, 32), (1, 1, 1)];
    let per_thread = 10;
    std::thread::scope(|s| {
        for t in 0..4u64 {
            let client = client.clone();
            s.spawn(move || {
                for i in 0..per_thread {
                    let (m, n, k) = shapes[(t as usize + i) % shapes.len()];
                    let req = random_request(m, n, k, t * 1000 + i as u64);
                    let want = oracle(&req);
                    let got = client.submit(req).unwrap().wait().unwrap();
                    assert_close(&got, &want, "concurrent serve");
                }
            });
        }
    });
    let stats = server.shutdown();
    // Exactly-once accounting: everything admitted was answered with a
    // result, nothing was dropped or rejected.
    assert_eq!(stats.submitted, 4 * per_thread as u64);
    assert_eq!(stats.completed, stats.submitted);
    assert_eq!(stats.expired, 0);
    assert_eq!(stats.rejected_queue_full, 0);
    assert_eq!(stats.queue_depth, 0);
}

#[test]
fn prewarm_builds_hot_plans_before_first_request() {
    use smm_core::{PlanDb, PlanEntry, VectorIsa};
    // A plan database with two swept shapes carrying serving traffic —
    // what a restarted server loads from its previous run.
    let mut db = PlanDb::new(VectorIsa::neon128());
    for &(m, n, k) in &[(8u32, 8u32, 8u32), (12, 6, 10)] {
        db.upsert(PlanEntry {
            m,
            n,
            k,
            mr: 8,
            nr: 4,
            pack_a: false,
            pack_b: true,
            refined: false,
            elem_bytes: 4,
            cycles: 100,
            heuristic_cycles: 120,
            traffic: 0,
        });
    }
    assert!(db.add_traffic(8, 8, 8, 500));
    assert!(db.add_traffic(12, 6, 10, 50));
    let smm = Arc::new(
        Smm::<f32>::builder()
            .threads(2)
            .plan_db_handle(db)
            .unwrap()
            .build(),
    );
    let server = Server::<f32>::builder()
        .smm(Arc::clone(&smm))
        .prewarm(8)
        .build();
    // Pre-warming runs asynchronously on the dispatcher thread; wait
    // for it rather than racing it.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while server.stats().prewarmed < 2 {
        assert!(
            std::time::Instant::now() < deadline,
            "prewarm never completed: {:?}",
            server.stats()
        );
        std::thread::yield_now();
    }
    assert_eq!(server.stats().prewarmed, 2);
    assert_eq!(smm.cached_plans(), 2, "hot plans resident before traffic");
    let hits_before = smm.stats().plan_hits;
    let misses_after_prewarm = smm.stats().plan_misses;
    // A request for a pre-warmed shape must hit the plan cache.
    let req = random_request(8, 8, 8, 7);
    let want = oracle(&req);
    let got = server.client().submit(req).unwrap().wait().unwrap();
    assert_close(&got, &want, "prewarmed serve");
    assert!(smm.stats().plan_hits > hits_before);
    assert_eq!(
        smm.stats().plan_misses,
        misses_after_prewarm,
        "no plan built on demand"
    );
    let stats = server.shutdown();
    assert_eq!(stats.completed, 1);
    assert!(format!("{stats}").contains("prewarmed"));
}

#[test]
fn queue_full_is_typed_backpressure() {
    // A long window parks the dispatcher on the first request's shape,
    // so differently-shaped submissions accumulate in the queue and the
    // capacity bound becomes observable deterministically.
    let server = Server::<f32>::builder()
        .threads(1)
        .queue_capacity(3)
        .coalesce_window(Duration::from_secs(2))
        .build();
    let client = server.client();
    let head = client
        .submit(random_request(2, 2, 2, 7))
        .expect("head admitted");
    // Give the dispatcher time to pop the head and enter its window.
    std::thread::sleep(Duration::from_millis(100));
    let queued: Vec<_> = (0..3)
        .map(|i| client.submit(random_request(5, 5, 5, i)).expect("queued"))
        .collect();
    match client.submit(random_request(5, 5, 5, 99)) {
        Err(Rejected::QueueFull { capacity: 3 }) => {}
        other => panic!("expected QueueFull {{ capacity: 3 }}, got {other:?}"),
    }
    let stats = client.stats();
    assert_eq!(stats.rejected_queue_full, 1);
    // Shutdown short-circuits the window and drains: every admitted
    // request is still answered with a real result.
    server.shutdown();
    assert!(head.wait().is_ok());
    for t in queued {
        assert!(t.wait().is_ok());
    }
}

#[test]
fn deadlines_expire_before_dispatch() {
    let server = Server::<f32>::builder().threads(1).build();
    let client = server.client();
    // An already-expired deadline must be answered DeadlineExceeded
    // without computing anything.
    let req = random_request(6, 6, 6, 11).with_deadline(Duration::ZERO);
    let ticket = client.submit(req).unwrap();
    assert_eq!(ticket.wait(), Err(Rejected::DeadlineExceeded));
    // A generous deadline sails through.
    let req = random_request(6, 6, 6, 12).with_deadline(Duration::from_secs(60));
    let want = oracle(&req);
    let got = client.submit(req).unwrap().wait().unwrap();
    assert_close(&got, &want, "deadline ok");
    let stats = server.shutdown();
    assert_eq!(stats.expired, 1);
    assert_eq!(stats.completed, 1);
}

#[test]
fn shutdown_drains_everything_then_rejects() {
    let server = Server::<f32>::builder()
        .threads(2)
        .coalesce_window(Duration::from_millis(200))
        .build();
    let client = server.client();
    let pairs: Vec<_> = (0..24)
        .map(|i| {
            let req = random_request(4 + (i % 3), 4, 4, 400 + i as u64);
            let want = oracle(&req);
            (client.submit(req).unwrap(), want)
        })
        .collect();
    // Shutdown races the dispatcher's first pops on purpose: whatever
    // is still queued must be drained, not dropped.
    let stats = server.shutdown();
    assert_eq!(stats.submitted, 24);
    assert_eq!(stats.completed, 24);
    assert_eq!(stats.queue_depth, 0);
    for (ticket, want) in pairs {
        let got = ticket.wait().expect("drained request answered Ok");
        assert_close(&got, &want, "drained");
    }
    // The surviving client handle now gets a typed rejection.
    match client.submit(random_request(4, 4, 4, 1)) {
        Err(Rejected::ShuttingDown) => {}
        other => panic!("expected ShuttingDown, got {other:?}"),
    }
}

#[test]
fn same_shape_requests_coalesce_into_batches() {
    let server = Server::<f32>::builder()
        .threads(2)
        .coalesce_window(Duration::from_secs(2))
        .build();
    let client = server.client();
    // Park the dispatcher in the window on a decoy shape...
    let decoy = client.submit(random_request(2, 3, 4, 1)).unwrap();
    std::thread::sleep(Duration::from_millis(100));
    // ...then queue one same-shape cohort behind it.
    let cohort: Vec<_> = (0..8)
        .map(|i| {
            let req = random_request(6, 6, 6, 600 + i);
            let want = oracle(&req);
            (client.submit(req).unwrap(), want)
        })
        .collect();
    // Drain: the cohort is already queued, so it dispatches as one
    // gemm_batch group.
    let stats = server.shutdown();
    assert!(decoy.wait().is_ok());
    for (ticket, want) in cohort {
        assert_close(&ticket.wait().unwrap(), &want, "coalesced");
    }
    assert_eq!(stats.completed, 9);
    assert!(
        stats.batches < stats.completed,
        "expected coalescing: {} batches for {} requests",
        stats.batches,
        stats.completed
    );
    assert!(
        stats.coalesced_max >= 8,
        "cohort should dispatch together, max was {}",
        stats.coalesced_max
    );
    assert!(stats.coalescing_factor() > 1.0);
}

#[test]
fn coalesced_results_match_per_request_results() {
    // Same workload served twice — once with coalescing disabled, once
    // with an aggressive window — must agree bit-for-bit with the
    // oracle either way.
    for window in [Duration::ZERO, Duration::from_millis(5)] {
        let server = Server::<f32>::builder()
            .threads(2)
            .coalesce_window(window)
            .build();
        let client = server.client();
        std::thread::scope(|s| {
            for t in 0..6u64 {
                let client = client.clone();
                s.spawn(move || {
                    for i in 0..5u64 {
                        let req = random_request(7, 7, 7, t * 100 + i);
                        let want = oracle(&req);
                        let got = client.submit(req).unwrap().wait().unwrap();
                        assert_close(&got, &want, "window sweep");
                    }
                });
            }
        });
        server.shutdown();
    }
}

#[test]
fn serve_telemetry_lands_in_the_report() {
    let smm = Arc::new(Smm::<f32>::builder().threads(2).telemetry(true).build());
    let server = Server::<f32>::builder()
        .smm(Arc::clone(&smm))
        .coalesce_window(Duration::from_millis(2))
        .build();
    let client = server.client();
    std::thread::scope(|s| {
        for t in 0..4u64 {
            let client = client.clone();
            s.spawn(move || {
                for i in 0..8u64 {
                    let req = random_request(8, 8, 8, t * 50 + i);
                    client.submit(req).unwrap().wait().unwrap();
                }
            });
        }
    });
    server.shutdown();
    let report = smm.stats_report();
    let json = report.to_json();
    assert!(json.contains("\"serve\""), "serve site missing: {json}");
    let rendered = report.to_string();
    assert!(
        rendered.contains("serve"),
        "serve site missing from display: {rendered}"
    );
}

#[test]
fn shutdown_never_loses_the_wakeup() {
    // Regression stress for a lost-wakeup race: shutdown's store +
    // notify must serialize with the dispatcher's check-then-wait
    // (both under the queue mutex), otherwise an immediate shutdown
    // can fire the notification between the dispatcher's shutdown
    // check and its untimed wait, and the join hangs forever. Many
    // quick build/shutdown cycles give a racy implementation its
    // chances to deadlock.
    for i in 0..100u64 {
        let server = Server::<f32>::builder().threads(1).build();
        if i % 2 == 0 {
            let ticket = server.client().submit(random_request(3, 3, 3, i)).unwrap();
            server.shutdown();
            assert!(ticket.wait().is_ok());
        } else {
            server.shutdown();
        }
    }
}

#[test]
fn tcp_connection_limit_is_typed_backpressure() {
    let server = Server::<f32>::builder().threads(1).build();
    let tcp = TcpServer::bind_with_max_conns(server, ("127.0.0.1", 0), 1).unwrap();
    let addr = tcp.local_addr();
    let req = random_request(3, 3, 3, 5);
    let want = oracle(&req);

    // The first connection occupies the single slot (the round-trip
    // guarantees its handler is registered)...
    let mut first = TcpClient::connect(addr).unwrap();
    assert_close(&first.call(&req).unwrap(), &want, "first conn");

    // ...so the next accept is refused with a typed busy reply.
    let mut raw = std::net::TcpStream::connect(addr).unwrap();
    assert_eq!(read_reply(&mut raw), Rejected::Busy { max_connections: 1 });

    // Closing the first connection frees the slot again. The handler
    // deregisters asynchronously, so poll; a refused retry may also
    // surface as a transport error when the server closes mid-call.
    drop(first);
    let mut answered = None;
    for _ in 0..200 {
        let mut c = TcpClient::connect(addr).unwrap();
        match c.call(&req) {
            Ok(got) => {
                answered = Some(got);
                break;
            }
            Err(Rejected::Busy { .. } | Rejected::Protocol(_)) => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(other) => panic!("unexpected rejection: {other:?}"),
        }
    }
    let got = answered.expect("slot frees once the first connection closes");
    assert_close(&got, &want, "after release");
    tcp.shutdown();
}

#[test]
fn tcp_roundtrip_and_protocol_errors() {
    let server = Server::<f32>::builder()
        .threads(2)
        .coalesce_window(Duration::from_micros(100))
        .build();
    let tcp = TcpServer::bind(server, ("127.0.0.1", 0)).unwrap();
    let addr = tcp.local_addr();

    // Plain request/reply over the wire.
    let mut client = TcpClient::connect(addr).unwrap();
    let req = random_request(5, 9, 3, 77);
    let want = oracle(&req);
    let got = client.call(&req).unwrap();
    assert_close(&got, &want, "tcp");

    // A garbage payload inside a well-formed frame gets a protocol
    // error and the connection keeps working.
    {
        use std::io::Write as _;
        let mut raw = std::net::TcpStream::connect(addr).unwrap();
        let garbage = [0xAAu8; 16];
        raw.write_all(&(garbage.len() as u32).to_le_bytes())
            .unwrap();
        raw.write_all(&garbage).unwrap();
        let reply = read_reply(&mut raw);
        assert!(
            matches!(reply, Rejected::Protocol(_)),
            "garbage frame should yield a protocol error, got {reply:?}"
        );
        // Same connection, now a valid request.
        let req2 = random_request(4, 4, 4, 78);
        let want2 = oracle(&req2);
        let mut wrapped = TcpClient::from_stream(raw);
        let got2 = wrapped.call(&req2).unwrap();
        assert_close(&got2, &want2, "tcp after garbage");
    }

    // Concurrent TCP clients all get correct answers.
    std::thread::scope(|s| {
        for t in 0..8u64 {
            s.spawn(move || {
                let mut c = TcpClient::connect(addr).unwrap();
                for i in 0..4u64 {
                    let req = random_request(6, 6, 6, t * 10 + i);
                    let want = oracle(&req);
                    assert_close(&c.call(&req).unwrap(), &want, "tcp concurrent");
                }
            });
        }
    });

    let stats = tcp.shutdown();
    assert_eq!(stats.completed, stats.submitted);
    assert_eq!(stats.queue_depth, 0);
}

/// Read one error-reply frame off a raw stream.
fn read_reply(stream: &mut std::net::TcpStream) -> Rejected {
    use smm_serve::wire::{decode_payload, read_frame, FrameRead, WireMsg};
    match read_frame(stream).unwrap() {
        FrameRead::Frame(p) => match decode_payload(&p).unwrap() {
            WireMsg::ReplyErr { code, detail, msg } => {
                smm_serve::wire::rejection_from_wire(code, detail, &msg)
            }
            other => panic!("expected error reply, got {other:?}"),
        },
        other => panic!("expected frame, got {other:?}"),
    }
}

#[test]
fn traced_serve_links_member_spans_under_one_coalesced_batch() {
    let smm = Arc::new(
        Smm::<f32>::builder()
            .threads(2)
            .telemetry(true)
            .tracing(true)
            .build(),
    );
    let server = Server::<f32>::builder()
        .smm(Arc::clone(&smm))
        .coalesce_window(Duration::from_millis(20))
        .max_batch(16)
        .build();
    let client = server.client();
    // Same shape from several threads inside one wide coalesce window
    // so the dispatcher folds them into one gemm_batch call.
    std::thread::scope(|s| {
        for t in 0..4u64 {
            let client = client.clone();
            s.spawn(move || {
                let req = random_request(8, 8, 8, 900 + t);
                let want = oracle(&req);
                let got = client.submit(req).unwrap().wait().unwrap();
                assert_close(&got, &want, "traced coalesced");
            });
        }
    });
    server.shutdown();
    let spans = smm.drain_trace();
    assert!(!spans.is_empty(), "traced serve run produced no spans");

    use smm_core::SpanName;
    // Every request got its own Request span with a distinct trace id.
    let request_traces: std::collections::HashSet<u64> = spans
        .iter()
        .filter(|s| s.name == SpanName::Request)
        .map(|s| s.trace)
        .collect();
    assert_eq!(request_traces.len(), 4, "one trace per request: {spans:#?}");

    // At least one coalesced-batch span has >= 2 member children from
    // distinct request traces (the acceptance criterion).
    let best = spans
        .iter()
        .filter(|s| s.name == SpanName::CoalescedBatch)
        .map(|batch| {
            spans
                .iter()
                .filter(|s| s.name == SpanName::Member && s.parent == batch.span)
                .map(|s| s.trace)
                .collect::<std::collections::HashSet<u64>>()
        })
        .map(|traces| traces.len())
        .max()
        .unwrap_or(0);
    assert!(
        best >= 2,
        "no coalesced batch with >= 2 distinct-trace members: {spans:#?}"
    );

    // The admission span nests inside its request's trace.
    assert!(
        spans
            .iter()
            .any(|s| s.name == SpanName::Admission && request_traces.contains(&s.trace)),
        "no admission span inside a request trace"
    );
}

#[test]
fn stats_opcode_matches_in_process_report() {
    use smm_serve::wire::{STATS_JSON, STATS_PROMETHEUS, STATS_TEXT};

    let smm = Arc::new(Smm::<f32>::builder().threads(1).telemetry(true).build());
    let server = Server::<f32>::builder()
        .smm(Arc::clone(&smm))
        .coalesce_window(Duration::ZERO)
        .build();
    let tcp = TcpServer::bind(server, ("127.0.0.1", 0)).unwrap();
    let mut client = TcpClient::connect(tcp.local_addr()).unwrap();
    for i in 0..6u64 {
        let req = random_request(8, 8, 8, 700 + i);
        let want = oracle(&req);
        assert_close(&client.call(&req).unwrap(), &want, "pre-stats traffic");
    }
    // The dispatcher records its Reply phase just after fulfilling the
    // ticket, so give it a beat before comparing snapshots.
    std::thread::sleep(Duration::from_millis(100));

    // The scraped JSON must equal the in-process report except for the
    // rate window, whose numbers move with the scrape time itself.
    let strip_rate = |json: &str| -> String {
        let start = json.find("\"rate\":").expect("rate object present");
        let end = start + json[start..].find('}').expect("rate object closes") + 1;
        format!("{}{}", &json[..start], &json[end..])
    };
    let scraped = client.stats(STATS_JSON).unwrap();
    let local = smm.stats_report().to_json();
    assert_eq!(
        strip_rate(&scraped),
        strip_rate(&local),
        "STATS scrape diverged from Smm::stats_report"
    );

    let text = client.stats(STATS_TEXT).unwrap();
    assert!(text.contains("rate window"), "text scrape: {text}");
    assert!(text.contains("serve"), "text scrape misses serve: {text}");
    let prom = client.stats(STATS_PROMETHEUS).unwrap();
    assert!(
        prom.contains("smm_phase_latency_ns_bucket"),
        "prometheus scrape: {prom}"
    );
    assert!(prom.contains("smm_rate_req_per_sec"), "prometheus: {prom}");

    tcp.shutdown();
}

#[test]
fn slow_exemplars_from_serve_surface_in_the_report() {
    let smm = Arc::new(
        Smm::<f32>::builder()
            .threads(1)
            .telemetry(true)
            .tracing(true)
            // Every request breaches a 1 ns threshold, so the
            // coalesce-window wait alone makes each one an exemplar.
            .slow_trace_threshold(Duration::from_nanos(1))
            .build(),
    );
    let server = Server::<f32>::builder()
        .smm(Arc::clone(&smm))
        .coalesce_window(Duration::from_millis(5))
        .build();
    let client = server.client();
    for i in 0..4u64 {
        let req = random_request(6, 6, 6, 300 + i);
        client.submit(req).unwrap().wait().unwrap();
    }
    server.shutdown();

    let report = smm.stats_report();
    assert!(!report.slow.is_empty(), "no slow exemplars pinned");
    let ex = &report.slow[0];
    assert!(ex.total_ns >= 1, "exemplar latency: {}", ex.total_ns);
    assert!(
        ex.label.contains("serve 6x6x6"),
        "exemplar label: {}",
        ex.label
    );
    use smm_core::SpanName;
    assert!(
        ex.spans.iter().any(|s| s.name == SpanName::Request),
        "exemplar lost its request span: {ex:#?}"
    );
    // The span tree rides along in both renderings.
    assert!(report.to_string().contains("slow-request exemplars"));
    let json = report.to_json();
    assert!(json.contains("\"slow\": ["), "{json}");
    assert!(json.contains("\"total_ns\":"), "{json}");
}
