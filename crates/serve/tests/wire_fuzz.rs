//! Fuzz-ish robustness tests for the wire protocol: the decoder and
//! the live TCP server must survive arbitrary bytes — truncated,
//! oversized, mutated, or pure garbage — without panicking, and the
//! server must answer every in-sync malformed frame with a typed
//! protocol-error frame.

use std::io::Write as _;
use std::net::TcpStream;
use std::time::Duration;

use smm_serve::wire::{
    decode_payload, encode_request, read_frame, FrameRead, WireMsg, MAX_PAYLOAD, OP_REPLY_ERR,
};
use smm_serve::{GemmRequest, Server, TcpServer};

/// Deterministic xorshift64* generator — no external crates.
struct XorShift(u64);

impl XorShift {
    fn new(seed: u64) -> Self {
        XorShift(seed.max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, bound: usize) -> usize {
        (self.next() % bound.max(1) as u64) as usize
    }

    fn bytes(&mut self, len: usize) -> Vec<u8> {
        (0..len).map(|_| self.next() as u8).collect()
    }
}

#[test]
fn decoder_is_total_on_random_payloads() {
    let mut rng = XorShift::new(0xBEEF);
    for round in 0..2000 {
        let len = rng.below(512);
        let payload = rng.bytes(len);
        // Must return, never panic; the value itself is unconstrained.
        let _ = decode_payload(&payload);
        // Bias half the rounds toward plausible opcodes so structured
        // paths get exercised, not just the unknown-opcode bail-out.
        if round % 2 == 0 && !payload.is_empty() {
            let mut p = payload.clone();
            p[0] = (rng.below(5) + 1) as u8;
            let _ = decode_payload(&p);
        }
    }
}

#[test]
fn decoder_survives_mutated_valid_requests() {
    let mut rng = XorShift::new(0xF00D);
    let req = GemmRequest::new(3, 4, 5, vec![1.0; 15], vec![2.0; 20]);
    let valid = encode_request(&req);
    assert!(matches!(decode_payload(&valid), Ok(WireMsg::Request(_))));
    for _ in 0..2000 {
        let mut p = valid.clone();
        match rng.below(3) {
            // Flip bytes in place.
            0 => {
                for _ in 0..=rng.below(8) {
                    let i = rng.below(p.len());
                    p[i] ^= rng.next() as u8;
                }
            }
            // Truncate.
            1 => p.truncate(rng.below(p.len() + 1)),
            // Append trailing garbage.
            _ => {
                let extra = rng.below(32) + 1;
                p.extend(rng.bytes(extra));
            }
        }
        let _ = decode_payload(&p); // must not panic
    }
}

#[test]
fn server_answers_garbage_frames_with_protocol_errors() {
    let server = Server::<f32>::builder()
        .threads(1)
        .coalesce_window(Duration::ZERO)
        .build();
    let tcp = TcpServer::bind(server, ("127.0.0.1", 0)).unwrap();
    let addr = tcp.local_addr();
    let mut rng = XorShift::new(0xDEAD_BEEF);

    for round in 0..24 {
        let mut stream = TcpStream::connect(addr).unwrap();
        // Random payload inside a well-formed frame: the server must
        // answer with an OP_REPLY_ERR frame, never close silently
        // mid-exchange and never panic.
        let len = rng.below(256) + 1;
        let mut payload = rng.bytes(len);
        if round % 2 == 0 {
            // Half the rounds: make it look like a request so deeper
            // decode paths run server-side.
            payload[0] = 1;
        }
        stream
            .write_all(&(payload.len() as u32).to_le_bytes())
            .unwrap();
        stream.write_all(&payload).unwrap();
        match read_frame(&mut stream).unwrap() {
            FrameRead::Frame(reply) => {
                let msg = decode_payload(&reply).expect("server reply frames always decode");
                match msg {
                    WireMsg::ReplyErr { code: _, .. } => {}
                    // A random payload can, with vanishing probability,
                    // be a valid tiny request; accept a success too.
                    WireMsg::ReplyOk { .. } => {}
                    WireMsg::Request(_) => panic!("server echoed a request opcode"),
                    // Garbage can also parse as a stats scrape; the
                    // server answers those with a stats reply.
                    WireMsg::Stats { .. } => panic!("server echoed a stats opcode"),
                    WireMsg::StatsReply { .. } => {}
                }
            }
            other => panic!("expected a reply frame, got {other:?}"),
        }
    }

    // An oversized length prefix: one error frame, then close.
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .write_all(&((MAX_PAYLOAD as u32) + 1).to_le_bytes())
        .unwrap();
    stream.write_all(&rng.bytes(64)).unwrap();
    match read_frame(&mut stream).unwrap() {
        FrameRead::Frame(reply) => match decode_payload(&reply).unwrap() {
            WireMsg::ReplyErr { code, .. } => assert_eq!(reply[0], OP_REPLY_ERR, "code {code}"),
            other => panic!("expected protocol error, got {other:?}"),
        },
        other => panic!("expected error frame before close, got {other:?}"),
    }
    match read_frame(&mut stream) {
        Ok(FrameRead::Eof) | Err(_) => {}
        other => panic!("connection should close after desync, got {other:?}"),
    }

    // A truncated frame (length prefix promises more than is sent,
    // then the client disconnects): server must stay healthy.
    for _ in 0..8 {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(&64u32.to_le_bytes()).unwrap();
        stream.write_all(&rng.bytes(10)).unwrap();
        drop(stream);
    }

    // The server is still fully functional afterwards.
    let mut client = smm_serve::TcpClient::connect(addr).unwrap();
    let req = GemmRequest::new(4, 4, 4, vec![1.0; 16], vec![1.0; 16]);
    let c = client.call(&req).unwrap();
    assert!(c.iter().all(|&v| v == 4.0));

    let stats = tcp.shutdown();
    assert_eq!(stats.queue_depth, 0);
}
