//! Property-style tests for the analytical models, driven by a
//! deterministic xorshift sweep (the container has no proptest crate;
//! the invariants are unchanged).

use smm_model::{
    derive_blocking, enumerate_grids, p2c, select_grid, CacheSizes, KernelShape, MachineSpec,
    Precision, ThreadGrid,
};

/// Deterministic xorshift64* stream.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
    }

    fn next(&mut self) -> u64 {
        self.0 ^= self.0 >> 12;
        self.0 ^= self.0 << 25;
        self.0 ^= self.0 >> 27;
        self.0.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform in `[lo, hi)`.
    fn range(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next() % (hi - lo) as u64) as usize
    }

    /// Uniform float in `[lo, hi)`.
    fn float(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (self.next() >> 11) as f64 / (1u64 << 53) as f64 * (hi - lo)
    }
}

/// P2C decreases (weakly) in M and N and is independent of K.
#[test]
fn p2c_monotonicity() {
    let mut rng = Rng::new(1);
    for _ in 0..128 {
        let (m, n, k) = (rng.range(1, 500), rng.range(1, 500), rng.range(1, 500));
        let base = p2c::p2c_as_published(m, n);
        assert!(p2c::p2c_as_published(m + 1, n) <= base);
        assert!(p2c::p2c_as_published(m, n + 1) <= base);
        let d1 = p2c::p2c_derived(m, n, k, 4, 8);
        let d2 = p2c::p2c_derived(m, n, k + 17, 4, 8);
        assert!((d1 - d2).abs() < 1e-12);
    }
}

/// The predicted packing share is a proper fraction and increases with
/// the cost ratio.
#[test]
fn packing_share_is_a_fraction() {
    let mut rng = Rng::new(2);
    for _ in 0..128 {
        let (m, n, k) = (rng.range(1, 300), rng.range(1, 300), rng.range(1, 300));
        let ratio = rng.float(0.1, 8.0);
        let s = p2c::predicted_packing_share(m, n, k, 4, 8, ratio);
        assert!(s > 0.0 && s < 1.0);
        let s2 = p2c::predicted_packing_share(m, n, k, 4, 8, ratio + 1.0);
        assert!(s2 > s);
    }
}

/// Register accounting: Eq. 4 feasibility is monotone — shrinking a
/// feasible tile keeps it feasible.
#[test]
fn feasibility_is_monotone() {
    for mr in 1usize..=32 {
        for nr in 1usize..=32 {
            let shape = KernelShape::new(mr, nr);
            if shape.satisfies_register_constraint(4, 32, 2) {
                for (smaller_mr, smaller_nr) in [(mr.max(2) - 1, nr), (mr, nr.max(2) - 1)] {
                    let s = KernelShape::new(smaller_mr.max(1), smaller_nr.max(1));
                    assert!(s.satisfies_register_constraint(4, 32, 2));
                }
            }
        }
    }
}

/// CMR is bounded by twice the smaller dimension.
#[test]
fn cmr_bound() {
    for mr in 1usize..=64 {
        for nr in 1usize..=64 {
            let cmr = KernelShape::new(mr, nr).cmr();
            assert!(cmr <= 2.0 * mr.min(nr) as f64 + 1e-12);
            assert!(cmr > 0.0);
        }
    }
}

/// Every enumerated grid multiplies back to the thread count, and the
/// selector's choice is always one of them.
#[test]
fn grids_partition_threads() {
    for threads in 1usize..=64 {
        let grids = enumerate_grids(threads);
        assert!(grids.iter().all(|g| g.threads() == threads));
        let chosen = select_grid(100, 100, 100, threads, KernelShape::new(8, 8));
        assert!(grids.contains(&chosen));
    }
}

/// Grid selection never over-decomposes: per-thread M/N tiles stay at
/// least one register tile when the problem allows it.
#[test]
fn selection_keeps_tiles_whole() {
    let mut rng = Rng::new(3);
    for _ in 0..128 {
        let m = rng.range(8, 2048);
        let n = rng.range(8, 2048);
        let threads = 1usize << rng.range(0, 7);
        let kernel = KernelShape::new(8, 8);
        let g = select_grid(m, n, 64, threads, kernel);
        // If there are at least `threads` full tiles in total, no thread
        // should be starved below one tile in both dimensions.
        let m_tiles = m / kernel.mr;
        let n_tiles = n / kernel.nr;
        if m_tiles * n_tiles >= threads && m_tiles >= 1 && n_tiles >= 1 {
            let per_m = m.div_ceil(g.m_ways());
            let per_n = n.div_ceil(g.n_ways());
            assert!(
                per_m >= kernel.mr / 2 || per_n >= kernel.nr,
                "grid {g:?} starves {m}x{n}"
            );
        }
    }
}

/// Derived blocking always respects its cache budgets.
#[test]
fn blocking_respects_caches() {
    for mr in [4usize, 8, 16] {
        for nr in [4usize, 8, 12] {
            for elem in [4usize, 8] {
                let caches = CacheSizes::phytium_2000_plus();
                let b = derive_blocking(caches, mr, nr, elem);
                // One B sliver in half of L1 (allow the min-32 clamp slack).
                assert!(b.kc * nr * elem <= caches.l1d / 2 + 32 * nr * elem);
                // Packed A block within half of L2 (allow one mr row of slack).
                assert!(b.mc * b.kc * elem <= caches.l2 / 2 + mr * b.kc * elem);
                assert!(b.mc.is_multiple_of(mr) && b.nc.is_multiple_of(nr));
            }
        }
    }
}

/// Peak/efficiency arithmetic round-trips.
#[test]
fn efficiency_round_trips() {
    let mut rng = Rng::new(4);
    for _ in 0..128 {
        let cores = rng.range(1, 65);
        let frac = rng.float(0.01, 1.0);
        let spec = MachineSpec::phytium_2000_plus();
        let peak = spec.peak_gflops(Precision::F32, cores);
        let e = spec.efficiency(peak * frac, Precision::F32, cores);
        assert!((e.fraction() - frac).abs() < 1e-9);
    }
}

/// Sync cohort never exceeds the thread count.
#[test]
fn cohorts_are_bounded() {
    for jc in 1usize..8 {
        for ic in 1usize..8 {
            for jr in 1usize..8 {
                for ir in 1usize..8 {
                    let g = ThreadGrid { jc, ic, jr, ir };
                    assert!(g.sync_cohort() <= g.threads());
                    assert_eq!(g.m_ways() * g.n_ways(), g.threads());
                }
            }
        }
    }
}
