//! Property tests for the analytical models.

use proptest::prelude::*;
use smm_model::{
    derive_blocking, enumerate_grids, p2c, select_grid, CacheSizes, KernelShape, MachineSpec,
    Precision, ThreadGrid,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// P2C decreases (weakly) in M and N and is independent of K.
    #[test]
    fn p2c_monotonicity(m in 1usize..500, n in 1usize..500, k in 1usize..500) {
        let base = p2c::p2c_as_published(m, n);
        prop_assert!(p2c::p2c_as_published(m + 1, n) <= base);
        prop_assert!(p2c::p2c_as_published(m, n + 1) <= base);
        let d1 = p2c::p2c_derived(m, n, k, 4, 8);
        let d2 = p2c::p2c_derived(m, n, k + 17, 4, 8);
        prop_assert!((d1 - d2).abs() < 1e-12);
    }

    /// The predicted packing share is a proper fraction and increases
    /// with the cost ratio.
    #[test]
    fn packing_share_is_a_fraction(
        m in 1usize..300,
        n in 1usize..300,
        k in 1usize..300,
        ratio in 0.1f64..8.0,
    ) {
        let s = p2c::predicted_packing_share(m, n, k, 4, 8, ratio);
        prop_assert!(s > 0.0 && s < 1.0);
        let s2 = p2c::predicted_packing_share(m, n, k, 4, 8, ratio + 1.0);
        prop_assert!(s2 > s);
    }

    /// Register accounting: Eq. 4 feasibility is monotone — shrinking a
    /// feasible tile keeps it feasible.
    #[test]
    fn feasibility_is_monotone(mr in 1usize..=32, nr in 1usize..=32) {
        let shape = KernelShape::new(mr, nr);
        if shape.satisfies_register_constraint(4, 32, 2) {
            for (smaller_mr, smaller_nr) in [(mr.max(2) - 1, nr), (mr, nr.max(2) - 1)] {
                let s = KernelShape::new(smaller_mr.max(1), smaller_nr.max(1));
                prop_assert!(s.satisfies_register_constraint(4, 32, 2));
            }
        }
    }

    /// CMR is bounded by twice the smaller dimension.
    #[test]
    fn cmr_bound(mr in 1usize..=64, nr in 1usize..=64) {
        let cmr = KernelShape::new(mr, nr).cmr();
        prop_assert!(cmr <= 2.0 * mr.min(nr) as f64 + 1e-12);
        prop_assert!(cmr > 0.0);
    }

    /// Every enumerated grid multiplies back to the thread count, and
    /// the selector's choice is always one of them.
    #[test]
    fn grids_partition_threads(threads in 1usize..=64) {
        let grids = enumerate_grids(threads);
        prop_assert!(grids.iter().all(|g| g.threads() == threads));
        let chosen = select_grid(100, 100, 100, threads, KernelShape::new(8, 8));
        prop_assert!(grids.contains(&chosen));
    }

    /// Grid selection never over-decomposes: per-thread M/N tiles stay
    /// at least one register tile when the problem allows it.
    #[test]
    fn selection_keeps_tiles_whole(
        m in 8usize..2048,
        n in 8usize..2048,
        threads_pow in 0u32..7,
    ) {
        let threads = 1usize << threads_pow;
        let kernel = KernelShape::new(8, 8);
        let g = select_grid(m, n, 64, threads, kernel);
        // If there are at least `threads` full tiles in total, no thread
        // should be starved below one tile in both dimensions.
        let m_tiles = m / kernel.mr;
        let n_tiles = n / kernel.nr;
        if m_tiles * n_tiles >= threads && m_tiles >= 1 && n_tiles >= 1 {
            let per_m = m.div_ceil(g.m_ways());
            let per_n = n.div_ceil(g.n_ways());
            prop_assert!(
                per_m >= kernel.mr / 2 || per_n >= kernel.nr,
                "grid {g:?} starves {m}x{n}"
            );
        }
    }

    /// Derived blocking always respects its cache budgets.
    #[test]
    fn blocking_respects_caches(
        mr_idx in 0usize..3,
        nr_idx in 0usize..3,
        elem in prop::sample::select(vec![4usize, 8]),
    ) {
        let mr = [4usize, 8, 16][mr_idx];
        let nr = [4usize, 8, 12][nr_idx];
        let caches = CacheSizes::phytium_2000_plus();
        let b = derive_blocking(caches, mr, nr, elem);
        // One B sliver in half of L1 (allow the min-32 clamp slack).
        prop_assert!(b.kc * nr * elem <= caches.l1d / 2 + 32 * nr * elem);
        // Packed A block within half of L2 (allow one mr row of slack).
        prop_assert!(b.mc * b.kc * elem <= caches.l2 / 2 + mr * b.kc * elem);
        prop_assert!(b.mc.is_multiple_of(mr) && b.nc.is_multiple_of(nr));
    }

    /// Peak/efficiency arithmetic round-trips.
    #[test]
    fn efficiency_round_trips(cores in 1usize..=64, frac in 0.01f64..1.0) {
        let spec = MachineSpec::phytium_2000_plus();
        let peak = spec.peak_gflops(Precision::F32, cores);
        let e = spec.efficiency(peak * frac, Precision::F32, cores);
        prop_assert!((e.fraction() - frac).abs() < 1e-9);
    }

    /// Sync cohort never exceeds the thread count.
    #[test]
    fn cohorts_are_bounded(jc in 1usize..8, ic in 1usize..8, jr in 1usize..8, ir in 1usize..8) {
        let g = ThreadGrid { jc, ic, jr, ir };
        prop_assert!(g.sync_cohort() <= g.threads());
        prop_assert_eq!(g.m_ways() * g.n_ways(), g.threads());
    }
}
