//! The §III-D parallelization model.
//!
//! BLIS parallelizes any combination of the `jj` (a.k.a. `jc`), `ii`
//! (`ic`), `j` (`jr`) and `i` (`ir`) loops of the Goto structure; the
//! number of threads assigned to each loop forms a *thread grid*
//! `jc × ic × jr × ir`. OpenBLAS and Eigen only split the matrix `C`
//! into a two-dimensional grid (equivalent to `ic × jc` ways with the
//! inner loops sequential). The paper's guidance: never parallelize a
//! dimension that is small, and keep synchronization cohorts (the
//! threads that share a packed buffer and must barrier together) small.

use crate::microkernel::KernelShape;

/// A multi-dimensional thread grid assigning ways to each parallelizable
/// loop of the Goto structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ThreadGrid {
    /// Ways over the `jj` loop (Layer 1, N dimension, `nc` steps).
    pub jc: usize,
    /// Ways over the `ii` loop (Layer 3, M dimension, `mc` steps).
    pub ic: usize,
    /// Ways over the `j` loop (Layer 4, N dimension, `nr` steps).
    pub jr: usize,
    /// Ways over the `i` loop (Layer 5, M dimension, `mr` steps).
    pub ir: usize,
}

impl ThreadGrid {
    /// Total number of threads the grid uses.
    pub fn threads(&self) -> usize {
        self.jc * self.ic * self.jr * self.ir
    }

    /// Ways applied to the M dimension.
    pub fn m_ways(&self) -> usize {
        self.ic * self.ir
    }

    /// Ways applied to the N dimension.
    pub fn n_ways(&self) -> usize {
        self.jc * self.jr
    }

    /// Threads participating in one packing/loop barrier: the cohort
    /// sharing a packed `B̃` panel is everything inside one `jc` way.
    pub fn sync_cohort(&self) -> usize {
        self.ic * self.jr * self.ir
    }
}

/// Score the per-thread M-tile against the register kernel: how many of
/// the `mr`-rows each thread computes are genuine (not zero padding /
/// edge remainder). 1.0 is perfect.
fn m_utilization(m: usize, m_ways: usize, mr: usize) -> f64 {
    let per = m.div_ceil(m_ways).max(1);
    let padded = per.div_ceil(mr) * mr;
    per as f64 / padded as f64
}

fn n_utilization(n: usize, n_ways: usize, nr: usize) -> f64 {
    let per = n.div_ceil(n_ways).max(1);
    let padded = per.div_ceil(nr) * nr;
    per as f64 / padded as f64
}

/// Enumerate all factorizations of `threads` into `jc·ic·jr·ir`.
pub fn enumerate_grids(threads: usize) -> Vec<ThreadGrid> {
    assert!(threads >= 1, "need at least one thread");
    let mut grids = Vec::new();
    for jc in divisors(threads) {
        for ic in divisors(threads / jc) {
            let rem = threads / jc / ic;
            for jr in divisors(rem) {
                let ir = rem / jr;
                grids.push(ThreadGrid { jc, ic, jr, ir });
            }
        }
    }
    grids
}

fn divisors(n: usize) -> Vec<usize> {
    (1..=n).filter(|d| n.is_multiple_of(*d)).collect()
}

/// Load-balance factor: fraction of time the average thread is busy if
/// work splits into `ceil(units/ways)`-sized chunks.
fn balance(units: usize, ways: usize) -> f64 {
    if ways <= 1 {
        return 1.0;
    }
    let per = units.div_ceil(ways);
    let busy_ways = units.div_ceil(per);
    units as f64 / (per * busy_ways.max(1)) as f64 * busy_ways as f64 / ways as f64
}

/// Select a thread grid for an `m × n × k` problem following the
/// paper's §III-D guidance. The score multiplies:
///
/// * M/N edge utilization (don't parallelize small dimensions — doing
///   so shrinks per-thread tiles below `mr`/`nr` and manufactures edge
///   cases);
/// * load balance over micro-tile rows/columns;
/// * a synchronization penalty that grows with the barrier cohort, so
///   fine-grained sync control is preferred (`1 / (1 + eps·cohort)`).
pub fn select_grid(
    m: usize,
    n: usize,
    k: usize,
    threads: usize,
    kernel: KernelShape,
) -> ThreadGrid {
    let _ = k; // K is never parallelized in the Goto structure.
    let mut best = ThreadGrid {
        jc: 1,
        ic: 1,
        jr: 1,
        ir: threads,
    };
    let mut best_score = f64::MIN;
    for g in enumerate_grids(threads) {
        let mu = m_utilization(m, g.m_ways(), kernel.mr);
        let nu = n_utilization(n, g.n_ways(), kernel.nr);
        let bal_m = balance(m.div_ceil(kernel.mr), g.m_ways());
        let bal_n = balance(n.div_ceil(kernel.nr), g.n_ways());
        let sync = 1.0 / (1.0 + 0.002 * g.sync_cohort() as f64);
        // Prefer spreading across jc/ic over jr/ir slightly (coarser
        // tasks amortize per-task overhead), matching BLIS defaults.
        let coarse = 1.0 + 0.01 * ((g.jc * g.ic) as f64).ln_1p();
        // Piling all the ways onto one loop concentrates the task
        // granularity; BLIS spreads ways across loops (e.g. 8x8).
        let max_way = g.jc.max(g.ic).max(g.jr).max(g.ir);
        let conc = 1.0 / (1.0 + 0.005 * (max_way as f64 - 1.0));
        let score = mu * nu * bal_m * bal_n * sync * coarse * conc;
        if score > best_score {
            best_score = score;
            best = g;
        }
    }
    best
}

/// Per-thread workload (element-MACs) for a grid, per the paper's
/// Table II discussion: `(mc/ic·ways) × (nc/jc·ways) × kc` style
/// partitioning generalized to the full problem.
pub fn per_thread_macs(m: usize, n: usize, k: usize, grid: ThreadGrid) -> f64 {
    (m as f64 / grid.m_ways() as f64) * (n as f64 / grid.n_ways() as f64) * k as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k88() -> KernelShape {
        KernelShape::new(8, 8)
    }

    #[test]
    fn grid_arithmetic() {
        let g = ThreadGrid {
            jc: 8,
            ic: 2,
            jr: 4,
            ir: 1,
        };
        assert_eq!(g.threads(), 64);
        assert_eq!(g.m_ways(), 2);
        assert_eq!(g.n_ways(), 32);
        assert_eq!(g.sync_cohort(), 8);
    }

    #[test]
    fn enumeration_covers_all_factorizations() {
        let grids = enumerate_grids(64);
        assert!(grids.iter().all(|g| g.threads() == 64));
        // 64 = 2^6; number of ordered 4-factorizations = C(6+3,3) = 84.
        assert_eq!(grids.len(), 84);
        let unique: std::collections::HashSet<_> = grids.iter().collect();
        assert_eq!(unique.len(), grids.len());
    }

    #[test]
    fn enumeration_of_one_thread() {
        let grids = enumerate_grids(1);
        assert_eq!(
            grids,
            vec![ThreadGrid {
                jc: 1,
                ic: 1,
                jr: 1,
                ir: 1
            }]
        );
    }

    #[test]
    fn small_m_is_not_parallelized_over_m() {
        // Paper example: M = 64 with 64 threads must not put all 64
        // ways on the i/ii loops (that would force mc = mr = 1).
        let g = select_grid(64, 4096, 4096, 64, k88());
        assert!(g.m_ways() <= 8, "m_ways {} too high for M=64", g.m_ways());
        assert!(g.n_ways() >= 8);
    }

    #[test]
    fn small_n_is_not_parallelized_over_n() {
        let g = select_grid(4096, 48, 4096, 64, k88());
        assert!(g.n_ways() <= 8, "n_ways {} too high for N=48", g.n_ways());
    }

    #[test]
    fn square_large_problem_uses_both_dims() {
        let g = select_grid(4096, 4096, 256, 64, k88());
        assert!(g.m_ways() > 1 && g.n_ways() > 1);
    }

    #[test]
    fn utilization_penalizes_overdecomposition() {
        // M=64, 64 ways, mr=8: per-thread M = 1, padded to 8 -> 12.5%.
        assert!((m_utilization(64, 64, 8) - 0.125).abs() < 1e-12);
        assert_eq!(m_utilization(64, 8, 8), 1.0);
    }

    #[test]
    fn balance_is_one_for_even_splits() {
        assert_eq!(balance(64, 8), 1.0);
        assert!(balance(9, 8) < 1.0);
        assert_eq!(balance(4, 1), 1.0);
    }

    #[test]
    fn per_thread_macs_match_table_ii_example() {
        // Paper: OpenBLAS with 64 threads on the ii loop gives each
        // thread (mc/64) * nc * kc work.
        let ob = ThreadGrid {
            jc: 1,
            ic: 64,
            jr: 1,
            ir: 1,
        };
        let w = per_thread_macs(128, 4096, 256, ob);
        assert!((w - (128.0 / 64.0) * 4096.0 * 256.0).abs() < 1e-6);
        // BLIS 8x8 grid keeps cohorts at 8.
        let blis = ThreadGrid {
            jc: 8,
            ic: 1,
            jr: 8,
            ir: 1,
        };
        assert_eq!(blis.sync_cohort(), 8);
        assert_eq!(ob.sync_cohort(), 64);
    }

    #[test]
    fn selected_grid_always_uses_all_threads() {
        for &t in &[1, 2, 4, 8, 16, 32, 64] {
            for &(m, n) in &[(16, 2048), (2048, 16), (100, 100), (8, 8)] {
                let g = select_grid(m, n, 256, t, k88());
                assert_eq!(g.threads(), t, "grid {g:?} for m={m} n={n} t={t}");
            }
        }
    }
}
