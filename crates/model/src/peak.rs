//! Machine descriptions and peak-performance arithmetic.
//!
//! The paper's target is Phytium 2000+: 64 ARMv8 Xiaomi cores at 2.2 GHz,
//! one 128-bit FMA pipe per core, 563.2 Gflops double-precision peak.

/// Floating-point precision of a GEMM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Precision {
    /// 32-bit IEEE-754 (the paper's formulas assume `sizeof(float)`).
    F32,
    /// 64-bit IEEE-754.
    F64,
}

impl Precision {
    /// Size of one element in bytes.
    pub fn bytes(self) -> usize {
        match self {
            Precision::F32 => 4,
            Precision::F64 => 8,
        }
    }
}

/// Static description of a many-core machine for peak/efficiency math.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MachineSpec {
    /// Core clock in Hz.
    pub freq_hz: f64,
    /// SIMD register width in bytes (16 for 128-bit NEON).
    pub simd_bytes: usize,
    /// FMA instructions issued per cycle per core.
    pub fma_per_cycle: usize,
    /// Number of cores.
    pub cores: usize,
}

impl MachineSpec {
    /// Phytium 2000+ as described in §II-A of the paper.
    pub fn phytium_2000_plus() -> Self {
        Self {
            freq_hz: 2.2e9,
            simd_bytes: 16,
            fma_per_cycle: 1,
            cores: 64,
        }
    }

    /// SIMD lanes per register for a precision.
    pub fn lanes(&self, prec: Precision) -> usize {
        self.simd_bytes / prec.bytes()
    }

    /// Flops per cycle per core: `2 · lanes · fma_per_cycle`
    /// (an FMA counts as a multiply and an add).
    pub fn flops_per_cycle_per_core(&self, prec: Precision) -> f64 {
        (2 * self.lanes(prec) * self.fma_per_cycle) as f64
    }

    /// Peak flops/s for `ncores` cores.
    pub fn peak_flops(&self, prec: Precision, ncores: usize) -> f64 {
        assert!(
            ncores >= 1 && ncores <= self.cores,
            "core count out of range"
        );
        self.flops_per_cycle_per_core(prec) * self.freq_hz * ncores as f64
    }

    /// Peak Gflops/s for `ncores` cores.
    pub fn peak_gflops(&self, prec: Precision, ncores: usize) -> f64 {
        self.peak_flops(prec, ncores) / 1e9
    }

    /// `Load_width` of Eq. 1: elements transferred by one vector load.
    pub fn load_width(&self, prec: Precision) -> usize {
        self.lanes(prec)
    }

    /// `FMA_width` of Eq. 2 under the paper's convention: the number of
    /// floating-point data one FMA instruction computes, counting both
    /// the multiply and the add (`2 · simd_bytes / sizeof(elem)`).
    pub fn fma_width(&self, prec: Precision) -> usize {
        2 * self.lanes(prec)
    }

    /// Efficiency of an observed rate against peak for `ncores` cores.
    pub fn efficiency(&self, gflops: f64, prec: Precision, ncores: usize) -> Efficiency {
        Efficiency {
            gflops,
            peak_gflops: self.peak_gflops(prec, ncores),
        }
    }

    /// Gflops achieved by `flops` useful flops in `cycles` machine cycles
    /// (wall-clock cycles, not core-cycles summed).
    pub fn gflops_from_cycles(&self, flops: f64, cycles: u64) -> f64 {
        assert!(cycles > 0, "cycle count must be positive");
        flops / (cycles as f64 / self.freq_hz) / 1e9
    }
}

/// An achieved rate paired with the relevant peak.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Efficiency {
    /// Achieved Gflops/s.
    pub gflops: f64,
    /// Peak Gflops/s of the configuration measured against.
    pub peak_gflops: f64,
}

impl Efficiency {
    /// Fraction of peak in `[0, ...)`.
    pub fn fraction(&self) -> f64 {
        self.gflops / self.peak_gflops
    }

    /// Percent of peak.
    pub fn percent(&self) -> f64 {
        self.fraction() * 100.0
    }
}

/// Useful floating-point operations of `C = alpha*A*B + beta*C`:
/// the conventional `2·M·N·K` count.
pub fn gemm_flops(m: usize, n: usize, k: usize) -> f64 {
    2.0 * m as f64 * n as f64 * k as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phytium_dp_peak_matches_paper() {
        // §II-A: 563.2 Gflops double precision across 64 cores.
        let m = MachineSpec::phytium_2000_plus();
        let peak = m.peak_gflops(Precision::F64, 64);
        assert!((peak - 563.2).abs() < 1e-9, "got {peak}");
    }

    #[test]
    fn sp_peak_is_twice_dp() {
        let m = MachineSpec::phytium_2000_plus();
        let sp = m.peak_gflops(Precision::F32, 64);
        let dp = m.peak_gflops(Precision::F64, 64);
        assert!((sp - 2.0 * dp).abs() < 1e-9);
    }

    #[test]
    fn single_core_sp_peak() {
        let m = MachineSpec::phytium_2000_plus();
        // 2.2 GHz * 8 SP flops/cycle = 17.6 Gflops.
        assert!((m.peak_gflops(Precision::F32, 1) - 17.6).abs() < 1e-9);
    }

    #[test]
    fn widths_match_paper_equations() {
        let m = MachineSpec::phytium_2000_plus();
        // Eq. 1: Load_width = 16 / sizeof(float) = 4.
        assert_eq!(m.load_width(Precision::F32), 4);
        // Eq. 2: FMA_width = 2 * 16 / sizeof(float) = 8.
        assert_eq!(m.fma_width(Precision::F32), 8);
        assert_eq!(m.load_width(Precision::F64), 2);
        assert_eq!(m.fma_width(Precision::F64), 4);
    }

    #[test]
    fn efficiency_fraction() {
        let m = MachineSpec::phytium_2000_plus();
        let e = m.efficiency(8.8, Precision::F32, 1);
        assert!((e.fraction() - 0.5).abs() < 1e-12);
        assert!((e.percent() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn gflops_from_cycles_at_peak() {
        let m = MachineSpec::phytium_2000_plus();
        // One core running 1000 cycles at 8 flops/cycle.
        let g = m.gflops_from_cycles(8.0 * 1000.0, 1000);
        assert!((g - 17.6).abs() < 1e-9);
    }

    #[test]
    fn gemm_flop_count() {
        assert_eq!(gemm_flops(10, 20, 30), 12_000.0);
    }

    #[test]
    #[should_panic(expected = "core count")]
    fn rejects_too_many_cores() {
        MachineSpec::phytium_2000_plus().peak_flops(Precision::F32, 65);
    }
}
