//! The packing-to-computing ratio (P2C) of §III-A.
//!
//! During data packing a Goto-style GEMM loads every element of `A`
//! (`M × K`) and `B` (`K × N`) once, then performs `M × N × K`
//! multiply-accumulates. The paper quantifies the relative weight of the
//! packing phase with the ratio of packing load instructions (Eq. 1) to
//! arithmetic FMA instructions (Eq. 2).
//!
//! ## A note on the published algebra
//!
//! Equation 1 of the paper writes the packed element count as
//! `M·N + K·N` and Eq. 3 concludes `P2C = (M+N)/(2·M·N)`. The element
//! count of `A` and `B` is actually `M·K + K·N`, and dividing Eq. 1 by
//! Eq. 2 with the paper's own `Load_width = 4` and `FMA_width = 8` yields
//! `2·(M+N)/(M·N)`. Both forms agree on the two properties the paper
//! uses — P2C is independent of `K` and decays as `M`, `N` grow — and
//! differ only by a constant factor. We expose both: [`p2c_as_published`]
//! reproduces Eq. 3 verbatim, [`p2c_derived`] carries the algebra through
//! from the corrected Eq. 1.

/// Number of load instructions needed to pack `A` (`m × k`) and `B`
/// (`k × n`), Eq. 1 with the corrected element count `M·K + K·N`.
///
/// `load_width` is the number of scalar elements one load fills
/// (4 for single precision on a 128-bit machine).
pub fn num_pack_loads(m: usize, n: usize, k: usize, load_width: usize) -> f64 {
    assert!(load_width > 0, "load width must be positive");
    (m * k + k * n) as f64 / load_width as f64
}

/// Number of FMA instructions needed for the multiplication, Eq. 2.
///
/// `fma_width` follows the paper's convention: the number of
/// floating-point data elements one FMA instruction "computes"
/// (8 for single precision on Phytium 2000+, counting both the multiply
/// and the add over 4 lanes).
pub fn num_fma(m: usize, n: usize, k: usize, fma_width: usize) -> f64 {
    assert!(fma_width > 0, "FMA width must be positive");
    (m * n * k) as f64 / fma_width as f64
}

/// The packing-to-computing ratio exactly as published (Eq. 3):
/// `P2C = (M + N) / (2 · M · N)`.
///
/// Independent of `K`; smaller is better.
pub fn p2c_as_published(m: usize, n: usize) -> f64 {
    assert!(m > 0 && n > 0, "matrix dimensions must be positive");
    (m + n) as f64 / (2.0 * (m * n) as f64)
}

/// The packing-to-computing ratio carried through from the corrected
/// Eq. 1: `Num_Load / Num_FMA = 2 · (M + N) / (M · N)` for
/// `load_width = 4`, `fma_width = 8`.
pub fn p2c_derived(m: usize, n: usize, k: usize, load_width: usize, fma_width: usize) -> f64 {
    num_pack_loads(m, n, k, load_width) / num_fma(m, n, k, fma_width)
}

/// Predict the fraction of total run time spent packing, given P2C and
/// the relative cost of a packing load versus an FMA.
///
/// If packing issues `L` loads that each cost `cost_ratio` FMA-equivalents
/// and the kernel issues `F` FMAs, the packing share is
/// `L·cost_ratio / (L·cost_ratio + F)`. With `cost_ratio = 1` this is the
/// paper's first-order model; packing loads that miss cache are more
/// expensive, which `cost_ratio > 1` captures.
pub fn predicted_packing_share(
    m: usize,
    n: usize,
    k: usize,
    load_width: usize,
    fma_width: usize,
    cost_ratio: f64,
) -> f64 {
    let loads = num_pack_loads(m, n, k, load_width) * cost_ratio;
    let fmas = num_fma(m, n, k, fma_width);
    loads / (loads + fmas)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_loads_counts_both_operands() {
        // A is 8x4 (32 elems), B is 4x16 (64 elems); width 4 => 24 loads.
        assert_eq!(num_pack_loads(8, 16, 4, 4), 24.0);
    }

    #[test]
    fn fma_count_matches_paper_convention() {
        // 8*8*8 = 512 MACs, width 8 => 64 FMA instructions.
        assert_eq!(num_fma(8, 8, 8, 8), 64.0);
    }

    #[test]
    fn p2c_published_is_independent_of_k() {
        let a = p2c_as_published(16, 32);
        assert!((a - 48.0 / 1024.0).abs() < 1e-12);
    }

    #[test]
    fn p2c_decreases_with_m_and_n() {
        assert!(p2c_as_published(4, 4) > p2c_as_published(8, 8));
        assert!(p2c_as_published(8, 8) > p2c_as_published(64, 64));
        assert!(p2c_derived(4, 4, 100, 4, 8) > p2c_derived(8, 8, 100, 4, 8));
    }

    #[test]
    fn p2c_derived_is_independent_of_k() {
        let a = p2c_derived(16, 32, 8, 4, 8);
        let b = p2c_derived(16, 32, 400, 4, 8);
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn p2c_derived_matches_closed_form() {
        // 2*(M+N)/(M*N) for the paper's widths.
        let got = p2c_derived(10, 20, 7, 4, 8);
        let want = 2.0 * 30.0 / 200.0;
        assert!((got - want).abs() < 1e-12);
    }

    #[test]
    fn published_and_derived_differ_by_constant_factor() {
        for &(m, n) in &[(2, 2), (5, 40), (100, 3), (64, 64)] {
            let ratio = p2c_derived(m, n, 11, 4, 8) / p2c_as_published(m, n);
            assert!((ratio - 4.0).abs() < 1e-9, "ratio {ratio} for {m}x{n}");
        }
    }

    #[test]
    fn packing_share_grows_as_dims_shrink() {
        let small = predicted_packing_share(4, 4, 64, 4, 8, 1.0);
        let large = predicted_packing_share(64, 64, 64, 4, 8, 1.0);
        assert!(small > large);
        assert!(
            small >= 0.5,
            "tiny M,N should be packing dominated: {small}"
        );
    }

    #[test]
    fn packing_share_independent_of_k_to_first_order() {
        let a = predicted_packing_share(8, 8, 16, 4, 8, 1.0);
        let b = predicted_packing_share(8, 8, 512, 4, 8, 1.0);
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn cost_ratio_scales_share_monotonically() {
        let cheap = predicted_packing_share(16, 16, 64, 4, 8, 1.0);
        let pricey = predicted_packing_share(16, 16, 64, 4, 8, 3.0);
        assert!(pricey > cheap);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dims_rejected() {
        p2c_as_published(0, 4);
    }
}
