//! Analytical performance models for small-scale matrix multiplication (SMM).
//!
//! This crate implements the analytical machinery of Yang, Fang and Dong,
//! *"Characterizing Small-Scale Matrix Multiplications on ARMv8-based
//! Many-Core Architectures"* (IPDPS Workshops 2021):
//!
//! * [`p2c`] — the packing-to-computing ratio of §III-A (Eqs. 1–3), which
//!   quantifies how much of an SMM's run time is spent packing operands
//!   rather than computing.
//! * [`microkernel`] — the register-file constraint of §III-C (Eq. 4) and
//!   the compute-to-memory ratio (CMR, Eq. 5) used to rank candidate
//!   `mr × nr` micro-kernel shapes.
//! * [`isa`] — [`VectorIsa`] descriptors that make Eq. 4/Eq. 5 and the
//!   chain-bound ceiling parametric over vector width (NEON-128 plus
//!   SVE-style 256/512-bit predicated configs).
//! * [`peak`] — machine descriptions (frequency, SIMD width, FMA issue
//!   rate, core count) and peak-performance / efficiency arithmetic.
//! * [`blocking`] — derivation of the Goto-algorithm blocking parameters
//!   (`kc`, `mc`, `nc`) from cache capacities.
//! * [`parallel`] — the §III-D parallelization model: enumeration of
//!   multi-dimensional thread grids, per-thread workload, and
//!   synchronization-cohort sizes.
//!
//! The models are pure functions of problem shape and hardware parameters;
//! they are validated against the cycle-level simulator in `smm-simarch`
//! by the benchmark harness.

#![deny(missing_docs)]

pub mod blocking;
pub mod isa;
pub mod microkernel;
pub mod p2c;
pub mod parallel;
pub mod peak;

pub use blocking::{derive_blocking, BlockingParams, CacheSizes};
pub use isa::VectorIsa;
pub use microkernel::{
    check_register_budget, cmr, registers_for_accumulator, satisfies_register_constraint,
    KernelShape, RegisterBudget, RegisterBudgetError,
};
pub use p2c::{num_fma, num_pack_loads, p2c_as_published, p2c_derived, predicted_packing_share};
pub use parallel::{enumerate_grids, select_grid, ThreadGrid};
pub use peak::{Efficiency, MachineSpec, Precision};
