//! Micro-kernel shape selection (§III-C): register constraint (Eq. 4) and
//! compute-to-memory ratio (Eq. 5).
//!
//! A Goto-style micro-kernel keeps an `mr × nr` accumulator block of `C`
//! resident in vector registers while streaming slivers of packed `A` and
//! `B` through the remaining registers. On an ARMv8 core with 32
//! 128-bit vector registers (4 single-precision lanes each), the
//! accumulator may use at most `32 - spare` registers, where at least one
//! register each must be reserved for staging `A` and `B` (Eq. 4 uses
//! `spare = 2`).

/// A candidate `mr × nr` micro-kernel shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct KernelShape {
    /// Rows of the register tile (the `A`-side dimension).
    pub mr: usize,
    /// Columns of the register tile (the `B`-side dimension).
    pub nr: usize,
}

impl KernelShape {
    /// Create a shape. Panics if either dimension is zero.
    pub fn new(mr: usize, nr: usize) -> Self {
        assert!(mr > 0 && nr > 0, "kernel dimensions must be positive");
        Self { mr, nr }
    }

    /// Vector registers needed for the accumulator with `lanes`
    /// elements per register: `ceil(mr / lanes) * nr`.
    pub fn accumulator_registers(&self, lanes: usize) -> usize {
        self.mr.div_ceil(lanes) * self.nr
    }

    /// Eq. 4: does the accumulator fit in `total_regs - spare` registers?
    pub fn satisfies_register_constraint(
        &self,
        lanes: usize,
        total_regs: usize,
        spare: usize,
    ) -> bool {
        self.accumulator_registers(lanes) <= total_regs.saturating_sub(spare)
    }

    /// Eq. 5: compute-to-memory ratio `2·mr·nr / (mr + nr)`.
    ///
    /// Each rank-1 update performs `mr·nr` MACs (`2·mr·nr` flops) and
    /// touches `mr + nr` operand elements; larger CMR means memory
    /// traffic is easier to hide behind arithmetic.
    pub fn cmr(&self) -> f64 {
        2.0 * (self.mr * self.nr) as f64 / (self.mr + self.nr) as f64
    }

    /// Minimum number of independent accumulator dependency chains that
    /// a core must interleave to cover an FMA pipeline of `fma_latency`
    /// cycles at one FMA per cycle. The kernel has `mr/lanes · nr`
    /// accumulator registers, each forming one chain; if that count is
    /// below `fma_latency` the FMA pipe necessarily bubbles and kernel
    /// efficiency is bounded by `chains / fma_latency`.
    pub fn chain_bound_efficiency(&self, lanes: usize, fma_latency: usize) -> f64 {
        let chains = self.accumulator_registers(lanes);
        (chains as f64 / fma_latency as f64).min(1.0)
    }
}

/// The outcome of a satisfied Eq. 4 register-budget check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegisterBudget {
    /// Vector registers the accumulator occupies.
    pub accumulators: usize,
    /// Registers the accumulator may occupy (`total_regs - spare`).
    pub limit: usize,
}

impl RegisterBudget {
    /// Registers left over for operand staging beyond the reserved
    /// spare pair.
    pub fn headroom(&self) -> usize {
        self.limit - self.accumulators
    }
}

/// An Eq. 4 violation: the accumulator tile does not fit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegisterBudgetError {
    /// Requested tile rows.
    pub mr: usize,
    /// Requested tile columns.
    pub nr: usize,
    /// Registers the accumulator would need.
    pub accumulators: usize,
    /// Registers available to it.
    pub limit: usize,
}

impl std::fmt::Display for RegisterBudgetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}x{} violates the Eq. 4 register constraint: accumulator \
             needs {} vector registers, budget is {}",
            self.mr, self.nr, self.accumulators, self.limit
        )
    }
}

impl std::error::Error for RegisterBudgetError {}

/// The single authoritative Eq. 4 check, shared by kernel-descriptor
/// construction (`smm-kernels`) and the static verifier (`smm-analyze`)
/// so the two can never drift apart.
pub fn check_register_budget(
    mr: usize,
    nr: usize,
    lanes: usize,
    total_regs: usize,
    spare: usize,
) -> Result<RegisterBudget, RegisterBudgetError> {
    let shape = KernelShape::new(mr, nr);
    let accumulators = shape.accumulator_registers(lanes);
    let limit = total_regs.saturating_sub(spare);
    if accumulators <= limit {
        Ok(RegisterBudget {
            accumulators,
            limit,
        })
    } else {
        Err(RegisterBudgetError {
            mr,
            nr,
            accumulators,
            limit,
        })
    }
}

/// Convenience free function mirroring [`KernelShape::accumulator_registers`].
pub fn registers_for_accumulator(mr: usize, nr: usize, lanes: usize) -> usize {
    KernelShape::new(mr, nr).accumulator_registers(lanes)
}

/// Convenience free function mirroring [`KernelShape::satisfies_register_constraint`].
pub fn satisfies_register_constraint(mr: usize, nr: usize, lanes: usize) -> bool {
    KernelShape::new(mr, nr).satisfies_register_constraint(lanes, 32, 2)
}

/// Convenience free function mirroring [`KernelShape::cmr`].
pub fn cmr(mr: usize, nr: usize) -> f64 {
    KernelShape::new(mr, nr).cmr()
}

/// Enumerate every feasible shape with `mr` a multiple of `lanes`
/// (aligned vector rows) and `1 <= nr <= nr_max`, ranked by descending
/// CMR. This is the §III-C design space the paper explores.
pub fn enumerate_feasible(
    lanes: usize,
    total_regs: usize,
    spare: usize,
    mr_max: usize,
    nr_max: usize,
) -> Vec<KernelShape> {
    let mut shapes = Vec::new();
    let mut mr = lanes;
    while mr <= mr_max {
        for nr in 1..=nr_max {
            let s = KernelShape::new(mr, nr);
            if s.satisfies_register_constraint(lanes, total_regs, spare) {
                shapes.push(s);
            }
        }
        mr += lanes;
    }
    shapes.sort_by(|a, b| b.cmr().total_cmp(&a.cmr()));
    shapes
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulator_register_counts() {
        assert_eq!(registers_for_accumulator(16, 4, 4), 16);
        assert_eq!(registers_for_accumulator(8, 8, 4), 16);
        assert_eq!(registers_for_accumulator(8, 12, 4), 24);
        assert_eq!(registers_for_accumulator(4, 4, 4), 4);
        // Non-multiple mr rounds up.
        assert_eq!(registers_for_accumulator(6, 4, 4), 8);
    }

    #[test]
    fn papers_kernels_are_feasible() {
        // Table I kernels: 16x4, 8x8, 4x4 (OpenBLAS), 8x12 (BLIS),
        // 12x4 (Eigen) all satisfy Eq. 4 on Phytium 2000+.
        for &(mr, nr) in &[(16, 4), (8, 8), (4, 4), (8, 12), (12, 4)] {
            assert!(satisfies_register_constraint(mr, nr, 4), "{mr}x{nr}");
        }
    }

    #[test]
    fn paper_example_12x10_is_infeasible() {
        // §III-C: mr=12, nr=10 needs 30 registers, leaving exactly one
        // for each of A and B -- the paper calls this out as the boundary.
        assert_eq!(registers_for_accumulator(12, 10, 4), 30);
        assert!(satisfies_register_constraint(12, 10, 4));
        // One more column breaks Eq. 4.
        assert!(!satisfies_register_constraint(12, 11, 4));
        assert!(!satisfies_register_constraint(16, 8, 4));
    }

    #[test]
    fn cmr_values_match_closed_form() {
        assert!((cmr(16, 4) - 6.4).abs() < 1e-12);
        assert!((cmr(8, 8) - 8.0).abs() < 1e-12);
        assert!((cmr(8, 12) - 9.6).abs() < 1e-12);
        assert!((cmr(4, 4) - 4.0).abs() < 1e-12);
        assert!((cmr(1, 4) - 1.6).abs() < 1e-12);
    }

    #[test]
    fn blis_shape_has_best_cmr_of_table_i() {
        let blis = cmr(8, 12);
        for &(mr, nr) in &[(16, 4), (8, 8), (4, 4), (12, 4)] {
            assert!(blis > cmr(mr, nr));
        }
    }

    #[test]
    fn chain_bound_explains_edge_kernel_slowness() {
        // A 4x1 edge kernel has a single accumulator chain against a
        // 5-cycle FMA pipe: at most 20% efficiency.
        let e = KernelShape::new(4, 1).chain_bound_efficiency(4, 5);
        assert!((e - 0.2).abs() < 1e-12);
        // A 4x4 kernel has 4 chains: at most 80%.
        let f = KernelShape::new(4, 4).chain_bound_efficiency(4, 5);
        assert!((f - 0.8).abs() < 1e-12);
        // The 8x8 main kernel saturates the pipe.
        let m = KernelShape::new(8, 8).chain_bound_efficiency(4, 5);
        assert_eq!(m, 1.0);
    }

    #[test]
    fn enumeration_is_sorted_and_feasible() {
        let shapes = enumerate_feasible(4, 32, 2, 24, 16);
        assert!(!shapes.is_empty());
        for w in shapes.windows(2) {
            assert!(w[0].cmr() >= w[1].cmr());
        }
        for s in &shapes {
            assert!(s.satisfies_register_constraint(4, 32, 2));
        }
        // 8x12 must be present and near the front.
        let pos = shapes
            .iter()
            .position(|s| *s == KernelShape::new(8, 12))
            .expect("8x12 feasible");
        assert!(pos < 8, "8x12 should rank highly, got position {pos}");
    }

    #[test]
    fn budget_check_matches_predicate() {
        for mr in 1..=20 {
            for nr in 1..=20 {
                let ok = check_register_budget(mr, nr, 4, 32, 2).is_ok();
                assert_eq!(
                    ok,
                    KernelShape::new(mr, nr).satisfies_register_constraint(4, 32, 2),
                    "{mr}x{nr}"
                );
            }
        }
    }

    #[test]
    fn budget_error_reports_the_overrun() {
        let e = check_register_budget(16, 8, 4, 32, 2).unwrap_err();
        assert_eq!(e.accumulators, 32);
        assert_eq!(e.limit, 30);
        assert!(e.to_string().contains("Eq. 4"));
        let ok = check_register_budget(12, 10, 4, 32, 2).unwrap();
        assert_eq!(ok.accumulators, 30);
        assert_eq!(ok.headroom(), 0);
    }

    #[test]
    fn enumeration_excludes_register_overflow() {
        let shapes = enumerate_feasible(4, 32, 2, 32, 32);
        assert!(!shapes.iter().any(|s| s.accumulator_registers(4) > 30));
    }
}
