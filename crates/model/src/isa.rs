//! Vector ISA descriptors: the width-agnostic hardware contract.
//!
//! The paper derives its register-budget model (Eq. 4), compute-to-memory
//! ratio (Eq. 5) and chain-bound ceilings for one concrete target: 32
//! 128-bit NEON registers on FT-2000+. Nothing in the analysis depends on
//! that width, only on the `(vector length, register count, FMA latency)`
//! triple — so this module captures that triple as an explicit
//! [`VectorIsa`] value that is threaded from `Smm::builder()` down through
//! kernel-descriptor construction, trace generation, the cycle simulator
//! and the static verifier. One kernel codebase, N vector widths.
//!
//! Three configurations ship:
//!
//! * [`VectorIsa::neon128`] — the paper's NEON target, bit-for-bit the
//!   pre-refactor behavior (the default everywhere).
//! * [`VectorIsa::sve256`] / [`VectorIsa::sve512`] — SVE-style wider
//!   configs with predication: residual rows are handled by a predicated
//!   vector lane mask (`whilelt`-style) instead of dedicated scalar edge
//!   kernels, collapsing the Fig. 7 edge pathology.
//!
//! All three keep 32 architectural vector registers — true of both NEON
//! and SVE — so Eq. 4 varies only through the lane count.

/// A vector instruction-set configuration.
///
/// `Copy` and `'static`-named so it can be embedded in plans, kernel
/// descriptors and reports without lifetime plumbing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VectorIsa {
    /// Short identifier (`"neon128"`, `"sve256"`, `"sve512"`), used in
    /// CLI flags, JSON headers and report labels.
    pub name: &'static str,
    /// Vector register length in bits.
    pub vlen_bits: usize,
    /// Architectural vector register count.
    pub num_vregs: usize,
    /// Registers Eq. 4 reserves for operand staging (`spare` in the
    /// paper; at least one each for `A` and `B`).
    pub spare_vregs: usize,
    /// FMA result latency in cycles (the chain-bound denominator).
    pub fma_latency: usize,
    /// Does the ISA support per-lane predication (`whilelt` masks)?
    /// When true, residual rows use predicated vector ops instead of
    /// dedicated scalar edge kernels.
    pub predication: bool,
}

impl VectorIsa {
    /// The paper's target: 32×128-bit NEON on FT-2000+ (§II-A).
    pub const fn neon128() -> Self {
        VectorIsa {
            name: "neon128",
            vlen_bits: 128,
            num_vregs: 32,
            spare_vregs: 2,
            fma_latency: 5,
            predication: false,
        }
    }

    /// SVE-style 256-bit config with predicated edge handling.
    pub const fn sve256() -> Self {
        VectorIsa {
            name: "sve256",
            vlen_bits: 256,
            num_vregs: 32,
            spare_vregs: 2,
            fma_latency: 5,
            predication: true,
        }
    }

    /// SVE-style 512-bit config with predicated edge handling.
    pub const fn sve512() -> Self {
        VectorIsa {
            name: "sve512",
            vlen_bits: 512,
            num_vregs: 32,
            spare_vregs: 2,
            fma_latency: 5,
            predication: true,
        }
    }

    /// Every shipped configuration, narrowest first.
    pub const fn all() -> [VectorIsa; 3] {
        [Self::neon128(), Self::sve256(), Self::sve512()]
    }

    /// Look a configuration up by its [`name`](Self::name).
    pub fn by_name(name: &str) -> Option<VectorIsa> {
        Self::all().into_iter().find(|isa| isa.name == name)
    }

    /// Stable numeric tag for on-disk formats (plan databases tag the
    /// ISA they were swept under). Tags are append-only: existing
    /// values never change meaning, and 0 is reserved as "never a
    /// valid ISA" so zeroed headers don't decode.
    pub fn tag(&self) -> u32 {
        match self.name {
            "neon128" => 1,
            "sve256" => 2,
            "sve512" => 3,
            _ => unreachable!("unregistered VectorIsa name {}", self.name),
        }
    }

    /// Inverse of [`tag`](Self::tag); `None` for tags written by a
    /// newer build (callers reject, not panic).
    pub fn from_tag(tag: u32) -> Option<VectorIsa> {
        match tag {
            1 => Some(Self::neon128()),
            2 => Some(Self::sve256()),
            3 => Some(Self::sve512()),
            _ => None,
        }
    }

    /// Lanes per vector register for an element of `elem_bytes` bytes.
    pub fn lanes(&self, elem_bytes: usize) -> usize {
        assert!(elem_bytes > 0, "element size must be positive");
        self.vlen_bits / (8 * elem_bytes)
    }

    /// Lanes per register for single-precision (`f32`) elements.
    pub fn lanes_f32(&self) -> usize {
        self.lanes(4)
    }

    /// Bytes per vector register.
    pub fn vreg_bytes(&self) -> usize {
        self.vlen_bits / 8
    }

    /// Eq. 4 accumulator budget: registers an `mr × nr` accumulator may
    /// occupy (`num_vregs - spare_vregs`).
    pub fn accumulator_budget(&self) -> usize {
        self.num_vregs.saturating_sub(self.spare_vregs)
    }

    /// The single authoritative Eq. 4 check, parametrized by this ISA.
    /// Delegates to [`crate::check_register_budget`] so the kernel layer
    /// and the verifier share one predicate.
    pub fn check_register_budget(
        &self,
        mr: usize,
        nr: usize,
        elem_bytes: usize,
    ) -> Result<crate::RegisterBudget, crate::RegisterBudgetError> {
        crate::check_register_budget(
            mr,
            nr,
            self.lanes(elem_bytes),
            self.num_vregs,
            self.spare_vregs,
        )
    }

    /// Chain-bound efficiency ceiling for an `mr × nr` tile under this
    /// ISA (Eq. 4 chains vs. the FMA pipeline depth).
    pub fn chain_bound_efficiency(&self, mr: usize, nr: usize, elem_bytes: usize) -> f64 {
        crate::KernelShape::new(mr, nr)
            .chain_bound_efficiency(self.lanes(elem_bytes), self.fma_latency)
    }
}

impl Default for VectorIsa {
    /// NEON-128: the paper's configuration and the compatibility default.
    fn default() -> Self {
        Self::neon128()
    }
}

impl std::fmt::Display for VectorIsa {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lane_counts_per_width() {
        assert_eq!(VectorIsa::neon128().lanes_f32(), 4);
        assert_eq!(VectorIsa::sve256().lanes_f32(), 8);
        assert_eq!(VectorIsa::sve512().lanes_f32(), 16);
        // f64 halves the lane count.
        assert_eq!(VectorIsa::neon128().lanes(8), 2);
        assert_eq!(VectorIsa::sve512().lanes(8), 8);
    }

    #[test]
    fn vreg_bytes_per_width() {
        assert_eq!(VectorIsa::neon128().vreg_bytes(), 16);
        assert_eq!(VectorIsa::sve256().vreg_bytes(), 32);
        assert_eq!(VectorIsa::sve512().vreg_bytes(), 64);
    }

    #[test]
    fn default_is_the_papers_neon() {
        let isa = VectorIsa::default();
        assert_eq!(isa, VectorIsa::neon128());
        assert_eq!(isa.num_vregs, 32);
        assert_eq!(isa.spare_vregs, 2);
        assert_eq!(isa.fma_latency, 5);
        assert!(!isa.predication);
    }

    #[test]
    fn by_name_round_trips() {
        for isa in VectorIsa::all() {
            assert_eq!(VectorIsa::by_name(isa.name), Some(isa));
        }
        assert_eq!(VectorIsa::by_name("avx512"), None);
    }

    #[test]
    fn tags_round_trip_and_zero_is_reserved() {
        for isa in VectorIsa::all() {
            assert_eq!(VectorIsa::from_tag(isa.tag()), Some(isa));
        }
        assert_eq!(VectorIsa::from_tag(0), None);
        assert_eq!(VectorIsa::from_tag(99), None);
        // Stable on-disk values — changing these breaks every
        // persisted plan database.
        assert_eq!(VectorIsa::neon128().tag(), 1);
        assert_eq!(VectorIsa::sve256().tag(), 2);
        assert_eq!(VectorIsa::sve512().tag(), 3);
    }

    #[test]
    fn eq4_parametrizes_over_width() {
        // 16x8 overflows NEON-128 (32 accumulators > 30)...
        assert!(VectorIsa::neon128()
            .check_register_budget(16, 8, 4)
            .is_err());
        // ...but fits easily at 256-bit (16 accumulators).
        let b = VectorIsa::sve256().check_register_budget(16, 8, 4).unwrap();
        assert_eq!(b.accumulators, 16);
        // 32x12 fits only at 512-bit.
        assert!(VectorIsa::sve256()
            .check_register_budget(32, 12, 4)
            .is_err());
        let b = VectorIsa::sve512()
            .check_register_budget(32, 12, 4)
            .unwrap();
        assert_eq!(b.accumulators, 24);
    }

    #[test]
    fn chain_bound_scales_with_width() {
        // A 4-row column tile: one chain on NEON (20% ceiling), still
        // one chain at 512-bit.
        let n = VectorIsa::neon128().chain_bound_efficiency(4, 1, 4);
        assert!((n - 0.2).abs() < 1e-12);
        // 16x4 saturates NEON (16 chains) but drops to 4 chains at
        // 512-bit: wider vectors need wider nr to fill the pipe.
        assert_eq!(VectorIsa::neon128().chain_bound_efficiency(16, 4, 4), 1.0);
        let w = VectorIsa::sve512().chain_bound_efficiency(16, 4, 4);
        assert!((w - 0.8).abs() < 1e-12);
    }

    #[test]
    fn wide_isas_are_predicated() {
        assert!(VectorIsa::sve256().predication);
        assert!(VectorIsa::sve512().predication);
        assert!(!VectorIsa::neon128().predication);
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(VectorIsa::sve256().to_string(), "sve256");
    }
}
