//! Derivation of Goto-algorithm blocking parameters from cache capacities.
//!
//! The six-loop Goto structure (Fig. 4 of the paper) chooses:
//!
//! * `kc` so that a `kc × nr` sliver of packed `B̃` stays resident in L1
//!   alongside the streamed `mr × kc` sliver of `Ã`;
//! * `mc` so that the `mc × kc` packed block `Ã` occupies a majority of
//!   L2 while leaving room for prefetching and the `B̃` sliver;
//! * `nc` so that the `kc × nc` packed panel `B̃` fits in L3 — or, on
//!   Phytium 2000+ which has no L3, is simply bounded by a large default
//!   and clipped to the problem.

/// Cache capacities in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheSizes {
    /// Private L1 data cache per core.
    pub l1d: usize,
    /// L2 capacity visible to one core (2 MB shared by 4 cores on
    /// Phytium 2000+ — callers may pass the full or per-core share).
    pub l2: usize,
    /// L3 capacity, zero when absent (Phytium 2000+ has none).
    pub l3: usize,
}

impl CacheSizes {
    /// Phytium 2000+ capacities from §II-A.
    pub fn phytium_2000_plus() -> Self {
        Self {
            l1d: 32 * 1024,
            l2: 2 * 1024 * 1024,
            l3: 0,
        }
    }
}

/// Blocking parameters of the Goto algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockingParams {
    /// Depth of the rank-`kc` update (Layer 2 step).
    pub kc: usize,
    /// Rows of the packed `Ã` block (Layer 3 step).
    pub mc: usize,
    /// Columns of the packed `B̃` panel (Layer 1 step).
    pub nc: usize,
}

impl BlockingParams {
    /// Clip the parameters to a concrete problem shape, never returning
    /// a zero dimension.
    pub fn clipped(&self, m: usize, n: usize, k: usize) -> BlockingParams {
        BlockingParams {
            kc: self.kc.min(k).max(1),
            mc: self.mc.min(m).max(1),
            nc: self.nc.min(n).max(1),
        }
    }
}

/// Derive blocking parameters for an `mr × nr` kernel and element size.
///
/// Heuristics (standard in OpenBLAS/BLIS analytical models, cf. Low et
/// al., "Analytical Modeling Is Enough for High-Performance BLIS"):
///
/// * `kc`: half of L1 holds the `kc × nr` B-sliver ⇒
///   `kc = l1d / (2 · nr · elem)`, rounded down to a multiple of 4 and
///   at least 32.
/// * `mc`: half of L2 holds the `mc × kc` packed `Ã` ⇒
///   `mc = l2 / (2 · kc · elem)`, rounded down to a multiple of `mr`.
/// * `nc`: `l3 / (kc · elem)` when an L3 exists, otherwise a fixed large
///   default (4096) rounded to a multiple of `nr`.
pub fn derive_blocking(
    caches: CacheSizes,
    mr: usize,
    nr: usize,
    elem_bytes: usize,
) -> BlockingParams {
    assert!(mr > 0 && nr > 0 && elem_bytes > 0);
    let kc_raw = caches.l1d / (2 * nr * elem_bytes);
    let kc = (kc_raw / 4 * 4).max(32);

    let mc_raw = caches.l2 / (2 * kc * elem_bytes);
    let mc = (mc_raw / mr * mr).max(mr);

    let nc_raw = if caches.l3 > 0 {
        caches.l3 / (kc * elem_bytes)
    } else {
        4096
    };
    let nc = (nc_raw / nr * nr).max(nr);

    BlockingParams { kc, mc, nc }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phytium_blocking_for_openblas_16x4() {
        let b = derive_blocking(CacheSizes::phytium_2000_plus(), 16, 4, 4);
        // kc = 32768 / (2*4*4) = 1024 -> multiple of 4.
        assert_eq!(b.kc, 1024);
        // mc = 2 MiB / (2*1024*4) = 256 -> multiple of 16.
        assert_eq!(b.mc, 256);
        // No L3: default nc, multiple of 4.
        assert_eq!(b.nc, 4096);
    }

    #[test]
    fn blis_8x12_blocking_is_l1_consistent() {
        let c = CacheSizes::phytium_2000_plus();
        let b = derive_blocking(c, 8, 12, 4);
        // The B sliver must fit in half of L1.
        assert!(b.kc * 12 * 4 <= c.l1d / 2 + 12 * 4 * 4);
        // The packed A block must fit in half of L2.
        assert!(b.mc * b.kc * 4 <= c.l2 / 2);
        assert_eq!(b.mc % 8, 0);
        assert_eq!(b.nc % 12, 0);
    }

    #[test]
    fn l3_bounds_nc_when_present() {
        let mut c = CacheSizes::phytium_2000_plus();
        c.l3 = 8 * 1024 * 1024;
        let with_l3 = derive_blocking(c, 8, 8, 4);
        assert_eq!(with_l3.nc, 8 * 1024 * 1024 / (with_l3.kc * 4) / 8 * 8);
    }

    #[test]
    fn double_precision_halves_kc() {
        let c = CacheSizes::phytium_2000_plus();
        let sp = derive_blocking(c, 8, 8, 4);
        let dp = derive_blocking(c, 8, 8, 8);
        assert_eq!(sp.kc, 2 * dp.kc);
    }

    #[test]
    fn clipping_respects_problem_and_stays_positive() {
        let b = BlockingParams {
            kc: 1024,
            mc: 256,
            nc: 4096,
        };
        let c = b.clipped(10, 3, 7);
        assert_eq!(
            c,
            BlockingParams {
                kc: 7,
                mc: 10,
                nc: 3
            }
        );
        let tiny = b.clipped(1, 1, 1);
        assert_eq!(
            tiny,
            BlockingParams {
                kc: 1,
                mc: 1,
                nc: 1
            }
        );
    }

    #[test]
    fn minimums_enforced_for_tiny_caches() {
        let c = CacheSizes {
            l1d: 64,
            l2: 128,
            l3: 0,
        };
        let b = derive_blocking(c, 16, 4, 4);
        assert!(b.kc >= 32);
        assert!(b.mc >= 16);
        assert!(b.nc >= 4);
    }
}
