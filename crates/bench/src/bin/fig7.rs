//! Fig. 7 — the naively scheduled OpenBLAS 8×4 edge micro-kernel.
//!
//! Dumps the first loop iteration of the edge kernel's instruction
//! stream (the paper shows the `ldp`/`ldr`/`fmla` listing) and then
//! quantifies the cost of each scheduling policy and tile size by
//! running the isolated kernels on the simulated core.

use smm_kernels::descriptor::{BLoadStyle, MicroKernelDesc, SchedulePolicy};
use smm_kernels::trace_gen::{kernel_trace, KernelTraceParams};
use smm_simarch::isa::{Op, NO_REG};
use smm_simarch::machine::simulate_single;
use smm_simarch::phase::Phase;
use smm_simarch::trace::VecSource;

fn params(
    mr: usize,
    nr: usize,
    policy: SchedulePolicy,
    unroll: usize,
    kc: usize,
) -> KernelTraceParams {
    KernelTraceParams {
        desc: MicroKernelDesc::new(mr, nr, unroll, policy, BLoadStyle::ScalarPairs),
        kc,
        a_base: 0x10_000,
        a_kstep: (mr * 4) as u64,
        b_base: 0x40_000,
        b_kstep: (nr * 4) as u64,
        b_jstride: 4,
        c_base: 0x80_000,
        c_col_stride: (mr * 4) as u64,
        elem: 4,
        phase: Phase::Kernel,
    }
}

fn mnemonic(op: Op) -> &'static str {
    match op {
        Op::LdVec => "ldr  q",
        Op::LdScalar => "ldr  s",
        Op::LdPair => "ldp  s,s",
        Op::StVec => "str  q",
        Op::StScalar => "str  s",
        Op::LdVecPred => "ld1w p/z",
        Op::StVecPred => "st1w p",
        Op::Fma => "fmla v.4s",
        Op::FmaPred => "fmla p/m",
        Op::FmaTile => "fmopa",
        Op::WhileLt => "whilelt",
        Op::VMul => "fmul",
        Op::VAdd => "fadd",
        Op::VDup => "dup  v.4s",
        Op::IOp => "add  x",
        Op::Branch => "b.ne",
        Op::Barrier(_) => "barrier",
    }
}

fn main() {
    println!("== Fig 7: OpenBLAS 8x4 edge micro-kernel, one k-iteration ==\n");
    let p = params(8, 4, SchedulePolicy::Naive, 1, 4);
    let (insts, _) = kernel_trace(&p);
    for inst in insts.iter().skip(1).take(13) {
        let dst = if inst.dst == NO_REG {
            String::new()
        } else {
            format!(" -> r{}", inst.dst)
        };
        println!("  {:<10} addr {:#8x}{}", mnemonic(inst.op), inst.addr, dst);
    }

    println!("\n== Isolated kernel efficiency by tile and scheduling policy (kc=256) ==\n");
    println!(
        "{:>8} {:>12} {:>8} {:>10}",
        "tile", "policy", "unroll", "FMA util%"
    );
    for (mr, nr, policy, unroll) in [
        (16, 4, SchedulePolicy::Interleaved, 8),
        (16, 4, SchedulePolicy::Naive, 1),
        (8, 8, SchedulePolicy::Interleaved, 4),
        (8, 4, SchedulePolicy::Naive, 1),
        (4, 4, SchedulePolicy::Naive, 1),
        (2, 4, SchedulePolicy::Naive, 1),
        (1, 4, SchedulePolicy::Naive, 1),
        (4, 1, SchedulePolicy::Naive, 1),
        (12, 4, SchedulePolicy::Compiler, 1),
    ] {
        let b_load = if policy == SchedulePolicy::Compiler {
            BLoadStyle::Scalars
        } else {
            BLoadStyle::ScalarPairs
        };
        let mut p = params(mr, nr, policy, unroll, 256);
        p.desc = MicroKernelDesc::new(mr, nr, unroll, policy, b_load);
        let (insts, stats) = kernel_trace(&p);
        let r = simulate_single(Box::new(VecSource::new(insts)));
        let util = stats.loop_fmas as f64 / r.cycles as f64 * 100.0;
        println!(
            "{:>8} {:>12} {:>8} {:>10.1}",
            format!("{mr}x{nr}"),
            format!("{policy:?}"),
            unroll,
            util
        );
    }
    println!("\nSmall edge tiles are latency-bound (few accumulator chains vs the");
    println!("5-cycle FMA pipe) — the §III-B/III-C conclusion.");
}
