//! Memory-hierarchy microbenchmarks on the simulated machine —
//! the Gao et al. style probes the paper cites for its latency numbers
//! (§II-A / §III-C). Validates that the machine model exposes the
//! documented tiers to *programs*, not just in its config tables.
//!
//! Probes: dependent-load latency per working-set size (pointer-chase
//! analogue), NUMA local-vs-remote latency, per-channel streaming
//! bandwidth, and FMA pipe latency/throughput.

use smm_simarch::prelude::*;

/// Dependent loads over a working set: each load's address feeds the
/// next (modelled by a serial register chain), defeating overlap.
fn chase_latency(ws_bytes: u64) -> f64 {
    let lines = ws_bytes / 64;
    // Stride by a coprime line count to defeat the stream prefetcher;
    // enough passes over the set that cold misses amortize away.
    let n = (4 * lines).max(6_000);
    let insts: Vec<Inst> = (0..n)
        .map(|i| {
            let line = (i * 67) % lines;
            // Serial chain: every load consumes the previous load's dest.
            let mut ld = Inst::ld_vec(v(0), line * 64, Phase::Kernel);
            ld.srcs[0] = v(0);
            ld
        })
        .collect();
    let r = simulate_single(Box::new(VecSource::new(insts)));
    r.cycles as f64 / n as f64
}

fn numa_latency(remote: bool) -> f64 {
    let mut alloc = SimAlloc::new(8);
    let base = alloc.alloc_on(16 * 1024 * 1024, if remote { 7 } else { 0 });
    let n = 2000u64;
    let mut insts = Vec::new();
    for i in 0..n {
        let mut ld = Inst::ld_vec(v(0), base + ((i * 131) % 200_000) * 64, Phase::Kernel);
        ld.srcs[0] = v(0);
        insts.push(ld);
    }
    let r = simulate_single(Box::new(VecSource::new(insts)));
    r.cycles as f64 / n as f64
}

/// Streaming bandwidth from one panel's DRAM with `cores` readers.
fn stream_bandwidth(cores: usize) -> f64 {
    let bytes_per_core = 4 * 1024 * 1024u64;
    let mut alloc = SimAlloc::new(8);
    let sources: Vec<Box<dyn InstSource>> = (0..cores)
        .map(|_c| {
            let base = alloc.alloc_on(bytes_per_core, 0); // all on panel 0
            let insts: Vec<Inst> = (0..bytes_per_core / 16)
                .map(|i| Inst::ld_vec(v((i % 8) as u8), base + i * 16, Phase::Kernel))
                .collect();
            Box::new(VecSource::new(insts)) as Box<dyn InstSource>
        })
        .collect();
    let mut m = Machine::new(
        PipelineConfig::phytium_core(),
        MemConfig::phytium_2000_plus(),
        sources,
    );
    let r = m.run();
    let total_bytes = bytes_per_core as f64 * cores as f64;
    total_bytes / (r.cycles as f64 / 2.2e9) / 1e9
}

fn fma_pipe() -> (f64, f64) {
    let n = 20_000;
    let serial: Vec<Inst> = (0..n)
        .map(|_| Inst::fma(v(16), v(0), s(0), Phase::Kernel))
        .collect();
    let lat = simulate_single(Box::new(VecSource::new(serial))).cycles as f64 / n as f64;
    let parallel: Vec<Inst> = (0..n)
        .map(|i| Inst::fma(v(16 + (i % 10) as u8), v(0), s(0), Phase::Kernel))
        .collect();
    let thr = n as f64 / simulate_single(Box::new(VecSource::new(parallel))).cycles as f64;
    (lat, thr)
}

fn main() {
    println!("== Simulated memory-hierarchy microbenchmarks (Phytium 2000+ model) ==\n");
    println!("dependent-load latency by working set, load-to-use + issue overhead\n(config: L1 hit 3, L2 hit 24, local DRAM 150):");
    for (label, ws) in [
        ("16 KB (L1)", 16u64 << 10),
        ("512 KB (L2)", 512 << 10),
        ("8 MB (DRAM)", 8 << 20),
    ] {
        println!("  {label:>14}: {:>6.1} cycles/load", chase_latency(ws));
    }
    println!("\nNUMA (config: local 150, remote 240):");
    println!(
        "  {:>14}: {:>6.1} cycles/load",
        "local panel",
        numa_latency(false)
    );
    println!(
        "  {:>14}: {:>6.1} cycles/load",
        "remote panel",
        numa_latency(true)
    );
    println!("\nstreaming bandwidth from one panel (config: 8 cycles per 64 B line ≈ 17.6 GB/s):");
    for cores in [1usize, 2, 4, 8] {
        println!(
            "  {cores:>2} reader(s): {:>6.1} GB/s",
            stream_bandwidth(cores)
        );
    }
    let (lat, thr) = fma_pipe();
    println!(
        "\nFMA pipe: latency {lat:.1} cycles (config 5), throughput {thr:.2}/cycle (config 1)"
    );
}
