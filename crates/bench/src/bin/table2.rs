//! Table II — per-phase overhead of 64-thread BLIS SMM with small M.
//!
//! Columns as in the paper: Kernel / PackA / PackB / Sync shares of
//! total core-cycles, plus the kernel-phase FMA-issue occupancy
//! ("Kernel effic"). The paper's trends to reproduce: PackB dominates
//! the overhead at small M and shrinks as M grows; kernel efficiency
//! is well below the single-threaded level (43–75%) because of the
//! shared non-LRU L2, NUMA, and padded edge tiles.
//!
//! The paper does not state the fixed N/K; we use 512 (1024 with
//! `--full`).

use smm_bench::{full_mode, measure_strategy, print_header, print_row};
use smm_gemm::BlisStrategy;

fn main() {
    let threads = 64;
    let fixed = if full_mode() { 1024 } else { 512 };
    let step = if full_mode() { 16 } else { 32 };
    let blis = BlisStrategy::new();
    println!("== Table II: BLIS 64-thread overhead shares (%), N = K = {fixed} ==\n");
    print_header(&["M", "Kernel", "PackA", "PackB", "Sync", "KernEff"]);
    for m in (step..=256).step_by(step) {
        let meas = measure_strategy(&blis, m, fixed, fixed, threads);
        print_row(
            &m.to_string(),
            &[
                meas.kernel_pct,
                meas.packa_pct,
                meas.packb_pct,
                meas.sync_pct,
                meas.kernel_util_pct,
            ],
        );
    }
}
