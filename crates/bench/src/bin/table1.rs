//! Table I — comparison of library kernels.
//!
//! Printed from the [`smm_kernels::LibraryProfile`] registry, which is
//! the single source of truth the strategy implementations consume.

use smm_kernels::registry::EdgeStrategy;
use smm_kernels::LibraryProfile;
use smm_model::KernelShape;

fn main() {
    println!("== Table I: a comparison of library kernels ==\n");
    println!(
        "{:<22} {:>10} {:>10} {:>12} {:>14}",
        "", "OpenBLAS", "BLIS", "BLASFEO", "Eigen"
    );
    let profiles = LibraryProfile::all();
    let row = |label: &str, f: &dyn Fn(&LibraryProfile) -> String| {
        print!("{label:<22}");
        for p in &profiles {
            print!(" {:>10}", f(p));
        }
        println!();
    };
    row("layers of assembly", &|p| match p.name {
        "OpenBLAS" => "4-7".into(),
        "BLIS" | "BLASFEO" => "6-7".into(),
        _ => "none".into(),
    });
    row("unrolling factor", &|p| p.main.unroll.to_string());
    row("mr x nr", &|p| {
        let mut shapes = vec![p.main.shape];
        shapes.extend(p.alternates.iter().copied());
        shapes
            .iter()
            .map(|s: &KernelShape| format!("{}x{}", s.mr, s.nr))
            .collect::<Vec<_>>()
            .join(",")
    });
    row("edge handling", &|p| match p.edge {
        EdgeStrategy::EdgeKernels => "edge krnl".into(),
        EdgeStrategy::Padding => "zero pad".into(),
    });
    row("B staging", &|p| format!("{:?}", p.main.b_load));
    row("CMR (Eq. 5)", &|p| format!("{:.1}", p.main.shape.cmr()));
    row("acc registers", &|p| {
        p.main
            .shape
            .accumulator_registers(p.main.isa.lanes_f32())
            .to_string()
    });
    println!("\nAll kernels satisfy the Eq. 4 register constraint (<= 30 accumulators).");
}
