//! §III-C design space — Eq. 4 feasibility and Eq. 5 CMR for candidate
//! micro-kernels, cross-checked against the simulated core.
//!
//! For each feasible `mr × nr` (mr a multiple of the 4-lane vector),
//! prints the accumulator register count, CMR, the analytic chain-bound
//! efficiency, and the measured FMA utilization of the isolated kernel
//! on the simulated Phytium core.

use smm_kernels::descriptor::{BLoadStyle, MicroKernelDesc, SchedulePolicy};
use smm_kernels::trace_gen::{kernel_trace, KernelTraceParams};
use smm_model::microkernel::enumerate_feasible;
use smm_model::VectorIsa;
use smm_simarch::machine::simulate_single;
use smm_simarch::phase::Phase;
use smm_simarch::trace::VecSource;

fn main() {
    println!("== Micro-kernel design space (Eq. 4 feasible, ranked by CMR) ==\n");
    println!(
        "{:>8} {:>8} {:>8} {:>12} {:>12}",
        "mr x nr", "regs", "CMR", "chain bound", "sim FMA util"
    );
    let isa = VectorIsa::neon128();
    let lanes = isa.lanes_f32();
    let shapes = enumerate_feasible(lanes, 32, 2, 16, 16);
    for shape in shapes.iter().take(24) {
        // Skip shapes whose trace register plan would not fit
        // (staging registers on top of the accumulators).
        let mra = shape.mr.div_ceil(lanes);
        if shape.accumulator_registers(lanes) + 2 * mra > 32 {
            continue;
        }
        let desc = MicroKernelDesc::new(
            shape.mr,
            shape.nr,
            4,
            SchedulePolicy::Interleaved,
            BLoadStyle::ScalarPairs,
        );
        let p = KernelTraceParams {
            desc,
            kc: 256,
            a_base: 0x10_000,
            a_kstep: (shape.mr * 4) as u64,
            b_base: 0x80_000,
            b_kstep: (shape.nr * 4) as u64,
            b_jstride: 4,
            c_base: 0x100_000,
            c_col_stride: (shape.mr * 4) as u64,
            elem: 4,
            phase: Phase::Kernel,
        };
        let (insts, stats) = kernel_trace(&p);
        let r = simulate_single(Box::new(VecSource::new(insts)));
        let util = stats.loop_fmas as f64 / r.cycles as f64 * 100.0;
        println!(
            "{:>8} {:>8} {:>8.2} {:>11.0}% {:>11.1}%",
            format!("{}x{}", shape.mr, shape.nr),
            shape.accumulator_registers(lanes),
            shape.cmr(),
            shape.chain_bound_efficiency(lanes, isa.fma_latency) * 100.0,
            util
        );
    }
    println!("\nLarger CMR hides memory traffic better; tiles with fewer than");
    println!("5 accumulator chains are bounded by the FMA latency (§III-C).");

    // Double precision: 2 lanes per 128-bit register, so Eq. 4 becomes
    // ceil(mr/2)·nr <= 30 and the tile space shrinks — the reason DP
    // ARMv8 kernels are 8x4-class. Peak check: 4 DP flops/cycle/core
    // => 8.8 Gflops/core, 563.2 Gflops for 64 cores (§II-A).
    println!("\n== Double-precision design space (2 lanes/register) ==\n");
    println!(
        "{:>8} {:>8} {:>8} {:>12} {:>12}",
        "mr x nr", "regs", "CMR", "chain bound", "sim FMA util"
    );
    let dlanes = isa.lanes(8); // f64: 2 lanes per 128-bit register
    for shape in enumerate_feasible(dlanes, 32, 2, 12, 8).iter().take(10) {
        let mra = shape.mr.div_ceil(dlanes);
        if shape.accumulator_registers(dlanes) + 2 * mra > 32 {
            continue;
        }
        let desc = MicroKernelDesc::new(
            shape.mr,
            shape.nr,
            4,
            SchedulePolicy::Interleaved,
            BLoadStyle::ScalarPairs,
        );
        let p = KernelTraceParams {
            desc,
            kc: 256,
            a_base: 0x10_000,
            a_kstep: (shape.mr * 8) as u64,
            b_base: 0x80_000,
            b_kstep: (shape.nr * 8) as u64,
            b_jstride: 8,
            c_base: 0x100_000,
            c_col_stride: (shape.mr * 8) as u64,
            elem: 8,
            phase: Phase::Kernel,
        };
        let (insts, stats) = kernel_trace(&p);
        let r = simulate_single(Box::new(VecSource::new(insts)));
        let util = stats.loop_fmas as f64 / r.cycles as f64 * 100.0;
        println!(
            "{:>8} {:>8} {:>8.2} {:>11.0}% {:>11.1}%",
            format!("{}x{}", shape.mr, shape.nr),
            shape.accumulator_registers(dlanes),
            shape.cmr(),
            shape.chain_bound_efficiency(dlanes, isa.fma_latency) * 100.0,
            util
        );
    }
    use smm_model::{MachineSpec, Precision};
    let m = MachineSpec::phytium_2000_plus();
    println!(
        "\nDP peak: {:.1} Gflops/core, {:.1} Gflops machine (paper: 563.2)",
        m.peak_gflops(Precision::F64, 1),
        m.peak_gflops(Precision::F64, 64)
    );
}
