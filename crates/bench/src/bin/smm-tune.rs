//! `smm-tune` — the offline stage of the two-stage autotuning scheme.
//!
//! `sweep` runs the simulator-driven tuner ([`smm_core::tune_shape`],
//! the same candidate space `kernel_space` explores) over a rectangular
//! geometric (m, n, k) grid and writes the winners to a versioned,
//! checksummed plan database; `inspect` loads a database, validates it
//! (optionally against an expected ISA, exiting non-zero with the typed
//! error on any mismatch), and prints a summary; `merge` reconciles N
//! database/delta files — e.g. one flushed delta file per serving shard
//! — into one ([`PlanDb::merge`]: same-shape conflicts go to the
//! most-trafficked entry, traffic sums, output is canonical).
//!
//! ```text
//! smm-tune sweep --isa neon128 --out plans.smmdb [--min 4] [--max 64] [--points 6] [--threads N]
//! smm-tune inspect --db plans.smmdb [--expect-isa neon128]
//! smm-tune merge --out merged.smmdb shard0.smmdb shard1.smmdb [...]
//! ```

use std::path::PathBuf;
use std::sync::Mutex;

use smm_core::{tune_shape, PlanConfig, PlanDb, SweepGrid};
use smm_model::VectorIsa;

fn usage() -> ! {
    eprintln!("usage: smm-tune sweep --isa NAME --out PATH [--min 4] [--max 64] [--points 6] [--threads N]");
    eprintln!("       smm-tune inspect --db PATH [--expect-isa NAME]");
    eprintln!("       smm-tune merge --out PATH INPUT...");
    std::process::exit(2);
}

fn parse_isa(name: &str) -> VectorIsa {
    VectorIsa::by_name(name).unwrap_or_else(|| {
        eprintln!(
            "smm-tune: unknown ISA {name:?} (known: {})",
            VectorIsa::all().map(|i| i.name).join(", ")
        );
        std::process::exit(2);
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("sweep") => sweep(&args[1..]),
        Some("inspect") => inspect(&args[1..]),
        Some("merge") => merge(&args[1..]),
        _ => usage(),
    }
}

fn sweep(args: &[String]) {
    let mut isa = VectorIsa::neon128();
    let mut out: Option<PathBuf> = None;
    let (mut min, mut max, mut points) = (4usize, 64usize, 6usize);
    let mut threads = std::thread::available_parallelism().map_or(4, |p| p.get());
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut val = || it.next().unwrap_or_else(|| usage()).clone();
        match arg.as_str() {
            "--isa" => isa = parse_isa(&val()),
            "--out" => out = Some(PathBuf::from(val())),
            "--min" => min = val().parse().unwrap_or_else(|_| usage()),
            "--max" => max = val().parse().unwrap_or_else(|_| usage()),
            "--points" => points = val().parse().unwrap_or_else(|_| usage()),
            "--threads" => threads = val().parse().unwrap_or_else(|_| usage()),
            _ => usage(),
        }
    }
    let Some(out) = out else { usage() };

    let grid = SweepGrid::geometric(min, max, points);
    let shapes = grid.shapes();
    let cfg = PlanConfig {
        isa,
        ..Default::default()
    };
    println!(
        "sweeping {} shapes (axis {:?}, coverage radius {:.3}) for {} on {} threads",
        shapes.len(),
        grid.axis(),
        grid.max_log_radius(),
        isa.name,
        threads.max(1)
    );

    // Shapes are independent; strided static partitioning is enough
    // because the grid mixes small and large shapes evenly.
    let entries = Mutex::new(Vec::with_capacity(shapes.len()));
    std::thread::scope(|s| {
        for t in 0..threads.max(1) {
            let (shapes, cfg, entries) = (&shapes, &cfg, &entries);
            s.spawn(move || {
                let mut local = Vec::new();
                for &(m, n, k) in shapes.iter().skip(t).step_by(threads.max(1)) {
                    local.push(tune_shape(m, n, k, cfg).to_entry(4, false));
                }
                entries.lock().unwrap().extend(local);
            });
        }
    });
    let entries = entries.into_inner().unwrap();

    let gains: Vec<f64> = entries.iter().map(|e| e.gain()).collect();
    let improved = gains.iter().filter(|&&g| g > 1.0).count();
    let db = PlanDb::from_entries(isa, entries).unwrap_or_else(|e| {
        eprintln!("smm-tune: sweep produced an invalid database: {e}");
        std::process::exit(1);
    });
    if let Err(e) = db.save(&out) {
        eprintln!("smm-tune: cannot write {}: {e}", out.display());
        std::process::exit(1);
    }
    let mean_gain = gains.iter().sum::<f64>() / gains.len().max(1) as f64;
    println!(
        "wrote {} entries to {} ({} beat the heuristic, mean gain {:.3}x)",
        db.len(),
        out.display(),
        improved,
        mean_gain
    );
}

/// Reconcile N database/delta files into one. Typed failures — a
/// missing file, foreign-ISA input, or corrupt payload — exit 2 with
/// the [`PlanDbError`](smm_core::PlanDbError) rendered, never a panic
/// or a partial output file.
fn merge(args: &[String]) {
    let mut out: Option<PathBuf> = None;
    let mut inputs: Vec<PathBuf> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => out = Some(PathBuf::from(it.next().unwrap_or_else(|| usage()))),
            flag if flag.starts_with("--") => usage(),
            path => inputs.push(PathBuf::from(path)),
        }
    }
    let Some(out) = out else { usage() };
    if inputs.is_empty() {
        usage();
    }

    let mut dbs = Vec::with_capacity(inputs.len());
    for path in &inputs {
        match PlanDb::load(path) {
            Ok(db) => {
                println!(
                    "  {}: isa {}, {} entries",
                    path.display(),
                    db.isa().name,
                    db.len()
                );
                dbs.push(db);
            }
            Err(e) => {
                eprintln!("smm-tune: {}: {e}", path.display());
                std::process::exit(2);
            }
        }
    }
    let merged = match PlanDb::merge(&dbs) {
        Ok(db) => db,
        Err(e) => {
            eprintln!("smm-tune: merge failed: {e}");
            std::process::exit(2);
        }
    };
    if let Err(e) = merged.save(&out) {
        eprintln!("smm-tune: cannot write {}: {e}", out.display());
        std::process::exit(1);
    }
    let refined = merged.entries().iter().filter(|e| e.refined).count();
    let traffic: u64 = merged.entries().iter().map(|e| e.traffic).sum();
    println!(
        "merged {} inputs -> {}: {} entries ({} refined, {} total observed calls)",
        inputs.len(),
        out.display(),
        merged.len(),
        refined,
        traffic
    );
}

fn inspect(args: &[String]) {
    let mut db_path: Option<PathBuf> = None;
    let mut expect: Option<VectorIsa> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut val = || it.next().unwrap_or_else(|| usage()).clone();
        match arg.as_str() {
            "--db" => db_path = Some(PathBuf::from(val())),
            "--expect-isa" => expect = Some(parse_isa(&val())),
            _ => usage(),
        }
    }
    let Some(db_path) = db_path else { usage() };

    // The decoder is total: corrupt, truncated, foreign-ISA or
    // over-cap files land here as typed errors, never panics.
    let loaded = match expect {
        Some(isa) => PlanDb::load_for(&db_path, isa),
        None => PlanDb::load(&db_path),
    };
    let db = match loaded {
        Ok(db) => db,
        Err(e) => {
            eprintln!("smm-tune: {}: {e}", db_path.display());
            std::process::exit(2);
        }
    };
    let refined = db.entries().iter().filter(|e| e.refined).count();
    let with_traffic = db.entries().iter().filter(|e| e.traffic > 0).count();
    let mean_gain = db.entries().iter().map(|e| e.gain()).sum::<f64>() / db.len().max(1) as f64;
    println!(
        "{}: isa {}, {} entries ({} refined, {} with traffic), mean gain {:.3}x",
        db_path.display(),
        db.isa().name,
        db.len(),
        refined,
        with_traffic,
        mean_gain
    );
    for (m, n, k) in db.top_by_traffic(5) {
        let e = db.get(m, n, k).expect("listed shape present");
        println!(
            "  hot {m}x{n}x{k}: {} calls, kernel {}x{}, gain {:.3}x",
            e.traffic,
            e.mr,
            e.nr,
            e.gain()
        );
    }
}
