//! Fig. 6 — data-packing overhead share in OpenBLAS SMM.
//!
//! Sweeps each dimension small (others fixed at 192) and reports the
//! percentage of run time spent packing `Ã` and `B̃`, next to the
//! first-order analytic prediction from the P2C model (Eqs. 1–3).
//! The paper's observations: the smaller M or N, the larger the packing
//! share (beyond 50% in the worst cases); a small K leaves the share
//! negligible because P2C is independent of K.

use smm_bench::{fig5_small_sizes, measure_strategy, print_header, print_row, FIXED_DIM};
use smm_gemm::OpenBlasStrategy;
use smm_model::p2c::predicted_packing_share;

fn main() {
    let d = FIXED_DIM;
    let ob = OpenBlasStrategy::new();
    let sizes = fig5_small_sizes();
    for (panel, dim) in [("M", 0usize), ("N", 1), ("K", 2)] {
        println!("\n== Fig 6: OpenBLAS packing share sweeping {panel} (others = {d}) ==");
        print_header(&["size", "PackA%", "PackB%", "Pack%", "model%"]);
        for &s in &sizes {
            let (m, n, k) = match dim {
                0 => (s, d, d),
                1 => (d, s, d),
                _ => (d, d, s),
            };
            let meas = measure_strategy(&ob, m, n, k, 1);
            // First-order model: packing loads vs FMA work (Eq. 1/2),
            // with a cost ratio of 2 for the strided PackB gathers.
            let model = predicted_packing_share(m, n, k, 4, 8, 2.0) * 100.0;
            print_row(
                &format!("{panel}={s}"),
                &[
                    meas.packa_pct,
                    meas.packb_pct,
                    meas.packa_pct + meas.packb_pct,
                    model,
                ],
            );
        }
    }
}
