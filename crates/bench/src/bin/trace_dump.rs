//! Dump the simulated instruction stream of any strategy on any shape —
//! a debugging/inspection tool for the macro-op → instruction pipeline.
//! For the `ref` strategy the same shape is also run natively a few
//! times and the telemetry snapshot dumped as JSON, so the simulated
//! stream and the measured phase breakdown can be read side by side.
//!
//! Usage: `trace_dump <openblas|blis|blasfeo|eigen|ref> <m> <n> <k> [limit] [isa]`
//!
//! The optional trailing `isa` (`neon128|sve256|sve512`, `ref` only)
//! retargets the plan at another vector width; the active ISA is
//! emitted in the JSON header so downstream tooling knows which
//! register geometry produced the stream.

use smm_gemm::all_strategies;
use smm_model::VectorIsa;
use smm_simarch::isa::{Inst, Op, NO_REG};
use smm_simarch::trace::collect_source;

fn render(i: &Inst) -> String {
    let mn = match i.op {
        Op::LdVec => "ldr q",
        Op::LdScalar => "ldr s",
        Op::LdPair => "ldp s",
        Op::StVec => "str q",
        Op::StScalar => "str s",
        Op::LdVecPred => "ld1w p/z",
        Op::StVecPred => "st1w p",
        Op::Fma => "fmla",
        Op::FmaPred => "fmla p/m",
        Op::FmaTile => "fmopa",
        Op::WhileLt => "whilelt",
        Op::VMul => "fmul",
        Op::VAdd => "fadd",
        Op::VDup => "dup",
        Op::IOp => "add x",
        Op::Branch => "b.ne",
        Op::Barrier(_) => "barrier",
    };
    let dst = if i.dst == NO_REG {
        String::new()
    } else {
        format!(" d{}", i.dst)
    };
    let srcs: Vec<String> = i.sources().map(|r| format!("s{r}")).collect();
    format!(
        "{:<8}{:<6} {:<14} [{}] {:?}",
        mn,
        dst,
        format!("{:#x}", i.addr),
        srcs.join(","),
        i.phase
    )
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let which = args
        .get(1)
        .map(String::as_str)
        .unwrap_or("openblas")
        .to_lowercase();
    let get = |idx: usize, default: usize| {
        args.get(idx)
            .and_then(|s| s.parse().ok())
            .unwrap_or(default)
    };
    let (m, n, k) = (get(2, 8), get(3, 8), get(4, 8));
    let limit = get(5, 120);
    let isa = args
        .get(6)
        .map(|name| {
            VectorIsa::by_name(name)
                .unwrap_or_else(|| panic!("unknown ISA {name:?} (neon128|sve256|sve512)"))
        })
        .unwrap_or_default();

    let job = if which == "ref" {
        let cfg = smm_core::PlanConfig {
            isa,
            ..Default::default()
        };
        let plan = smm_core::SmmPlan::build(m, n, k, &cfg);
        smm_core::build_sim(&plan)
    } else {
        let strategies = all_strategies::<f32>();
        let s = strategies
            .iter()
            .find(|s| s.name().to_lowercase() == which)
            .unwrap_or_else(|| {
                panic!("unknown strategy {which:?} (openblas|blis|blasfeo|eigen|ref)")
            });
        s.sim(m, n, k, 1)
    };
    println!("# {} — core 0, first {limit} instructions", job.label);
    let prog = job.programs.into_iter().next().expect("at least one core");
    let insts = collect_source(smm_gemm::ProgramSource::new(prog));
    println!("# total instructions: {}", insts.len());
    for i in insts.iter().take(limit) {
        println!("{}", render(i));
    }

    if which == "ref" {
        use smm_gemm::matrix::Mat;
        let smm = smm_core::Smm::<f32>::new();
        let a = Mat::<f32>::random(m, k, 1);
        let b = Mat::<f32>::random(k, n, 2);
        let mut c = Mat::<f32>::zeros(m, n);
        for _ in 0..100 {
            smm.gemm(1.0, a.as_ref(), b.as_ref(), 0.0, c.as_mut());
        }
        println!("# native telemetry for {m}x{n}x{k} (100 calls), JSON:");
        println!(
            "{{\"isa\":{{\"name\":\"{}\",\"vlen_bits\":{},\"num_vregs\":{},\
             \"fma_latency\":{},\"predication\":{}}}}}",
            isa, isa.vlen_bits, isa.num_vregs, isa.fma_latency, isa.predication
        );
        println!("{}", smm.stats_report().to_json());
    }
}
