//! Ablations of the §IV reference-implementation design choices
//! (DESIGN.md §5): packing-optional execution, edge handling,
//! instruction scheduling, and parallelization method.

use smm_bench::{measure, measure_strategy, print_header, print_row};
use smm_core::{build_sim, PlanConfig, SmmPlan};
use smm_gemm::{all_strategies, BlisStrategy, OpenBlasStrategy};

fn reference_eff(m: usize, n: usize, k: usize, cfg: &PlanConfig) -> f64 {
    let plan = SmmPlan::build(m, n, k, cfg);
    let threads = plan.threads();
    measure(build_sim(&plan), threads).efficiency_pct
}

fn main() {
    // 1. Packing-optional: force pack on/off against the adaptive rule.
    println!("== Ablation 1: packing decisions (1 thread, efficiency %) ==\n");
    print_header(&["shape", "adaptive", "force-pack", "force-none"]);
    for &(m, n, k) in &[
        (6, 96, 96),
        (16, 16, 16),
        (48, 48, 48),
        (96, 96, 96),
        (192, 8, 64),
    ] {
        let adaptive = reference_eff(m, n, k, &PlanConfig::default());
        let packed = reference_eff(
            m,
            n,
            k,
            &PlanConfig {
                pack_a: Some(true),
                pack_b: Some(true),
                ..Default::default()
            },
        );
        let unpacked = reference_eff(
            m,
            n,
            k,
            &PlanConfig {
                pack_a: Some(false),
                pack_b: Some(false),
                ..Default::default()
            },
        );
        print_row(&format!("{m}x{n}x{k}"), &[adaptive, packed, unpacked]);
    }

    // 2. Edge handling: the same edge-heavy shape across strategies
    //    (OpenBLAS edge kernels vs BLIS padding vs our exact tiles).
    println!("\n== Ablation 2: edge handling on M=75,N=K=60 (the paper's example) ==\n");
    print_header(&["strategy", "eff%", "edge%"]);
    for s in all_strategies::<f32>() {
        let meas = measure_strategy(s.as_ref(), 75, 60, 60, 1);
        print_row(s.name(), &[meas.efficiency_pct, meas.edge_pct]);
    }
    let meas = measure(
        build_sim(&SmmPlan::build(75, 60, 60, &PlanConfig::default())),
        1,
    );
    print_row("SMM-Ref", &[meas.efficiency_pct, meas.edge_pct]);

    // 3. Micro-kernel choice: override the adaptive selection.
    println!("\n== Ablation 3: forced micro-kernel on 64x64x64 (1 thread) ==\n");
    print_header(&["kernel", "eff%"]);
    for &(mr, nr) in &[(16usize, 4usize), (8, 12), (8, 8), (4, 4)] {
        let cfg = PlanConfig {
            kernel: Some(smm_model::KernelShape::new(mr, nr)),
            ..Default::default()
        };
        print_row(&format!("{mr}x{nr}"), &[reference_eff(64, 64, 64, &cfg)]);
    }

    // 4. Parallelization: OpenBLAS 2-D M-split vs BLIS multi-dim vs our
    //    sync-free tile-clamped grid, across small-M 64-thread shapes.
    //    Expected crossover: cooperative packing (BLIS) wins once the
    //    problem stops being small; the sync-free reference design wins
    //    in the genuinely small regime it targets.
    println!("\n== Ablation 4: parallelization on 64 threads (efficiency % / sync %) ==\n");
    print_header(&["shape", "2D-Msplit", "multi-dim", "ref", "ref sync%"]);
    for &(m, n, k) in &[(8usize, 96usize, 96usize), (16, 256, 256), (64, 512, 512)] {
        let ob = measure_strategy(&OpenBlasStrategy::new(), m, n, k, 64);
        let blis = measure_strategy(&BlisStrategy::new(), m, n, k, 64);
        let cfg = PlanConfig {
            max_threads: 64,
            ..Default::default()
        };
        let plan = SmmPlan::build(m, n, k, &cfg);
        // Measured against the full 64-core peak even if the plan
        // clamps its thread count.
        let ours = measure(build_sim(&plan), 64);
        print_row(
            &format!("{m}x{n}x{k}"),
            &[
                ob.efficiency_pct,
                blis.efficiency_pct,
                ours.efficiency_pct,
                ours.sync_pct,
            ],
        );
    }
}
