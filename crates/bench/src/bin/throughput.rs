//! Runtime throughput: pooled dispatch vs spawn-per-call.
//!
//! The §III-D finding is that thread startup dominates small-shape
//! parallel GEMM. This bin quantifies the fix: the persistent-pool
//! runtime is driven with many small GEMMs — batched, single-call
//! multi-threaded, and from concurrent caller threads — against a
//! spawn-per-call baseline doing the identical arithmetic with fresh
//! `std::thread::scope` threads (and a private-block merge pass) on
//! every call.
//!
//! Results land in `BENCH_throughput.json`: per-shape Gflops with
//! p50/p99 call latency, the pooled-vs-spawn speedups, and the
//! steady-state arena counters. Two zero-allocation gates run at the
//! end — arena hit rate ≥ 99% and zero arena bytes allocated after
//! warm-up — so a packing-path regression fails the bench (and the CI
//! perf-smoke job) rather than silently eating the win back.

use std::sync::Arc;
use std::time::Instant;

use smm_core::{PlanConfig, Smm, SmmPlan};
use smm_gemm::arena;
use smm_gemm::matrix::{Mat, MatMut, MatRef};
use smm_gemm::parallel::split_ranges;

const THREADS: usize = 4;

/// One benched workload for the JSON report.
struct ShapeRecord {
    label: String,
    m: usize,
    n: usize,
    k: usize,
    batch: usize,
    gflops: f64,
    p50_us: f64,
    p99_us: f64,
    speedup_vs_spawn: f64,
}

/// Per-call latency samples of `f` (seconds), after a short warmup.
fn sample_calls(iters: usize, mut f: impl FnMut()) -> Vec<f64> {
    for _ in 0..iters / 10 + 1 {
        f();
    }
    (0..iters)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64()
        })
        .collect()
}

/// (p50, p99) of a sample set, by sorting.
fn quantiles(samples: &mut [f64]) -> (f64, f64) {
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let at = |q: f64| samples[((samples.len() - 1) as f64 * q).round() as usize];
    (at(0.50), at(0.99))
}

/// Wall-time one closure: short warmup, then the best of 5 timed
/// blocks of `iters` runs (minimum rejects scheduler noise).
fn time_per_call(iters: usize, mut f: impl FnMut()) -> f64 {
    for _ in 0..iters / 10 + 1 {
        f();
    }
    let mut best = f64::INFINITY;
    for _ in 0..5 {
        let t0 = Instant::now();
        for _ in 0..iters {
            f();
        }
        best = best.min(t0.elapsed().as_secs_f64() / iters as f64);
    }
    best
}

fn report(label: &str, per_call: f64, flops_per_call: f64) {
    println!(
        "  {label:<44} {:>10.2} us/call {:>9.2} GFLOP/s",
        per_call * 1e6,
        flops_per_call / per_call / 1e9
    );
}

/// Spawn-per-call baseline for a batch: the same round-robin entry
/// distribution `gemm_batch` uses, but on threads created per call.
type Entry<'x> = (&'x Mat<f32>, &'x Mat<f32>, &'x mut Mat<f32>);

fn batch_spawn_per_call(plan: &SmmPlan, a: &[Mat<f32>], b: &[Mat<f32>], c: &mut [Mat<f32>]) {
    let mut groups: Vec<Vec<Entry<'_>>> = (0..THREADS).map(|_| Vec::new()).collect();
    for (i, ci) in c.iter_mut().enumerate() {
        groups[i % THREADS].push((&a[i], &b[i], ci));
    }
    std::thread::scope(|s| {
        for group in groups {
            s.spawn(move || {
                for (ai, bi, ci) in group {
                    smm_core::execute(plan, 1.0, ai.as_ref(), bi.as_ref(), 0.0, ci.as_mut());
                }
            });
        }
    });
}

/// Spawn-per-call baseline for one multi-threaded GEMM: the historical
/// executor shape — an `m_ways x n_ways` block grid, one fresh thread
/// per cell, private accumulators merged after the join.
fn gemm_spawn_per_call(
    chunk_plans: &[Vec<Arc<SmmPlan>>],
    rows: &[(usize, usize)],
    cols: &[(usize, usize)],
    a: MatRef<'_, f32>,
    b: MatRef<'_, f32>,
    mut c: MatMut<'_, f32>,
) {
    let k = a.cols();
    let mut cells = Vec::new();
    std::thread::scope(|s| {
        let mut handles = Vec::new();
        for (ri, &(i0, mt)) in rows.iter().enumerate() {
            for (ci, &(j0, nt)) in cols.iter().enumerate() {
                if mt == 0 || nt == 0 {
                    continue;
                }
                let plan = Arc::clone(&chunk_plans[ri][ci]);
                let a_blk = a.block(i0, 0, mt, k);
                let b_blk = b.block(0, j0, k, nt);
                handles.push(s.spawn(move || {
                    let mut local = Mat::<f32>::zeros(mt, nt);
                    smm_core::execute(&plan, 1.0, a_blk, b_blk, 0.0, local.as_mut());
                    (i0, j0, local)
                }));
            }
        }
        for h in handles {
            cells.push(h.join().unwrap());
        }
    });
    for (i0, j0, local) in cells {
        for j in 0..local.cols() {
            for i in 0..local.rows() {
                let v = c.at(i0 + i, j0 + j) + local[(i, j)];
                c.set(i0 + i, j0 + j, v);
            }
        }
    }
}

fn batch_section(records: &mut Vec<ShapeRecord>) {
    println!("batched small GEMMs ({THREADS} threads, batch of 64):");
    for &(m, n, k) in &[(8usize, 8usize, 8usize), (16, 16, 16), (24, 24, 24)] {
        let batch = 64;
        let flops = (2.0 * m as f64 * n as f64 * k as f64) * batch as f64;
        let a: Vec<Mat<f32>> = (0..batch).map(|i| Mat::random(m, k, i as u64)).collect();
        let b: Vec<Mat<f32>> = (0..batch)
            .map(|i| Mat::random(k, n, 100 + i as u64))
            .collect();

        let smm = Smm::<f32>::with_threads(THREADS);
        let desc = smm_core::StridedBatch::dense(m, n, k, batch);
        let a_flat: Vec<f32> = a.iter().flat_map(|x| x.data().to_vec()).collect();
        let b_flat: Vec<f32> = b.iter().flat_map(|x| x.data().to_vec()).collect();
        let mut c_flat = vec![0.0f32; batch * desc.stride_c];
        let pooled = time_per_call(300, || {
            smm.gemm_batch(&desc, 1.0, &a_flat, &b_flat, 0.0, &mut c_flat)
                .unwrap();
        });

        let plan = Arc::new(SmmPlan::build(m, n, k, &PlanConfig::default()));
        let mut c_mats: Vec<Mat<f32>> = (0..batch).map(|_| Mat::zeros(m, n)).collect();
        let spawned = time_per_call(300, || {
            batch_spawn_per_call(&plan, &a, &b, &mut c_mats);
        });

        report(
            &format!("{m}x{n}x{k} x{batch}  pooled (gemm_batch)"),
            pooled,
            flops,
        );
        report(
            &format!("{m}x{n}x{k} x{batch}  spawn-per-call"),
            spawned,
            flops,
        );
        println!("    -> pool speedup {:.2}x", spawned / pooled);

        let mut samples = sample_calls(300, || {
            smm.gemm_batch(&desc, 1.0, &a_flat, &b_flat, 0.0, &mut c_flat)
                .unwrap();
        });
        let (p50, p99) = quantiles(&mut samples);
        records.push(ShapeRecord {
            label: format!("batch_{m}x{n}x{k}x{batch}"),
            m,
            n,
            k,
            batch,
            gflops: flops / p50 / 1e9,
            p50_us: p50 * 1e6,
            p99_us: p99 * 1e6,
            speedup_vs_spawn: spawned / pooled,
        });
    }
}

fn single_gemm_section(records: &mut Vec<ShapeRecord>) {
    println!("\nsingle multi-threaded GEMM ({THREADS} threads):");
    for &(m, n, k) in &[(64usize, 64usize, 64usize), (96, 96, 48)] {
        let flops = 2.0 * m as f64 * n as f64 * k as f64;
        let a = Mat::<f32>::random(m, k, 7);
        let b = Mat::<f32>::random(k, n, 8);
        let mut c = Mat::<f32>::zeros(m, n);

        let smm = Smm::<f32>::with_threads(THREADS);
        let pooled = time_per_call(2000, || {
            smm.gemm(1.0, a.as_ref(), b.as_ref(), 0.0, c.as_mut());
        });

        // Pre-plan every grid cell so the baseline pays only for the
        // thread spawns, not for planning.
        let grid = {
            let p = SmmPlan::build(
                m,
                n,
                k,
                &PlanConfig {
                    max_threads: THREADS,
                    ..Default::default()
                },
            );
            (p.grid.m_ways(), p.grid.n_ways())
        };
        let rows = split_ranges(m, grid.0);
        let cols = split_ranges(n, grid.1);
        let cfg1 = PlanConfig::default();
        let chunk_plans: Vec<Vec<Arc<SmmPlan>>> = rows
            .iter()
            .map(|&(_, mt)| {
                cols.iter()
                    .map(|&(_, nt)| Arc::new(SmmPlan::build(mt, nt, k, &cfg1)))
                    .collect()
            })
            .collect();
        let spawned = time_per_call(2000, || {
            gemm_spawn_per_call(
                &chunk_plans,
                &rows,
                &cols,
                a.as_ref(),
                b.as_ref(),
                c.as_mut(),
            );
        });

        report(&format!("{m}x{n}x{k}  pooled (Smm::gemm)"), pooled, flops);
        report(&format!("{m}x{n}x{k}  spawn-per-call"), spawned, flops);
        println!("    -> pool speedup {:.2}x", spawned / pooled);

        let mut samples = sample_calls(1000, || {
            smm.gemm(1.0, a.as_ref(), b.as_ref(), 0.0, c.as_mut());
        });
        let (p50, p99) = quantiles(&mut samples);
        records.push(ShapeRecord {
            label: format!("gemm_{m}x{n}x{k}"),
            m,
            n,
            k,
            batch: 1,
            gflops: flops / p50 / 1e9,
            p50_us: p50 * 1e6,
            p99_us: p99 * 1e6,
            speedup_vs_spawn: spawned / pooled,
        });
    }
}

fn concurrent_callers_section() {
    println!("\nconcurrent callers (8 caller threads, shared Smm, 13x7x21):");
    let (m, n, k) = (13usize, 7usize, 21usize);
    let callers = 8;
    let per_caller = 2000;
    let flops = 2.0 * (m * n * k) as f64 * (callers * per_caller) as f64;

    let smm = Arc::new(Smm::<f32>::new());
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for t in 0..callers {
            let smm = Arc::clone(&smm);
            s.spawn(move || {
                let a = Mat::<f32>::random(m, k, t as u64);
                let b = Mat::<f32>::random(k, n, 50 + t as u64);
                let mut c = Mat::<f32>::zeros(m, n);
                for _ in 0..per_caller {
                    smm.gemm(1.0, a.as_ref(), b.as_ref(), 0.0, c.as_mut());
                }
            });
        }
    });
    let dt = t0.elapsed().as_secs_f64();
    println!(
        "  {:<44} {:>10.2} ns/gemm {:>9.2} GFLOP/s aggregate",
        "sharded cache, shared-lock hit path",
        dt * 1e9 / (callers * per_caller) as f64,
        flops / dt / 1e9
    );
    let stats = smm.stats();
    println!(
        "  runtime stats: {} hits / {} misses / {} evictions, {} resident, {} pool workers",
        stats.plan_hits,
        stats.plan_misses,
        stats.plan_evictions,
        stats.cached_plans,
        stats.pool_workers
    );
}

/// Telemetry cost and payoff: the identical batched workload on two
/// runtimes differing only in the `SmmBuilder::telemetry` toggle. The
/// enabled path must stay within the ISSUE's <5% throughput budget;
/// the report it buys is printed so every `BENCH_*` run carries the
/// paper-style pack/compute/sync breakdown.
fn telemetry_section() {
    println!("\ntelemetry overhead (gemm_batch 8x8x8 x64, {THREADS} threads):");
    let (m, n, k, batch) = (8usize, 8usize, 8usize, 64usize);
    let desc = smm_core::StridedBatch::dense(m, n, k, batch);
    let a: Vec<f32> = Mat::<f32>::random(m * batch, k, 5).data().to_vec();
    let b: Vec<f32> = Mat::<f32>::random(k * batch, n, 6).data().to_vec();
    let mut c = vec![0.0f32; batch * desc.stride_c];

    let enabled = Smm::<f32>::builder().threads(THREADS).build();
    let disabled = Smm::<f32>::builder()
        .threads(THREADS)
        .telemetry(false)
        .build();
    // Interleave the two configurations in short alternating blocks so
    // machine noise (neighbors, frequency shifts) hits both equally;
    // the per-config minimum over all blocks rejects what remains.
    let mut measure = |enabled_smm: &Smm<f32>, disabled_smm: &Smm<f32>| {
        let iters = 100;
        let (mut t_on, mut t_off) = (f64::INFINITY, f64::INFINITY);
        for round in 0..24 {
            for half in 0..2 {
                let on_turn = (round + half) % 2 == 0;
                let smm = if on_turn { enabled_smm } else { disabled_smm };
                for _ in 0..iters / 10 {
                    smm.gemm_batch(&desc, 1.0, &a, &b, 0.0, &mut c).unwrap();
                }
                let t0 = Instant::now();
                for _ in 0..iters {
                    smm.gemm_batch(&desc, 1.0, &a, &b, 0.0, &mut c).unwrap();
                }
                let per = t0.elapsed().as_secs_f64() / iters as f64;
                if on_turn {
                    t_on = t_on.min(per);
                } else {
                    t_off = t_off.min(per);
                }
            }
        }
        (t_on, t_off)
    };
    // A shared machine can still produce a one-sided burst; re-measure
    // before declaring the budget blown.
    let mut verdict = (f64::INFINITY, f64::INFINITY, f64::INFINITY);
    for attempt in 0..3 {
        let (t_on, t_off) = measure(&enabled, &disabled);
        let overhead_pct = (t_on - t_off) / t_off * 100.0;
        println!(
            "  enabled {:.2} us/call, disabled {:.2} us/call -> overhead {:+.2}%{}",
            t_on * 1e6,
            t_off * 1e6,
            overhead_pct,
            if overhead_pct >= 5.0 && attempt < 2 {
                "  (over budget, re-measuring)"
            } else {
                ""
            }
        );
        if overhead_pct < verdict.2 {
            verdict = (t_on, t_off, overhead_pct);
        }
        if verdict.2 < 5.0 {
            break;
        }
    }
    assert!(
        verdict.2 < 5.0,
        "telemetry overhead {:.2}% exceeds the 5% budget in 3 attempts",
        verdict.2
    );

    // Tracing rides on top of telemetry: every call also emits span
    // events into the flight recorder. Same protocol against the same
    // dark baseline, with a 7% budget for the extra clock reads and
    // ring writes.
    let traced = Smm::<f32>::builder().threads(THREADS).tracing(true).build();
    let mut verdict_tr = (f64::INFINITY, f64::INFINITY, f64::INFINITY);
    for attempt in 0..3 {
        let (t_on, t_off) = measure(&traced, &disabled);
        let overhead_pct = (t_on - t_off) / t_off * 100.0;
        println!(
            "  traced  {:.2} us/call, disabled {:.2} us/call -> overhead {:+.2}%{}",
            t_on * 1e6,
            t_off * 1e6,
            overhead_pct,
            if overhead_pct >= 7.0 && attempt < 2 {
                "  (over budget, re-measuring)"
            } else {
                ""
            }
        );
        if overhead_pct < verdict_tr.2 {
            verdict_tr = (t_on, t_off, overhead_pct);
        }
        if verdict_tr.2 < 7.0 {
            break;
        }
    }
    assert!(
        verdict_tr.2 < 7.0,
        "tracing overhead {:.2}% exceeds the 7% budget in 3 attempts",
        verdict_tr.2
    );

    // Mix in single multi-threaded GEMMs so the report shows the
    // dispatch/sync phases and a second call site.
    let am = Mat::<f32>::random(64, 64, 7);
    let bm = Mat::<f32>::random(64, 64, 8);
    let mut cm = Mat::<f32>::zeros(64, 64);
    for _ in 0..200 {
        enabled.gemm(1.0, am.as_ref(), bm.as_ref(), 0.0, cm.as_mut());
    }

    println!("\n{}", enabled.stats_report());
    println!(
        "  (report serializes via stats_report().to_json() / .to_prometheus(); \
         prometheus exposition is {} lines)",
        enabled.stats_report().to_prometheus().lines().count()
    );
}

/// The zero-allocation gates. A fresh runtime is warmed on the two
/// hot-path workload kinds (single multi-threaded GEMM and a dense
/// batch), the global arena counters are zeroed at the warm-up
/// boundary, and a steady-state window runs. After warm-up every pool
/// worker's thread-local free list holds buffers for every size class
/// these shapes touch, so the window must be all hits: a miss both
/// drops the hit rate and books fresh capacity into `alloc_bytes`.
fn arena_steady_state_section() -> arena::ArenaStats {
    println!("\narena steady state ({THREADS} threads, gates: hit rate >= 99%, 0 bytes):");
    let smm = Smm::<f32>::with_threads(THREADS);

    let (m, n, k) = (64usize, 64usize, 64usize);
    let a = Mat::<f32>::random(m, k, 11);
    let b = Mat::<f32>::random(k, n, 12);
    let mut c = Mat::<f32>::zeros(m, n);

    let (bm, bn, bk, batch) = (8usize, 8usize, 8usize, 64usize);
    let desc = smm_core::StridedBatch::dense(bm, bn, bk, batch);
    let a_flat: Vec<f32> = Mat::<f32>::random(bm * batch, bk, 13).data().to_vec();
    let b_flat: Vec<f32> = Mat::<f32>::random(bk * batch, bn, 14).data().to_vec();
    let mut c_flat = vec![0.0f32; batch * desc.stride_c];

    let mut run_both = |iters: usize| {
        for _ in 0..iters {
            smm.gemm(1.0, a.as_ref(), b.as_ref(), 0.0, c.as_mut());
            smm.gemm_batch(&desc, 1.0, &a_flat, &b_flat, 0.0, &mut c_flat)
                .unwrap();
        }
    };
    run_both(400); // warm every worker's free lists
    arena::reset_stats();
    run_both(500); // measured steady-state window

    let stats = arena::stats();
    println!(
        "  {} hits / {} misses ({:.3}% hit rate), {} bytes allocated",
        stats.hits,
        stats.misses,
        stats.hit_rate() * 100.0,
        stats.alloc_bytes
    );
    assert!(
        stats.hit_rate() >= 0.99,
        "arena hit rate {:.4} below the 0.99 gate ({} hits / {} misses)",
        stats.hit_rate(),
        stats.hits,
        stats.misses
    );
    assert!(
        stats.alloc_bytes == 0,
        "steady state allocated {} bytes through the arena; expected 0",
        stats.alloc_bytes
    );
    println!("  gates passed: hit rate >= 99%, zero steady-state allocation");
    stats
}

/// Hand-rolled JSON (std-only workspace) mirroring the keys the
/// telemetry report uses, one object per benched workload.
fn write_json(records: &[ShapeRecord], steady: arena::ArenaStats) {
    use std::fmt::Write as _;
    let min_speedup = records
        .iter()
        .map(|r| r.speedup_vs_spawn)
        .fold(f64::INFINITY, f64::min);
    let mut s = String::from("{\n");
    let _ = writeln!(s, "  \"threads\": {THREADS},");
    s.push_str("  \"shapes\": [\n");
    for (i, r) in records.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"label\": \"{}\", \"m\": {}, \"n\": {}, \"k\": {}, \"batch\": {}, \
             \"gflops\": {:.3}, \"p50_us\": {:.3}, \"p99_us\": {:.3}, \
             \"speedup_vs_spawn\": {:.3}}}",
            r.label, r.m, r.n, r.k, r.batch, r.gflops, r.p50_us, r.p99_us, r.speedup_vs_spawn
        );
        s.push_str(if i + 1 < records.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ],\n");
    let _ = writeln!(
        s,
        "  \"arena_steady_state\": {{\"hits\": {}, \"misses\": {}, \"alloc_bytes\": {}, \
         \"hit_rate\": {:.6}}},",
        steady.hits,
        steady.misses,
        steady.alloc_bytes,
        steady.hit_rate()
    );
    let _ = writeln!(
        s,
        "  \"gates\": {{\"arena_hit_rate_min\": 0.99, \"arena_alloc_bytes_steady\": 0, \
         \"min_speedup_vs_spawn\": {min_speedup:.3}, \"passed\": true}}"
    );
    s.push_str("}\n");
    std::fs::write("BENCH_throughput.json", &s).expect("write BENCH_throughput.json");
    println!("\nwrote BENCH_throughput.json ({} shapes)", records.len());
}

fn main() {
    println!("SMM runtime throughput — pooled dispatch vs spawn-per-call\n");
    let mut records = Vec::new();
    batch_section(&mut records);
    single_gemm_section(&mut records);
    concurrent_callers_section();
    telemetry_section();
    let steady = arena_steady_state_section();
    write_json(&records, steady);
}
