//! Architecture ablations — which machine features drive the paper's
//! observations?
//!
//! The paper (§III-D) conjectures three causes for the multi-threaded
//! kernel-efficiency loss: the non-LRU shared L2, NUMA, and padded edge
//! work. This binary re-runs representative jobs on modified machines:
//! an LRU L2, a disabled stream prefetcher, half/double DRAM bandwidth,
//! and a 2×-latency FMA pipe.

use smm_gemm::{BlasfeoStrategy, BlisStrategy, Strategy};
use smm_simarch::cache::Replacement;
use smm_simarch::cpu::PipelineConfig;
use smm_simarch::memory::MemConfig;

struct Variant {
    name: &'static str,
    pipeline: PipelineConfig,
    mem: MemConfig,
}

fn variants() -> Vec<Variant> {
    let stock_p = PipelineConfig::phytium_core();
    let stock_m = MemConfig::phytium_2000_plus();
    let mut lru = stock_m;
    lru.l2.replacement = Replacement::Lru;
    let mut nopf = stock_m;
    nopf.prefetch = false;
    let mut half_bw = stock_m;
    half_bw.dram_service = stock_m.dram_service * 2;
    let mut double_bw = stock_m;
    double_bw.dram_service = stock_m.dram_service / 2;
    let mut slow_fma = stock_p;
    slow_fma.fma_latency = stock_p.fma_latency * 2;
    vec![
        Variant {
            name: "stock",
            pipeline: stock_p,
            mem: stock_m,
        },
        Variant {
            name: "LRU L2",
            pipeline: stock_p,
            mem: lru,
        },
        Variant {
            name: "no prefetch",
            pipeline: stock_p,
            mem: nopf,
        },
        Variant {
            name: "half DRAM bw",
            pipeline: stock_p,
            mem: half_bw,
        },
        Variant {
            name: "2x DRAM bw",
            pipeline: stock_p,
            mem: double_bw,
        },
        Variant {
            name: "2x FMA lat",
            pipeline: slow_fma,
            mem: stock_m,
        },
    ]
}

type JobFactory = Box<dyn Fn() -> smm_gemm::SimJob>;

fn main() {
    let jobs: Vec<(&str, JobFactory, usize, f64)> = vec![
        (
            "BLASFEO 64^3 t1",
            Box::new(|| Strategy::<f32>::sim(&BlasfeoStrategy::new(), 64, 64, 64, 1)),
            1,
            2.0 * 64f64.powi(3),
        ),
        (
            "BLIS 64x512x512 t64",
            Box::new(|| Strategy::<f32>::sim(&BlisStrategy::new(), 64, 512, 512, 64)),
            64,
            2.0 * 64.0 * 512.0 * 512.0,
        ),
    ];

    for (label, job_fn, threads, flops) in jobs {
        println!("\n== {label} across machine variants ==\n");
        println!(
            "{:>14} {:>9} {:>10} {:>9}",
            "variant", "eff%", "kernutil%", "cycles_k"
        );
        println!("{}", "-".repeat(46));
        for v in variants() {
            let report = job_fn().run_on(v.pipeline, v.mem);
            let gflops = report.gflops(flops, 2.2e9);
            let eff = gflops / (17.6 * threads as f64) * 100.0;
            println!(
                "{:>14} {:>9.1} {:>10.1} {:>9}",
                v.name,
                eff,
                report.kernel_fma_utilization() * 100.0,
                report.cycles / 1000
            );
        }
    }
    println!("\nIn this model, DRAM channel bandwidth is the dominant lever for the");
    println!("64-thread job, and the stream prefetcher for the single-thread kernel;");
    println!("the L2 replacement policy is neutral because packed working sets fit.");
    println!("(The paper conjectures a larger non-LRU-L2 role — see EXPERIMENTS.md.)");
}
