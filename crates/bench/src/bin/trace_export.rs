//! Export a Chrome-trace/Perfetto JSON of a traced TCP serving run.
//!
//! Drives a burst of same-shape requests from several closed-loop
//! [`TcpClient`]s over loopback into a [`TcpServer`] whose coalesce
//! window is deliberately wide, so the dispatcher folds them into
//! shared `gemm_batch` dispatches. The resulting flight-recorder
//! contents are assembled into complete spans and written as a Chrome
//! trace (load it at `ui.perfetto.dev` or `chrome://tracing`).
//!
//! The binary **gates** on the trace's structure, so CI can run it
//! directly:
//!
//! * the export is non-empty and every span has a begin and an end;
//! * at least one coalesced-batch span has two or more member children
//!   carrying *distinct* request trace ids — the cross-trace link that
//!   makes a coalesced dispatch legible in the viewer.
//!
//! Usage: `trace_export [--out FILE] [--clients N] [--requests N]`
//! (defaults: `trace.json`, 4 clients, 8 requests each).

use std::collections::HashSet;
use std::io::Write as _;
use std::sync::Arc;
use std::time::Duration;

use smm_core::{chrome_trace_json, Smm, SpanName};
use smm_serve::{GemmRequest, Server, TcpClient, TcpServer};

fn main() {
    let mut out_path = "trace.json".to_string();
    let mut clients = 4usize;
    let mut requests = 8usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |what: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{what} expects a value"))
        };
        match arg.as_str() {
            "--out" => out_path = value("--out"),
            "--clients" => clients = value("--clients").parse().expect("client count"),
            "--requests" => requests = value("--requests").parse().expect("request count"),
            "--help" | "-h" => {
                println!("trace_export [--out FILE] [--clients N] [--requests N]");
                return;
            }
            other => panic!("unknown argument {other}"),
        }
    }
    assert!(clients > 0 && requests > 0, "empty workload");

    let smm = Arc::new(
        Smm::<f32>::builder()
            .threads(2)
            .telemetry(true)
            .tracing(true)
            .build(),
    );
    let server = Server::<f32>::builder()
        .smm(Arc::clone(&smm))
        .coalesce_window(Duration::from_millis(5))
        .max_batch(64)
        .build();
    let tcp = TcpServer::bind(server, "127.0.0.1:0").expect("bind loopback");
    let addr = tcp.local_addr();
    let (m, n, k) = (8usize, 8usize, 8usize);
    std::thread::scope(|s| {
        for t in 0..clients {
            s.spawn(move || {
                let mut client = TcpClient::connect(addr).expect("connect loopback");
                for i in 0..requests {
                    let seed = (t * 1000 + i) as f32;
                    let req = GemmRequest::new(m, n, k, vec![1.0 + seed; m * k], vec![1.0; k * n]);
                    let c = client.call(&req).unwrap();
                    assert!(
                        (c[0] - (1.0 + seed) * k as f32).abs() < 1e-3,
                        "wrong result under tracing"
                    );
                }
            });
        }
    });
    tcp.shutdown();

    let spans = smm.drain_trace();
    assert!(!spans.is_empty(), "traced run produced no spans");

    // Gate: some coalesced dispatch really linked >= 2 requests from
    // distinct traces, so the export demonstrates the cross-trace edge.
    let best_members = spans
        .iter()
        .filter(|s| s.name == SpanName::CoalescedBatch)
        .map(|batch| {
            spans
                .iter()
                .filter(|s| s.name == SpanName::Member && s.parent == batch.span)
                .map(|s| s.trace)
                .collect::<HashSet<u64>>()
                .len()
        })
        .max()
        .unwrap_or(0);
    assert!(
        best_members >= 2,
        "no coalesced batch linked >= 2 distinct request traces \
         (best {best_members}); widen the window or raise the load"
    );

    let request_traces = spans
        .iter()
        .filter(|s| s.name == SpanName::Request)
        .map(|s| s.trace)
        .collect::<HashSet<u64>>()
        .len();

    let json = chrome_trace_json(&spans);
    let mut f = std::fs::File::create(&out_path).expect("create trace file");
    f.write_all(json.as_bytes()).expect("write trace");
    println!(
        "trace_export: {} spans across {request_traces} request traces, \
         best coalesced batch links {best_members} distinct traces",
        spans.len()
    );
    println!("trace_export: chrome trace written to {out_path}");
    println!("trace_export: all gates passed");
}
