//! Fig. 5 — single-threaded SMM performance of the four libraries.
//!
//! Panels: (a) square M=N=K ∈ 5..=200; (b) M ∈ 2..=40 with N=K=192;
//! (c) N swept; (d) K swept. Efficiency is percent of one core's SP
//! peak (17.6 Gflops). The paper's headline observations to reproduce:
//! BLASFEO is best (up to ~96% of peak), Eigen worst (~58%), and
//! small-K behaviour (d) differs from small-M/N (b, c) because P2C is
//! independent of K (Eq. 3).
//!
//! Usage: `fig5 [a|b|c|d|all] [--full]`. A fifth column reports our
//! §IV reference implementation (an extension over the paper).

use smm_bench::{
    fig5_small_sizes, fig5a_sizes, measure_reference, measure_strategy, print_header, print_row,
    FIXED_DIM,
};
use smm_gemm::all_strategies;

fn sweep(label: &str, points: &[(usize, usize, usize)]) {
    println!("\n== Fig 5({label}): single-thread efficiency (% of 17.6 SP Gflops) ==");
    let strategies = all_strategies::<f32>();
    let mut cols = vec!["size"];
    let names: Vec<&str> = strategies.iter().map(|s| s.name()).collect();
    cols.extend(names.iter());
    cols.push("SMM-Ref");
    print_header(&cols);
    for &(m, n, k) in points {
        let mut vals = Vec::new();
        for s in &strategies {
            vals.push(measure_strategy(s.as_ref(), m, n, k, 1).efficiency_pct);
        }
        vals.push(measure_reference(m, n, k, 1).efficiency_pct);
        let label = match label {
            "a" => format!("{m}"),
            "b" => format!("M={m}"),
            "c" => format!("N={n}"),
            _ => format!("K={k}"),
        };
        print_row(&label, &vals);
    }
}

fn main() {
    let which = std::env::args()
        .nth(1)
        .filter(|a| a != "--full")
        .unwrap_or_else(|| "all".into());
    let d = FIXED_DIM;
    if which == "a" || which == "all" {
        let pts: Vec<_> = fig5a_sizes().into_iter().map(|s| (s, s, s)).collect();
        sweep("a", &pts);
    }
    if which == "b" || which == "all" {
        let pts: Vec<_> = fig5_small_sizes().into_iter().map(|m| (m, d, d)).collect();
        sweep("b", &pts);
    }
    if which == "c" || which == "all" {
        let pts: Vec<_> = fig5_small_sizes().into_iter().map(|n| (d, n, d)).collect();
        sweep("c", &pts);
    }
    if which == "d" || which == "all" {
        let pts: Vec<_> = fig5_small_sizes().into_iter().map(|k| (d, d, k)).collect();
        sweep("d", &pts);
    }
}
