//! Fig. 10 — 64-thread SMM: OpenBLAS vs BLIS vs Eigen.
//!
//! The paper sweeps SMMs with one irregular (small) dimension on all
//! 64 cores; BLASFEO is excluded (single-threaded only). Expected
//! shape: BLIS leads (peaking around 60%), OpenBLAS is especially poor
//! when M is small (its 2-D grid splits M into 64 slivers), and all
//! three sit far below peak when any dimension is very small.
//!
//! The paper does not state the fixed large dimensions; we use 512
//! (1024 with `--full`), comfortably "large" against the 16..256
//! sweep. A fourth column reports our §IV reference implementation.

use smm_bench::{full_mode, measure_reference, measure_strategy, print_header, print_row};
use smm_gemm::{BlisStrategy, EigenStrategy, OpenBlasStrategy};

fn main() {
    let threads = 64;
    let fixed = if full_mode() { 1024 } else { 512 };
    let step = if full_mode() { 16 } else { 48 };
    let sizes: Vec<usize> = (step..=256).step_by(step).collect();
    let ob = OpenBlasStrategy::new();
    let blis = BlisStrategy::new();
    let eigen = EigenStrategy::new();

    for (panel, dim) in [("M", 0usize), ("N", 1), ("K", 2)] {
        println!(
            "\n== Fig 10: 64-thread efficiency (% of 1126.4 SP Gflops), sweeping {panel} (fixed = {fixed}) =="
        );
        print_header(&["size", "OpenBLAS", "BLIS", "Eigen", "SMM-Ref"]);
        for &s in &sizes {
            let (m, n, k) = match dim {
                0 => (s, fixed, fixed),
                1 => (fixed, s, fixed),
                _ => (fixed, fixed, s),
            };
            let vals = [
                measure_strategy(&ob, m, n, k, threads).efficiency_pct,
                measure_strategy(&blis, m, n, k, threads).efficiency_pct,
                measure_strategy(&eigen, m, n, k, threads).efficiency_pct,
                measure_reference(m, n, k, threads).efficiency_pct,
            ];
            print_row(&format!("{panel}={s}"), &vals);
        }
    }
}
