//! Fig. 9 — kernel-only efficiency of OpenBLAS SMM (packing excluded).
//!
//! One dimension fixed at 100, the others swept; efficiency counts
//! only kernel-phase cycles. The paper reports a best case of 93.3%
//! at M=N=80 and a worst case of 71.8%, attributing the dips to the
//! inefficient edge micro-kernels that engage whenever M/N are not
//! multiples of the register tile.

use smm_bench::{full_mode, measure_strategy, print_header, print_row};
use smm_gemm::OpenBlasStrategy;

fn main() {
    let ob = OpenBlasStrategy::new();
    let step = if full_mode() { 5 } else { 15 };
    let sizes: Vec<usize> = (step..=200).step_by(step).collect();
    for (panel, dim) in [("M", 0usize), ("N", 1), ("K", 2)] {
        println!(
            "\n== Fig 9: OpenBLAS kernel-only efficiency sweeping {panel} (fixed dims = 100) =="
        );
        print_header(&["size", "kern eff%", "edge%"]);
        for &s in &sizes {
            let (m, n, k) = match dim {
                0 => (s, 100, 100),
                1 => (100, s, 100),
                _ => (100, 100, s),
            };
            let meas = measure_strategy(&ob, m, n, k, 1);
            print_row(
                &format!("{panel}={s}"),
                &[meas.kernel_only_eff_pct, meas.edge_pct],
            );
        }
    }
    println!("\nDips align with sizes that are not multiples of 16 (mr) / 4 (nr):");
    println!("those tiles run the naively scheduled edge kernels of Fig. 7.");
}
