//! Strong scaling: efficiency of each library (and the reference
//! implementation) as the thread count grows on fixed SMM problems.
//!
//! The paper evaluates 1 and 64 threads; this sweep fills in the curve
//! and shows *where* each parallelization method stops paying — the
//! practical content of the §III-D recommendation.

use smm_bench::{measure, measure_strategy, print_header, print_row};
use smm_core::{build_sim, PlanConfig, SmmPlan};
use smm_gemm::{BlisStrategy, EigenStrategy, OpenBlasStrategy};

fn main() {
    let threads = [1usize, 2, 4, 8, 16, 32, 64];
    for &(m, n, k) in &[(32usize, 256usize, 256usize), (128, 128, 128)] {
        println!("\n== Strong scaling on {m}x{n}x{k} (% of the SP peak of the cores used) ==");
        print_header(&["threads", "OpenBLAS", "BLIS", "Eigen", "SMM-Ref"]);
        for &t in &threads {
            let ob = measure_strategy(&OpenBlasStrategy::new(), m, n, k, t);
            let blis = measure_strategy(&BlisStrategy::new(), m, n, k, t);
            let eig = measure_strategy(&EigenStrategy::new(), m, n, k, t);
            let cfg = PlanConfig {
                max_threads: t,
                ..Default::default()
            };
            let plan = SmmPlan::build(m, n, k, &cfg);
            let ours = measure(build_sim(&plan), t);
            print_row(
                &t.to_string(),
                &[
                    ob.efficiency_pct,
                    blis.efficiency_pct,
                    eig.efficiency_pct,
                    ours.efficiency_pct,
                ],
            );
        }
    }
    println!("\nEfficiency per core decays as threads grow (sync + packing duplication");
    println!("+ shared bandwidth); the decay rate is the §III-D method comparison.");
}
