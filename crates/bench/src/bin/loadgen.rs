//! Closed-loop load generator for the `smm-serve` serving layer.
//!
//! Spawns N concurrent clients, each submitting requests back-to-back
//! (closed loop: one in flight per client) against an in-process
//! [`Server`] or, with `--tcp`, against a loopback [`TcpServer`] over
//! the wire protocol. Reports per-shape p50/p99 latency and achieved
//! Gflops, and **gates** on serving correctness:
//!
//! * every issued request is answered exactly once (a result or a
//!   typed rejection — never a drop, never a double reply);
//! * the server drains cleanly (zero queued requests after shutdown);
//! * with `--gate-throughput`, the coalescing batcher must beat the
//!   same workload served one-request-per-call.
//!
//! Exit status is non-zero on any gate failure, so CI can run this
//! binary directly.
//!
//! `--shards N` serves the workload through N runtime shards (one
//! `Smm` + dispatcher per shard, shape-hash routing, work stealing);
//! `--idle-conns M` holds M extra idle TCP connections open for the
//! whole run, exercising the multiplexed front end's parked-connection
//! path. `--gate-scaling` runs the dedicated shard-scaling comparison:
//! the same uniform multi-shape workload through 1 shard and through
//! `--shards` (default 4) shards, best-of-3 each, gating aggregate
//! throughput ≥ 3.0× and p99 within 1.25× of the 1-shard baseline —
//! both sides under the idle-connection flood.
//!
//! `--cold-start` switches to the two-stage autotuning benchmark: a
//! many-shape workload (deterministic log-uniform shapes) driven once
//! cold and then for `--cold-windows` warm windows, measuring
//! time-to-steady-state p99. With `--plan-db` the runtime answers cold
//! lookups from the offline database; `--gate-cold-start` then asserts
//! the cold window's p99 lands within 10% of steady state and that the
//! database covered at least 95% of plan lookups.
//!
//! ```sh
//! cargo run --release -p smm-bench --bin loadgen -- \
//!     --clients 8 --requests 200 --tcp --report latency.txt
//! ```

use std::io::Write as _;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use smm_core::{LatencyHistogram, PlanDb, Smm, TelemetryReport, DEFAULT_RATE_WINDOW};
use smm_gemm::matrix::{MatMut, MatRef};
use smm_model::VectorIsa;
use smm_serve::{GemmRequest, Rejected, Server, TcpClient, TcpServer};

/// The workload mix: the paper's small-GEMM regime, deliberately
/// batch-heavy (few distinct shapes, many requests per shape).
const SHAPES: [(usize, usize, usize); 3] = [(8, 8, 8), (16, 16, 16), (4, 32, 8)];

/// Dimension range for the `--cold-start` many-shape workload. Matches
/// the default `smm-tune sweep` grid so a swept database covers it.
const COLD_DIM_MIN: usize = 4;
const COLD_DIM_MAX: usize = 64;

#[derive(Clone)]
struct Options {
    clients: usize,
    requests: usize,
    threads: usize,
    window: Duration,
    queue_capacity: usize,
    max_batch: usize,
    tcp: bool,
    gate_throughput: bool,
    report: Option<String>,
    rate_window: Duration,
    bench_json: Option<String>,
    cold_start: bool,
    shapes: usize,
    plan_db: Option<String>,
    cold_windows: usize,
    gate_cold_start: bool,
    isa: VectorIsa,
    shards: usize,
    idle_conns: usize,
    gate_scaling: bool,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            clients: 8,
            requests: 200,
            threads: 4,
            window: Duration::from_micros(200),
            queue_capacity: 512,
            max_batch: 64,
            tcp: false,
            gate_throughput: false,
            report: None,
            rate_window: DEFAULT_RATE_WINDOW,
            bench_json: None,
            cold_start: false,
            shapes: 1000,
            plan_db: None,
            cold_windows: 6,
            gate_cold_start: false,
            isa: VectorIsa::neon128(),
            shards: 1,
            idle_conns: 0,
            gate_scaling: false,
        }
    }
}

fn parse_args() -> Options {
    let mut opts = Options::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |what: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{what} expects a value"))
        };
        match arg.as_str() {
            "--clients" => opts.clients = value("--clients").parse().expect("client count"),
            "--requests" => opts.requests = value("--requests").parse().expect("request count"),
            "--threads" => opts.threads = value("--threads").parse().expect("thread count"),
            "--window-us" => {
                opts.window = Duration::from_micros(value("--window-us").parse().expect("micros"))
            }
            "--queue" => opts.queue_capacity = value("--queue").parse().expect("capacity"),
            "--max-batch" => opts.max_batch = value("--max-batch").parse().expect("batch size"),
            "--tcp" => opts.tcp = true,
            "--gate-throughput" => opts.gate_throughput = true,
            "--report" => opts.report = Some(value("--report")),
            "--rate-window" => {
                let secs: f64 = value("--rate-window").parse().expect("seconds");
                assert!(secs > 0.0, "--rate-window must be positive");
                opts.rate_window = Duration::from_secs_f64(secs);
            }
            "--bench-json" => opts.bench_json = Some(value("--bench-json")),
            "--cold-start" => opts.cold_start = true,
            "--shapes" => opts.shapes = value("--shapes").parse().expect("shape count"),
            "--plan-db" => opts.plan_db = Some(value("--plan-db")),
            "--cold-windows" => {
                opts.cold_windows = value("--cold-windows").parse().expect("window count")
            }
            "--gate-cold-start" => opts.gate_cold_start = true,
            "--shards" => opts.shards = value("--shards").parse().expect("shard count"),
            "--idle-conns" => {
                opts.idle_conns = value("--idle-conns").parse().expect("connection count")
            }
            "--gate-scaling" => opts.gate_scaling = true,
            "--isa" => {
                let name = value("--isa");
                opts.isa =
                    VectorIsa::by_name(&name).unwrap_or_else(|| panic!("unknown ISA {name:?}"));
            }
            "--help" | "-h" => {
                println!(
                    "loadgen [--clients N] [--requests N] [--threads N] [--window-us N]\n\
                     \x20       [--queue N] [--max-batch N] [--tcp] [--gate-throughput]\n\
                     \x20       [--report FILE] [--rate-window SECS] [--bench-json FILE]\n\
                     \x20       [--cold-start] [--shapes N] [--plan-db FILE] [--cold-windows N]\n\
                     \x20       [--gate-cold-start] [--isa NAME]\n\
                     \x20       [--shards N] [--idle-conns N] [--gate-scaling]"
                );
                std::process::exit(0);
            }
            other => panic!("unknown argument {other}"),
        }
    }
    opts
}

/// Per-client tally, merged after the run.
#[derive(Default)]
struct ClientOutcome {
    /// `(shape index, latency ns)` per completed request.
    latencies: Vec<(usize, u64)>,
    ok: u64,
    rejected: u64,
}

/// What one run of the workload produced.
struct RunOutcome {
    issued: u64,
    ok: u64,
    rejected: u64,
    wall: Duration,
    latencies: Vec<(usize, u64)>,
    stats: smm_serve::ServeStats,
    /// Telemetry snapshot taken right after the drive finished, while
    /// the rate window still covers the run.
    telemetry: TelemetryReport,
}

fn request_for(shape: usize, seed: u64) -> GemmRequest<f32> {
    let (m, n, k) = SHAPES[shape];
    // Deterministic but varied content; correctness is spot-checked
    // against the analytic value of an all-ones x scaled product.
    let scale = 1.0 + (seed % 7) as f32;
    GemmRequest::new(m, n, k, vec![scale; m * k], vec![1.0; k * n])
}

fn check_result(shape: usize, seed: u64, c: &[f32]) {
    let (_, _, k) = SHAPES[shape];
    let scale = 1.0 + (seed % 7) as f32;
    let want = scale * k as f32;
    assert!(
        c.iter().all(|&v| (v - want).abs() < 1e-3),
        "wrong result for shape {shape} seed {seed}: got {}, want {want}",
        c[0]
    );
}

/// Drive the closed-loop clients against a server and account every
/// request. `call` is the per-client transport (in-proc or TCP).
fn drive<T: Send>(
    opts: &Options,
    mut make_transport: impl FnMut() -> T + Send,
    call: impl Fn(&mut T, GemmRequest<f32>) -> Result<Vec<f32>, Rejected> + Send + Sync,
) -> (Vec<(usize, u64)>, u64, u64, Duration) {
    let outcomes = Mutex::new(Vec::new());
    let transports: Vec<T> = (0..opts.clients).map(|_| make_transport()).collect();
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for (id, mut transport) in transports.into_iter().enumerate() {
            let outcomes = &outcomes;
            let call = &call;
            s.spawn(move || {
                let mut out = ClientOutcome::default();
                for i in 0..opts.requests {
                    let shape = (id + i) % SHAPES.len();
                    let seed = (id * 10_007 + i) as u64;
                    let req = request_for(shape, seed);
                    let t = Instant::now();
                    match call(&mut transport, req) {
                        Ok(c) => {
                            out.latencies.push((shape, t.elapsed().as_nanos() as u64));
                            check_result(shape, seed, &c);
                            out.ok += 1;
                        }
                        Err(
                            Rejected::QueueFull { .. }
                            | Rejected::DeadlineExceeded
                            | Rejected::ShuttingDown,
                        ) => out.rejected += 1,
                        Err(other) => panic!("client {id}: unexpected rejection: {other}"),
                    }
                }
                outcomes.lock().unwrap().push(out);
            });
        }
    });
    let wall = t0.elapsed();
    let merged = outcomes.into_inner().unwrap();
    let ok = merged.iter().map(|o| o.ok).sum();
    let rejected = merged.iter().map(|o| o.rejected).sum();
    let latencies = merged.into_iter().flat_map(|o| o.latencies).collect();
    (latencies, ok, rejected, wall)
}

fn run_workload(opts: &Options) -> RunOutcome {
    // Loadgen owns the runtimes (one per shard) so the serving layer
    // records into telemetry registries whose rate window matches
    // `--rate-window`.
    let smms: Vec<Arc<Smm<f32>>> = (0..opts.shards.max(1))
        .map(|_| {
            Arc::new(
                Smm::<f32>::builder()
                    .threads(opts.threads)
                    .telemetry(true)
                    .rate_window(opts.rate_window)
                    .build(),
            )
        })
        .collect();
    // Fleet telemetry: every shard's report absorbed into one, exactly
    // what the STATS opcode serves for a sharded server.
    let fleet_telemetry = |smms: &[Arc<Smm<f32>>]| {
        let mut merged = smms[0].stats_report();
        for smm in &smms[1..] {
            merged.absorb(&smm.stats_report());
        }
        merged
    };
    let server = Server::<f32>::builder()
        .smms(smms.clone())
        .queue_capacity(opts.queue_capacity)
        .coalesce_window(opts.window)
        .max_batch(opts.max_batch)
        .build();
    let issued = (opts.clients * opts.requests) as u64;
    if opts.tcp {
        let tcp = TcpServer::bind(server, ("127.0.0.1", 0)).expect("bind loopback");
        let addr = tcp.local_addr();
        // Held open and silent for the whole run: exercises the
        // multiplexed front end's parked-connection path.
        let flood: Vec<std::net::TcpStream> = (0..opts.idle_conns)
            .map(|_| std::net::TcpStream::connect(addr).expect("idle connection"))
            .collect();
        let (latencies, ok, rejected, wall) = drive(
            opts,
            || TcpClient::connect(addr).expect("connect"),
            |client, req| client.call(&req),
        );
        let telemetry = fleet_telemetry(&smms);
        drop(flood);
        let stats = tcp.shutdown();
        RunOutcome {
            issued,
            ok,
            rejected,
            wall,
            latencies,
            stats,
            telemetry,
        }
    } else {
        let client = server.client();
        let (latencies, ok, rejected, wall) = drive(
            opts,
            || client.clone(),
            |client, req| client.submit(req).and_then(|t| t.wait()),
        );
        let telemetry = fleet_telemetry(&smms);
        let stats = server.shutdown();
        RunOutcome {
            issued,
            ok,
            rejected,
            wall,
            latencies,
            stats,
            telemetry,
        }
    }
}

/// Uniform multi-shape workload for `--gate-scaling`: eight small
/// shapes whose shape hashes spread two-per-shard at four shards, so
/// each shard coalesces its own shapes' windows concurrently while the
/// single-shard baseline serializes all eight behind one dispatcher.
const SCALING_SHAPES: [(usize, usize, usize); 8] = [
    (8, 8, 8),
    (16, 16, 16),
    (20, 20, 20),
    (32, 32, 4),
    (4, 32, 8),
    (16, 8, 4),
    (6, 6, 6),
    (12, 12, 12),
];

/// One side of the `--gate-scaling` comparison.
struct ScalingRun {
    req_per_sec: f64,
    p99_ns: u64,
    stolen: u64,
    spilled: u64,
}

/// Serve the uniform [`SCALING_SHAPES`] workload over TCP through
/// `shards` runtime shards, under the `--idle-conns` flood, and
/// measure aggregate throughput and exact p99 latency.
fn scaling_run(opts: &Options, shards: usize) -> ScalingRun {
    let smms: Vec<Arc<Smm<f32>>> = (0..shards)
        .map(|_| Arc::new(Smm::<f32>::builder().threads(opts.threads).build()))
        .collect();
    let server = Server::<f32>::builder()
        .smms(smms)
        .queue_capacity(opts.queue_capacity)
        .coalesce_window(opts.window)
        .max_batch(opts.max_batch)
        .build();
    let tcp = TcpServer::bind(server, ("127.0.0.1", 0)).expect("bind loopback");
    let addr = tcp.local_addr();
    // Both sides of the comparison run under the same idle-connection
    // flood, so the gate measures sharding, not sweep overhead.
    let flood: Vec<std::net::TcpStream> = (0..opts.idle_conns)
        .map(|_| std::net::TcpStream::connect(addr).expect("idle connection"))
        .collect();

    let latencies = Mutex::new(Vec::with_capacity(opts.clients * opts.requests));
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for id in 0..opts.clients {
            let latencies = &latencies;
            s.spawn(move || {
                let mut client = TcpClient::connect(addr).expect("connect");
                let mut local = Vec::with_capacity(opts.requests);
                // Each client is pinned to one shape: a closed loop
                // holds one request in flight per client, so every
                // shape has at most `clients / 8` outstanding requests
                // and coalesced groups stay the same size on both
                // sides of the comparison — the gate then measures the
                // dispatchers' window rate, not batching luck.
                for _ in 0..opts.requests {
                    let (m, n, k) = SCALING_SHAPES[id % SCALING_SHAPES.len()];
                    let req = GemmRequest::new(m, n, k, vec![1.0f32; m * k], vec![1.0f32; k * n]);
                    let t = Instant::now();
                    let c = client.call(&req).expect("scaling request");
                    local.push(t.elapsed().as_nanos() as u64);
                    assert!(
                        (c[0] - k as f32).abs() < 1e-3,
                        "wrong result for {m}x{n}x{k}: got {}, want {k}",
                        c[0]
                    );
                }
                latencies.lock().unwrap().extend(local);
            });
        }
    });
    let wall = t0.elapsed();
    drop(flood);
    let stats = tcp.shutdown();
    let latencies = latencies.into_inner().unwrap();
    assert_eq!(
        latencies.len(),
        opts.clients * opts.requests,
        "scaling run dropped replies"
    );
    ScalingRun {
        req_per_sec: latencies.len() as f64 / wall.as_secs_f64(),
        p99_ns: p99_ns(&latencies),
        stolen: stats.stolen,
        spilled: stats.spilled,
    }
}

/// The `"scaling"` bench JSON written by `--gate-scaling --bench-json`.
fn scaling_json(opts: &Options, sharded: usize, base: &ScalingRun, multi: &ScalingRun) -> String {
    let side = |label: &str, shards: usize, run: &ScalingRun| {
        format!(
            "  \"{label}\": {{\"shards\": {shards}, \"req_per_sec\": {:.3}, \
             \"p99_ns\": {}, \"stolen\": {}, \"spilled\": {}}},\n",
            run.req_per_sec, run.p99_ns, run.stolen, run.spilled
        )
    };
    let mut s = String::from("{\n");
    s.push_str("  \"bench\": \"loadgen\",\n");
    s.push_str("  \"mode\": \"scaling\",\n");
    s.push_str(&format!("  \"clients\": {},\n", opts.clients));
    s.push_str(&format!("  \"requests_per_client\": {},\n", opts.requests));
    s.push_str(&format!("  \"idle_conns\": {},\n", opts.idle_conns));
    s.push_str(&side("baseline", 1, base));
    s.push_str(&side("sharded", sharded, multi));
    s.push_str(&format!(
        "  \"speedup\": {:.6},\n",
        multi.req_per_sec / base.req_per_sec
    ));
    s.push_str(&format!(
        "  \"p99_ratio\": {:.6}\n",
        multi.p99_ns as f64 / base.p99_ns.max(1) as f64
    ));
    s.push_str("}\n");
    s
}

/// `--gate-scaling` entry point: the same uniform workload through one
/// shard and through `--shards` shards, best-of-3 each, gated on
/// near-linear aggregate throughput and p99 stability.
fn scaling_main(opts: &Options) {
    let sharded = if opts.shards > 1 { opts.shards } else { 4 };
    let best = |shards: usize| {
        (0..3)
            .map(|_| scaling_run(opts, shards))
            .max_by(|a, b| a.req_per_sec.total_cmp(&b.req_per_sec))
            .expect("three runs")
    };
    let base = best(1);
    let multi = best(sharded);
    let speedup = multi.req_per_sec / base.req_per_sec;
    let p99_ratio = multi.p99_ns as f64 / base.p99_ns.max(1) as f64;

    let mut report = format!(
        "loadgen --gate-scaling: {} clients x {} requests over {} shapes, \
         window {:?}, {} idle connections\n",
        opts.clients,
        opts.requests,
        SCALING_SHAPES.len(),
        opts.window,
        opts.idle_conns,
    );
    report.push_str(&format!(
        "  1 shard   : {:>9.0} req/s, p99 {:>9.1} us\n",
        base.req_per_sec,
        base.p99_ns as f64 / 1e3
    ));
    report.push_str(&format!(
        "  {sharded} shards  : {:>9.0} req/s, p99 {:>9.1} us ({} stolen, {} spilled)\n",
        multi.req_per_sec,
        multi.p99_ns as f64 / 1e3,
        multi.stolen,
        multi.spilled,
    ));
    report.push_str(&format!(
        "  speedup {speedup:.2}x (gate >= 3.00x), p99 ratio {p99_ratio:.3} (gate <= 1.25)\n"
    ));
    print!("{report}");

    assert!(
        speedup >= 3.0,
        "scaling gate: {sharded} shards reached {:.0} req/s, only {speedup:.2}x the \
         1-shard {:.0} req/s (gate >= 3.0x)",
        multi.req_per_sec,
        base.req_per_sec,
    );
    assert!(
        p99_ratio <= 1.25,
        "scaling gate: sharded p99 {:.1} us is {p99_ratio:.3}x the 1-shard p99 {:.1} us \
         (gate <= 1.25x)",
        multi.p99_ns as f64 / 1e3,
        base.p99_ns as f64 / 1e3,
    );
    println!("loadgen: scaling gates passed");

    if let Some(path) = &opts.report {
        let mut f = std::fs::File::create(path).expect("create report file");
        f.write_all(report.as_bytes()).expect("write report");
        println!("loadgen: report written to {path}");
    }
    if let Some(path) = &opts.bench_json {
        let mut f = std::fs::File::create(path).expect("create bench json");
        f.write_all(scaling_json(opts, sharded, &base, &multi).as_bytes())
            .expect("write bench json");
        println!("loadgen: bench json written to {path}");
    }
}

/// xorshift64* — deterministic shape generator for `--cold-start`
/// (same generator the plan-database fuzz harness uses).
struct XorShift(u64);

impl XorShift {
    fn new(seed: u64) -> Self {
        XorShift(seed.max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform in `[0, 1)`.
    fn unit(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// `count` distinct log-uniform shapes in `[COLD_DIM_MIN, COLD_DIM_MAX]³`,
/// fixed seed so every run (and both sides of a CI comparison) sees the
/// identical workload.
fn cold_start_shapes(count: usize) -> Vec<(usize, usize, usize)> {
    let mut rng = XorShift::new(42);
    let (lo, hi) = ((COLD_DIM_MIN as f64).ln(), (COLD_DIM_MAX as f64).ln());
    let mut seen = std::collections::HashSet::new();
    let mut shapes = Vec::with_capacity(count);
    while shapes.len() < count {
        let dim = |rng: &mut XorShift| {
            let d = (lo + rng.unit() * (hi - lo)).exp().round() as usize;
            d.clamp(COLD_DIM_MIN, COLD_DIM_MAX)
        };
        let shape = (dim(&mut rng), dim(&mut rng), dim(&mut rng));
        if seen.insert(shape) {
            shapes.push(shape);
        }
    }
    shapes
}

/// What one `--cold-start` run produced: the per-window p99 ladder
/// (window 0 is the cold pass) plus the tuner's lookup accounting.
struct ColdStartOutcome {
    shapes: usize,
    window_p99_ns: Vec<u64>,
    steady_p99_ns: u64,
    cold_over_steady: f64,
    time_to_steady_secs: f64,
    tuner: smm_core::TunerStats,
}

/// Independent cold runtimes combined per shape: a cold pass is 1000
/// one-shot measurements, and a single scheduler preemption or
/// page-fault burst in the top percentile would decide the gate. Each
/// replica is a fresh [`Smm`], genuinely cold for every shape, so the
/// per-shape *minimum* across replicas keeps the plan-path cost (paid
/// in all of them) while shedding uncorrelated spikes (paid in one).
/// Five replicas roughly match the trimming the steady side gets from
/// its warm windows; a cold pass costs milliseconds.
const COLD_REPLICAS: usize = 5;

/// Exact p99 of a sample set (the shared `LatencyHistogram` is
/// log2-bucketed, far too coarse for a 10% cold-vs-steady comparison).
fn p99_ns(samples: &[u64]) -> u64 {
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    sorted[(sorted.len() * 99).div_ceil(100).max(1) - 1]
}

/// Build the cold-start runtime: plan cache empty, two-stage source
/// attached. The cache is bounded well above the working set — ample
/// enough that warm windows measure pure cache hits (no capacity
/// evictions), bounded so the shards pre-allocate and never rehash
/// mid-pass. Single worker: the workload is a closed loop of small
/// GEMMs measured one call at a time, and pool dispatch jitter would
/// drown the plan-path cost this mode exists to expose.
fn cold_start_smm(opts: &Options) -> Smm<f32> {
    let builder = Smm::<f32>::builder()
        .threads(1)
        .telemetry(true)
        .isa(opts.isa)
        .cache_capacity(4 * opts.shapes)
        .persist_on_drop(false);
    match &opts.plan_db {
        Some(path) => builder
            .plan_db(path)
            .unwrap_or_else(|e| panic!("--plan-db {path}: {e}"))
            .build(),
        // Cold baseline: an empty database forces every shape through
        // online refinement, the worst case the offline sweep removes.
        None => builder
            .plan_db_handle(PlanDb::new(opts.isa))
            .expect("empty db matches the configured ISA")
            .online_refine(true)
            .build(),
    }
}

/// Drive the many-shape workload directly against the [`Smm`] runtime:
/// one cold pass over every shape (every lookup walks the two-stage
/// ladder) followed by `--cold-windows` warm passes over the same
/// shapes. Both sides of the gate use noise-trimmed estimators: the
/// cold window's per-shape latency is the minimum across
/// [`COLD_REPLICAS`] fresh runtimes, steady state's is the minimum
/// across the warm windows, and p99 is taken over those per-shape
/// minima.
fn run_cold_start(opts: &Options) -> ColdStartOutcome {
    let shapes = cold_start_shapes(opts.shapes);

    let max_elems = COLD_DIM_MAX * COLD_DIM_MAX;
    let a = vec![1.0f32; max_elems];
    let b = vec![1.0f32; max_elems];
    let mut c = vec![0.0f32; max_elems];

    // One measured pass over every shape; samples stay aligned with
    // `shapes` so passes can be combined per shape.
    let pass = |smm: &Smm<f32>, c: &mut Vec<f32>| {
        let mut samples = Vec::with_capacity(shapes.len());
        let t0 = Instant::now();
        for &(m, n, k) in &shapes {
            let t = Instant::now();
            smm.gemm(
                1.0,
                MatRef::from_slice(&a[..m * k], m, k, m),
                MatRef::from_slice(&b[..k * n], k, n, k),
                0.0,
                MatMut::from_slice(&mut c[..m * n], m, n, m),
            );
            samples.push(t.elapsed().as_nanos() as u64);
            assert!(
                (c[0] - k as f32).abs() < 1e-3,
                "wrong result for {m}x{n}x{k}: got {}, want {k}",
                c[0]
            );
        }
        (samples, t0.elapsed().as_secs_f64())
    };

    let mut cold_min = vec![u64::MAX; shapes.len()];
    let mut cold_wall = 0.0;
    let mut smm = None;
    for _rep in 0..COLD_REPLICAS {
        let fresh = cold_start_smm(opts);
        // Throwaway call outside the measured workload: warms the
        // worker and packing arenas, so the cold window measures
        // plan-path cold start, not process start-up.
        fresh.gemm(
            1.0,
            MatRef::from_slice(&a[..9], 3, 3, 3),
            MatRef::from_slice(&b[..9], 3, 3, 3),
            0.0,
            MatMut::from_slice(&mut c[..9], 3, 3, 3),
        );
        let (samples, wall) = pass(&fresh, &mut c);
        for (acc, s) in cold_min.iter_mut().zip(&samples) {
            *acc = (*acc).min(*s);
        }
        cold_wall = wall;
        smm = Some(fresh);
    }
    let smm = smm.expect("at least one cold replica");

    let mut window_p99_ns = vec![p99_ns(&cold_min)];
    let mut window_wall = vec![cold_wall];
    let mut warm_min = vec![u64::MAX; shapes.len()];
    for _window in 0..opts.cold_windows {
        let (samples, wall) = pass(&smm, &mut c);
        for (acc, s) in warm_min.iter_mut().zip(&samples) {
            *acc = (*acc).min(*s);
        }
        window_p99_ns.push(p99_ns(&samples));
        window_wall.push(wall);
    }

    let steady_p99_ns = p99_ns(&warm_min).max(1);
    let cold_over_steady = window_p99_ns[0] as f64 / steady_p99_ns as f64;
    // Wall time until the end of the first window whose p99 is within
    // 10% of steady state. The cold window itself may already qualify;
    // raw warm windows can stay above the trimmed steady estimate all
    // run, in which case the whole run counts.
    let mut time_to_steady_secs = window_wall.iter().sum();
    let mut acc = 0.0;
    for (i, &wall) in window_wall.iter().enumerate() {
        acc += wall;
        if window_p99_ns[i] as f64 <= 1.10 * steady_p99_ns as f64 {
            time_to_steady_secs = acc;
            break;
        }
    }

    ColdStartOutcome {
        shapes: shapes.len(),
        window_p99_ns,
        steady_p99_ns,
        cold_over_steady,
        time_to_steady_secs,
        tuner: smm.tuner_stats(),
    }
}

fn render_cold_start_report(opts: &Options, run: &ColdStartOutcome) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "loadgen --cold-start: {} distinct shapes in [{COLD_DIM_MIN}, {COLD_DIM_MAX}]³ on {} \
         ({}), {} warm windows\n",
        run.shapes,
        opts.isa.name,
        match &opts.plan_db {
            Some(path) => format!("plan db {path}"),
            None => "no plan db, online refinement".to_string(),
        },
        opts.cold_windows,
    ));
    for (i, &p99) in run.window_p99_ns.iter().enumerate() {
        let label = if i == 0 {
            "cold, min of replicas"
        } else {
            "warm"
        };
        out.push_str(&format!(
            "  window {i} ({label}): p99 {:>9.1} us\n",
            p99 as f64 / 1e3
        ));
    }
    let t = &run.tuner;
    out.push_str(&format!(
        "  steady p99 {:.1} us (min across warm windows); cold/steady {:.3}x, \
         time to steady {:.3} s\n",
        run.steady_p99_ns as f64 / 1e3,
        run.cold_over_steady,
        run.time_to_steady_secs
    ));
    out.push_str(&format!(
        "  tuner: {} db hits, {} nn matches, {} online refines, {} untuned \
         ({:.1}% db coverage)\n",
        t.db_hits,
        t.nn_matches,
        t.online_refines,
        t.untuned_builds,
        100.0 * t.db_coverage(),
    ));
    out
}

/// The `"cold_start"` block recorded in the bench JSON (`BENCH_serve.json`
/// in CI), alongside the tuner's lookup accounting.
fn cold_start_json(opts: &Options, run: &ColdStartOutcome) -> String {
    let t = &run.tuner;
    let windows: Vec<String> = run.window_p99_ns.iter().map(u64::to_string).collect();
    let mut s = String::from("{\n");
    s.push_str("  \"bench\": \"loadgen\",\n");
    s.push_str("  \"mode\": \"cold-start\",\n");
    s.push_str(&format!("  \"isa\": \"{}\",\n", opts.isa.name));
    s.push_str("  \"cold_start\": {\n");
    s.push_str(&format!("    \"shapes\": {},\n", run.shapes));
    s.push_str(&format!(
        "    \"plan_db\": {},\n",
        match &opts.plan_db {
            Some(path) => format!("\"{path}\""),
            None => "null".to_string(),
        }
    ));
    s.push_str(&format!(
        "    \"window_p99_ns\": [{}],\n",
        windows.join(", ")
    ));
    s.push_str(&format!(
        "    \"first_window_p99_ns\": {},\n",
        run.window_p99_ns[0]
    ));
    s.push_str(&format!("    \"steady_p99_ns\": {},\n", run.steady_p99_ns));
    s.push_str(&format!(
        "    \"cold_over_steady\": {:.6},\n",
        run.cold_over_steady
    ));
    s.push_str(&format!(
        "    \"time_to_steady_secs\": {:.6},\n",
        run.time_to_steady_secs
    ));
    s.push_str(&format!("    \"db_hits\": {},\n", t.db_hits));
    s.push_str(&format!("    \"nn_matches\": {},\n", t.nn_matches));
    s.push_str(&format!("    \"online_refines\": {},\n", t.online_refines));
    s.push_str(&format!("    \"untuned_builds\": {},\n", t.untuned_builds));
    s.push_str(&format!("    \"db_coverage\": {:.6}\n", t.db_coverage()));
    s.push_str("  }\n}\n");
    s
}

/// `--cold-start` entry point: run, report, gate, write artifacts.
fn cold_start_main(opts: &Options) {
    let run = run_cold_start(opts);
    let report = render_cold_start_report(opts, &run);
    print!("{report}");

    if opts.gate_cold_start {
        assert!(
            opts.plan_db.is_some(),
            "--gate-cold-start needs --plan-db: the gate certifies the offline database, \
             not the online-refinement baseline"
        );
        // Gate A: the first (cold) window's p99 lands within 10% of
        // steady state — the plan database absorbs the cold start.
        assert!(
            run.cold_over_steady <= 1.10,
            "cold-start gate: cold p99 {:.1} us is {:.3}x steady {:.1} us (limit 1.10x)",
            run.window_p99_ns[0] as f64 / 1e3,
            run.cold_over_steady,
            run.steady_p99_ns as f64 / 1e3,
        );
        // Gate B: the database (exact hits + nearest-neighbour matches)
        // answered at least 95% of plan lookups.
        let t = &run.tuner;
        assert!(
            t.db_coverage() >= 0.95,
            "cold-start gate: db coverage {:.3} < 0.95 ({} hits + {} nn of {} lookups)",
            t.db_coverage(),
            t.db_hits,
            t.nn_matches,
            t.lookups(),
        );
        println!("loadgen: cold-start gates passed");
    }

    if let Some(path) = &opts.report {
        let mut f = std::fs::File::create(path).expect("create report file");
        f.write_all(report.as_bytes()).expect("write report");
        println!("loadgen: report written to {path}");
    }
    if let Some(path) = &opts.bench_json {
        let mut f = std::fs::File::create(path).expect("create bench json");
        f.write_all(cold_start_json(opts, &run).as_bytes())
            .expect("write bench json");
        println!("loadgen: bench json written to {path}");
    }
}

fn gflops(latencies: &[(usize, u64)], wall: Duration) -> f64 {
    let flops: f64 = latencies
        .iter()
        .map(|&(s, _)| {
            let (m, n, k) = SHAPES[s];
            2.0 * m as f64 * n as f64 * k as f64
        })
        .sum();
    flops / wall.as_secs_f64() / 1e9
}

fn render_report(opts: &Options, run: &RunOutcome) -> String {
    let mut out = String::new();
    let mode = if opts.tcp { "tcp" } else { "in-process" };
    out.push_str(&format!(
        "loadgen: {} clients x {} requests ({mode}), window {:?}, {} worker threads, \
         {} shard(s)\n",
        opts.clients,
        opts.requests,
        opts.window,
        opts.threads,
        opts.shards.max(1)
    ));
    out.push_str(&format!(
        "  issued {}, completed {}, rejected {} in {:.3} s -> {:.2} Gflops achieved\n",
        run.issued,
        run.ok,
        run.rejected,
        run.wall.as_secs_f64(),
        gflops(&run.latencies, run.wall),
    ));
    out.push_str(&format!("  {}\n", run.stats));
    let r = &run.telemetry.rate;
    out.push_str(&format!(
        "  windowed rate ({:.1} s window, {:.1} s covered): {:.0} req/s, {:.2} Gflops/s, \
         p99 now {:.1} us, p99 trend {:+.1} us/s\n",
        r.window_secs,
        r.covered_secs,
        r.req_per_sec,
        r.gflops_per_sec,
        r.p99_now_ns as f64 / 1e3,
        r.p99_trend_ns_per_sec / 1e3,
    ));
    out.push_str("  per-shape latency (closed loop, includes queueing):\n");
    for (idx, &(m, n, k)) in SHAPES.iter().enumerate() {
        let mut hist = LatencyHistogram::new();
        let mut count = 0u64;
        for &(s, ns) in &run.latencies {
            if s == idx {
                hist.record(ns);
                count += 1;
            }
        }
        if count == 0 {
            continue;
        }
        out.push_str(&format!(
            "    {m:>3}x{n:<3}x{k:<3} n={count:<6} p50 {:>8.1} us   p99 {:>8.1} us\n",
            hist.quantile(0.50) as f64 / 1e3,
            hist.quantile(0.99) as f64 / 1e3,
        ));
    }
    out
}

/// Machine-readable run summary (`--bench-json`), consumed by the CI
/// serve job. Hand-rolled JSON, same as the rest of the workspace.
fn bench_json(opts: &Options, run: &RunOutcome) -> String {
    let mut s = String::from("{\n");
    s.push_str("  \"bench\": \"loadgen\",\n");
    s.push_str(&format!(
        "  \"mode\": \"{}\",\n",
        if opts.tcp { "tcp" } else { "in-process" }
    ));
    s.push_str(&format!("  \"clients\": {},\n", opts.clients));
    s.push_str(&format!("  \"shards\": {},\n", opts.shards.max(1)));
    s.push_str(&format!("  \"requests_per_client\": {},\n", opts.requests));
    s.push_str(&format!("  \"issued\": {},\n", run.issued));
    s.push_str(&format!("  \"completed\": {},\n", run.ok));
    s.push_str(&format!("  \"rejected\": {},\n", run.rejected));
    s.push_str(&format!(
        "  \"wall_secs\": {:.6},\n",
        run.wall.as_secs_f64()
    ));
    s.push_str(&format!(
        "  \"achieved_gflops\": {:.6},\n",
        gflops(&run.latencies, run.wall)
    ));
    let r = &run.telemetry.rate;
    s.push_str(&format!(
        "  \"rate\": {{\"window_secs\": {:.6}, \"covered_secs\": {:.6}, \
         \"req_per_sec\": {:.3}, \"gflops_per_sec\": {:.6}, \"mean_ns\": {}, \
         \"p99_now_ns\": {}, \"p99_trend_ns_per_sec\": {:.3}, \"live_slots\": {}}},\n",
        r.window_secs,
        r.covered_secs,
        r.req_per_sec,
        r.gflops_per_sec,
        r.mean_ns,
        r.p99_now_ns,
        r.p99_trend_ns_per_sec,
        r.live_slots,
    ));
    s.push_str("  \"shapes\": [\n");
    let mut rows = Vec::new();
    for (idx, &(m, n, k)) in SHAPES.iter().enumerate() {
        let mut hist = LatencyHistogram::new();
        let mut count = 0u64;
        for &(sh, ns) in &run.latencies {
            if sh == idx {
                hist.record(ns);
                count += 1;
            }
        }
        if count == 0 {
            continue;
        }
        rows.push(format!(
            "    {{\"m\": {m}, \"n\": {n}, \"k\": {k}, \"count\": {count}, \
             \"p50_ns\": {}, \"p99_ns\": {}}}",
            hist.quantile(0.50),
            hist.quantile(0.99)
        ));
    }
    s.push_str(&rows.join(",\n"));
    s.push_str("\n  ]\n}\n");
    s
}

fn main() {
    let opts = parse_args();
    if opts.gate_scaling {
        assert!(opts.clients > 0 && opts.requests > 0, "empty workload");
        scaling_main(&opts);
        return;
    }
    if opts.cold_start {
        assert!(opts.shapes > 0 && opts.cold_windows > 0, "empty workload");
        cold_start_main(&opts);
        return;
    }
    assert!(opts.clients > 0 && opts.requests > 0, "empty workload");

    let run = run_workload(&opts);
    let mut report = render_report(&opts, &run);

    // Gate 1: exactly-once accounting. Every issued request came back
    // as a result or a typed rejection; the server's own counters must
    // agree (nothing dropped, nothing double-counted).
    assert_eq!(
        run.ok + run.rejected,
        run.issued,
        "dropped or duplicated replies"
    );
    assert_eq!(
        run.stats.completed, run.ok,
        "server/client completion split"
    );
    assert_eq!(run.stats.submitted, run.stats.completed + run.stats.expired);

    // Gate 2: clean drain.
    assert_eq!(run.stats.queue_depth, 0, "requests stranded after drain");

    // Gate 3 (opt-in; timing-sensitive, so off in CI smoke): the
    // coalescing batcher beats one-request-per-call on this
    // batch-heavy workload. Both sides run with a zero window — in a
    // closed loop, waiting can only lose; what is gated is the
    // batching itself, i.e. grouping already-queued same-shape
    // requests into one `gemm_batch` dispatch versus dispatching each
    // request alone. Best-of-3 each to reject scheduler noise.
    if opts.gate_throughput {
        let best = |o: &Options| {
            (0..3)
                .map(|_| {
                    let r = run_workload(o);
                    r.ok as f64 / r.wall.as_secs_f64()
                })
                .fold(0.0f64, f64::max)
        };
        let coalesced = best(&Options {
            window: Duration::ZERO,
            ..opts.clone()
        });
        let uncoalesced = best(&Options {
            window: Duration::ZERO,
            max_batch: 1,
            ..opts.clone()
        });
        report.push_str(&format!(
            "  throughput: coalesced {coalesced:.0} req/s vs one-per-call {uncoalesced:.0} req/s \
             ({:.2}x)\n",
            coalesced / uncoalesced
        ));
        assert!(
            coalesced > uncoalesced,
            "coalescing lost: {coalesced:.0} req/s vs {uncoalesced:.0} req/s one-per-call"
        );
    }

    print!("{report}");
    println!("loadgen: all gates passed");
    if let Some(path) = &opts.report {
        let mut f = std::fs::File::create(path).expect("create report file");
        f.write_all(report.as_bytes()).expect("write report");
        println!("loadgen: report written to {path}");
    }
    if let Some(path) = &opts.bench_json {
        let mut f = std::fs::File::create(path).expect("create bench json");
        f.write_all(bench_json(&opts, &run).as_bytes())
            .expect("write bench json");
        println!("loadgen: bench json written to {path}");
    }
}
