//! Closed-loop load generator for the `smm-serve` serving layer.
//!
//! Spawns N concurrent clients, each submitting requests back-to-back
//! (closed loop: one in flight per client) against an in-process
//! [`Server`] or, with `--tcp`, against a loopback [`TcpServer`] over
//! the wire protocol. Reports per-shape p50/p99 latency and achieved
//! Gflops, and **gates** on serving correctness:
//!
//! * every issued request is answered exactly once (a result or a
//!   typed rejection — never a drop, never a double reply);
//! * the server drains cleanly (zero queued requests after shutdown);
//! * with `--gate-throughput`, the coalescing batcher must beat the
//!   same workload served one-request-per-call.
//!
//! Exit status is non-zero on any gate failure, so CI can run this
//! binary directly.
//!
//! ```sh
//! cargo run --release -p smm-bench --bin loadgen -- \
//!     --clients 8 --requests 200 --tcp --report latency.txt
//! ```

use std::io::Write as _;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use smm_core::{LatencyHistogram, Smm, TelemetryReport, DEFAULT_RATE_WINDOW};
use smm_serve::{GemmRequest, Rejected, Server, TcpClient, TcpServer};

/// The workload mix: the paper's small-GEMM regime, deliberately
/// batch-heavy (few distinct shapes, many requests per shape).
const SHAPES: [(usize, usize, usize); 3] = [(8, 8, 8), (16, 16, 16), (4, 32, 8)];

#[derive(Clone)]
struct Options {
    clients: usize,
    requests: usize,
    threads: usize,
    window: Duration,
    queue_capacity: usize,
    max_batch: usize,
    tcp: bool,
    gate_throughput: bool,
    report: Option<String>,
    rate_window: Duration,
    bench_json: Option<String>,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            clients: 8,
            requests: 200,
            threads: 4,
            window: Duration::from_micros(200),
            queue_capacity: 512,
            max_batch: 64,
            tcp: false,
            gate_throughput: false,
            report: None,
            rate_window: DEFAULT_RATE_WINDOW,
            bench_json: None,
        }
    }
}

fn parse_args() -> Options {
    let mut opts = Options::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |what: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{what} expects a value"))
        };
        match arg.as_str() {
            "--clients" => opts.clients = value("--clients").parse().expect("client count"),
            "--requests" => opts.requests = value("--requests").parse().expect("request count"),
            "--threads" => opts.threads = value("--threads").parse().expect("thread count"),
            "--window-us" => {
                opts.window = Duration::from_micros(value("--window-us").parse().expect("micros"))
            }
            "--queue" => opts.queue_capacity = value("--queue").parse().expect("capacity"),
            "--max-batch" => opts.max_batch = value("--max-batch").parse().expect("batch size"),
            "--tcp" => opts.tcp = true,
            "--gate-throughput" => opts.gate_throughput = true,
            "--report" => opts.report = Some(value("--report")),
            "--rate-window" => {
                let secs: f64 = value("--rate-window").parse().expect("seconds");
                assert!(secs > 0.0, "--rate-window must be positive");
                opts.rate_window = Duration::from_secs_f64(secs);
            }
            "--bench-json" => opts.bench_json = Some(value("--bench-json")),
            "--help" | "-h" => {
                println!(
                    "loadgen [--clients N] [--requests N] [--threads N] [--window-us N]\n\
                     \x20       [--queue N] [--max-batch N] [--tcp] [--gate-throughput]\n\
                     \x20       [--report FILE] [--rate-window SECS] [--bench-json FILE]"
                );
                std::process::exit(0);
            }
            other => panic!("unknown argument {other}"),
        }
    }
    opts
}

/// Per-client tally, merged after the run.
#[derive(Default)]
struct ClientOutcome {
    /// `(shape index, latency ns)` per completed request.
    latencies: Vec<(usize, u64)>,
    ok: u64,
    rejected: u64,
}

/// What one run of the workload produced.
struct RunOutcome {
    issued: u64,
    ok: u64,
    rejected: u64,
    wall: Duration,
    latencies: Vec<(usize, u64)>,
    stats: smm_serve::ServeStats,
    /// Telemetry snapshot taken right after the drive finished, while
    /// the rate window still covers the run.
    telemetry: TelemetryReport,
}

fn request_for(shape: usize, seed: u64) -> GemmRequest<f32> {
    let (m, n, k) = SHAPES[shape];
    // Deterministic but varied content; correctness is spot-checked
    // against the analytic value of an all-ones x scaled product.
    let scale = 1.0 + (seed % 7) as f32;
    GemmRequest::new(m, n, k, vec![scale; m * k], vec![1.0; k * n])
}

fn check_result(shape: usize, seed: u64, c: &[f32]) {
    let (_, _, k) = SHAPES[shape];
    let scale = 1.0 + (seed % 7) as f32;
    let want = scale * k as f32;
    assert!(
        c.iter().all(|&v| (v - want).abs() < 1e-3),
        "wrong result for shape {shape} seed {seed}: got {}, want {want}",
        c[0]
    );
}

/// Drive the closed-loop clients against a server and account every
/// request. `call` is the per-client transport (in-proc or TCP).
fn drive<T: Send>(
    opts: &Options,
    mut make_transport: impl FnMut() -> T + Send,
    call: impl Fn(&mut T, GemmRequest<f32>) -> Result<Vec<f32>, Rejected> + Send + Sync,
) -> (Vec<(usize, u64)>, u64, u64, Duration) {
    let outcomes = Mutex::new(Vec::new());
    let transports: Vec<T> = (0..opts.clients).map(|_| make_transport()).collect();
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for (id, mut transport) in transports.into_iter().enumerate() {
            let outcomes = &outcomes;
            let call = &call;
            s.spawn(move || {
                let mut out = ClientOutcome::default();
                for i in 0..opts.requests {
                    let shape = (id + i) % SHAPES.len();
                    let seed = (id * 10_007 + i) as u64;
                    let req = request_for(shape, seed);
                    let t = Instant::now();
                    match call(&mut transport, req) {
                        Ok(c) => {
                            out.latencies.push((shape, t.elapsed().as_nanos() as u64));
                            check_result(shape, seed, &c);
                            out.ok += 1;
                        }
                        Err(
                            Rejected::QueueFull { .. }
                            | Rejected::DeadlineExceeded
                            | Rejected::ShuttingDown,
                        ) => out.rejected += 1,
                        Err(other) => panic!("client {id}: unexpected rejection: {other}"),
                    }
                }
                outcomes.lock().unwrap().push(out);
            });
        }
    });
    let wall = t0.elapsed();
    let merged = outcomes.into_inner().unwrap();
    let ok = merged.iter().map(|o| o.ok).sum();
    let rejected = merged.iter().map(|o| o.rejected).sum();
    let latencies = merged.into_iter().flat_map(|o| o.latencies).collect();
    (latencies, ok, rejected, wall)
}

fn run_workload(opts: &Options) -> RunOutcome {
    // Loadgen owns the runtime so the serving layer records into a
    // telemetry registry whose rate window matches `--rate-window`.
    let smm = Arc::new(
        Smm::<f32>::builder()
            .threads(opts.threads)
            .telemetry(true)
            .rate_window(opts.rate_window)
            .build(),
    );
    let server = Server::<f32>::builder()
        .smm(Arc::clone(&smm))
        .queue_capacity(opts.queue_capacity)
        .coalesce_window(opts.window)
        .max_batch(opts.max_batch)
        .build();
    let issued = (opts.clients * opts.requests) as u64;
    if opts.tcp {
        let tcp = TcpServer::bind(server, ("127.0.0.1", 0)).expect("bind loopback");
        let addr = tcp.local_addr();
        let (latencies, ok, rejected, wall) = drive(
            opts,
            || TcpClient::connect(addr).expect("connect"),
            |client, req| client.call(&req),
        );
        let telemetry = smm.stats_report();
        let stats = tcp.shutdown();
        RunOutcome {
            issued,
            ok,
            rejected,
            wall,
            latencies,
            stats,
            telemetry,
        }
    } else {
        let client = server.client();
        let (latencies, ok, rejected, wall) = drive(
            opts,
            || client.clone(),
            |client, req| client.submit(req).and_then(|t| t.wait()),
        );
        let telemetry = smm.stats_report();
        let stats = server.shutdown();
        RunOutcome {
            issued,
            ok,
            rejected,
            wall,
            latencies,
            stats,
            telemetry,
        }
    }
}

fn gflops(latencies: &[(usize, u64)], wall: Duration) -> f64 {
    let flops: f64 = latencies
        .iter()
        .map(|&(s, _)| {
            let (m, n, k) = SHAPES[s];
            2.0 * m as f64 * n as f64 * k as f64
        })
        .sum();
    flops / wall.as_secs_f64() / 1e9
}

fn render_report(opts: &Options, run: &RunOutcome) -> String {
    let mut out = String::new();
    let mode = if opts.tcp { "tcp" } else { "in-process" };
    out.push_str(&format!(
        "loadgen: {} clients x {} requests ({mode}), window {:?}, {} worker threads\n",
        opts.clients, opts.requests, opts.window, opts.threads
    ));
    out.push_str(&format!(
        "  issued {}, completed {}, rejected {} in {:.3} s -> {:.2} Gflops achieved\n",
        run.issued,
        run.ok,
        run.rejected,
        run.wall.as_secs_f64(),
        gflops(&run.latencies, run.wall),
    ));
    out.push_str(&format!("  {}\n", run.stats));
    let r = &run.telemetry.rate;
    out.push_str(&format!(
        "  windowed rate ({:.1} s window, {:.1} s covered): {:.0} req/s, {:.2} Gflops/s, \
         p99 now {:.1} us, p99 trend {:+.1} us/s\n",
        r.window_secs,
        r.covered_secs,
        r.req_per_sec,
        r.gflops_per_sec,
        r.p99_now_ns as f64 / 1e3,
        r.p99_trend_ns_per_sec / 1e3,
    ));
    out.push_str("  per-shape latency (closed loop, includes queueing):\n");
    for (idx, &(m, n, k)) in SHAPES.iter().enumerate() {
        let mut hist = LatencyHistogram::new();
        let mut count = 0u64;
        for &(s, ns) in &run.latencies {
            if s == idx {
                hist.record(ns);
                count += 1;
            }
        }
        if count == 0 {
            continue;
        }
        out.push_str(&format!(
            "    {m:>3}x{n:<3}x{k:<3} n={count:<6} p50 {:>8.1} us   p99 {:>8.1} us\n",
            hist.quantile(0.50) as f64 / 1e3,
            hist.quantile(0.99) as f64 / 1e3,
        ));
    }
    out
}

/// Machine-readable run summary (`--bench-json`), consumed by the CI
/// serve job. Hand-rolled JSON, same as the rest of the workspace.
fn bench_json(opts: &Options, run: &RunOutcome) -> String {
    let mut s = String::from("{\n");
    s.push_str("  \"bench\": \"loadgen\",\n");
    s.push_str(&format!(
        "  \"mode\": \"{}\",\n",
        if opts.tcp { "tcp" } else { "in-process" }
    ));
    s.push_str(&format!("  \"clients\": {},\n", opts.clients));
    s.push_str(&format!("  \"requests_per_client\": {},\n", opts.requests));
    s.push_str(&format!("  \"issued\": {},\n", run.issued));
    s.push_str(&format!("  \"completed\": {},\n", run.ok));
    s.push_str(&format!("  \"rejected\": {},\n", run.rejected));
    s.push_str(&format!(
        "  \"wall_secs\": {:.6},\n",
        run.wall.as_secs_f64()
    ));
    s.push_str(&format!(
        "  \"achieved_gflops\": {:.6},\n",
        gflops(&run.latencies, run.wall)
    ));
    let r = &run.telemetry.rate;
    s.push_str(&format!(
        "  \"rate\": {{\"window_secs\": {:.6}, \"covered_secs\": {:.6}, \
         \"req_per_sec\": {:.3}, \"gflops_per_sec\": {:.6}, \"mean_ns\": {}, \
         \"p99_now_ns\": {}, \"p99_trend_ns_per_sec\": {:.3}, \"live_slots\": {}}},\n",
        r.window_secs,
        r.covered_secs,
        r.req_per_sec,
        r.gflops_per_sec,
        r.mean_ns,
        r.p99_now_ns,
        r.p99_trend_ns_per_sec,
        r.live_slots,
    ));
    s.push_str("  \"shapes\": [\n");
    let mut rows = Vec::new();
    for (idx, &(m, n, k)) in SHAPES.iter().enumerate() {
        let mut hist = LatencyHistogram::new();
        let mut count = 0u64;
        for &(sh, ns) in &run.latencies {
            if sh == idx {
                hist.record(ns);
                count += 1;
            }
        }
        if count == 0 {
            continue;
        }
        rows.push(format!(
            "    {{\"m\": {m}, \"n\": {n}, \"k\": {k}, \"count\": {count}, \
             \"p50_ns\": {}, \"p99_ns\": {}}}",
            hist.quantile(0.50),
            hist.quantile(0.99)
        ));
    }
    s.push_str(&rows.join(",\n"));
    s.push_str("\n  ]\n}\n");
    s
}

fn main() {
    let opts = parse_args();
    assert!(opts.clients > 0 && opts.requests > 0, "empty workload");

    let run = run_workload(&opts);
    let mut report = render_report(&opts, &run);

    // Gate 1: exactly-once accounting. Every issued request came back
    // as a result or a typed rejection; the server's own counters must
    // agree (nothing dropped, nothing double-counted).
    assert_eq!(
        run.ok + run.rejected,
        run.issued,
        "dropped or duplicated replies"
    );
    assert_eq!(
        run.stats.completed, run.ok,
        "server/client completion split"
    );
    assert_eq!(run.stats.submitted, run.stats.completed + run.stats.expired);

    // Gate 2: clean drain.
    assert_eq!(run.stats.queue_depth, 0, "requests stranded after drain");

    // Gate 3 (opt-in; timing-sensitive, so off in CI smoke): the
    // coalescing batcher beats one-request-per-call on this
    // batch-heavy workload. Both sides run with a zero window — in a
    // closed loop, waiting can only lose; what is gated is the
    // batching itself, i.e. grouping already-queued same-shape
    // requests into one `gemm_batch` dispatch versus dispatching each
    // request alone. Best-of-3 each to reject scheduler noise.
    if opts.gate_throughput {
        let best = |o: &Options| {
            (0..3)
                .map(|_| {
                    let r = run_workload(o);
                    r.ok as f64 / r.wall.as_secs_f64()
                })
                .fold(0.0f64, f64::max)
        };
        let coalesced = best(&Options {
            window: Duration::ZERO,
            ..opts.clone()
        });
        let uncoalesced = best(&Options {
            window: Duration::ZERO,
            max_batch: 1,
            ..opts.clone()
        });
        report.push_str(&format!(
            "  throughput: coalesced {coalesced:.0} req/s vs one-per-call {uncoalesced:.0} req/s \
             ({:.2}x)\n",
            coalesced / uncoalesced
        ));
        assert!(
            coalesced > uncoalesced,
            "coalescing lost: {coalesced:.0} req/s vs {uncoalesced:.0} req/s one-per-call"
        );
    }

    print!("{report}");
    println!("loadgen: all gates passed");
    if let Some(path) = &opts.report {
        let mut f = std::fs::File::create(path).expect("create report file");
        f.write_all(report.as_bytes()).expect("write report");
        println!("loadgen: report written to {path}");
    }
    if let Some(path) = &opts.bench_json {
        let mut f = std::fs::File::create(path).expect("create bench json");
        f.write_all(bench_json(&opts, &run).as_bytes())
            .expect("write bench json");
        println!("loadgen: bench json written to {path}");
    }
}
