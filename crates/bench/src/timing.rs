//! A minimal wall-clock timing harness for the `benches/` binaries.
//!
//! The container this repository builds in has no registry access, so
//! Criterion is unavailable; this module provides the small subset the
//! benches need — warmup, iteration-count calibration, and median-of
//! -samples reporting — with stable plain-text output (one line per
//! benchmark: `ns/iter` plus an optional derived element throughput).

use std::time::{Duration, Instant};

/// Target measurement time per benchmark.
const TARGET: Duration = Duration::from_millis(200);
/// Warmup time before calibration.
const WARMUP: Duration = Duration::from_millis(50);
/// Number of timed samples; the median is reported.
const SAMPLES: usize = 7;

/// Run `f` repeatedly and return the median ns/iter.
pub fn time_ns(mut f: impl FnMut()) -> f64 {
    // Warmup.
    let start = Instant::now();
    let mut warm_iters = 0u64;
    while start.elapsed() < WARMUP || warm_iters == 0 {
        f();
        warm_iters += 1;
    }
    // Calibrate the per-sample iteration count from the warmup rate.
    let per_iter = start.elapsed().as_nanos() as f64 / warm_iters as f64;
    let iters = ((TARGET.as_nanos() as f64 / SAMPLES as f64 / per_iter.max(1.0)) as u64).max(1);

    let mut samples: Vec<f64> = (0..SAMPLES)
        .map(|_| {
            let t = Instant::now();
            for _ in 0..iters {
                f();
            }
            t.elapsed().as_nanos() as f64 / iters as f64
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[SAMPLES / 2]
}

/// A named group of benchmarks, mirroring Criterion's `benchmark_group`
/// output shape: `group/name  ...  ns/iter`.
pub struct Group {
    name: String,
    elements: Option<u64>,
}

impl Group {
    /// Start a group; its name prefixes every benchmark line.
    pub fn new(name: &str) -> Self {
        println!("== {name} ==");
        Group {
            name: name.to_string(),
            elements: None,
        }
    }

    /// Set the per-iteration element count (e.g. flops); subsequent
    /// benches also report Gelem/s.
    pub fn throughput(&mut self, elements: u64) {
        self.elements = Some(elements);
    }

    /// Time one benchmark and print a result line.
    pub fn bench(&mut self, name: &str, f: impl FnMut()) {
        let ns = time_ns(f);
        let label = format!("{}/{}", self.name, name);
        match self.elements {
            Some(e) => {
                let rate = e as f64 / ns; // elements per ns == Gelem/s
                println!("{label:<48} {ns:>12.1} ns/iter {rate:>9.2} Gelem/s");
            }
            None => println!("{label:<48} {ns:>12.1} ns/iter"),
        }
    }
}
