//! Shared infrastructure for the figure/table regeneration binaries.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the
//! paper (see DESIGN.md §4) on the simulated Phytium 2000+. The
//! helpers here run simulation jobs, convert cycle counts into
//! percent-of-peak efficiencies, and print aligned tables.

#![deny(missing_docs)]

pub mod timing;

use smm_gemm::{SimJob, Strategy};
use smm_model::{MachineSpec, Precision};
use smm_simarch::machine::SimReport;
use smm_simarch::phase::Phase;

/// Result of one simulated GEMM measurement.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Achieved Gflops/s (useful flops over makespan).
    pub gflops: f64,
    /// Percent of the SP peak of the cores used.
    pub efficiency_pct: f64,
    /// Percent of time in each phase (cycle-weighted across cores).
    pub packa_pct: f64,
    /// PackB share.
    pub packb_pct: f64,
    /// Kernel (+ edge) share.
    pub kernel_pct: f64,
    /// Synchronization share.
    pub sync_pct: f64,
    /// Edge-kernel share (subset of kernel time).
    pub edge_pct: f64,
    /// FMA-issue occupancy during kernel phases (Table II "Kernel effic").
    pub kernel_util_pct: f64,
    /// Kernel-only efficiency: useful flops against kernel-phase cycles
    /// summed over cores (Fig. 9's metric — packing excluded).
    pub kernel_only_eff_pct: f64,
    /// Raw simulation report.
    pub report: SimReport,
}

/// Run a simulation job and summarize it for `threads` cores.
pub fn measure(job: SimJob, threads: usize) -> Measurement {
    let spec = MachineSpec::phytium_2000_plus();
    let flops = job.useful_flops;
    let report = job.run();
    let gflops = report.gflops(flops, spec.freq_hz);
    let peak = spec.peak_gflops(Precision::F32, threads.max(1));
    let b = report.total_breakdown();
    let pct = |p: Phase| b.fraction(p) * 100.0;
    let kernel_cycles = report
        .cores
        .iter()
        .map(|c| c.phase_cycles.kernel_combined())
        .sum::<u64>()
        .max(1);
    // Useful FMA-cycles: 2·M·N·K flops at 8 flops/cycle.
    let useful_fma_cycles = flops / 8.0;
    Measurement {
        gflops,
        efficiency_pct: gflops / peak * 100.0,
        packa_pct: pct(Phase::PackA),
        packb_pct: pct(Phase::PackB),
        kernel_pct: pct(Phase::Kernel) + pct(Phase::Edge),
        sync_pct: pct(Phase::Sync),
        edge_pct: pct(Phase::Edge),
        kernel_util_pct: report.kernel_fma_utilization() * 100.0,
        kernel_only_eff_pct: useful_fma_cycles / kernel_cycles as f64 * 100.0,
        report,
    }
}

/// Measure one library strategy on a shape.
pub fn measure_strategy(
    strategy: &dyn Strategy<f32>,
    m: usize,
    n: usize,
    k: usize,
    threads: usize,
) -> Measurement {
    measure(strategy.sim(m, n, k, threads), threads)
}

/// Measure the reference (§IV) implementation on a shape.
pub fn measure_reference(m: usize, n: usize, k: usize, threads: usize) -> Measurement {
    let cfg = smm_core::PlanConfig {
        max_threads: threads,
        ..Default::default()
    };
    let plan = smm_core::SmmPlan::build(m, n, k, &cfg);
    let used = plan.threads();
    measure(smm_core::build_sim(&plan), used)
}

/// Was `--full` (or env `SMM_FULL=1`) requested? Binaries default to a
/// faster sweep that preserves every trend; `--full` reproduces the
/// paper's exact step sizes.
pub fn full_mode() -> bool {
    std::env::args().any(|a| a == "--full") || std::env::var("SMM_FULL").is_ok_and(|v| v == "1")
}

/// Print a header row followed by a separator.
pub fn print_header(cols: &[&str]) {
    let row: Vec<String> = cols.iter().map(|c| format!("{c:>10}")).collect();
    println!("{}", row.join(" "));
    println!("{}", "-".repeat(11 * cols.len()));
}

/// Print one row of right-aligned cells.
pub fn print_row(label: &str, values: &[f64]) {
    let mut row = format!("{label:>10}");
    for v in values {
        row.push_str(&format!(" {v:>10.1}"));
    }
    println!("{row}");
}

/// The sweep positions of Fig. 5(a): square sizes 5..=200.
pub fn fig5a_sizes() -> Vec<usize> {
    let step = if full_mode() { 5 } else { 15 };
    let mut sizes: Vec<usize> = (step..=200).step_by(step).collect();
    if *sizes.last().expect("non-empty sweep") != 200 {
        sizes.push(200);
    }
    sizes
}

/// The small-dimension sweep of Fig. 5(b-d): 2..=40 step 2.
pub fn fig5_small_sizes() -> Vec<usize> {
    let step = if full_mode() { 2 } else { 4 };
    (step..=40).step_by(step).collect()
}

/// Fixed large dimension used when one of M/N/K is swept small.
/// The paper keeps the total working set below the 2 MB L2; with
/// `D = 192`, `A + B + C <= (40·192 + 192² + 40·192) · 4 B ≈ 210 kB`.
pub const FIXED_DIM: usize = 192;

#[cfg(test)]
mod tests {
    use super::*;
    use smm_gemm::BlasfeoStrategy;

    #[test]
    fn measurement_fields_are_consistent() {
        let m = measure_strategy(&BlasfeoStrategy::new(), 32, 32, 32, 1);
        assert!(m.gflops > 0.0);
        assert!(m.efficiency_pct > 0.0 && m.efficiency_pct <= 100.0);
        let total = m.packa_pct + m.packb_pct + m.kernel_pct + m.sync_pct;
        assert!(total <= 100.0 + 1e-9);
        assert!(m.kernel_util_pct > 0.0);
    }

    #[test]
    fn reference_measurement_runs() {
        let m = measure_reference(24, 24, 24, 1);
        assert!(m.efficiency_pct > 10.0);
    }

    #[test]
    fn sweep_helpers_cover_range() {
        let sizes = fig5a_sizes();
        assert_eq!(*sizes.last().unwrap(), 200);
        assert!(fig5_small_sizes().iter().all(|&s| (2..=40).contains(&s)));
    }
}
