//! Plan-generation cost — the "JIT dispatch" overhead of the §IV
//! reference implementation: building a plan from scratch vs hitting
//! the shape cache, and the end-to-end win of caching for repeated
//! tiny GEMMs.

use smm_bench::timing::Group;
use smm_core::{PlanConfig, Smm, SmmPlan};
use smm_gemm::matrix::Mat;

fn main() {
    let mut group = Group::new("smm_plan");
    let cfg = PlanConfig::default();
    group.bench("build_8x8x8", || {
        std::hint::black_box(SmmPlan::build(8, 8, 8, &cfg));
    });
    group.bench("build_200x200x200", || {
        std::hint::black_box(SmmPlan::build(200, 200, 200, &cfg));
    });
    let cfg64 = PlanConfig {
        max_threads: 64,
        ..Default::default()
    };
    group.bench("build_64thread_grid", || {
        std::hint::black_box(SmmPlan::build(128, 1024, 256, &cfg64));
    });

    // Cached lookup path (the steady state of repeated SMMs).
    let smm = Smm::<f32>::new();
    smm.plan(8, 8, 8);
    group.bench("cached_lookup", || {
        std::hint::black_box(smm.plan(8, 8, 8));
    });

    // End-to-end tiny GEMM through the cached path.
    let a = Mat::<f32>::random(8, 8, 1);
    let b = Mat::<f32>::random(8, 8, 2);
    let mut cm = Mat::<f32>::zeros(8, 8);
    group.bench("gemm_8x8x8_cached", || {
        smm.gemm(1.0, a.as_ref(), b.as_ref(), 0.0, cm.as_mut())
    });

    // Compiled schedule (offsets precomputed) vs the plan walker.
    let plan = SmmPlan::build(8, 8, 8, &cfg);
    let compiled = smm_core::CompiledPlan::compile(&plan, 8, 8, 8);
    let mut scratch = smm_core::CompiledScratch::new();
    group.bench("gemm_8x8x8_compiled", || {
        compiled.execute(1.0f32, a.data(), b.data(), 0.0, cm.data_mut(), &mut scratch)
    });
}
