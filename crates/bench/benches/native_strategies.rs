//! Native GEMM throughput of the five implementations (four library
//! strategies + the §IV reference) across representative SMM shapes.

use smm_bench::timing::Group;
use smm_core::Smm;
use smm_gemm::matrix::Mat;
use smm_gemm::{all_strategies, gemm_naive};

fn shapes() -> Vec<(usize, usize, usize)> {
    vec![(32, 32, 32), (75, 60, 60), (8, 192, 192), (192, 8, 64)]
}

fn main() {
    let mut group = Group::new("native_strategies");
    for (m, n, k) in shapes() {
        let a = Mat::<f32>::random(m, k, 1);
        let b = Mat::<f32>::random(k, n, 2);
        group.throughput((2 * m * n * k) as u64);
        for s in all_strategies::<f32>() {
            let mut cm = Mat::<f32>::zeros(m, n);
            group.bench(&format!("{}/{m}x{n}x{k}", s.name()), || {
                s.gemm(1.0, a.as_ref(), b.as_ref(), 0.0, cm.as_mut(), 1)
            });
        }
        let smm = Smm::<f32>::new();
        let mut cm = Mat::<f32>::zeros(m, n);
        group.bench(&format!("SMM-Ref/{m}x{n}x{k}"), || {
            smm.gemm(1.0, a.as_ref(), b.as_ref(), 0.0, cm.as_mut())
        });
        let mut cm = Mat::<f32>::zeros(m, n);
        group.bench(&format!("naive/{m}x{n}x{k}"), || {
            gemm_naive(1.0, a.as_ref(), b.as_ref(), 0.0, cm.as_mut())
        });
    }
}
