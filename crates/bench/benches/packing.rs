//! Packing cost in isolation — the §III-A overhead the P2C model
//! describes: `Ã` packing (contiguous column gathers) vs `B̃` packing
//! (strided row gathers) vs the exact edge packing of Fig. 8.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use smm_gemm::matrix::Mat;
use smm_gemm::pack::{pack_a, pack_a_exact, pack_b, pack_b_exact};

fn bench_packing(c: &mut Criterion) {
    let mut group = c.benchmark_group("packing");
    for &dim in &[32usize, 96, 192] {
        let a = Mat::<f32>::random(dim, dim, 1);
        let b = Mat::<f32>::random(dim, dim, 2);
        let mut buf = Vec::new();
        group.throughput(Throughput::Elements((dim * dim) as u64));
        group.bench_with_input(BenchmarkId::new("pack_a_mr16", dim), &dim, |bench, &d| {
            bench.iter(|| pack_a(a.as_ref(), 0, 0, d, d, 16, &mut buf));
        });
        group.bench_with_input(BenchmarkId::new("pack_b_nr12", dim), &dim, |bench, &d| {
            bench.iter(|| pack_b(b.as_ref(), 0, 0, d, d, 12, &mut buf));
        });
    }
    // Edge slivers: tiny exact packs.
    let a = Mat::<f32>::random(200, 200, 3);
    let mut buf = Vec::new();
    group.bench_function("pack_a_exact_3x64", |bench| {
        bench.iter(|| pack_a_exact(a.as_ref(), 100, 0, 3, 64, &mut buf));
    });
    group.bench_function("pack_b_exact_64x2", |bench| {
        bench.iter(|| pack_b_exact(a.as_ref(), 0, 100, 64, 2, &mut buf));
    });
    group.finish();
}

criterion_group!(benches, bench_packing);
criterion_main!(benches);
