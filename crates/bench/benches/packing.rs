//! Packing cost in isolation — the §III-A overhead the P2C model
//! describes: `Ã` packing (contiguous column gathers) vs `B̃` packing
//! (strided row gathers) vs the exact edge packing of Fig. 8.

use smm_bench::timing::Group;
use smm_gemm::matrix::Mat;
use smm_gemm::pack::{pack_a, pack_a_exact, pack_b, pack_b_exact};

fn main() {
    let mut group = Group::new("packing");
    for &dim in &[32usize, 96, 192] {
        let a = Mat::<f32>::random(dim, dim, 1);
        let b = Mat::<f32>::random(dim, dim, 2);
        let mut buf = Vec::new();
        group.throughput((dim * dim) as u64);
        group.bench(&format!("pack_a_mr16/{dim}"), || {
            pack_a(a.as_ref(), 0, 0, dim, dim, 16, &mut buf)
        });
        group.bench(&format!("pack_b_nr12/{dim}"), || {
            pack_b(b.as_ref(), 0, 0, dim, dim, 12, &mut buf)
        });
    }
    // Edge slivers: tiny exact packs.
    let a = Mat::<f32>::random(200, 200, 3);
    let mut buf = Vec::new();
    group.bench("pack_a_exact_3x64", || {
        pack_a_exact(a.as_ref(), 100, 0, 3, 64, &mut buf)
    });
    group.bench("pack_b_exact_64x2", || {
        pack_b_exact(a.as_ref(), 0, 100, 64, 2, &mut buf)
    });
}
