//! Native micro-kernel throughput: the Table I register tiles plus the
//! OpenBLAS edge shapes, on packed operands (kc = 64).

use smm_bench::timing::Group;
use smm_kernels::Kernel;

fn bench_kernels() {
    let mut group = Group::new("native_microkernels");
    let kc = 64usize;
    for &(mr, nr) in &[
        (16usize, 4usize),
        (8, 8),
        (8, 12),
        (12, 4),
        (4, 4),
        (2, 4),
        (1, 4),
    ] {
        let a: Vec<f32> = (0..mr * kc).map(|i| (i % 13) as f32 * 0.25).collect();
        let b: Vec<f32> = (0..nr * kc).map(|i| (i % 7) as f32 * 0.5).collect();
        let mut cbuf = vec![0.0f32; mr * nr];
        let kernel = Kernel::<f32>::for_shape(mr, nr);
        group.throughput((2 * mr * nr * kc) as u64);
        group.bench(&format!("{mr}x{nr}"), || {
            kernel.run(
                kc,
                1.0,
                std::hint::black_box(&a),
                std::hint::black_box(&b),
                &mut cbuf,
                mr,
            );
        });
    }
}

fn bench_static_vs_dynamic() {
    let mut group = Group::new("static_vs_dynamic_dispatch");
    let (mr, nr, kc) = (8usize, 8usize, 64usize);
    let a: Vec<f32> = (0..mr * kc).map(|i| i as f32 * 0.01).collect();
    let b: Vec<f32> = (0..nr * kc).map(|i| i as f32 * 0.02).collect();
    let mut cbuf = vec![0.0f32; mr * nr];
    let k = Kernel::<f32>::for_shape(8, 8);
    group.bench("static_8x8", || k.run(kc, 1.0, &a, &b, &mut cbuf, mr));
    group.bench("dynamic_8x8", || {
        smm_kernels::native::microkernel_dyn(mr, nr, kc, 1.0, &a, &b, &mut cbuf, mr)
    });
}

fn main() {
    bench_kernels();
    bench_static_vs_dynamic();
}
