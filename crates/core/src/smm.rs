//! The public SMM entry point with plan caching.

use std::marker::PhantomData;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

use smm_gemm::matrix::{MatMut, MatRef};
use smm_gemm::pool::TaskPool;
use smm_kernels::Scalar;
use smm_tune::{PlanDb, PlanDbError};

use crate::exec::execute_traced_ctx;
use crate::plan::{PlanConfig, SmmPlan};
use crate::runtime::{RuntimeStats, ShardedPlanCache, DEFAULT_PLAN_CAPACITY};
use crate::telemetry::{CallSite, Phase, Telemetry, TelemetryReport, DEFAULT_RATE_WINDOW};
use crate::trace::{shape_arg, AssembledSpan, SpanName, Tracer};
use crate::tune::{PlanSource, TunerStats};

/// Default slow-request threshold when tracing is enabled without an
/// explicit [`SmmBuilder::slow_trace_threshold`].
pub const DEFAULT_SLOW_TRACE_THRESHOLD: Duration = Duration::from_millis(10);

/// High-performance small-scale GEMM with adaptive, cached plans.
///
/// Implements the reference design of §IV of the paper: packing-optional
/// execution, a shape-tuned micro-kernel set with Fig. 8 edge packing,
/// plan generation in lieu of JIT code generation, and run-time
/// multi-dimensional parallelization. Plans are memoized in a sharded
/// read-mostly cache and multi-threaded execution runs on a persistent
/// worker pool, so the steady-state call path allocates no threads and
/// takes only a shared lock (see [`crate::runtime`]).
///
/// # Example
///
/// ```
/// use smm_core::Smm;
/// use smm_gemm::matrix::Mat;
///
/// let smm = Smm::<f32>::new();
/// let a = Mat::random(12, 7, 1);
/// let b = Mat::random(7, 9, 2);
/// let mut c = Mat::zeros(12, 9);
/// smm.gemm(1.0, a.as_ref(), b.as_ref(), 0.0, c.as_mut());
/// ```
///
/// Construction goes through [`Smm::builder`]; [`Smm::new`],
/// [`Smm::with_threads`] and [`Smm::with_config`] are thin wrappers
/// over it.
pub struct Smm<S: Scalar> {
    cfg: PlanConfig,
    cache: ShardedPlanCache,
    source: PlanSource,
    persist_on_drop: bool,
    pool: TaskPool,
    telemetry: Telemetry,
    pub(crate) tracer: Tracer,
    _elem: PhantomData<S>,
}

/// Builder for [`Smm`] — the single construction path.
///
/// ```
/// use smm_core::Smm;
///
/// let smm = Smm::<f32>::builder()
///     .threads(4)
///     .cache_capacity(256)
///     .pack_a(Some(false))
///     .build();
/// assert_eq!(smm.config().max_threads, 4);
/// ```
#[derive(Debug, Clone)]
pub struct SmmBuilder<S: Scalar> {
    cfg: PlanConfig,
    cache_capacity: usize,
    telemetry: bool,
    tracing: bool,
    slow_trace_threshold: Duration,
    rate_window: Duration,
    plan_db: Option<(PlanDb, Option<PathBuf>)>,
    nn_threshold: Option<f64>,
    online_refine: bool,
    persist_on_drop: bool,
    _elem: PhantomData<S>,
}

impl<S: Scalar> SmmBuilder<S> {
    fn new() -> Self {
        SmmBuilder {
            cfg: PlanConfig::default(),
            cache_capacity: DEFAULT_PLAN_CAPACITY,
            telemetry: true,
            tracing: false,
            slow_trace_threshold: DEFAULT_SLOW_TRACE_THRESHOLD,
            rate_window: DEFAULT_RATE_WINDOW,
            plan_db: None,
            nn_threshold: None,
            online_refine: true,
            persist_on_drop: true,
            _elem: PhantomData,
        }
    }

    /// Maximum threads a plan may use (clamped to at least 1). The
    /// model still decides how many of them a given shape deserves.
    pub fn threads(mut self, threads: usize) -> Self {
        self.cfg.max_threads = threads.max(1);
        self
    }

    /// Bound on the number of memoized plans (0 = unbounded).
    pub fn cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = capacity;
        self
    }

    /// Force the `A`-packing decision (`None` = model-driven).
    pub fn pack_a(mut self, pack: Option<bool>) -> Self {
        self.cfg.pack_a = pack;
        self
    }

    /// Force the `B`-packing decision (`None` = model-driven).
    pub fn pack_b(mut self, pack: Option<bool>) -> Self {
        self.cfg.pack_b = pack;
        self
    }

    /// Toggle packing of N-edge slivers when `B` is otherwise unpacked
    /// (the Fig. 8 optimization; on by default).
    pub fn pack_edge_b(mut self, pack: bool) -> Self {
        self.cfg.pack_edge_b = pack;
        self
    }

    /// Execute on this pool instead of the process-wide
    /// [`TaskPool::global`] pool.
    pub fn pool(mut self, pool: TaskPool) -> Self {
        self.cfg.pool = Some(pool);
        self
    }

    /// Target vector ISA for plans (default NEON-128, the paper's
    /// configuration). Widths with predication tile edges with one
    /// masked remainder instead of the greedy kernel cascade.
    pub fn isa(mut self, isa: smm_model::VectorIsa) -> Self {
        self.cfg.isa = isa;
        self
    }

    /// Replace the whole [`PlanConfig`] (retains the builder's cache
    /// capacity).
    pub fn config(mut self, cfg: PlanConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Toggle telemetry recording (on by default). The enabled hot
    /// path costs only per-thread relaxed atomics and a handful of
    /// clock reads per call — no locks; disabling reduces every record
    /// to a branch.
    pub fn telemetry(mut self, enabled: bool) -> Self {
        self.telemetry = enabled;
        self
    }

    /// Toggle request-scoped span tracing (off by default). When off,
    /// no tracer state is constructed and every trace operation on the
    /// hot path is a single branch with no clock read; when on, spans
    /// flow into the bounded flight recorder (see [`crate::trace`]).
    pub fn tracing(mut self, enabled: bool) -> Self {
        self.tracing = enabled;
        self
    }

    /// Latency threshold above which a traced request's span tree is
    /// pinned as a slow-request exemplar (default 10 ms; only
    /// meaningful with [`SmmBuilder::tracing`] enabled).
    pub fn slow_trace_threshold(mut self, threshold: Duration) -> Self {
        self.slow_trace_threshold = threshold;
        self
    }

    /// Sliding window of the telemetry rate estimators (req/s,
    /// Gflops/s, p99 trend; default 8 s).
    pub fn rate_window(mut self, window: Duration) -> Self {
        self.rate_window = window;
        self
    }

    /// Load a persistent plan database from `path` (the output of
    /// `smm-tune sweep`). Plan-cache misses are then answered from the
    /// database — exact hit, else nearest-neighbor match, else online
    /// refinement — and refinements are persisted back to `path` on
    /// [`Smm::flush_plan_db`] or drop.
    ///
    /// The database must have been swept for this builder's ISA, so
    /// call [`SmmBuilder::isa`] *before* this; a foreign-ISA file is
    /// rejected with [`PlanDbError::IsaMismatch`], and every other form
    /// of corruption with its own typed error.
    pub fn plan_db(mut self, path: impl AsRef<Path>) -> Result<Self, PlanDbError> {
        let path = path.as_ref().to_path_buf();
        let db = PlanDb::load_for(&path, self.cfg.isa)?;
        self.plan_db = Some((db, Some(path)));
        Ok(self)
    }

    /// Use an in-memory plan database (no file persistence). Same
    /// staging rules as [`SmmBuilder::plan_db`]: the database's ISA
    /// must match the builder's.
    pub fn plan_db_handle(mut self, db: PlanDb) -> Result<Self, PlanDbError> {
        if db.isa() != self.cfg.isa {
            return Err(PlanDbError::IsaMismatch {
                db: db.isa().name,
                active: self.cfg.isa.name,
            });
        }
        self.plan_db = Some((db, None));
        Ok(self)
    }

    /// Acceptance threshold for nearest-neighbor matches, in log-space
    /// shape distance (default [`smm_tune::DEFAULT_NN_THRESHOLD`]).
    pub fn nn_threshold(mut self, threshold: f64) -> Self {
        self.nn_threshold = Some(threshold);
        self
    }

    /// Whether double misses (no exact hit, no NN match) pay for full
    /// online tuning and record the result as a persistable delta
    /// (default true). When false they build the plain heuristic plan.
    pub fn online_refine(mut self, refine: bool) -> Self {
        self.online_refine = refine;
        self
    }

    /// Whether dropping the instance best-effort flushes pending
    /// refinement deltas to the database file (default true; only
    /// meaningful with a path-backed [`SmmBuilder::plan_db`]).
    pub fn persist_on_drop(mut self, persist: bool) -> Self {
        self.persist_on_drop = persist;
        self
    }

    /// Construct the [`Smm`] instance.
    pub fn build(self) -> Smm<S> {
        let pool = self
            .cfg
            .pool
            .clone()
            .unwrap_or_else(|| TaskPool::global().clone());
        let mut source = match self.plan_db {
            Some((db, path)) => {
                // plan_db()/plan_db_handle() validated against the ISA
                // configured at that point; a later .isa() call would
                // silently cross-wire tuned kernels to another width.
                assert_eq!(
                    db.isa(),
                    self.cfg.isa,
                    "plan database ISA diverged from the configured ISA: \
                     call .isa(..) before .plan_db(..)"
                );
                PlanSource::with_db(db, path)
            }
            None => PlanSource::untuned(),
        };
        if let Some(t) = self.nn_threshold {
            source.set_nn_threshold(t);
        }
        source.set_refine_online(self.online_refine);
        Smm {
            cfg: self.cfg,
            cache: ShardedPlanCache::new(self.cache_capacity),
            source,
            persist_on_drop: self.persist_on_drop,
            pool,
            telemetry: Telemetry::with_rate_window(self.telemetry, self.rate_window),
            tracer: if self.tracing {
                Tracer::new(self.slow_trace_threshold)
            } else {
                Tracer::disabled()
            },
            _elem: PhantomData,
        }
    }
}

impl<S: Scalar> Smm<S> {
    /// Start building an instance.
    pub fn builder() -> SmmBuilder<S> {
        SmmBuilder::new()
    }

    /// Single-threaded SMM with model-driven decisions.
    pub fn new() -> Self {
        Self::builder().build()
    }

    /// SMM allowed to use up to `threads` threads.
    pub fn with_threads(threads: usize) -> Self {
        Self::builder().threads(threads).build()
    }

    /// Full configuration control.
    pub fn with_config(cfg: PlanConfig) -> Self {
        Self::builder().config(cfg).build()
    }

    /// The active configuration.
    pub fn config(&self) -> &PlanConfig {
        &self.cfg
    }

    /// The pool executing this instance's multi-threaded plans.
    pub fn pool(&self) -> &TaskPool {
        &self.pool
    }

    /// Get (building and caching if needed) the plan for a shape.
    ///
    /// Cache misses are answered by the two-stage plan source: exact
    /// database hit, else nearest-neighbor match, else online tuning
    /// (recorded as a delta) — or the plain heuristic when no database
    /// is loaded.
    pub fn plan(&self, m: usize, n: usize, k: usize) -> Arc<SmmPlan> {
        self.cache
            .get_or_insert_with(m, n, k, || self.source.plan_for(m, n, k, &self.cfg))
    }

    /// Counters of the two-stage plan source (database hits, NN
    /// matches, online refinements, pending/persisted deltas).
    pub fn tuner_stats(&self) -> TunerStats {
        self.source.stats()
    }

    /// Persist pending refinement deltas and the telemetry shape
    /// table's observed traffic into the plan database (and its file,
    /// when loaded from a path). Returns the number of deltas
    /// persisted, `None` when there was nothing to do.
    pub fn flush_plan_db(&self) -> Result<Option<usize>, PlanDbError> {
        self.source.flush(&self.telemetry.shape_calls())
    }

    /// The hottest shapes by traffic recorded in the plan database —
    /// what a server should pre-warm at startup.
    pub fn hot_shapes(&self, limit: usize) -> Vec<(usize, usize, usize)> {
        self.source.hot_shapes(limit)
    }

    /// Number of distinct shapes planned so far.
    pub fn cached_plans(&self) -> usize {
        self.cache.len()
    }

    /// Runtime counters: plan-cache hits/misses/evictions, residency,
    /// and pool width.
    pub fn stats(&self) -> RuntimeStats {
        self.cache.stats(self.pool.workers())
    }

    /// This instance's telemetry registry.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Full telemetry snapshot: per-phase latency histograms, a
    /// Table-II-style pack/compute/sync breakdown per call site,
    /// per-shape achieved throughput against the `smm-model`
    /// prediction, the observed P2C ratio, and the plan-cache,
    /// worker-pool, and packing-arena counters. Serializable via
    /// [`TelemetryReport::to_json`] and
    /// [`TelemetryReport::to_prometheus`].
    pub fn stats_report(&self) -> TelemetryReport {
        let mut report =
            self.telemetry
                .report(self.stats(), self.pool.stats(), smm_gemm::arena::stats());
        report.slow = self.tracer.exemplars();
        report.tuner = self.source.stats();
        report
    }

    /// This instance's request tracer (the disabled tracer unless
    /// [`SmmBuilder::tracing`] was set).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Drain the flight recorder into assembled spans (see
    /// [`crate::trace::chrome_trace_json`] for the Perfetto export).
    /// Empty when tracing is off.
    pub fn drain_trace(&self) -> Vec<AssembledSpan> {
        self.tracer.drain()
    }

    /// `C = alpha·A·B + beta·C`.
    pub fn gemm(
        &self,
        alpha: S,
        a: MatRef<'_, S>,
        b: MatRef<'_, S>,
        beta: S,
        mut c: MatMut<'_, S>,
    ) {
        let (m, n, k) = (a.rows(), b.cols(), a.cols());
        if m == 0 || n == 0 {
            return;
        }
        if k == 0 {
            c.scale(beta);
            return;
        }
        let _root = self.tracer.span(SpanName::Gemm, shape_arg(m, n, k));
        let rec = self.telemetry.recorder(CallSite::Gemm);
        let t0 = rec.now();
        let plan = self.plan(m, n, k);
        rec.span_since(Phase::PlanLookup, t0);
        execute_traced_ctx(&self.pool, &plan, rec, &self.tracer, alpha, a, b, beta, c);
        if let Some(t0) = t0 {
            self.telemetry.record_call(
                CallSite::Gemm,
                m,
                n,
                k,
                std::mem::size_of::<S>(),
                1,
                t0.elapsed().as_nanos() as u64,
            );
        }
    }
}

impl<S: Scalar> Default for Smm<S> {
    fn default() -> Self {
        Self::new()
    }
}

impl<S: Scalar> Drop for Smm<S> {
    /// Best-effort persistence of online refinements: deltas learned
    /// this run are what make the *next* process start warm, so they
    /// are flushed on shutdown unless [`SmmBuilder::persist_on_drop`]
    /// opted out. Errors are ignored — drop cannot report them, and an
    /// unsaved delta only costs a re-tune later.
    fn drop(&mut self) {
        if self.persist_on_drop && self.tuner_stats().pending_deltas > 0 {
            let _ = self.flush_plan_db();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smm_gemm::gemm_naive;
    use smm_gemm::matrix::Mat;

    #[test]
    fn gemm_matches_naive_over_shape_sweep() {
        let smm = Smm::<f32>::new();
        for &(m, n, k) in &[
            (5, 5, 5),
            (40, 40, 40),
            (2, 192, 192),
            (192, 2, 192),
            (192, 192, 2),
        ] {
            let a = Mat::<f32>::random(m, k, 31);
            let b = Mat::<f32>::random(k, n, 32);
            let mut c = Mat::<f32>::random(m, n, 33);
            let mut c_ref = c.clone();
            smm.gemm(1.0, a.as_ref(), b.as_ref(), 1.0, c.as_mut());
            gemm_naive(1.0, a.as_ref(), b.as_ref(), 1.0, c_ref.as_mut());
            assert!(c.max_abs_diff(&c_ref) < 1e-3, "{m}x{n}x{k}");
        }
    }

    #[test]
    fn plans_are_cached_per_shape() {
        let smm = Smm::<f32>::new();
        let a = Mat::<f32>::random(8, 8, 1);
        let b = Mat::<f32>::random(8, 8, 2);
        for _ in 0..5 {
            let mut c = Mat::<f32>::zeros(8, 8);
            smm.gemm(1.0, a.as_ref(), b.as_ref(), 0.0, c.as_mut());
        }
        assert_eq!(smm.cached_plans(), 1);
        let p1 = smm.plan(8, 8, 8);
        let p2 = smm.plan(8, 8, 8);
        assert!(Arc::ptr_eq(&p1, &p2));
        smm.plan(9, 8, 8);
        assert_eq!(smm.cached_plans(), 2);
    }

    #[test]
    fn degenerate_dimensions_short_circuit() {
        let smm = Smm::<f32>::new();
        let a = Mat::<f32>::zeros(4, 0);
        let b = Mat::<f32>::zeros(0, 4);
        let mut c = Mat::<f32>::from_fn(4, 4, |_, _| 8.0);
        smm.gemm(1.0, a.as_ref(), b.as_ref(), 0.25, c.as_mut());
        assert_eq!(c[(0, 0)], 2.0);
        assert_eq!(smm.cached_plans(), 0, "no plan for degenerate shapes");
    }

    #[test]
    fn threaded_smm_is_correct() {
        let smm = Smm::<f32>::with_threads(8);
        let a = Mat::<f32>::random(64, 32, 41);
        let b = Mat::<f32>::random(32, 96, 42);
        let mut c = Mat::<f32>::zeros(64, 96);
        let mut c_ref = c.clone();
        smm.gemm(1.0, a.as_ref(), b.as_ref(), 0.0, c.as_mut());
        gemm_naive(1.0, a.as_ref(), b.as_ref(), 0.0, c_ref.as_mut());
        assert!(c.max_abs_diff(&c_ref) < 1e-3);
    }

    #[test]
    fn f64_path_works() {
        let smm = Smm::<f64>::new();
        let a = Mat::<f64>::random(17, 11, 51);
        let b = Mat::<f64>::random(11, 13, 52);
        let mut c = Mat::<f64>::zeros(17, 13);
        let mut c_ref = c.clone();
        smm.gemm(2.0, a.as_ref(), b.as_ref(), 0.0, c.as_mut());
        gemm_naive(2.0, a.as_ref(), b.as_ref(), 0.0, c_ref.as_mut());
        assert!(c.max_abs_diff(&c_ref) < 1e-9);
    }

    #[test]
    fn smm_is_shareable_across_threads() {
        let smm = std::sync::Arc::new(Smm::<f32>::new());
        std::thread::scope(|s| {
            for t in 0..4 {
                let smm = smm.clone();
                s.spawn(move || {
                    let a = Mat::<f32>::random(10 + t, 8, 1);
                    let b = Mat::<f32>::random(8, 6, 2);
                    let mut c = Mat::<f32>::zeros(10 + t, 6);
                    smm.gemm(1.0, a.as_ref(), b.as_ref(), 0.0, c.as_mut());
                });
            }
        });
        assert_eq!(smm.cached_plans(), 4);
    }

    #[test]
    fn builder_configures_threads_cache_and_packing() {
        let smm = Smm::<f32>::builder()
            .threads(4)
            .cache_capacity(64)
            .pack_a(Some(true))
            .pack_b(Some(false))
            .pack_edge_b(false)
            .build();
        assert_eq!(smm.config().max_threads, 4);
        assert_eq!(smm.config().pack_a, Some(true));
        assert_eq!(smm.config().pack_b, Some(false));
        assert!(!smm.config().pack_edge_b);
        let plan = smm.plan(20, 20, 20);
        assert!(plan.pack_a);
        assert!(!plan.pack_b);
    }

    #[test]
    fn builder_private_pool_is_used() {
        let pool = TaskPool::new(2);
        let smm = Smm::<f32>::builder().threads(4).pool(pool.clone()).build();
        assert_eq!(smm.pool().workers(), 2);
        assert_eq!(smm.stats().pool_workers, 2);
        let a = Mat::<f32>::random(48, 24, 61);
        let b = Mat::<f32>::random(24, 40, 62);
        let mut c = Mat::<f32>::zeros(48, 40);
        let mut c_ref = c.clone();
        smm.gemm(1.0, a.as_ref(), b.as_ref(), 0.0, c.as_mut());
        gemm_naive(1.0, a.as_ref(), b.as_ref(), 0.0, c_ref.as_mut());
        assert!(c.max_abs_diff(&c_ref) < 1e-3);
    }

    #[test]
    fn stats_track_hits_and_misses() {
        let smm = Smm::<f32>::new();
        let a = Mat::<f32>::random(8, 8, 1);
        let b = Mat::<f32>::random(8, 8, 2);
        for _ in 0..5 {
            let mut c = Mat::<f32>::zeros(8, 8);
            smm.gemm(1.0, a.as_ref(), b.as_ref(), 0.0, c.as_mut());
        }
        let s = smm.stats();
        assert_eq!(s.plan_misses, 1);
        assert_eq!(s.plan_hits, 4);
        assert_eq!(s.cached_plans, 1);
        assert_eq!(s.plan_evictions, 0);
    }

    #[test]
    fn cache_capacity_is_enforced() {
        let smm = Smm::<f32>::builder().cache_capacity(16).build();
        for m in 1..=64 {
            smm.plan(m, 4, 4);
        }
        assert!(smm.cached_plans() <= 16, "resident {}", smm.cached_plans());
        assert!(smm.stats().plan_evictions > 0);
    }

    #[test]
    fn tracing_is_off_by_default_and_spans_flow_when_on() {
        let off = Smm::<f32>::new();
        assert!(!off.tracer().enabled());
        let a = Mat::<f32>::random(32, 32, 71);
        let b = Mat::<f32>::random(32, 32, 72);
        let mut c = Mat::<f32>::zeros(32, 32);
        off.gemm(1.0, a.as_ref(), b.as_ref(), 0.0, c.as_mut());
        assert!(off.drain_trace().is_empty(), "disabled tracer stays empty");

        let smm = Smm::<f32>::builder().threads(4).tracing(true).build();
        let mut c = Mat::<f32>::zeros(32, 32);
        let mut c_ref = c.clone();
        smm.gemm(1.0, a.as_ref(), b.as_ref(), 0.0, c.as_mut());
        gemm_naive(1.0, a.as_ref(), b.as_ref(), 0.0, c_ref.as_mut());
        assert!(c.max_abs_diff(&c_ref) < 1e-3, "tracing must not perturb");
        let spans = smm.drain_trace();
        let root = spans
            .iter()
            .find(|s| s.name == crate::trace::SpanName::Gemm)
            .expect("gemm root span");
        assert_eq!(root.parent, 0);
        assert_eq!(root.arg, shape_arg(32, 32, 32));
        let workers: Vec<_> = spans
            .iter()
            .filter(|s| s.name == crate::trace::SpanName::Worker)
            .collect();
        if !workers.is_empty() {
            // Multi-threaded plan: workers parent under the gemm root
            // and share its trace despite running on pool threads.
            assert!(workers.iter().all(|w| w.parent == root.span));
            assert!(workers.iter().all(|w| w.trace == root.trace));
        }
    }

    #[test]
    fn slow_exemplars_surface_in_stats_report() {
        let smm = Smm::<f32>::builder()
            .tracing(true)
            .slow_trace_threshold(Duration::from_nanos(0))
            .build();
        let a = Mat::<f32>::random(16, 16, 81);
        let b = Mat::<f32>::random(16, 16, 82);
        let mut c = Mat::<f32>::zeros(16, 16);
        smm.gemm(1.0, a.as_ref(), b.as_ref(), 0.0, c.as_mut());
        // Note a request done against the trace gemm just minted (the
        // serve layer does this per request).
        let spans = smm.tracer().snapshot_trace(1);
        assert!(!spans.is_empty());
        smm.tracer().note_request_done(1, 123_456, "gemm 16x16x16");
        let report = smm.stats_report();
        assert_eq!(report.slow.len(), 1);
        assert_eq!(report.slow[0].total_ns, 123_456);
        assert!(!report.slow[0].spans.is_empty(), "span tree pinned");
        assert!(format!("{report}").contains("slow-request exemplars"));
    }

    #[test]
    fn legacy_constructors_are_builder_wrappers() {
        let smm = Smm::<f32>::with_threads(0);
        assert_eq!(smm.config().max_threads, 1, "threads clamp to 1");
        let cfg = PlanConfig {
            max_threads: 3,
            ..Default::default()
        };
        let smm = Smm::<f32>::with_config(cfg);
        assert_eq!(smm.config().max_threads, 3);
    }

    fn tiny_db(isa: smm_model::VectorIsa) -> PlanDb {
        let cfg = PlanConfig {
            isa,
            ..Default::default()
        };
        let mut db = PlanDb::new(isa);
        for &(m, n, k) in &[(8usize, 8usize, 8usize), (16, 8, 8)] {
            db.upsert(crate::tune::tune_shape(m, n, k, &cfg).to_entry(4, false));
        }
        db
    }

    #[test]
    fn plan_db_answers_misses_and_reports_stats() {
        let smm = Smm::<f32>::builder()
            .plan_db_handle(tiny_db(smm_model::VectorIsa::neon128()))
            .unwrap()
            .build();
        let a = Mat::<f32>::random(8, 8, 1);
        let b = Mat::<f32>::random(8, 8, 2);
        let mut c = Mat::<f32>::zeros(8, 8);
        let mut c_ref = c.clone();
        smm.gemm(1.0, a.as_ref(), b.as_ref(), 0.0, c.as_mut());
        gemm_naive(1.0, a.as_ref(), b.as_ref(), 0.0, c_ref.as_mut());
        assert!(c.max_abs_diff(&c_ref) < 1e-3, "db-sourced plan correct");
        smm.plan(9, 8, 8); // NN match
        let s = smm.tuner_stats();
        assert_eq!(s.db_hits, 1);
        assert_eq!(s.nn_matches, 1);
        assert_eq!(s.db_entries, 2);
        assert_eq!(s.db_coverage(), 1.0);
        // Cache hits don't touch the source again.
        smm.plan(8, 8, 8);
        assert_eq!(smm.tuner_stats().db_hits, 1);
        // The counters ride in every report surface.
        let report = smm.stats_report();
        assert_eq!(report.tuner.db_hits, 1);
        assert!(report.to_json().contains("\"tuner\""));
        assert!(report.to_prometheus().contains("smm_tuner_db_hits_total 1"));
        assert!(format!("{report}").contains("db coverage"));
    }

    #[test]
    fn foreign_isa_handle_is_rejected() {
        let err = Smm::<f32>::builder()
            .plan_db_handle(tiny_db(smm_model::VectorIsa::sve256()))
            .unwrap_err();
        assert_eq!(
            err,
            PlanDbError::IsaMismatch {
                db: "sve256",
                active: "neon128"
            }
        );
    }

    #[test]
    fn drop_persists_pending_deltas() {
        let dir = std::env::temp_dir().join(format!("smm-drop-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("drop.smmdb");
        tiny_db(smm_model::VectorIsa::neon128())
            .save(&path)
            .unwrap();
        {
            let smm = Smm::<f32>::builder().plan_db(&path).unwrap().build();
            smm.plan(40, 40, 40); // far from the grid → online refine
            assert_eq!(smm.tuner_stats().pending_deltas, 1);
        } // drop flushes
        let reloaded = PlanDb::load(&path).unwrap();
        assert_eq!(reloaded.len(), 3);
        assert!(reloaded.get(40, 40, 40).unwrap().refined);
        std::fs::remove_dir_all(&dir).ok();
    }
}
