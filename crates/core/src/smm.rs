//! The public SMM entry point with plan caching.

use std::collections::HashMap;
use std::marker::PhantomData;
use std::sync::Arc;

use parking_lot::Mutex;
use smm_gemm::matrix::{MatMut, MatRef};
use smm_kernels::Scalar;

use crate::exec::execute;
use crate::plan::{PlanConfig, SmmPlan};

/// High-performance small-scale GEMM with adaptive, cached plans.
///
/// Implements the reference design of §IV of the paper: packing-optional
/// execution, a shape-tuned micro-kernel set with Fig. 8 edge packing,
/// plan generation in lieu of JIT code generation, and run-time
/// multi-dimensional parallelization.
///
/// # Example
///
/// ```
/// use smm_core::Smm;
/// use smm_gemm::matrix::Mat;
///
/// let smm = Smm::<f32>::new();
/// let a = Mat::random(12, 7, 1);
/// let b = Mat::random(7, 9, 2);
/// let mut c = Mat::zeros(12, 9);
/// smm.gemm(1.0, a.as_ref(), b.as_ref(), 0.0, c.as_mut());
/// ```
pub struct Smm<S: Scalar> {
    cfg: PlanConfig,
    cache: Mutex<HashMap<(usize, usize, usize), Arc<SmmPlan>>>,
    _elem: PhantomData<S>,
}

impl<S: Scalar> Smm<S> {
    /// Single-threaded SMM with model-driven decisions.
    pub fn new() -> Self {
        Self::with_config(PlanConfig::default())
    }

    /// SMM allowed to use up to `threads` threads.
    pub fn with_threads(threads: usize) -> Self {
        Self::with_config(PlanConfig { max_threads: threads.max(1), ..Default::default() })
    }

    /// Full configuration control.
    pub fn with_config(cfg: PlanConfig) -> Self {
        Smm {
            cfg,
            cache: Mutex::new(HashMap::new()),
            _elem: PhantomData,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &PlanConfig {
        &self.cfg
    }

    /// Get (building and caching if needed) the plan for a shape.
    pub fn plan(&self, m: usize, n: usize, k: usize) -> Arc<SmmPlan> {
        let mut cache = self.cache.lock();
        cache
            .entry((m, n, k))
            .or_insert_with(|| Arc::new(SmmPlan::build(m, n, k, &self.cfg)))
            .clone()
    }

    /// Number of distinct shapes planned so far.
    pub fn cached_plans(&self) -> usize {
        self.cache.lock().len()
    }

    /// `C = alpha·A·B + beta·C`.
    pub fn gemm(&self, alpha: S, a: MatRef<'_, S>, b: MatRef<'_, S>, beta: S, mut c: MatMut<'_, S>) {
        let (m, n, k) = (a.rows(), b.cols(), a.cols());
        if m == 0 || n == 0 {
            return;
        }
        if k == 0 {
            c.scale(beta);
            return;
        }
        let plan = self.plan(m, n, k);
        execute(&plan, alpha, a, b, beta, c);
    }
}

impl<S: Scalar> Default for Smm<S> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smm_gemm::gemm_naive;
    use smm_gemm::matrix::Mat;

    #[test]
    fn gemm_matches_naive_over_shape_sweep() {
        let smm = Smm::<f32>::new();
        for &(m, n, k) in &[(5, 5, 5), (40, 40, 40), (2, 192, 192), (192, 2, 192), (192, 192, 2)] {
            let a = Mat::<f32>::random(m, k, 31);
            let b = Mat::<f32>::random(k, n, 32);
            let mut c = Mat::<f32>::random(m, n, 33);
            let mut c_ref = c.clone();
            smm.gemm(1.0, a.as_ref(), b.as_ref(), 1.0, c.as_mut());
            gemm_naive(1.0, a.as_ref(), b.as_ref(), 1.0, c_ref.as_mut());
            assert!(c.max_abs_diff(&c_ref) < 1e-3, "{m}x{n}x{k}");
        }
    }

    #[test]
    fn plans_are_cached_per_shape() {
        let smm = Smm::<f32>::new();
        let a = Mat::<f32>::random(8, 8, 1);
        let b = Mat::<f32>::random(8, 8, 2);
        for _ in 0..5 {
            let mut c = Mat::<f32>::zeros(8, 8);
            smm.gemm(1.0, a.as_ref(), b.as_ref(), 0.0, c.as_mut());
        }
        assert_eq!(smm.cached_plans(), 1);
        let p1 = smm.plan(8, 8, 8);
        let p2 = smm.plan(8, 8, 8);
        assert!(Arc::ptr_eq(&p1, &p2));
        smm.plan(9, 8, 8);
        assert_eq!(smm.cached_plans(), 2);
    }

    #[test]
    fn degenerate_dimensions_short_circuit() {
        let smm = Smm::<f32>::new();
        let a = Mat::<f32>::zeros(4, 0);
        let b = Mat::<f32>::zeros(0, 4);
        let mut c = Mat::<f32>::from_fn(4, 4, |_, _| 8.0);
        smm.gemm(1.0, a.as_ref(), b.as_ref(), 0.25, c.as_mut());
        assert_eq!(c[(0, 0)], 2.0);
        assert_eq!(smm.cached_plans(), 0, "no plan for degenerate shapes");
    }

    #[test]
    fn threaded_smm_is_correct() {
        let smm = Smm::<f32>::with_threads(8);
        let a = Mat::<f32>::random(64, 32, 41);
        let b = Mat::<f32>::random(32, 96, 42);
        let mut c = Mat::<f32>::zeros(64, 96);
        let mut c_ref = c.clone();
        smm.gemm(1.0, a.as_ref(), b.as_ref(), 0.0, c.as_mut());
        gemm_naive(1.0, a.as_ref(), b.as_ref(), 0.0, c_ref.as_mut());
        assert!(c.max_abs_diff(&c_ref) < 1e-3);
    }

    #[test]
    fn f64_path_works() {
        let smm = Smm::<f64>::new();
        let a = Mat::<f64>::random(17, 11, 51);
        let b = Mat::<f64>::random(11, 13, 52);
        let mut c = Mat::<f64>::zeros(17, 13);
        let mut c_ref = c.clone();
        smm.gemm(2.0, a.as_ref(), b.as_ref(), 0.0, c.as_mut());
        gemm_naive(2.0, a.as_ref(), b.as_ref(), 0.0, c_ref.as_mut());
        assert!(c.max_abs_diff(&c_ref) < 1e-9);
    }

    #[test]
    fn smm_is_shareable_across_threads() {
        let smm = std::sync::Arc::new(Smm::<f32>::new());
        std::thread::scope(|s| {
            for t in 0..4 {
                let smm = smm.clone();
                s.spawn(move || {
                    let a = Mat::<f32>::random(10 + t, 8, 1);
                    let b = Mat::<f32>::random(8, 6, 2);
                    let mut c = Mat::<f32>::zeros(10 + t, 6);
                    smm.gemm(1.0, a.as_ref(), b.as_ref(), 0.0, c.as_mut());
                });
            }
        });
        assert_eq!(smm.cached_plans(), 4);
    }
}
