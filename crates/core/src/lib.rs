//! Reference high-performance small-scale GEMM (SMM).
//!
//! This crate is the paper's primary proposed contribution (§IV of
//! Yang, Fang & Dong, *"Characterizing Small-Scale Matrix
//! Multiplications on ARMv8-based Many-Core Architectures"*): a GEMM
//! implementation specialized for small and irregular shapes, built on
//! the four findings of the paper's characterization:
//!
//! 1. **Packing-optional execution** ([`direct`], [`plan`]): the
//!    `O(M·K + K·N)` packing pass is skipped whenever the P2C model
//!    (§III-A) says it cannot be amortized; kernels stream straight
//!    from column-major operands.
//! 2. **A set of shape-tuned micro-kernels** with exact edge
//!    decomposition and Fig.-8-style edge packing — no padded flops,
//!    no naively scheduled edge kernels.
//! 3. **Adaptive plan generation with caching** ([`plan`],
//!    [`smm::Smm`]) — the safe-Rust equivalent of LIBXSMM's JIT: tile
//!    tables and offsets are precomputed per shape and reused.
//! 4. **Run-time multi-dimensional parallelization** (§III-D): small
//!    dimensions are never split; thread counts are clamped to the
//!    available tile parallelism.
//!
//! Native execution lives in [`exec`]; [`simprog`] builds the same
//! plan's instruction stream for the simulated Phytium 2000+ so the
//! design can be compared against the four libraries.
//!
//! The persistent runtime — sharded plan cache, runtime counters, and
//! the worker pool handle — lives in [`runtime`]; construction goes
//! through [`smm::SmmBuilder`]. The [`telemetry`] module records
//! phase-level spans (plan lookup, packing, compute, dispatch, sync)
//! into per-thread latency histograms and derives the paper's
//! decomposition metrics — observed P2C, Table-II overhead shares,
//! model-relative Gflops — via [`smm::Smm::stats_report`].

#![deny(missing_docs)]

pub mod batch;
pub mod compiled;
pub mod direct;
pub mod error;
pub mod exec;
pub mod plan;
pub mod rate;
pub mod runtime;
pub mod simprog;
pub mod smm;
pub mod telemetry;
pub mod trace;
pub mod tune;

/// The workspace synchronization facade (`std` types in normal builds,
/// model-checker shims under `--cfg smm_model_check`). Runtime modules
/// import their `Mutex`/`Condvar`/atomics/threads from here.
pub use smm_sync::sync;

pub use batch::StridedBatch;
pub use compiled::{CompiledPlan, CompiledScratch};
pub use direct::DirectKernel;
pub use error::{Operand, SmmError};
pub use exec::{execute, execute_in, execute_traced};
pub use plan::{choose_kernel, choose_kernel_for, PlanConfig, SmmPlan};
pub use rate::{savitzky_golay_slope, RateReport, RateWindow};
pub use runtime::{PoolStats, RuntimeStats, ShardedPlanCache, TaskPool};
pub use simprog::build_sim;
pub use smm::{Smm, SmmBuilder};
pub use smm_model::VectorIsa;
pub use smm_tune::{PlanDb, PlanDbError, PlanEntry, SweepGrid, DEFAULT_NN_THRESHOLD};
pub use telemetry::{
    CallSite, LatencyHistogram, Phase, PhaseReport, Recorder, ShapeReport, SiteBreakdown,
    Telemetry, TelemetryReport, DEFAULT_RATE_WINDOW,
};
pub use trace::{
    chrome_trace_json, shape_arg, AssembledSpan, OpenSpan, SpanGuard, SpanName, TraceCtx,
    TraceExemplar, Tracer,
};
pub use tune::{candidate_configs, tune_shape, Autotuner, PlanSource, TunedPlan, TunerStats};
