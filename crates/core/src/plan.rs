//! Adaptive SMM plan generation — the "JIT" of §IV.
//!
//! LIBXSMM generates a bespoke kernel per input shape at run time; the
//! equivalent in safe Rust is a *plan*: for a given `(m, n, k, threads)`
//! we select the micro-kernel shape, decide per-operand whether packing
//! pays (the packing-optional property, driven by the §III-A P2C
//! model), precompute the exact tile decomposition with offsets, and
//! choose the thread grid (§III-D: never parallelize a small
//! dimension). Plans are cheap to build and cached by shape in
//! [`crate::smm::Smm`], so repeated SMMs — the DNN/block-sparse/ABFT
//! pattern that motivates the paper — pay planning once.

use smm_gemm::pool::TaskPool;
use smm_kernels::registry::{decompose_greedy, TileSpan};
use smm_model::parallel::{select_grid, ThreadGrid};
use smm_model::{p2c, CacheSizes, KernelShape, VectorIsa};

/// Tunables for plan generation and execution.
#[derive(Debug, Clone)]
pub struct PlanConfig {
    /// Maximum threads the plan may use.
    pub max_threads: usize,
    /// Force the `A`-packing decision (None = model-driven).
    pub pack_a: Option<bool>,
    /// Force the `B`-packing decision (None = model-driven).
    pub pack_b: Option<bool>,
    /// Force a micro-kernel shape (None = adaptive selection).
    pub kernel: Option<KernelShape>,
    /// Pack N-edge slivers even when `B` is otherwise unpacked
    /// (the Fig. 8 optimization). On by default.
    pub pack_edge_b: bool,
    /// Minimum reuse count (m-panels per B sliver) for B packing to pay.
    pub pack_b_reuse: usize,
    /// Minimum reuse count (n-slivers per A panel) for A packing to pay.
    pub pack_a_reuse: usize,
    /// Worker pool that executes multi-threaded plans (None = the
    /// process-wide [`TaskPool::global`] pool). Thread-count decisions
    /// stay model-driven; the pool is only the execution mechanism.
    pub pool: Option<TaskPool>,
    /// Vector ISA the plan targets: drives kernel selection, the
    /// chain-bound efficiency model, edge-tile decomposition (greedy
    /// power-of-two on NEON, a single predicated remainder tile on
    /// SVE-style ISAs) and simulated trace generation.
    pub isa: VectorIsa,
}

impl Default for PlanConfig {
    fn default() -> Self {
        PlanConfig {
            max_threads: 1,
            pack_a: None,
            pack_b: None,
            kernel: None,
            pack_edge_b: true,
            pack_b_reuse: 8,
            pack_a_reuse: 8,
            pool: None,
            isa: VectorIsa::neon128(),
        }
    }
}

/// Candidate register tiles for adaptive selection, all Eq. 4 feasible
/// on NEON-128 (and therefore on every wider ISA).
pub const KERNEL_CANDIDATES: &[(usize, usize)] =
    &[(16, 4), (12, 4), (8, 12), (8, 8), (8, 4), (4, 8), (4, 4)];

/// Additional candidates that only fit wider register files; each is
/// admitted per-ISA by the Eq. 4 check in [`choose_kernel_for`].
pub const WIDE_KERNEL_CANDIDATES: &[(usize, usize)] = &[(32, 12), (32, 8), (16, 12), (16, 8)];

/// Estimated kernel-phase efficiency of covering a dimension of `len`
/// with main step `step` and ISA-appropriate edge decomposition: each
/// tile's contribution is weighted by its share of the work and bounded
/// by its accumulator-chain parallelism and SIMD lane utilization.
fn dim_efficiency(len: usize, step: usize, other: usize, is_m: bool, isa: &VectorIsa) -> f64 {
    let vlanes = isa.lanes_f32();
    let mut eff = 0.0;
    let full = len / step;
    let mut parts: Vec<usize> = vec![step; full];
    if !len.is_multiple_of(step) {
        if isa.predication {
            // Predicated ISAs cover the whole residue with one tile.
            parts.push(len % step);
        } else {
            parts.extend(decompose_greedy(len % step, &edge_steps(step)));
        }
    }
    for &s in &parts {
        let (mr, nr) = if is_m { (s, other) } else { (other, s) };
        let shape = KernelShape::new(mr, nr);
        let chain = shape.chain_bound_efficiency(vlanes, isa.fma_latency);
        // Lane waste for unaligned row counts.
        let lanes = if is_m {
            (mr as f64) / ((mr.div_ceil(vlanes) * vlanes) as f64)
        } else {
            1.0
        };
        eff += (s as f64 / len as f64) * chain * lanes;
    }
    eff
}

/// Edge decomposition steps below a main step (powers of two down to 1).
pub fn edge_steps(step: usize) -> Vec<usize> {
    let mut steps = vec![step];
    let mut s = 1usize;
    while s * 2 < step {
        s *= 2;
    }
    while s >= 1 {
        if s < step {
            steps.push(s);
        }
        if s == 1 {
            break;
        }
        s /= 2;
    }
    steps
}

/// Select the best micro-kernel for a shape on NEON-128 (the paper's
/// configuration). See [`choose_kernel_for`] for other vector widths.
pub fn choose_kernel(m: usize, n: usize, k: usize) -> KernelShape {
    choose_kernel_for(m, n, k, &VectorIsa::neon128())
}

/// Select the best micro-kernel for a shape on an explicit [`VectorIsa`].
///
/// Candidates are the NEON-feasible set plus [`WIDE_KERNEL_CANDIDATES`],
/// filtered by the *target ISA's* Eq. 4 budget: a 256-bit register file
/// admits 16×8 (16 accumulators), a 512-bit one admits 32×12.
pub fn choose_kernel_for(m: usize, n: usize, k: usize, isa: &VectorIsa) -> KernelShape {
    let _ = k;
    let mut best = KernelShape::new(8, 8);
    let mut best_score = f64::MIN;
    let candidates = WIDE_KERNEL_CANDIDATES
        .iter()
        .chain(KERNEL_CANDIDATES)
        .filter(|&&(mr, nr)| isa.check_register_budget(mr, nr, 4).is_ok());
    for &(mr, nr) in candidates {
        let em = dim_efficiency(m, mr, nr, true, isa);
        let en = dim_efficiency(n, nr, mr, false, isa);
        // Prefer kernels that divide the problem exactly (the main
        // tile actually runs), then higher CMR.
        let fit_m = if mr <= m && m.is_multiple_of(mr) {
            1.05
        } else {
            1.0
        };
        let fit_n = if nr <= n && n.is_multiple_of(nr) {
            1.05
        } else {
            1.0
        };
        let score = em * en * fit_m * fit_n * (1.0 + 0.01 * KernelShape::new(mr, nr).cmr());
        if score > best_score {
            best_score = score;
            best = KernelShape::new(mr, nr);
        }
    }
    best
}

/// A fully resolved execution plan for one GEMM shape.
#[derive(Debug, Clone)]
pub struct SmmPlan {
    /// Rows of `A`/`C`.
    pub m: usize,
    /// Columns of `B`/`C`.
    pub n: usize,
    /// Inner dimension.
    pub k: usize,
    /// Selected register tile.
    pub kernel: KernelShape,
    /// Pack `A` into `mr`-panels?
    pub pack_a: bool,
    /// Pack `B` into `nr`-slivers?
    pub pack_b: bool,
    /// Pack N-edge slivers even when `B` is unpacked (Fig. 8).
    pub pack_edge_b: bool,
    /// k-blocking depth.
    pub kc: usize,
    /// Exact M tiles (offset/logical == kernel; no padding).
    pub m_tiles: Vec<TileSpan>,
    /// Exact N tiles.
    pub n_tiles: Vec<TileSpan>,
    /// Thread grid (collapses to 1×1×1×1 single-threaded).
    pub grid: ThreadGrid,
    /// The paper's Eq. 3 P2C value for this shape.
    pub p2c: f64,
    /// Vector ISA the plan was built for (tiling + trace generation).
    pub isa: VectorIsa,
}

impl SmmPlan {
    /// Build a plan for a shape under a configuration.
    pub fn build(m: usize, n: usize, k: usize, cfg: &PlanConfig) -> Self {
        assert!(m > 0 && n > 0 && k > 0, "empty GEMM has no plan");
        let kernel = cfg
            .kernel
            .unwrap_or_else(|| choose_kernel_for(m, n, k, &cfg.isa));
        let (mr, nr) = (kernel.mr, kernel.nr);
        let l1 = CacheSizes::phytium_2000_plus().l1d;

        // kc: keep the working sliver set L1-resident.
        let kc = (l1 / (2 * nr * 4)).clamp(32, 1024).min(k).max(1);

        let m_tiles = exact_tiles_for(m, mr, &cfg.isa);
        let n_tiles = exact_tiles_for(n, nr, &cfg.isa);

        // Thread grid: clamp to available tile parallelism, then apply
        // the §III-D selection.
        let tiles_total = m_tiles.len() * n_tiles.len();
        let threads = cfg.max_threads.clamp(1, tiles_total.max(1));
        let grid = select_grid(m, n, k, threads, kernel);

        // Packing decisions: pack an operand only when *each thread*
        // reuses it often enough to amortize the O(elements) pass
        // (§III-A). Threads pack privately (no barriers), so per-thread
        // reuse — panels per m-way, slivers per n-way — is what counts.
        let panels_per_thread = m_tiles.len().div_ceil(grid.m_ways());
        let slivers_per_thread = n_tiles.len().div_ceil(grid.n_ways());
        let pack_b = cfg.pack_b.unwrap_or(panels_per_thread >= cfg.pack_b_reuse);
        let pack_a = cfg
            .pack_a
            .unwrap_or(slivers_per_thread >= cfg.pack_a_reuse && m * k * 4 > l1);

        SmmPlan {
            m,
            n,
            k,
            kernel,
            pack_a,
            pack_b,
            pack_edge_b: cfg.pack_edge_b,
            kc,
            m_tiles,
            n_tiles,
            grid,
            p2c: p2c::p2c_as_published(m, n),
            isa: cfg.isa,
        }
    }

    /// Threads the plan will use.
    pub fn threads(&self) -> usize {
        self.grid.threads()
    }

    /// Useful flops of the planned GEMM.
    pub fn flops(&self) -> f64 {
        2.0 * self.m as f64 * self.n as f64 * self.k as f64
    }
}

/// Tile a dimension exactly: full `step` tiles plus greedy power-of-two
/// edges (no padding — edges run smaller kernels on real data).
///
/// Equivalent to decomposing with [`edge_steps`]/`decompose_greedy`,
/// but allocation-free apart from the exactly-sized result: plan
/// construction runs on the serving cold path, where the intermediate
/// step vectors and tile-vector regrowth were measurable.
pub fn exact_tiles(len: usize, step: usize) -> Vec<TileSpan> {
    // The greedy edge cascade emits one tile per set bit of the
    // residue (every power of two below `step` is available).
    let rest = len % step;
    let mut tiles = Vec::with_capacity(len / step + rest.count_ones() as usize);
    let mut off = 0;
    for _ in 0..len / step {
        tiles.push(TileSpan {
            offset: off,
            logical: step,
            kernel: step,
        });
        off += step;
    }
    // Largest power of two below `step`, as in `edge_steps`.
    let mut s = 1usize;
    while s * 2 < step {
        s *= 2;
    }
    let mut rest = rest;
    while rest > 0 {
        while s > rest {
            s /= 2;
        }
        tiles.push(TileSpan {
            offset: off,
            logical: s,
            kernel: s,
        });
        off += s;
        rest -= s;
    }
    tiles
}

/// ISA-aware exact tiling. On a predicated ISA the whole residue is one
/// tile — the main kernel masks off inactive lanes, so the greedy
/// power-of-two cascade (and its chain-starved sub-kernels, Fig. 7) is
/// unnecessary. On NEON this is exactly [`exact_tiles`].
pub fn exact_tiles_for(len: usize, step: usize, isa: &VectorIsa) -> Vec<TileSpan> {
    if !isa.predication {
        return exact_tiles(len, step);
    }
    let mut tiles = Vec::with_capacity(len.div_ceil(step));
    let mut off = 0;
    for _ in 0..len / step {
        tiles.push(TileSpan {
            offset: off,
            logical: step,
            kernel: step,
        });
        off += step;
    }
    if !len.is_multiple_of(step) {
        tiles.push(TileSpan {
            offset: off,
            logical: len % step,
            kernel: len % step,
        });
    }
    tiles
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_steps_descend_to_one() {
        assert_eq!(edge_steps(16), vec![16, 8, 4, 2, 1]);
        assert_eq!(edge_steps(12), vec![12, 8, 4, 2, 1]);
        assert_eq!(edge_steps(8), vec![8, 4, 2, 1]);
        assert_eq!(edge_steps(1), vec![1]);
    }

    #[test]
    fn exact_tiles_cover_without_padding() {
        for len in [1, 7, 16, 75, 200] {
            let tiles = exact_tiles(len, 8);
            let total: usize = tiles.iter().map(|t| t.logical).sum();
            assert_eq!(total, len);
            assert!(tiles.iter().all(|t| t.kernel == t.logical));
        }
    }

    #[test]
    fn exact_tiles_match_greedy_reference() {
        // The allocation-free cascade must emit exactly what the
        // edge_steps/decompose_greedy reference pipeline emits, with
        // no spare tile-vector capacity.
        for step in [1, 4, 8, 12, 16] {
            for len in 1..=100 {
                let tiles = exact_tiles(len, step);
                let steps = edge_steps(step);
                let want: Vec<usize> = std::iter::repeat_n(step, len / step)
                    .chain(decompose_greedy(len % step, &steps))
                    .collect();
                let got: Vec<usize> = tiles.iter().map(|t| t.logical).collect();
                assert_eq!(got, want, "len {len} step {step}");
                let mut off = 0;
                for t in &tiles {
                    assert_eq!(t.offset, off, "len {len} step {step}");
                    off += t.logical;
                }
                assert_eq!(tiles.capacity(), tiles.len(), "len {len} step {step}");
            }
        }
    }

    #[test]
    fn kernel_choice_prefers_fitting_shapes() {
        // 8x8 problems should pick the 8x8 tile (perfect fit, max chains).
        assert_eq!(choose_kernel(8, 8, 64), KernelShape::new(8, 8));
        // Tall-skinny C with nr-of-4 fit.
        let k = choose_kernel(64, 4, 64);
        assert_eq!(k.nr, 4);
        assert!(k.mr >= 8);
        // 12-row fit prefers 12x4 over splitting 8+4.
        assert_eq!(choose_kernel(12, 4, 64), KernelShape::new(12, 4));
    }

    #[test]
    fn chosen_kernels_are_always_feasible() {
        for m in [1usize, 3, 8, 17, 40, 100] {
            for n in [1usize, 5, 12, 33, 96] {
                let k = choose_kernel(m, n, 32);
                assert!(
                    k.satisfies_register_constraint(4, 32, 2),
                    "{m}x{n} -> {k:?}"
                );
            }
        }
    }

    #[test]
    fn small_shapes_skip_packing() {
        // m = 8: one or two panels -> B packing cannot amortize.
        let p = SmmPlan::build(8, 64, 32, &PlanConfig::default());
        assert!(!p.pack_b, "tiny M must not pack B");
        assert!(!p.pack_a);
    }

    #[test]
    fn large_reuse_enables_packing() {
        let p = SmmPlan::build(192, 192, 192, &PlanConfig::default());
        assert!(p.pack_b, "M=192 gives >= 4 panel reuses of each B sliver");
    }

    #[test]
    fn overrides_win() {
        let cfg = PlanConfig {
            pack_b: Some(true),
            pack_a: Some(true),
            ..Default::default()
        };
        let p = SmmPlan::build(4, 4, 4, &cfg);
        assert!(p.pack_a && p.pack_b);
        let cfg2 = PlanConfig {
            kernel: Some(KernelShape::new(4, 4)),
            ..Default::default()
        };
        assert_eq!(
            SmmPlan::build(64, 64, 64, &cfg2).kernel,
            KernelShape::new(4, 4)
        );
    }

    #[test]
    fn grid_respects_small_dimensions() {
        let cfg = PlanConfig {
            max_threads: 64,
            ..Default::default()
        };
        let p = SmmPlan::build(16, 2048, 256, &cfg);
        assert!(p.grid.m_ways() <= 2, "{:?}", p.grid);
        assert!(p.threads() >= 16);
    }

    #[test]
    fn thread_count_clamped_to_tiles() {
        let cfg = PlanConfig {
            max_threads: 64,
            ..Default::default()
        };
        let p = SmmPlan::build(8, 8, 8, &cfg);
        assert!(p.threads() <= p.m_tiles.len() * p.n_tiles.len());
    }

    #[test]
    fn kc_tracks_l1_and_k() {
        let p = SmmPlan::build(64, 64, 2000, &PlanConfig::default());
        assert!(p.kc * p.kernel.nr * 4 * 2 <= 32 * 1024 + 4096);
        let small_k = SmmPlan::build(64, 64, 7, &PlanConfig::default());
        assert_eq!(small_k.kc, 7);
    }

    #[test]
    fn p2c_recorded_matches_model() {
        let p = SmmPlan::build(10, 20, 30, &PlanConfig::default());
        assert!((p.p2c - smm_model::p2c_as_published(10, 20)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty GEMM")]
    fn zero_dim_rejected() {
        SmmPlan::build(0, 4, 4, &PlanConfig::default());
    }

    #[test]
    fn predicated_isa_tiles_residue_in_one_piece() {
        // 75 = 4x16 + 11: NEON decomposes the 11 into 8 + 2 + 1 edge
        // kernels; a predicated ISA masks one 11-row tile.
        let neon = exact_tiles_for(75, 16, &VectorIsa::neon128());
        let sve = exact_tiles_for(75, 16, &VectorIsa::sve512());
        assert_eq!(neon.len(), 4 + 3);
        assert_eq!(sve.len(), 4 + 1);
        assert_eq!(sve.last().unwrap().logical, 11);
        assert_eq!(
            sve.iter().map(|t| t.logical).sum::<usize>(),
            neon.iter().map(|t| t.logical).sum::<usize>()
        );
        // Aligned lengths are identical across ISAs.
        assert_eq!(exact_tiles_for(64, 16, &VectorIsa::sve256()).len(), 4);
    }

    #[test]
    fn wide_isa_unlocks_wide_kernels() {
        // 32x12 needs a 512-bit file (2 * 12 = 24 accumulators); the
        // NEON chooser must never return it, the SVE-512 one should
        // prefer it for a perfectly fitting 32x12 problem.
        let neon = choose_kernel_for(32, 12, 64, &VectorIsa::neon128());
        assert!(neon.satisfies_register_constraint(4, 32, 2));
        let wide = choose_kernel_for(32, 12, 64, &VectorIsa::sve512());
        assert_eq!(wide, KernelShape::new(32, 12));
    }

    #[test]
    fn chosen_kernels_feasible_on_every_isa() {
        for isa in VectorIsa::all() {
            for m in [1usize, 3, 8, 17, 40, 100] {
                for n in [1usize, 5, 12, 33, 96] {
                    let k = choose_kernel_for(m, n, 32, &isa);
                    assert!(
                        isa.check_register_budget(k.mr, k.nr, 4).is_ok(),
                        "{m}x{n} on {isa} -> {k:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn plan_records_and_uses_its_isa() {
        let cfg = PlanConfig {
            isa: VectorIsa::sve256(),
            ..Default::default()
        };
        let p = SmmPlan::build(75, 33, 64, &cfg);
        assert_eq!(p.isa, VectorIsa::sve256());
        // One residue tile per dimension, not a greedy cascade.
        assert_eq!(p.m_tiles.last().unwrap().logical, 75 % p.kernel.mr);
        let neon_p = SmmPlan::build(75, 33, 64, &PlanConfig::default());
        assert_eq!(neon_p.isa, VectorIsa::neon128());
    }
}
